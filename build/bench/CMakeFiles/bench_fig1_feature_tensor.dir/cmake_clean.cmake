file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_feature_tensor.dir/fig1_feature_tensor.cpp.o"
  "CMakeFiles/bench_fig1_feature_tensor.dir/fig1_feature_tensor.cpp.o.d"
  "bench_fig1_feature_tensor"
  "bench_fig1_feature_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_feature_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig1_feature_tensor.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig4_bias_vs_shift.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_bias_vs_shift.dir/fig4_bias_vs_shift.cpp.o"
  "CMakeFiles/bench_fig4_bias_vs_shift.dir/fig4_bias_vs_shift.cpp.o.d"
  "bench_fig4_bias_vs_shift"
  "bench_fig4_bias_vs_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bias_vs_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

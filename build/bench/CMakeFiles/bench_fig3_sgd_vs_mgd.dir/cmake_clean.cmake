file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sgd_vs_mgd.dir/fig3_sgd_vs_mgd.cpp.o"
  "CMakeFiles/bench_fig3_sgd_vs_mgd.dir/fig3_sgd_vs_mgd.cpp.o.d"
  "bench_fig3_sgd_vs_mgd"
  "bench_fig3_sgd_vs_mgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sgd_vs_mgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

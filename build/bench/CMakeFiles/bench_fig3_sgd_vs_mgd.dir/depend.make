# Empty dependencies file for bench_fig3_sgd_vs_mgd.
# This may be replaced when dependencies are built.

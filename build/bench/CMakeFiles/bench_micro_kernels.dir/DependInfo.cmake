
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_kernels.cpp" "bench/CMakeFiles/bench_micro_kernels.dir/micro_kernels.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_kernels.dir/micro_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hotspot/CMakeFiles/hsdl_hotspot.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hsdl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hsdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fte/CMakeFiles/hsdl_fte.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/hsdl_features.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsdl_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hsdl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsdl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhsdl_bench_common.a"
)

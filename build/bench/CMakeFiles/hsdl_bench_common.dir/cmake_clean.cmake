file(REMOVE_RECURSE
  "CMakeFiles/hsdl_bench_common.dir/common.cpp.o"
  "CMakeFiles/hsdl_bench_common.dir/common.cpp.o.d"
  "libhsdl_bench_common.a"
  "libhsdl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

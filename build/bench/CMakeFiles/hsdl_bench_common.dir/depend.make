# Empty dependencies file for hsdl_bench_common.
# This may be replaced when dependencies are built.

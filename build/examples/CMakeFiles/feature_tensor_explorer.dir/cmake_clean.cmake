file(REMOVE_RECURSE
  "CMakeFiles/feature_tensor_explorer.dir/feature_tensor_explorer.cpp.o"
  "CMakeFiles/feature_tensor_explorer.dir/feature_tensor_explorer.cpp.o.d"
  "feature_tensor_explorer"
  "feature_tensor_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_tensor_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

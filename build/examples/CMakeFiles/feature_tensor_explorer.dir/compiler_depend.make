# Empty compiler generated dependencies file for feature_tensor_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/opc_demo.dir/opc_demo.cpp.o"
  "CMakeFiles/opc_demo.dir/opc_demo.cpp.o.d"
  "opc_demo"
  "opc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for opc_demo.
# This may be replaced when dependencies are built.

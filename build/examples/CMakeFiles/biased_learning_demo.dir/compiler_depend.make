# Empty compiler generated dependencies file for biased_learning_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/biased_learning_demo.dir/biased_learning_demo.cpp.o"
  "CMakeFiles/biased_learning_demo.dir/biased_learning_demo.cpp.o.d"
  "biased_learning_demo"
  "biased_learning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biased_learning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

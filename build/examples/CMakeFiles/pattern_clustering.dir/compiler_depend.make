# Empty compiler generated dependencies file for pattern_clustering.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pattern_clustering.dir/pattern_clustering.cpp.o"
  "CMakeFiles/pattern_clustering.dir/pattern_clustering.cpp.o.d"
  "pattern_clustering"
  "pattern_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

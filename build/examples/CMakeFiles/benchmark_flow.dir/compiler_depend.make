# Empty compiler generated dependencies file for benchmark_flow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/benchmark_flow.dir/benchmark_flow.cpp.o"
  "CMakeFiles/benchmark_flow.dir/benchmark_flow.cpp.o.d"
  "benchmark_flow"
  "benchmark_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hsdl_features.dir/ccs.cpp.o"
  "CMakeFiles/hsdl_features.dir/ccs.cpp.o.d"
  "CMakeFiles/hsdl_features.dir/density.cpp.o"
  "CMakeFiles/hsdl_features.dir/density.cpp.o.d"
  "libhsdl_features.a"
  "libhsdl_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hsdl_features.
# This may be replaced when dependencies are built.

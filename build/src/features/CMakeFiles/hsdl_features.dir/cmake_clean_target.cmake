file(REMOVE_RECURSE
  "libhsdl_features.a"
)

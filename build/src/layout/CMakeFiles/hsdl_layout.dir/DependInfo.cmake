
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/dataset.cpp" "src/layout/CMakeFiles/hsdl_layout.dir/dataset.cpp.o" "gcc" "src/layout/CMakeFiles/hsdl_layout.dir/dataset.cpp.o.d"
  "/root/repo/src/layout/drc.cpp" "src/layout/CMakeFiles/hsdl_layout.dir/drc.cpp.o" "gcc" "src/layout/CMakeFiles/hsdl_layout.dir/drc.cpp.o.d"
  "/root/repo/src/layout/gdsii.cpp" "src/layout/CMakeFiles/hsdl_layout.dir/gdsii.cpp.o" "gcc" "src/layout/CMakeFiles/hsdl_layout.dir/gdsii.cpp.o.d"
  "/root/repo/src/layout/generator.cpp" "src/layout/CMakeFiles/hsdl_layout.dir/generator.cpp.o" "gcc" "src/layout/CMakeFiles/hsdl_layout.dir/generator.cpp.o.d"
  "/root/repo/src/layout/glf.cpp" "src/layout/CMakeFiles/hsdl_layout.dir/glf.cpp.o" "gcc" "src/layout/CMakeFiles/hsdl_layout.dir/glf.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/layout/CMakeFiles/hsdl_layout.dir/layout.cpp.o" "gcc" "src/layout/CMakeFiles/hsdl_layout.dir/layout.cpp.o.d"
  "/root/repo/src/layout/raster.cpp" "src/layout/CMakeFiles/hsdl_layout.dir/raster.cpp.o" "gcc" "src/layout/CMakeFiles/hsdl_layout.dir/raster.cpp.o.d"
  "/root/repo/src/layout/transform.cpp" "src/layout/CMakeFiles/hsdl_layout.dir/transform.cpp.o" "gcc" "src/layout/CMakeFiles/hsdl_layout.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/hsdl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhsdl_layout.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hsdl_layout.dir/dataset.cpp.o"
  "CMakeFiles/hsdl_layout.dir/dataset.cpp.o.d"
  "CMakeFiles/hsdl_layout.dir/drc.cpp.o"
  "CMakeFiles/hsdl_layout.dir/drc.cpp.o.d"
  "CMakeFiles/hsdl_layout.dir/gdsii.cpp.o"
  "CMakeFiles/hsdl_layout.dir/gdsii.cpp.o.d"
  "CMakeFiles/hsdl_layout.dir/generator.cpp.o"
  "CMakeFiles/hsdl_layout.dir/generator.cpp.o.d"
  "CMakeFiles/hsdl_layout.dir/glf.cpp.o"
  "CMakeFiles/hsdl_layout.dir/glf.cpp.o.d"
  "CMakeFiles/hsdl_layout.dir/layout.cpp.o"
  "CMakeFiles/hsdl_layout.dir/layout.cpp.o.d"
  "CMakeFiles/hsdl_layout.dir/raster.cpp.o"
  "CMakeFiles/hsdl_layout.dir/raster.cpp.o.d"
  "CMakeFiles/hsdl_layout.dir/transform.cpp.o"
  "CMakeFiles/hsdl_layout.dir/transform.cpp.o.d"
  "libhsdl_layout.a"
  "libhsdl_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

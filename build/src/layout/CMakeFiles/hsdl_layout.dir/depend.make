# Empty dependencies file for hsdl_layout.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litho/aerial.cpp" "src/litho/CMakeFiles/hsdl_litho.dir/aerial.cpp.o" "gcc" "src/litho/CMakeFiles/hsdl_litho.dir/aerial.cpp.o.d"
  "/root/repo/src/litho/labeler.cpp" "src/litho/CMakeFiles/hsdl_litho.dir/labeler.cpp.o" "gcc" "src/litho/CMakeFiles/hsdl_litho.dir/labeler.cpp.o.d"
  "/root/repo/src/litho/process_window.cpp" "src/litho/CMakeFiles/hsdl_litho.dir/process_window.cpp.o" "gcc" "src/litho/CMakeFiles/hsdl_litho.dir/process_window.cpp.o.d"
  "/root/repo/src/litho/simulator.cpp" "src/litho/CMakeFiles/hsdl_litho.dir/simulator.cpp.o" "gcc" "src/litho/CMakeFiles/hsdl_litho.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/hsdl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsdl_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

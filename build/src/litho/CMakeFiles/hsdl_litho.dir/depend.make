# Empty dependencies file for hsdl_litho.
# This may be replaced when dependencies are built.

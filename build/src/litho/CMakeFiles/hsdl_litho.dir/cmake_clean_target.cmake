file(REMOVE_RECURSE
  "libhsdl_litho.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hsdl_litho.dir/aerial.cpp.o"
  "CMakeFiles/hsdl_litho.dir/aerial.cpp.o.d"
  "CMakeFiles/hsdl_litho.dir/labeler.cpp.o"
  "CMakeFiles/hsdl_litho.dir/labeler.cpp.o.d"
  "CMakeFiles/hsdl_litho.dir/process_window.cpp.o"
  "CMakeFiles/hsdl_litho.dir/process_window.cpp.o.d"
  "CMakeFiles/hsdl_litho.dir/simulator.cpp.o"
  "CMakeFiles/hsdl_litho.dir/simulator.cpp.o.d"
  "libhsdl_litho.a"
  "libhsdl_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hsdl_baselines.dir/boosting.cpp.o"
  "CMakeFiles/hsdl_baselines.dir/boosting.cpp.o.d"
  "CMakeFiles/hsdl_baselines.dir/stump.cpp.o"
  "CMakeFiles/hsdl_baselines.dir/stump.cpp.o.d"
  "libhsdl_baselines.a"
  "libhsdl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhsdl_baselines.a"
)

# Empty compiler generated dependencies file for hsdl_baselines.
# This may be replaced when dependencies are built.

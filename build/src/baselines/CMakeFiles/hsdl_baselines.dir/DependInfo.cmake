
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/boosting.cpp" "src/baselines/CMakeFiles/hsdl_baselines.dir/boosting.cpp.o" "gcc" "src/baselines/CMakeFiles/hsdl_baselines.dir/boosting.cpp.o.d"
  "/root/repo/src/baselines/stump.cpp" "src/baselines/CMakeFiles/hsdl_baselines.dir/stump.cpp.o" "gcc" "src/baselines/CMakeFiles/hsdl_baselines.dir/stump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hsdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

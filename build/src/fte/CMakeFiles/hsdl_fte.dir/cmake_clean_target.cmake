file(REMOVE_RECURSE
  "libhsdl_fte.a"
)

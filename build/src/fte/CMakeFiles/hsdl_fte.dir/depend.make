# Empty dependencies file for hsdl_fte.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hsdl_fte.dir/dct.cpp.o"
  "CMakeFiles/hsdl_fte.dir/dct.cpp.o.d"
  "CMakeFiles/hsdl_fte.dir/feature_tensor.cpp.o"
  "CMakeFiles/hsdl_fte.dir/feature_tensor.cpp.o.d"
  "CMakeFiles/hsdl_fte.dir/zigzag.cpp.o"
  "CMakeFiles/hsdl_fte.dir/zigzag.cpp.o.d"
  "libhsdl_fte.a"
  "libhsdl_fte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_fte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

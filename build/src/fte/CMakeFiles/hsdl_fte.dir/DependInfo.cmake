
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fte/dct.cpp" "src/fte/CMakeFiles/hsdl_fte.dir/dct.cpp.o" "gcc" "src/fte/CMakeFiles/hsdl_fte.dir/dct.cpp.o.d"
  "/root/repo/src/fte/feature_tensor.cpp" "src/fte/CMakeFiles/hsdl_fte.dir/feature_tensor.cpp.o" "gcc" "src/fte/CMakeFiles/hsdl_fte.dir/feature_tensor.cpp.o.d"
  "/root/repo/src/fte/zigzag.cpp" "src/fte/CMakeFiles/hsdl_fte.dir/zigzag.cpp.o" "gcc" "src/fte/CMakeFiles/hsdl_fte.dir/zigzag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/hsdl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsdl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsdl_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

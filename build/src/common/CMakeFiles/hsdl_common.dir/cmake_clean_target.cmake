file(REMOVE_RECURSE
  "libhsdl_common.a"
)

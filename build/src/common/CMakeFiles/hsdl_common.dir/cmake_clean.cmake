file(REMOVE_RECURSE
  "CMakeFiles/hsdl_common.dir/logging.cpp.o"
  "CMakeFiles/hsdl_common.dir/logging.cpp.o.d"
  "CMakeFiles/hsdl_common.dir/rng.cpp.o"
  "CMakeFiles/hsdl_common.dir/rng.cpp.o.d"
  "CMakeFiles/hsdl_common.dir/string_util.cpp.o"
  "CMakeFiles/hsdl_common.dir/string_util.cpp.o.d"
  "libhsdl_common.a"
  "libhsdl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

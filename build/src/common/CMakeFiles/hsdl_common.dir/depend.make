# Empty dependencies file for hsdl_common.
# This may be replaced when dependencies are built.

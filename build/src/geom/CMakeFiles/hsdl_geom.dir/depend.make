# Empty dependencies file for hsdl_geom.
# This may be replaced when dependencies are built.

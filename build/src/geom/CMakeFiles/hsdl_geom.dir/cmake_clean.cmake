file(REMOVE_RECURSE
  "CMakeFiles/hsdl_geom.dir/polygon.cpp.o"
  "CMakeFiles/hsdl_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/hsdl_geom.dir/region.cpp.o"
  "CMakeFiles/hsdl_geom.dir/region.cpp.o.d"
  "libhsdl_geom.a"
  "libhsdl_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

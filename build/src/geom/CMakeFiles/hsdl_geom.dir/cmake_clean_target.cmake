file(REMOVE_RECURSE
  "libhsdl_geom.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/hsdl_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/hsdl_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hsdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/hsdl_nn.dir/activations.cpp.o"
  "CMakeFiles/hsdl_nn.dir/activations.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/conv2d.cpp.o"
  "CMakeFiles/hsdl_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/dataset.cpp.o"
  "CMakeFiles/hsdl_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/dropout.cpp.o"
  "CMakeFiles/hsdl_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/flatten.cpp.o"
  "CMakeFiles/hsdl_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/gemm.cpp.o"
  "CMakeFiles/hsdl_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/init.cpp.o"
  "CMakeFiles/hsdl_nn.dir/init.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/linear.cpp.o"
  "CMakeFiles/hsdl_nn.dir/linear.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/loss.cpp.o"
  "CMakeFiles/hsdl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/hsdl_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/pool.cpp.o"
  "CMakeFiles/hsdl_nn.dir/pool.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/sequential.cpp.o"
  "CMakeFiles/hsdl_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/serialize.cpp.o"
  "CMakeFiles/hsdl_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/hsdl_nn.dir/tensor.cpp.o"
  "CMakeFiles/hsdl_nn.dir/tensor.cpp.o.d"
  "libhsdl_nn.a"
  "libhsdl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hsdl_nn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhsdl_nn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hsdl_analysis.dir/kmeans.cpp.o"
  "CMakeFiles/hsdl_analysis.dir/kmeans.cpp.o.d"
  "CMakeFiles/hsdl_analysis.dir/pattern_cluster.cpp.o"
  "CMakeFiles/hsdl_analysis.dir/pattern_cluster.cpp.o.d"
  "libhsdl_analysis.a"
  "libhsdl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhsdl_analysis.a"
)

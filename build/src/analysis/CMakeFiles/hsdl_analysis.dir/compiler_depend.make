# Empty compiler generated dependencies file for hsdl_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhsdl_opc.a"
)

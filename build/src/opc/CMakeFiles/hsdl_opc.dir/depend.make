# Empty dependencies file for hsdl_opc.
# This may be replaced when dependencies are built.

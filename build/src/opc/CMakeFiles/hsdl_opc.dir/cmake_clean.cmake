file(REMOVE_RECURSE
  "CMakeFiles/hsdl_opc.dir/rule_opc.cpp.o"
  "CMakeFiles/hsdl_opc.dir/rule_opc.cpp.o.d"
  "libhsdl_opc.a"
  "libhsdl_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

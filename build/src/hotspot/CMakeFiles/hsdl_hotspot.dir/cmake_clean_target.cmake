file(REMOVE_RECURSE
  "libhsdl_hotspot.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hotspot/benchmark_factory.cpp" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/benchmark_factory.cpp.o" "gcc" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/benchmark_factory.cpp.o.d"
  "/root/repo/src/hotspot/biased.cpp" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/biased.cpp.o" "gcc" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/biased.cpp.o.d"
  "/root/repo/src/hotspot/cnn.cpp" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/cnn.cpp.o" "gcc" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/cnn.cpp.o.d"
  "/root/repo/src/hotspot/detector.cpp" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/detector.cpp.o" "gcc" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/detector.cpp.o.d"
  "/root/repo/src/hotspot/metrics.cpp" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/metrics.cpp.o" "gcc" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/metrics.cpp.o.d"
  "/root/repo/src/hotspot/roc.cpp" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/roc.cpp.o" "gcc" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/roc.cpp.o.d"
  "/root/repo/src/hotspot/scanner.cpp" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/scanner.cpp.o" "gcc" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/scanner.cpp.o.d"
  "/root/repo/src/hotspot/trainer.cpp" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/trainer.cpp.o" "gcc" "src/hotspot/CMakeFiles/hsdl_hotspot.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hsdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fte/CMakeFiles/hsdl_fte.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/hsdl_features.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsdl_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hsdl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hsdl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hsdl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/hsdl_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

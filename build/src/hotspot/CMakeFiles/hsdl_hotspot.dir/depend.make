# Empty dependencies file for hsdl_hotspot.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hsdl_hotspot.dir/benchmark_factory.cpp.o"
  "CMakeFiles/hsdl_hotspot.dir/benchmark_factory.cpp.o.d"
  "CMakeFiles/hsdl_hotspot.dir/biased.cpp.o"
  "CMakeFiles/hsdl_hotspot.dir/biased.cpp.o.d"
  "CMakeFiles/hsdl_hotspot.dir/cnn.cpp.o"
  "CMakeFiles/hsdl_hotspot.dir/cnn.cpp.o.d"
  "CMakeFiles/hsdl_hotspot.dir/detector.cpp.o"
  "CMakeFiles/hsdl_hotspot.dir/detector.cpp.o.d"
  "CMakeFiles/hsdl_hotspot.dir/metrics.cpp.o"
  "CMakeFiles/hsdl_hotspot.dir/metrics.cpp.o.d"
  "CMakeFiles/hsdl_hotspot.dir/roc.cpp.o"
  "CMakeFiles/hsdl_hotspot.dir/roc.cpp.o.d"
  "CMakeFiles/hsdl_hotspot.dir/scanner.cpp.o"
  "CMakeFiles/hsdl_hotspot.dir/scanner.cpp.o.d"
  "CMakeFiles/hsdl_hotspot.dir/trainer.cpp.o"
  "CMakeFiles/hsdl_hotspot.dir/trainer.cpp.o.d"
  "libhsdl_hotspot.a"
  "libhsdl_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsdl_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

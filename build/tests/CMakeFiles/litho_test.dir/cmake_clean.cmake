file(REMOVE_RECURSE
  "CMakeFiles/litho_test.dir/litho/aerial_test.cpp.o"
  "CMakeFiles/litho_test.dir/litho/aerial_test.cpp.o.d"
  "CMakeFiles/litho_test.dir/litho/calibration_test.cpp.o"
  "CMakeFiles/litho_test.dir/litho/calibration_test.cpp.o.d"
  "CMakeFiles/litho_test.dir/litho/labeler_test.cpp.o"
  "CMakeFiles/litho_test.dir/litho/labeler_test.cpp.o.d"
  "CMakeFiles/litho_test.dir/litho/process_window_test.cpp.o"
  "CMakeFiles/litho_test.dir/litho/process_window_test.cpp.o.d"
  "CMakeFiles/litho_test.dir/litho/simulator_test.cpp.o"
  "CMakeFiles/litho_test.dir/litho/simulator_test.cpp.o.d"
  "litho_test"
  "litho_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hotspot_test.dir/hotspot/benchmark_factory_test.cpp.o"
  "CMakeFiles/hotspot_test.dir/hotspot/benchmark_factory_test.cpp.o.d"
  "CMakeFiles/hotspot_test.dir/hotspot/biased_learning_test.cpp.o"
  "CMakeFiles/hotspot_test.dir/hotspot/biased_learning_test.cpp.o.d"
  "CMakeFiles/hotspot_test.dir/hotspot/cnn_test.cpp.o"
  "CMakeFiles/hotspot_test.dir/hotspot/cnn_test.cpp.o.d"
  "CMakeFiles/hotspot_test.dir/hotspot/detector_test.cpp.o"
  "CMakeFiles/hotspot_test.dir/hotspot/detector_test.cpp.o.d"
  "CMakeFiles/hotspot_test.dir/hotspot/metrics_test.cpp.o"
  "CMakeFiles/hotspot_test.dir/hotspot/metrics_test.cpp.o.d"
  "CMakeFiles/hotspot_test.dir/hotspot/roc_test.cpp.o"
  "CMakeFiles/hotspot_test.dir/hotspot/roc_test.cpp.o.d"
  "CMakeFiles/hotspot_test.dir/hotspot/scanner_test.cpp.o"
  "CMakeFiles/hotspot_test.dir/hotspot/scanner_test.cpp.o.d"
  "CMakeFiles/hotspot_test.dir/hotspot/trainer_test.cpp.o"
  "CMakeFiles/hotspot_test.dir/hotspot/trainer_test.cpp.o.d"
  "hotspot_test"
  "hotspot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fte_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fte_test.dir/fte/dct_test.cpp.o"
  "CMakeFiles/fte_test.dir/fte/dct_test.cpp.o.d"
  "CMakeFiles/fte_test.dir/fte/feature_tensor_test.cpp.o"
  "CMakeFiles/fte_test.dir/fte/feature_tensor_test.cpp.o.d"
  "CMakeFiles/fte_test.dir/fte/zigzag_test.cpp.o"
  "CMakeFiles/fte_test.dir/fte/zigzag_test.cpp.o.d"
  "fte_test"
  "fte_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

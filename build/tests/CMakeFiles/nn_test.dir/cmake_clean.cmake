file(REMOVE_RECURSE
  "CMakeFiles/nn_test.dir/nn/conv2d_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/conv2d_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/dataset_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/dataset_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/gemm_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/gemm_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/gradcheck_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/gradcheck_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/init_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/init_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/layers_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/linear_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/linear_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/loss_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/loss_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/optimizer_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/optimizer_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/sequential_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/sequential_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/serialize_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/serialize_test.cpp.o.d"
  "CMakeFiles/nn_test.dir/nn/tensor_test.cpp.o"
  "CMakeFiles/nn_test.dir/nn/tensor_test.cpp.o.d"
  "nn_test"
  "nn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/layout_test.dir/layout/clip_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/clip_test.cpp.o.d"
  "CMakeFiles/layout_test.dir/layout/dataset_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/dataset_test.cpp.o.d"
  "CMakeFiles/layout_test.dir/layout/drc_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/drc_test.cpp.o.d"
  "CMakeFiles/layout_test.dir/layout/gdsii_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/gdsii_test.cpp.o.d"
  "CMakeFiles/layout_test.dir/layout/generator_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/generator_test.cpp.o.d"
  "CMakeFiles/layout_test.dir/layout/glf_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/glf_test.cpp.o.d"
  "CMakeFiles/layout_test.dir/layout/layout_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/layout_test.cpp.o.d"
  "CMakeFiles/layout_test.dir/layout/raster_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/raster_test.cpp.o.d"
  "CMakeFiles/layout_test.dir/layout/transform_test.cpp.o"
  "CMakeFiles/layout_test.dir/layout/transform_test.cpp.o.d"
  "layout_test"
  "layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(geom_test "/root/repo/build/tests/geom_test")
set_tests_properties(geom_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(layout_test "/root/repo/build/tests/layout_test")
set_tests_properties(layout_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(litho_test "/root/repo/build/tests/litho_test")
set_tests_properties(litho_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;36;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fte_test "/root/repo/build/tests/fte_test")
set_tests_properties(fte_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;43;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(features_test "/root/repo/build/tests/features_test")
set_tests_properties(features_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;48;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;52;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(opc_test "/root/repo/build/tests/opc_test")
set_tests_properties(opc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;66;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;69;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;73;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hotspot_test "/root/repo/build/tests/hotspot_test")
set_tests_properties(hotspot_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;77;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;87;hsdl_test;/root/repo/tests/CMakeLists.txt;0;")

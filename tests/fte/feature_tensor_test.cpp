#include "fte/feature_tensor.hpp"

#include "fte/zigzag.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/cpuinfo.hpp"
#include "common/refmode.hpp"
#include "layout/generator.hpp"
#include "layout/raster.hpp"

namespace hsdl::fte {
namespace {

using geom::Rect;
using layout::Clip;
using layout::MaskImage;

Clip demo_clip() {
  layout::GeneratorConfig cfg;
  layout::ClipGenerator gen(cfg, 321);
  return gen.generate(layout::Archetype::kLineSpace);
}

TEST(FeatureTensorTest, ShapeMatchesConfig) {
  FeatureTensorConfig cfg;  // n=12, k=32
  FeatureTensorExtractor ex(cfg);
  FeatureTensor ft = ex.extract(demo_clip());
  EXPECT_EQ(ft.n, 12u);
  EXPECT_EQ(ft.k, 32u);
  EXPECT_EQ(ft.data.size(), 12u * 12u * 32u);
}

TEST(FeatureTensorTest, DcChannelIsBlockDensity) {
  // With normalization, channel 0 of each block is its mean fill.
  FeatureTensorConfig cfg;
  FeatureTensorExtractor ex(cfg);
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  // Fill exactly the first 100x100 nm block.
  c.shapes = {Rect::from_xywh(0, 0, 100, 100)};
  FeatureTensor ft = ex.extract(c);
  EXPECT_NEAR(ft.at(0, 0, 0), 1.0f, 1e-4f);
  EXPECT_NEAR(ft.at(0, 0, 1), 0.0f, 1e-4f);
  EXPECT_NEAR(ft.at(0, 5, 5), 0.0f, 1e-4f);
}

TEST(FeatureTensorTest, EmptyClipIsZeroTensor) {
  FeatureTensorExtractor ex;
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  FeatureTensor ft = ex.extract(c);
  for (float v : ft.data) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(FeatureTensorTest, SpatialStructurePreserved) {
  // A shape confined to the upper-left quadrant must not light up blocks
  // in the lower-right quadrant — the property 1-D features lose.
  FeatureTensorExtractor ex;
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = {Rect::from_xywh(0, 0, 300, 300)};
  FeatureTensor ft = ex.extract(c);
  double ul = 0, lr = 0;
  for (std::size_t ch = 0; ch < ft.k; ++ch) {
    for (std::size_t by = 0; by < 3; ++by)
      for (std::size_t bx = 0; bx < 3; ++bx)
        ul += std::abs(ft.at(ch, by, bx));
    for (std::size_t by = 9; by < 12; ++by)
      for (std::size_t bx = 9; bx < 12; ++bx)
        lr += std::abs(ft.at(ch, by, bx));
  }
  EXPECT_GT(ul, 1.0);
  EXPECT_FLOAT_EQ(lr, 0.0f);
}

TEST(FeatureTensorTest, ReconstructionApproximatesOriginal) {
  FeatureTensorConfig cfg;
  cfg.coeffs = 32;
  FeatureTensorExtractor ex(cfg);
  Clip clip = demo_clip();
  MaskImage original = layout::rasterize(clip, cfg.nm_per_px);
  FeatureTensor ft = ex.extract(original);
  MaskImage recon = ex.reconstruct(ft, original.width() / ft.n);
  ASSERT_EQ(recon.width(), original.width());
  // Mean absolute error small; k=32 keeps the bulk of the energy.
  double err = 0;
  for (std::size_t i = 0; i < original.size(); ++i)
    err += std::abs(original.data()[i] - recon.data()[i]);
  err /= static_cast<double>(original.size());
  EXPECT_LT(err, 0.15);
  // Density is captured almost exactly (DC preserved).
  EXPECT_NEAR(recon.mean(), original.mean(), 1e-3);
}

TEST(FeatureTensorTest, MoreCoefficientsReconstructBetter) {
  Clip clip = demo_clip();
  auto recon_err = [&](std::size_t k) {
    FeatureTensorConfig cfg;
    cfg.coeffs = k;
    FeatureTensorExtractor ex(cfg);
    MaskImage original = layout::rasterize(clip, cfg.nm_per_px);
    FeatureTensor ft = ex.extract(original);
    MaskImage recon = ex.reconstruct(ft, original.width() / ft.n);
    double err = 0;
    for (std::size_t i = 0; i < original.size(); ++i)
      err += std::abs(original.data()[i] - recon.data()[i]);
    return err / static_cast<double>(original.size());
  };
  const double e8 = recon_err(8);
  const double e32 = recon_err(32);
  const double e128 = recon_err(128);
  EXPECT_GT(e8, e32);
  EXPECT_GT(e32, e128);
}

TEST(FeatureTensorTest, FullCoefficientsReconstructExactly) {
  // Keeping every coefficient makes the transform lossless.
  FeatureTensorConfig cfg;
  cfg.blocks_per_side = 4;
  cfg.nm_per_px = 10.0;  // 1200/10/4 = 30 px blocks
  cfg.coeffs = 30 * 30;
  cfg.normalize = false;
  FeatureTensorExtractor ex(cfg);
  Clip clip = demo_clip();
  MaskImage original = layout::rasterize(clip, cfg.nm_per_px);
  FeatureTensor ft = ex.extract(original);
  MaskImage recon = ex.reconstruct(ft, original.width() / ft.n);
  EXPECT_LT(MaskImage::max_abs_diff(original, recon), 1e-3);
}

TEST(FeatureTensorTest, NormalizationScalesLinearly) {
  FeatureTensorConfig with;
  with.normalize = true;
  FeatureTensorConfig without = with;
  without.normalize = false;
  Clip clip = demo_clip();
  FeatureTensor a = FeatureTensorExtractor(with).extract(clip);
  FeatureTensor b = FeatureTensorExtractor(without).extract(clip);
  const double block_px = 1200.0 / with.nm_per_px / with.blocks_per_side;
  for (std::size_t i = 0; i < a.data.size(); i += 97)
    EXPECT_NEAR(b.data[i], a.data[i] * block_px, 1e-3);
}

TEST(FeatureTensorTest, PartialAndFullDctAgreeInExtraction) {
  // Extraction via the partial corner must equal brute force through the
  // full DCT (the paper's Step 2-4 computed naively).
  FeatureTensorConfig cfg;
  cfg.normalize = false;
  FeatureTensorExtractor ex(cfg);
  Clip clip = demo_clip();
  MaskImage raster = layout::rasterize(clip, cfg.nm_per_px);
  FeatureTensor fast = ex.extract(raster);

  const std::size_t B = raster.width() / cfg.blocks_per_side;
  DctPlan plan(B);
  std::vector<float> block(B * B), coeffs(B * B), scan(cfg.coeffs);
  for (std::size_t by = 0; by < cfg.blocks_per_side; ++by) {
    for (std::size_t bx = 0; bx < cfg.blocks_per_side; ++bx) {
      for (std::size_t y = 0; y < B; ++y)
        for (std::size_t x = 0; x < B; ++x)
          block[y * B + x] = raster.at(bx * B + x, by * B + y);
      plan.forward(block.data(), coeffs.data());
      zigzag_take(coeffs.data(), B, cfg.coeffs, scan.data());
      for (std::size_t c = 0; c < cfg.coeffs; ++c)
        EXPECT_NEAR(fast.at(c, by, bx), scan[c], 2e-3f)
            << "block (" << by << "," << bx << ") coeff " << c;
    }
  }
}

TEST(FeatureTensorTest, RejectsBadInputs) {
  FeatureTensorExtractor ex;
  MaskImage not_square(100, 50, 1.0);
  EXPECT_THROW(ex.extract(not_square), hsdl::CheckError);
  MaskImage indivisible(100, 100, 1.0);  // 100 % 12 != 0
  EXPECT_THROW(ex.extract(indivisible), hsdl::CheckError);

  FeatureTensorConfig cfg;
  cfg.coeffs = 0;
  EXPECT_THROW(FeatureTensorExtractor{cfg}, hsdl::CheckError);
}

TEST(FeatureTensorTest, BandedFastPathMatchesReferenceBitwise) {
  // The banded extraction path must reproduce the per-block reference
  // path bit for bit (see DctPlan::partial_band).
  Clip clip = demo_clip();
  for (double nm_per_px : {2.0, 4.0}) {  // 50 px and 25 px blocks
    FeatureTensorConfig cfg;
    cfg.nm_per_px = nm_per_px;
    FeatureTensorExtractor ex(cfg);
    MaskImage raster = layout::rasterize(clip, cfg.nm_per_px);
    FeatureTensor fast = ex.extract(raster);
    runtime::ReferenceModeGuard guard(true);
    FeatureTensor ref = ex.extract(raster);
    ASSERT_EQ(fast.data.size(), ref.data.size());
    for (std::size_t i = 0; i < ref.data.size(); ++i)
      ASSERT_EQ(fast.data[i], ref.data[i])
          << "nm_per_px=" << nm_per_px << " index " << i;
  }
}

TEST(FeatureTensorTest, ClipOverloadMatchesReferencePipeline) {
  // The serving path (thread-local raster reuse + banded DCT) must equal
  // the allocating reference pipeline exactly.
  Clip clip = demo_clip();
  FeatureTensorExtractor ex;
  FeatureTensor fast = ex.extract(clip);
  runtime::ReferenceModeGuard guard(true);
  FeatureTensor ref = ex.extract(clip);
  EXPECT_EQ(fast.data, ref.data);
}

TEST(FeatureTensorTest, ScalarBandMatchesDispatchedBand) {
  Clip clip = demo_clip();
  FeatureTensorExtractor ex;
  FeatureTensor fast = ex.extract(clip);
  const bool prev = cpu::force_scalar();
  cpu::set_force_scalar(true);
  FeatureTensor scalar = ex.extract(clip);
  cpu::set_force_scalar(prev);
  EXPECT_EQ(fast.data, scalar.data);
}

TEST(FeatureTensorTest, RejectsTooManyCoeffsForBlock) {
  FeatureTensorConfig cfg;
  cfg.blocks_per_side = 12;
  cfg.coeffs = 3000;  // 50x50 px blocks only have 2500 coefficients
  FeatureTensorExtractor ex(cfg);
  EXPECT_THROW(ex.extract(demo_clip()), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::fte

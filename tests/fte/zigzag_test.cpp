#include "fte/zigzag.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace hsdl::fte {
namespace {

TEST(ZigzagTest, JpegReferenceOrder8x8Prefix) {
  // First ten positions of the canonical JPEG zig-zag.
  auto order = zigzag_order(8);
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 0}, {0, 1}, {1, 0}, {2, 0}, {1, 1},
      {0, 2}, {0, 3}, {1, 2}, {2, 1}, {3, 0}};
  ASSERT_GE(order.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(order[i], expected[i]) << "position " << i;
}

TEST(ZigzagTest, IsAPermutation) {
  for (std::size_t b : {1u, 2u, 5u, 12u, 50u}) {
    auto order = zigzag_order(b);
    EXPECT_EQ(order.size(), b * b);
    std::set<std::pair<std::size_t, std::size_t>> seen(order.begin(),
                                                       order.end());
    EXPECT_EQ(seen.size(), b * b) << "duplicates at b=" << b;
    for (auto [r, c] : order) {
      EXPECT_LT(r, b);
      EXPECT_LT(c, b);
    }
  }
}

TEST(ZigzagTest, FrequencyMonotoneAcrossDiagonals) {
  // Scan index order never decreases the diagonal number r+c.
  auto order = zigzag_order(12);
  std::size_t prev_diag = 0;
  for (auto [r, c] : order) {
    EXPECT_GE(r + c, prev_diag == 0 ? 0 : prev_diag - 1);
    prev_diag = r + c;
  }
}

TEST(ZigzagTest, PrefixInCornerTriangleNumbers) {
  // For kp < B the prefix is the kp-th triangle number.
  EXPECT_EQ(zigzag_prefix_in_corner(50, 1), 1u);
  EXPECT_EQ(zigzag_prefix_in_corner(50, 2), 3u);
  EXPECT_EQ(zigzag_prefix_in_corner(50, 8), 36u);
  EXPECT_EQ(zigzag_prefix_in_corner(100, 8), 36u);
}

TEST(ZigzagTest, PrefixFullBlockIsEverything) {
  EXPECT_EQ(zigzag_prefix_in_corner(8, 8), 64u);
}

TEST(ZigzagTest, CornerForPrefix) {
  EXPECT_EQ(corner_for_prefix(50, 1), 1u);
  EXPECT_EQ(corner_for_prefix(50, 3), 2u);
  EXPECT_EQ(corner_for_prefix(50, 4), 3u);
  EXPECT_EQ(corner_for_prefix(50, 32), 8u);   // 36 >= 32
  EXPECT_EQ(corner_for_prefix(50, 36), 8u);
  EXPECT_EQ(corner_for_prefix(50, 37), 9u);
  EXPECT_EQ(corner_for_prefix(4, 16), 4u);
}

TEST(ZigzagTest, CornerForPrefixBounds) {
  EXPECT_THROW(corner_for_prefix(4, 0), hsdl::CheckError);
  EXPECT_THROW(corner_for_prefix(4, 17), hsdl::CheckError);
}

TEST(ZigzagTest, TakeMatchesOrder) {
  const std::size_t b = 4;
  std::vector<float> block(b * b);
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i] = static_cast<float>(i);
  std::vector<float> scan(b * b);
  zigzag_take(block.data(), b, b * b, scan.data());
  auto order = zigzag_order(b);
  for (std::size_t i = 0; i < scan.size(); ++i)
    EXPECT_FLOAT_EQ(scan[i], block[order[i].first * b + order[i].second]);
}

TEST(ZigzagTest, TakePutRoundTrip) {
  const std::size_t b = 6;
  std::vector<float> block(b * b);
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i] = static_cast<float>(i) * 0.5f;
  std::vector<float> scan(b * b), back(b * b);
  zigzag_take(block.data(), b, b * b, scan.data());
  zigzag_put(scan.data(), b * b, b, back.data());
  EXPECT_EQ(block, back);
}

TEST(ZigzagTest, PutZeroesUnsetPositions) {
  const std::size_t b = 4;
  std::vector<float> scan = {1.0f, 2.0f, 3.0f};
  std::vector<float> block(b * b, 99.0f);
  zigzag_put(scan.data(), 3, b, block.data());
  // Positions 0..2 set, everything else zero.
  int nonzero = 0;
  for (float v : block) nonzero += (v != 0.0f);
  EXPECT_EQ(nonzero, 3);
  EXPECT_FLOAT_EQ(block[0], 1.0f);          // (0,0)
  EXPECT_FLOAT_EQ(block[1], 2.0f);          // (0,1)
  EXPECT_FLOAT_EQ(block[1 * b + 0], 3.0f);  // (1,0)
}

TEST(ZigzagTest, PartialCornerTakeAgreesWithFullBlockTake) {
  // The key property that lets extraction use a partial DCT: for
  // k <= kp(kp+1)/2, taking from the kp x kp corner equals taking from the
  // full B x B block.
  const std::size_t b = 50, k = 32;
  const std::size_t kp = corner_for_prefix(b, k);
  std::vector<float> block(b * b);
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i] = static_cast<float>((i * 31) % 97);
  std::vector<float> corner(kp * kp);
  for (std::size_t m = 0; m < kp; ++m)
    for (std::size_t n = 0; n < kp; ++n)
      corner[m * kp + n] = block[m * b + n];
  std::vector<float> from_full(k), from_corner(k);
  zigzag_take(block.data(), b, k, from_full.data());
  zigzag_take(corner.data(), kp, k, from_corner.data());
  EXPECT_EQ(from_full, from_corner);
}

TEST(ZigzagTest, TakeRejectsOverlongPrefix) {
  std::vector<float> block(4);
  std::vector<float> scan(5);
  EXPECT_THROW(zigzag_take(block.data(), 2, 5, scan.data()),
               hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::fte

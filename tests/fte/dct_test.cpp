#include "fte/dct.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hsdl::fte {
namespace {

std::vector<float> random_block(std::size_t b, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(b * b);
  for (float& v : out) v = static_cast<float>(rng.uniform());
  return out;
}

class DctRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DctRoundTripTest, InverseRecoversInput) {
  const std::size_t b = GetParam();
  DctPlan plan(b);
  auto in = random_block(b, 42 + b);
  std::vector<float> coeffs(b * b), out(b * b);
  plan.forward(in.data(), coeffs.data());
  plan.inverse(coeffs.data(), out.data());
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_NEAR(in[i], out[i], 1e-4f) << "block " << b << " idx " << i;
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, DctRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 16, 50, 100));

TEST(DctTest, DcCoefficientIsScaledMean) {
  const std::size_t b = 8;
  DctPlan plan(b);
  std::vector<float> in(b * b, 0.5f);
  std::vector<float> coeffs(b * b);
  plan.forward(in.data(), coeffs.data());
  // Orthonormal DCT: X(0,0) = B * mean.
  EXPECT_NEAR(coeffs[0], 0.5f * b, 1e-4f);
  // A constant block has no AC energy.
  for (std::size_t i = 1; i < coeffs.size(); ++i)
    EXPECT_NEAR(coeffs[i], 0.0f, 1e-4f);
}

TEST(DctTest, ParsevalEnergyPreserved) {
  const std::size_t b = 16;
  DctPlan plan(b);
  auto in = random_block(b, 7);
  std::vector<float> coeffs(b * b);
  plan.forward(in.data(), coeffs.data());
  double e_in = 0, e_out = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    e_in += static_cast<double>(in[i]) * in[i];
    e_out += static_cast<double>(coeffs[i]) * coeffs[i];
  }
  EXPECT_NEAR(e_in, e_out, 1e-2);
}

TEST(DctTest, Linearity) {
  const std::size_t b = 8;
  DctPlan plan(b);
  auto a = random_block(b, 1), c = random_block(b, 2);
  std::vector<float> sum(b * b), ca(b * b), cc(b * b), csum(b * b);
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = a[i] + 2.0f * c[i];
  plan.forward(a.data(), ca.data());
  plan.forward(c.data(), cc.data());
  plan.forward(sum.data(), csum.data());
  for (std::size_t i = 0; i < sum.size(); ++i)
    EXPECT_NEAR(csum[i], ca[i] + 2.0f * cc[i], 1e-3f);
}

TEST(DctTest, PartialMatchesFullCorner) {
  const std::size_t b = 50;
  DctPlan plan(b);
  auto in = random_block(b, 11);
  std::vector<float> full(b * b);
  plan.forward(in.data(), full.data());
  for (std::size_t kp : {1u, 3u, 8u, 17u}) {
    std::vector<float> corner(kp * kp);
    plan.partial(in.data(), kp, corner.data());
    for (std::size_t m = 0; m < kp; ++m)
      for (std::size_t n = 0; n < kp; ++n)
        EXPECT_NEAR(corner[m * kp + n], full[m * b + n], 1e-4f)
            << "kp " << kp << " (" << m << "," << n << ")";
  }
}

TEST(DctTest, PartialFullSizeEqualsForward) {
  const std::size_t b = 12;
  DctPlan plan(b);
  auto in = random_block(b, 13);
  std::vector<float> full(b * b), part(b * b);
  plan.forward(in.data(), full.data());
  plan.partial(in.data(), b, part.data());
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_FLOAT_EQ(full[i], part[i]);
}

TEST(DctTest, InversePartialIsLowPassReconstruction) {
  const std::size_t b = 16, kp = 4;
  DctPlan plan(b);
  auto in = random_block(b, 17);
  // Full coefficients, zero out everything outside the kp corner, invert.
  std::vector<float> coeffs(b * b);
  plan.forward(in.data(), coeffs.data());
  std::vector<float> truncated(b * b, 0.0f);
  std::vector<float> corner(kp * kp);
  for (std::size_t m = 0; m < kp; ++m)
    for (std::size_t n = 0; n < kp; ++n) {
      truncated[m * b + n] = coeffs[m * b + n];
      corner[m * kp + n] = coeffs[m * b + n];
    }
  std::vector<float> ref(b * b), out(b * b);
  plan.inverse(truncated.data(), ref.data());
  plan.inverse_partial(corner.data(), kp, out.data());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(out[i], ref[i], 1e-4f);
}

TEST(DctTest, HighFrequencySparsityOnSmoothInput) {
  // A smooth ramp concentrates energy in low frequencies.
  const std::size_t b = 32;
  DctPlan plan(b);
  std::vector<float> in(b * b);
  for (std::size_t y = 0; y < b; ++y)
    for (std::size_t x = 0; x < b; ++x)
      in[y * b + x] = static_cast<float>(x + y) / (2.0f * b);
  std::vector<float> coeffs(b * b);
  plan.forward(in.data(), coeffs.data());
  double low = 0, high = 0;
  for (std::size_t m = 0; m < b; ++m)
    for (std::size_t n = 0; n < b; ++n) {
      double e = static_cast<double>(coeffs[m * b + n]) * coeffs[m * b + n];
      if (m + n < 4)
        low += e;
      else
        high += e;
    }
  EXPECT_GT(low, 100 * high);
}

TEST(DctTest, RejectsInvalidArguments) {
  EXPECT_THROW(DctPlan(0), hsdl::CheckError);
  DctPlan plan(8);
  std::vector<float> buf(64);
  EXPECT_THROW(plan.partial(buf.data(), 0, buf.data()), hsdl::CheckError);
  EXPECT_THROW(plan.partial(buf.data(), 9, buf.data()), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::fte

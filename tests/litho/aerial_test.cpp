#include "litho/aerial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace hsdl::litho {
namespace {

using layout::MaskImage;

TEST(GaussianKernelTest, NormalizedToOne) {
  for (double sigma : {0.5, 1.0, 3.0, 7.5}) {
    auto k = gaussian_kernel_1d(sigma);
    double sum = std::accumulate(k.begin(), k.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6) << "sigma " << sigma;
  }
}

TEST(GaussianKernelTest, SymmetricAndPeakedAtCenter) {
  auto k = gaussian_kernel_1d(2.0);
  ASSERT_EQ(k.size() % 2, 1u);
  const std::size_t mid = k.size() / 2;
  for (std::size_t i = 0; i < mid; ++i)
    EXPECT_FLOAT_EQ(k[i], k[k.size() - 1 - i]);
  for (std::size_t i = 0; i < k.size(); ++i) EXPECT_LE(k[i], k[mid]);
}

TEST(GaussianKernelTest, RadiusCoversThreeSigma) {
  auto k = gaussian_kernel_1d(4.0);
  EXPECT_GE(k.size(), 2 * std::size_t(3 * 4.0) + 1);
}

TEST(GaussianKernelTest, RejectsNonPositiveSigma) {
  EXPECT_THROW(gaussian_kernel_1d(0.0), hsdl::CheckError);
  EXPECT_THROW(gaussian_kernel_1d(-1.0), hsdl::CheckError);
}

TEST(ConvolveTest, IdentityKernel) {
  MaskImage img(8, 8, 1.0);
  img.at(3, 4) = 1.0f;
  auto out = convolve_separable(img, {1.0f});
  EXPECT_DOUBLE_EQ(MaskImage::max_abs_diff(img, out), 0.0);
}

TEST(ConvolveTest, PreservesTotalMassAwayFromBoundary) {
  MaskImage img(64, 64, 1.0);
  img.at(32, 32) = 1.0f;
  auto out = convolve_separable(img, gaussian_kernel_1d(2.0));
  double mass = 0;
  for (std::size_t i = 0; i < out.size(); ++i) mass += out.data()[i];
  EXPECT_NEAR(mass, 1.0, 1e-5);
}

TEST(ConvolveTest, UniformImageStaysUniformInCenter) {
  MaskImage img(64, 64, 1.0, 1.0f);
  auto out = convolve_separable(img, gaussian_kernel_1d(3.0));
  EXPECT_NEAR(out.at(32, 32), 1.0f, 1e-5);
  // Boundary (zero field outside) attenuates toward 0.5 at the edge.
  EXPECT_LT(out.at(0, 32), 0.7f);
}

TEST(ConvolveTest, RejectsEvenKernel) {
  MaskImage img(8, 8, 1.0);
  EXPECT_THROW(convolve_separable(img, {0.5f, 0.5f}), hsdl::CheckError);
}

TEST(AerialImageTest, OpenFrameIntensityNearOne) {
  MaskImage mask(128, 128, 4.0, 1.0f);
  auto aerial = aerial_image(mask, 18.0);
  EXPECT_NEAR(aerial.at(64, 64), 1.0f, 1e-4);
}

TEST(AerialImageTest, IsolatedLinePeakMatchesErf) {
  // A long vertical line of width w has peak intensity erf(w / (2*sqrt(2)*sigma)).
  const double grid = 2.0, sigma = 18.0, width = 40.0;
  MaskImage mask(200, 200, grid);
  const std::size_t x0 = 80, x1 = x0 + std::size_t(width / grid);
  for (std::size_t y = 0; y < 200; ++y)
    for (std::size_t x = x0; x < x1; ++x) mask.at(x, y) = 1.0f;
  auto aerial = aerial_image(mask, sigma);
  const double expected = std::erf(width / (2.0 * std::sqrt(2.0) * sigma));
  EXPECT_NEAR(aerial.at((x0 + x1) / 2, 100), expected, 0.03);
}

TEST(AerialImageTest, BlurMonotoneInSigma) {
  // More blur -> lower peak on a thin feature.
  MaskImage mask(100, 100, 2.0);
  for (std::size_t y = 0; y < 100; ++y)
    for (std::size_t x = 45; x < 55; ++x) mask.at(x, y) = 1.0f;
  auto sharp = aerial_image(mask, 10.0);
  auto blurry = aerial_image(mask, 30.0);
  EXPECT_GT(sharp.at(50, 50), blurry.at(50, 50));
}

TEST(AerialImageTest, IntensityBounded) {
  MaskImage mask(100, 100, 2.0);
  for (std::size_t y = 20; y < 80; ++y)
    for (std::size_t x = 20; x < 80; ++x) mask.at(x, y) = 1.0f;
  auto aerial = aerial_image(mask, 12.0);
  for (std::size_t i = 0; i < aerial.size(); ++i) {
    EXPECT_GE(aerial.data()[i], 0.0f);
    EXPECT_LE(aerial.data()[i], 1.0f + 1e-5f);
  }
}

TEST(AerialImageTest, SeparabilityMatchesFull2d) {
  // Separable Gaussian equals the dense 2-D convolution.
  MaskImage mask(32, 32, 1.0);
  mask.at(10, 12) = 1.0f;
  mask.at(20, 8) = 1.0f;
  const double sigma = 2.0;
  auto out = aerial_image(mask, sigma);
  auto kern = gaussian_kernel_1d(sigma);
  const int radius = static_cast<int>(kern.size() / 2);
  for (int yy : {12, 8, 15}) {
    for (int xx : {10, 20, 16}) {
      double acc = 0.0;
      for (int dy = -radius; dy <= radius; ++dy)
        for (int dx = -radius; dx <= radius; ++dx) {
          int sx = xx + dx, sy = yy + dy;
          if (sx < 0 || sy < 0 || sx >= 32 || sy >= 32) continue;
          acc += kern[std::size_t(dx + radius)] *
                 kern[std::size_t(dy + radius)] *
                 mask.at(std::size_t(sx), std::size_t(sy));
        }
      EXPECT_NEAR(out.at(std::size_t(xx), std::size_t(yy)), acc, 1e-5);
    }
  }
}

}  // namespace
}  // namespace hsdl::litho

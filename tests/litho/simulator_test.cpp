#include "litho/simulator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::litho {
namespace {

using geom::Rect;
using layout::Clip;
using layout::MaskImage;

Clip line_clip(geom::Coord width, geom::Coord clip_size = 1200) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, clip_size, clip_size);
  c.shapes = {Rect::from_xywh((clip_size - width) / 2, 0, width, clip_size)};
  return c;
}

double printed_fraction(const MaskImage& img) { return img.mean(); }

TEST(SimulatorTest, ConfigValidation) {
  LithoConfig bad;
  bad.grid_nm = 0;
  EXPECT_THROW(LithoSimulator{bad}, hsdl::CheckError);
  bad = LithoConfig{};
  bad.threshold = 1.5;
  EXPECT_THROW(LithoSimulator{bad}, hsdl::CheckError);
  bad = LithoConfig{};
  bad.sigma_nm = -3;
  EXPECT_THROW(LithoSimulator{bad}, hsdl::CheckError);
}

TEST(SimulatorTest, RasterizeUsesSimulationGrid) {
  LithoSimulator sim;
  MaskImage m = sim.rasterize(line_clip(200));
  EXPECT_EQ(m.width(), std::size_t(1200 / sim.config().grid_nm));
}

TEST(SimulatorTest, WideLinePrintsAtAllCorners) {
  LithoSimulator sim;
  PrintedStack stack = sim.print(line_clip(200));
  // Sample the line centre mid-height.
  const std::size_t cx = stack.nominal.width() / 2;
  const std::size_t cy = stack.nominal.height() / 2;
  EXPECT_FLOAT_EQ(stack.nominal.at(cx, cy), 1.0f);
  EXPECT_FLOAT_EQ(stack.under.at(cx, cy), 1.0f);
  EXPECT_FLOAT_EQ(stack.over.at(cx, cy), 1.0f);
}

TEST(SimulatorTest, EmptyMaskPrintsNothing) {
  LithoSimulator sim;
  Clip empty;
  empty.window = Rect::from_xywh(0, 0, 1200, 1200);
  PrintedStack stack = sim.print(empty);
  EXPECT_DOUBLE_EQ(printed_fraction(stack.nominal), 0.0);
  EXPECT_DOUBLE_EQ(printed_fraction(stack.over), 0.0);
}

TEST(SimulatorTest, DoseOrderingUnderNominalOver) {
  // Higher dose prints more resist: under <= nominal(defocus aside) ... the
  // robust ordering is under <= over (same aerial, different dose).
  LithoSimulator sim;
  PrintedStack stack = sim.print(line_clip(60));
  EXPECT_LE(printed_fraction(stack.under), printed_fraction(stack.over));
}

TEST(SimulatorTest, PrintedCdGrowsWithMaskCd) {
  LithoSimulator sim;
  double narrow = printed_fraction(sim.print(line_clip(44)).nominal);
  double wide = printed_fraction(sim.print(line_clip(120)).nominal);
  EXPECT_LT(narrow, wide);
}

TEST(SimulatorTest, SubResolutionFeatureVanishes) {
  // A 10 nm sliver is far below the resolution limit: nothing prints.
  LithoSimulator sim;
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = {Rect::from_xywh(600, 0, 10, 1200)};
  PrintedStack stack = sim.print(c);
  EXPECT_DOUBLE_EQ(printed_fraction(stack.nominal), 0.0);
}

TEST(SimulatorTest, DevelopIsThreshold) {
  LithoSimulator sim;
  MaskImage aerial(4, 4, 4.0);
  aerial.at(0, 0) = 0.6f;
  aerial.at(1, 0) = 0.49f;
  aerial.at(2, 0) = 0.51f;
  MaskImage printed = sim.develop(aerial, ProcessCorner{1.0, 1.0});
  EXPECT_FLOAT_EQ(printed.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(printed.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(printed.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(printed.at(3, 3), 0.0f);
}

TEST(SimulatorTest, DoseScalesEffectiveThreshold) {
  LithoSimulator sim;
  MaskImage aerial(2, 2, 4.0);
  aerial.at(0, 0) = 0.48f;
  // At dose 1.0, 0.48 < 0.5 does not print; at dose 1.1 it does.
  EXPECT_FLOAT_EQ(sim.develop(aerial, {1.0, 1.0}).at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(sim.develop(aerial, {1.1, 1.0}).at(0, 0), 1.0f);
}

TEST(SimulatorTest, TightPitchBridgesAtOverCorner) {
  // Two lines separated by a deeply sub-rule 20 nm gap: over-dose closes it.
  LithoSimulator sim;
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = {Rect::from_xywh(500, 0, 80, 1200),
              Rect::from_xywh(600, 0, 80, 1200)};
  PrintedStack stack = sim.print(c);
  // Gap centre at x=590 nm.
  const auto gx = static_cast<std::size_t>(590 / sim.config().grid_nm);
  const std::size_t cy = stack.over.height() / 2;
  EXPECT_FLOAT_EQ(stack.over.at(gx, cy), 1.0f) << "gap should bridge";
}

TEST(SimulatorTest, RelaxedPitchDoesNotBridge) {
  LithoSimulator sim;
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = {Rect::from_xywh(400, 0, 80, 1200),
              Rect::from_xywh(600, 0, 80, 1200)};  // 120 nm gap
  PrintedStack stack = sim.print(c);
  const auto gx = static_cast<std::size_t>(540 / sim.config().grid_nm);
  const std::size_t cy = stack.over.height() / 2;
  EXPECT_FLOAT_EQ(stack.over.at(gx, cy), 0.0f);
}

}  // namespace
}  // namespace hsdl::litho

// Calibration invariants of the default litho model.
//
// These tests pin down the population statistics that the benchmark
// factory relies on: the default model must label generated clips with a
// hotspot rate that (a) is far from both degenerate extremes and (b) grows
// with generator stress. If a litho default is retuned, these tests keep
// the learning problem well-posed.
#include <gtest/gtest.h>

#include "layout/generator.hpp"
#include "litho/labeler.hpp"

namespace hsdl::litho {
namespace {

struct Rates {
  double hotspot;
  double unknown;
};

Rates measure(double stress, int n = 120, std::uint64_t seed = 555) {
  layout::GeneratorConfig cfg;
  cfg.stress = stress;
  layout::ClipGenerator gen(cfg, seed);
  HotspotLabeler labeler;
  int hs = 0, unk = 0;
  for (int i = 0; i < n; ++i) {
    switch (labeler.label(gen.generate())) {
      case layout::HotspotLabel::kHotspot:
        ++hs;
        break;
      case layout::HotspotLabel::kUnknown:
        ++unk;
        break;
      default:
        break;
    }
  }
  return {static_cast<double>(hs) / n, static_cast<double>(unk) / n};
}

TEST(CalibrationTest, LowStressHotspotRateModerate) {
  Rates r = measure(0.25);
  EXPECT_GT(r.hotspot, 0.03);
  EXPECT_LT(r.hotspot, 0.40);
}

TEST(CalibrationTest, HighStressHotspotRateHigher) {
  Rates low = measure(0.25);
  Rates high = measure(0.75);
  EXPECT_GT(high.hotspot, low.hotspot);
}

TEST(CalibrationTest, HighStressNotDegenerate) {
  Rates r = measure(0.75);
  EXPECT_LT(r.hotspot, 0.75);
  EXPECT_GT(r.hotspot, 0.10);
}

TEST(CalibrationTest, AmbiguousBandIsMinority) {
  Rates r = measure(0.5);
  EXPECT_LT(r.unknown, 0.5);
}

TEST(CalibrationTest, IsolatedArchetypeAlmostNeverHotspot) {
  layout::GeneratorConfig cfg;
  cfg.stress = 0.5;
  layout::ClipGenerator gen(cfg, 556);
  HotspotLabeler labeler;
  int hs = 0;
  for (int i = 0; i < 40; ++i)
    hs += labeler.label(gen.generate(layout::Archetype::kIsolated)) ==
          layout::HotspotLabel::kHotspot;
  EXPECT_LE(hs, 2);
}

TEST(CalibrationTest, StressedTipToTipOftenHotspot) {
  layout::GeneratorConfig cfg;
  cfg.stress = 0.9;
  layout::ClipGenerator gen(cfg, 557);
  HotspotLabeler labeler;
  int hs = 0;
  for (int i = 0; i < 40; ++i)
    hs += labeler.label(gen.generate(layout::Archetype::kTipToTip)) ==
          layout::HotspotLabel::kHotspot;
  EXPECT_GE(hs, 4);
}

}  // namespace
}  // namespace hsdl::litho

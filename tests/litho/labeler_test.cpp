#include "litho/labeler.hpp"

#include <gtest/gtest.h>

#include "layout/generator.hpp"

namespace hsdl::litho {
namespace {

using geom::Rect;
using layout::Clip;
using layout::HotspotLabel;

Clip clip_1200(std::vector<Rect> shapes) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = std::move(shapes);
  return c;
}

TEST(LabelerTest, EmptyClipIsClean) {
  HotspotLabeler labeler;
  Clip empty = clip_1200({});
  EXPECT_FALSE(labeler.analyze(empty).is_hotspot());
  EXPECT_EQ(labeler.label(empty), HotspotLabel::kNonHotspot);
}

TEST(LabelerTest, RobustIsolatedBlockIsClean) {
  HotspotLabeler labeler;
  Clip c = clip_1200({Rect::from_xywh(400, 400, 300, 300)});
  EXPECT_EQ(labeler.label(c), HotspotLabel::kNonHotspot);
}

TEST(LabelerTest, RelaxedLineSpaceArrayIsClean) {
  // 80 nm lines at 160 nm space: comfortably printable.
  std::vector<Rect> shapes;
  for (geom::Coord y = 0; y + 80 <= 1200; y += 240)
    shapes.push_back(Rect::from_xywh(0, y, 1200, 80));
  HotspotLabeler labeler;
  EXPECT_EQ(labeler.label(clip_1200(shapes)), HotspotLabel::kNonHotspot);
}

TEST(LabelerTest, DeepSubRuleGapBridges) {
  // Two wide lines with a 20 nm gap in the clip core.
  HotspotLabeler labeler;
  Clip c = clip_1200({Rect::from_xywh(400, 200, 80, 800),
                      Rect::from_xywh(500, 200, 80, 800)});
  auto report = labeler.analyze(c);
  bool has_bridge = false;
  for (const Defect& d : report.defects)
    has_bridge |= d.type == DefectType::kBridging;
  EXPECT_TRUE(has_bridge);
  EXPECT_EQ(labeler.label(c), HotspotLabel::kHotspot);
}

TEST(LabelerTest, TinyContactNecksOrVanishes) {
  // A 36 nm contact is below the printable size at the under corner.
  HotspotLabeler labeler;
  Clip c = clip_1200({Rect::from_xywh(580, 580, 36, 36)});
  auto report = labeler.analyze(c);
  EXPECT_TRUE(report.is_hotspot());
}

TEST(LabelerTest, LargeContactIsClean) {
  HotspotLabeler labeler;
  Clip c = clip_1200({Rect::from_xywh(560, 560, 80, 80)});
  EXPECT_EQ(labeler.label(c), HotspotLabel::kNonHotspot);
}

TEST(LabelerTest, AbuttingRectsOfSameWireAreNotBridges) {
  // An L built from two overlapping rects: no space is crossed, so the
  // junction must not be reported as bridging.
  HotspotLabeler labeler;
  Clip c = clip_1200({Rect::from_xywh(300, 500, 600, 80),
                      Rect::from_xywh(560, 300, 80, 600)});
  auto report = labeler.analyze(c);
  for (const Defect& d : report.defects)
    EXPECT_NE(d.type, DefectType::kBridging)
        << "bridge at " << d.location.x << "," << d.location.y;
}

TEST(LabelerTest, DefectsOutsideCoreMarginIgnored) {
  // A defect-prone tiny contact hugging the clip boundary is the
  // neighbouring clip's responsibility.
  HotspotLabeler labeler;
  Clip c = clip_1200({Rect::from_xywh(2, 2, 36, 36)});
  EXPECT_FALSE(labeler.analyze(c).is_hotspot());
}

TEST(LabelerTest, DefectLocationInsideClip) {
  HotspotLabeler labeler;
  Clip c = clip_1200({Rect::from_xywh(400, 200, 80, 800),
                      Rect::from_xywh(500, 200, 80, 800)});
  for (const Defect& d : labeler.analyze(c).defects)
    EXPECT_TRUE(c.window.contains(d.location));
}

TEST(LabelerTest, SeverityPositive) {
  HotspotLabeler labeler;
  Clip c = clip_1200({Rect::from_xywh(580, 580, 36, 36)});
  for (const Defect& d : labeler.analyze(c).defects)
    EXPECT_GT(d.severity_nm, 0.0);
}

TEST(LabelerTest, LabelAllFillsLabels) {
  HotspotLabeler labeler;
  std::vector<layout::LabeledClip> clips(2);
  clips[0].clip = clip_1200({Rect::from_xywh(400, 400, 300, 300)});
  clips[1].clip = clip_1200({Rect::from_xywh(400, 200, 80, 800),
                             Rect::from_xywh(500, 200, 80, 800)});
  labeler.label_all(clips);
  EXPECT_EQ(clips[0].label, HotspotLabel::kNonHotspot);
  EXPECT_EQ(clips[1].label, HotspotLabel::kHotspot);
}

TEST(LabelerTest, DefectTypeNames) {
  EXPECT_STREQ(to_string(DefectType::kNecking), "necking");
  EXPECT_STREQ(to_string(DefectType::kBridging), "bridging");
  EXPECT_STREQ(to_string(DefectType::kLineEndPullback),
               "line-end-pullback");
}

TEST(LabelerTest, MildHarshOrdering) {
  // Anything hotspot under mild corners must also be hotspot under harsh
  // ones; sample generated clips to exercise the property.
  layout::GeneratorConfig gcfg;
  gcfg.stress = 0.5;
  layout::ClipGenerator gen(gcfg, 2024);
  LithoConfig cfg;
  HotspotLabeler mild(mild_variant(cfg));
  HotspotLabeler harsh(harsh_variant(cfg));
  for (int i = 0; i < 15; ++i) {
    Clip c = gen.generate();
    if (mild.analyze(c).is_hotspot())
      EXPECT_TRUE(harsh.analyze(c).is_hotspot()) << "clip " << i;
  }
}

TEST(LabelerTest, LabelConsistentWithVariantAnalysis) {
  layout::GeneratorConfig gcfg;
  gcfg.stress = 0.5;
  layout::ClipGenerator gen(gcfg, 77);
  LithoConfig cfg;
  HotspotLabeler labeler(cfg);
  HotspotLabeler mild(mild_variant(cfg));
  HotspotLabeler harsh(harsh_variant(cfg));
  for (int i = 0; i < 10; ++i) {
    Clip c = gen.generate();
    HotspotLabel l = labeler.label(c);
    const bool mild_hs = mild.analyze(c).is_hotspot();
    const bool harsh_hs = harsh.analyze(c).is_hotspot();
    if (l == HotspotLabel::kHotspot) EXPECT_TRUE(mild_hs);
    if (l == HotspotLabel::kNonHotspot) EXPECT_FALSE(harsh_hs);
    if (l == HotspotLabel::kUnknown) {
      EXPECT_FALSE(mild_hs);
      EXPECT_TRUE(harsh_hs);
    }
  }
}

}  // namespace
}  // namespace hsdl::litho

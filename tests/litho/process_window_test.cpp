#include "litho/process_window.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "litho/aerial.hpp"
#include "litho/labeler.hpp"

namespace hsdl::litho {
namespace {

using geom::Rect;
using layout::Clip;

Clip clip_1200(std::vector<Rect> shapes) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = std::move(shapes);
  return c;
}

TEST(ProcessWindowTest, RobustPatternHasFullWindow) {
  Clip c = clip_1200({Rect::from_xywh(400, 400, 300, 300)});
  ProcessWindowConfig cfg;
  ProcessWindowResult r = measure_process_window(c, cfg);
  EXPECT_EQ(r.conditions, cfg.dose_steps * cfg.blur_steps);
  EXPECT_DOUBLE_EQ(r.window_fraction(), 1.0);
}

TEST(ProcessWindowTest, SevereDefectHasNarrowWindow) {
  // 20 nm gap bridges across most of the dose range.
  Clip c = clip_1200({Rect::from_xywh(400, 200, 80, 800),
                      Rect::from_xywh(500, 200, 80, 800)});
  ProcessWindowConfig cfg;
  ProcessWindowResult r = measure_process_window(c, cfg);
  EXPECT_LT(r.window_fraction(), 0.5);
}

TEST(ProcessWindowTest, HotspotsHaveSmallerWindows) {
  // The paper's Section 2 definition, checked directly: the labeler's
  // hotspot class must have a smaller measured process window than its
  // non-hotspot class.
  Clip clean = clip_1200({Rect::from_xywh(300, 300, 200, 600)});
  Clip marginal = clip_1200({Rect::from_xywh(560, 560, 40, 40)});
  ProcessWindowConfig cfg;
  EXPECT_GT(measure_process_window(clean, cfg).window_fraction(),
            measure_process_window(marginal, cfg).window_fraction());
}

TEST(ProcessWindowTest, SingleConditionGrid) {
  Clip c = clip_1200({Rect::from_xywh(400, 400, 300, 300)});
  ProcessWindowConfig cfg;
  cfg.dose_steps = 1;
  cfg.blur_steps = 1;
  ProcessWindowResult r = measure_process_window(c, cfg);
  EXPECT_EQ(r.conditions, 1u);
}

TEST(ProcessWindowTest, EmptyClipAlwaysClean) {
  ProcessWindowConfig cfg;
  ProcessWindowResult r = measure_process_window(clip_1200({}), cfg);
  EXPECT_DOUBLE_EQ(r.window_fraction(), 1.0);
}

TEST(ProcessWindowTest, ValidationErrors) {
  ProcessWindowConfig cfg;
  cfg.dose_steps = 0;
  EXPECT_THROW(measure_process_window(clip_1200({}), cfg),
               hsdl::CheckError);
  cfg = ProcessWindowConfig{};
  cfg.dose_min = 1.2;
  cfg.dose_max = 1.0;
  EXPECT_THROW(measure_process_window(clip_1200({}), cfg),
               hsdl::CheckError);
}

TEST(AerialMixtureTest, EmptyMixtureMatchesSingleGaussian) {
  layout::MaskImage mask(100, 100, 4.0);
  for (std::size_t y = 40; y < 60; ++y)
    for (std::size_t x = 0; x < 100; ++x) mask.at(x, y) = 1.0f;
  auto single = aerial_image(mask, 18.0);
  auto mixture = aerial_image_mixture(mask, 18.0, {});
  EXPECT_DOUBLE_EQ(layout::MaskImage::max_abs_diff(single, mixture), 0.0);
}

TEST(AerialMixtureTest, DegenerateOneTermMatchesSingle) {
  layout::MaskImage mask(100, 100, 4.0);
  mask.at(50, 50) = 1.0f;
  auto single = aerial_image(mask, 18.0);
  auto mixture = aerial_image_mixture(mask, 18.0, {{2.0, 1.0}});
  EXPECT_LT(layout::MaskImage::max_abs_diff(single, mixture), 1e-6);
}

TEST(AerialMixtureTest, OpenFrameStaysNormalized) {
  layout::MaskImage mask(128, 128, 4.0, 1.0f);
  auto mixture =
      aerial_image_mixture(mask, 18.0, {{0.85, 1.0}, {0.15, 2.5}});
  EXPECT_NEAR(mixture.at(64, 64), 1.0f, 1e-4f);
}

TEST(AerialMixtureTest, FlareTermSpreadsIntensity) {
  // Adding a wide second kernel lowers the peak and raises the tails.
  layout::MaskImage mask(200, 200, 4.0);
  for (std::size_t y = 95; y < 105; ++y)
    for (std::size_t x = 0; x < 200; ++x) mask.at(x, y) = 1.0f;
  auto sharp = aerial_image_mixture(mask, 18.0, {});
  auto flared =
      aerial_image_mixture(mask, 18.0, {{0.7, 1.0}, {0.3, 3.0}});
  EXPECT_LT(flared.at(100, 100), sharp.at(100, 100));
  EXPECT_GT(flared.at(100, 140), sharp.at(100, 140));
}

TEST(AerialMixtureTest, MixtureLabelingStillWorks) {
  LithoConfig cfg;
  cfg.kernel_mixture = {{0.85, 1.0}, {0.15, 2.0}};
  HotspotLabeler labeler(cfg);
  Clip clean = clip_1200({Rect::from_xywh(400, 400, 300, 300)});
  EXPECT_EQ(labeler.label(clean), layout::HotspotLabel::kNonHotspot);
}

TEST(AerialMixtureTest, InvalidTermsRejected) {
  layout::MaskImage mask(32, 32, 4.0);
  EXPECT_THROW(aerial_image_mixture(mask, 18.0, {{0.0, 1.0}}),
               hsdl::CheckError);
  EXPECT_THROW(aerial_image_mixture(mask, 18.0, {{1.0, -1.0}}),
               hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::litho

#include "nn/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/cpuinfo.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"

namespace hsdl::nn {
namespace {

TEST(ActQuantTest, RoundTripWithinHalfStep) {
  const ActQuant q = calibrate_act(-1.5f, 2.0f);
  ASSERT_GT(q.scale, 0.0f);
  for (float x = -1.5f; x <= 2.0f; x += 0.013f) {
    const float back = dequantize_value(quantize_value(x, q), q);
    EXPECT_NEAR(back, x, q.scale / 2.0f + 1e-6f) << "x=" << x;
  }
}

TEST(ActQuantTest, ZeroIsExactlyRepresentable) {
  // Padding relies on 0 mapping to the zero point and back to exactly 0.
  for (auto [lo, hi] : {std::pair<float, float>{-1.0f, 1.0f},
                        {0.25f, 3.0f},
                        {-4.0f, -0.5f}}) {
    const ActQuant q = calibrate_act(lo, hi);
    const std::uint8_t z = quantize_value(0.0f, q);
    EXPECT_EQ(z, static_cast<std::uint8_t>(q.zero_point));
    EXPECT_EQ(dequantize_value(z, q), 0.0f);
  }
}

TEST(ActQuantTest, PostReluRangeGetsZeroPointZero) {
  const ActQuant q = calibrate_act(0.0f, 5.0f);
  EXPECT_EQ(q.zero_point, 0);
  EXPECT_EQ(quantize_value(5.0f, q), 127);
}

TEST(ActQuantTest, ConstantTensorFallsBackToUnitScale) {
  const ActQuant q = calibrate_act(0.0f, 0.0f);
  EXPECT_EQ(q.scale, 1.0f);
  EXPECT_EQ(q.zero_point, 0);
}

TEST(ActQuantTest, OutOfRangeValuesSaturate) {
  const ActQuant q = calibrate_act(-1.0f, 1.0f);
  EXPECT_EQ(quantize_value(1000.0f, q), 127);
  EXPECT_EQ(quantize_value(-1000.0f, q), 0);
}

/// The HotspotCnn-shaped stack QuantizedNet supports, scaled down.
Sequential tiny_net(Rng& rng) {
  Sequential net;
  Conv2dConfig c;
  c.in_channels = 2;
  c.out_channels = 4;
  c.kernel = 3;
  c.padding = 1;
  net.emplace<Conv2d>(c, rng);
  net.emplace<Relu>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(4 * 4 * 4, 8, rng);
  net.emplace<Relu>();
  net.emplace<Linear>(8, 2, rng);
  return net;
}

Tensor random_batch(std::size_t n, Rng& rng) {
  Tensor x({n, 2, 8, 8});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.normal(0.0, 0.5));
  return x;
}

TEST(QuantizedNetTest, ProbabilitiesCloseToFp32) {
  Rng rng(23);
  Sequential net = tiny_net(rng);
  Tensor cal = random_batch(16, rng);
  QuantizedNet qn(net, cal);
  EXPECT_EQ(qn.num_quantized_layers(), 3u);  // conv + 2 linears

  Tensor x = random_batch(8, rng);
  Tensor probs = qn.probabilities(x);
  ASSERT_EQ(probs.shape(), (std::vector<std::size_t>{8, 2}));
  Tensor logits = net.infer(x);
  for (std::size_t i = 0; i < 8; ++i) {
    float ref[2];
    softmax_row(logits.data() + i * 2, 2, ref);
    EXPECT_NEAR(probs[i * 2] + probs[i * 2 + 1], 1.0f, 1e-5f);
    EXPECT_NEAR(probs[i * 2], ref[0], 0.1f) << "sample " << i;
  }
}

TEST(QuantizedNetTest, ScalarAndAvx2AreBitwiseIdentical) {
  // Integer accumulation is exact, so forcing the scalar kernels must not
  // change a single bit of the output.
  Rng rng(29);
  Sequential net = tiny_net(rng);
  Tensor cal = random_batch(12, rng);
  QuantizedNet qn(net, cal);
  Tensor x = random_batch(5, rng);
  Tensor fast = qn.probabilities(x);
  const bool prev = cpu::force_scalar();
  cpu::set_force_scalar(true);
  Tensor scalar = qn.probabilities(x);
  cpu::set_force_scalar(prev);
  ASSERT_EQ(fast.shape(), scalar.shape());
  ASSERT_EQ(0, std::memcmp(fast.data(), scalar.data(),
                           fast.numel() * sizeof(float)));
}

TEST(QuantizedNetTest, ThreadCountDoesNotChangeResults) {
  Rng rng(31);
  Sequential net = tiny_net(rng);
  Tensor cal = random_batch(12, rng);
  QuantizedNet qn(net, cal);
  Tensor x = random_batch(9, rng);
  set_num_threads(1);
  Tensor serial = qn.probabilities(x);
  set_num_threads(4);
  Tensor parallel = qn.probabilities(x);
  set_num_threads(0);  // restore the default pool size
  ASSERT_EQ(serial.shape(), parallel.shape());
  ASSERT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                           serial.numel() * sizeof(float)));
}

TEST(QuantizedNetTest, RejectsUnsupportedLayer) {
  Rng rng(37);
  Sequential net;
  net.emplace<Linear>(4, 4, rng);
  net.emplace<Sigmoid>();  // not part of the quantizable serving stack
  net.emplace<Linear>(4, 2, rng);
  Tensor cal({3, 4}, 0.1f);
  EXPECT_THROW(QuantizedNet(net, cal), CheckError);
}

TEST(QuantizedNetTest, RejectsInputShapeMismatch) {
  Rng rng(41);
  Sequential net = tiny_net(rng);
  Tensor cal = random_batch(4, rng);
  QuantizedNet qn(net, cal);
  Tensor bad({2, 2, 8, 7}, 0.0f);
  EXPECT_THROW(qn.probabilities(bad), CheckError);
}

}  // namespace
}  // namespace hsdl::nn

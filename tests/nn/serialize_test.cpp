#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/io.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace hsdl::nn {
namespace {

Sequential make_net(std::uint64_t seed) {
  Rng rng(seed);
  Sequential seq;
  seq.emplace<Linear>(4, 3, rng);
  seq.emplace<Linear>(3, 2, rng);
  return seq;
}

TEST(SerializeTest, RoundTripRestoresValues) {
  Sequential a = make_net(1);
  Sequential b = make_net(2);  // different weights
  std::stringstream ss;
  save_params(ss, a.params());
  load_params(ss, b.params());
  auto pa = a.params(), pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j)
      EXPECT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeTest, RoundTripPredictionsIdentical) {
  Sequential a = make_net(3);
  Sequential b = make_net(4);
  std::stringstream ss;
  save_params(ss, a.params());
  load_params(ss, b.params());
  Tensor x({2, 4}, 0.7f);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i)
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(SerializeTest, BadMagicRejected) {
  Sequential net = make_net(5);
  std::stringstream ss("NOTACKPT________garbage");
  EXPECT_THROW(load_params(ss, net.params()), CheckError);
}

TEST(SerializeTest, TruncatedPayloadRejected) {
  Sequential a = make_net(6);
  std::stringstream ss;
  save_params(ss, a.params());
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() / 2));
  Sequential b = make_net(7);
  EXPECT_THROW(load_params(cut, b.params()), CheckError);
}

TEST(SerializeTest, ParamCountMismatchRejected) {
  Sequential a = make_net(8);
  std::stringstream ss;
  save_params(ss, a.params());
  Rng rng(9);
  Sequential small;
  small.emplace<Linear>(4, 3, rng);
  EXPECT_THROW(load_params(ss, small.params()), CheckError);
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Sequential a = make_net(10);
  std::stringstream ss;
  save_params(ss, a.params());
  Rng rng(11);
  Sequential different;
  different.emplace<Linear>(5, 3, rng);  // wrong fan-in
  different.emplace<Linear>(3, 2, rng);
  EXPECT_THROW(load_params(ss, different.params()), CheckError);
}

TEST(SerializeTest, FileRoundTrip) {
  Sequential a = make_net(12);
  Sequential b = make_net(13);
  const std::string path = ::testing::TempDir() + "/ckpt_test.bin";
  save_params_file(path, a.params());
  load_params_file(path, b.params());
  Tensor x({1, 4}, 1.0f);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i)
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(SerializeTest, MissingFileThrows) {
  Sequential a = make_net(14);
  EXPECT_THROW(load_params_file("/nonexistent/x.bin", a.params()),
               CheckError);
}

TEST(SnapshotTest, SnapshotRestoreRoundTrip) {
  Sequential net = make_net(15);
  auto snap = snapshot_params(net.params());
  // Mutate, then restore.
  for (Param* p : net.params()) p->value.fill(0.0f);
  restore_params(snap, net.params());
  for (std::size_t i = 0; i < snap.size(); ++i)
    for (std::size_t j = 0; j < snap[i].numel(); ++j)
      EXPECT_FLOAT_EQ(net.params()[i]->value[j], snap[i][j]);
}

TEST(SnapshotTest, SnapshotIsDeepCopy) {
  Sequential net = make_net(16);
  auto snap = snapshot_params(net.params());
  const float orig = snap[0][0];
  net.params()[0]->value[0] = orig + 100.0f;
  EXPECT_FLOAT_EQ(snap[0][0], orig);
}

TEST(SnapshotTest, SizeMismatchThrows) {
  Sequential net = make_net(17);
  std::vector<Tensor> wrong(1);
  EXPECT_THROW(restore_params(wrong, net.params()), CheckError);
}

TEST(SerializeTest, WritesVersion2Container) {
  Sequential net = make_net(18);
  const std::string buf = serialize_params(net.params());
  ASSERT_GE(buf.size(), io::kFormatHeaderSize);
  EXPECT_EQ(buf.substr(0, 7), "HSDLNN2");
  EXPECT_EQ(buf[7], '\0');
}

TEST(SerializeTest, SaveIsBitwiseDeterministic) {
  Sequential a = make_net(19);
  const std::string first = serialize_params(a.params());
  Sequential b = make_net(20);
  deserialize_params(first, b.params());
  // Same bytes from a repeat save and from a loaded copy.
  EXPECT_EQ(serialize_params(a.params()), first);
  EXPECT_EQ(serialize_params(b.params()), first);
}

TEST(SerializeTest, TrailingBytesRejectedV2) {
  Sequential a = make_net(21);
  const std::string good = serialize_params(a.params());
  Sequential b = make_net(22);
  EXPECT_THROW(deserialize_params(good + std::string(1, '\0'), b.params()),
               CheckError);
  std::stringstream ss(good + "x");
  EXPECT_THROW(load_params(ss, b.params()), CheckError);
}

/// Hand-built legacy v1 image: "HSDLNN1\n", native-endian u64 fields,
/// raw float payloads, no checksums — exactly what the old writer
/// emitted.
std::string v1_bytes(const std::vector<Param*>& params) {
  std::string out("HSDLNN1\n", 8);
  auto put_u64 = [&out](std::uint64_t v) {
    char b[sizeof(v)];
    std::memcpy(b, &v, sizeof(v));
    out.append(b, sizeof(v));
  };
  put_u64(params.size());
  for (const Param* p : params) {
    put_u64(p->name.size());
    out += p->name;
    put_u64(p->value.dim());
    for (std::size_t e : p->value.shape()) put_u64(e);
    out.append(reinterpret_cast<const char*>(p->value.data()),
               p->value.numel() * sizeof(float));
  }
  return out;
}

TEST(SerializeTest, LegacyV1CheckpointStillLoads) {
  Sequential a = make_net(23);
  Sequential b = make_net(24);
  deserialize_params(v1_bytes(a.params()), b.params());
  auto pa = a.params(), pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j)
      EXPECT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeTest, TrailingBytesRejectedV1) {
  Sequential a = make_net(25);
  Sequential b = make_net(26);
  EXPECT_THROW(deserialize_params(v1_bytes(a.params()) + "z", b.params()),
               CheckError);
}

TEST(SerializeTest, InterruptedSaveLeavesPreviousCheckpointIntact) {
  Sequential a = make_net(27);
  const std::string path = ::testing::TempDir() + "/ckpt_atomic_test.bin";
  save_params_file(path, a.params());
  // Simulate a crash mid-save: a partial temp file exists, the target
  // was never touched.
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "HSDLNN2";  // truncated garbage
  }
  Sequential b = make_net(28);
  load_params_file(path, b.params());
  for (std::size_t i = 0; i < b.params().size(); ++i)
    for (std::size_t j = 0; j < b.params()[i]->value.numel(); ++j)
      EXPECT_FLOAT_EQ(b.params()[i]->value[j], a.params()[i]->value[j]);
  // The next save overwrites the stale temp and the checkpoint.
  Sequential c = make_net(29);
  save_params_file(path, c.params());
  load_params_file(path, b.params());
  for (std::size_t i = 0; i < b.params().size(); ++i)
    for (std::size_t j = 0; j < b.params()[i]->value.numel(); ++j)
      EXPECT_FLOAT_EQ(b.params()[i]->value[j], c.params()[i]->value[j]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hsdl::nn

#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace hsdl::nn {
namespace {

Sequential make_net(std::uint64_t seed) {
  Rng rng(seed);
  Sequential seq;
  seq.emplace<Linear>(4, 3, rng);
  seq.emplace<Linear>(3, 2, rng);
  return seq;
}

TEST(SerializeTest, RoundTripRestoresValues) {
  Sequential a = make_net(1);
  Sequential b = make_net(2);  // different weights
  std::stringstream ss;
  save_params(ss, a.params());
  load_params(ss, b.params());
  auto pa = a.params(), pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j)
      EXPECT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]);
}

TEST(SerializeTest, RoundTripPredictionsIdentical) {
  Sequential a = make_net(3);
  Sequential b = make_net(4);
  std::stringstream ss;
  save_params(ss, a.params());
  load_params(ss, b.params());
  Tensor x({2, 4}, 0.7f);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i)
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(SerializeTest, BadMagicRejected) {
  Sequential net = make_net(5);
  std::stringstream ss("NOTACKPT________garbage");
  EXPECT_THROW(load_params(ss, net.params()), CheckError);
}

TEST(SerializeTest, TruncatedPayloadRejected) {
  Sequential a = make_net(6);
  std::stringstream ss;
  save_params(ss, a.params());
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() / 2));
  Sequential b = make_net(7);
  EXPECT_THROW(load_params(cut, b.params()), CheckError);
}

TEST(SerializeTest, ParamCountMismatchRejected) {
  Sequential a = make_net(8);
  std::stringstream ss;
  save_params(ss, a.params());
  Rng rng(9);
  Sequential small;
  small.emplace<Linear>(4, 3, rng);
  EXPECT_THROW(load_params(ss, small.params()), CheckError);
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Sequential a = make_net(10);
  std::stringstream ss;
  save_params(ss, a.params());
  Rng rng(11);
  Sequential different;
  different.emplace<Linear>(5, 3, rng);  // wrong fan-in
  different.emplace<Linear>(3, 2, rng);
  EXPECT_THROW(load_params(ss, different.params()), CheckError);
}

TEST(SerializeTest, FileRoundTrip) {
  Sequential a = make_net(12);
  Sequential b = make_net(13);
  const std::string path = ::testing::TempDir() + "/ckpt_test.bin";
  save_params_file(path, a.params());
  load_params_file(path, b.params());
  Tensor x({1, 4}, 1.0f);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.numel(); ++i)
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(SerializeTest, MissingFileThrows) {
  Sequential a = make_net(14);
  EXPECT_THROW(load_params_file("/nonexistent/x.bin", a.params()),
               CheckError);
}

TEST(SnapshotTest, SnapshotRestoreRoundTrip) {
  Sequential net = make_net(15);
  auto snap = snapshot_params(net.params());
  // Mutate, then restore.
  for (Param* p : net.params()) p->value.fill(0.0f);
  restore_params(snap, net.params());
  for (std::size_t i = 0; i < snap.size(); ++i)
    for (std::size_t j = 0; j < snap[i].numel(); ++j)
      EXPECT_FLOAT_EQ(net.params()[i]->value[j], snap[i][j]);
}

TEST(SnapshotTest, SnapshotIsDeepCopy) {
  Sequential net = make_net(16);
  auto snap = snapshot_params(net.params());
  const float orig = snap[0][0];
  net.params()[0]->value[0] = orig + 100.0f;
  EXPECT_FLOAT_EQ(snap[0][0], orig);
}

TEST(SnapshotTest, SizeMismatchThrows) {
  Sequential net = make_net(17);
  std::vector<Tensor> wrong(1);
  EXPECT_THROW(restore_params(wrong, net.params()), CheckError);
}

}  // namespace
}  // namespace hsdl::nn

#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(), 3u);
  EXPECT_EQ(t.extent(0), 2u);
  EXPECT_EQ(t.extent(1), 3u);
  EXPECT_EQ(t.extent(2), 4u);
  EXPECT_EQ(t.numel(), 24u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t({2, 2}, 3.5f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 3.5f);
}

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(TensorTest, ZeroExtentThrows) {
  EXPECT_THROW(Tensor({2, 0, 3}), CheckError);
}

TEST(TensorTest, FromData) {
  Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, FromDataSizeMismatchThrows) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), CheckError);
}

TEST(TensorTest, MultiDimIndexingRowMajor) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
  Tensor q({2, 2, 2, 2});
  q.at(1, 0, 1, 0) = 5.0f;
  EXPECT_FLOAT_EQ(q[1 * 8 + 0 * 4 + 1 * 2 + 0], 5.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), CheckError);
}

TEST(TensorTest, FillAndZero) {
  Tensor t({3, 3}, 1.0f);
  t.fill(2.0f);
  EXPECT_DOUBLE_EQ(t.sum(), 18.0);
  t.zero();
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
}

TEST(TensorTest, AddAndAxpy) {
  Tensor a({2, 2}, 1.0f);
  Tensor b({2, 2}, 2.0f);
  a.add(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 3.0f);
  a.axpy(-0.5f, b);
  EXPECT_FLOAT_EQ(a.at(1, 1), 2.0f);
}

TEST(TensorTest, AddShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(a.add(b), CheckError);
}

TEST(TensorTest, Scale) {
  Tensor t({2}, 3.0f);
  t.scale(2.0f);
  EXPECT_FLOAT_EQ(t[0], 6.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::from_data({4}, {-2, 0, 1, 3});
  EXPECT_DOUBLE_EQ(t.sum(), 2.0);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(4 + 0 + 1 + 9), 1e-6);
}

TEST(TensorTest, ShapeStr) {
  EXPECT_EQ(Tensor({2, 3, 4}).shape_str(), "2x3x4");
  EXPECT_EQ(Tensor({7}).shape_str(), "7");
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(same_shape(Tensor({2, 3}), Tensor({2, 3})));
  EXPECT_FALSE(same_shape(Tensor({2, 3}), Tensor({3, 2})));
  EXPECT_FALSE(same_shape(Tensor({6}), Tensor({2, 3})));
}

TEST(TensorTest, CopySemantics) {
  Tensor a({2, 2}, 1.0f);
  Tensor b = a;
  b.at(0, 0) = 9.0f;
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);  // deep copy
}

}  // namespace
}  // namespace hsdl::nn

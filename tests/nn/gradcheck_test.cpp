// Property tests: analytic gradients of every layer against central finite
// differences, individually and composed into the paper's architecture
// shape. This is the safety net under the whole training pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"

namespace hsdl::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng,
                     double scale = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal() * scale);
  return t;
}

/// Checks dLoss/dParam and dLoss/dInput of `net` by central finite
/// differences. Samples a few indices per tensor to keep runtime bounded.
///
/// Float32 finite differences are inexact near ReLU/max-pool kinks (the
/// perturbation can cross the kink, making the numeric slope a blend of
/// two subgradients), so individual checks may legitimately disagree at a
/// measure-zero set of points. The assertion is therefore statistical:
/// the vast majority of sampled points must agree tightly, and tiny
/// absolute differences always pass.
void check_gradients(Sequential& net, const Tensor& x, const Tensor& target,
                     double tol = 0.02) {
  SoftmaxCrossEntropy loss;
  auto eval = [&](const Tensor& input) {
    return loss.forward(net.forward(input, false), target);
  };

  net.zero_grad();
  loss.forward(net.forward(x, false), target);
  Tensor gx = net.backward(loss.backward());

  const float h = 1e-3f;
  int checks = 0, violations = 0;
  auto record = [&](double numeric, double analytic, const char* what,
                    std::size_t i) {
    ++checks;
    if (std::abs(numeric - analytic) < 1e-4) return;  // FD noise floor
    const double rel = std::abs(numeric - analytic) /
                       std::max(std::abs(numeric), std::abs(analytic));
    if (rel < tol) return;
    ++violations;
    // Surface the details of the worst offenders while staying tolerant
    // of isolated kink crossings (asserted in aggregate below).
    if (violations > 2)
      ADD_FAILURE() << what << "[" << i << "]: numeric " << numeric
                    << " analytic " << analytic;
  };

  for (Param* p : net.params()) {
    const std::size_t stride = std::max<std::size_t>(1, p->value.numel() / 9);
    for (std::size_t i = 0; i < p->value.numel(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + h;
      const double lp = eval(x);
      p->value[i] = orig - h;
      const double lm = eval(x);
      p->value[i] = orig;
      record((lp - lm) / (2.0 * h), p->grad[i], p->name.c_str(), i);
    }
  }
  Tensor xm = x;
  const std::size_t stride = std::max<std::size_t>(1, x.numel() / 9);
  for (std::size_t i = 0; i < x.numel(); i += stride) {
    const float orig = xm[i];
    xm[i] = orig + h;
    const double lp = eval(xm);
    xm[i] = orig - h;
    const double lm = eval(xm);
    xm[i] = orig;
    record((lp - lm) / (2.0 * h), gx[i], "input", i);
  }
  EXPECT_LE(violations, 2) << "of " << checks << " sampled gradients";
  EXPECT_GT(checks, 10);
}

Tensor soft_targets(std::size_t n, Rng& rng) {
  Tensor t({n, 2});
  for (std::size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.uniform(0.05, 0.95));
    t.at(i, 0) = a;
    t.at(i, 1) = 1.0f - a;
  }
  return t;
}

TEST(GradCheckTest, LinearOnly) {
  Rng rng(1);
  Sequential net;
  net.emplace<Linear>(6, 2, rng);
  check_gradients(net, random_tensor({3, 6}, rng), soft_targets(3, rng));
}

TEST(GradCheckTest, LinearReluLinear) {
  Rng rng(2);
  Sequential net;
  net.emplace<Linear>(5, 7, rng);
  net.emplace<Relu>();
  net.emplace<Linear>(7, 2, rng);
  check_gradients(net, random_tensor({4, 5}, rng), soft_targets(4, rng));
}

TEST(GradCheckTest, ConvSamePadding) {
  Rng rng(3);
  Sequential net;
  Conv2dConfig c;
  c.in_channels = 2;
  c.out_channels = 3;
  net.emplace<Conv2d>(c, rng);
  net.emplace<Flatten>();
  net.emplace<Linear>(3 * 4 * 4, 2, rng);
  check_gradients(net, random_tensor({2, 2, 4, 4}, rng),
                  soft_targets(2, rng));
}

TEST(GradCheckTest, ConvValidPaddingStride2) {
  Rng rng(4);
  Sequential net;
  Conv2dConfig c;
  c.in_channels = 1;
  c.out_channels = 2;
  c.kernel = 3;
  c.stride = 2;
  c.padding = 0;
  net.emplace<Conv2d>(c, rng);
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 3 * 3, 2, rng);
  check_gradients(net, random_tensor({1, 1, 7, 7}, rng),
                  soft_targets(1, rng));
}

TEST(GradCheckTest, MaxPoolInStack) {
  Rng rng(5);
  Sequential net;
  Conv2dConfig c;
  c.in_channels = 1;
  c.out_channels = 4;
  net.emplace<Conv2d>(c, rng);
  net.emplace<Relu>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(4 * 3 * 3, 2, rng);
  check_gradients(net, random_tensor({2, 1, 6, 6}, rng),
                  soft_targets(2, rng));
}

TEST(GradCheckTest, SigmoidStack) {
  Rng rng(6);
  Sequential net;
  net.emplace<Linear>(4, 4, rng);
  net.emplace<Sigmoid>();
  net.emplace<Linear>(4, 2, rng);
  check_gradients(net, random_tensor({3, 4}, rng), soft_targets(3, rng));
}

TEST(GradCheckTest, PaperArchitectureMiniature) {
  // Two conv stages + two FC layers, scaled down (input 4x4x3).
  Rng rng(7);
  Sequential net;
  Conv2dConfig c1;
  c1.in_channels = 3;
  c1.out_channels = 4;
  net.emplace<Conv2d>(c1, rng);
  net.emplace<Relu>();
  Conv2dConfig c2;
  c2.in_channels = 4;
  c2.out_channels = 4;
  net.emplace<Conv2d>(c2, rng);
  net.emplace<Relu>();
  net.emplace<MaxPool2d>(2);
  Conv2dConfig c3;
  c3.in_channels = 4;
  c3.out_channels = 6;
  net.emplace<Conv2d>(c3, rng);
  net.emplace<Relu>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(6, 5, rng);
  net.emplace<Relu>();
  net.emplace<Linear>(5, 2, rng);
  check_gradients(net, random_tensor({2, 3, 4, 4}, rng),
                  soft_targets(2, rng), 0.03);
}

TEST(GradCheckTest, BiasedSoftTargetGradients) {
  // Gradients under the paper's biased labels [1-eps, eps].
  Rng rng(8);
  Sequential net;
  net.emplace<Linear>(4, 2, rng);
  Tensor target({3, 2});
  for (std::size_t i = 0; i < 3; ++i) {
    target.at(i, 0) = 0.9f;  // eps = 0.1
    target.at(i, 1) = 0.1f;
  }
  check_gradients(net, random_tensor({3, 4}, rng), target);
}

}  // namespace
}  // namespace hsdl::nn

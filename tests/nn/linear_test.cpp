#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

TEST(LinearTest, KnownAffineMap) {
  Rng rng(1);
  Linear fc(2, 2, rng);
  // W = [[1, 2], [3, 4]], b = [10, 20]; y = x W^T + b.
  fc.weight().value = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  fc.bias().value = Tensor::from_data({2}, {10, 20});
  Tensor x = Tensor::from_data({1, 2}, {1, 1});
  Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 2 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3 + 4 + 20);
}

TEST(LinearTest, BatchRowsIndependent) {
  Rng rng(2);
  Linear fc(3, 4, rng);
  Tensor x({2, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    x.at(0, i) = static_cast<float>(i);
    x.at(1, i) = static_cast<float>(i);
  }
  Tensor y = fc.forward(x, false);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_FLOAT_EQ(y.at(0, j), y.at(1, j));
}

TEST(LinearTest, OutputShape) {
  Rng rng(3);
  Linear fc(288, 250, rng);
  EXPECT_EQ(fc.output_shape({7, 288}), (std::vector<std::size_t>{7, 250}));
  EXPECT_THROW(fc.output_shape({7, 100}), CheckError);
}

TEST(LinearTest, BackwardInputGradient) {
  Rng rng(4);
  Linear fc(2, 1, rng);
  fc.weight().value = Tensor::from_data({1, 2}, {3, -2});
  fc.bias().value.zero();
  Tensor x = Tensor::from_data({1, 2}, {1, 1});
  fc.forward(x, true);
  fc.zero_grad();
  Tensor gx = fc.backward(Tensor({1, 1}, 1.0f));
  // dx = g * W.
  EXPECT_FLOAT_EQ(gx.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(gx.at(0, 1), -2.0f);
}

TEST(LinearTest, BackwardWeightGradient) {
  Rng rng(5);
  Linear fc(2, 1, rng);
  Tensor x = Tensor::from_data({1, 2}, {5, 7});
  fc.forward(x, true);
  fc.zero_grad();
  fc.backward(Tensor({1, 1}, 1.0f));
  // dW = g^T x.
  EXPECT_FLOAT_EQ(fc.weight().grad.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(fc.weight().grad.at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(fc.bias().grad[0], 1.0f);
}

TEST(LinearTest, GradAccumulatesOverBatch) {
  Rng rng(6);
  Linear fc(1, 1, rng);
  Tensor x = Tensor::from_data({2, 1}, {1, 2});
  fc.forward(x, true);
  fc.zero_grad();
  fc.backward(Tensor({2, 1}, 1.0f));
  EXPECT_FLOAT_EQ(fc.weight().grad[0], 3.0f);  // 1 + 2
  EXPECT_FLOAT_EQ(fc.bias().grad[0], 2.0f);    // two samples
}

TEST(LinearTest, ParamsExposesWeightAndBias) {
  Rng rng(7);
  Linear fc(4, 3, rng);
  auto params = fc.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->value.shape(), (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(params[1]->value.shape(), (std::vector<std::size_t>{3}));
}

TEST(LinearTest, WrongInputWidthThrows) {
  Rng rng(8);
  Linear fc(4, 3, rng);
  Tensor x({2, 5});
  EXPECT_THROW(fc.forward(x, false), CheckError);
}

TEST(LinearTest, NameDescribesShape) {
  Rng rng(9);
  EXPECT_EQ(Linear(288, 250, rng).name(), "fc(288->250)");
}

}  // namespace
}  // namespace hsdl::nn

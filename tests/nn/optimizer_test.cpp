#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

TEST(SgdTest, PlainStep) {
  Param p("w", Tensor({2}, 1.0f));
  p.grad = Tensor::from_data({2}, {0.5f, -0.5f});
  SgdOptimizer opt(0.1);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], 1.0f + 0.1f * 0.5f);
}

TEST(SgdTest, LearningRateUpdate) {
  SgdOptimizer opt(1e-3);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1e-3);
  opt.set_learning_rate(5e-4);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 5e-4);
  EXPECT_THROW(opt.set_learning_rate(0.0), CheckError);
}

TEST(SgdTest, InvalidConstruction) {
  EXPECT_THROW(SgdOptimizer(0.0), CheckError);
  EXPECT_THROW(SgdOptimizer(0.1, 1.0), CheckError);
  EXPECT_THROW(SgdOptimizer(0.1, -0.1), CheckError);
}

TEST(SgdTest, MultipleParams) {
  Param a("a", Tensor({1}, 0.0f));
  Param b("b", Tensor({1}, 0.0f));
  a.grad[0] = 1.0f;
  b.grad[0] = 2.0f;
  SgdOptimizer opt(1.0);
  opt.step({&a, &b});
  EXPECT_FLOAT_EQ(a.value[0], -1.0f);
  EXPECT_FLOAT_EQ(b.value[0], -2.0f);
}

TEST(SgdTest, MomentumAcceleratesRepeatedGradients) {
  Param plain("p", Tensor({1}, 0.0f));
  Param with_m("m", Tensor({1}, 0.0f));
  SgdOptimizer opt_plain(0.1);
  SgdOptimizer opt_m(0.1, 0.9);
  for (int i = 0; i < 5; ++i) {
    plain.grad[0] = 1.0f;
    with_m.grad[0] = 1.0f;
    opt_plain.step({&plain});
    opt_m.step({&with_m});
  }
  // Momentum accumulates velocity, so it travels further.
  EXPECT_LT(with_m.value[0], plain.value[0]);
}

TEST(SgdTest, MomentumFirstStepEqualsPlain) {
  Param a("a", Tensor({1}, 0.0f));
  Param b("b", Tensor({1}, 0.0f));
  a.grad[0] = b.grad[0] = 2.0f;
  SgdOptimizer plain(0.1);
  SgdOptimizer momentum(0.1, 0.9);
  plain.step({&a});
  momentum.step({&b});
  EXPECT_FLOAT_EQ(a.value[0], b.value[0]);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 by following df/dw = 2(w - 3).
  Param w("w", Tensor({1}, 0.0f));
  SgdOptimizer opt(0.1);
  for (int i = 0; i < 100; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step({&w});
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Param w("w", Tensor({1}, 0.0f));
  AdamOptimizer opt(0.2);
  for (int i = 0; i < 200; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step({&w});
  }
  EXPECT_NEAR(w.value[0], 3.0f, 0.05f);
}

TEST(AdamTest, FirstStepMagnitudeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr regardless of the
  // gradient scale.
  Param big("b", Tensor({1}, 0.0f));
  Param small("s", Tensor({1}, 0.0f));
  AdamOptimizer o1(0.1), o2(0.1);
  big.grad[0] = 100.0f;
  small.grad[0] = 0.01f;
  o1.step({&big});
  o2.step({&small});
  EXPECT_NEAR(big.value[0], -0.1f, 1e-3f);
  EXPECT_NEAR(small.value[0], -0.1f, 1e-2f);
}

TEST(AdamTest, StepDirectionFollowsGradientSign) {
  Param w("w", Tensor({2}, 0.0f));
  AdamOptimizer opt(0.01);
  w.grad[0] = 1.0f;
  w.grad[1] = -1.0f;
  opt.step({&w});
  EXPECT_LT(w.value[0], 0.0f);
  EXPECT_GT(w.value[1], 0.0f);
}

TEST(AdamTest, ValidationErrors) {
  EXPECT_THROW(AdamOptimizer(0.0), CheckError);
  EXPECT_THROW(AdamOptimizer(0.1, 1.0), CheckError);
  EXPECT_THROW(AdamOptimizer(0.1, 0.9, 1.0), CheckError);
  EXPECT_THROW(AdamOptimizer(0.1, 0.9, 0.999, 0.0), CheckError);
}

TEST(AdamTest, LearningRateUpdate) {
  AdamOptimizer opt(1e-3);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1e-3);
  opt.set_learning_rate(5e-4);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 5e-4);
}

TEST(SgdTest, DecayedRateTakesSmallerSteps) {
  Param w("w", Tensor({1}, 0.0f));
  SgdOptimizer opt(1.0);
  w.grad[0] = 1.0f;
  opt.step({&w});
  const float first_step = -w.value[0];
  opt.set_learning_rate(0.5);
  const float before = w.value[0];
  opt.step({&w});
  EXPECT_FLOAT_EQ(before - w.value[0], first_step * 0.5f);
}

}  // namespace
}  // namespace hsdl::nn

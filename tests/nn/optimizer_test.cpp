#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

TEST(SgdTest, PlainStep) {
  Param p("w", Tensor({2}, 1.0f));
  p.grad = Tensor::from_data({2}, {0.5f, -0.5f});
  SgdOptimizer opt(0.1);
  opt.step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], 1.0f + 0.1f * 0.5f);
}

TEST(SgdTest, LearningRateUpdate) {
  SgdOptimizer opt(1e-3);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1e-3);
  opt.set_learning_rate(5e-4);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 5e-4);
  EXPECT_THROW(opt.set_learning_rate(0.0), CheckError);
}

TEST(SgdTest, InvalidConstruction) {
  EXPECT_THROW(SgdOptimizer(0.0), CheckError);
  EXPECT_THROW(SgdOptimizer(0.1, 1.0), CheckError);
  EXPECT_THROW(SgdOptimizer(0.1, -0.1), CheckError);
}

TEST(SgdTest, MultipleParams) {
  Param a("a", Tensor({1}, 0.0f));
  Param b("b", Tensor({1}, 0.0f));
  a.grad[0] = 1.0f;
  b.grad[0] = 2.0f;
  SgdOptimizer opt(1.0);
  opt.step({&a, &b});
  EXPECT_FLOAT_EQ(a.value[0], -1.0f);
  EXPECT_FLOAT_EQ(b.value[0], -2.0f);
}

TEST(SgdTest, MomentumAcceleratesRepeatedGradients) {
  Param plain("p", Tensor({1}, 0.0f));
  Param with_m("m", Tensor({1}, 0.0f));
  SgdOptimizer opt_plain(0.1);
  SgdOptimizer opt_m(0.1, 0.9);
  for (int i = 0; i < 5; ++i) {
    plain.grad[0] = 1.0f;
    with_m.grad[0] = 1.0f;
    opt_plain.step({&plain});
    opt_m.step({&with_m});
  }
  // Momentum accumulates velocity, so it travels further.
  EXPECT_LT(with_m.value[0], plain.value[0]);
}

TEST(SgdTest, MomentumFirstStepEqualsPlain) {
  Param a("a", Tensor({1}, 0.0f));
  Param b("b", Tensor({1}, 0.0f));
  a.grad[0] = b.grad[0] = 2.0f;
  SgdOptimizer plain(0.1);
  SgdOptimizer momentum(0.1, 0.9);
  plain.step({&a});
  momentum.step({&b});
  EXPECT_FLOAT_EQ(a.value[0], b.value[0]);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 by following df/dw = 2(w - 3).
  Param w("w", Tensor({1}, 0.0f));
  SgdOptimizer opt(0.1);
  for (int i = 0; i < 100; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step({&w});
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Param w("w", Tensor({1}, 0.0f));
  AdamOptimizer opt(0.2);
  for (int i = 0; i < 200; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step({&w});
  }
  EXPECT_NEAR(w.value[0], 3.0f, 0.05f);
}

TEST(AdamTest, FirstStepMagnitudeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr regardless of the
  // gradient scale.
  Param big("b", Tensor({1}, 0.0f));
  Param small("s", Tensor({1}, 0.0f));
  AdamOptimizer o1(0.1), o2(0.1);
  big.grad[0] = 100.0f;
  small.grad[0] = 0.01f;
  o1.step({&big});
  o2.step({&small});
  EXPECT_NEAR(big.value[0], -0.1f, 1e-3f);
  EXPECT_NEAR(small.value[0], -0.1f, 1e-2f);
}

TEST(AdamTest, StepDirectionFollowsGradientSign) {
  Param w("w", Tensor({2}, 0.0f));
  AdamOptimizer opt(0.01);
  w.grad[0] = 1.0f;
  w.grad[1] = -1.0f;
  opt.step({&w});
  EXPECT_LT(w.value[0], 0.0f);
  EXPECT_GT(w.value[1], 0.0f);
}

TEST(AdamTest, ValidationErrors) {
  EXPECT_THROW(AdamOptimizer(0.0), CheckError);
  EXPECT_THROW(AdamOptimizer(0.1, 1.0), CheckError);
  EXPECT_THROW(AdamOptimizer(0.1, 0.9, 1.0), CheckError);
  EXPECT_THROW(AdamOptimizer(0.1, 0.9, 0.999, 0.0), CheckError);
}

TEST(AdamTest, LearningRateUpdate) {
  AdamOptimizer opt(1e-3);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1e-3);
  opt.set_learning_rate(5e-4);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 5e-4);
}

// -- state snapshot/restore (checkpoint substrate) ---------------------------

/// Deterministic synthetic gradient for step `step`, element `i`.
float fake_grad(std::size_t step, std::size_t i) {
  return 0.01f * static_cast<float>(step + 1) -
         0.003f * static_cast<float>(i);
}

void fill_grads(const std::vector<Param*>& params, std::size_t step) {
  for (Param* p : params)
    for (std::size_t i = 0; i < p->grad.numel(); ++i)
      p->grad.data()[i] = fake_grad(step, i);
}

void expect_values_equal(const Param& a, const Param& b) {
  ASSERT_EQ(a.value.numel(), b.value.numel());
  for (std::size_t i = 0; i < a.value.numel(); ++i)
    EXPECT_EQ(a.value[i], b.value[i]) << "element " << i;
}

TEST(SgdTest, MomentumSnapshotRestoreContinuesBitForBit) {
  Param w("w", Tensor({3}, 1.0f)), u("u", Tensor({2, 2}, -0.5f));
  SgdOptimizer opt(0.1, 0.9);
  for (std::size_t step = 0; step < 5; ++step) {
    fill_grads({&w, &u}, step);
    opt.step({&w, &u});
  }
  const std::vector<Tensor> state = opt.snapshot_state({&w, &u});
  ASSERT_EQ(state.size(), 2u);  // one velocity tensor per param
  const Tensor w_vals = w.value, u_vals = u.value;

  // Continue the original run three more steps.
  for (std::size_t step = 5; step < 8; ++step) {
    fill_grads({&w, &u}, step);
    opt.step({&w, &u});
  }

  // Replay from the snapshot on a fresh optimizer: identical trajectory.
  Param w2("w", w_vals), u2("u", u_vals);
  SgdOptimizer opt2(0.1, 0.9);
  opt2.restore_state({&w2, &u2}, state);
  for (std::size_t step = 5; step < 8; ++step) {
    fill_grads({&w2, &u2}, step);
    opt2.step({&w2, &u2});
  }
  expect_values_equal(w, w2);
  expect_values_equal(u, u2);
}

TEST(SgdTest, MomentumFreeSnapshotIsEmpty) {
  Param w("w", Tensor({2}, 1.0f));
  SgdOptimizer opt(0.1);
  fill_grads({&w}, 0);
  opt.step({&w});
  EXPECT_TRUE(opt.snapshot_state({&w}).empty());
  SgdOptimizer opt2(0.1);
  opt2.restore_state({&w}, {});  // empty state accepted
  // A velocity tensor for a momentum-free optimizer is a config error.
  EXPECT_THROW(opt2.restore_state({&w}, {Tensor({2}, 0.0f)}),
               hsdl::CheckError);
}

TEST(SgdTest, RestoreRejectsShapeMismatch) {
  Param w("w", Tensor({3}, 1.0f));
  SgdOptimizer opt(0.1, 0.9);
  EXPECT_THROW(opt.restore_state({&w}, {Tensor({4}, 0.0f)}),
               hsdl::CheckError);
}

TEST(AdamTest, SnapshotRestoreContinuesBitForBit) {
  Param w("w", Tensor({3}, 1.0f)), u("u", Tensor({2, 2}, -0.5f));
  AdamOptimizer opt(1e-2);
  for (std::size_t step = 0; step < 5; ++step) {
    fill_grads({&w, &u}, step);
    opt.step({&w, &u});
  }
  const std::vector<Tensor> state = opt.snapshot_state({&w, &u});
  ASSERT_EQ(state.size(), 4u);  // [m, v] interleaved per param
  const std::uint64_t t = opt.step_count();
  EXPECT_EQ(t, 5u);
  const Tensor w_vals = w.value, u_vals = u.value;

  for (std::size_t step = 5; step < 8; ++step) {
    fill_grads({&w, &u}, step);
    opt.step({&w, &u});
  }

  Param w2("w", w_vals), u2("u", u_vals);
  AdamOptimizer opt2(1e-2);
  opt2.restore_state({&w2, &u2}, state, t);
  EXPECT_EQ(opt2.step_count(), t);
  for (std::size_t step = 5; step < 8; ++step) {
    fill_grads({&w2, &u2}, step);
    opt2.step({&w2, &u2});
  }
  expect_values_equal(w, w2);
  expect_values_equal(u, u2);
  EXPECT_EQ(opt.step_count(), opt2.step_count());
}

TEST(AdamTest, RestoreRejectsMismatchedState) {
  Param w("w", Tensor({2}, 1.0f));
  AdamOptimizer opt(1e-3);
  // Adam state must be exactly two tensors (m, v) per param.
  EXPECT_THROW(opt.restore_state({&w}, {Tensor({2}, 0.0f)}, 1),
               hsdl::CheckError);
  EXPECT_THROW(
      opt.restore_state({&w}, {Tensor({3}, 0.0f), Tensor({2}, 0.0f)}, 1),
      hsdl::CheckError);
}

TEST(SgdTest, DecayedRateTakesSmallerSteps) {
  Param w("w", Tensor({1}, 0.0f));
  SgdOptimizer opt(1.0);
  w.grad[0] = 1.0f;
  opt.step({&w});
  const float first_step = -w.value[0];
  opt.set_learning_rate(0.5);
  const float before = w.value[0];
  opt.step({&w});
  EXPECT_FLOAT_EQ(before - w.value[0], first_step * 0.5f);
}

}  // namespace
}  // namespace hsdl::nn

// WorkspaceArena contracts: pooled tensors are recycled (smallest
// adequate buffer first), scratch scopes rewind the cursor, stats track
// the allocation/reuse split, and arena-backed inference is bitwise
// identical to the allocating path.
#include "nn/workspace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/tensor.hpp"

namespace hsdl::nn {
namespace {

TEST(WorkspaceArenaTest, TakeRecycleReusesStorage) {
  WorkspaceArena ws;
  Tensor a = ws.take({4, 8});
  const float* storage = a.data();
  ws.recycle(std::move(a));
  Tensor b = ws.take({8, 4});  // same numel, different shape
  EXPECT_EQ(b.data(), storage);
  const WorkspaceArena::Stats s = ws.stats();
  EXPECT_EQ(s.takes, 2u);
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.reuses, 1u);
}

TEST(WorkspaceArenaTest, TakePicksSmallestAdequateBuffer) {
  WorkspaceArena ws;
  Tensor big = ws.take({100});
  Tensor small = ws.take({10});
  const float* small_storage = small.data();
  ws.recycle(std::move(big));
  ws.recycle(std::move(small));
  // A 10-element request must come from the 10-capacity buffer even
  // though the 100-capacity one was pooled first.
  Tensor t = ws.take({10});
  EXPECT_EQ(t.data(), small_storage);
}

TEST(WorkspaceArenaTest, TakeReturnsRequestedShape) {
  WorkspaceArena ws;
  Tensor t = ws.take({2, 3, 4});
  ASSERT_EQ(t.dim(), 3u);
  EXPECT_EQ(t.extent(0), 2u);
  EXPECT_EQ(t.extent(1), 3u);
  EXPECT_EQ(t.extent(2), 4u);
  EXPECT_EQ(t.numel(), 24u);
}

TEST(WorkspaceArenaTest, ScratchScopeRewindsCursor) {
  WorkspaceArena ws;
  std::span<float> outer = ws.scratch(16);
  const float* outer_data = outer.data();
  {
    ScratchScope scope(ws);
    std::span<float> inner = ws.scratch(16);
    EXPECT_NE(inner.data(), outer_data);  // outer slab stays live
  }
  // After the scope exits the inner slab is reusable again.
  const std::size_t mark = ws.scratch_mark();
  std::span<float> again = ws.scratch(16);
  EXPECT_EQ(ws.scratch_mark(), mark + 1);
  (void)again;
  ws.release_scratch();
  EXPECT_EQ(ws.scratch_mark(), 0u);
}

TEST(WorkspaceArenaTest, ScratchReuseDoesNotCountAsAllocation) {
  WorkspaceArena ws;
  {
    ScratchScope scope(ws);
    ws.scratch(64);
  }
  const std::uint64_t after_first = ws.stats().allocations;
  {
    ScratchScope scope(ws);
    ws.scratch(64);  // same slab, same capacity: no new allocation
  }
  EXPECT_EQ(ws.stats().allocations, after_first);
  {
    ScratchScope scope(ws);
    ws.scratch(128);  // grows the slab: counts
  }
  EXPECT_EQ(ws.stats().allocations, after_first + 1);
}

TEST(WorkspaceArenaTest, SteadyStateTakesStopAllocating) {
  WorkspaceArena ws;
  for (int round = 0; round < 5; ++round) {
    Tensor a = ws.take({3, 7});
    Tensor b = ws.take({7, 3});
    ws.recycle(std::move(a));
    ws.recycle(std::move(b));
  }
  const WorkspaceArena::Stats s = ws.stats();
  EXPECT_EQ(s.takes, 10u);
  EXPECT_EQ(s.allocations, 2u);  // only the first round allocates
  EXPECT_EQ(s.reuses, 8u);
}

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

TEST(WorkspaceArenaTest, ArenaInferBitwiseMatchesAllocatingInfer) {
  Rng init(5);
  Sequential net;
  Conv2dConfig conv;
  conv.in_channels = 2;
  conv.out_channels = 3;
  net.emplace<Conv2d>(conv, init);
  net.emplace<Relu>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(3 * 4 * 4, 5, init);

  Rng rng(17);
  WorkspaceArena ws;
  for (int round = 0; round < 3; ++round) {
    const Tensor x =
        Tensor::from_data({2, 2, 8, 8}, random_vec(2 * 2 * 8 * 8, rng));
    const Tensor plain = net.infer(x);
    Tensor pooled = net.infer(x, ws);
    ASSERT_EQ(pooled.shape(), plain.shape());
    for (std::size_t i = 0; i < plain.numel(); ++i)
      ASSERT_EQ(pooled.vec()[i], plain.vec()[i]) << "element " << i;
    ws.recycle(std::move(pooled));
  }
  // Warm arena: the later rounds were served entirely from the pool.
  const WorkspaceArena::Stats s = ws.stats();
  EXPECT_GT(s.reuses, 0u);
  EXPECT_GT(s.bytes_reserved, 0u);
}

}  // namespace
}  // namespace hsdl::nn

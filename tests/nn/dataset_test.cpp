#include "nn/dataset.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

ClassificationDataset two_class_set() {
  ClassificationDataset d({2, 2});
  d.add({1, 2, 3, 4}, 0);
  d.add({5, 6, 7, 8}, 1);
  d.add({9, 10, 11, 12}, 0);
  return d;
}

TEST(DatasetTest, SizesAndShapes) {
  ClassificationDataset d({3, 4, 5});
  EXPECT_EQ(d.feature_numel(), 60u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_TRUE(d.empty());
  d.add(std::vector<float>(60, 0.0f), 1);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DatasetTest, AddValidation) {
  ClassificationDataset d({4});
  EXPECT_THROW(d.add({1, 2, 3}, 0), CheckError);     // wrong size
  EXPECT_THROW(d.add({1, 2, 3, 4}, 2), CheckError);  // label out of range
}

TEST(DatasetTest, FeaturesAndLabelsStored) {
  auto d = two_class_set();
  EXPECT_EQ(d.label(1), 1u);
  EXPECT_FLOAT_EQ(d.features(1)[0], 5.0f);
  EXPECT_FLOAT_EQ(d.features(2)[3], 12.0f);
}

TEST(DatasetTest, CountLabel) {
  auto d = two_class_set();
  EXPECT_EQ(d.count_label(0), 2u);
  EXPECT_EQ(d.count_label(1), 1u);
}

TEST(DatasetTest, GatherBuildsBatchTensor) {
  auto d = two_class_set();
  Tensor batch = d.gather({2, 0});
  EXPECT_EQ(batch.shape(), (std::vector<std::size_t>{2, 2, 2}));
  EXPECT_FLOAT_EQ(batch.at(0, 0, 0), 9.0f);
  EXPECT_FLOAT_EQ(batch.at(1, 0, 0), 1.0f);
}

TEST(DatasetTest, GatherOnehot) {
  auto d = two_class_set();
  Tensor t = d.gather_onehot({0, 1});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 1.0f);
}

TEST(DatasetTest, SampleBatchIndicesValid) {
  auto d = two_class_set();
  Rng rng(1);
  auto idx = d.sample_batch(10, rng);
  EXPECT_EQ(idx.size(), 10u);
  for (std::size_t i : idx) EXPECT_LT(i, d.size());
}

TEST(DatasetTest, SampleBatchCoversSet) {
  auto d = two_class_set();
  Rng rng(2);
  std::vector<bool> seen(3, false);
  for (int trial = 0; trial < 20; ++trial)
    for (std::size_t i : d.sample_batch(4, rng)) seen[i] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(DatasetTest, BalancedBatchAlternatesClasses) {
  ClassificationDataset d({1});
  for (int i = 0; i < 20; ++i) d.add({static_cast<float>(i)}, 0);
  d.add({100.0f}, 1);  // single positive
  Rng rng(3);
  auto idx = d.sample_batch_balanced(8, rng);
  int pos = 0;
  for (std::size_t i : idx) pos += (d.label(i) == 1);
  EXPECT_EQ(pos, 4);  // exactly half
}

TEST(DatasetTest, BalancedBatchNeedsBothClasses) {
  ClassificationDataset d({1});
  d.add({1.0f}, 0);
  Rng rng(4);
  EXPECT_THROW(d.sample_batch_balanced(4, rng), CheckError);
}

TEST(DatasetTest, ConstructionValidation) {
  EXPECT_THROW(ClassificationDataset({}), CheckError);
  EXPECT_THROW(ClassificationDataset({0, 2}), CheckError);
  EXPECT_THROW(ClassificationDataset({4}, 1), CheckError);
}

TEST(DatasetTest, MultiClassOnehot) {
  ClassificationDataset d({1}, 3);
  d.add({0.0f}, 2);
  Tensor t = d.gather_onehot({0});
  EXPECT_FLOAT_EQ(t.at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

}  // namespace
}  // namespace hsdl::nn

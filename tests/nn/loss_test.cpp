#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor logits = Tensor::from_data({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    double row = p.at(i, 0) + p.at(i, 1) + p.at(i, 2);
    EXPECT_NEAR(row, 1.0, 1e-6);
  }
}

TEST(SoftmaxTest, UniformLogitsUniformProbs) {
  Tensor logits({1, 4}, 2.0f);
  Tensor p = softmax(logits);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(p.at(0, j), 0.25f, 1e-6f);
}

TEST(SoftmaxTest, ShiftInvariance) {
  Tensor a = Tensor::from_data({1, 2}, {1.0f, 3.0f});
  Tensor b = Tensor::from_data({1, 2}, {101.0f, 103.0f});
  Tensor pa = softmax(a), pb = softmax(b);
  EXPECT_NEAR(pa.at(0, 0), pb.at(0, 0), 1e-6f);
}

TEST(SoftmaxTest, NumericallyStableAtExtremes) {
  Tensor logits = Tensor::from_data({1, 2}, {1000.0f, -1000.0f});
  Tensor p = softmax(logits);
  EXPECT_NEAR(p.at(0, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(p.at(0, 1), 0.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
}

TEST(SoftmaxTest, MatchesPaperEquation6) {
  // y(0) = exp(xh) / (exp(xh) + exp(xn)) with x = [xh, xn].
  const float xh = 0.7f, xn = -0.4f;
  Tensor logits = Tensor::from_data({1, 2}, {xh, xn});
  Tensor p = softmax(logits);
  const double denom = std::exp(xh) + std::exp(xn);
  EXPECT_NEAR(p.at(0, 0), std::exp(xh) / denom, 1e-6);
  EXPECT_NEAR(p.at(0, 1), std::exp(xn) / denom, 1e-6);
}

TEST(CrossEntropyTest, PerfectPredictionNearZeroLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::from_data({1, 2}, {20.0f, -20.0f});
  Tensor target = Tensor::from_data({1, 2}, {1.0f, 0.0f});
  EXPECT_NEAR(loss.forward(logits, target), 0.0, 1e-6);
}

TEST(CrossEntropyTest, UniformPredictionIsLog2) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 2}, 0.0f);
  Tensor target = Tensor::from_data({1, 2}, {0.0f, 1.0f});
  EXPECT_NEAR(loss.forward(logits, target), std::log(2.0), 1e-6);
}

TEST(CrossEntropyTest, SoftTargetLoss) {
  // Biased label [1-eps, eps]: loss = -(1-eps) log p0 - eps log p1.
  SoftmaxCrossEntropy loss;
  const double eps = 0.1;
  Tensor logits = Tensor::from_data({1, 2}, {1.0f, 0.0f});
  Tensor target = Tensor::from_data(
      {1, 2}, {static_cast<float>(1 - eps), static_cast<float>(eps)});
  Tensor p = softmax(logits);
  const double expected =
      -(1 - eps) * std::log(p.at(0, 0)) - eps * std::log(p.at(0, 1));
  EXPECT_NEAR(loss.forward(logits, target), expected, 1e-6);
}

TEST(CrossEntropyTest, ZeroTargetEntrySkipped) {
  // Paper Equation (8): 0 * log(0) = 0 — a hard one-hot target with a
  // vanishing predicted probability on the *other* class must not NaN.
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::from_data({1, 2}, {-50.0f, 50.0f});
  Tensor target = Tensor::from_data({1, 2}, {0.0f, 1.0f});
  const double l = loss.forward(logits, target);
  EXPECT_FALSE(std::isnan(l));
  EXPECT_NEAR(l, 0.0, 1e-6);
}

TEST(CrossEntropyTest, MeanOverBatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits({4, 2}, 0.0f);
  Tensor target({4, 2}, 0.5f);
  const double l4 = loss.forward(logits, target);
  Tensor logits1({1, 2}, 0.0f);
  Tensor target1({1, 2}, 0.5f);
  const double l1 = loss.forward(logits1, target1);
  EXPECT_NEAR(l4, l1, 1e-9);
}

TEST(CrossEntropyTest, BackwardIsSoftmaxMinusTargetOverN) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::from_data({2, 2}, {1, -1, 0.5, 0.5});
  Tensor target = Tensor::from_data({2, 2}, {1, 0, 0, 1});
  loss.forward(logits, target);
  Tensor g = loss.backward();
  Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(g.at(i, j), (p.at(i, j) - target.at(i, j)) / 2.0f, 1e-6f);
}

TEST(CrossEntropyTest, BackwardRowsSumToZero) {
  // Because both softmax and targets sum to 1 per row.
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::from_data({1, 2}, {0.3f, -0.7f});
  Tensor target = Tensor::from_data({1, 2}, {0.9f, 0.1f});
  loss.forward(logits, target);
  Tensor g = loss.backward();
  EXPECT_NEAR(g.at(0, 0) + g.at(0, 1), 0.0f, 1e-7f);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::from_data({1, 2}, {0.4f, -0.2f});
  Tensor target = Tensor::from_data({1, 2}, {0.8f, 0.2f});
  loss.forward(logits, target);
  Tensor g = loss.backward();
  const float h = 1e-3f;
  for (std::size_t j = 0; j < 2; ++j) {
    Tensor lp = logits, lm = logits;
    lp.at(0, j) += h;
    lm.at(0, j) -= h;
    SoftmaxCrossEntropy tmp;
    const double num =
        (tmp.forward(lp, target) - tmp.forward(lm, target)) / (2 * h);
    EXPECT_NEAR(g.at(0, j), num, 1e-4);
  }
}

TEST(CrossEntropyTest, ShapeMismatchThrows) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 2});
  Tensor target({2, 3});
  EXPECT_THROW(loss.forward(logits, target), CheckError);
}

TEST(CrossEntropyTest, BackwardBeforeForwardThrows) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.backward(), CheckError);
}

}  // namespace
}  // namespace hsdl::nn

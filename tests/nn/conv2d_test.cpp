#include "nn/conv2d.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

Conv2dConfig cfg(std::size_t in, std::size_t out, std::size_t kernel = 3,
                 std::size_t stride = 1, std::size_t padding = 1) {
  Conv2dConfig c;
  c.in_channels = in;
  c.out_channels = out;
  c.kernel = kernel;
  c.stride = stride;
  c.padding = padding;
  return c;
}

TEST(Im2colTest, SinglePixelKernel) {
  // 1x1 kernel, no padding: im2col is the identity.
  std::vector<float> in = {1, 2, 3, 4};
  std::vector<float> out(4);
  im2col(in.data(), 1, 2, 2, 1, 1, 0, out.data());
  EXPECT_EQ(out, in);
}

TEST(Im2colTest, PaddingYieldsZeros) {
  std::vector<float> in = {5};
  std::vector<float> out(9);  // 3x3 kernel over 1x1 input with padding 1
  im2col(in.data(), 1, 1, 1, 3, 1, 1, out.data());
  // Only the kernel centre hits the pixel.
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_FLOAT_EQ(out[i], i == 4 ? 5.0f : 0.0f);
}

TEST(Im2colTest, StrideSkipsPositions) {
  // 4x4 input, 2x2 kernel, stride 2, no padding -> 2x2 output positions.
  std::vector<float> in(16);
  for (std::size_t i = 0; i < 16; ++i) in[i] = static_cast<float>(i);
  std::vector<float> out(4 * 4);  // (1*2*2) rows x (2*2) cols
  im2col(in.data(), 1, 4, 4, 2, 2, 0, out.data());
  // Row 0 of the col matrix is kernel offset (0,0) at positions
  // (0,0),(0,2),(2,0),(2,2).
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 8.0f);
  EXPECT_FLOAT_EQ(out[3], 10.0f);
}

TEST(Col2imTest, InverseOfIm2colFor1x1) {
  std::vector<float> cols = {1, 2, 3, 4};
  std::vector<float> img(4, 0.0f);
  col2im(cols.data(), 1, 2, 2, 1, 1, 0, img.data());
  EXPECT_EQ(img, cols);
}

TEST(Col2imTest, OverlapAccumulates) {
  // 3x3 kernel, stride 1, padding 1 on 2x2: every input pixel is visited
  // by several kernel offsets; scattering all-ones cols counts visits.
  const std::size_t rows = 9, cols_n = 4;
  std::vector<float> cols(rows * cols_n, 1.0f);
  std::vector<float> img(4, 0.0f);
  col2im(cols.data(), 1, 2, 2, 3, 1, 1, img.data());
  // Each pixel of a 2x2 image under 3x3/pad1 appears in exactly 4 patches.
  for (float v : img) EXPECT_FLOAT_EQ(v, 4.0f);
}

TEST(Conv2dTest, OutputShapeSamePadding) {
  Rng rng(1);
  Conv2d conv(cfg(3, 8), rng);
  EXPECT_EQ(conv.output_shape({2, 3, 12, 12}),
            (std::vector<std::size_t>{2, 8, 12, 12}));
}

TEST(Conv2dTest, OutputShapeValidPadding) {
  Rng rng(1);
  Conv2d conv(cfg(1, 4, 3, 1, 0), rng);
  EXPECT_EQ(conv.output_shape({1, 1, 12, 12}),
            (std::vector<std::size_t>{1, 4, 10, 10}));
}

TEST(Conv2dTest, KnownConvolutionValue) {
  Rng rng(1);
  Conv2d conv(cfg(1, 1, 3, 1, 1), rng);
  // Set kernel to an averaging filter and bias to 0.
  conv.weight().value.fill(1.0f);
  conv.bias().value.zero();
  Tensor x({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i + 1);
  Tensor y = conv.forward(x, false);
  // Centre output = sum of all 9 inputs = 45.
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 45.0f);
  // Corner output (0,0) = 1+2+4+5 = 12 (others padded).
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 12.0f);
}

TEST(Conv2dTest, BiasAddsToEveryPixel) {
  Rng rng(2);
  Conv2d conv(cfg(1, 2), rng);
  conv.weight().value.zero();
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -2.0f;
  Tensor x({1, 1, 4, 4}, 3.0f);
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 2), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 2, 2), -2.0f);
}

TEST(Conv2dTest, MultiChannelSumsContributions) {
  Rng rng(3);
  Conv2d conv(cfg(2, 1, 1, 1, 0), rng);
  conv.weight().value[0] = 2.0f;  // channel 0 weight
  conv.weight().value[1] = 3.0f;  // channel 1 weight
  conv.bias().value.zero();
  Tensor x({1, 2, 2, 2});
  x.at(0, 0, 0, 0) = 1.0f;
  x.at(0, 1, 0, 0) = 10.0f;
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.0f * 1.0f + 3.0f * 10.0f);
}

TEST(Conv2dTest, TranslationEquivariance) {
  Rng rng(4);
  Conv2d conv(cfg(1, 4), rng);
  Tensor a({1, 1, 8, 8});
  a.at(0, 0, 3, 3) = 1.0f;
  Tensor b({1, 1, 8, 8});
  b.at(0, 0, 4, 5) = 1.0f;  // shifted by (+1, +2)
  Tensor ya = conv.forward(a, false);
  Tensor yb = conv.forward(b, false);
  // Away from boundaries the responses are shifted copies.
  for (std::size_t c = 0; c < 4; ++c)
    for (std::size_t dy = 0; dy < 3; ++dy)
      for (std::size_t dx = 0; dx < 3; ++dx)
        EXPECT_NEAR(ya.at(0, c, 2 + dy, 2 + dx),
                    yb.at(0, c, 3 + dy, 4 + dx), 1e-6f);
}

TEST(Conv2dTest, BatchIndependence) {
  Rng rng(5);
  Conv2d conv(cfg(1, 2), rng);
  Tensor x({2, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  // Second sample identical to first.
  for (std::size_t i = 0; i < 16; ++i) x[16 + i] = x[i];
  Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < y.numel() / 2; ++i)
    EXPECT_FLOAT_EQ(y[i], y[y.numel() / 2 + i]);
}

TEST(Conv2dTest, BackwardShapesAndAccumulation) {
  Rng rng(6);
  Conv2d conv(cfg(2, 3), rng);
  Tensor x({2, 2, 6, 6}, 0.5f);
  Tensor y = conv.forward(x, true);
  Tensor gy(y.shape(), 1.0f);
  conv.zero_grad();
  Tensor gx = conv.backward(gy);
  EXPECT_EQ(gx.shape(), x.shape());
  // Gradients accumulate across backward calls.
  const float g0 = conv.weight().grad[0];
  conv.forward(x, true);
  conv.backward(gy);
  EXPECT_NEAR(conv.weight().grad[0], 2.0f * g0, 1e-4f);
}

TEST(Conv2dTest, BackwardBeforeForwardThrows) {
  Rng rng(7);
  Conv2d conv(cfg(1, 1), rng);
  Tensor g({1, 1, 4, 4});
  EXPECT_THROW(conv.backward(g), CheckError);
}

TEST(Conv2dTest, WrongChannelCountThrows) {
  Rng rng(8);
  Conv2d conv(cfg(3, 4), rng);
  Tensor x({1, 2, 8, 8});
  EXPECT_THROW(conv.forward(x, false), CheckError);
}

TEST(Conv2dTest, NameDescribesShape) {
  Rng rng(9);
  Conv2d conv(cfg(16, 32), rng);
  EXPECT_EQ(conv.name(), "conv3x3(16->32)");
}

TEST(Conv2dTest, HeInitStatistics) {
  Rng rng(10);
  Conv2d conv(cfg(8, 64), rng);
  const Tensor& w = conv.weight().value;
  double mean = w.sum() / static_cast<double>(w.numel());
  double var = 0;
  for (std::size_t i = 0; i < w.numel(); ++i)
    var += (w[i] - mean) * (w[i] - mean);
  var /= static_cast<double>(w.numel());
  const double expected_var = 2.0 / (8 * 3 * 3);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, expected_var, expected_var * 0.3);
}

}  // namespace
}  // namespace hsdl::nn

#include "nn/conv_direct.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/cpuinfo.hpp"
#include "common/refmode.hpp"
#include "common/rng.hpp"
#include "nn/conv2d.hpp"
#include "nn/tensor.hpp"

namespace hsdl::nn {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// The reference arithmetic the direct kernel promises to reproduce
/// bitwise: im2col, then per output element a +0.0-seeded accumulation
/// over ascending p (skipping zero weights, like gemm_naive), then bias
/// and the optional ReLU predicate.
std::vector<float> ref_conv(const std::vector<float>& in,
                            const std::vector<float>& weight,
                            const std::vector<float>& bias,
                            const ConvDirectShape& s, bool fuse_relu) {
  const std::size_t rows = s.in_channels * s.kernel * s.kernel;
  const std::size_t cols = s.out_height() * s.out_width();
  std::vector<float> col(rows * cols);
  im2col(in.data(), s.in_channels, s.height, s.width, s.kernel, s.stride,
         s.padding, col.data());
  std::vector<float> out(s.out_channels * cols);
  for (std::size_t oc = 0; oc < s.out_channels; ++oc) {
    for (std::size_t j = 0; j < cols; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < rows; ++p) {
        const float w = weight[oc * rows + p];
        if (w == 0.0f) continue;
        acc += w * col[p * cols + j];
      }
      float v = acc + bias[oc];
      if (fuse_relu) v = v > 0.0f ? v : 0.0f;
      out[oc * cols + j] = v;
    }
  }
  return out;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

TEST(ConvDirectTest, BitwiseMatchesIm2colAcrossShapes) {
  Rng rng(7);
  for (std::size_t ic : {std::size_t{1}, std::size_t{3}}) {
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
      for (std::size_t stride : {std::size_t{1}, std::size_t{2},
                                 std::size_t{3}}) {
        for (std::size_t pad : {std::size_t{0}, std::size_t{1},
                                std::size_t{2}}) {
          ConvDirectShape s;
          s.in_channels = ic;
          s.height = 9;  // odd dims exercise the AVX2 tail loops
          s.width = 7;
          s.out_channels = 4;
          s.kernel = k;
          s.stride = stride;
          s.padding = pad;
          const std::vector<float> in = random_vec(ic * 9 * 7, rng);
          const std::vector<float> w =
              random_vec(s.out_channels * ic * k * k, rng);
          const std::vector<float> b = random_vec(s.out_channels, rng);
          const std::vector<float> want = ref_conv(in, w, b, s, false);
          std::vector<float> got(want.size(), -1.0f);
          conv2d_direct(in.data(), w.data(), b.data(), s, false, got.data());
          SCOPED_TRACE(::testing::Message()
                       << "ic=" << ic << " k=" << k << " stride=" << stride
                       << " pad=" << pad);
          expect_bitwise_equal(want, got);
        }
      }
    }
  }
}

TEST(ConvDirectTest, FusedReluMatchesSeparatePass) {
  Rng rng(11);
  ConvDirectShape s;
  s.in_channels = 3;
  s.height = 11;
  s.width = 11;
  s.out_channels = 6;
  s.kernel = 3;
  s.padding = 1;
  const std::vector<float> in = random_vec(3 * 11 * 11, rng);
  const std::vector<float> w = random_vec(6 * 3 * 3 * 3, rng);
  const std::vector<float> b = random_vec(6, rng);
  const std::size_t n = 6 * s.out_height() * s.out_width();
  std::vector<float> plain(n), fused(n);
  conv2d_direct(in.data(), w.data(), b.data(), s, false, plain.data());
  conv2d_direct(in.data(), w.data(), b.data(), s, true, fused.data());
  for (float& v : plain) v = v > 0.0f ? v : 0.0f;
  expect_bitwise_equal(plain, fused);
}

TEST(ConvDirectTest, ScalarMatchesDispatchedKernel) {
  Rng rng(13);
  ConvDirectShape s;
  s.in_channels = 2;
  s.height = 13;
  s.width = 9;
  s.out_channels = 5;
  s.kernel = 3;
  s.stride = 2;
  s.padding = 1;
  const std::vector<float> in = random_vec(2 * 13 * 9, rng);
  const std::vector<float> w = random_vec(5 * 2 * 3 * 3, rng);
  const std::vector<float> b = random_vec(5, rng);
  const std::size_t n = 5 * s.out_height() * s.out_width();
  std::vector<float> scalar(n), dispatched(n), forced(n);
  conv2d_direct_scalar(in.data(), w.data(), b.data(), s, true, scalar.data());
  conv2d_direct(in.data(), w.data(), b.data(), s, true, dispatched.data());
  expect_bitwise_equal(scalar, dispatched);
  // Forcing the scalar path through the shared dispatcher gives the same
  // bits again.
  const bool prev = cpu::force_scalar();
  cpu::set_force_scalar(true);
  conv2d_direct(in.data(), w.data(), b.data(), s, true, forced.data());
  cpu::set_force_scalar(prev);
  expect_bitwise_equal(scalar, forced);
}

TEST(ConvDirectTest, Conv2dInferFastMatchesReferenceMode) {
  Rng rng(17);
  Conv2dConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 8;
  cfg.kernel = 3;
  cfg.stride = 1;
  cfg.padding = 1;
  Conv2d conv(cfg, rng);
  // m*n*k = 8 * 144 * 27 stays under the GEMM blocking cutoff, so the
  // im2col reference path uses the naive kernel and the direct path must
  // reproduce it bitwise.
  Tensor x({2, 3, 12, 12});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.normal());
  Tensor fast = conv.infer(x);
  runtime::ReferenceModeGuard guard(true);
  Tensor ref = conv.infer(x);
  ASSERT_EQ(fast.shape(), ref.shape());
  ASSERT_EQ(0, std::memcmp(fast.data(), ref.data(),
                           fast.numel() * sizeof(float)));
}

TEST(ConvDirectTest, Conv2dInferReluMatchesInferThenRelu) {
  Rng rng(19);
  Conv2dConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 6;
  Conv2d conv(cfg, rng);
  Tensor x({3, 4, 10, 10});
  for (std::size_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.normal());
  Tensor fused = conv.infer_relu(x);
  Tensor plain = conv.infer(x);
  for (std::size_t i = 0; i < plain.numel(); ++i)
    plain[i] = plain[i] > 0.0f ? plain[i] : 0.0f;
  ASSERT_EQ(fused.shape(), plain.shape());
  ASSERT_EQ(0, std::memcmp(fused.data(), plain.data(),
                           fused.numel() * sizeof(float)));
}

}  // namespace
}  // namespace hsdl::nn

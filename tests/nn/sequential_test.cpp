#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"

namespace hsdl::nn {
namespace {

TEST(SequentialTest, EmptyForwardThrows) {
  Sequential seq;
  EXPECT_THROW(seq.forward(Tensor({1, 2}), false), CheckError);
}

TEST(SequentialTest, SingleLayerPassThrough) {
  Sequential seq;
  seq.emplace<Relu>();
  Tensor x = Tensor::from_data({1, 3}, {-1, 0, 2});
  Tensor y = seq.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(SequentialTest, ComposesShapes) {
  Rng rng(1);
  Sequential seq;
  Conv2dConfig c;
  c.in_channels = 4;
  c.out_channels = 8;
  seq.emplace<Conv2d>(c, rng);
  seq.emplace<Relu>();
  seq.emplace<MaxPool2d>(2);
  seq.emplace<Flatten>();
  seq.emplace<Linear>(8 * 4 * 4, 10, rng);
  EXPECT_EQ(seq.output_shape({3, 4, 8, 8}),
            (std::vector<std::size_t>{3, 10}));
  Tensor y = seq.forward(Tensor({3, 4, 8, 8}, 0.1f), false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{3, 10}));
}

TEST(SequentialTest, ParamsAggregatesAllLayers) {
  Rng rng(2);
  Sequential seq;
  Conv2dConfig c;
  seq.emplace<Conv2d>(c, rng);
  seq.emplace<Relu>();
  seq.emplace<Linear>(4, 2, rng);
  // conv W+b plus linear W+b.
  EXPECT_EQ(seq.params().size(), 4u);
}

TEST(SequentialTest, ParamCount) {
  Rng rng(3);
  Sequential seq;
  seq.emplace<Linear>(10, 5, rng);  // 50 + 5
  seq.emplace<Linear>(5, 2, rng);   // 10 + 2
  EXPECT_EQ(seq.param_count(), 67u);
}

TEST(SequentialTest, ZeroGradClearsEverything) {
  Rng rng(4);
  Sequential seq;
  seq.emplace<Linear>(3, 3, rng);
  for (Param* p : seq.params()) p->grad.fill(1.0f);
  seq.zero_grad();
  for (Param* p : seq.params())
    for (std::size_t i = 0; i < p->grad.numel(); ++i)
      EXPECT_FLOAT_EQ(p->grad[i], 0.0f);
}

TEST(SequentialTest, BackwardReversesOrder) {
  Rng rng(5);
  Sequential seq;
  seq.emplace<Linear>(2, 2, rng);
  seq.emplace<Relu>();
  Tensor x({1, 2}, 1.0f);
  Tensor y = seq.forward(x, true);
  Tensor gx = seq.backward(Tensor(y.shape(), 1.0f));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(SequentialTest, SummaryListsLayerShapes) {
  Rng rng(6);
  Sequential seq;
  Conv2dConfig c;
  c.in_channels = 2;
  c.out_channels = 4;
  seq.emplace<Conv2d>(c, rng);
  seq.emplace<MaxPool2d>(2);
  auto summary = seq.summary({1, 2, 8, 8});
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].first, "conv3x3(2->4)");
  EXPECT_EQ(summary[0].second, (std::vector<std::size_t>{1, 4, 8, 8}));
  EXPECT_EQ(summary[1].second, (std::vector<std::size_t>{1, 4, 4, 4}));
}

TEST(SequentialTest, LayerAccessors) {
  Rng rng(7);
  Sequential seq;
  seq.emplace<Relu>();
  seq.emplace<Flatten>();
  EXPECT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq.layer(0).name(), "relu");
  EXPECT_EQ(seq.layer(1).name(), "flatten");
}

TEST(SequentialTest, AppendTakesOwnership) {
  Sequential seq;
  seq.append(std::make_unique<Relu>());
  EXPECT_EQ(seq.size(), 1u);
}

}  // namespace
}  // namespace hsdl::nn

// Tests for the stateless-ish layers: ReLU, Sigmoid, MaxPool, Dropout,
// Flatten.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "nn/activations.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/pool.hpp"

namespace hsdl::nn {
namespace {

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  Tensor x = Tensor::from_data({5}, {-2, -0.5, 0, 0.5, 2});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 0.5f);
  EXPECT_FLOAT_EQ(y[4], 2.0f);
}

TEST(ReluTest, OutputNonNegative) {
  // The property Theorem 1's proof leans on.
  Relu relu;
  Rng rng(1);
  Tensor x({100});
  for (std::size_t i = 0; i < 100; ++i)
    x[i] = static_cast<float>(rng.normal());
  Tensor y = relu.forward(x, true);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_GE(y[i], 0.0f);
}

TEST(ReluTest, BackwardMasksGradient) {
  Relu relu;
  Tensor x = Tensor::from_data({4}, {-1, 2, -3, 4});
  relu.forward(x, true);
  Tensor g({4}, 1.0f);
  Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
  EXPECT_FLOAT_EQ(gx[3], 1.0f);
}

TEST(ReluTest, ShapePassThrough) {
  Relu relu;
  EXPECT_EQ(relu.output_shape({3, 4, 5}), (std::vector<std::size_t>{3, 4, 5}));
}

TEST(SigmoidTest, KnownValues) {
  Sigmoid s;
  Tensor x = Tensor::from_data({3}, {0.0f, 100.0f, -100.0f});
  Tensor y = s.forward(x, true);
  EXPECT_NEAR(y[0], 0.5f, 1e-6f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6f);
  EXPECT_NEAR(y[2], 0.0f, 1e-6f);
}

TEST(SigmoidTest, BackwardMatchesDerivative) {
  Sigmoid s;
  Tensor x = Tensor::from_data({1}, {0.3f});
  Tensor y = s.forward(x, true);
  Tensor gx = s.backward(Tensor({1}, 1.0f));
  EXPECT_NEAR(gx[0], y[0] * (1 - y[0]), 1e-6f);
}

TEST(MaxPoolTest, ForwardPicksMaxima) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 7.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 13.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.0f);
}

TEST(MaxPoolTest, NegativeValuesHandled) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, -5.0f);
  x.at(0, 0, 1, 0) = -1.0f;
  Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmaxOnly) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2});
  x.at(0, 0, 0, 1) = 3.0f;  // the max
  pool.forward(x, true);
  Tensor g({1, 1, 1, 1}, 2.0f);
  Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(gx.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gx.at(0, 0, 1, 0), 0.0f);
  EXPECT_FLOAT_EQ(gx.at(0, 0, 1, 1), 0.0f);
}

TEST(MaxPoolTest, PerChannelIndependent) {
  MaxPool2d pool(2);
  Tensor x({1, 2, 2, 2});
  x.at(0, 0, 0, 0) = 1.0f;
  x.at(0, 1, 1, 1) = 5.0f;
  Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 5.0f);
}

TEST(MaxPoolTest, IndivisibleInputThrows) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 5, 4});
  EXPECT_THROW(pool.forward(x, true), CheckError);
}

TEST(MaxPoolTest, NameIncludesWindow) {
  EXPECT_EQ(MaxPool2d(2).name(), "maxpool2x2");
  EXPECT_EQ(MaxPool2d(3).name(), "maxpool3x3");
}

TEST(DropoutTest, InferenceIsIdentity) {
  Rng rng(1);
  Dropout drop(0.5, rng);
  Tensor x({100}, 2.0f);
  Tensor y = drop.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(y[i], 2.0f);
}

TEST(DropoutTest, TrainingZeroesAboutPFraction) {
  Rng rng(2);
  Dropout drop(0.5, rng);
  Tensor x({10000}, 1.0f);
  Tensor y = drop.forward(x, true);
  int zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) zeros += (y[i] == 0.0f);
  EXPECT_NEAR(zeros, 5000, 300);
}

TEST(DropoutTest, SurvivorsScaledByKeepInverse) {
  Rng rng(3);
  Dropout drop(0.25, rng);
  Tensor x({1000}, 3.0f);
  Tensor y = drop.forward(x, true);
  for (std::size_t i = 0; i < y.numel(); ++i)
    EXPECT_TRUE(y[i] == 0.0f || std::abs(y[i] - 4.0f) < 1e-5f);
}

TEST(DropoutTest, ExpectationPreserved) {
  Rng rng(4);
  Dropout drop(0.5, rng);
  Tensor x({20000}, 1.0f);
  Tensor y = drop.forward(x, true);
  EXPECT_NEAR(y.sum() / 20000.0, 1.0, 0.05);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(5);
  Dropout drop(0.5, rng);
  Tensor x({1000}, 1.0f);
  Tensor y = drop.forward(x, true);
  Tensor gx = drop.backward(Tensor({1000}, 1.0f));
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_FLOAT_EQ(gx[i], y[i]);
}

TEST(DropoutTest, ZeroProbabilityIsIdentityInTraining) {
  Rng rng(6);
  Dropout drop(0.0, rng);
  Tensor x({50}, 7.0f);
  Tensor y = drop.forward(x, true);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_FLOAT_EQ(y[i], 7.0f);
}

TEST(DropoutTest, InvalidProbabilityThrows) {
  Rng rng(7);
  EXPECT_THROW(Dropout(1.0, rng), CheckError);
  EXPECT_THROW(Dropout(-0.1, rng), CheckError);
}

TEST(FlattenTest, ForwardAndBackwardShapes) {
  Flatten flat;
  Tensor x({2, 3, 4, 5});
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 60}));
  Tensor gx = flat.backward(Tensor({2, 60}, 1.0f));
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(FlattenTest, DataOrderPreserved) {
  Flatten flat;
  Tensor x({1, 2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  Tensor y = flat.forward(x, true);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

}  // namespace
}  // namespace hsdl::nn

#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "common/rng.hpp"

namespace hsdl::nn {
namespace {

/// Naive reference: C = alpha * op(A) * op(B) + beta * C.
void ref_gemm(bool ta, bool tb, std::size_t m, std::size_t n, std::size_t k,
              float alpha, const std::vector<float>& a, std::size_t lda,
              const std::vector<float>& b, std::size_t ldb, float beta,
              std::vector<float>& c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        float av = ta ? a[p * lda + i] : a[i * lda + p];
        float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] =
          static_cast<float>(alpha * acc + beta * c[i * ldc + j]);
    }
}

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(GemmTest, Identity2x2) {
  std::vector<float> a = {1, 0, 0, 1};
  std::vector<float> b = {3, 4, 5, 6};
  std::vector<float> c(4, 0.0f);
  matmul(2, 2, 2, a.data(), b.data(), c.data());
  EXPECT_EQ(c, b);
}

TEST(GemmTest, Known3x2x4) {
  // A: 3x2, B: 2x4.
  std::vector<float> a = {1, 2, 3, 4, 5, 6};
  std::vector<float> b = {1, 0, 1, 0, 0, 1, 0, 1};
  std::vector<float> c(12, -1.0f);
  matmul(3, 4, 2, a.data(), b.data(), c.data());
  std::vector<float> expected = {1, 2, 1, 2, 3, 4, 3, 4, 5, 6, 5, 6};
  EXPECT_EQ(c, expected);
}

struct GemmCase {
  bool ta, tb;
  std::size_t m, n, k;
  float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
  const GemmCase& p = GetParam();
  Rng rng(p.m * 131 + p.n * 17 + p.k);
  const std::size_t lda = p.ta ? p.m : p.k;
  const std::size_t ldb = p.tb ? p.k : p.n;
  auto a = random_vec((p.ta ? p.k : p.m) * lda, rng);
  auto b = random_vec((p.tb ? p.n : p.k) * ldb, rng);
  auto c = random_vec(p.m * p.n, rng);
  auto expected = c;
  ref_gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, lda, b, ldb, p.beta,
           expected, p.n);
  gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb,
       p.beta, c.data(), p.n);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], expected[i], 1e-3f) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(GemmCase{false, false, 4, 5, 6, 1.0f, 0.0f},
                      GemmCase{true, false, 4, 5, 6, 1.0f, 0.0f},
                      GemmCase{false, true, 4, 5, 6, 1.0f, 0.0f},
                      GemmCase{true, true, 4, 5, 6, 1.0f, 0.0f},
                      GemmCase{false, false, 1, 1, 1, 2.0f, 0.5f},
                      GemmCase{false, false, 17, 3, 29, -1.5f, 1.0f},
                      GemmCase{true, false, 8, 8, 8, 1.0f, 1.0f},
                      GemmCase{false, true, 32, 16, 9, 0.25f, 0.0f},
                      GemmCase{false, false, 64, 64, 64, 1.0f, 0.0f}));

TEST(GemmTest, BetaZeroOverwritesNaNs) {
  // beta = 0 must not propagate garbage from C.
  std::vector<float> a = {1, 1};
  std::vector<float> b = {2, 2};
  std::vector<float> c = {std::nanf(""), std::nanf("")};
  gemm(false, false, 1, 2, 1, 1.0f, a.data(), 1, b.data(), 2, 0.0f, c.data(),
       2);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
}

TEST(GemmTest, AlphaZeroOnlyScalesC) {
  std::vector<float> a = {5};
  std::vector<float> b = {7};
  std::vector<float> c = {4};
  gemm(false, false, 1, 1, 1, 0.0f, a.data(), 1, b.data(), 1, 0.5f, c.data(),
       1);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

TEST(GemmTest, AccumulatesWithBetaOne) {
  std::vector<float> a = {1, 2};
  std::vector<float> b = {3, 4};
  std::vector<float> c = {10};
  // [1 2] . [3 4]^T = 11; plus beta*10 = 21.
  gemm(false, true, 1, 1, 2, 1.0f, a.data(), 2, b.data(), 2, 1.0f, c.data(),
       1);
  EXPECT_FLOAT_EQ(c[0], 21.0f);
}

}  // namespace
}  // namespace hsdl::nn

#include "nn/init.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

double mean_of(const Tensor& t) {
  return t.sum() / static_cast<double>(t.numel());
}

double var_of(const Tensor& t) {
  const double m = mean_of(t);
  double v = 0;
  for (std::size_t i = 0; i < t.numel(); ++i)
    v += (t[i] - m) * (t[i] - m);
  return v / static_cast<double>(t.numel());
}

TEST(HeInitTest, MomentsMatchFanIn) {
  Rng rng(1);
  Tensor w({64, 128});
  he_normal_init(w, 128, rng);
  EXPECT_NEAR(mean_of(w), 0.0, 0.01);
  EXPECT_NEAR(var_of(w), 2.0 / 128, 0.2 * 2.0 / 128);
}

TEST(HeInitTest, VarianceScalesInverselyWithFanIn) {
  Rng rng(2);
  Tensor a({64, 64}), b({64, 64});
  he_normal_init(a, 16, rng);
  he_normal_init(b, 1024, rng);
  EXPECT_GT(var_of(a), var_of(b) * 10);
}

TEST(HeInitTest, DeterministicByRngState) {
  Rng r1(3), r2(3);
  Tensor a({10, 10}), b({10, 10});
  he_normal_init(a, 10, r1);
  he_normal_init(b, 10, r2);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(HeInitTest, RejectsZeroFanIn) {
  Rng rng(4);
  Tensor w({4});
  EXPECT_THROW(he_normal_init(w, 0, rng), CheckError);
}

TEST(GlorotInitTest, BoundedUniform) {
  Rng rng(5);
  Tensor w({32, 32});
  glorot_uniform_init(w, 32, 32, rng);
  const double a = std::sqrt(6.0 / 64);
  EXPECT_GE(w.min(), -a);
  EXPECT_LE(w.max(), a);
  // Fills most of the range.
  EXPECT_LT(w.min(), -0.5 * a);
  EXPECT_GT(w.max(), 0.5 * a);
}

TEST(GlorotInitTest, MeanNearZero) {
  Rng rng(6);
  Tensor w({100, 100});
  glorot_uniform_init(w, 100, 100, rng);
  EXPECT_NEAR(mean_of(w), 0.0, 0.005);
}

TEST(GlorotInitTest, RejectsZeroFans) {
  Rng rng(7);
  Tensor w({4});
  EXPECT_THROW(glorot_uniform_init(w, 0, 4, rng), CheckError);
  EXPECT_THROW(glorot_uniform_init(w, 4, 0, rng), CheckError);
}

}  // namespace
}  // namespace hsdl::nn

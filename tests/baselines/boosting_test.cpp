#include "baselines/boosting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hsdl::baselines {
namespace {

/// Two Gaussian blobs in 2-D, mostly separable.
nn::ClassificationDataset blobs(std::size_t n_per_class, double gap,
                                std::uint64_t seed) {
  hsdl::Rng rng(seed);
  nn::ClassificationDataset d({2});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    d.add({static_cast<float>(rng.normal(-gap / 2, 1.0)),
           static_cast<float>(rng.normal(0, 1.0))},
          0);
    d.add({static_cast<float>(rng.normal(gap / 2, 1.0)),
           static_cast<float>(rng.normal(0, 1.0))},
          1);
  }
  return d;
}

double error_rate(const BoostedStumps& b, const nn::ClassificationDataset& d,
                  double bias = 0.0) {
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < d.size(); ++i)
    wrong += b.predict(d.features(i), bias) != (d.label(i) == 1);
  return static_cast<double>(wrong) / static_cast<double>(d.size());
}

TEST(BoostingTest, LearnsSeparableBlobs) {
  auto train = blobs(100, 6.0, 1);
  BoostedStumps b;
  b.train(train);
  EXPECT_LT(error_rate(b, train), 0.02);
  auto test = blobs(100, 6.0, 2);
  EXPECT_LT(error_rate(b, test), 0.05);
}

TEST(BoostingTest, XorNeedsManyRounds) {
  // XOR-ish checkerboard: single stump ~50 %, boosted ensemble much better.
  hsdl::Rng rng(3);
  nn::ClassificationDataset d({2});
  for (int i = 0; i < 400; ++i) {
    float x = static_cast<float>(rng.uniform(-1, 1));
    float y = static_cast<float>(rng.uniform(-1, 1));
    d.add({x, y}, (x > 0) == (y > 0) ? 1 : 0);
  }
  BoostConfig cfg;
  cfg.rounds = 150;
  BoostedStumps b(cfg);
  b.train(d);
  EXPECT_LT(error_rate(b, d), 0.32);
}

TEST(BoostingTest, ScoreSignMatchesPrediction) {
  auto train = blobs(50, 5.0, 4);
  BoostedStumps b;
  b.train(train);
  for (std::size_t i = 0; i < train.size(); i += 7) {
    const double s = b.score(train.features(i));
    EXPECT_EQ(b.predict(train.features(i)), s > 0.0);
  }
}

TEST(BoostingTest, BiasShiftsOperatingPoint) {
  auto train = blobs(100, 3.0, 5);
  BoostedStumps b;
  b.train(train);
  std::size_t pos_low = 0, pos_high = 0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    pos_low += b.predict(train.features(i), -1.0);
    pos_high += b.predict(train.features(i), 1.0);
  }
  EXPECT_GT(pos_low, pos_high);  // lower threshold flags more positives
}

TEST(BoostingTest, SmoothCappedSchemeAlsoLearns) {
  auto train = blobs(100, 5.0, 6);
  BoostConfig cfg;
  cfg.scheme = WeightScheme::kSmoothCapped;
  BoostedStumps b(cfg);
  b.train(train);
  EXPECT_LT(error_rate(b, train), 0.05);
}

TEST(BoostingTest, ImbalancedDataStillFindsMinority) {
  hsdl::Rng rng(7);
  nn::ClassificationDataset d({1});
  for (int i = 0; i < 300; ++i)
    d.add({static_cast<float>(rng.normal(0, 1))}, 0);
  for (int i = 0; i < 20; ++i)
    d.add({static_cast<float>(rng.normal(5, 1))}, 1);
  BoostedStumps b;  // balance_classes defaults on
  b.train(d);
  std::size_t found = 0;
  for (std::size_t i = 300; i < 320; ++i)
    found += b.predict(d.features(i));
  EXPECT_GE(found, 18u);
}

TEST(BoostingTest, RoundsTrainedBounded) {
  auto train = blobs(50, 8.0, 8);
  BoostConfig cfg;
  cfg.rounds = 40;
  BoostedStumps b(cfg);
  b.train(train);
  EXPECT_GE(b.rounds_trained(), 1u);
  EXPECT_LE(b.rounds_trained(), 40u);
}

TEST(BoostingTest, OnlineUpdateMovesScoreTowardLabel) {
  auto train = blobs(50, 4.0, 9);
  BoostedStumps b;
  b.train(train);
  // Take a sample, push it toward the opposite class repeatedly.
  const float* x = train.features(0);  // class 0
  const double before = b.score(x);
  for (int i = 0; i < 50; ++i) b.update_online(x, 1, 0.1);
  EXPECT_GT(b.score(x), before);
}

TEST(BoostingTest, TuneBiasBalancedImprovesMinorityRecall) {
  hsdl::Rng rng(10);
  nn::ClassificationDataset d({1});
  // Overlapping classes, 10:1 imbalance.
  for (int i = 0; i < 400; ++i)
    d.add({static_cast<float>(rng.normal(0, 1))}, 0);
  for (int i = 0; i < 40; ++i)
    d.add({static_cast<float>(rng.normal(1.5, 1))}, 1);
  BoostedStumps b;
  b.train(d);
  const double bias = b.tune_bias_balanced(d);
  std::size_t recall_default = 0, recall_tuned = 0;
  for (std::size_t i = 400; i < 440; ++i) {
    recall_default += b.predict(d.features(i));
    recall_tuned += b.predict(d.features(i), bias);
  }
  EXPECT_GE(recall_tuned, recall_default);
  EXPECT_GE(recall_tuned, 20u);
}

TEST(BoostingTest, ValidationAndErrors) {
  BoostConfig bad;
  bad.rounds = 0;
  EXPECT_THROW(BoostedStumps{bad}, hsdl::CheckError);
  bad = BoostConfig{};
  bad.smooth_cap = 1.0;
  EXPECT_THROW(BoostedStumps{bad}, hsdl::CheckError);

  BoostedStumps untrained;
  float x = 0.0f;
  EXPECT_THROW(untrained.score(&x), hsdl::CheckError);
  EXPECT_THROW(untrained.update_online(&x, 0), hsdl::CheckError);

  nn::ClassificationDataset single_class({1});
  single_class.add({1.0f}, 0);
  single_class.add({2.0f}, 0);
  BoostedStumps b;
  EXPECT_THROW(b.train(single_class), hsdl::CheckError);
}

TEST(BoostingTest, DeterministicTraining) {
  auto train = blobs(60, 4.0, 11);
  BoostedStumps a, b;
  a.train(train);
  b.train(train);
  for (std::size_t i = 0; i < train.size(); i += 5)
    EXPECT_DOUBLE_EQ(a.score(train.features(i)), b.score(train.features(i)));
}

}  // namespace
}  // namespace hsdl::baselines

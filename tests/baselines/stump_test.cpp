#include "baselines/stump.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::baselines {
namespace {

nn::ClassificationDataset make_1d(const std::vector<float>& xs) {
  nn::ClassificationDataset d({1});
  for (float x : xs) d.add({x}, 0);  // labels supplied separately
  return d;
}

TEST(StumpTest, PredictRespectsPolarity) {
  Stump s{0, 0.5f, 1};
  float lo = 0.0f, hi = 1.0f;
  EXPECT_EQ(s.predict(&hi), 1);
  EXPECT_EQ(s.predict(&lo), -1);
  s.polarity = -1;
  EXPECT_EQ(s.predict(&hi), -1);
  EXPECT_EQ(s.predict(&lo), 1);
}

TEST(TrainStumpTest, PerfectlySeparableData) {
  auto d = make_1d({0.1f, 0.2f, 0.3f, 0.7f, 0.8f, 0.9f});
  std::vector<int> y = {-1, -1, -1, 1, 1, 1};
  std::vector<double> w(6, 1.0);
  double err = 1.0;
  Stump s = train_stump(d, y, w, &err);
  EXPECT_DOUBLE_EQ(err, 0.0);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(s.predict(d.features(i)), y[i]);
}

TEST(TrainStumpTest, InvertedSeparableDataUsesNegativePolarity) {
  auto d = make_1d({0.1f, 0.2f, 0.8f, 0.9f});
  std::vector<int> y = {1, 1, -1, -1};
  std::vector<double> w(4, 1.0);
  double err = 1.0;
  Stump s = train_stump(d, y, w, &err);
  EXPECT_DOUBLE_EQ(err, 0.0);
  EXPECT_EQ(s.polarity, -1);
}

TEST(TrainStumpTest, PicksMostDiscriminativeFeature) {
  nn::ClassificationDataset d({3});
  // Feature 1 separates; features 0 and 2 are constant.
  d.add({0.5f, 0.1f, 0.5f}, 0);
  d.add({0.5f, 0.2f, 0.5f}, 0);
  d.add({0.5f, 0.8f, 0.5f}, 0);
  d.add({0.5f, 0.9f, 0.5f}, 0);
  std::vector<int> y = {-1, -1, 1, 1};
  std::vector<double> w(4, 1.0);
  double err = 1.0;
  Stump s = train_stump(d, y, w, &err);
  EXPECT_EQ(s.feature, 1u);
  EXPECT_DOUBLE_EQ(err, 0.0);
}

TEST(TrainStumpTest, WeightsChangeTheOptimum) {
  auto d = make_1d({0.1f, 0.5f, 0.9f});
  std::vector<int> y = {-1, 1, -1};  // not separable by one threshold
  // Weight the middle sample heavily: stump should get it right.
  std::vector<double> w = {0.1, 10.0, 0.1};
  double err = 1.0;
  Stump s = train_stump(d, y, w, &err);
  EXPECT_EQ(s.predict(d.features(1)), 1);
}

TEST(TrainStumpTest, ErrorIsWeightedFraction) {
  auto d = make_1d({0.1f, 0.9f});
  std::vector<int> y = {1, 1};  // positive everywhere: polarity trick wins
  std::vector<double> w = {1.0, 3.0};
  double err = 1.0;
  train_stump(d, y, w, &err);
  EXPECT_DOUBLE_EQ(err, 0.0);  // predict-all-positive threshold exists
}

TEST(TrainStumpTest, UnseparableDataHasNonzeroError) {
  // Identical features, opposite labels: best error is the lighter class.
  nn::ClassificationDataset d({1});
  d.add({0.5f}, 0);
  d.add({0.5f}, 0);
  std::vector<int> y = {1, -1};
  std::vector<double> w = {1.0, 1.0};
  double err = 0.0;
  train_stump(d, y, w, &err);
  EXPECT_DOUBLE_EQ(err, 0.5);
}

TEST(TrainStumpTest, TiedFeatureValuesHandled) {
  auto d = make_1d({0.5f, 0.5f, 0.5f, 0.9f});
  std::vector<int> y = {-1, -1, -1, 1};
  std::vector<double> w(4, 1.0);
  double err = 1.0;
  Stump s = train_stump(d, y, w, &err);
  EXPECT_DOUBLE_EQ(err, 0.0);
  // Threshold must sit strictly between 0.5 and 0.9.
  EXPECT_GT(s.threshold, 0.5f);
  EXPECT_LT(s.threshold, 0.9f);
}

TEST(TrainStumpTest, RejectsDegenerateInputs) {
  nn::ClassificationDataset d({1});
  std::vector<int> y;
  std::vector<double> w;
  EXPECT_THROW(train_stump(d, y, w, nullptr), hsdl::CheckError);

  d.add({1.0f}, 0);
  y = {1};
  w = {0.0};
  EXPECT_THROW(train_stump(d, y, w, nullptr), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::baselines

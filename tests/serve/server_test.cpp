// HotspotServer loopback tests: concurrent clients bitwise-identical to
// the serial per-clip oracle, ranked-hit ordering, hot-swap under load
// (in-flight requests complete against the model that scored them),
// corrupt frames killing the session but not the server, request-cap
// rejection that leaves the session usable, and graceful drain.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "hotspot/detector.hpp"
#include "layout/generator.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace hsdl::serve {
namespace {

hotspot::CnnDetectorConfig small_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 8;
  config.feature.nm_per_px = 4.0;
  config.cnn.stage1_maps = 4;
  config.cnn.stage2_maps = 4;
  config.cnn.fc_nodes = 8;
  return config;
}

std::vector<layout::Clip> make_clips(std::size_t n, std::uint64_t seed) {
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.4;
  layout::ClipGenerator gen(gen_cfg, seed);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < n; ++i)
    clips.push_back(gen.generate().normalized());
  return clips;
}

/// A detector with weights distinguishable from the default seed's, so
/// a hot-swap visibly changes every probability.
std::unique_ptr<hotspot::CnnDetector> make_detector(std::uint64_t seed) {
  hotspot::CnnDetectorConfig config = small_config();
  config.seed = seed;
  return std::make_unique<hotspot::CnnDetector>(config);
}

TEST(ServerTest, ConcurrentClientsMatchSerialOracleBitwise) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  const std::shared_ptr<ServingModel> oracle = registry.acquire();

  ServeConfig config;
  config.session_workers = 4;
  HotspotServer server(registry, config);

  constexpr std::size_t kClients = 4;
  std::vector<std::vector<layout::Clip>> inputs;
  for (std::size_t c = 0; c < kClients; ++c)
    inputs.push_back(make_clips(6, 100 + c));

  std::vector<std::vector<double>> outputs(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      ServeClient client("127.0.0.1", server.port(),
                         "tenant-" + std::to_string(c));
      outputs[c] = client.score_probabilities(inputs[c]);
      client.bye();
    });
  for (std::thread& t : clients) t.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    const std::vector<double> expected =
        oracle->detector().predict_probabilities(inputs[c]);
    ASSERT_EQ(outputs[c].size(), expected.size()) << "client " << c;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(outputs[c][i], expected[i])  // bitwise
          << "client " << c << " clip " << i;
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_accepted, kClients);
  EXPECT_EQ(stats.requests_served, kClients);
  EXPECT_EQ(stats.clips_scored, kClients * 6u);
  EXPECT_EQ(stats.errors_sent, 0u);
}

TEST(ServerTest, ResponsesArriveRankedByProbability) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  ServeClient client("127.0.0.1", server.port(), "rank");
  const std::vector<layout::Clip> clips = make_clips(8, 5);
  const ScoreResponse response = client.score(clips);
  ASSERT_EQ(response.hits.size(), clips.size());
  const double threshold = registry.acquire()->detector().decision_threshold();
  std::vector<bool> seen(clips.size(), false);
  for (std::size_t i = 0; i < response.hits.size(); ++i) {
    const RankedHit& h = response.hits[i];
    ASSERT_LT(h.index, clips.size());
    EXPECT_FALSE(seen[h.index]) << "duplicate index in ranking";
    seen[h.index] = true;
    EXPECT_EQ(h.flagged, hotspot::is_flagged(h.probability, threshold));
    if (i > 0)
      EXPECT_GE(response.hits[i - 1].probability, h.probability)
          << "ranking violated at position " << i;
  }
  client.bye();
}

TEST(ServerTest, HotSwapUnderLoadScoresEachRequestWithOneModel) {
  // Two generations with different weights; per-generation oracles.
  auto gen1 = make_detector(1);
  auto gen2 = make_detector(2);
  const std::string ckpt = ::testing::TempDir() + "/serve_swap.ckpt";
  gen2->save(ckpt);

  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(std::move(gen1), "gen1");
  const std::shared_ptr<ServingModel> oracle1 = registry.acquire();

  ServeConfig config;
  config.session_workers = 4;
  HotspotServer server(registry, config);

  const std::vector<layout::Clip> clips = make_clips(12, 77);
  const std::unique_ptr<hotspot::CnnDetector> oracle2 = make_detector(2);
  const std::vector<double> expected1 =
      oracle1->detector().predict_probabilities(clips);
  const std::vector<double> expected2 = oracle2->predict_probabilities(clips);

  // Several scoring clients hammer the server while another client hot
  // swaps mid-stream. Every response must be wholly one generation's
  // work: whatever generation it reports, the probabilities must match
  // that generation's oracle bitwise — a request that straddled the
  // swap keeps its acquired handle and completes against the old model.
  constexpr std::size_t kClients = 3;
  constexpr std::size_t kRounds = 6;
  std::vector<std::vector<ScoreResponse>> responses(kClients);
  std::vector<std::thread> scorers;
  for (std::size_t c = 0; c < kClients; ++c)
    scorers.emplace_back([&, c] {
      ServeClient client("127.0.0.1", server.port(),
                         "load-" + std::to_string(c));
      for (std::size_t r = 0; r < kRounds; ++r)
        responses[c].push_back(client.score(clips));
      client.bye();
    });
  std::thread swapper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ServeClient client("127.0.0.1", server.port(), "admin");
    const std::uint64_t generation = client.swap_model(ckpt);
    EXPECT_EQ(generation, 2u);
    client.bye();
  });
  for (std::thread& t : scorers) t.join();
  swapper.join();

  bool saw_gen1 = false, saw_gen2 = false;
  for (std::size_t c = 0; c < kClients; ++c) {
    for (const ScoreResponse& response : responses[c]) {
      ASSERT_TRUE(response.model_generation == 1 ||
                  response.model_generation == 2);
      const std::vector<double>& expected =
          response.model_generation == 1 ? expected1 : expected2;
      (response.model_generation == 1 ? saw_gen1 : saw_gen2) = true;
      ASSERT_EQ(response.hits.size(), expected.size());
      for (const RankedHit& h : response.hits)
        EXPECT_EQ(h.probability, expected[h.index])  // bitwise
            << "generation " << response.model_generation << " clip "
            << h.index;
    }
  }
  EXPECT_TRUE(saw_gen1);  // the pre-swap rounds
  // Post-swap requests land on generation 2.
  ServeClient after("127.0.0.1", server.port(), "after");
  const ScoreResponse response = after.score(clips);
  EXPECT_EQ(response.model_generation, 2u);
  EXPECT_TRUE(saw_gen2 || response.model_generation == 2u);
  after.bye();
  EXPECT_EQ(registry.generation(), 2u);
  std::remove(ckpt.c_str());
}

TEST(ServerTest, CorruptFrameKillsSessionNotServer) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  {
    // Raw socket: handshake, then a frame with a flipped payload bit.
    Socket raw = Socket::connect("127.0.0.1", server.port());
    send_frame(raw, encode_frame(MsgType::kHello, encode_hello(Hello{})));
    std::string buf;
    ASSERT_TRUE(recv_frame(raw, buf, "test"));
    ASSERT_EQ(decode_frame(buf, "test").type, MsgType::kHelloAck);

    ScoreRequest corrupt_req;
    corrupt_req.request_id = 1;
    corrupt_req.clips = make_clips(1, 3);
    std::string frame = encode_frame(MsgType::kScoreRequest,
                                     encode_score_request(corrupt_req));
    frame[6] = static_cast<char>(frame[6] ^ 0x10);  // payload bit-flip
    send_frame(raw, frame);
    ASSERT_TRUE(recv_frame(raw, buf, "test"));
    const Frame err = decode_frame(buf, "test");
    ASSERT_EQ(err.type, MsgType::kError);
    const ErrorMsg msg = decode_error(err.body, "test");
    EXPECT_EQ(msg.code, ErrorCode::kBadFrame);
    // The error is positioned: the CRC caught it.
    EXPECT_NE(msg.message.find("byte"), std::string::npos);
    // The server closes the poisoned session...
    EXPECT_FALSE(recv_frame(raw, buf, "test"));
  }

  // ...but keeps serving new ones.
  ServeClient client("127.0.0.1", server.port(), "survivor");
  const std::vector<layout::Clip> clips = make_clips(3, 9);
  EXPECT_EQ(client.score(clips).hits.size(), clips.size());
  client.bye();
  EXPECT_GE(server.stats().errors_sent, 1u);
}

TEST(ServerTest, OversizedRequestRejectedWithoutKillingSession) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  ServeConfig config;
  config.max_clips_per_request = 4;
  config.tenant_quota_clips = 4;
  HotspotServer server(registry, config);

  ServeClient client("127.0.0.1", server.port(), "greedy");
  const std::vector<layout::Clip> big = make_clips(5, 21);
  try {
    client.score(big);
    FAIL() << "oversized request was accepted";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTooManyClips);
  }
  // Per-request rejection: the same session serves a conforming request.
  const std::vector<layout::Clip> ok = make_clips(4, 23);
  EXPECT_EQ(client.score(ok).hits.size(), ok.size());
  client.bye();
}

TEST(ServerTest, SwapWithBadCheckpointFailsWithoutDroppingActiveModel) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  ServeClient client("127.0.0.1", server.port(), "admin");
  try {
    client.swap_model(::testing::TempDir() + "/no_such_checkpoint.ckpt");
    FAIL() << "swap to a missing checkpoint was accepted";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSwapFailed);
  }
  EXPECT_EQ(registry.generation(), 1u);
  // The active model still serves.
  const std::vector<layout::Clip> clips = make_clips(2, 25);
  EXPECT_EQ(client.score(clips).hits.size(), clips.size());
  client.bye();
}

TEST(ServerTest, GracefulShutdownDrainsIdleSessionsAndRefusesNewWork) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  auto server = std::make_unique<HotspotServer>(registry, ServeConfig{});
  const std::uint16_t port = server->port();

  // An idle connected client: drain must wake its blocked session read
  // and close cleanly rather than hang shutdown.
  ServeClient idle("127.0.0.1", port, "idle");
  const std::vector<layout::Clip> clips = make_clips(2, 27);
  EXPECT_EQ(idle.score(clips).hits.size(), clips.size());

  server->shutdown();
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.requests_served, 1u);

  // After drain the idle client's next request fails (server closed the
  // stream), and fresh connections are refused.
  EXPECT_THROW(idle.score(clips), CheckError);
  EXPECT_THROW(ServeClient("127.0.0.1", port, "late"), CheckError);
  server.reset();  // double-shutdown via destructor is a no-op
}

}  // namespace
}  // namespace hsdl::serve

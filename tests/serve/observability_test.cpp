// Observability loopback tests (DESIGN.md §15): a sampled request's
// span tree stitches across client, session and engine threads under
// one trace id; the live stats snapshot is strict-parseable JSON with
// the documented schema; the flight recorder retains the last N
// requests (including rejections) and dumps re-parseable JSONL on
// drain; a raw v2 client keeps its wire layout against a v3 server; and
// score_with_retry surfaces its retry/reconnect/backoff accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "hotspot/detector.hpp"
#include "layout/generator.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace hsdl::serve {
namespace {

hotspot::CnnDetectorConfig small_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 8;
  config.feature.nm_per_px = 4.0;
  config.cnn.stage1_maps = 4;
  config.cnn.stage2_maps = 4;
  config.cnn.fc_nodes = 8;
  return config;
}

std::vector<layout::Clip> make_clips(std::size_t n, std::uint64_t seed) {
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.4;
  layout::ClipGenerator gen(gen_cfg, seed);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < n; ++i)
    clips.push_back(gen.generate().normalized());
  return clips;
}

std::unique_ptr<hotspot::CnnDetector> make_detector(std::uint64_t seed) {
  hotspot::CnnDetectorConfig config = small_config();
  config.seed = seed;
  return std::make_unique<hotspot::CnnDetector>(config);
}

std::string hex_id(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

/// Restores the process-wide trace/metrics switches a test flipped, so
/// suites sharing the binary see the disabled default.
class ObservabilityTest : public ::testing::Test {
 protected:
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
    metrics::set_enabled(false);
    metrics::reset();
  }
};

TEST_F(ObservabilityTest, SampledRequestStitchesOneSpanTree) {
  trace::clear();
  trace::set_enabled(true);

  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  ServeClient client("127.0.0.1", server.port(), "traced-tenant");
  ASSERT_EQ(client.negotiated_version(), kProtocolVersion);
  client.set_tracing(true);
  const std::uint64_t tid = client.next_trace_id();
  ASSERT_NE(tid, 0u);

  const ScoreResponse resp = client.score(make_clips(3, 7));
  EXPECT_EQ(resp.hits.size(), 3u);
  // A stats round-trip on the same session orders us after the
  // server's handle_score epilogue (frames are handled serially per
  // session), so every server-side span is buffered before we export.
  (void)client.stats_json();

  const json::Value doc = json::parse(trace::chrome_trace_json());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  const std::string want = hex_id(tid);
  std::set<std::string> tagged;  // span names carrying our trace id
  for (const json::Value& ev : events->items()) {
    const json::Value* args = ev.find("args");
    if (args == nullptr) continue;
    const json::Value* id = args->find("trace_id");
    if (id == nullptr || id->as_string() != want) continue;
    tagged.insert(ev.find("name")->as_string());
    // Complete events with sane durations on the shared trace clock.
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
    EXPECT_GE(ev.find("dur")->as_number(), 0.0);
  }
  for (const char* name :
       {"client.request", "serve.recv", "serve.decode", "serve.quota",
        "serve.rank", "serve.send", "serve.request", "engine.extract",
        "engine.forward"})
    EXPECT_TRUE(tagged.count(name)) << "missing span: " << name;

  client.bye();
}

TEST_F(ObservabilityTest, StatsSnapshotIsStrictParseableAndPerTenant) {
  metrics::set_enabled(true);

  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  ServeConfig config;
  config.flight_recorder_size = 32;
  HotspotServer server(registry, config);

  ServeClient client("127.0.0.1", server.port(), "stats-tenant");
  for (int i = 0; i < 3; ++i) client.score(make_clips(2, 20 + i));

  const json::Value doc = json::parse(client.stats_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "hsdl-serve-stats-v1");
  EXPECT_GE(doc.find("uptime_seconds")->as_number(), 0.0);

  const json::Value* srv = doc.find("server");
  ASSERT_NE(srv, nullptr);
  EXPECT_GE(srv->find("requests_served")->as_number(), 3.0);
  EXPECT_GE(srv->find("clips_scored")->as_number(), 6.0);

  const json::Value* tenant =
      doc.find("tenants")->find("stats-tenant");
  ASSERT_NE(tenant, nullptr);
  EXPECT_DOUBLE_EQ(tenant->find("requests")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(tenant->find("clips")->as_number(), 6.0);
  EXPECT_DOUBLE_EQ(tenant->find("inflight_clips")->as_number(), 0.0);

  // Each clip is one engine-level request: 3 requests x 2 clips.
  const json::Value* engine = doc.find("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_GE(engine->find("requests")->as_number(), 6.0);

  const json::Value* flight = doc.find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_DOUBLE_EQ(flight->find("capacity")->as_number(), 32.0);
  EXPECT_GE(flight->find("recorded")->as_number(), 3.0);

  // With metrics armed, the registry digest rides along with
  // interpolated quantiles per histogram.
  const json::Value* stage = doc.find("metrics")
                                 ->find("histograms")
                                 ->find("serve.stage.score_seconds");
  ASSERT_NE(stage, nullptr);
  EXPECT_GE(stage->find("count")->as_number(), 3.0);
  EXPECT_GT(stage->find("p50")->as_number(), 0.0);
  EXPECT_GE(stage->find("p99")->as_number(),
            stage->find("p50")->as_number());

  // Per-tenant counters land in the registry under the tenant's name.
  const json::Value* tenant_requests =
      doc.find("metrics")->find("counters")->find(
          "serve.tenant.stats-tenant.requests");
  ASSERT_NE(tenant_requests, nullptr);
  EXPECT_DOUBLE_EQ(tenant_requests->as_number(), 3.0);

  client.bye();
}

TEST_F(ObservabilityTest, FlightRecorderKeepsLastNAndDumpsOnDrain) {
  const std::string dump_path = "observability_flight_dump.jsonl";
  std::remove(dump_path.c_str());

  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  ServeConfig config;
  config.flight_recorder_size = 4;
  config.flight_dump_path = dump_path;
  config.max_clips_per_request = 4;
  HotspotServer server(registry, config);

  ServeClient client("127.0.0.1", server.port(), "flight-tenant");
  for (int i = 0; i < 5; ++i) client.score(make_clips(1, 40 + i));
  // An oversized request must land in the ring too, with its error.
  EXPECT_THROW(client.score(make_clips(5, 50)), ServerError);
  (void)client.stats_json();  // order after the last flight commit

  const FlightRecorder& flight = server.flight_recorder();
  EXPECT_EQ(flight.capacity(), 4u);
  EXPECT_EQ(flight.total_recorded(), 6u);
  const std::vector<FlightRecord> records = flight.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LT(records[i - 1].seq, records[i].seq);
  const FlightRecord& last = records.back();
  EXPECT_EQ(last.error,
            static_cast<std::uint8_t>(ErrorCode::kTooManyClips));
  EXPECT_EQ(std::string(last.tenant), "flight-tenant");
  EXPECT_EQ(last.clips, 5u);
  EXPECT_GT(last.wall_ms, 0u);
  // The requests before it completed OK with real stage timings.
  EXPECT_EQ(records[0].error, 0u);
  EXPECT_GT(records[0].score_ms, 0.0f);
  EXPECT_GE(records[0].total_ms, records[0].score_ms);

  client.bye();
  server.shutdown();  // graceful drain appends a "drain" dump

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.is_open());
  std::vector<json::Value> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(json::parse(line));
  ASSERT_EQ(lines.size(), 5u);  // header + 4 records
  EXPECT_EQ(lines[0].find("event")->as_string(), "flight.dump");
  EXPECT_EQ(lines[0].find("reason")->as_string(), "drain");
  EXPECT_DOUBLE_EQ(lines[0].find("records")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(lines[0].find("total_recorded")->as_number(), 6.0);
  EXPECT_EQ(lines.back().find("tenant")->as_string(), "flight-tenant");
  EXPECT_EQ(lines.back().find("error")->as_string(), "too-many-clips");
  std::remove(dump_path.c_str());
}

TEST_F(ObservabilityTest, RawV2ClientNegotiatesAndScores) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  // A legacy client offering version 2 gets a version-2 ack and then
  // speaks the v2 ScoreRequest layout (no trace context bytes).
  Socket sock = Socket::connect("127.0.0.1", server.port());
  std::string buf;
  Hello hello;
  hello.version = 2;
  hello.tenant = "legacy";
  send_frame(sock, encode_frame(MsgType::kHello, encode_hello(hello)));
  ASSERT_TRUE(recv_frame(sock, buf, "v2 hello ack"));
  Frame frame = decode_frame(buf, "v2 hello ack");
  ASSERT_EQ(frame.type, MsgType::kHelloAck);
  const HelloAck ack = decode_hello_ack(frame.body, "v2 hello ack");
  EXPECT_EQ(ack.version, 2u);

  ScoreRequest req;
  req.request_id = 9;
  req.clips = make_clips(2, 60);
  send_frame(sock, encode_frame(MsgType::kScoreRequest,
                                encode_score_request(req, 2)));
  ASSERT_TRUE(recv_frame(sock, buf, "v2 score response"));
  frame = decode_frame(buf, "v2 score response");
  ASSERT_EQ(frame.type, MsgType::kScoreResponse);
  const ScoreResponse resp =
      decode_score_response(frame.body, "v2 score response");
  EXPECT_EQ(resp.request_id, 9u);
  EXPECT_EQ(resp.hits.size(), 2u);
  send_frame(sock, encode_frame(MsgType::kBye, ""));

  // Versions outside [min, current] are rejected with kBadVersion.
  Socket old_sock = Socket::connect("127.0.0.1", server.port());
  hello.version = 1;
  send_frame(old_sock,
             encode_frame(MsgType::kHello, encode_hello(hello)));
  ASSERT_TRUE(recv_frame(old_sock, buf, "v1 hello reply"));
  frame = decode_frame(buf, "v1 hello reply");
  ASSERT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(decode_error(frame.body, "v1 hello reply").code,
            ErrorCode::kBadVersion);
}

TEST_F(ObservabilityTest, RetryStatsSurfaceReconnectAccounting) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  auto server = std::make_unique<HotspotServer>(
      registry, ServeConfig{});

  ServeClient client("127.0.0.1", server->port(), "retry-tenant");
  const std::vector<layout::Clip> clips = make_clips(1, 70);

  // Healthy path: the answer comes on the first attempt, stats stay 0.
  RetryStats stats;
  stats.retries = 99;  // must be zeroed by the call
  (void)client.score_with_retry(clips, RetryPolicy{}, 0, &stats);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.reconnects, 0u);
  EXPECT_DOUBLE_EQ(stats.total_backoff_ms, 0.0);

  // Kill the server: the first attempt dies on the wire, the retry
  // path accounts one retry + one reconnect + its backoff before the
  // re-dial fails for good.
  server.reset();
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_ms = 1;
  EXPECT_THROW(client.score_with_retry(clips, policy, 0, &stats),
               CheckError);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GT(stats.total_backoff_ms, 0.0);
}

}  // namespace
}  // namespace hsdl::serve

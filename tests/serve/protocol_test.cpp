// Serving wire-protocol tests: message round-trips, hit ranking, and
// the corruption sweep — every single-bit flip and every truncation of
// an encoded frame must be rejected with a CheckError-family positioned
// diagnostic, never accepted and never a crash or foreign exception
// (the same contract the checkpoint/GLF/GDSII corruption harness
// enforces in tests/io/corruption_test.cpp).
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/io.hpp"

namespace hsdl::serve {
namespace {

ScoreRequest sample_request() {
  ScoreRequest request;
  request.request_id = 42;
  request.deadline_ms = 250;
  layout::Clip a;
  a.window = geom::Rect::from_xywh(0, 0, 1200, 1200);
  a.shapes = {geom::Rect::from_xywh(0, 0, 100, 40),
              geom::Rect::from_xywh(200, 300, 40, 400)};
  layout::Clip b;
  b.window = geom::Rect::from_xywh(100, 100, 1200, 1200);
  b.shapes = {geom::Rect::from_xywh(150, 150, 60, 60)};
  request.clips = {a, b};
  return request;
}

TEST(ProtocolTest, HelloRoundTrips) {
  Hello hello;
  hello.tenant = "tenant-a";
  const std::string frame = encode_frame(MsgType::kHello, encode_hello(hello));
  const Frame decoded = decode_frame(frame, "test");
  ASSERT_EQ(decoded.type, MsgType::kHello);
  const Hello out = decode_hello(decoded.body, "test");
  EXPECT_EQ(out.version, kProtocolVersion);
  EXPECT_EQ(out.tenant, "tenant-a");
}

TEST(ProtocolTest, ScoreRequestRoundTrips) {
  const ScoreRequest request = sample_request();
  const std::string frame =
      encode_frame(MsgType::kScoreRequest, encode_score_request(request));
  const Frame decoded = decode_frame(frame, "test");
  ASSERT_EQ(decoded.type, MsgType::kScoreRequest);
  const ScoreRequest out = decode_score_request(decoded.body, "test");
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.deadline_ms, 250u);
  ASSERT_EQ(out.clips.size(), 2u);
  EXPECT_EQ(out.clips[0].window, request.clips[0].window);
  EXPECT_EQ(out.clips[0].shapes, request.clips[0].shapes);
  EXPECT_EQ(out.clips[1].shapes, request.clips[1].shapes);
}

TEST(ProtocolTest, ScoreRequestCarriesTraceContextOnV3) {
  ScoreRequest request = sample_request();
  request.trace_id = 0xdeadbeefcafef00dull;
  request.sampled = true;
  const std::string body = encode_score_request(request, 3);
  const ScoreRequest out = decode_score_request(body, "test", 3);
  EXPECT_EQ(out.trace_id, 0xdeadbeefcafef00dull);
  EXPECT_TRUE(out.sampled);
  EXPECT_EQ(out.request_id, request.request_id);
  ASSERT_EQ(out.clips.size(), request.clips.size());
}

TEST(ProtocolTest, ScoreRequestCrossVersionRoundTrips) {
  // v2 layout has no trace fields: a v2 encoding decoded as v2 yields
  // default trace context; the same message encoded as v3 is longer by
  // exactly the u64 id + u8 flag.
  ScoreRequest request = sample_request();
  request.trace_id = 77;
  request.sampled = true;
  const std::string v2 = encode_score_request(request, 2);
  const std::string v3 = encode_score_request(request, 3);
  EXPECT_EQ(v3.size(), v2.size() + 9);
  const ScoreRequest out2 = decode_score_request(v2, "test", 2);
  EXPECT_EQ(out2.trace_id, 0u);
  EXPECT_FALSE(out2.sampled);
  EXPECT_EQ(out2.request_id, request.request_id);
  EXPECT_EQ(out2.deadline_ms, request.deadline_ms);
  ASSERT_EQ(out2.clips.size(), request.clips.size());
  EXPECT_EQ(out2.clips[1].shapes, request.clips[1].shapes);

  // Version mismatch between encoder and decoder must not be silently
  // accepted: the v3 body is 9 bytes longer than the v2 decoder
  // expects (trailing-garbage check), and the v2 body runs the v3
  // decoder out of bounds — both positioned failures, never a
  // misparsed request.
  EXPECT_THROW(decode_score_request(v3, "test", 2), io::IoError);
  EXPECT_THROW(decode_score_request(v2, "test", 3), io::IoError);
}

TEST(ProtocolTest, StatsResponseRoundTrips) {
  StatsResponse stats;
  stats.stats_json = "{\"schema\":\"hsdl-serve-stats-v1\",\"server\":{}}";
  const std::string frame = encode_frame(MsgType::kStatsResponse,
                                         encode_stats_response(stats));
  const Frame decoded = decode_frame(frame, "test");
  ASSERT_EQ(decoded.type, MsgType::kStatsResponse);
  EXPECT_EQ(decode_stats_response(decoded.body, "test").stats_json,
            stats.stats_json);
}

TEST(ProtocolTest, DecodeRejectsBadSampledFlag) {
  ScoreRequest request = sample_request();
  request.sampled = true;
  std::string body = encode_score_request(request, 3);
  // The sampled flag sits right after request_id (u64) + deadline_ms
  // (u32) + trace_id (u64).
  body[8 + 4 + 8] = 2;
  EXPECT_THROW(decode_score_request(body, "test", 3), io::IoError);
}

TEST(ProtocolTest, ScoreResponseRoundTrips) {
  ScoreResponse response;
  response.request_id = 7;
  response.model_generation = 3;
  response.hits = {{1, 0.9, true}, {0, 0.25, false}};
  response.mode = ServeMode::kInt8;
  const std::string frame =
      encode_frame(MsgType::kScoreResponse, encode_score_response(response));
  const Frame decoded = decode_frame(frame, "test");
  const ScoreResponse out = decode_score_response(decoded.body, "test");
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_EQ(out.model_generation, 3u);
  EXPECT_EQ(out.mode, ServeMode::kInt8);
  ASSERT_EQ(out.hits.size(), 2u);
  EXPECT_EQ(out.hits[0].index, 1u);
  EXPECT_EQ(out.hits[0].probability, 0.9);
  EXPECT_TRUE(out.hits[0].flagged);
  EXPECT_FALSE(out.hits[1].flagged);
}

TEST(ProtocolTest, ErrorAndSwapRoundTrip) {
  const std::string err_frame = encode_frame(
      MsgType::kError,
      encode_error(ErrorMsg{ErrorCode::kQuotaExceeded, "over budget"}));
  const ErrorMsg err =
      decode_error(decode_frame(err_frame, "test").body, "test");
  EXPECT_EQ(err.code, ErrorCode::kQuotaExceeded);
  EXPECT_EQ(err.message, "over budget");
  EXPECT_EQ(err.retry_after_ms, 0u);

  const std::string busy_frame = encode_frame(
      MsgType::kError,
      encode_error(ErrorMsg{ErrorCode::kBusy, "shedding load", 40}));
  const ErrorMsg busy =
      decode_error(decode_frame(busy_frame, "test").body, "test");
  EXPECT_EQ(busy.code, ErrorCode::kBusy);
  EXPECT_EQ(busy.retry_after_ms, 40u);
  EXPECT_STREQ(error_code_name(busy.code), "busy");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");

  const std::string swap_frame = encode_frame(
      MsgType::kSwapModel, encode_swap_model(SwapModel{"ckpt.hsdl"}));
  EXPECT_EQ(decode_swap_model(decode_frame(swap_frame, "test").body, "test")
                .checkpoint_path,
            "ckpt.hsdl");

  const std::string ack_frame =
      encode_frame(MsgType::kSwapAck, encode_swap_ack(SwapAck{9}));
  EXPECT_EQ(
      decode_swap_ack(decode_frame(ack_frame, "test").body, "test")
          .model_generation,
      9u);
}

TEST(ProtocolTest, RankHitsSortsByProbabilityThenIndex) {
  const std::vector<double> probs = {0.2, 0.9, 0.5, 0.9, 0.1};
  const std::vector<RankedHit> hits = rank_hits(probs, 0.5);
  ASSERT_EQ(hits.size(), probs.size());
  EXPECT_EQ(hits[0].index, 1u);  // 0.9, earlier index first on tie
  EXPECT_EQ(hits[1].index, 3u);  // 0.9
  EXPECT_EQ(hits[2].index, 2u);  // 0.5
  EXPECT_EQ(hits[3].index, 0u);  // 0.2
  EXPECT_EQ(hits[4].index, 4u);  // 0.1
  EXPECT_TRUE(hits[0].flagged);
  EXPECT_TRUE(hits[1].flagged);
  EXPECT_FALSE(hits[3].flagged);
  for (std::size_t i = 1; i < hits.size(); ++i)
    EXPECT_GE(hits[i - 1].probability, hits[i].probability);
}

TEST(ProtocolTest, DecodeRejectsUnknownServeMode) {
  ScoreResponse response;
  response.request_id = 1;
  std::string body = encode_score_response(response);
  body[16] = 2;  // mode byte follows the two u64s; only 0/1 are defined
  EXPECT_THROW(decode_score_response(body, "test"), CheckError);
  EXPECT_STREQ(serve_mode_name(ServeMode::kFp32), "fp32");
  EXPECT_STREQ(serve_mode_name(ServeMode::kInt8), "int8");
}

TEST(ProtocolTest, DecodeRejectsTrailingGarbage) {
  std::string frame = encode_frame(MsgType::kBye, "");
  frame += '\0';
  EXPECT_THROW(decode_frame(frame, "test"), CheckError);
}

// ---------------------------------------------------------------------------
// Corruption sweep (corruption_test.cpp idiom): the frame decoder must
// reject every damaged variant via the CheckError taxonomy.

enum class Outcome { kAccepted, kRejected, kForeignException };

Outcome try_decode(const std::string& bytes) {
  try {
    const Frame frame = decode_frame(bytes, "sweep");
    switch (frame.type) {
      case MsgType::kScoreRequest:
        (void)decode_score_request(frame.body, "sweep");
        break;
      case MsgType::kBye:
        break;
      default:
        // A bit-flip that lands on the type byte may turn the frame into
        // a different valid type whose body then fails to decode; route
        // it through the matching decoder so the sweep exercises that.
        (void)decode_hello(frame.body, "sweep");
        break;
    }
    return Outcome::kAccepted;
  } catch (const CheckError&) {
    return Outcome::kRejected;
  } catch (...) {
    return Outcome::kForeignException;
  }
}

TEST(ProtocolCorruptionTest, EveryBitFlipIsRejected) {
  const std::string frame =
      encode_frame(MsgType::kScoreRequest, encode_score_request(
                                               sample_request()));
  ASSERT_EQ(try_decode(frame), Outcome::kAccepted);
  std::size_t rejected = 0;
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(
          static_cast<unsigned char>(damaged[byte]) ^ (1u << bit));
      const Outcome outcome = try_decode(damaged);
      EXPECT_NE(outcome, Outcome::kForeignException)
          << "byte " << byte << " bit " << bit;
      EXPECT_EQ(outcome, Outcome::kRejected)
          << "byte " << byte << " bit " << bit;
      if (outcome == Outcome::kRejected) ++rejected;
    }
  }
  EXPECT_EQ(rejected, frame.size() * 8);
}

TEST(ProtocolCorruptionTest, EveryTruncationIsRejected) {
  const std::string frame =
      encode_frame(MsgType::kScoreRequest, encode_score_request(
                                               sample_request()));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const Outcome outcome = try_decode(frame.substr(0, len));
    EXPECT_NE(outcome, Outcome::kForeignException) << "length " << len;
    EXPECT_EQ(outcome, Outcome::kRejected) << "length " << len;
  }
}

TEST(ProtocolCorruptionTest, OversizedLengthFieldIsRejectedBeforeAllocation) {
  std::string frame = encode_frame(MsgType::kBye, "");
  // Stamp a length beyond kMaxFrameBytes into the prefix.
  const std::uint32_t huge = (1u << 25);
  for (int i = 0; i < 4; ++i)
    frame[i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  EXPECT_EQ(try_decode(frame), Outcome::kRejected);
}

}  // namespace
}  // namespace hsdl::serve

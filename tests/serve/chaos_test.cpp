// Chaos suite (DESIGN.md §14): the serving stack under injected faults.
// Every test arms a deterministic fault plan (seedable via
// HSDL_FAULT_SEED for CI sweeps), breaks something — a connection, an
// allocation, a score, a deadline — and asserts the containment
// invariants: the server stays alive, tenant quotas balance back to
// zero, sessions that should survive survive, and clients eventually
// succeed through retry.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "layout/generator.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace hsdl::serve {
namespace {

hotspot::CnnDetectorConfig small_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 8;
  config.feature.nm_per_px = 4.0;
  config.cnn.stage1_maps = 4;
  config.cnn.stage2_maps = 4;
  config.cnn.fc_nodes = 8;
  return config;
}

std::vector<layout::Clip> make_clips(std::size_t n, std::uint64_t seed) {
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.4;
  layout::ClipGenerator gen(gen_cfg, seed);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < n; ++i)
    clips.push_back(gen.generate().normalized());
  return clips;
}

std::unique_ptr<hotspot::CnnDetector> make_detector(std::uint64_t seed) {
  hotspot::CnnDetectorConfig config = small_config();
  config.seed = seed;
  return std::make_unique<hotspot::CnnDetector>(config);
}

/// Detector with an int8 quantized net but fp32 as the serving default
/// — the shape the degradation path expects.
std::unique_ptr<hotspot::CnnDetector> make_quantized_detector() {
  auto detector = make_detector(1);
  const std::vector<layout::Clip> cal = make_clips(8, 99);
  std::vector<layout::LabeledClip> labeled;
  for (const layout::Clip& c : cal)
    labeled.push_back({c, layout::HotspotLabel::kNonHotspot});
  detector->quantize(labeled);
  detector->set_use_quantized(false);
  return detector;
}

/// One-spec plan at the suite's seed (HSDL_FAULT_SEED can sweep it).
fault::Plan plan_of(fault::Spec spec) {
  fault::Plan plan;
  plan.specs.push_back(std::move(spec));
  plan.seed = fault::seed_from_env(1);
  return plan;
}

TEST(ChaosTest, DroppedResponseSendReleasesQuotaAndServerSurvives) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  // An allocation fault makes the request fail mid-handling while the
  // tenant's quota is charged; the error-frame send then hits a dropped
  // connection, so the session dies abnormally with the quota still
  // held — exactly the path the quota guard exists for.
  fault::Plan plan = plan_of(
      {"engine.score.alloc", fault::Kind::kAllocFail, 1.0, 0.0, 0, 1});
  // Let the HelloAck send through; kill the next server send.
  plan.specs.push_back({"serve.net.send", fault::Kind::kFail, 1.0, 0.0,
                        /*start_after=*/1, /*max_fires=*/1});
  fault::ScopedPlan armed(std::move(plan));

  ServeClient client("127.0.0.1", server.port(), "chaos");
  const std::vector<layout::Clip> clips = make_clips(3, 7);
  EXPECT_THROW(client.score(clips), CheckError);

  // Abnormal session death released the tenant's in-flight budget...
  EXPECT_EQ(server.tenant_inflight("chaos"), 0u);
  // ...and the server is still serving (both fault specs are spent).
  ServeClient second("127.0.0.1", server.port(), "chaos");
  EXPECT_EQ(second.score(clips).hits.size(), clips.size());
  EXPECT_EQ(server.tenant_inflight("chaos"), 0u);
  EXPECT_GE(server.stats().internal_errors, 1u);
  second.bye();
}

TEST(ChaosTest, ShortWriteTruncatesResponseClientSeesDeadConnection) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  fault::ScopedPlan armed(plan_of({"serve.net.send", fault::Kind::kShortIo,
                                   1.0, /*fraction=*/0.5,
                                   /*start_after=*/1, /*max_fires=*/1}));
  ServeClient client("127.0.0.1", server.port(), "short");
  const std::vector<layout::Clip> clips = make_clips(2, 11);
  // Half a response frame then EOF: the client rejects the torn frame.
  EXPECT_THROW(client.score(clips), CheckError);
  EXPECT_EQ(fault::fires("serve.net.send"), 1u);

  ServeClient second("127.0.0.1", server.port(), "short");
  EXPECT_EQ(second.score(clips).hits.size(), clips.size());
  second.bye();
}

TEST(ChaosTest, ExpiredDeadlineRejectedBusyWithoutEngineSlot) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  // Slow handler: 120 ms stall after the deadline anchor, so a 30 ms
  // budget is guaranteed dead before scoring starts.
  fault::ScopedPlan armed(plan_of({"serve.handler", fault::Kind::kDelay,
                                   1.0, /*ms=*/120.0, 0, /*max_fires=*/1}));
  ServeClient client("127.0.0.1", server.port(), "deadline");
  const std::vector<layout::Clip> clips = make_clips(2, 13);
  try {
    client.score(clips, /*deadline_ms=*/30);
    FAIL() << "expired deadline was scored";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBusy);
    EXPECT_EQ(e.retry_after_ms(), ServeConfig{}.retry_after_ms);
  }
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.busy_rejections, 1u);
  EXPECT_EQ(stats.deadline_rejections, 1u);
  // Rejected before quota and before the engine: nothing was scored.
  EXPECT_EQ(stats.clips_scored, 0u);
  EXPECT_EQ(server.tenant_inflight("deadline"), 0u);

  // Same session, fault spent: an undeadlined request serves normally.
  EXPECT_EQ(client.score(clips).hits.size(), clips.size());
  client.bye();
}

TEST(ChaosTest, RetryWithBackoffEventuallySucceeds) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  // Two requests in a row hit the slow handler and blow their budget
  // for certain (the stall alone exceeds it); later attempts go
  // through. >= on the shed count tolerates a loaded CI host where an
  // un-stalled attempt still misses the deadline and retries again.
  fault::ScopedPlan armed(plan_of({"serve.handler", fault::Kind::kDelay,
                                   1.0, /*ms=*/400.0, 0, /*max_fires=*/2}));
  ServeClient client("127.0.0.1", server.port(), "retry");
  const std::vector<layout::Clip> clips = make_clips(2, 17);
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_ms = 5;
  const ScoreResponse response =
      client.score_with_retry(clips, policy, /*deadline_ms=*/150);
  EXPECT_EQ(response.hits.size(), clips.size());
  client.bye();
  server.shutdown();  // drain, so the served-request stat is final
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.busy_rejections, 2u);
  EXPECT_EQ(stats.requests_served, 1u);
}

TEST(ChaosTest, RetryRedialsAfterInjectedConnectionDrop) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  // Two recv_exact probes per frame (header, payload): let the Hello
  // frame through, then drop the connection on the score request.
  fault::ScopedPlan armed(plan_of({"serve.net.recv", fault::Kind::kFail,
                                   1.0, 0.0, /*start_after=*/2,
                                   /*max_fires=*/1}));
  ServeClient client("127.0.0.1", server.port(), "redial");
  const std::vector<layout::Clip> clips = make_clips(2, 19);
  // The server's recv of the score request drops the connection; the
  // client re-dials, re-handshakes and resends (idempotent).
  const ScoreResponse response = client.score_with_retry(clips);
  EXPECT_EQ(response.hits.size(), clips.size());
  EXPECT_EQ(server.tenant_inflight("redial"), 0u);
  client.bye();
}

TEST(ChaosTest, AllocFaultAnswersInternalAndSessionSurvives) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  fault::ScopedPlan armed(plan_of(
      {"engine.score.alloc", fault::Kind::kAllocFail, 1.0, 0.0, 0, 1}));
  ServeClient client("127.0.0.1", server.port(), "alloc");
  const std::vector<layout::Clip> clips = make_clips(2, 23);
  try {
    client.score(clips);
    FAIL() << "alloc fault did not surface";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
  EXPECT_EQ(server.tenant_inflight("alloc"), 0u);
  EXPECT_EQ(server.stats().internal_errors, 1u);
  // The session keeps serving: kInternal is per-request.
  EXPECT_EQ(client.score(clips).hits.size(), clips.size());
  client.bye();
}

TEST(ChaosTest, NanScoreNeverReachesClientAsAProbability) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});

  fault::ScopedPlan armed(
      plan_of({"engine.nan", fault::Kind::kNan, 1.0, 0.0, 0, 1}));
  ServeClient client("127.0.0.1", server.port(), "nan");
  const std::vector<layout::Clip> clips = make_clips(2, 29);
  try {
    client.score(clips);
    FAIL() << "corrupted score was served";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
  const ScoreResponse response = client.score(clips);
  ASSERT_EQ(response.hits.size(), clips.size());
  for (const RankedHit& h : response.hits)
    EXPECT_TRUE(std::isfinite(h.probability));
  client.bye();
}

TEST(ChaosTest, OverloadShedsDegradesToInt8AndRecovers) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_quantized_detector(), "gen1");
  ServeConfig config;
  config.session_workers = 2;
  config.max_clips_per_request = 2;
  config.busy_max_inflight_clips = 2;
  config.retry_after_ms = 5;
  config.degrade_after_ms = 0;   // first shed degrades
  // Generous recovery window: the success that proves int8 serving
  // must land inside it even when a loaded CI host delays the client.
  config.recover_after_ms = 400;
  HotspotServer server(registry, config);

  // A 300 ms stall inside the engine (kDelay on the alloc probe site)
  // keeps the first request's clips charged against the in-flight
  // ceiling, so a concurrent request deterministically sheds.
  fault::ScopedPlan armed(plan_of({"engine.score.alloc", fault::Kind::kDelay,
                                   1.0, /*ms=*/300.0, 0, /*max_fires=*/1}));
  const std::vector<layout::Clip> clips = make_clips(2, 31);
  std::thread holder([&] {
    ServeClient slow("127.0.0.1", server.port(), "hold");
    for (;;) {  // the hammering client below can shed us too
      try {
        EXPECT_EQ(slow.score(clips).hits.size(), clips.size());
        break;
      } catch (const ServerError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    slow.bye();
  });
  // Only start hammering once the holder's clips are charged — the
  // stall fault then deterministically lands on the holder's request.
  for (int i = 0; i < 2000 && server.tenant_inflight("hold") == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Hammer until we both get shed at least once AND land a success
  // after the shed — that success is inside the recovery window of the
  // last shed, so it must serve through the degraded int8 path.
  ServeClient client("127.0.0.1", server.port(), "shed");
  bool shed = false;
  bool degraded_success = false;
  ScoreResponse degraded;
  for (int i = 0; i < 500 && !degraded_success; ++i) {
    try {
      degraded = client.score(clips);
      degraded_success = shed;
    } catch (const ServerError& e) {
      ASSERT_EQ(e.code(), ErrorCode::kBusy);
      EXPECT_EQ(e.retry_after_ms(), 5u);
      shed = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  holder.join();
  ASSERT_TRUE(shed) << "no request was load-shed";
  ASSERT_TRUE(degraded_success) << "no request succeeded after the shed";
  EXPECT_GE(server.stats().busy_rejections, 1u);
  EXPECT_EQ(server.stats().degrade_events, 1u);
  EXPECT_EQ(degraded.hits.size(), clips.size());
  EXPECT_EQ(degraded.mode, ServeMode::kInt8);
  EXPECT_EQ(client.last_mode(), ServeMode::kInt8);

  // Shed-free traffic past the recovery window restores fp32.
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    client.score_with_retry(clips);
    recovered = client.last_mode() == ServeMode::kFp32;
  }
  EXPECT_TRUE(recovered) << "server never restored fp32 serving";
  EXPECT_GE(server.stats().recover_events, 1u);
  EXPECT_FALSE(server.stats().degraded);
  client.bye();
}

TEST(ChaosTest, DegradationWithoutQuantizedNetKeepsServingFp32) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "fp32-only");
  ServeConfig config;
  config.max_clips_per_request = 2;
  config.busy_max_inflight_clips = 2;
  config.degrade_after_ms = 0;
  config.recover_after_ms = 50;
  HotspotServer server(registry, config);

  fault::ScopedPlan armed(plan_of({"engine.score.alloc", fault::Kind::kDelay,
                                   1.0, /*ms=*/250.0, 0, /*max_fires=*/1}));
  const std::vector<layout::Clip> clips = make_clips(2, 37);
  std::thread holder([&] {
    ServeClient slow("127.0.0.1", server.port(), "hold");
    for (;;) {  // the hammering client below can shed us too
      try {
        slow.score(clips);
        break;
      } catch (const ServerError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    slow.bye();
  });
  for (int i = 0; i < 2000 && server.tenant_inflight("hold") == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Degraded mode engages, but this model has no int8 net: requests
  // keep serving fp32 rather than failing. Same hammer-until-success-
  // after-shed shape as above so the success lands while degraded.
  ServeClient client("127.0.0.1", server.port(), "shed");
  bool shed = false;
  bool success_after_shed = false;
  ScoreResponse response;
  for (int i = 0; i < 500 && !success_after_shed; ++i) {
    try {
      response = client.score(clips);
      success_after_shed = shed;
    } catch (const ServerError&) {
      shed = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  holder.join();
  ASSERT_TRUE(success_after_shed);
  EXPECT_GE(server.stats().degrade_events, 1u);
  EXPECT_EQ(response.mode, ServeMode::kFp32);
  client.bye();
}

TEST(ChaosTest, StuckSessionIsReapedAndWorkerFreed) {
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  ServeConfig config;
  config.session_workers = 1;  // the stuck peer holds the only worker
  config.session_timeout_ms = 100;
  HotspotServer server(registry, config);

  // A client that handshakes, sends half a frame header, then goes
  // silent — without the watchdog this parks the worker forever.
  Socket stuck = Socket::connect("127.0.0.1", server.port());
  Hello hello;
  hello.tenant = "stuck";
  send_frame(stuck, encode_frame(MsgType::kHello, encode_hello(hello)));
  std::string buf;
  ASSERT_TRUE(recv_frame(stuck, buf, "stuck client"));
  ScoreRequest stuck_req;
  stuck_req.request_id = 1;
  stuck_req.clips = make_clips(1, 41);
  const std::string partial = encode_frame(MsgType::kScoreRequest,
                                           encode_score_request(stuck_req));
  stuck.send_all(partial.data(), 4);  // half a length prefix, then silence

  // The reaped worker picks up a healthy session and serves it.
  ServeClient client("127.0.0.1", server.port(), "healthy");
  const std::vector<layout::Clip> clips = make_clips(2, 43);
  EXPECT_EQ(client.score(clips).hits.size(), clips.size());
  EXPECT_GE(server.stats().sessions_reaped, 1u);
  EXPECT_EQ(server.tenant_inflight("stuck"), 0u);
  client.bye();
  stuck.close();
}

TEST(ChaosTest, DisarmedRegistryFiresNothingAcrossTheStack) {
  // The whole serving path runs with fault hooks present but disarmed:
  // zero fires, zero behavioral difference.
  ASSERT_FALSE(fault::armed());
  ModelRegistry registry(small_config(), hotspot::EngineConfig{});
  registry.install(make_detector(1), "gen1");
  HotspotServer server(registry, ServeConfig{});
  ServeClient client("127.0.0.1", server.port(), "calm");
  const std::vector<layout::Clip> clips = make_clips(4, 47);
  EXPECT_EQ(client.score(clips).hits.size(), clips.size());
  EXPECT_EQ(fault::total_fires(), 0u);
  client.bye();
}

}  // namespace
}  // namespace hsdl::serve

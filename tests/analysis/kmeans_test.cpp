#include "analysis/kmeans.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::analysis {
namespace {

/// `per` points around each of the given 2-D centers.
std::vector<float> blobs(const std::vector<std::pair<float, float>>& centers,
                         std::size_t per, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data;
  for (auto [cx, cy] : centers)
    for (std::size_t i = 0; i < per; ++i) {
      data.push_back(cx + static_cast<float>(rng.normal(0, 0.1)));
      data.push_back(cy + static_cast<float>(rng.normal(0, 0.1)));
    }
  return data;
}

TEST(SquaredDistanceTest, Basics) {
  const float a[] = {0, 0, 0};
  const float b[] = {1, 2, 2};
  EXPECT_DOUBLE_EQ(squared_distance(a, b, 3), 9.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, a, 3), 0.0);
}

TEST(KmeansTest, RecoversWellSeparatedBlobs) {
  auto data = blobs({{0, 0}, {10, 0}, {0, 10}}, 30, 1);
  KmeansConfig cfg;
  cfg.clusters = 3;
  cfg.seed = 2;
  KmeansResult r = kmeans(data.data(), 90, 2, cfg);
  // Each blob's 30 points share one label.
  for (int b = 0; b < 3; ++b) {
    const std::size_t label = r.assignment[static_cast<std::size_t>(b) * 30];
    for (std::size_t i = 0; i < 30; ++i)
      EXPECT_EQ(r.assignment[static_cast<std::size_t>(b) * 30 + i], label);
  }
  // And the three labels are distinct.
  EXPECT_NE(r.assignment[0], r.assignment[30]);
  EXPECT_NE(r.assignment[30], r.assignment[60]);
  EXPECT_NE(r.assignment[0], r.assignment[60]);
}

TEST(KmeansTest, InertiaDecreasesWithMoreClusters) {
  auto data = blobs({{0, 0}, {5, 5}, {10, 0}, {0, 10}}, 25, 3);
  auto run = [&](std::size_t k) {
    KmeansConfig cfg;
    cfg.clusters = k;
    cfg.seed = 4;
    return kmeans(data.data(), 100, 2, cfg).inertia;
  };
  EXPECT_GT(run(1), run(2));
  EXPECT_GT(run(2), run(4));
}

TEST(KmeansTest, SingleClusterCentroidIsMean) {
  std::vector<float> data = {0, 0, 2, 0, 4, 0, 6, 0};
  KmeansConfig cfg;
  cfg.clusters = 1;
  KmeansResult r = kmeans(data.data(), 4, 2, cfg);
  EXPECT_NEAR(r.centroids[0][0], 3.0f, 1e-5f);
  EXPECT_NEAR(r.centroids[0][1], 0.0f, 1e-5f);
}

TEST(KmeansTest, DeterministicBySeed) {
  auto data = blobs({{0, 0}, {8, 8}}, 20, 5);
  KmeansConfig cfg;
  cfg.clusters = 2;
  cfg.seed = 6;
  KmeansResult a = kmeans(data.data(), 40, 2, cfg);
  KmeansResult b = kmeans(data.data(), 40, 2, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KmeansTest, IdenticalPointsHandled) {
  std::vector<float> data(20, 1.0f);  // 10 identical 2-D points
  KmeansConfig cfg;
  cfg.clusters = 3;
  KmeansResult r = kmeans(data.data(), 10, 2, cfg);
  EXPECT_DOUBLE_EQ(r.inertia, 0.0);
}

TEST(KmeansTest, ConvergesBeforeMaxIters) {
  auto data = blobs({{0, 0}, {20, 20}}, 50, 7);
  KmeansConfig cfg;
  cfg.clusters = 2;
  cfg.max_iters = 100;
  KmeansResult r = kmeans(data.data(), 100, 2, cfg);
  EXPECT_LT(r.iterations, 20u);
}

TEST(KmeansTest, ValidationErrors) {
  std::vector<float> data = {1, 2};
  KmeansConfig cfg;
  cfg.clusters = 3;
  EXPECT_THROW(kmeans(data.data(), 1, 2, cfg), hsdl::CheckError);
  cfg.clusters = 0;
  EXPECT_THROW(kmeans(data.data(), 1, 2, cfg), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::analysis

#include "analysis/pattern_cluster.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "layout/generator.hpp"

namespace hsdl::analysis {
namespace {

std::vector<layout::Clip> archetype_mix(std::uint64_t seed) {
  layout::GeneratorConfig cfg;
  layout::ClipGenerator gen(cfg, seed);
  std::vector<layout::Clip> clips;
  // Two visually distinct families: dense line arrays vs contact grids.
  for (int i = 0; i < 12; ++i)
    clips.push_back(gen.generate(layout::Archetype::kLineSpace));
  for (int i = 0; i < 12; ++i)
    clips.push_back(gen.generate(layout::Archetype::kContacts));
  return clips;
}

TEST(PatternClusterTest, SeparatesArchetypeFamilies) {
  auto clips = archetype_mix(31);
  PatternClusterConfig cfg;
  cfg.kmeans.clusters = 2;
  cfg.kmeans.seed = 5;
  PatternClusterResult r = cluster_patterns(clips, cfg);
  ASSERT_EQ(r.assignment.size(), clips.size());
  // Majority label of each family must differ.
  int family0_label1 = 0, family1_label1 = 0;
  for (int i = 0; i < 12; ++i) family0_label1 += r.assignment[i] == 1;
  for (int i = 12; i < 24; ++i)
    family1_label1 += r.assignment[static_cast<std::size_t>(i)] == 1;
  const bool family0_is_1 = family0_label1 >= 6;
  const bool family1_is_1 = family1_label1 >= 6;
  EXPECT_NE(family0_is_1, family1_is_1);
}

TEST(PatternClusterTest, ClusterSizesSumToInput) {
  auto clips = archetype_mix(32);
  PatternClusterConfig cfg;
  cfg.kmeans.clusters = 4;
  PatternClusterResult r = cluster_patterns(clips, cfg);
  std::size_t total = 0;
  for (const PatternCluster& c : r.clusters) total += c.size;
  EXPECT_EQ(total, clips.size());
}

TEST(PatternClusterTest, MedoidBelongsToItsCluster) {
  auto clips = archetype_mix(33);
  PatternClusterConfig cfg;
  cfg.kmeans.clusters = 3;
  PatternClusterResult r = cluster_patterns(clips, cfg);
  for (std::size_t c = 0; c < r.clusters.size(); ++c) {
    if (r.clusters[c].size == 0) continue;
    EXPECT_EQ(r.assignment[r.clusters[c].medoid], c);
  }
}

TEST(PatternClusterTest, MeanDistanceNonNegative) {
  auto clips = archetype_mix(34);
  PatternClusterConfig cfg;
  cfg.kmeans.clusters = 3;
  for (const PatternCluster& c : cluster_patterns(clips, cfg).clusters)
    EXPECT_GE(c.mean_distance, 0.0);
}

TEST(PatternClusterTest, EmptyInputThrows) {
  PatternClusterConfig cfg;
  EXPECT_THROW(cluster_patterns({}, cfg), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::analysis

#include "hotspot/trainer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::hotspot {
namespace {

/// Tiny CNN config for fast tests.
HotspotCnnConfig tiny_cnn() {
  HotspotCnnConfig cfg;
  cfg.input_channels = 2;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 8;
  cfg.fc_nodes = 16;
  cfg.dropout = 0.0;  // deterministic for convergence tests
  return cfg;
}

/// Linearly separable synthetic "feature tensors": class decides the mean
/// of channel 0.
nn::ClassificationDataset separable_set(std::size_t n_per_class,
                                        std::uint64_t seed) {
  Rng rng(seed);
  nn::ClassificationDataset d({2, 4, 4});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (std::size_t label = 0; label < 2; ++label) {
      std::vector<float> x(32);
      for (float& v : x)
        v = static_cast<float>(rng.normal(label == 1 ? 0.8 : 0.0, 0.15));
      d.add(std::move(x), label);
    }
  }
  return d;
}

MgdConfig fast_mgd() {
  MgdConfig cfg;
  cfg.learning_rate = 5e-3;
  cfg.max_iters = 300;
  cfg.decay_step = 150;
  cfg.validate_every = 50;
  cfg.patience = 20;
  cfg.batch = 16;
  return cfg;
}

TEST(BiasedTargetsTest, UnbiasedMatchesPaperGroundTruth) {
  nn::Tensor t = biased_targets({kHotspotIndex, kNonHotspotIndex}, 0.0);
  // y*_h = [0, 1], y*_n = [1, 0].
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 0.0f);
}

TEST(BiasedTargetsTest, EpsilonRelaxesNonHotspotOnly) {
  nn::Tensor t = biased_targets({kHotspotIndex, kNonHotspotIndex}, 0.2);
  // Hotspot truth fixed at [0, 1] (Algorithm 2 line 1).
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1), 1.0f);
  // Non-hotspot truth [1-eps, eps].
  EXPECT_FLOAT_EQ(t.at(1, 0), 0.8f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 0.2f);
}

TEST(BiasedTargetsTest, RowsSumToOne) {
  nn::Tensor t = biased_targets({0, 1, 0, 1}, 0.3);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(t.at(i, 0) + t.at(i, 1), 1.0f, 1e-6f);
}

TEST(BiasedTargetsTest, EpsilonBoundsEnforced) {
  EXPECT_THROW(biased_targets({0}, 0.5), hsdl::CheckError);
  EXPECT_THROW(biased_targets({0}, -0.1), hsdl::CheckError);
}

TEST(MgdTrainerTest, ConfigValidation) {
  MgdConfig bad = fast_mgd();
  bad.learning_rate = 0;
  EXPECT_THROW(MgdTrainer{bad}, hsdl::CheckError);
  bad = fast_mgd();
  bad.decay = 0.0;
  EXPECT_THROW(MgdTrainer{bad}, hsdl::CheckError);
  bad = fast_mgd();
  bad.batch = 0;
  EXPECT_THROW(MgdTrainer{bad}, hsdl::CheckError);
}

TEST(MgdTrainerTest, LearnsSeparableData) {
  HotspotCnn model(tiny_cnn());
  auto train = separable_set(40, 1);
  auto val = separable_set(15, 2);
  MgdTrainer trainer(fast_mgd());
  Rng rng(3);
  TrainResult result = trainer.train(model, train, val, rng);
  EXPECT_GT(result.best_val_accuracy, 0.95);
  Confusion c = evaluate(model, val);
  EXPECT_GT(c.accuracy(), 0.9);
}

TEST(MgdTrainerTest, HistoryIsMonotoneInIterAndTime) {
  HotspotCnn model(tiny_cnn());
  auto train = separable_set(20, 4);
  auto val = separable_set(8, 5);
  MgdTrainer trainer(fast_mgd());
  Rng rng(6);
  TrainResult result = trainer.train(model, train, val, rng);
  ASSERT_GE(result.history.size(), 2u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GT(result.history[i].iter, result.history[i - 1].iter);
    EXPECT_GE(result.history[i].seconds, result.history[i - 1].seconds);
  }
}

TEST(MgdTrainerTest, CallbackInvokedPerValidation) {
  HotspotCnn model(tiny_cnn());
  auto train = separable_set(10, 7);
  auto val = separable_set(5, 8);
  MgdConfig cfg = fast_mgd();
  cfg.max_iters = 100;
  cfg.validate_every = 25;
  MgdTrainer trainer(cfg);
  int calls = 0;
  trainer.set_callback([&](const TrainPoint&) { ++calls; });
  Rng rng(9);
  TrainResult result = trainer.train(model, train, val, rng);
  EXPECT_EQ(static_cast<std::size_t>(calls), result.history.size());
  EXPECT_EQ(calls, 4);
}

TEST(MgdTrainerTest, EarlyStoppingByPatience) {
  HotspotCnn model(tiny_cnn());
  auto train = separable_set(10, 10);
  auto val = separable_set(5, 11);
  MgdConfig cfg = fast_mgd();
  cfg.max_iters = 100000;  // patience must cut this short
  cfg.validate_every = 10;
  cfg.patience = 3;
  MgdTrainer trainer(cfg);
  Rng rng(12);
  TrainResult result = trainer.train(model, train, val, rng);
  EXPECT_LT(result.iters_run, 100000u);
}

TEST(MgdTrainerTest, RestoresBestSnapshot) {
  // After training, the model must score the recorded best validation
  // accuracy (not whatever the last iterate was).
  HotspotCnn model(tiny_cnn());
  auto train = separable_set(30, 13);
  auto val = separable_set(10, 14);
  MgdTrainer trainer(fast_mgd());
  Rng rng(15);
  TrainResult result = trainer.train(model, train, val, rng);
  Confusion c = evaluate(model, val);
  const double hs = c.accuracy();
  const double nhs =
      static_cast<double>(c.tn) / static_cast<double>(c.fp + c.tn);
  EXPECT_NEAR(0.5 * (hs + nhs), result.best_val_accuracy, 1e-9);
}

TEST(MgdTrainerTest, DeterministicGivenSeeds) {
  auto train = separable_set(15, 16);
  auto val = separable_set(5, 17);
  auto run = [&]() {
    HotspotCnn model(tiny_cnn());
    MgdTrainer trainer(fast_mgd());
    Rng rng(18);
    return trainer.train(model, train, val, rng).best_val_accuracy;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(MgdTrainerTest, SgdModeIsBatchOne) {
  HotspotCnn model(tiny_cnn());
  auto train = separable_set(10, 19);
  auto val = separable_set(5, 20);
  MgdConfig cfg = fast_mgd();
  cfg.batch = 1;  // Figure 3's SGD comparison
  cfg.max_iters = 800;
  cfg.learning_rate = 2e-3;  // single-instance gradients need a lower rate
  MgdTrainer trainer(cfg);
  Rng rng(21);
  TrainResult result = trainer.train(model, train, val, rng);
  EXPECT_GT(result.best_val_accuracy, 0.6);
}

TEST(EvaluateTest, ShiftMovesBoundary) {
  // Equation (11): positive shift flags more hotspots.
  HotspotCnn model(tiny_cnn());
  auto data = separable_set(20, 22);
  Confusion neutral = evaluate(model, data, 0.0);
  Confusion shifted = evaluate(model, data, 0.4);
  EXPECT_GE(shifted.detected(), neutral.detected());
}

TEST(EvaluateTest, CountsMatchDatasetSize) {
  HotspotCnn model(tiny_cnn());
  auto data = separable_set(12, 23);
  Confusion c = evaluate(model, data);
  EXPECT_EQ(c.total(), data.size());
  EXPECT_EQ(c.hotspots(), data.count_label(kHotspotIndex));
}

}  // namespace
}  // namespace hsdl::hotspot

// Crash-safe scan tests (DESIGN.md §14): a scan killed mid-way by an
// injected band fault resumes from its journal and produces a report
// bitwise identical to an uninterrupted scan; torn or corrupt journal
// tails are truncated; a fingerprint mismatch starts fresh.
#include "hotspot/scan_journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "hotspot/detector.hpp"
#include "hotspot/engine/engine.hpp"
#include "hotspot/scanner.hpp"

namespace hsdl::hotspot {
namespace {

CnnDetectorConfig small_config() {
  CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 8;
  config.feature.nm_per_px = 4.0;  // 1200 nm window -> 300 px raster
  config.cnn.stage1_maps = 4;
  config.cnn.stage2_maps = 4;
  config.cnn.fc_nodes = 8;
  return config;
}

/// 2400x4800 chip: 2 window columns x 4 rows at stride 1200, with
/// enough geometry spread around that scores differ across windows.
layout::Layout test_chip() {
  std::vector<geom::Rect> shapes;
  for (geom::Coord y = 0; y < 4800; y += 400) {
    for (geom::Coord x = 0; x < 2400; x += 600) {
      shapes.push_back(geom::Rect::from_xywh(x + (y % 800) / 8, y, 180, 90));
    }
  }
  return layout::Layout(geom::Rect::from_xywh(0, 0, 2400, 4800),
                        std::move(shapes));
}

ScanConfig band_per_row_config() {
  ScanConfig config;
  config.window_size = 1200;
  config.stride = 1200;
  config.band_rows = 1;  // 4 bands -> fine-grained kill points
  return config;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void expect_same_report(const ScanReport& a, const ScanReport& b) {
  EXPECT_EQ(a.windows_scanned, b.windows_scanned);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].window, b.hits[i].window);
    // Bitwise, not approximate: replayed bands must reproduce the
    // exact probabilities the first run journaled.
    EXPECT_EQ(a.hits[i].probability, b.hits[i].probability);
  }
}

TEST(ScanResumeTest, KilledScanResumesBitwiseIdentical) {
  const layout::Layout chip = test_chip();
  const CnnDetector detector(small_config());
  const ChipScanner scanner(band_per_row_config());
  const std::string path = temp_path("hsdl_scan_resume_test.journal");
  std::filesystem::remove(path);

  InferenceEngine clean_engine(detector);
  const ScanReport clean = scanner.scan(chip, clean_engine);
  ASSERT_EQ(clean.windows_scanned, 8u);  // 2 cols x 4 rows

  // Kill the scan at the start of band 2: bands 0 and 1 are journaled,
  // the rest never ran.
  {
    fault::Plan plan;
    plan.specs.push_back({"scan.band", fault::Kind::kFail, 1.0, 0.0,
                          /*start_after=*/2, /*max_fires=*/0});
    fault::ScopedPlan armed(std::move(plan));
    InferenceEngine engine(detector);
    EXPECT_THROW(scanner.scan_resumable(chip, engine, path), CheckError);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume with a fresh engine: only the 2 remaining bands (2 clips
  // each) are scored; bands 0-1 replay from the journal.
  InferenceEngine resume_engine(detector);
  const ScanReport resumed =
      scanner.scan_resumable(chip, resume_engine, path);
  expect_same_report(clean, resumed);
  EXPECT_EQ(resume_engine.stats().requests, 4u);
  // A completed scan cleans up its resume state.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ScanResumeTest, JournalRoundTripAndTornTailTruncation) {
  const std::string path = temp_path("hsdl_scan_journal_test.journal");
  std::filesystem::remove(path);

  BandResult band0;
  band0.band_index = 0;
  band0.windows = 3;
  band0.hits = {{geom::Rect::from_xywh(0, 0, 1200, 1200), 0.75},
                {geom::Rect::from_xywh(1200, 0, 1200, 1200), 0.5}};
  BandResult band1;
  band1.band_index = 1;
  band1.windows = 3;  // no hits

  {
    ScanJournal journal(path, /*fingerprint=*/42);
    EXPECT_FALSE(journal.resumed());
    journal.append(band0);
    journal.append(band1);
  }
  // Simulate a crash mid-append: garbage where the next record starts.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x30\x00\x00\x00torn", 8);
  }
  ScanJournal journal(path, 42);
  EXPECT_TRUE(journal.resumed());
  ASSERT_EQ(journal.bands(), 2u);
  const BandResult* got = journal.result(0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->windows, 3u);
  ASSERT_EQ(got->hits.size(), 2u);
  EXPECT_EQ(got->hits[0].window, band0.hits[0].window);
  EXPECT_EQ(got->hits[0].probability, 0.75);
  EXPECT_TRUE(journal.has(1));
  EXPECT_FALSE(journal.has(2));
  // The torn tail was truncated in place, so the file is exactly the
  // two good records again.
  ScanJournal reopened(path, 42);
  EXPECT_EQ(reopened.bands(), 2u);
  journal.remove();
}

TEST(ScanResumeTest, CorruptRecordDropsItAndItsTail) {
  const std::string path = temp_path("hsdl_scan_journal_corrupt.journal");
  std::filesystem::remove(path);
  BandResult band;
  band.windows = 2;
  {
    ScanJournal journal(path, 7);
    band.band_index = 0;
    journal.append(band);
    band.band_index = 1;
    journal.append(band);
  }
  // Flip one byte inside the second record's payload: its CRC no
  // longer matches, so resume keeps only the first band.
  const auto size = std::filesystem::file_size(path);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(size) - 10);
    f.put('\xff');
  }
  ScanJournal journal(path, 7);
  EXPECT_TRUE(journal.resumed());
  EXPECT_EQ(journal.bands(), 1u);
  EXPECT_TRUE(journal.has(0));
  EXPECT_FALSE(journal.has(1));
  journal.remove();
}

TEST(ScanResumeTest, FingerprintMismatchStartsFresh) {
  const std::string path = temp_path("hsdl_scan_journal_fp.journal");
  std::filesystem::remove(path);
  BandResult band;
  band.band_index = 0;
  band.windows = 1;
  {
    ScanJournal journal(path, 1);
    journal.append(band);
  }
  ScanJournal other(path, 2);  // different scan geometry
  EXPECT_FALSE(other.resumed());
  EXPECT_EQ(other.bands(), 0u);
  other.remove();
}

TEST(ScanResumeTest, FingerprintCoversGeometry) {
  const geom::Rect extent = geom::Rect::from_xywh(0, 0, 2400, 4800);
  ScanConfig a = band_per_row_config();
  ScanConfig b = a;
  EXPECT_EQ(ScanJournal::fingerprint(a, extent),
            ScanJournal::fingerprint(b, extent));
  b.stride = 600;
  EXPECT_NE(ScanJournal::fingerprint(a, extent),
            ScanJournal::fingerprint(b, extent));
  b = a;
  b.band_rows = 2;
  EXPECT_NE(ScanJournal::fingerprint(a, extent),
            ScanJournal::fingerprint(b, extent));
  EXPECT_NE(ScanJournal::fingerprint(
                a, geom::Rect::from_xywh(0, 0, 2400, 2400)),
            ScanJournal::fingerprint(a, extent));
}

TEST(ScanResumeTest, BandRowsValidated) {
  ScanConfig config;
  config.band_rows = 0;
  EXPECT_THROW(config.validate(), CheckError);
}

}  // namespace
}  // namespace hsdl::hotspot

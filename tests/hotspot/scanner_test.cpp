#include "hotspot/scanner.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::hotspot {
namespace {

/// Deterministic stand-in detector: flags windows whose clip density
/// exceeds a threshold.
class DensityThresholdDetector final : public Detector {
 public:
  explicit DensityThresholdDetector(double threshold)
      : threshold_(threshold) {}
  std::string name() const override { return "density-threshold"; }
  void train(const std::vector<layout::LabeledClip>&) override {}
  bool predict(const layout::Clip& clip) override {
    ++calls;
    return clip.density() > threshold_;
  }
  int calls = 0;

 private:
  double threshold_;
};

layout::Layout dense_corner_chip() {
  // 2400x2400 chip: the lower-left 1200-tile is solid, the rest sparse.
  std::vector<geom::Rect> shapes = {
      geom::Rect::from_xywh(0, 0, 1100, 1100),
      geom::Rect::from_xywh(1300, 1300, 50, 50)};
  return layout::Layout(geom::Rect::from_xywh(0, 0, 2400, 2400),
                        std::move(shapes));
}

TEST(ScannerTest, WindowCountMatchesGrid) {
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  ScanReport report = scanner.scan(chip, det);
  EXPECT_EQ(report.windows_scanned, 4u);
  EXPECT_EQ(det.calls, 4);
}

TEST(ScannerTest, StrideControlsOverlap) {
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 600});
  DensityThresholdDetector det(0.5);
  ScanReport report = scanner.scan(chip, det);
  EXPECT_EQ(report.windows_scanned, 9u);  // 3x3 positions
}

TEST(ScannerTest, FlagsOnlyDenseWindows) {
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  ScanReport report = scanner.scan(chip, det);
  ASSERT_EQ(report.hits.size(), 1u);
  EXPECT_EQ(report.hits[0].window, geom::Rect::from_xywh(0, 0, 1200, 1200));
  EXPECT_DOUBLE_EQ(report.flagged_fraction(), 0.25);
}

TEST(ScannerTest, OdstAccountsFlaggedOnly) {
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  ScanReport report = scanner.scan(chip, det);
  EXPECT_NEAR(report.odst_seconds(), 10.0 + report.scan_seconds, 1e-9);
  EXPECT_DOUBLE_EQ(report.full_simulation_seconds(), 40.0);
  EXPECT_LT(report.odst_seconds(), report.full_simulation_seconds());
}

TEST(ScannerTest, LayoutSmallerThanWindowThrows) {
  layout::Layout tiny(geom::Rect::from_xywh(0, 0, 600, 600),
                      {geom::Rect::from_xywh(0, 0, 100, 100)});
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  EXPECT_THROW(scanner.scan(tiny, det), hsdl::CheckError);
}

TEST(ScannerTest, ConfigValidation) {
  EXPECT_THROW(ChipScanner(ScanConfig{0, 1200}), hsdl::CheckError);
  EXPECT_THROW(ChipScanner(ScanConfig{1200, 0}), hsdl::CheckError);
}

TEST(ScannerTest, ClipsPassedNormalized) {
  // Detectors expect origin-normalized clips (their rasterizer does too);
  // check the scanner normalizes far-from-origin windows.
  class WindowProbe final : public Detector {
   public:
    std::string name() const override { return "probe"; }
    void train(const std::vector<layout::LabeledClip>&) override {}
    bool predict(const layout::Clip& clip) override {
      EXPECT_EQ(clip.window.lo, (geom::Point{0, 0}));
      return false;
    }
  };
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  WindowProbe probe;
  scanner.scan(chip, probe);
}

}  // namespace
}  // namespace hsdl::hotspot

#include "hotspot/scanner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace hsdl::hotspot {
namespace {

/// Deterministic stand-in detector: flags windows whose clip density
/// exceeds a threshold.
class DensityThresholdDetector final : public Detector {
 public:
  explicit DensityThresholdDetector(double threshold)
      : threshold_(threshold) {}
  std::string name() const override { return "density-threshold"; }
  void train(std::span<const layout::LabeledClip>) override {}
  bool predict(const layout::Clip& clip) const override {
    ++calls;
    return clip.density() > threshold_;
  }
  mutable int calls = 0;

 private:
  double threshold_;
};

layout::Layout dense_corner_chip() {
  // 2400x2400 chip: the lower-left 1200-tile is solid, the rest sparse.
  std::vector<geom::Rect> shapes = {
      geom::Rect::from_xywh(0, 0, 1100, 1100),
      geom::Rect::from_xywh(1300, 1300, 50, 50)};
  return layout::Layout(geom::Rect::from_xywh(0, 0, 2400, 2400),
                        std::move(shapes));
}

TEST(ScannerTest, WindowCountMatchesGrid) {
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  ScanReport report = scanner.scan(chip, det);
  EXPECT_EQ(report.windows_scanned, 4u);
  EXPECT_EQ(det.calls, 4);
}

TEST(ScannerTest, StrideControlsOverlap) {
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 600});
  DensityThresholdDetector det(0.5);
  ScanReport report = scanner.scan(chip, det);
  EXPECT_EQ(report.windows_scanned, 9u);  // 3x3 positions
}

TEST(ScannerTest, FlagsOnlyDenseWindows) {
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  ScanReport report = scanner.scan(chip, det);
  ASSERT_EQ(report.hits.size(), 1u);
  EXPECT_EQ(report.hits[0].window, geom::Rect::from_xywh(0, 0, 1200, 1200));
  EXPECT_DOUBLE_EQ(report.flagged_fraction(), 0.25);
}

TEST(ScannerTest, OdstAccountsFlaggedOnly) {
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  ScanReport report = scanner.scan(chip, det);
  EXPECT_NEAR(report.odst_seconds(), 10.0 + report.scan_seconds, 1e-9);
  EXPECT_DOUBLE_EQ(report.full_simulation_seconds(), 40.0);
  EXPECT_LT(report.odst_seconds(), report.full_simulation_seconds());
}

TEST(ScannerTest, LayoutSmallerThanWindowThrows) {
  layout::Layout tiny(geom::Rect::from_xywh(0, 0, 600, 600),
                      {geom::Rect::from_xywh(0, 0, 100, 100)});
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  EXPECT_THROW(scanner.scan(tiny, det), hsdl::CheckError);
}

TEST(ScannerTest, ConfigValidation) {
  EXPECT_THROW(ChipScanner(ScanConfig{0, 1200}), hsdl::CheckError);
  EXPECT_THROW(ChipScanner(ScanConfig{1200, 0}), hsdl::CheckError);
}

TEST(ScannerTest, ClipsPassedNormalized) {
  // Detectors expect origin-normalized clips (their rasterizer does too);
  // check the scanner normalizes far-from-origin windows.
  class WindowProbe final : public Detector {
   public:
    std::string name() const override { return "probe"; }
    void train(std::span<const layout::LabeledClip>) override {}
    bool predict(const layout::Clip& clip) const override {
      EXPECT_EQ(clip.window.lo, (geom::Point{0, 0}));
      return false;
    }
  };
  layout::Layout chip = dense_corner_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  WindowProbe probe;
  scanner.scan(chip, probe);
}

layout::Layout trailing_band_chip() {
  // 2900x2900 chip whose only dense patch sits past 2400 — entirely
  // inside the band a bare stride-1200 grid of 1200-windows never
  // visits. Density 400*400/1200^2 = 0.111.
  std::vector<geom::Rect> shapes = {
      geom::Rect::from_xywh(2450, 2450, 400, 400)};
  return layout::Layout(geom::Rect::from_xywh(0, 0, 2900, 2900),
                        std::move(shapes));
}

TEST(ScannerTest, TrailingBandIsScanned) {
  // Regression: windows overhanging the extent used to be skipped, so a
  // hotspot in the last partial band was invisible to the scan. The
  // final row/column now clamps to extent.hi - window_size.
  layout::Layout chip = trailing_band_chip();
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.05);
  ScanReport report = scanner.scan(chip, det);
  // Grid {0, 1200} plus the clamped position 1700, per axis.
  EXPECT_EQ(report.windows_scanned, 9u);
  ASSERT_EQ(report.hits.size(), 1u);
  EXPECT_EQ(report.hits[0].window,
            geom::Rect::from_xywh(1700, 1700, 1200, 1200));
}

TEST(ScannerTest, StrideAlignedExtentGetsNoExtraWindows) {
  // When the stride tiles the extent exactly, the clamp adds nothing.
  layout::Layout chip = dense_corner_chip();  // 2400 extent, stride 1200
  ChipScanner scanner(ScanConfig{1200, 1200});
  DensityThresholdDetector det(0.5);
  EXPECT_EQ(scanner.scan(chip, det).windows_scanned, 4u);
}

TEST(ScannerTest, ClampedGridNeverDuplicatesWindows) {
  // Property sweep: whatever the stride/extent combination, no window
  // rect is ever scanned (or reported) twice. A clamped trailing origin
  // landing on an interior grid position used to produce exactly that.
  for (geom::Coord extent : {2400, 2500, 2900, 3000, 3100}) {
    for (geom::Coord stride : {300, 500, 700, 1200}) {
      layout::Layout chip(
          geom::Rect::from_xywh(0, 0, extent, extent),
          {geom::Rect::from_xywh(0, 0, 50, 50)});
      ChipScanner scanner(ScanConfig{1200, stride});
      DensityThresholdDetector flag_all(-1.0);  // every window is a hit
      ScanReport report = scanner.scan(chip, flag_all);
      EXPECT_EQ(report.hits.size(), report.windows_scanned);
      std::set<std::pair<geom::Coord, geom::Coord>> seen;
      for (const ScanHit& hit : report.hits)
        EXPECT_TRUE(seen.insert({hit.window.lo.x, hit.window.lo.y}).second)
            << "duplicate window at (" << hit.window.lo.x << ", "
            << hit.window.lo.y << ") with extent " << extent << " stride "
            << stride;
    }
  }
}

TEST(ScannerTest, ReportBitwiseIdenticalAcrossThreadCounts) {
  layout::Layout chip = trailing_band_chip();
  ChipScanner scanner(ScanConfig{1200, 700});
  auto run = [&](std::size_t threads) {
    set_num_threads(threads);
    DensityThresholdDetector det(0.05);
    ScanReport r = scanner.scan(chip, det);
    set_num_threads(0);
    return r;
  };
  const ScanReport base = run(1);
  for (std::size_t threads : {2u, 8u}) {
    const ScanReport r = run(threads);
    EXPECT_EQ(r.windows_scanned, base.windows_scanned);
    ASSERT_EQ(r.hits.size(), base.hits.size()) << threads << " threads";
    for (std::size_t i = 0; i < r.hits.size(); ++i) {
      EXPECT_EQ(r.hits[i].window, base.hits[i].window);
      // Bitwise, not approximate: the merge order must not depend on
      // the thread count.
      EXPECT_EQ(r.hits[i].probability, base.hits[i].probability);
    }
  }
}

}  // namespace
}  // namespace hsdl::hotspot

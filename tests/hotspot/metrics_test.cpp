#include "hotspot/metrics.hpp"

#include <gtest/gtest.h>

namespace hsdl::hotspot {
namespace {

TEST(ConfusionTest, AddRoutesCorrectly) {
  Confusion c;
  c.add(true, true);    // tp
  c.add(true, false);   // fn
  c.add(false, true);   // fp
  c.add(false, false);  // tn
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(ConfusionTest, AccuracyIsHotspotRecall) {
  // Paper Definition 1: correctly predicted hotspots / all real hotspots.
  Confusion c;
  c.tp = 9;
  c.fn = 1;
  c.fp = 100;  // false alarms do not enter accuracy
  c.tn = 0;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.9);
}

TEST(ConfusionTest, AccuracyWithNoHotspotsIsOne) {
  Confusion c;
  c.tn = 10;
  EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
}

TEST(ConfusionTest, FalseAlarmsAreFp) {
  Confusion c;
  c.fp = 42;
  EXPECT_EQ(c.false_alarms(), 42u);
}

TEST(ConfusionTest, DetectedIsTpPlusFp) {
  Confusion c;
  c.tp = 3;
  c.fp = 4;
  EXPECT_EQ(c.detected(), 7u);
}

TEST(ConfusionTest, OdstDefinition3) {
  // ODST = 10 s per detected hotspot (real + false alarm) + eval time.
  Confusion c;
  c.tp = 5;
  c.fp = 2;
  c.fn = 1;
  c.tn = 10;
  EXPECT_DOUBLE_EQ(c.odst_seconds(3.5), 10.0 * 7 + 3.5);
}

TEST(ConfusionTest, OdstZeroDetections) {
  Confusion c;
  c.tn = 5;
  c.fn = 5;
  EXPECT_DOUBLE_EQ(c.odst_seconds(1.0), 1.0);
}

TEST(ConfusionTest, SimTimeConstantMatchesPaper) {
  EXPECT_DOUBLE_EQ(kLithoSimSecondsPerClip, 10.0);
}

}  // namespace
}  // namespace hsdl::hotspot

// The int8 accuracy-delta gate (ISSUE: quantized serving must lose less
// than 0.5% hotspot accuracy against the fp32 model it was built from).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hotspot/benchmark_factory.hpp"
#include "hotspot/detector.hpp"

namespace hsdl::hotspot {
namespace {

/// Shared tiny benchmark, built once (labeling is the slow part).
const layout::BenchmarkData& tiny_benchmark() {
  static const layout::BenchmarkData data = [] {
    BenchmarkSpec spec = industry3_spec(0.004);  // ~100 train / 150 test
    return build_benchmark(spec);
  }();
  return data;
}

CnnDetectorConfig fast_cnn_config() {
  CnnDetectorConfig cfg;
  cfg.biased.rounds = 1;
  cfg.biased.initial.max_iters = 500;
  cfg.biased.initial.learning_rate = 8e-3;
  cfg.biased.initial.decay_step = 250;
  cfg.biased.initial.validate_every = 50;
  cfg.biased.initial.patience = 20;
  return cfg;
}

/// One trained + quantized detector shared by the gate tests (training is
/// the slow part; the assertions are all read-only on the model).
CnnDetector& trained_detector() {
  static CnnDetector* det = [] {
    auto* d = new CnnDetector(fast_cnn_config());
    const auto& bench = tiny_benchmark();
    d->train(bench.train);
    // Calibrate activation scales on the tail quarter of the training
    // clips — the stand-in for the paper's held-out validation split.
    const std::size_t n_cal = bench.train.size() / 4;
    d->quantize(std::span<const layout::LabeledClip>(
        bench.train.data() + bench.train.size() - n_cal, n_cal));
    return d;
  }();
  return *det;
}

TEST(QuantAccuracyGateTest, Int8LosesLessThanHalfPercentAccuracy) {
  CnnDetector& det = trained_detector();
  const auto& bench = tiny_benchmark();
  ASSERT_TRUE(det.use_quantized());

  det.set_use_quantized(false);
  const DetectorEval fp32 = det.evaluate(bench.test);
  det.set_use_quantized(true);
  const DetectorEval int8 = det.evaluate(bench.test);

  // The gate: hotspot accuracy (paper Definition 1) may not drop by 0.5%
  // or more when serving switches to the int8 model.
  EXPECT_LT(fp32.confusion.accuracy() - int8.confusion.accuracy(), 0.005)
      << "fp32 accuracy " << fp32.confusion.accuracy() << " vs int8 "
      << int8.confusion.accuracy();
  // False alarms must not explode either (same per-clip tolerance).
  EXPECT_NEAR(static_cast<double>(int8.confusion.false_alarms()),
              static_cast<double>(fp32.confusion.false_alarms()),
              0.005 * static_cast<double>(bench.test.size()) + 1.0);
}

TEST(QuantAccuracyGateTest, Int8ProbabilitiesTrackFp32) {
  CnnDetector& det = trained_detector();
  const auto& bench = tiny_benchmark();
  std::vector<layout::Clip> clips;
  clips.reserve(bench.test.size());
  for (const auto& lc : bench.test) clips.push_back(lc.clip);

  det.set_use_quantized(false);
  const std::vector<double> p_fp32 = det.predict_probabilities(clips);
  det.set_use_quantized(true);
  const std::vector<double> p_int8 = det.predict_probabilities(clips);

  ASSERT_EQ(p_fp32.size(), p_int8.size());
  double max_dev = 0.0;
  for (std::size_t i = 0; i < p_fp32.size(); ++i)
    max_dev = std::max(max_dev, std::abs(p_fp32[i] - p_int8[i]));
  EXPECT_LT(max_dev, 0.08);
}

TEST(QuantAccuracyGateTest, WeightChangesDropTheQuantizedModel) {
  // A stale int8 model serving freshly updated weights would silently
  // answer with the old network; any weight change must invalidate it.
  // Invalidation only depends on the weights changing, not on model
  // quality, so skip the (slow) full training run.
  CnnDetector det(fast_cnn_config());
  const auto& bench = tiny_benchmark();
  det.quantize(std::span<const layout::LabeledClip>(bench.train.data(), 8));
  ASSERT_TRUE(det.use_quantized());
  det.update_online(std::span<const layout::LabeledClip>(
      bench.train.data(), 2));
  EXPECT_FALSE(det.use_quantized());
  EXPECT_EQ(det.quantized_net(), nullptr);
}

}  // namespace
}  // namespace hsdl::hotspot

// Hierarchical scan property tests (DESIGN.md §16): scanning a
// HierSource with a CellScanCache — serial, sharded 1/2/8 ways, or
// killed and resumed through the scan journal — produces a report
// bitwise identical to the flat-expanded scan of the same geometry, on
// generator-built hierarchies with nested and overlapping array
// placements.
#include "hotspot/scanner.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "hotspot/detector.hpp"
#include "hotspot/engine/engine.hpp"
#include "hotspot/scan_cache.hpp"
#include "hotspot/scan_journal.hpp"
#include "layout/gds_stream.hpp"
#include "layout/gdsii.hpp"
#include "layout/layout.hpp"
#include "layout/layout_source.hpp"

namespace hsdl::hotspot {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Rect;

CnnDetectorConfig small_config() {
  CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 8;
  config.feature.nm_per_px = 4.0;  // 1200 nm window -> 300 px raster
  config.cnn.stage1_maps = 4;
  config.cnn.stage2_maps = 4;
  config.cnn.fc_nodes = 8;
  return config;
}

ScanConfig band_per_row_config() {
  ScanConfig config;
  config.window_size = 1200;
  config.stride = 1200;
  config.band_rows = 1;
  return config;
}

/// MACRO spans exactly [0,2400)^2 (2x2 windows at stride 1200) with a
/// nested UNIT array and enough asymmetric local geometry that its four
/// windows score differently.
layout::GdsCell macro_cell() {
  layout::GdsCell macro;
  macro.name = "MACRO";
  const Rect local[] = {
      Rect::from_xywh(0, 0, 180, 90),       Rect::from_xywh(2200, 2200, 200, 200),
      Rect::from_xywh(1300, 300, 400, 90),  Rect::from_xywh(300, 1500, 90, 400),
      Rect::from_xywh(1500, 1700, 300, 90), Rect::from_xywh(700, 200, 90, 300),
  };
  for (const Rect& r : local) {
    macro.boundaries.push_back(Polygon::from_rect(r));
    macro.layers.push_back(1);
  }
  macro.refs.push_back({"UNIT", {100, 700}, 3, 3, 300, 300});
  return macro;
}

layout::GdsCell unit_cell() {
  layout::GdsCell unit;
  unit.name = "UNIT";
  unit.boundaries.push_back(Polygon::from_rect(Rect::from_xywh(0, 0, 180, 90)));
  unit.layers.push_back(1);
  return unit;
}

/// TOP = 2x2 array of MACRO at pitch 2400: a 4800x4800 chip, 16 windows
/// in 4 repeated groups — the cache replays rows 2-3 from rows 0-1.
layout::HierLayout array_chip() {
  layout::GdsLibrary lib;
  layout::GdsCell top;
  top.name = "TOP";
  top.refs.push_back({"MACRO", {0, 0}, 2, 2, 2400, 2400});
  lib.cells = {unit_cell(), macro_cell(), top};
  return layout::hier_from_library(lib);
}

/// Same chip plus placements that overlap the array: a PLUG inside
/// instance (0,0)'s area and a UNIT straddling all four instances.
/// Windows over them get no reuse key — they must still score right.
layout::HierLayout overlapping_chip() {
  layout::GdsLibrary lib;
  layout::GdsCell plug;
  plug.name = "PLUG";
  plug.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 300, 300)));
  plug.layers.push_back(1);
  layout::GdsCell top;
  top.name = "TOP";
  top.refs.push_back({"MACRO", {0, 0}, 2, 2, 2400, 2400});
  top.refs.push_back({"PLUG", {1500, 1500}});
  top.refs.push_back({"UNIT", {2300, 2350}});
  lib.cells = {unit_cell(), macro_cell(), plug, top};
  return layout::hier_from_library(lib);
}

layout::Layout flat_expansion(const layout::HierLayout& hier) {
  return layout::Layout(hier.extent(), hier.flatten(1));
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void expect_same_report(const ScanReport& a, const ScanReport& b) {
  EXPECT_EQ(a.windows_scanned, b.windows_scanned);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].window, b.hits[i].window);
    // Bitwise: cached, sharded and resumed scans must reproduce the
    // flat serial probabilities exactly, not approximately.
    EXPECT_EQ(a.hits[i].probability, b.hits[i].probability);
  }
}

TEST(HierScanTest, CachedHierScanMatchesFlatBitwise) {
  const layout::HierLayout hier = array_chip();
  const layout::Layout flat = flat_expansion(hier);
  ASSERT_EQ(hier.extent(), flat.extent());
  const CnnDetector detector(small_config());
  const ChipScanner scanner(band_per_row_config());

  InferenceEngine flat_engine(detector);
  const ScanReport flat_report = scanner.scan(flat, flat_engine);
  ASSERT_EQ(flat_report.windows_scanned, 16u);
  EXPECT_EQ(flat_report.windows_from_cache, 0u);

  const layout::HierSource source(hier, 1);
  CellScanCache cache;
  InferenceEngine hier_engine(detector);
  const ScanReport hier_report = scanner.scan(source, hier_engine, &cache);
  expect_same_report(flat_report, hier_report);

  // Rows 0-1 score one window per distinct key (2 keys/row) and alias
  // the in-band duplicate in the second instance column; rows 2-3 land
  // in the second instance row and replay from the cache. 4 windows
  // scored, 12 of 16 served by reuse.
  EXPECT_EQ(hier_report.windows_from_cache, 12u);
  EXPECT_EQ(cache.stats().hits, 8u);  // in-band aliases never probe twice
  // Replayed and aliased windows never reach the engine.
  EXPECT_EQ(hier_engine.stats().requests,
            flat_engine.stats().requests - 12u);

  // A rescan with the warm cache replays everything.
  InferenceEngine warm_engine(detector);
  const ScanReport warm = scanner.scan(source, warm_engine, &cache);
  expect_same_report(flat_report, warm);
  EXPECT_EQ(warm.windows_from_cache, 16u);
  EXPECT_EQ(warm_engine.stats().requests, 0u);
}

TEST(HierScanTest, ShardCountNeverChangesTheReport) {
  const layout::HierLayout hier = array_chip();
  const layout::Layout flat = flat_expansion(hier);
  const CnnDetector detector(small_config());
  const ChipScanner scanner(band_per_row_config());

  InferenceEngine flat_engine(detector);
  const ScanReport flat_report = scanner.scan(flat, flat_engine);

  const layout::HierSource source(hier, 1);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    CellScanCache cache;
    const ScanReport sharded =
        scanner.scan_sharded(source, detector, shards, &cache);
    expect_same_report(flat_report, sharded);
  }
}

TEST(HierScanTest, OverlappingAndNestedPlacementsStayBitwise) {
  const layout::HierLayout hier = overlapping_chip();
  const layout::Layout flat = flat_expansion(hier);
  const CnnDetector detector(small_config());
  const ChipScanner scanner(band_per_row_config());

  InferenceEngine flat_engine(detector);
  const ScanReport flat_report = scanner.scan(flat, flat_engine);
  ASSERT_EQ(flat_report.windows_scanned, 16u);

  const layout::HierSource source(hier, 1);
  CellScanCache cache;
  InferenceEngine hier_engine(detector);
  const ScanReport hier_report = scanner.scan(source, hier_engine, &cache);
  expect_same_report(flat_report, hier_report);
  // The PLUG and the straddling UNIT poison some windows' reuse keys —
  // those windows score individually — but not all of them.
  EXPECT_GT(hier_report.windows_from_cache, 0u);
  EXPECT_LT(hier_report.windows_from_cache,
            hier_report.windows_scanned);

  CellScanCache shard_cache;
  expect_same_report(flat_report,
                     scanner.scan_sharded(source, detector, 2, &shard_cache));
}

TEST(HierScanTest, KilledHierScanResumesBitwiseIdentical) {
  const layout::HierLayout hier = array_chip();
  const layout::HierSource source(hier, 1);
  const CnnDetector detector(small_config());
  const ChipScanner scanner(band_per_row_config());
  const std::string path = temp_path("hsdl_hier_scan_resume.journal");
  std::filesystem::remove(path);

  InferenceEngine clean_engine(detector);
  const ScanReport clean = scanner.scan(source, clean_engine);

  {
    fault::Plan plan;
    plan.specs.push_back({"scan.band", fault::Kind::kFail, 1.0, 0.0,
                          /*start_after=*/2, /*max_fires=*/0});
    fault::ScopedPlan armed(std::move(plan));
    InferenceEngine engine(detector);
    CellScanCache cache;
    EXPECT_THROW(scanner.scan_resumable(source, engine, path, &cache),
                 CheckError);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  InferenceEngine resume_engine(detector);
  CellScanCache resume_cache;
  const ScanReport resumed =
      scanner.scan_resumable(source, resume_engine, path, &resume_cache);
  expect_same_report(clean, resumed);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(HierScanTest, JournalFingerprintSeparatesSources) {
  // A journal recorded against the flat expansion must not be resumed
  // by the hierarchical scan (or vice versa): the source fingerprint is
  // part of the journal fingerprint.
  const layout::HierLayout hier = array_chip();
  const layout::Layout flat = flat_expansion(hier);
  const layout::HierSource hier_source(hier, 1);
  const layout::FlatSource flat_source(flat);
  const ScanConfig config = band_per_row_config();
  EXPECT_NE(ScanJournal::fingerprint(config, hier_source.extent(),
                                     hier_source.fingerprint()),
            ScanJournal::fingerprint(config, flat_source.extent(),
                                     flat_source.fingerprint()));
}

TEST(HierScanTest, ShardedScanValidatesShardCount) {
  const layout::HierLayout hier = array_chip();
  const layout::HierSource source(hier, 1);
  const CnnDetector detector(small_config());
  const ChipScanner scanner(band_per_row_config());
  EXPECT_THROW(scanner.scan_sharded(source, detector, 0), CheckError);
}

}  // namespace
}  // namespace hsdl::hotspot

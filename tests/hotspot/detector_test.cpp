#include "hotspot/detector.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "hotspot/benchmark_factory.hpp"

namespace hsdl::hotspot {
namespace {

/// Shared tiny benchmark, built once (labeling is the slow part).
const layout::BenchmarkData& tiny_benchmark() {
  static const layout::BenchmarkData data = [] {
    BenchmarkSpec spec = industry3_spec(0.004);  // ~100 train / 150 test
    return build_benchmark(spec);
  }();
  return data;
}

CnnDetectorConfig fast_cnn_config() {
  CnnDetectorConfig cfg;
  cfg.biased.rounds = 1;
  cfg.biased.initial.max_iters = 500;
  cfg.biased.initial.learning_rate = 8e-3;
  cfg.biased.initial.decay_step = 250;
  cfg.biased.initial.validate_every = 50;
  cfg.biased.initial.patience = 20;
  return cfg;
}

TEST(CnnDetectorTest, NameAndConfigCoupling) {
  CnnDetectorConfig cfg;
  cfg.feature.coeffs = 16;
  cfg.feature.blocks_per_side = 8;
  cfg.cnn.input_channels = 999;  // must be overridden by feature config
  CnnDetector det(cfg);
  EXPECT_EQ(det.name(), "cnn-feature-tensor");
  EXPECT_EQ(det.model().config().input_channels, 16u);
  EXPECT_EQ(det.model().config().input_side, 8u);
}

TEST(CnnDetectorTest, ExtractDatasetShapes) {
  CnnDetector det{CnnDetectorConfig{}};
  const auto& bench = tiny_benchmark();
  auto data = det.extract_dataset(bench.test);
  EXPECT_EQ(data.size(), bench.test.size());
  EXPECT_EQ(data.feature_shape(), (std::vector<std::size_t>{32, 12, 12}));
  EXPECT_EQ(data.count_label(kHotspotIndex), bench.test_hotspots());
}

TEST(CnnDetectorTest, TrainEvaluateBeatsChance) {
  CnnDetector det(fast_cnn_config());
  const auto& bench = tiny_benchmark();
  det.train(bench.train);
  DetectorEval eval = det.evaluate(bench.test);
  EXPECT_EQ(eval.confusion.total(), bench.test.size());
  // Balanced accuracy above coin flip.
  const double hs = eval.confusion.accuracy();
  const double nhs = static_cast<double>(eval.confusion.tn) /
                     static_cast<double>(eval.confusion.fp +
                                         eval.confusion.tn);
  EXPECT_GT(0.5 * (hs + nhs), 0.6);
  EXPECT_GT(eval.eval_seconds, 0.0);
  EXPECT_GE(eval.odst(), 10.0 * eval.confusion.detected());
}

TEST(CnnDetectorTest, PredictMatchesBatchedEvaluate) {
  CnnDetector det(fast_cnn_config());
  const auto& bench = tiny_benchmark();
  det.train(bench.train);
  Confusion loop;
  for (const auto& lc : bench.test)
    loop.add(lc.label == layout::HotspotLabel::kHotspot,
             det.predict(lc.clip));
  DetectorEval batched = det.evaluate(bench.test);
  EXPECT_EQ(loop.tp, batched.confusion.tp);
  EXPECT_EQ(loop.fp, batched.confusion.fp);
}

TEST(CnnDetectorTest, ShiftIncreasesDetections) {
  CnnDetector det(fast_cnn_config());
  const auto& bench = tiny_benchmark();
  det.train(bench.train);
  DetectorEval neutral = det.evaluate(bench.test);
  det.set_shift(0.3);
  DetectorEval shifted = det.evaluate(bench.test);
  EXPECT_GE(shifted.confusion.detected(), neutral.confusion.detected());
  EXPECT_GE(shifted.confusion.accuracy(), neutral.confusion.accuracy());
}

TEST(CnnDetectorTest, TrainRejectsEmpty) {
  CnnDetector det(fast_cnn_config());
  EXPECT_THROW(det.train({}), hsdl::CheckError);
}

TEST(CnnDetectorTest, UnlabeledClipRejected) {
  CnnDetector det{CnnDetectorConfig{}};
  std::vector<layout::LabeledClip> clips(1);
  clips[0].clip.window = geom::Rect::from_xywh(0, 0, 1200, 1200);
  clips[0].label = layout::HotspotLabel::kUnknown;
  EXPECT_THROW(det.extract_dataset(clips), hsdl::CheckError);
}

TEST(AdaBoostDetectorTest, TrainsAndDetects) {
  AdaBoostDensityDetector det;
  const auto& bench = tiny_benchmark();
  det.train(bench.train);
  DetectorEval eval = det.evaluate(bench.test);
  EXPECT_EQ(eval.confusion.total(), bench.test.size());
  EXPECT_GT(eval.confusion.accuracy(), 0.2);  // far above zero recall
  EXPECT_GT(det.ensemble().rounds_trained(), 10u);
}

TEST(SmoothBoostDetectorTest, TrainsAndDetects) {
  SmoothBoostCcsDetector det;
  const auto& bench = tiny_benchmark();
  det.train(bench.train);
  DetectorEval eval = det.evaluate(bench.test);
  EXPECT_EQ(eval.confusion.total(), bench.test.size());
  EXPECT_GT(eval.confusion.accuracy(), 0.2);
}

TEST(CnnDetectorTest, OnlineUpdateImprovesOnNewData) {
  // Train on the benchmark, then stream additional labeled clips through
  // update_online: fitting error on the new stream must not get worse.
  CnnDetector det(fast_cnn_config());
  const auto& bench = tiny_benchmark();
  det.train(bench.train);
  // "New" data: a slice of test clips (unseen during training).
  std::vector<layout::LabeledClip> fresh(bench.test.begin(),
                                         bench.test.begin() + 60);
  Confusion before;
  for (const auto& lc : fresh)
    before.add(lc.label == layout::HotspotLabel::kHotspot,
               det.predict(lc.clip));
  det.update_online(fresh, /*iters_per_clip=*/3);
  Confusion after;
  for (const auto& lc : fresh)
    after.add(lc.label == layout::HotspotLabel::kHotspot,
              det.predict(lc.clip));
  EXPECT_GE(after.tp + after.tn + 3, before.tp + before.tn);
}

TEST(CnnDetectorTest, OnlineUpdateRejectsEmptyStream) {
  CnnDetector det{CnnDetectorConfig{}};
  EXPECT_THROW(det.update_online({}), hsdl::CheckError);
}

TEST(CnnDetectorTest, SaveLoadRoundTripsPredictions) {
  CnnDetector a(fast_cnn_config());
  const auto& bench = tiny_benchmark();
  a.train(bench.train);
  const std::string path = ::testing::TempDir() + "/detector.ckpt";
  a.save(path);
  CnnDetector b(fast_cnn_config());  // fresh random weights
  b.load(path);
  for (std::size_t i = 0; i < bench.test.size(); i += 11)
    EXPECT_EQ(a.predict(bench.test[i].clip), b.predict(bench.test[i].clip));
}

TEST(CnnDetectorTest, LoadRejectsCorruptedBundle) {
  CnnDetector a(fast_cnn_config());
  const std::string path = ::testing::TempDir() + "/detector_corrupt.ckpt";
  a.save(path);
  // Flip one bit in the middle of the weight payload; the checksummed
  // v2 container must reject the bundle instead of loading bad weights.
  std::string data;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    data = os.str();
  }
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x04);
  {
    std::ofstream os(path, std::ios::binary);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  CnnDetector b(fast_cnn_config());
  EXPECT_THROW(b.load(path), hsdl::CheckError);
  std::remove(path.c_str());
}

TEST(CnnDetectorTest, LoadRejectsMismatchedArchitecture) {
  CnnDetector a(fast_cnn_config());
  const std::string path = ::testing::TempDir() + "/detector_arch.ckpt";
  a.save(path);
  CnnDetectorConfig other = fast_cnn_config();
  other.feature.coeffs = 16;  // different feature tensor
  CnnDetector b(other);
  EXPECT_THROW(b.load(path), hsdl::CheckError);
}

TEST(CnnDetectorTest, AdamOptimizerAlsoTrains) {
  CnnDetectorConfig cfg = fast_cnn_config();
  cfg.biased.initial.optimizer = OptimizerKind::kAdam;
  cfg.biased.initial.learning_rate = 1e-3;  // Adam wants a smaller lr
  CnnDetector det(cfg);
  const auto& bench = tiny_benchmark();
  det.train(bench.train);
  DetectorEval eval = det.evaluate(bench.test);
  const double hs = eval.confusion.accuracy();
  const double nhs =
      static_cast<double>(eval.confusion.tn) /
      static_cast<double>(eval.confusion.fp + eval.confusion.tn);
  EXPECT_GT(0.5 * (hs + nhs), 0.55);
}

TEST(DetectorPolymorphismTest, BaseEvaluateWorksThroughInterface) {
  AdaBoostDensityDetector ada;
  const auto& bench = tiny_benchmark();
  Detector& det = ada;
  det.train(bench.train);
  DetectorEval eval = det.evaluate(bench.test);
  EXPECT_EQ(eval.confusion.total(), bench.test.size());
}

}  // namespace
}  // namespace hsdl::hotspot

#include "hotspot/cnn.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::hotspot {
namespace {

TEST(HotspotCnnTest, PaperTable1Shapes) {
  // With the paper's defaults the realized per-layer output shapes must
  // match Table 1 exactly.
  HotspotCnn model;  // k=32, n=12, maps 16/32, fc 250
  auto summary = model.net().summary({1, 32, 12, 12});
  // conv1-1 .. fc2 with interleaved activations:
  // conv(12x12x16) relu conv(12x12x16) relu pool(6x6x16)
  // conv(6x6x32) relu conv(6x6x32) relu pool(3x3x32)
  // flatten(288) fc(250) relu dropout fc(2)
  ASSERT_EQ(summary.size(), 15u);
  using Shape = std::vector<std::size_t>;
  EXPECT_EQ(summary[0].second, (Shape{1, 16, 12, 12}));  // conv1-1
  EXPECT_EQ(summary[2].second, (Shape{1, 16, 12, 12}));  // conv1-2
  EXPECT_EQ(summary[4].second, (Shape{1, 16, 6, 6}));    // maxpooling1
  EXPECT_EQ(summary[5].second, (Shape{1, 32, 6, 6}));    // conv2-1
  EXPECT_EQ(summary[7].second, (Shape{1, 32, 6, 6}));    // conv2-2
  EXPECT_EQ(summary[9].second, (Shape{1, 32, 3, 3}));    // maxpooling2
  EXPECT_EQ(summary[10].second, (Shape{1, 288}));        // flatten
  EXPECT_EQ(summary[11].second, (Shape{1, 250}));        // fc1
  EXPECT_EQ(summary[14].second, (Shape{1, 2}));          // fc2
}

TEST(HotspotCnnTest, InputShapeFromConfig) {
  HotspotCnnConfig cfg;
  cfg.input_channels = 8;
  cfg.input_side = 8;
  HotspotCnn model(cfg);
  EXPECT_EQ(model.input_shape(), (std::vector<std::size_t>{8, 8, 8}));
}

TEST(HotspotCnnTest, ProbabilitiesAreDistribution) {
  HotspotCnnConfig cfg;
  cfg.input_channels = 4;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 8;
  cfg.fc_nodes = 16;
  HotspotCnn model(cfg);
  nn::Tensor x({3, 4, 4, 4}, 0.3f);
  nn::Tensor p = model.probabilities(x);
  EXPECT_EQ(p.shape(), (std::vector<std::size_t>{3, 2}));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(p.at(i, 0) + p.at(i, 1), 1.0f, 1e-5f);
    EXPECT_GE(p.at(i, 0), 0.0f);
    EXPECT_GE(p.at(i, 1), 0.0f);
  }
}

TEST(HotspotCnnTest, InferenceDeterministic) {
  // Dropout must be inactive outside training.
  HotspotCnnConfig cfg;
  cfg.input_channels = 2;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 4;
  cfg.fc_nodes = 8;
  HotspotCnn model(cfg);
  nn::Tensor x({1, 2, 4, 4}, 0.5f);
  nn::Tensor a = model.probabilities(x);
  nn::Tensor b = model.probabilities(x);
  EXPECT_FLOAT_EQ(a.at(0, 0), b.at(0, 0));
}

TEST(HotspotCnnTest, TrainingForwardIsStochastic) {
  // With 50 % dropout, two training-mode forwards differ (same input).
  HotspotCnnConfig cfg;
  cfg.input_channels = 2;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 4;
  cfg.fc_nodes = 32;
  HotspotCnn model(cfg);
  nn::Tensor x({1, 2, 4, 4}, 0.5f);
  nn::Tensor a = model.logits(x, true);
  nn::Tensor b = model.logits(x, true);
  EXPECT_NE(a.at(0, 0), b.at(0, 0));
}

TEST(HotspotCnnTest, SeedReproducesWeights) {
  HotspotCnnConfig cfg;
  cfg.input_channels = 2;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 4;
  cfg.fc_nodes = 8;
  cfg.seed = 99;
  HotspotCnn a(cfg), b(cfg);
  nn::Tensor x({1, 2, 4, 4}, 1.0f);
  EXPECT_FLOAT_EQ(a.probabilities(x).at(0, 0),
                  b.probabilities(x).at(0, 0));
  cfg.seed = 100;
  HotspotCnn c(cfg);
  EXPECT_NE(a.probabilities(x).at(0, 0), c.probabilities(x).at(0, 0));
}

TEST(HotspotCnnTest, ParamCountMatchesArchitecture) {
  HotspotCnn model;  // paper config
  // conv1-1: 16*(32*9)+16; conv1-2: 16*(16*9)+16;
  // conv2-1: 32*(16*9)+32; conv2-2: 32*(32*9)+32;
  // fc1: 250*288+250; fc2: 2*250+2.
  const std::size_t expected = (16 * 32 * 9 + 16) + (16 * 16 * 9 + 16) +
                               (32 * 16 * 9 + 32) + (32 * 32 * 9 + 32) +
                               (250 * 288 + 250) + (2 * 250 + 2);
  EXPECT_EQ(model.net().param_count(), expected);
}

TEST(HotspotCnnTest, RejectsIndivisibleInputSide) {
  HotspotCnnConfig cfg;
  cfg.input_side = 10;  // not divisible by 4
  EXPECT_THROW(HotspotCnn{cfg}, hsdl::CheckError);
}

TEST(HotspotCnnTest, ClassIndexConvention) {
  // Paper: y = [p(non-hotspot), p(hotspot)].
  EXPECT_EQ(kNonHotspotIndex, 0u);
  EXPECT_EQ(kHotspotIndex, 1u);
}

}  // namespace
}  // namespace hsdl::hotspot

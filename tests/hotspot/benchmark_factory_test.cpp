#include "hotspot/benchmark_factory.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "litho/labeler.hpp"

namespace hsdl::hotspot {
namespace {

TEST(BenchmarkSpecTest, PaperCountsAtFullScale) {
  BenchmarkSpec s = iccad_spec(1.0);
  EXPECT_EQ(s.name, "ICCAD");
  EXPECT_EQ(s.train_hotspots, 1204u);
  EXPECT_EQ(s.train_non_hotspots, 17096u);
  EXPECT_EQ(s.test_hotspots, 2524u);
  EXPECT_EQ(s.test_non_hotspots, 13503u);
}

TEST(BenchmarkSpecTest, IndustryCountsAtFullScale) {
  BenchmarkSpec s1 = industry1_spec(1.0);
  EXPECT_EQ(s1.train_hotspots, 34281u);
  EXPECT_EQ(s1.train_non_hotspots, 15635u);
  BenchmarkSpec s3 = industry3_spec(1.0);
  EXPECT_EQ(s3.test_hotspots, 12228u);
  EXPECT_EQ(s3.test_non_hotspots, 24817u);
}

TEST(BenchmarkSpecTest, ScaleShrinksProportionally) {
  BenchmarkSpec s = iccad_spec(0.1);
  EXPECT_EQ(s.train_hotspots, 120u);
  EXPECT_EQ(s.train_non_hotspots, 1709u);
}

TEST(BenchmarkSpecTest, CountsNeverBelowFloor) {
  BenchmarkSpec s = iccad_spec(0.0001);
  EXPECT_GE(s.train_hotspots, 8u);
  EXPECT_GE(s.test_hotspots, 8u);
}

TEST(BenchmarkSpecTest, AllSpecsOrdered) {
  auto specs = all_specs(0.1);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "ICCAD");
  EXPECT_EQ(specs[1].name, "Industry1");
  EXPECT_EQ(specs[2].name, "Industry2");
  EXPECT_EQ(specs[3].name, "Industry3");
}

TEST(BenchmarkSpecTest, HotspotRichTestcaseHasHigherStress) {
  // Industry1's train set is hotspot-majority; its generator must be the
  // most aggressive.
  EXPECT_GT(industry1_spec(1.0).generator.stress,
            iccad_spec(1.0).generator.stress);
}

TEST(BuildBenchmarkTest, MeetsQuotasExactly) {
  BenchmarkSpec spec = iccad_spec(0.008);  // tiny but above the floor
  layout::BenchmarkData data = build_benchmark(spec);
  EXPECT_EQ(data.name, "ICCAD");
  EXPECT_EQ(data.train_hotspots(), spec.train_hotspots);
  EXPECT_EQ(data.train_non_hotspots(), spec.train_non_hotspots);
  EXPECT_EQ(data.test_hotspots(), spec.test_hotspots);
  EXPECT_EQ(data.test_non_hotspots(), spec.test_non_hotspots);
}

TEST(BuildBenchmarkTest, LabelsAreResolvedAndCorrect) {
  BenchmarkSpec spec = iccad_spec(0.008);
  layout::BenchmarkData data = build_benchmark(spec);
  litho::HotspotLabeler labeler(spec.litho);
  // Spot-check: stored labels must match fresh labeler output.
  for (std::size_t i = 0; i < data.train.size(); i += 37) {
    EXPECT_EQ(data.train[i].label, labeler.label(data.train[i].clip));
    EXPECT_NE(data.train[i].label, layout::HotspotLabel::kUnknown);
  }
}

TEST(BuildBenchmarkTest, DeterministicBySeed) {
  BenchmarkSpec spec = iccad_spec(0.008);
  layout::BenchmarkData a = build_benchmark(spec);
  layout::BenchmarkData b = build_benchmark(spec);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); i += 17)
    EXPECT_EQ(a.train[i].clip.shapes, b.train[i].clip.shapes);
}

TEST(BuildBenchmarkTest, DifferentSeedsDiffer) {
  BenchmarkSpec spec = iccad_spec(0.008);
  layout::BenchmarkData a = build_benchmark(spec);
  spec.seed ^= 0xFFFF;
  layout::BenchmarkData c = build_benchmark(spec);
  EXPECT_NE(a.train[0].clip.shapes, c.train[0].clip.shapes);
}

TEST(BuildBenchmarkTest, ClipsHaveExpectedWindow) {
  BenchmarkSpec spec = iccad_spec(0.008);
  layout::BenchmarkData data = build_benchmark(spec);
  for (const auto& lc : data.train) {
    EXPECT_EQ(lc.clip.window.width(), spec.generator.clip_size);
    EXPECT_EQ(lc.clip.window.height(), spec.generator.clip_size);
  }
}

TEST(BuildBenchmarkTest, EmptyNameRejected) {
  BenchmarkSpec spec = iccad_spec(0.008);
  spec.name.clear();
  EXPECT_THROW(build_benchmark(spec), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::hotspot

#include "hotspot/biased.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::hotspot {
namespace {

HotspotCnnConfig tiny_cnn() {
  HotspotCnnConfig cfg;
  cfg.input_channels = 2;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 8;
  cfg.fc_nodes = 16;
  cfg.dropout = 0.0;
  return cfg;
}

/// Overlapping classes: hotspot recall below 1 at convergence, leaving
/// room for biased learning to act.
nn::ClassificationDataset overlapping_set(std::size_t n_per_class,
                                          std::uint64_t seed) {
  Rng rng(seed);
  nn::ClassificationDataset d({2, 4, 4});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (std::size_t label = 0; label < 2; ++label) {
      std::vector<float> x(32);
      for (float& v : x)
        v = static_cast<float>(rng.normal(label == 1 ? 0.4 : 0.0, 0.3));
      d.add(std::move(x), label);
    }
  }
  return d;
}

BiasedLearningConfig fast_biased(std::size_t rounds) {
  BiasedLearningConfig cfg;
  cfg.rounds = rounds;
  cfg.delta = 0.1;
  cfg.initial.learning_rate = 5e-3;
  cfg.initial.max_iters = 250;
  cfg.initial.decay_step = 150;
  cfg.initial.validate_every = 50;
  cfg.initial.patience = 20;
  cfg.initial.batch = 16;
  cfg.finetune = cfg.initial;
  cfg.finetune.max_iters = 100;
  cfg.finetune.learning_rate = 2e-3;
  return cfg;
}

TEST(BiasedLearnerTest, ConfigValidation) {
  BiasedLearningConfig bad = fast_biased(2);
  bad.rounds = 0;
  EXPECT_THROW(BiasedLearner{bad}, hsdl::CheckError);
  // eps schedule must stay below 0.5 (Theorem 1's validity bound).
  bad = fast_biased(2);
  bad.epsilon0 = 0.3;
  bad.delta = 0.2;
  bad.rounds = 3;  // 0.3, 0.5, 0.7 — crosses the line
  EXPECT_THROW(BiasedLearner{bad}, hsdl::CheckError);
}

TEST(BiasedLearnerTest, RunsRequestedRounds) {
  HotspotCnn model(tiny_cnn());
  auto train = overlapping_set(30, 1);
  auto val = overlapping_set(10, 2);
  BiasedLearner learner(fast_biased(3));
  Rng rng(3);
  BiasedLearningResult result = learner.train(model, train, val, rng);
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_DOUBLE_EQ(result.rounds[0].epsilon, 0.0);
  EXPECT_DOUBLE_EQ(result.rounds[1].epsilon, 0.1);
  EXPECT_DOUBLE_EQ(result.rounds[2].epsilon, 0.2);
}

TEST(BiasedLearnerTest, Theorem1AccuracyDoesNotDegrade) {
  // The paper's Theorem 1: fine-tuning with eps > 0 cannot reduce hotspot
  // detection accuracy. Checked on the validation set across rounds with
  // a small slack for finite-sample noise.
  HotspotCnn model(tiny_cnn());
  auto train = overlapping_set(40, 4);
  auto val = overlapping_set(20, 5);
  BiasedLearner learner(fast_biased(4));
  Rng rng(6);
  BiasedLearningResult result = learner.train(model, train, val, rng);
  const double first = result.rounds.front().val_confusion.accuracy();
  const double last = result.rounds.back().val_confusion.accuracy();
  EXPECT_GE(last, first - 0.05);
}

TEST(BiasedLearnerTest, BiasRaisesHotspotPredictionRate) {
  // Raising eps systematically shifts predictions toward hotspot: the
  // number of detected instances must not go down across rounds.
  HotspotCnn model(tiny_cnn());
  auto train = overlapping_set(40, 7);
  auto val = overlapping_set(20, 8);
  BiasedLearner learner(fast_biased(4));
  Rng rng(9);
  BiasedLearningResult result = learner.train(model, train, val, rng);
  EXPECT_GE(result.rounds.back().val_confusion.detected() + 2,
            result.rounds.front().val_confusion.detected());
}

TEST(BiasedLearnerTest, FinalValAccuracyAccessor) {
  BiasedLearningResult r;
  EXPECT_DOUBLE_EQ(r.final_val_accuracy(), 0.0);
  BiasedRound round;
  round.val_confusion.tp = 3;
  round.val_confusion.fn = 1;
  r.rounds.push_back(round);
  EXPECT_DOUBLE_EQ(r.final_val_accuracy(), 0.75);
}

TEST(BiasedLearnerTest, SingleRoundEqualsPlainMgd) {
  auto train = overlapping_set(20, 10);
  auto val = overlapping_set(10, 11);

  HotspotCnn a(tiny_cnn());
  BiasedLearner learner(fast_biased(1));
  Rng rng_a(12);
  auto res = learner.train(a, train, val, rng_a);

  HotspotCnn b(tiny_cnn());
  MgdTrainer plain(fast_biased(1).initial);
  Rng rng_b(12);
  plain.train(b, train, val, rng_b);

  // Same seeds, same schedule => identical models.
  Confusion ca = evaluate(a, val);
  Confusion cb = evaluate(b, val);
  EXPECT_EQ(ca.tp, cb.tp);
  EXPECT_EQ(ca.fp, cb.fp);
  EXPECT_EQ(res.rounds.size(), 1u);
}

}  // namespace
}  // namespace hsdl::hotspot

// CellScanCache (DESIGN.md §16): hit/miss accounting, idempotent
// inserts, the capacity bound, and concurrent shard access.
#include "hotspot/scan_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/check.hpp"

namespace hsdl::hotspot {
namespace {

layout::WindowKey key(std::uint64_t hash, geom::Coord x, geom::Coord y) {
  layout::WindowKey k;
  k.cell_hash = hash;
  k.offset = {x, y};
  return k;
}

TEST(CellScanCacheTest, LookupInsertAndStats) {
  CellScanCache cache;
  EXPECT_EQ(cache.lookup(key(1, 0, 0)), std::nullopt);
  cache.insert(key(1, 0, 0), 0.75);
  const auto hit = cache.lookup(key(1, 0, 0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.75);
  EXPECT_EQ(cache.lookup(key(1, 10, 0)), std::nullopt);
  EXPECT_EQ(cache.lookup(key(2, 0, 0)), std::nullopt);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.hit_rate(), 0.25);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CellScanCacheTest, InsertIsIdempotent) {
  CellScanCache cache;
  cache.insert(key(7, 3, 3), 0.5);
  // The WindowKey contract makes any second value for the key bitwise
  // equal; a buggy caller's differing value must not clobber the first.
  cache.insert(key(7, 3, 3), 0.9);
  EXPECT_EQ(*cache.lookup(key(7, 3, 3)), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CellScanCacheTest, EmptyWindowSentinelIsItsOwnSlot) {
  CellScanCache cache;
  layout::WindowKey empty;
  empty.empty_window = true;
  cache.insert(empty, 0.01);
  EXPECT_TRUE(cache.lookup(empty).has_value());
  // The all-zero non-sentinel key is a different slot.
  EXPECT_EQ(cache.lookup(key(0, 0, 0)), std::nullopt);
}

TEST(CellScanCacheTest, CapacityBoundRejectsNewKeys) {
  CellScanCache cache(/*max_entries=*/2);
  cache.insert(key(1, 0, 0), 0.1);
  cache.insert(key(2, 0, 0), 0.2);
  cache.insert(key(3, 0, 0), 0.3);  // full: dropped, counted
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.lookup(key(3, 0, 0)), std::nullopt);
  // Re-inserting an existing key is never a rejection.
  cache.insert(key(1, 0, 0), 0.1);
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(CellScanCacheTest, NonPositiveCapacityRejected) {
  EXPECT_THROW(CellScanCache(0), CheckError);
}

TEST(CellScanCacheTest, ClearZeroesEverything) {
  CellScanCache cache;
  cache.insert(key(1, 0, 0), 0.5);
  (void)cache.lookup(key(1, 0, 0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.lookup(key(1, 0, 0)), std::nullopt);
}

TEST(CellScanCacheTest, ConcurrentShardsStayConsistent) {
  CellScanCache cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&cache] {
      for (int i = 0; i < kKeys; ++i) {
        const layout::WindowKey k = key(42, i, 0);
        if (const auto got = cache.lookup(k)) {
          EXPECT_EQ(*got, static_cast<double>(i));
        } else {
          cache.insert(k, static_cast<double>(i));
        }
      }
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i)
    EXPECT_EQ(*cache.lookup(key(42, i, 0)), static_cast<double>(i));
}

}  // namespace
}  // namespace hsdl::hotspot

// InferenceEngine unit tests: batching policy (flush on full batch, on
// timeout, on shutdown drain), config validation, the zero-steady-state
// allocation property of the engine's workspace arena, and bitwise
// equivalence with the serial per-clip inference path.
#include "hotspot/engine/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "hotspot/detector.hpp"
#include "hotspot/scanner.hpp"
#include "layout/generator.hpp"

namespace hsdl::hotspot {
namespace {

CnnDetectorConfig small_config() {
  CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 8;
  config.feature.nm_per_px = 4.0;  // 1200 nm window -> 300 px raster
  config.cnn.stage1_maps = 4;
  config.cnn.stage2_maps = 4;
  config.cnn.fc_nodes = 8;
  return config;
}

std::vector<layout::Clip> make_clips(std::size_t n, std::uint64_t seed) {
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.4;
  layout::ClipGenerator gen(gen_cfg, seed);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < n; ++i)
    clips.push_back(gen.generate().normalized());
  return clips;
}

/// Tests that assert queued-pipeline behavior (flush counters, drain
/// interleavings) must not collapse to the inline path when the host —
/// like one-core CI — leaves the pool with a single worker.
EngineConfig queued_config() {
  EngineConfig config;
  config.inline_when_serial = false;
  return config;
}

/// Pins the global pool to `n` threads for one test, restoring on exit.
struct ThreadCountGuard {
  explicit ThreadCountGuard(std::size_t n) : saved(num_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(saved); }
  std::size_t saved;
};

TEST(EngineConfigTest, RejectsNonsense) {
  EngineConfig zero_batch;
  zero_batch.max_batch = 0;
  EXPECT_THROW(zero_batch.validate(), CheckError);

  EngineConfig negative_wait;
  negative_wait.max_wait_ms = -1.0;
  EXPECT_THROW(negative_wait.validate(), CheckError);

  EngineConfig tiny_queue;
  tiny_queue.max_batch = 64;
  tiny_queue.queue_capacity = 8;
  EXPECT_THROW(tiny_queue.validate(), CheckError);

  EXPECT_NO_THROW(EngineConfig{}.validate());
}

TEST(EngineConfigTest, ConstructorValidates) {
  const CnnDetector detector(small_config());
  EngineConfig config;
  config.max_batch = 0;
  EXPECT_THROW(InferenceEngine(detector, config), CheckError);
}

TEST(EngineTest, PartialBatchFlushesOnTimeout) {
  const CnnDetector detector(small_config());
  EngineConfig config = queued_config();
  config.max_batch = 8;
  config.max_wait_ms = 1.0;
  InferenceEngine engine(detector, config);

  const std::vector<layout::Clip> clips = make_clips(3, 7);
  const std::vector<double> probs = engine.score(clips);
  ASSERT_EQ(probs.size(), clips.size());
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.batches, 1u);
  // 3 < max_batch, so no batch can have flushed full; the engine stays
  // live after scoring, so the flush must have been timeout-driven.
  EXPECT_EQ(stats.flush_full, 0u);
  EXPECT_GE(stats.flush_timeout, 1u);
}

TEST(EngineTest, FullBatchFlushesWithoutWaiting) {
  const CnnDetector detector(small_config());
  EngineConfig config = queued_config();
  config.max_batch = 4;
  config.max_wait_ms = 60000.0;  // a timeout flush would hang the test
  InferenceEngine engine(detector, config);

  const std::vector<layout::Clip> clips = make_clips(4, 11);
  const std::vector<double> probs = engine.score(clips);
  ASSERT_EQ(probs.size(), 4u);
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.flush_full + stats.flush_drain, 1u);
}

TEST(EngineTest, ShutdownDrainsOutstandingRequests) {
  const CnnDetector detector(small_config());
  EngineConfig config = queued_config();
  config.max_batch = 64;
  config.max_wait_ms = 60000.0;  // only shutdown can flush these
  InferenceEngine engine(detector, config);

  const std::vector<layout::Clip> clips = make_clips(5, 13);
  std::vector<double> probs;
  std::thread producer(
      [&] { probs = engine.score(clips); });
  // Wait until every request is queued, then shut down: the drain path
  // must still deliver real results to the blocked producer.
  while (engine.stats().requests < clips.size()) std::this_thread::yield();
  engine.shutdown();
  producer.join();

  ASSERT_EQ(probs.size(), clips.size());
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, clips.size());
  EXPECT_GE(stats.flush_drain + stats.flush_timeout + stats.flush_full, 1u);
}

TEST(EngineTest, ScoreAfterShutdownThrows) {
  const CnnDetector detector(small_config());
  InferenceEngine engine(detector);
  engine.shutdown();
  const std::vector<layout::Clip> clips = make_clips(1, 17);
  EXPECT_THROW(engine.score(clips), CheckError);
}

TEST(EngineTest, MatchesSerialPerClipPathBitwise) {
  const CnnDetector detector(small_config());
  const std::vector<layout::Clip> clips = make_clips(9, 19);

  std::vector<double> reference;
  for (const layout::Clip& clip : clips)
    reference.push_back(detector.predict_probability(clip));

  EngineConfig config = queued_config();
  config.max_batch = 4;  // forces 9 clips across multiple batches
  InferenceEngine engine(detector, config);
  const std::vector<double> probs = engine.score(clips);
  ASSERT_EQ(probs.size(), reference.size());
  for (std::size_t i = 0; i < probs.size(); ++i)
    EXPECT_EQ(probs[i], reference[i]) << "clip " << i;  // bitwise
}

TEST(EngineTest, ArenaAllocationsPlateauAcrossRepeatedBatches) {
  const CnnDetector detector(small_config());
  EngineConfig config = queued_config();
  config.max_batch = 4;
  config.max_wait_ms = 1000.0;  // partial batches wait for the full 4
  InferenceEngine engine(detector, config);

  // Warmup rounds grow the arena to the batch-of-4 high-water mark.
  const std::vector<layout::Clip> clips = make_clips(4, 23);
  for (int round = 0; round < 5; ++round) engine.score(clips);
  const EngineStats warm = engine.stats();
  EXPECT_GT(warm.arena_bytes_reserved, 0u);
  for (int round = 0; round < 3; ++round) engine.score(clips);
  const EngineStats steady = engine.stats();
  // Same-shaped batches after warmup are served entirely from the pool.
  EXPECT_EQ(steady.arena_allocations, warm.arena_allocations);
  EXPECT_GT(steady.arena_reuses, warm.arena_reuses);
  EXPECT_EQ(steady.arena_bytes_reserved, warm.arena_bytes_reserved);
}

TEST(EngineTest, ScoreLabeledMatchesScore) {
  const CnnDetector detector(small_config());
  const std::vector<layout::Clip> clips = make_clips(5, 29);
  std::vector<layout::LabeledClip> labeled;
  for (const layout::Clip& c : clips)
    labeled.push_back({c, layout::HotspotLabel::kHotspot});

  InferenceEngine engine(detector);
  const std::vector<double> direct = engine.score(clips);
  const std::vector<double> via_labeled = engine.score_labeled(labeled);
  ASSERT_EQ(direct.size(), via_labeled.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(direct[i], via_labeled[i]);
}

TEST(EngineTest, ConcurrentProducersAllComplete) {
  const CnnDetector detector(small_config());
  EngineConfig config = queued_config();
  config.max_batch = 8;
  config.max_wait_ms = 1.0;
  InferenceEngine engine(detector, config);

  constexpr std::size_t kProducers = 3;
  std::vector<std::vector<layout::Clip>> inputs;
  std::vector<std::vector<double>> outputs(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p)
    inputs.push_back(make_clips(6, 31 + p));

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p)
    producers.emplace_back(
        [&, p] { outputs[p] = engine.score(inputs[p]); });
  for (std::thread& t : producers) t.join();

  for (std::size_t p = 0; p < kProducers; ++p) {
    ASSERT_EQ(outputs[p].size(), inputs[p].size());
    for (std::size_t i = 0; i < outputs[p].size(); ++i)
      EXPECT_EQ(outputs[p][i],
                detector.predict_probability(inputs[p][i]))
          << "producer " << p << " clip " << i;
  }
  EXPECT_EQ(engine.stats().requests, kProducers * 6u);
}

TEST(EngineTest, SlowProducerTimeoutFlushFiresExactlyOnce) {
  const CnnDetector detector(small_config());
  EngineConfig config = queued_config();
  config.max_batch = 8;
  config.max_wait_ms = 400.0;
  InferenceEngine engine(detector, config);

  // A slow producer: the second submission lands well inside the first
  // request's wait window. The flush deadline is anchored to the oldest
  // queued request's enqueue time, so the late arrival must neither
  // restart the clock nor split the batch — exactly one timeout flush
  // covers both submissions. (This pinned a real bug: the batcher used
  // to anchor the deadline to its own wake-up time, so requests could
  // wait arbitrarily longer than max_wait_ms.)
  const std::vector<layout::Clip> first = make_clips(2, 37);
  const std::vector<layout::Clip> second = make_clips(1, 41);
  std::vector<double> first_probs, second_probs;
  std::thread early([&] { first_probs = engine.score(first); });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::thread late([&] { second_probs = engine.score(second); });
  early.join();
  late.join();

  ASSERT_EQ(first_probs.size(), 2u);
  ASSERT_EQ(second_probs.size(), 1u);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.flush_timeout, 1u);
  EXPECT_EQ(stats.flush_full, 0u);
  EXPECT_EQ(stats.flush_drain, 0u);
}

TEST(EngineTest, SingleWorkerCollapsesToInlinePath) {
  ThreadCountGuard guard(1);
  const CnnDetector detector(small_config());
  const std::vector<layout::Clip> clips = make_clips(9, 43);

  std::vector<double> reference;
  for (const layout::Clip& clip : clips)
    reference.push_back(detector.predict_probability(clip));

  EngineConfig config;  // inline_when_serial defaults on
  config.max_batch = 4;  // 9 clips -> 3 inline batches
  InferenceEngine engine(detector, config);
  const std::vector<double> probs = engine.score(clips);
  ASSERT_EQ(probs.size(), reference.size());
  for (std::size_t i = 0; i < probs.size(); ++i)
    EXPECT_EQ(probs[i], reference[i]) << "clip " << i;  // bitwise

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, clips.size());
  EXPECT_EQ(stats.inline_batches, 3u);
  EXPECT_EQ(stats.batches, 3u);
  // No queue, no batcher: the queued flush reasons never fire.
  EXPECT_EQ(stats.flush_full + stats.flush_timeout + stats.flush_drain, 0u);
}

TEST(EngineTest, InlinePathServesConcurrentCallersAndLabeledClips) {
  ThreadCountGuard guard(1);
  const CnnDetector detector(small_config());
  InferenceEngine engine(detector);

  const std::vector<layout::Clip> clips = make_clips(5, 47);
  std::vector<layout::LabeledClip> labeled;
  for (const layout::Clip& c : clips)
    labeled.push_back({c, layout::HotspotLabel::kNonHotspot});

  std::vector<double> direct, via_labeled;
  std::thread a([&] { direct = engine.score(clips); });
  std::thread b([&] { via_labeled = engine.score_labeled(labeled); });
  a.join();
  b.join();

  ASSERT_EQ(direct.size(), via_labeled.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(direct[i], via_labeled[i]);
  EXPECT_EQ(engine.stats().requests, 2 * clips.size());
  EXPECT_GE(engine.stats().inline_batches, 2u);
}

TEST(DetectorConfigTest, ValidateRejectsNonsense) {
  CnnDetectorConfig bad = small_config();
  bad.feature.coeffs = 0;
  EXPECT_THROW(bad.validate(), CheckError);

  bad = small_config();
  bad.feature.blocks_per_side = 0;
  EXPECT_THROW(bad.validate(), CheckError);

  bad = small_config();
  bad.feature.nm_per_px = -1.0;
  EXPECT_THROW(bad.validate(), CheckError);

  bad = small_config();
  bad.validation_fraction = 1.5;
  EXPECT_THROW(bad.validate(), CheckError);

  bad = small_config();
  bad.shift = 0.75;
  EXPECT_THROW(bad.validate(), CheckError);

  EXPECT_NO_THROW(small_config().validate());
  EXPECT_THROW(CnnDetector{bad}, CheckError);
}

TEST(ScanConfigTest, ValidateForRejectsIncompatibleWindow) {
  const CnnDetector detector(small_config());  // 4 nm/px, 12 blocks
  ScanConfig incompatible;
  incompatible.window_size = 1000;  // 250 px, not divisible by 12
  incompatible.stride = 1000;
  EXPECT_THROW(incompatible.validate_for(detector), CheckError);

  ScanConfig fractional;
  fractional.window_size = 1202;  // 300.5 px: not an integer raster
  fractional.stride = 1202;
  EXPECT_THROW(fractional.validate_for(detector), CheckError);

  ScanConfig good;  // 1200 nm -> 300 px, 300 % 12 == 0
  EXPECT_NO_THROW(good.validate_for(detector));
}

}  // namespace
}  // namespace hsdl::hotspot

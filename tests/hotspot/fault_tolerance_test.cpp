// Fault-injection harness for the crash-safe training stack.
//
// Exercises the three tentpole guarantees end to end:
//  - kill-and-resume: training aborted at arbitrary iterations via the
//    kill-point hook resumes from the TrainState checkpoint to final
//    weights, history and results bitwise identical to an uninterrupted
//    baseline — for plain MGD and for the whole biased-learning chain;
//  - divergence watchdog: injected NaN losses/gradients roll back to the
//    last good state with LR backoff, never reach the stored weights or
//    any checkpoint, and exhaust into a CheckError diagnostic;
//  - corruption rejection: every bit flip, truncation or trailing byte
//    of a TrainState file is rejected with a CheckError-family error,
//    never accepted and never a foreign exception.
#include "hotspot/train_state.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "hotspot/biased.hpp"
#include "hotspot/trainer.hpp"
#include "nn/serialize.hpp"

namespace hsdl::hotspot {
namespace {

/// Thrown by the kill-point hook to simulate a crash; deliberately not a
/// CheckError so it cannot be mistaken for a library diagnostic.
struct KillSignal {};

HotspotCnnConfig tiny_cnn() {
  HotspotCnnConfig cfg;
  cfg.input_channels = 2;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 8;
  cfg.fc_nodes = 16;
  cfg.dropout = 0.0;
  return cfg;
}

nn::ClassificationDataset separable_set(std::size_t n_per_class,
                                        std::uint64_t seed) {
  Rng rng(seed);
  nn::ClassificationDataset d({2, 4, 4});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (std::size_t label = 0; label < 2; ++label) {
      std::vector<float> x(32);
      for (float& v : x)
        v = static_cast<float>(rng.normal(label == 1 ? 0.8 : 0.0, 0.15));
      d.add(std::move(x), label);
    }
  }
  return d;
}

/// Short schedule that never early-stops (patience > possible stale
/// count), so iteration counts are fixed and runs compare exactly.
MgdConfig fast_mgd() {
  MgdConfig cfg;
  cfg.learning_rate = 5e-3;
  cfg.max_iters = 60;
  cfg.decay_step = 25;
  cfg.validate_every = 15;
  cfg.patience = 20;
  cfg.batch = 16;
  cfg.checkpoint_every = 10;
  return cfg;
}

BiasedLearningConfig fast_biased() {
  BiasedLearningConfig cfg;
  cfg.rounds = 3;
  cfg.delta = 0.1;
  cfg.initial.learning_rate = 5e-3;
  cfg.initial.max_iters = 80;
  cfg.initial.decay_step = 40;
  cfg.initial.validate_every = 20;
  cfg.initial.patience = 20;
  cfg.initial.batch = 16;
  cfg.finetune = cfg.initial;
  cfg.finetune.max_iters = 40;
  cfg.finetune.learning_rate = 2e-3;
  cfg.checkpoint_every = 15;
  return cfg;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "hsdl_fault_" + name;
}

std::vector<nn::Tensor> weights_of(HotspotCnn& model) {
  return nn::snapshot_params(model.net().params());
}

void expect_bitwise_equal(const std::vector<nn::Tensor>& a,
                          const std::vector<nn::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_TRUE(same_shape(a[t], b[t])) << "tensor " << t;
    for (std::size_t i = 0; i < a[t].numel(); ++i)
      ASSERT_EQ(std::bit_cast<std::uint32_t>(a[t].data()[i]),
                std::bit_cast<std::uint32_t>(b[t].data()[i]))
          << "tensor " << t << " element " << i;
  }
}

bool all_finite(const std::vector<nn::Tensor>& ts) {
  for (const nn::Tensor& t : ts)
    for (std::size_t i = 0; i < t.numel(); ++i)
      if (!std::isfinite(t.data()[i])) return false;
  return true;
}

/// Training curves must match on everything but wall time (`seconds` is
/// inherently non-deterministic and excluded by design).
void expect_same_history(const std::vector<TrainPoint>& a,
                         const std::vector<TrainPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].iter, b[i].iter);
    EXPECT_DOUBLE_EQ(a[i].train_loss, b[i].train_loss);
    EXPECT_DOUBLE_EQ(a[i].val_accuracy, b[i].val_accuracy);
  }
}

void expect_same_result(const TrainResult& a, const TrainResult& b) {
  expect_same_history(a.history, b.history);
  EXPECT_DOUBLE_EQ(a.best_val_accuracy, b.best_val_accuracy);
  EXPECT_EQ(a.iters_run, b.iters_run);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_DOUBLE_EQ(a.final_learning_rate, b.final_learning_rate);
}

// -- MGD kill-and-resume -----------------------------------------------------

TEST(FaultToleranceTest, CheckpointingDoesNotPerturbTraining) {
  auto train = separable_set(20, 1);
  auto val = separable_set(8, 2);

  HotspotCnn plain(tiny_cnn());
  MgdTrainer plain_trainer(fast_mgd());
  Rng rng_a(3);
  TrainResult plain_result = plain_trainer.train(plain, train, val, rng_a);

  const std::string path = temp_path("perturb.ts");
  MgdConfig cfg = fast_mgd();
  cfg.checkpoint_path = path;
  HotspotCnn ckpt(tiny_cnn());
  MgdTrainer ckpt_trainer(cfg);
  Rng rng_b(3);
  TrainResult ckpt_result = ckpt_trainer.train(ckpt, train, val, rng_b);

  expect_same_result(plain_result, ckpt_result);
  expect_bitwise_equal(weights_of(plain), weights_of(ckpt));
  std::remove(path.c_str());
}

/// Kills training at `kill_at` (after the hook-visible checkpoint write),
/// resumes with a fresh model and a differently seeded RNG (both must be
/// fully overwritten from the checkpoint) and checks the final weights
/// and results against the uninterrupted baseline bit-for-bit.
void run_kill_resume_case(std::size_t kill_at) {
  auto train = separable_set(20, 4);
  auto val = separable_set(8, 5);

  HotspotCnn baseline(tiny_cnn());
  MgdTrainer baseline_trainer(fast_mgd());
  Rng rng_a(6);
  TrainResult expected = baseline_trainer.train(baseline, train, val, rng_a);

  const std::string path =
      temp_path("kill_" + std::to_string(kill_at) + ".ts");
  MgdConfig cfg = fast_mgd();
  cfg.checkpoint_path = path;

  HotspotCnn victim(tiny_cnn());
  MgdTrainer victim_trainer(cfg);
  victim_trainer.set_iteration_hook([kill_at](std::size_t iter) {
    if (iter == kill_at) throw KillSignal{};
  });
  Rng rng_b(6);
  EXPECT_THROW(victim_trainer.train(victim, train, val, rng_b), KillSignal);

  // Fresh model, unrelated RNG seed: resume must restore everything.
  HotspotCnn survivor(tiny_cnn());
  MgdTrainer resume_trainer(cfg);
  Rng rng_c(777);
  TrainResult resumed = resume_trainer.resume(survivor, train, val, rng_c);

  expect_same_result(expected, resumed);
  expect_bitwise_equal(weights_of(baseline), weights_of(survivor));
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, KillBetweenCheckpointsResumesBitwise) {
  run_kill_resume_case(25);  // last checkpoint at iter 20
}

TEST(FaultToleranceTest, KillAtCheckpointBoundaryResumesBitwise) {
  run_kill_resume_case(30);  // killed right after the iter-30 write
}

TEST(FaultToleranceTest, ResumeOfFinishedRunReturnsStoredResult) {
  auto train = separable_set(15, 7);
  auto val = separable_set(6, 8);
  const std::string path = temp_path("finished.ts");
  MgdConfig cfg = fast_mgd();
  cfg.checkpoint_path = path;

  HotspotCnn model(tiny_cnn());
  MgdTrainer trainer(cfg);
  Rng rng(9);
  TrainResult first = trainer.train(model, train, val, rng);

  HotspotCnn fresh(tiny_cnn());
  MgdTrainer again(cfg);
  Rng rng2(10);
  TrainResult second = again.resume(fresh, train, val, rng2);

  expect_same_result(first, second);
  expect_bitwise_equal(weights_of(model), weights_of(fresh));
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, ResumeRejectsConfigMismatch) {
  auto train = separable_set(10, 11);
  auto val = separable_set(5, 12);
  const std::string path = temp_path("mismatch.ts");
  MgdConfig cfg = fast_mgd();
  cfg.checkpoint_path = path;
  cfg.max_iters = 20;

  HotspotCnn model(tiny_cnn());
  MgdTrainer trainer(cfg);
  Rng rng(13);
  trainer.train(model, train, val, rng);

  MgdConfig other = cfg;
  other.batch = 8;  // any math-affecting field must fail fast
  HotspotCnn fresh(tiny_cnn());
  MgdTrainer bad(other);
  Rng rng2(14);
  EXPECT_THROW(bad.resume(fresh, train, val, rng2), hsdl::CheckError);
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, ResumeRequiresPathAndExistingFile) {
  auto train = separable_set(5, 15);
  auto val = separable_set(5, 16);
  HotspotCnn model(tiny_cnn());
  Rng rng(17);

  MgdTrainer no_path(fast_mgd());
  EXPECT_THROW(no_path.resume(model, train, val, rng), hsdl::CheckError);

  MgdConfig cfg = fast_mgd();
  cfg.checkpoint_path = temp_path("never_written.ts");
  MgdTrainer missing(cfg);
  EXPECT_THROW(missing.resume(model, train, val, rng), hsdl::CheckError);
}

// -- biased-learning kill-and-resume -----------------------------------------

void expect_same_biased_result(const BiasedLearningResult& a,
                               const BiasedLearningResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].epsilon, b.rounds[i].epsilon);
    EXPECT_EQ(a.rounds[i].val_confusion.tp, b.rounds[i].val_confusion.tp);
    EXPECT_EQ(a.rounds[i].val_confusion.fn, b.rounds[i].val_confusion.fn);
    EXPECT_EQ(a.rounds[i].val_confusion.fp, b.rounds[i].val_confusion.fp);
    EXPECT_EQ(a.rounds[i].val_confusion.tn, b.rounds[i].val_confusion.tn);
    expect_same_result(a.rounds[i].train, b.rounds[i].train);
  }
}

TEST(FaultToleranceTest, BiasedKillAndResumeMatchesUninterrupted) {
  auto train = separable_set(20, 18);
  auto val = separable_set(8, 19);

  HotspotCnn baseline(tiny_cnn());
  BiasedLearner baseline_learner(fast_biased());
  Rng rng_a(20);
  BiasedLearningResult expected =
      baseline_learner.train(baseline, train, val, rng_a);

  // Kill in the middle of round 1 (rounds run 80 + 40 + 40 iterations;
  // global iteration 100 is iteration 20 of round 1, last checkpoint at
  // that round's iteration 15).
  const std::string path = temp_path("biased_kill.ts");
  BiasedLearningConfig cfg = fast_biased();
  cfg.checkpoint_path = path;

  HotspotCnn victim(tiny_cnn());
  BiasedLearner victim_learner(cfg);
  std::size_t total = 0;
  victim_learner.set_iteration_hook([&total](std::size_t) {
    if (++total == 100) throw KillSignal{};
  });
  Rng rng_b(20);
  EXPECT_THROW(victim_learner.train(victim, train, val, rng_b), KillSignal);

  HotspotCnn survivor(tiny_cnn());
  BiasedLearner resume_learner(cfg);
  Rng rng_c(999);
  BiasedLearningResult resumed =
      resume_learner.resume(survivor, train, val, rng_c);

  expect_same_biased_result(expected, resumed);
  expect_bitwise_equal(weights_of(baseline), weights_of(survivor));
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, BiasedResumeStartsFreshWithoutCheckpoint) {
  auto train = separable_set(12, 21);
  auto val = separable_set(6, 22);

  HotspotCnn baseline(tiny_cnn());
  BiasedLearner plain(fast_biased());
  Rng rng_a(23);
  BiasedLearningResult expected = plain.train(baseline, train, val, rng_a);

  const std::string path = temp_path("biased_fresh.ts");
  std::remove(path.c_str());
  BiasedLearningConfig cfg = fast_biased();
  cfg.checkpoint_path = path;
  HotspotCnn model(tiny_cnn());
  BiasedLearner learner(cfg);
  Rng rng_b(23);
  // No checkpoint exists: resume() must run the whole chain from scratch,
  // so first launch and relaunch share one call site.
  BiasedLearningResult fresh = learner.resume(model, train, val, rng_b);

  expect_same_biased_result(expected, fresh);
  expect_bitwise_equal(weights_of(baseline), weights_of(model));
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, BiasedResumeRejectsPlainTrainerCheckpoint) {
  auto train = separable_set(8, 24);
  auto val = separable_set(4, 25);
  const std::string path = temp_path("plain_for_biased.ts");
  MgdConfig cfg = fast_mgd();
  cfg.checkpoint_path = path;
  cfg.max_iters = 10;

  HotspotCnn model(tiny_cnn());
  MgdTrainer trainer(cfg);
  Rng rng(26);
  trainer.train(model, train, val, rng);  // writes extra-less checkpoints

  BiasedLearningConfig bcfg = fast_biased();
  bcfg.checkpoint_path = path;
  BiasedLearner learner(bcfg);
  HotspotCnn fresh(tiny_cnn());
  Rng rng2(27);
  EXPECT_THROW(learner.resume(fresh, train, val, rng2), hsdl::CheckError);
  std::remove(path.c_str());
}

// -- divergence watchdog -----------------------------------------------------

TEST(FaultToleranceTest, WatchdogRecoversFromInjectedNaN) {
  auto train = separable_set(40, 28);
  auto val = separable_set(15, 29);
  // Full-length schedule (matches trainer_test's convergence setup): the
  // faults hit after the model has learned, so the rollback anchor is a
  // trained validated state, and convergence can still be asserted.
  MgdConfig cfg = fast_mgd();
  cfg.max_iters = 300;
  cfg.decay_step = 150;
  cfg.validate_every = 50;
  cfg.max_recoveries = 5;

  HotspotCnn clean_model(tiny_cnn());
  MgdTrainer clean(cfg);
  Rng rng_a(30);
  TrainResult clean_result = clean.train(clean_model, train, val, rng_a);

  HotspotCnn model(tiny_cnn());
  MgdTrainer trainer(cfg);
  const double nan = std::nan("");
  trainer.set_fault_hook([nan](std::size_t iter, double& loss,
                               const std::vector<nn::Param*>& params) {
    // Iterations chosen off the validation/decay grid so the clean run's
    // LR decay schedule is unaffected by the rollbacks.
    if (iter == 160) loss = nan;
    if (iter == 170) params[0]->grad.data()[0] = static_cast<float>(nan);
  });
  Rng rng_b(30);
  TrainResult result = trainer.train(model, train, val, rng_b);

  EXPECT_EQ(result.recoveries, 2u);
  EXPECT_EQ(result.iters_run, cfg.max_iters);
  EXPECT_TRUE(all_finite(weights_of(model)));
  // Each rollback halves the LR (recovery_lr_decay = 0.5); the decay
  // schedule itself is identical, so the ratio is exactly 0.25.
  EXPECT_DOUBLE_EQ(result.final_learning_rate,
                   clean_result.final_learning_rate * 0.25);
  // The rollbacks restored a trained anchor: convergence survives.
  EXPECT_GT(result.best_val_accuracy, 0.9);
}

TEST(FaultToleranceTest, WatchdogExhaustionThrowsWithWeightsRestored) {
  auto train = separable_set(10, 31);
  auto val = separable_set(5, 32);
  MgdConfig cfg = fast_mgd();
  cfg.max_recoveries = 2;

  HotspotCnn model(tiny_cnn());
  const std::vector<nn::Tensor> initial = weights_of(model);
  MgdTrainer trainer(cfg);
  trainer.set_fault_hook([](std::size_t, double& loss,
                            const std::vector<nn::Param*>&) {
    loss = std::nan("");  // every iteration diverges
  });
  Rng rng(33);
  EXPECT_THROW(trainer.train(model, train, val, rng), hsdl::CheckError);
  // No validation ever passed, so the last good state is the initial
  // weights — restored before the diagnostic throw.
  expect_bitwise_equal(initial, weights_of(model));
}

TEST(FaultToleranceTest, NonFiniteNeverReachesCheckpoint) {
  auto train = separable_set(15, 34);
  auto val = separable_set(6, 35);
  const std::string path = temp_path("nan_ckpt.ts");
  MgdConfig cfg = fast_mgd();
  cfg.checkpoint_path = path;
  cfg.max_recoveries = 20;  // 12 divergences injected below

  HotspotCnn model(tiny_cnn());
  MgdTrainer trainer(cfg);
  trainer.set_fault_hook([](std::size_t iter, double& loss,
                            const std::vector<nn::Param*>& params) {
    if (iter % 9 == 0) loss = std::nan("");
    if (iter % 10 == 0)  // divergence on checkpoint iterations too
      params[0]->grad.data()[0] = std::numeric_limits<float>::infinity();
  });
  Rng rng(36);
  TrainResult result = trainer.train(model, train, val, rng);
  EXPECT_GT(result.recoveries, 0u);

  const TrainState state = load_train_state_file(path);
  EXPECT_TRUE(all_finite(state.params));
  EXPECT_TRUE(all_finite(state.best_params));
  EXPECT_TRUE(all_finite(state.opt_slots));
  EXPECT_TRUE(std::isfinite(state.learning_rate));
  std::remove(path.c_str());
}

TEST(FaultToleranceTest, GradientClippingKeepsUpdatesFinite) {
  auto train = separable_set(10, 37);
  auto val = separable_set(5, 38);
  MgdConfig cfg = fast_mgd();
  cfg.max_iters = 30;
  cfg.learning_rate = 10.0;  // would explode unclipped
  cfg.max_grad_norm = 1e-3;
  HotspotCnn model(tiny_cnn());
  MgdTrainer trainer(cfg);
  Rng rng(39);
  TrainResult result = trainer.train(model, train, val, rng);
  EXPECT_EQ(result.recoveries, 0u);
  EXPECT_TRUE(all_finite(weights_of(model)));
}

// -- TrainState container ----------------------------------------------------

nn::Tensor filled(std::vector<std::size_t> shape, float start) {
  nn::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t.data()[i] = start + 0.25f * static_cast<float>(i);
  return t;
}

TrainState sample_state() {
  TrainState st;
  st.config = fast_mgd();
  st.config.checkpoint_path = "ignored.ts";
  st.config.optimizer = OptimizerKind::kAdam;
  st.config.max_grad_norm = 2.5;
  st.iter = 123;
  st.finished = false;
  st.learning_rate = 2.5e-3;
  st.elapsed_seconds = 1.5;
  st.recoveries = 1;
  st.best_score = 0.875;
  st.stale = 2;
  st.history = {{50, 0.5, 0.9, 0.8}, {100, 1.0, 0.4, 0.875}};
  Rng sampler(7);
  (void)sampler.normal();  // leave a cached Box-Muller value behind
  st.sampler_rng = sampler.state();
  Rng model_rng(8);
  st.model_rng = model_rng.state();
  st.params = {filled({2, 2}, 1.0f), filled({3}, -2.0f)};
  st.best_params = {filled({2, 2}, 5.0f), filled({3}, 6.0f)};
  st.opt_slots = {filled({2, 2}, 0.1f), filled({2, 2}, 0.2f),
                  filled({3}, 0.3f), filled({3}, 0.4f)};
  st.opt_step_count = 42;
  st.extra = "opaque";
  return st;
}

void expect_same_state(const TrainState& a, const TrainState& b) {
  EXPECT_DOUBLE_EQ(a.config.learning_rate, b.config.learning_rate);
  EXPECT_DOUBLE_EQ(a.config.decay, b.config.decay);
  EXPECT_EQ(a.config.decay_step, b.config.decay_step);
  EXPECT_EQ(a.config.batch, b.config.batch);
  EXPECT_EQ(a.config.max_iters, b.config.max_iters);
  EXPECT_EQ(a.config.validate_every, b.config.validate_every);
  EXPECT_EQ(a.config.patience, b.config.patience);
  EXPECT_EQ(a.config.optimizer, b.config.optimizer);
  EXPECT_DOUBLE_EQ(a.config.epsilon, b.config.epsilon);
  EXPECT_EQ(a.config.balanced_batches, b.config.balanced_batches);
  EXPECT_DOUBLE_EQ(a.config.max_grad_norm, b.config.max_grad_norm);
  EXPECT_EQ(a.config.max_recoveries, b.config.max_recoveries);
  EXPECT_DOUBLE_EQ(a.config.recovery_lr_decay, b.config.recovery_lr_decay);
  EXPECT_EQ(a.iter, b.iter);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_DOUBLE_EQ(a.learning_rate, b.learning_rate);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.stale, b.stale);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iter, b.history[i].iter);
    EXPECT_DOUBLE_EQ(a.history[i].seconds, b.history[i].seconds);
    EXPECT_DOUBLE_EQ(a.history[i].train_loss, b.history[i].train_loss);
    EXPECT_DOUBLE_EQ(a.history[i].val_accuracy, b.history[i].val_accuracy);
  }
  EXPECT_EQ(a.sampler_rng, b.sampler_rng);
  EXPECT_EQ(a.model_rng, b.model_rng);
  expect_bitwise_equal(a.params, b.params);
  expect_bitwise_equal(a.best_params, b.best_params);
  expect_bitwise_equal(a.opt_slots, b.opt_slots);
  EXPECT_EQ(a.opt_step_count, b.opt_step_count);
  EXPECT_EQ(a.extra, b.extra);
}

TEST(TrainStateTest, RoundTripPreservesEveryField) {
  const TrainState st = sample_state();
  expect_same_state(st, deserialize_train_state(serialize_train_state(st)));
}

TEST(TrainStateTest, FileRoundTripIsAtomic) {
  const std::string path = temp_path("roundtrip.ts");
  const TrainState st = sample_state();
  save_train_state_file(path, st);
  save_train_state_file(path, st);  // overwrite via temp + rename
  expect_same_state(st, load_train_state_file(path));
  std::remove(path.c_str());
}

TEST(BiasedProgressTest, RoundTripPreservesEveryField) {
  BiasedProgress p;
  p.round = 2;
  p.epsilon = 0.30000000000000004;  // accumulated, not recomputed
  BiasedRound round;
  round.epsilon = 0.1;
  round.train.history = {{20, 0.2, 0.7, 0.9}};
  round.train.best_val_accuracy = 0.9;
  round.train.iters_run = 40;
  round.train.seconds = 0.25;
  round.train.recoveries = 1;
  round.train.final_learning_rate = 1e-3;
  round.val_confusion.tp = 3;
  round.val_confusion.fn = 1;
  round.val_confusion.fp = 2;
  round.val_confusion.tn = 14;
  p.completed = {round};

  const BiasedProgress q =
      deserialize_biased_progress(serialize_biased_progress(p));
  EXPECT_EQ(q.round, p.round);
  EXPECT_DOUBLE_EQ(q.epsilon, p.epsilon);
  ASSERT_EQ(q.completed.size(), 1u);
  EXPECT_DOUBLE_EQ(q.completed[0].epsilon, round.epsilon);
  expect_same_result(q.completed[0].train, round.train);
  EXPECT_DOUBLE_EQ(q.completed[0].train.seconds, round.train.seconds);
  EXPECT_EQ(q.completed[0].val_confusion.tp, round.val_confusion.tp);
  EXPECT_EQ(q.completed[0].val_confusion.fn, round.val_confusion.fn);
  EXPECT_EQ(q.completed[0].val_confusion.fp, round.val_confusion.fp);
  EXPECT_EQ(q.completed[0].val_confusion.tn, round.val_confusion.tn);
}

// -- TrainState corruption sweep ---------------------------------------------

enum class Outcome { kAccepted, kRejected, kForeignException };

Outcome try_load_state(const std::string& bytes) {
  try {
    (void)deserialize_train_state(bytes);
    return Outcome::kAccepted;
  } catch (const hsdl::CheckError&) {
    return Outcome::kRejected;
  } catch (...) {
    return Outcome::kForeignException;
  }
}

TEST(TrainStateCorruptionTest, PristineBufferLoads) {
  ASSERT_EQ(try_load_state(serialize_train_state(sample_state())),
            Outcome::kAccepted);
}

TEST(TrainStateCorruptionTest, EveryBitFlipRejected) {
  const std::string good = serialize_train_state(sample_state());
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < good.size(); ++i)
    for (int b = 0; b < 8; ++b) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << b));
      const Outcome out = try_load_state(bad);
      EXPECT_EQ(out, Outcome::kRejected)
          << "bit flip at byte " << i << " bit " << b
          << (out == Outcome::kAccepted ? " was accepted"
                                        : " threw a non-CheckError");
      rejected += out == Outcome::kRejected;
    }
  EXPECT_EQ(rejected, good.size() * 8);
}

TEST(TrainStateCorruptionTest, EveryTruncationRejected) {
  const std::string good = serialize_train_state(sample_state());
  for (std::size_t len = 0; len < good.size(); ++len)
    EXPECT_EQ(try_load_state(good.substr(0, len)), Outcome::kRejected)
        << "truncated to " << len << " of " << good.size() << " bytes";
}

TEST(TrainStateCorruptionTest, TrailingBytesRejected) {
  const std::string good = serialize_train_state(sample_state());
  EXPECT_EQ(try_load_state(good + '\0'), Outcome::kRejected);
  EXPECT_EQ(try_load_state(good + "junk"), Outcome::kRejected);
}

TEST(TrainStateCorruptionTest, RejectionCarriesContextAndPosition) {
  const std::string good = serialize_train_state(sample_state());
  std::string bad = good;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x10);
  try {
    (void)deserialize_train_state(bad, "ckpt.ts");
    FAIL() << "corrupt state was accepted";
  } catch (const hsdl::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ckpt.ts"), std::string::npos);
  }
}

}  // namespace
}  // namespace hsdl::hotspot

#include "hotspot/roc.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "hotspot/trainer.hpp"

namespace hsdl::hotspot {
namespace {

HotspotCnnConfig tiny_cnn() {
  HotspotCnnConfig cfg;
  cfg.input_channels = 2;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 8;
  cfg.fc_nodes = 16;
  cfg.dropout = 0.0;
  return cfg;
}

nn::ClassificationDataset separable_set(std::size_t n_per_class,
                                        std::uint64_t seed) {
  Rng rng(seed);
  nn::ClassificationDataset d({2, 4, 4});
  for (std::size_t i = 0; i < n_per_class; ++i)
    for (std::size_t label = 0; label < 2; ++label) {
      std::vector<float> x(32);
      for (float& v : x)
        v = static_cast<float>(rng.normal(label == 1 ? 0.7 : 0.0, 0.2));
      d.add(std::move(x), label);
    }
  return d;
}

HotspotCnn trained_model(const nn::ClassificationDataset& data) {
  HotspotCnn model(tiny_cnn());
  MgdConfig cfg;
  cfg.learning_rate = 5e-3;
  cfg.max_iters = 250;
  cfg.decay_step = 150;
  cfg.validate_every = 50;
  cfg.patience = 20;
  MgdTrainer trainer(cfg);
  Rng rng(3);
  trainer.train(model, data, data, rng);
  return model;
}

TEST(RocTest, CurveMonotoneInShift) {
  auto data = separable_set(25, 1);
  HotspotCnn model = trained_model(data);
  auto curve = roc_curve(model, data, {-0.3, -0.1, 0.0, 0.1, 0.3});
  ASSERT_EQ(curve.size(), 5u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    // Larger shift flags more: accuracy and FA rate both non-decreasing.
    EXPECT_GE(curve[i].accuracy, curve[i - 1].accuracy);
    EXPECT_GE(curve[i].fa_rate, curve[i - 1].fa_rate);
  }
}

TEST(RocTest, ExtremeShiftsHitCorners) {
  auto data = separable_set(20, 2);
  HotspotCnn model = trained_model(data);
  auto curve = roc_curve(model, data, {-0.5, 0.5});
  // shift -0.5 => threshold 1.0 => nothing flagged.
  EXPECT_DOUBLE_EQ(curve[0].accuracy, 0.0);
  EXPECT_EQ(curve[0].false_alarms, 0u);
  // shift +0.5 => threshold 0.0 => everything flagged.
  EXPECT_DOUBLE_EQ(curve[1].accuracy, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].fa_rate, 1.0);
}

TEST(RocTest, PointAtZeroMatchesEvaluate) {
  auto data = separable_set(20, 3);
  HotspotCnn model = trained_model(data);
  auto curve = roc_curve(model, data, {0.0});
  Confusion c = evaluate(model, data, 0.0);
  EXPECT_DOUBLE_EQ(curve[0].accuracy, c.accuracy());
  EXPECT_EQ(curve[0].false_alarms, c.false_alarms());
}

TEST(RocTest, AucHighOnSeparableData) {
  auto data = separable_set(25, 4);
  HotspotCnn model = trained_model(data);
  EXPECT_GT(roc_auc(model, data), 0.9);
}

TEST(RocTest, AucNearChanceForUntrainedModel) {
  auto data = separable_set(25, 5);
  HotspotCnn model(tiny_cnn());  // random weights
  const double auc = roc_auc(model, data);
  EXPECT_GT(auc, 0.2);
  EXPECT_LT(auc, 0.85);
}

TEST(RocTest, AucBounds) {
  auto data = separable_set(10, 6);
  HotspotCnn model = trained_model(data);
  const double auc = roc_auc(model, data, 51);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0 + 1e-9);
}

TEST(RocTest, EmptyDataThrows) {
  HotspotCnn model(tiny_cnn());
  nn::ClassificationDataset empty({2, 4, 4});
  EXPECT_THROW(roc_curve(model, empty, {0.0}), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::hotspot

#include "hotspot/roc.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "hotspot/trainer.hpp"

namespace hsdl::hotspot {
namespace {

HotspotCnnConfig tiny_cnn() {
  HotspotCnnConfig cfg;
  cfg.input_channels = 2;
  cfg.input_side = 4;
  cfg.stage1_maps = 4;
  cfg.stage2_maps = 8;
  cfg.fc_nodes = 16;
  cfg.dropout = 0.0;
  return cfg;
}

nn::ClassificationDataset separable_set(std::size_t n_per_class,
                                        std::uint64_t seed) {
  Rng rng(seed);
  nn::ClassificationDataset d({2, 4, 4});
  for (std::size_t i = 0; i < n_per_class; ++i)
    for (std::size_t label = 0; label < 2; ++label) {
      std::vector<float> x(32);
      for (float& v : x)
        v = static_cast<float>(rng.normal(label == 1 ? 0.7 : 0.0, 0.2));
      d.add(std::move(x), label);
    }
  return d;
}

HotspotCnn trained_model(const nn::ClassificationDataset& data) {
  HotspotCnn model(tiny_cnn());
  MgdConfig cfg;
  cfg.learning_rate = 5e-3;
  cfg.max_iters = 250;
  cfg.decay_step = 150;
  cfg.validate_every = 50;
  cfg.patience = 20;
  MgdTrainer trainer(cfg);
  Rng rng(3);
  trainer.train(model, data, data, rng);
  return model;
}

TEST(RocTest, CurveMonotoneInShift) {
  auto data = separable_set(25, 1);
  HotspotCnn model = trained_model(data);
  auto curve = roc_curve(model, data, {-0.3, -0.1, 0.0, 0.1, 0.3});
  ASSERT_EQ(curve.size(), 5u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    // Larger shift flags more: accuracy and FA rate both non-decreasing.
    EXPECT_GE(curve[i].accuracy, curve[i - 1].accuracy);
    EXPECT_GE(curve[i].fa_rate, curve[i - 1].fa_rate);
  }
}

TEST(RocTest, ExtremeShiftsHitCorners) {
  auto data = separable_set(20, 2);
  HotspotCnn model = trained_model(data);
  auto curve = roc_curve(model, data, {-0.5, 0.5});
  // shift -0.5 => threshold 1.0 => nothing flagged.
  EXPECT_DOUBLE_EQ(curve[0].accuracy, 0.0);
  EXPECT_EQ(curve[0].false_alarms, 0u);
  // shift +0.5 => threshold 0.0 => everything flagged.
  EXPECT_DOUBLE_EQ(curve[1].accuracy, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].fa_rate, 1.0);
}

TEST(RocTest, PointAtZeroMatchesEvaluate) {
  auto data = separable_set(20, 3);
  HotspotCnn model = trained_model(data);
  auto curve = roc_curve(model, data, {0.0});
  Confusion c = evaluate(model, data, 0.0);
  EXPECT_DOUBLE_EQ(curve[0].accuracy, c.accuracy());
  EXPECT_EQ(curve[0].false_alarms, c.false_alarms());
}

TEST(RocTest, AucHighOnSeparableData) {
  auto data = separable_set(25, 4);
  HotspotCnn model = trained_model(data);
  EXPECT_GT(roc_auc(model, data), 0.9);
}

TEST(RocTest, AucNearChanceForUntrainedModel) {
  auto data = separable_set(25, 5);
  HotspotCnn model(tiny_cnn());  // random weights
  const double auc = roc_auc(model, data);
  EXPECT_GT(auc, 0.2);
  EXPECT_LT(auc, 0.85);
}

TEST(RocTest, AucBounds) {
  auto data = separable_set(10, 6);
  HotspotCnn model = trained_model(data);
  const double auc = roc_auc(model, data, 51);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0 + 1e-9);
}

TEST(RocTest, EmptyDataThrows) {
  HotspotCnn model(tiny_cnn());
  nn::ClassificationDataset empty({2, 4, 4});
  EXPECT_THROW(roc_curve(model, empty, {0.0}), hsdl::CheckError);
}

/// Emits exactly 0.0 / 1.0 probabilities (empty clip => 0.0) to pin the
/// sweep endpoints: with the old strict `p > threshold` flagging, p == 0
/// was never flagged even at threshold 0 and the curve could not reach
/// the (1,1) corner.
class SaturatedDetector final : public Detector {
 public:
  std::string name() const override { return "saturated"; }
  void train(std::span<const layout::LabeledClip>) override {}
  bool predict(const layout::Clip& clip) const override {
    return is_flagged(predict_probability(clip), decision_threshold());
  }
  double predict_probability(const layout::Clip& clip) const override {
    return clip.shapes.empty() ? 0.0 : 1.0;
  }
};

std::vector<layout::LabeledClip> saturated_clips() {
  std::vector<layout::LabeledClip> clips(4);
  for (std::size_t i = 0; i < clips.size(); ++i) {
    clips[i].clip.window = geom::Rect::from_xywh(0, 0, 100, 100);
    const bool hotspot = i % 2 == 0;
    if (hotspot) clips[i].clip.shapes = {geom::Rect::from_xywh(0, 0, 10, 10)};
    clips[i].label = hotspot ? layout::HotspotLabel::kHotspot
                             : layout::HotspotLabel::kNonHotspot;
  }
  return clips;
}

TEST(RocTest, DetectorCurveEndpointsPinnedWithSaturatedProbabilities) {
  SaturatedDetector det;
  auto curve = roc_curve(det, saturated_clips(), {-0.5, 0.0, 0.5});
  ASSERT_EQ(curve.size(), 3u);
  // shift -0.5 => threshold 1.0: nothing flagged, even exact p == 1.0.
  EXPECT_DOUBLE_EQ(curve[0].accuracy, 0.0);
  EXPECT_DOUBLE_EQ(curve[0].fa_rate, 0.0);
  // shift 0 => threshold 0.5: the saturated detector is perfect.
  EXPECT_DOUBLE_EQ(curve[1].accuracy, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].fa_rate, 0.0);
  // shift +0.5 => threshold 0.0: everything flagged, including exact
  // p == 0.0 (the old strict > comparison left fa_rate at 0 here).
  EXPECT_DOUBLE_EQ(curve[2].accuracy, 1.0);
  EXPECT_DOUBLE_EQ(curve[2].fa_rate, 1.0);
}

TEST(RocTest, DetectorCurveMatchesIsFlaggedPredicate) {
  // The curve and the shared predicate must agree point for point.
  SaturatedDetector det;
  const auto clips = saturated_clips();
  for (double shift : {-0.5, -0.2, 0.0, 0.2, 0.5}) {
    const auto curve = roc_curve(det, clips, {shift});
    std::size_t tp = 0, fa = 0, hotspots = 0, non = 0;
    for (const auto& lc : clips) {
      const bool hs = lc.label == layout::HotspotLabel::kHotspot;
      hotspots += hs;
      non += !hs;
      const bool flagged =
          is_flagged(det.predict_probability(lc.clip), 0.5 - shift);
      tp += hs && flagged;
      fa += !hs && flagged;
    }
    EXPECT_DOUBLE_EQ(curve[0].accuracy,
                     static_cast<double>(tp) / static_cast<double>(hotspots));
    EXPECT_EQ(curve[0].false_alarms, fa);
  }
}

}  // namespace
}  // namespace hsdl::hotspot

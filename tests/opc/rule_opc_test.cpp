#include "opc/rule_opc.hpp"

#include <gtest/gtest.h>

#include "layout/drc.hpp"
#include "litho/labeler.hpp"

namespace hsdl::opc {
namespace {

using geom::Rect;
using layout::Clip;

Clip make_clip(std::vector<Rect> shapes) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = std::move(shapes);
  return c;
}

TEST(RuleOpcTest, ExtendsIsolatedLineEnds) {
  Clip c = make_clip({Rect::from_xywh(300, 500, 400, 40)});
  OpcResult r = correct(c, OpcConfig{});
  EXPECT_EQ(r.ends_extended, 2u);
  EXPECT_EQ(r.corrected.shapes[0], Rect::from_xywh(280, 500, 440, 40));
}

TEST(RuleOpcTest, VerticalLineExtendsVertically) {
  Clip c = make_clip({Rect::from_xywh(500, 300, 40, 400)});
  OpcResult r = correct(c, OpcConfig{});
  EXPECT_EQ(r.corrected.shapes[0], Rect::from_xywh(500, 280, 40, 440));
}

TEST(RuleOpcTest, SpacingGuardBlocksExtensionIntoTightGap) {
  // Facing line ends with exactly min-space gap: extending either end
  // would create a sub-rule gap, so both inner corrections are skipped.
  Clip c = make_clip({Rect::from_xywh(0, 500, 500, 40),
                      Rect::from_xywh(540, 500, 500, 40)});
  OpcResult r = correct(c, OpcConfig{});
  // Outer ends (at the window boundary) cannot extend either; the inner
  // ones are skipped by the spacing guard.
  EXPECT_GE(r.corrections_skipped, 2u);
  for (const Rect& s : r.corrected.shapes) {
    // The 40 nm gap must not have shrunk.
    EXPECT_TRUE(s.hi.x <= 500 || s.lo.x >= 540);
  }
}

TEST(RuleOpcTest, UpsizesSmallContacts) {
  Clip c = make_clip({Rect::from_xywh(580, 580, 40, 40)});
  OpcResult r = correct(c, OpcConfig{});
  EXPECT_EQ(r.features_upsized, 1u);
  EXPECT_EQ(r.corrected.shapes[0], Rect::from_xywh(570, 570, 60, 60));
}

TEST(RuleOpcTest, LargeBlockUntouched) {
  Clip c = make_clip({Rect::from_xywh(400, 400, 300, 300)});
  OpcResult r = correct(c, OpcConfig{});
  EXPECT_EQ(r.corrected.shapes, c.shapes);
  EXPECT_EQ(r.ends_extended + r.features_upsized, 0u);
}

TEST(RuleOpcTest, CorrectionsStayInWindow) {
  Clip c = make_clip({Rect::from_xywh(0, 500, 400, 40),       // at left edge
                      Rect::from_xywh(1190, 0, 10, 10)});     // corner sliver
  OpcResult r = correct(c, OpcConfig{});
  for (const Rect& s : r.corrected.shapes)
    EXPECT_TRUE(c.window.contains(s));
}

TEST(RuleOpcTest, CorrectionsNeverCreateDrcSpacingViolations) {
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.0;  // DRC-clean input
  layout::ClipGenerator gen(gen_cfg, 9);
  OpcConfig cfg;
  for (int i = 0; i < 10; ++i) {
    Clip c = gen.generate();
    // Only check clips that start spacing-clean.
    if (layout::check_rules(c, cfg.rules)
            .count(layout::DrcViolationType::kMinSpacing) != 0)
      continue;
    OpcResult r = correct(c, cfg);
    EXPECT_EQ(layout::check_rules(r.corrected, cfg.rules)
                  .count(layout::DrcViolationType::kMinSpacing),
              0u)
        << "clip " << i;
  }
}

TEST(RuleOpcTest, ReducesHotspotRateOnStressedPatterns) {
  // The headline property: litho-labeled hotspot rate drops after OPC.
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.6;
  layout::ClipGenerator gen(gen_cfg, 10);
  litho::HotspotLabeler labeler;
  OpcConfig cfg;
  int before = 0, after = 0;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    Clip c = gen.generate();
    before += labeler.label(c) == layout::HotspotLabel::kHotspot;
    after += labeler.label(correct(c, cfg).corrected) ==
             layout::HotspotLabel::kHotspot;
  }
  EXPECT_LE(after, before);
  EXPECT_GT(before, 0);  // the experiment must have something to fix
}

TEST(RuleOpcTest, ZeroConfigIsIdentity) {
  OpcConfig cfg;
  cfg.line_end_extension = 0;
  cfg.small_feature_bias = 0;
  Clip c = make_clip({Rect::from_xywh(300, 500, 400, 40),
                      Rect::from_xywh(580, 100, 40, 40)});
  OpcResult r = correct(c, cfg);
  EXPECT_EQ(r.corrected.shapes, c.shapes);
}

}  // namespace
}  // namespace hsdl::opc

#include "geom/point.hpp"

#include <gtest/gtest.h>

namespace hsdl::geom {
namespace {

TEST(PointTest, Arithmetic) {
  Point a{3, 4}, b{1, -2};
  EXPECT_EQ(a + b, (Point{4, 2}));
  EXPECT_EQ(a - b, (Point{2, 6}));
  EXPECT_EQ(a * 3, (Point{9, 12}));
}

TEST(PointTest, CompoundAssignment) {
  Point p{1, 1};
  p += {2, 3};
  EXPECT_EQ(p, (Point{3, 4}));
  p -= {1, 1};
  EXPECT_EQ(p, (Point{2, 3}));
}

TEST(PointTest, Ordering) {
  EXPECT_LT((Point{1, 5}), (Point{2, 0}));
  EXPECT_LT((Point{1, 2}), (Point{1, 3}));
  EXPECT_EQ((Point{4, 4}), (Point{4, 4}));
}

TEST(PointTest, ManhattanDistance) {
  EXPECT_EQ(manhattan_distance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan_distance({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan_distance({-2, -2}, {2, 2}), 8);
  EXPECT_EQ(manhattan_distance({5, 5}, {5, 5}), 0);
}

TEST(PointTest, DefaultIsOrigin) {
  Point p;
  EXPECT_EQ(p.x, 0);
  EXPECT_EQ(p.y, 0);
}

}  // namespace
}  // namespace hsdl::geom

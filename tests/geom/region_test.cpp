#include "geom/region.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hsdl::geom {
namespace {

TEST(UnionAreaTest, EmptyAndSingle) {
  EXPECT_EQ(union_area({}), 0);
  EXPECT_EQ(union_area({Rect::from_xywh(0, 0, 5, 5)}), 25);
}

TEST(UnionAreaTest, DisjointAdds) {
  EXPECT_EQ(union_area({Rect::from_xywh(0, 0, 5, 5),
                        Rect::from_xywh(10, 10, 5, 5)}),
            50);
}

TEST(UnionAreaTest, OverlapCountedOnce) {
  EXPECT_EQ(union_area({Rect::from_xywh(0, 0, 10, 10),
                        Rect::from_xywh(5, 5, 10, 10)}),
            100 + 100 - 25);
}

TEST(UnionAreaTest, ContainedRectIgnored) {
  EXPECT_EQ(union_area({Rect::from_xywh(0, 0, 10, 10),
                        Rect::from_xywh(2, 2, 3, 3)}),
            100);
}

TEST(UnionAreaTest, IdenticalRects) {
  Rect r = Rect::from_xywh(1, 1, 4, 4);
  EXPECT_EQ(union_area({r, r, r}), 16);
}

TEST(UnionAreaTest, EmptyRectsSkipped) {
  EXPECT_EQ(union_area({Rect{}, Rect::from_xywh(0, 0, 2, 2)}), 4);
}

TEST(UnionAreaTest, MatchesBruteForceOnRandomSets) {
  hsdl::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Rect> rects;
    for (int i = 0; i < 6; ++i) {
      Coord x = rng.uniform_int(0, 30);
      Coord y = rng.uniform_int(0, 30);
      rects.push_back(Rect::from_xywh(x, y, rng.uniform_int(1, 10),
                                      rng.uniform_int(1, 10)));
    }
    // Brute-force pixel count over the 0..40 grid.
    Area brute = 0;
    for (Coord y = 0; y < 45; ++y)
      for (Coord x = 0; x < 45; ++x) {
        for (const Rect& r : rects)
          if (r.contains(Point{x, y})) {
            ++brute;
            break;
          }
      }
    EXPECT_EQ(union_area(rects), brute) << "trial " << trial;
  }
}

class RectIndexTest : public ::testing::Test {
 protected:
  RectIndexTest() : index_(Rect::from_xywh(0, 0, 1000, 1000), 100) {}
  RectIndex index_;
};

TEST_F(RectIndexTest, EmptyIndexFindsNothing) {
  EXPECT_TRUE(index_.query(Rect::from_xywh(0, 0, 1000, 1000)).empty());
  EXPECT_FALSE(
      index_.violates_spacing(Rect::from_xywh(50, 50, 10, 10), 20));
}

TEST_F(RectIndexTest, FindsInsertedRect) {
  index_.insert(Rect::from_xywh(100, 100, 50, 50));
  auto hits = index_.query(Rect::from_xywh(120, 120, 10, 10));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], Rect::from_xywh(100, 100, 50, 50));
}

TEST_F(RectIndexTest, QueryMissesFarRect) {
  index_.insert(Rect::from_xywh(100, 100, 50, 50));
  EXPECT_TRUE(index_.query(Rect::from_xywh(800, 800, 10, 10)).empty());
}

TEST_F(RectIndexTest, QueryMarginExtendsReach) {
  index_.insert(Rect::from_xywh(100, 100, 50, 50));
  // 30 away; plain query misses, margin 40 reaches.
  Rect probe = Rect::from_xywh(180, 100, 10, 50);
  EXPECT_TRUE(index_.query(probe).empty());
  EXPECT_EQ(index_.query(probe, 40).size(), 1u);
}

TEST_F(RectIndexTest, SpacingViolationOnOverlap) {
  index_.insert(Rect::from_xywh(100, 100, 50, 50));
  EXPECT_TRUE(index_.violates_spacing(Rect::from_xywh(120, 120, 50, 50), 0));
}

TEST_F(RectIndexTest, SpacingViolationWithinMinSpace) {
  index_.insert(Rect::from_xywh(100, 100, 50, 50));
  // Gap of 10 < min spacing 20.
  EXPECT_TRUE(index_.violates_spacing(Rect::from_xywh(160, 100, 20, 50), 20));
  // Gap of 30 >= 20 is fine.
  EXPECT_FALSE(
      index_.violates_spacing(Rect::from_xywh(180, 100, 20, 50), 20));
  // Gap exactly at the rule is legal.
  EXPECT_FALSE(
      index_.violates_spacing(Rect::from_xywh(170, 100, 20, 50), 20));
}

TEST_F(RectIndexTest, RectSpanningManyBinsFoundOnce) {
  index_.insert(Rect::from_xywh(0, 450, 1000, 100));  // spans all x bins
  auto hits = index_.query(Rect::from_xywh(0, 0, 1000, 1000));
  EXPECT_EQ(hits.size(), 1u);
}

TEST_F(RectIndexTest, ShapesOutsideExtentStillWork) {
  // Clamping keeps out-of-extent shapes queryable.
  index_.insert(Rect::from_xywh(-50, -50, 40, 40));
  EXPECT_TRUE(index_.violates_spacing(Rect::from_xywh(-45, -45, 10, 10), 0));
}

TEST(RectIndexValidationTest, RejectsBadConstruction) {
  EXPECT_THROW(RectIndex(Rect{}, 10), hsdl::CheckError);
  EXPECT_THROW(RectIndex(Rect::from_xywh(0, 0, 10, 10), 0), hsdl::CheckError);
}

TEST(RectIndexValidationTest, RejectsEmptyInsert) {
  RectIndex idx(Rect::from_xywh(0, 0, 100, 100), 10);
  EXPECT_THROW(idx.insert(Rect{}), hsdl::CheckError);
}

TEST(RectIndexStressTest, AgreesWithLinearScan) {
  hsdl::Rng rng(7);
  RectIndex idx(Rect::from_xywh(0, 0, 2000, 2000), 128);
  std::vector<Rect> all;
  for (int i = 0; i < 200; ++i) {
    Rect r = Rect::from_xywh(rng.uniform_int(0, 1900),
                             rng.uniform_int(0, 1900),
                             rng.uniform_int(5, 80), rng.uniform_int(5, 80));
    idx.insert(r);
    all.push_back(r);
  }
  for (int probe = 0; probe < 100; ++probe) {
    Rect q = Rect::from_xywh(rng.uniform_int(0, 1900),
                             rng.uniform_int(0, 1900),
                             rng.uniform_int(5, 120),
                             rng.uniform_int(5, 120));
    const Coord spacing = rng.uniform_int(0, 40);
    bool linear = false;
    for (const Rect& r : all)
      if (r.overlaps(q) || (spacing > 0 && rect_spacing(r, q) < spacing))
        linear = true;
    EXPECT_EQ(idx.violates_spacing(q, spacing), linear) << "probe " << probe;
  }
}

}  // namespace
}  // namespace hsdl::geom

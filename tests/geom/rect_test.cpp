#include "geom/rect.hpp"

#include <gtest/gtest.h>

namespace hsdl::geom {
namespace {

TEST(RectTest, FromXywh) {
  Rect r = Rect::from_xywh(10, 20, 30, 40);
  EXPECT_EQ(r.lo, (Point{10, 20}));
  EXPECT_EQ(r.hi, (Point{40, 60}));
  EXPECT_EQ(r.width(), 30);
  EXPECT_EQ(r.height(), 40);
}

TEST(RectTest, AreaAndEmpty) {
  EXPECT_EQ(Rect::from_xywh(0, 0, 5, 4).area(), 20);
  Rect degenerate{{5, 5}, {5, 10}};
  EXPECT_TRUE(degenerate.empty());
  EXPECT_EQ(degenerate.area(), 0);
  Rect inverted{{5, 5}, {0, 0}};
  EXPECT_TRUE(inverted.empty());
  EXPECT_EQ(inverted.area(), 0);
}

TEST(RectTest, Center) {
  EXPECT_EQ(Rect::from_xywh(0, 0, 10, 20).center(), (Point{5, 10}));
}

TEST(RectTest, ContainsPointClosedOpen) {
  Rect r = Rect::from_xywh(0, 0, 10, 10);
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9, 9}));
  EXPECT_FALSE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains(Point{5, 10}));
  EXPECT_FALSE(r.contains(Point{-1, 5}));
}

TEST(RectTest, ContainsRect) {
  Rect outer = Rect::from_xywh(0, 0, 10, 10);
  EXPECT_TRUE(outer.contains(Rect::from_xywh(2, 2, 3, 3)));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect::from_xywh(8, 8, 5, 5)));
  EXPECT_FALSE(outer.contains(Rect{{1, 1}, {1, 5}}));  // empty rect
}

TEST(RectTest, OverlapsInteriorsOnly) {
  Rect a = Rect::from_xywh(0, 0, 10, 10);
  EXPECT_TRUE(a.overlaps(Rect::from_xywh(5, 5, 10, 10)));
  // Touching edges do not overlap.
  EXPECT_FALSE(a.overlaps(Rect::from_xywh(10, 0, 5, 10)));
  EXPECT_FALSE(a.overlaps(Rect::from_xywh(0, 10, 10, 5)));
  EXPECT_FALSE(a.overlaps(Rect::from_xywh(20, 20, 5, 5)));
}

TEST(RectTest, IntersectBasics) {
  Rect a = Rect::from_xywh(0, 0, 10, 10);
  Rect b = Rect::from_xywh(5, 5, 10, 10);
  Rect i = a.intersect(b);
  EXPECT_EQ(i, Rect::from_xywh(5, 5, 5, 5));
  EXPECT_TRUE(a.intersect(Rect::from_xywh(20, 20, 5, 5)).empty());
  EXPECT_EQ(a.intersect(a), a);
}

TEST(RectTest, BboxUnion) {
  Rect a = Rect::from_xywh(0, 0, 2, 2);
  Rect b = Rect::from_xywh(10, 10, 2, 2);
  EXPECT_EQ(a.bbox_union(b), (Rect{{0, 0}, {12, 12}}));
  Rect empty;
  EXPECT_EQ(a.bbox_union(empty), a);
  EXPECT_EQ(empty.bbox_union(b), b);
}

TEST(RectTest, Inflated) {
  Rect r = Rect::from_xywh(10, 10, 10, 10);
  EXPECT_EQ(r.inflated(5), Rect::from_xywh(5, 5, 20, 20));
  EXPECT_EQ(r.inflated(-3), Rect::from_xywh(13, 13, 4, 4));
  EXPECT_TRUE(r.inflated(-6).empty());
}

TEST(RectTest, Shifted) {
  Rect r = Rect::from_xywh(1, 2, 3, 4);
  EXPECT_EQ(r.shifted({10, -2}), Rect::from_xywh(11, 0, 3, 4));
}

TEST(RectSpacingTest, DisjointAxisGap) {
  Rect a = Rect::from_xywh(0, 0, 10, 10);
  EXPECT_EQ(rect_spacing(a, Rect::from_xywh(15, 0, 5, 10)), 5);
  EXPECT_EQ(rect_spacing(a, Rect::from_xywh(0, 13, 10, 5)), 3);
}

TEST(RectSpacingTest, OverlapAndTouchAreZero) {
  Rect a = Rect::from_xywh(0, 0, 10, 10);
  EXPECT_EQ(rect_spacing(a, Rect::from_xywh(5, 5, 10, 10)), 0);
  EXPECT_EQ(rect_spacing(a, Rect::from_xywh(10, 0, 5, 10)), 0);
}

TEST(RectSpacingTest, DiagonalUsesMaxAxisGap) {
  Rect a = Rect::from_xywh(0, 0, 10, 10);
  Rect b = Rect::from_xywh(13, 17, 5, 5);
  EXPECT_EQ(rect_spacing(a, b), 7);
  EXPECT_EQ(rect_spacing(b, a), 7);  // symmetric
}

}  // namespace
}  // namespace hsdl::geom

#include "geom/polygon.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/check.hpp"
#include "geom/region.hpp"

namespace hsdl::geom {
namespace {

std::vector<Point> l_shape_ring() {
  // An L: 10x10 with the top-right 5x5 notch removed, CCW.
  return {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}};
}

TEST(RectilinearRingTest, AcceptsValidRings) {
  EXPECT_TRUE(is_rectilinear_ring(
      {{0, 0}, {4, 0}, {4, 4}, {0, 4}}));
  EXPECT_TRUE(is_rectilinear_ring(l_shape_ring()));
}

TEST(RectilinearRingTest, RejectsShortRings) {
  EXPECT_FALSE(is_rectilinear_ring({{0, 0}, {1, 0}, {1, 1}}));
  EXPECT_FALSE(is_rectilinear_ring({}));
}

TEST(RectilinearRingTest, RejectsDiagonalEdges) {
  EXPECT_FALSE(is_rectilinear_ring({{0, 0}, {4, 4}, {0, 4}, {0, 2}}));
}

TEST(RectilinearRingTest, RejectsCollinearVertices) {
  // Two consecutive horizontal edges.
  EXPECT_FALSE(is_rectilinear_ring(
      {{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 2}}));
}

TEST(PolygonTest, ConstructorValidates) {
  EXPECT_NO_THROW(Polygon{l_shape_ring()});
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}, {0, 2}, {0, 1}}), CheckError);
}

TEST(PolygonTest, FromRect) {
  Polygon p = Polygon::from_rect(Rect::from_xywh(1, 2, 3, 4));
  EXPECT_EQ(p.ring().size(), 4u);
  EXPECT_EQ(p.area(), 12);
  EXPECT_EQ(p.bbox(), Rect::from_xywh(1, 2, 3, 4));
}

TEST(PolygonTest, SignedAreaPositiveForCcw) {
  Polygon ccw({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_EQ(ccw.signed_area(), 16);
  Polygon cw({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  EXPECT_EQ(cw.signed_area(), -16);
  EXPECT_EQ(cw.area(), 16);
}

TEST(PolygonTest, LShapeArea) {
  Polygon l(l_shape_ring());
  EXPECT_EQ(l.area(), 75);  // 100 - 25 notch
}

TEST(PolygonTest, ContainsPoint) {
  Polygon l(l_shape_ring());
  EXPECT_TRUE(l.contains({2, 2}));
  EXPECT_TRUE(l.contains({8, 2}));   // in the foot
  EXPECT_TRUE(l.contains({2, 8}));   // in the leg
  EXPECT_FALSE(l.contains({8, 8}));  // in the notch
  EXPECT_FALSE(l.contains({-1, 2}));
  EXPECT_FALSE(l.contains({11, 2}));
}

TEST(PolygonTest, DecomposeCoversExactArea) {
  Polygon l(l_shape_ring());
  auto rects = l.decompose();
  ASSERT_FALSE(rects.empty());
  Area total = 0;
  for (const Rect& r : rects) {
    EXPECT_FALSE(r.empty());
    total += r.area();
  }
  EXPECT_EQ(total, l.area());
  // Rectangles must be pairwise disjoint.
  for (std::size_t i = 0; i < rects.size(); ++i)
    for (std::size_t j = i + 1; j < rects.size(); ++j)
      EXPECT_FALSE(rects[i].overlaps(rects[j]));
  // Union area agrees (no double counting).
  EXPECT_EQ(union_area(rects), l.area());
}

TEST(PolygonTest, DecomposeRectIsItself) {
  Polygon p = Polygon::from_rect(Rect::from_xywh(3, 4, 5, 6));
  auto rects = p.decompose();
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect::from_xywh(3, 4, 5, 6));
}

TEST(PolygonTest, DecomposeMatchesContainment) {
  Polygon l(l_shape_ring());
  auto rects = l.decompose();
  for (Coord y = -1; y <= 11; ++y) {
    for (Coord x = -1; x <= 11; ++x) {
      bool in_poly = l.contains({x, y});
      bool in_rects = false;
      for (const Rect& r : rects) in_rects |= r.contains(Point{x, y});
      EXPECT_EQ(in_poly, in_rects) << "at (" << x << "," << y << ")";
    }
  }
}

TEST(PolygonTest, ShiftedMovesEverything) {
  Polygon l(l_shape_ring());
  Polygon moved = l.shifted({100, 200});
  EXPECT_EQ(moved.area(), l.area());
  EXPECT_EQ(moved.bbox(), l.bbox().shifted({100, 200}));
  EXPECT_TRUE(moved.contains({102, 202}));
  EXPECT_FALSE(moved.contains({2, 2}));
}

TEST(PolygonTest, UShapeDecomposition) {
  // U shape: outer 12x10 minus inner 4x6 slot from the top.
  Polygon u({{0, 0},
             {12, 0},
             {12, 10},
             {8, 10},
             {8, 4},
             {4, 4},
             {4, 10},
             {0, 10}});
  EXPECT_EQ(u.area(), 120 - 24);
  auto rects = u.decompose();
  EXPECT_EQ(union_area(rects), u.area());
}

}  // namespace
}  // namespace hsdl::geom

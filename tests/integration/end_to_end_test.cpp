// Integration tests spanning the full pipeline: generator -> litho
// labeling -> GLF round trip -> feature tensors -> CNN with biased
// learning -> metrics, mirroring the paper's flow end to end at miniature
// scale.
#include <gtest/gtest.h>

#include <sstream>

#include "fte/feature_tensor.hpp"
#include "hotspot/benchmark_factory.hpp"
#include "hotspot/detector.hpp"
#include "layout/glf.hpp"
#include "layout/transform.hpp"
#include "litho/labeler.hpp"
#include "nn/serialize.hpp"

namespace hsdl {
namespace {

const layout::BenchmarkData& shared_bench() {
  static const layout::BenchmarkData data = [] {
    hotspot::BenchmarkSpec spec = hotspot::industry2_spec(0.004);
    return hotspot::build_benchmark(spec);
  }();
  return data;
}

TEST(EndToEndTest, BenchmarkThroughGlfRoundTrip) {
  const auto& bench = shared_bench();
  std::stringstream ss;
  layout::write_glf(ss, bench.train);
  auto loaded = layout::read_glf(ss);
  ASSERT_EQ(loaded.size(), bench.train.size());
  // Feature tensors of round-tripped clips are bit-identical.
  fte::FeatureTensorExtractor ex;
  for (std::size_t i = 0; i < loaded.size(); i += 29) {
    auto a = ex.extract(bench.train[i].clip);
    auto b = ex.extract(loaded[i].clip);
    EXPECT_EQ(a.data, b.data) << "clip " << i;
  }
}

TEST(EndToEndTest, DihedralAugmentationPreservesLabels) {
  // The label-invariance assumption behind hotspot augmentation, verified
  // against the actual litho labeler on real generated clips.
  const auto& bench = shared_bench();
  litho::HotspotLabeler labeler;
  int checked = 0, agreed = 0;
  for (std::size_t i = 0; i < bench.train.size() && checked < 6; i += 23) {
    const auto& lc = bench.train[i];
    for (layout::Dihedral op :
         {layout::Dihedral::kRot90, layout::Dihedral::kFlipX,
          layout::Dihedral::kTranspose}) {
      ++checked;
      agreed += labeler.label(layout::transformed(lc.clip, op)) == lc.label;
    }
  }
  // Pixel-grid asymmetries allow rare flips; the overwhelming majority
  // must agree.
  EXPECT_GE(agreed * 10, checked * 9);
}

TEST(EndToEndTest, FullDetectorPipelineOnFreshClips) {
  // Train on the benchmark, then classify newly generated clips that were
  // never part of any dataset, comparing against fresh litho labels.
  const auto& bench = shared_bench();
  hotspot::CnnDetectorConfig cfg;
  cfg.biased.rounds = 2;
  cfg.biased.initial.max_iters = 500;
  cfg.biased.initial.learning_rate = 8e-3;
  cfg.biased.initial.decay_step = 250;
  cfg.biased.initial.validate_every = 50;
  cfg.biased.finetune.max_iters = 80;
  hotspot::CnnDetector det(cfg);
  det.train(bench.train);

  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.45;
  layout::ClipGenerator gen(gen_cfg, 777);
  litho::HotspotLabeler labeler;
  hotspot::Confusion c;
  int labeled = 0;
  while (labeled < 40) {
    layout::Clip clip = gen.generate();
    auto label = labeler.label(clip);
    if (label == layout::HotspotLabel::kUnknown) continue;
    ++labeled;
    c.add(label == layout::HotspotLabel::kHotspot, det.predict(clip));
  }
  EXPECT_EQ(c.total(), 40u);
  // Sanity: meaningfully better than predicting one class everywhere.
  EXPECT_GT(c.tp + c.tn, 22u);
}

TEST(EndToEndTest, CheckpointReloadKeepsPredictions) {
  const auto& bench = shared_bench();
  hotspot::CnnDetectorConfig cfg;
  cfg.biased.rounds = 1;
  cfg.biased.initial.max_iters = 120;
  cfg.biased.initial.validate_every = 40;
  hotspot::CnnDetector a(cfg);
  a.train(bench.train);

  std::stringstream ss;
  nn::save_params(ss, a.model().net().params());
  hotspot::CnnDetector b(cfg);  // fresh weights
  nn::load_params(ss, b.model().net().params());

  for (std::size_t i = 0; i < bench.test.size(); i += 13)
    EXPECT_EQ(a.predict(bench.test[i].clip), b.predict(bench.test[i].clip));
}

TEST(EndToEndTest, OdstAccountingConsistent) {
  const auto& bench = shared_bench();
  hotspot::AdaBoostDensityDetector det;
  det.train(bench.train);
  hotspot::DetectorEval eval = det.evaluate(bench.test);
  EXPECT_DOUBLE_EQ(
      eval.odst(),
      10.0 * static_cast<double>(eval.confusion.detected()) +
          eval.eval_seconds);
}

}  // namespace
}  // namespace hsdl

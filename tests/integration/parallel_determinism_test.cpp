// Bitwise-determinism contract of the parallel substrate: every
// parallelized hot path must produce results identical to its serial
// execution for any thread count (threads split only disjoint outputs;
// reductions happen in a fixed order). These tests run each path at 1, 2,
// and 8 threads and require exact equality against the 1-thread result.
//
// The whole suite runs with metrics and tracing ENABLED: the
// observability layer promises that instrumentation only reads clocks
// and bumps atomics, so turning it on must not perturb a single bit of
// any result (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "fte/feature_tensor.hpp"
#include "hotspot/detector.hpp"
#include "hotspot/engine/engine.hpp"
#include "hotspot/scanner.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/tensor.hpp"

namespace hsdl {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Restores the default thread count AND runs the test body under full
/// instrumentation, proving telemetry never perturbs numerics.
struct ThreadCountGuard {
  ThreadCountGuard() {
    metrics::set_enabled(true);
    trace::set_enabled(true);
  }
  ~ThreadCountGuard() {
    set_num_threads(0);
    metrics::set_enabled(false);
    trace::set_enabled(false);
    trace::clear();
    metrics::reset();
  }
};

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " diverges at element " << i;
}

layout::Clip random_clip(geom::Coord side, Rng& rng) {
  layout::Clip clip;
  clip.window = geom::Rect::from_xywh(0, 0, side, side);
  const std::size_t shapes = 8 + rng.index(8);
  for (std::size_t s = 0; s < shapes; ++s) {
    const geom::Coord w = 20 + static_cast<geom::Coord>(rng.index(120));
    const geom::Coord h = 20 + static_cast<geom::Coord>(rng.index(120));
    const geom::Coord x = static_cast<geom::Coord>(rng.index(
        static_cast<std::size_t>(side - w)));
    const geom::Coord y = static_cast<geom::Coord>(rng.index(
        static_cast<std::size_t>(side - h)));
    clip.shapes.push_back(geom::Rect::from_xywh(x, y, w, h));
  }
  return clip;
}

TEST(ParallelDeterminismTest, GemmMatchesSerialAtAnyThreadCount) {
  ThreadCountGuard guard;
  Rng rng(7);
  // Large enough for the blocked path; k = 300 crosses a KC boundary.
  struct Shape {
    bool ta, tb;
    std::size_t m, n, k;
  };
  const Shape shapes[] = {{false, false, 70, 90, 130},
                          {false, true, 64, 64, 300},
                          {true, false, 96, 33, 128}};
  for (const Shape& s : shapes) {
    const std::vector<float> a = random_vec(s.m * s.k, rng);
    const std::vector<float> b = random_vec(s.k * s.n, rng);
    const std::vector<float> c0 = random_vec(s.m * s.n, rng);
    const std::size_t lda = s.ta ? s.m : s.k;
    const std::size_t ldb = s.tb ? s.k : s.n;
    std::vector<float> reference;
    for (std::size_t threads : kThreadCounts) {
      set_num_threads(threads);
      std::vector<float> c = c0;
      nn::gemm(s.ta, s.tb, s.m, s.n, s.k, 1.25f, a.data(), lda, b.data(),
               ldb, 0.5f, c.data(), s.n);
      if (reference.empty())
        reference = c;
      else
        expect_bitwise_equal(c, reference, "gemm");
    }
  }
}

TEST(ParallelDeterminismTest, Conv2dForwardBackwardMatchesSerial) {
  ThreadCountGuard guard;
  Rng rng(11);
  nn::Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 5;
  const nn::Tensor x = nn::Tensor::from_data({6, 3, 16, 16},
                                             random_vec(6 * 3 * 16 * 16,
                                                        rng));
  const nn::Tensor g = nn::Tensor::from_data({6, 5, 16, 16},
                                             random_vec(6 * 5 * 16 * 16,
                                                        rng));
  Rng init(3);
  nn::Conv2d conv(config, init);
  std::vector<float> out_ref, gin_ref, dw_ref, db_ref, infer_ref;
  for (std::size_t threads : kThreadCounts) {
    set_num_threads(threads);
    conv.zero_grad();
    const nn::Tensor out = conv.forward(x, /*train=*/true);
    const nn::Tensor gin = conv.backward(g);
    const nn::Tensor inf = conv.infer(x);
    expect_bitwise_equal(out.vec(), inf.vec(), "conv infer vs forward");
    if (out_ref.empty()) {
      out_ref = out.vec();
      gin_ref = gin.vec();
      dw_ref = conv.weight().grad.vec();
      db_ref = conv.bias().grad.vec();
    } else {
      expect_bitwise_equal(out.vec(), out_ref, "conv forward");
      expect_bitwise_equal(gin.vec(), gin_ref, "conv grad_input");
      expect_bitwise_equal(conv.weight().grad.vec(), dw_ref, "conv dW");
      expect_bitwise_equal(conv.bias().grad.vec(), db_ref, "conv db");
    }
  }
}

TEST(ParallelDeterminismTest, FeatureBatchMatchesSerialExtraction) {
  ThreadCountGuard guard;
  Rng rng(23);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < 10; ++i) clips.push_back(random_clip(480, rng));

  fte::FeatureTensorConfig config;
  config.blocks_per_side = 12;
  config.coeffs = 16;
  config.nm_per_px = 2.0;
  const fte::FeatureTensorExtractor extractor(config);

  set_num_threads(1);
  std::vector<std::vector<float>> reference;
  for (const layout::Clip& clip : clips)
    reference.push_back(extractor.extract(clip).data);

  for (std::size_t threads : kThreadCounts) {
    set_num_threads(threads);
    const std::vector<fte::FeatureTensor> batch =
        extractor.extract_batch(clips);
    ASSERT_EQ(batch.size(), clips.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      expect_bitwise_equal(batch[i].data, reference[i], "feature tensor");
  }
}

hotspot::CnnDetectorConfig small_detector_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 8;
  config.feature.nm_per_px = 4.0;  // 1200 nm window -> 300 px raster
  config.cnn.stage1_maps = 4;
  config.cnn.stage2_maps = 4;
  config.cnn.fc_nodes = 8;
  return config;
}

TEST(ParallelDeterminismTest, ScanReportMatchesSerialScan) {
  ThreadCountGuard guard;
  Rng rng(31);
  std::vector<geom::Rect> shapes;
  for (std::size_t i = 0; i < 60; ++i) {
    const geom::Coord w = 40 + static_cast<geom::Coord>(rng.index(400));
    const geom::Coord h = 40 + static_cast<geom::Coord>(rng.index(400));
    shapes.push_back(geom::Rect::from_xywh(
        static_cast<geom::Coord>(rng.index(2000)),
        static_cast<geom::Coord>(rng.index(2000)), w, h));
  }
  const layout::Layout chip(geom::Rect::from_xywh(0, 0, 2400, 2400),
                            std::move(shapes));

  // Untrained (deterministically initialized) CNN detector: probabilities
  // hover near 0.5, so hit membership itself exercises exact comparisons.
  hotspot::CnnDetector detector(small_detector_config());
  const hotspot::ChipScanner scanner(hotspot::ScanConfig{1200, 600});

  set_num_threads(1);
  const hotspot::ScanReport reference = scanner.scan(chip, detector);
  EXPECT_EQ(reference.windows_scanned, 9u);

  for (std::size_t threads : kThreadCounts) {
    set_num_threads(threads);
    const hotspot::ScanReport report = scanner.scan(chip, detector);
    EXPECT_EQ(report.windows_scanned, reference.windows_scanned);
    ASSERT_EQ(report.hits.size(), reference.hits.size());
    for (std::size_t i = 0; i < report.hits.size(); ++i) {
      EXPECT_EQ(report.hits[i].window, reference.hits[i].window);
      EXPECT_EQ(report.hits[i].probability,
                reference.hits[i].probability);  // bitwise
    }
  }
}

TEST(ParallelDeterminismTest, PredictProbabilitiesMatchSingleClipPath) {
  ThreadCountGuard guard;
  Rng rng(41);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < 6; ++i) clips.push_back(random_clip(1200, rng));

  hotspot::CnnDetector detector(small_detector_config());
  set_num_threads(1);
  std::vector<double> reference(clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i)
    reference[i] = detector.predict_probability(clips[i]);

  for (std::size_t threads : kThreadCounts) {
    set_num_threads(threads);
    const std::vector<double> probs = detector.predict_probabilities(clips);
    ASSERT_EQ(probs.size(), reference.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(probs[i], reference[i]) << "clip " << i;
      EXPECT_EQ(detector.predict(clips[i]),
                probs[i] > detector.decision_threshold());
    }
  }
}

TEST(ParallelDeterminismTest, EngineBatchedScoringMatchesSerialPerClip) {
  ThreadCountGuard guard;
  Rng rng(53);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < 10; ++i)
    clips.push_back(random_clip(1200, rng));

  hotspot::CnnDetector detector(small_detector_config());
  set_num_threads(1);
  std::vector<double> reference(clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i)
    reference[i] = detector.predict_probability(clips[i]);

  // The engine's batch composition is timing-dependent (adaptive
  // micro-batching), so bitwise equality here proves the per-sample
  // arithmetic is independent of both batching AND thread count.
  for (std::size_t threads : kThreadCounts) {
    set_num_threads(threads);
    hotspot::EngineConfig config;
    config.max_batch = 4;  // forces the 10 clips across >= 3 batches
    hotspot::InferenceEngine engine(detector, config);
    const std::vector<double> probs = engine.score(clips);
    ASSERT_EQ(probs.size(), reference.size());
    for (std::size_t i = 0; i < probs.size(); ++i)
      EXPECT_EQ(probs[i], reference[i])
          << "clip " << i << " at " << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, EngineRoutedScanMatchesDetectorScan) {
  ThreadCountGuard guard;
  Rng rng(59);
  std::vector<geom::Rect> shapes;
  for (std::size_t i = 0; i < 60; ++i) {
    const geom::Coord w = 40 + static_cast<geom::Coord>(rng.index(400));
    const geom::Coord h = 40 + static_cast<geom::Coord>(rng.index(400));
    shapes.push_back(geom::Rect::from_xywh(
        static_cast<geom::Coord>(rng.index(2000)),
        static_cast<geom::Coord>(rng.index(2000)), w, h));
  }
  const layout::Layout chip(geom::Rect::from_xywh(0, 0, 2400, 2400),
                            std::move(shapes));
  hotspot::CnnDetector detector(small_detector_config());
  const hotspot::ChipScanner scanner(hotspot::ScanConfig{1200, 600});

  set_num_threads(1);
  const hotspot::ScanReport reference = scanner.scan(chip, detector);

  for (std::size_t threads : kThreadCounts) {
    set_num_threads(threads);
    hotspot::InferenceEngine engine(detector);
    const hotspot::ScanReport report = scanner.scan(chip, engine);
    EXPECT_EQ(report.windows_scanned, reference.windows_scanned);
    ASSERT_EQ(report.hits.size(), reference.hits.size());
    for (std::size_t i = 0; i < report.hits.size(); ++i) {
      EXPECT_EQ(report.hits[i].window, reference.hits[i].window);
      EXPECT_EQ(report.hits[i].probability,
                reference.hits[i].probability);  // bitwise
    }
  }
}

}  // namespace
}  // namespace hsdl

#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace hsdl {
namespace {

TEST(JsonValueTest, KindsAndAccessors) {
  EXPECT_TRUE(json::Value().is_null());
  EXPECT_TRUE(json::Value(true).is_bool());
  EXPECT_TRUE(json::Value(3.5).is_number());
  EXPECT_TRUE(json::Value(42).is_number());
  EXPECT_TRUE(json::Value("s").is_string());
  EXPECT_TRUE(json::Value::array().is_array());
  EXPECT_TRUE(json::Value::object().is_object());

  EXPECT_EQ(json::Value(true).as_bool(), true);
  EXPECT_DOUBLE_EQ(json::Value(3.5).as_number(), 3.5);
  EXPECT_DOUBLE_EQ(json::Value(std::size_t{7}).as_number(), 7.0);
  EXPECT_EQ(json::Value("abc").as_string(), "abc");
}

TEST(JsonValueTest, AccessorKindMismatchThrows) {
  EXPECT_THROW(json::Value(1.0).as_string(), CheckError);
  EXPECT_THROW(json::Value("x").as_number(), CheckError);
  EXPECT_THROW(json::Value().as_bool(), CheckError);
}

TEST(JsonValueTest, ObjectSetReplacesAndFinds) {
  json::Value obj = json::Value::object();
  obj.set("a", json::Value(1));
  obj.set("b", json::Value(2));
  obj.set("a", json::Value(3));  // replace, not duplicate
  EXPECT_EQ(obj.size(), 2u);
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(obj.find("a")->as_number(), 3.0);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonValueTest, DumpCompact) {
  json::Value obj = json::Value::object();
  obj.set("n", json::Value(5));
  obj.set("x", json::Value(0.5));
  obj.set("s", json::Value("hi\n\"q\""));
  obj.set("b", json::Value(false));
  json::Value arr = json::Value::array();
  arr.push_back(json::Value(1));
  arr.push_back(json::Value());
  obj.set("a", std::move(arr));
  EXPECT_EQ(obj.dump(),
            "{\"n\":5,\"x\":0.5,\"s\":\"hi\\n\\\"q\\\"\",\"b\":false,"
            "\"a\":[1,null]}");
}

TEST(JsonValueTest, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(json::Value(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
  EXPECT_EQ(json::Value(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(JsonValueTest, RoundTripsThroughParse) {
  json::Value obj = json::Value::object();
  obj.set("iter", json::Value(1200));
  obj.set("loss", json::Value(0.0625));
  obj.set("tag", json::Value("a/b \\ \u0001"));
  obj.set("ok", json::Value(true));
  const json::Value back = json::parse(obj.dump());
  ASSERT_TRUE(back.is_object());
  EXPECT_DOUBLE_EQ(back.find("iter")->as_number(), 1200.0);
  EXPECT_DOUBLE_EQ(back.find("loss")->as_number(), 0.0625);
  EXPECT_EQ(back.find("tag")->as_string(), obj.find("tag")->as_string());
  EXPECT_EQ(back.find("ok")->as_bool(), true);
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(json::parse("  \"x\"  ").as_string(), "x");
}

TEST(JsonParseTest, UnicodeEscapes) {
  EXPECT_EQ(json::parse("\"\\u0041\"").as_string(), "A");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(json::parse("\"\\uD83D\\uDE00\"").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, NestedStructures) {
  const json::Value v = json::parse(R"({"a":[1,{"b":[[]]}],"c":{}})");
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 2u);
  EXPECT_TRUE(a->items()[1].find("b")->items()[0].is_array());
}

TEST(JsonParseTest, MalformedInputThrows) {
  EXPECT_THROW(json::parse(""), CheckError);
  EXPECT_THROW(json::parse("{"), CheckError);
  EXPECT_THROW(json::parse("[1,]"), CheckError);
  EXPECT_THROW(json::parse("{\"a\":1,}"), CheckError);
  EXPECT_THROW(json::parse("nul"), CheckError);
  EXPECT_THROW(json::parse("01"), CheckError);
  EXPECT_THROW(json::parse("\"unterminated"), CheckError);
  EXPECT_THROW(json::parse("1 2"), CheckError);  // trailing garbage
  EXPECT_THROW(json::parse("\"bad \\q escape\""), CheckError);
}

TEST(JsonParseTest, DepthCapStopsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(json::parse(deep), CheckError);
}

TEST(JsonEscapeTest, ControlCharactersAndQuotes) {
  EXPECT_EQ(json::escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json::escape(std::string_view("\x01\t", 2)), "\"\\u0001\\t\"");
}

}  // namespace
}  // namespace hsdl

#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <regex>
#include <thread>
#include <vector>

namespace hsdl {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_sink({});
    set_log_level(LogLevel::kInfo);
  }
};

/// Captures formatted lines through the sink hook (sink calls are
/// serialized by the logging mutex, so no extra locking is needed to
/// append — but the vector is also read from the test thread, so guard
/// anyway).
struct Capture {
  std::mutex mu;
  std::vector<std::pair<LogLevel, std::string>> lines;

  void install() {
    set_log_sink([this](LogLevel level, const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.emplace_back(level, line);
    });
  }
  std::size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return lines.size();
  }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, LevelFilteringDropsBelowThreshold) {
  Capture cap;
  cap.install();
  set_log_level(LogLevel::kWarn);
  HSDL_LOG(kDebug) << "dropped";
  HSDL_LOG(kInfo) << "dropped too";
  HSDL_LOG(kWarn) << "kept";
  HSDL_LOG(kError) << "kept too";
  ASSERT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap.lines[0].first, LogLevel::kWarn);
  EXPECT_EQ(cap.lines[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, PrefixCarriesLevelTimestampAndThreadId) {
  Capture cap;
  cap.install();
  set_log_level(LogLevel::kDebug);
  HSDL_LOG(kWarn) << "payload 42";
  ASSERT_EQ(cap.size(), 1u);
  // [WARN      1.042617 t03] payload 42
  const std::regex prefix(
      R"(^\[WARN  +[0-9]+\.[0-9]{6} t[0-9]{2,}\] payload 42$)");
  EXPECT_TRUE(std::regex_match(cap.lines[0].second, prefix))
      << "line: " << cap.lines[0].second;
}

TEST_F(LoggingTest, MultiLineMessagesArePrefixedPerLine) {
  Capture cap;
  cap.install();
  HSDL_LOG(kInfo) << "first\nsecond";
  ASSERT_EQ(cap.size(), 2u);
  EXPECT_NE(cap.lines[0].second.find("first"), std::string::npos);
  EXPECT_NE(cap.lines[1].second.find("second"), std::string::npos);
  EXPECT_EQ(cap.lines[1].second[0], '[');  // second line is prefixed too
}

TEST_F(LoggingTest, ConcurrentWritersNeverInterleave) {
  Capture cap;
  cap.install();
  constexpr std::size_t kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i)
        HSDL_LOG(kInfo) << "aaaaaaaaaa bbbbbbbbbb cccccccccc " << i;
    });
  for (std::thread& w : workers) w.join();
  ASSERT_EQ(cap.size(), kThreads * kPerThread);
  // Each line must be exactly one whole message: prefix + full payload,
  // never a fragment of another writer's text.
  const std::regex whole(
      R"(^\[INFO  +[0-9]+\.[0-9]{6} t[0-9]{2,}\] )"
      R"(aaaaaaaaaa bbbbbbbbbb cccccccccc [0-9]+$)");
  for (const auto& [level, line] : cap.lines) {
    EXPECT_TRUE(std::regex_match(line, whole)) << "torn line: " << line;
  }
}

TEST_F(LoggingTest, TimestampsAreMonotonicPerThread) {
  Capture cap;
  cap.install();
  HSDL_LOG(kInfo) << "a";
  HSDL_LOG(kInfo) << "b";
  ASSERT_EQ(cap.size(), 2u);
  auto stamp = [](const std::string& line) {
    // Prefix layout: [LEVEL seconds tNN] — the timestamp is field 2.
    const std::size_t space = line.find(' ');
    return std::stod(line.substr(space));
  };
  EXPECT_LE(stamp(cap.lines[0].second), stamp(cap.lines[1].second));
}

TEST_F(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);   // case-insensitive
  EXPECT_EQ(parse_log_level("Debug"), LogLevel::kDebug);
}

TEST_F(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
  EXPECT_EQ(parse_log_level("warn "), std::nullopt);
}

TEST_F(LoggingTest, SetLogLevelOverridesEnvironmentDefault) {
  // Whatever HSDL_LOG_LEVEL resolved to at first use, an explicit
  // set_log_level wins from then on.
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, StreamsArbitraryTypes) {
  Capture cap;
  cap.install();
  HSDL_LOG(kInfo) << "int " << 1 << " double " << 2.5 << " str "
                  << std::string("s");
  ASSERT_EQ(cap.size(), 1u);
  EXPECT_NE(cap.lines[0].second.find("int 1 double 2.5 str s"),
            std::string::npos);
}

TEST_F(LoggingTest, LevelOrderingIsMonotonic) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace hsdl

#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace hsdl {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, EmitBelowThresholdDoesNotCrash) {
  set_log_level(LogLevel::kError);
  HSDL_LOG(kDebug) << "suppressed " << 42;
  HSDL_LOG(kInfo) << "also suppressed";
}

TEST_F(LoggingTest, EmitAtThresholdDoesNotCrash) {
  set_log_level(LogLevel::kError);
  HSDL_LOG(kError) << "emitted " << 3.14;
}

TEST_F(LoggingTest, StreamsArbitraryTypes) {
  set_log_level(LogLevel::kError);  // keep test output clean
  HSDL_LOG(kInfo) << "int " << 1 << " double " << 2.5 << " str "
                  << std::string("s");
}

TEST_F(LoggingTest, LevelOrderingIsMonotonic) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace hsdl

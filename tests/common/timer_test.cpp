#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace hsdl {
namespace {

TEST(WallTimerTest, StartsNearZero) {
  WallTimer t;
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(WallTimerTest, Monotonic) {
  WallTimer t;
  double a = t.seconds();
  double b = t.seconds();
  EXPECT_GE(b, a);
}

TEST(WallTimerTest, MeasuresSleep) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GE(t.millis(), 25.0);
  EXPECT_LT(t.millis(), 2000.0);
}

TEST(WallTimerTest, ResetRestarts) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  t.reset();
  EXPECT_LT(t.millis(), 25.0);
}

TEST(WallTimerTest, MillisMatchesSeconds) {
  WallTimer t;
  double s = t.seconds();
  double ms = t.millis();
  EXPECT_NEAR(ms, s * 1e3, 10.0);
}

TEST(WallTimerTest, MonotonicAcrossManyReads) {
  WallTimer t;
  double prev = t.seconds();
  for (int i = 0; i < 1000; ++i) {
    const double cur = t.seconds();
    ASSERT_GE(cur, prev);
    prev = cur;
  }
}

TEST(WallTimerTest, ResetIsRepeatable) {
  WallTimer t;
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.reset();
    EXPECT_LT(t.millis(), 5.0);
  }
}

}  // namespace
}  // namespace hsdl

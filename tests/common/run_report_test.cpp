#include "common/run_report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"

namespace hsdl {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(JsonlStreamTest, DefaultConstructedIsDisabled) {
  telemetry::JsonlStream stream;
  EXPECT_FALSE(stream.enabled());
  stream.emit(json::Value::object());  // no-op, must not crash
}

TEST(JsonlStreamTest, EmptyPathIsDisabled) {
  telemetry::JsonlStream stream{std::string()};
  EXPECT_FALSE(stream.enabled());
}

TEST(JsonlStreamTest, EveryLineParsesAsJson) {
  const std::string path = temp_path("hsdl_jsonl_test.jsonl");
  {
    telemetry::JsonlStream stream(path);
    ASSERT_TRUE(stream.enabled());
    for (int i = 0; i < 5; ++i) {
      json::Value rec = json::Value::object();
      rec.set("event", json::Value("iteration"));
      rec.set("iter", json::Value(i));
      stream.emit(rec);
    }
  }
  std::istringstream lines(slurp(path));
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    const json::Value rec = json::parse(line);
    ASSERT_TRUE(rec.is_object());
    EXPECT_EQ(rec.find("event")->as_string(), "iteration");
    EXPECT_DOUBLE_EQ(rec.find("iter")->as_number(), static_cast<double>(n));
    ++n;
  }
  EXPECT_EQ(n, 5);
  std::filesystem::remove(path);
}

TEST(JsonlStreamTest, ConcurrentEmittersNeverInterleaveLines) {
  const std::string path = temp_path("hsdl_jsonl_threads.jsonl");
  constexpr std::size_t kThreads = 4;
  constexpr int kPerThread = 200;
  {
    telemetry::JsonlStream stream(path);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t)
      workers.emplace_back([&stream, t] {
        for (int i = 0; i < kPerThread; ++i) {
          json::Value rec = json::Value::object();
          rec.set("thread", json::Value(t));
          rec.set("i", json::Value(i));
          stream.emit(rec);
        }
      });
    for (std::thread& w : workers) w.join();
  }
  std::istringstream lines(slurp(path));
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NO_THROW(json::parse(line)) << "corrupt line: " << line;
    ++n;
  }
  EXPECT_EQ(n, kThreads * kPerThread);
  std::filesystem::remove(path);
}

TEST(JsonlStreamTest, ReopeningTruncates) {
  const std::string path = temp_path("hsdl_jsonl_trunc.jsonl");
  {
    telemetry::JsonlStream stream(path);
    json::Value rec = json::Value::object();
    rec.set("run", json::Value(1));
    stream.emit(rec);
  }
  {
    telemetry::JsonlStream stream(path);
    json::Value rec = json::Value::object();
    rec.set("run", json::Value(2));
    stream.emit(rec);
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content, "{\"run\":2}\n");
  std::filesystem::remove(path);
}

TEST(RunReportTest, ContainsSchemaKindSectionsAndMetrics) {
  metrics::set_enabled(true);
  metrics::counter("test.report.counter").add(3);

  telemetry::RunReport report("train");
  json::Value section = json::Value::object();
  section.set("iters", json::Value(100));
  report.add("result", std::move(section));
  report.add("note", json::Value("hello"));

  const json::Value doc = json::parse(report.to_json().dump());
  metrics::set_enabled(false);
  metrics::reset();

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "hsdl-run-report-v1");
  EXPECT_EQ(doc.find("kind")->as_string(), "train");
  EXPECT_DOUBLE_EQ(doc.find("result")->find("iters")->as_number(), 100.0);
  EXPECT_EQ(doc.find("note")->as_string(), "hello");
  const json::Value* m = doc.find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(
      m->find("counters")->find("test.report.counter")->as_number(), 3.0);
  const json::Value* tr = doc.find("trace");
  ASSERT_NE(tr, nullptr);
  EXPECT_TRUE(tr->find("events")->is_number());
  EXPECT_TRUE(tr->find("dropped")->is_number());
}

TEST(RunReportTest, WriteProducesParseableFile) {
  const std::string path = temp_path("hsdl_run_report.json");
  telemetry::RunReport report("scan");
  report.add("windows", json::Value(42));
  report.write(path);
  const json::Value doc = json::parse(slurp(path));
  EXPECT_EQ(doc.find("kind")->as_string(), "scan");
  EXPECT_DOUBLE_EQ(doc.find("windows")->as_number(), 42.0);
  std::filesystem::remove(path);
}

TEST(RunReportPathTest, EmptyWhenEnvUnset) {
  // HSDL_RUN_REPORT is not set in the test environment.
  EXPECT_EQ(telemetry::run_report_path_from_env(), "");
}

}  // namespace
}  // namespace hsdl

#include "common/io.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/check.hpp"

namespace hsdl::io {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string s = "feature tensor generation and deep biased learning";
  for (std::size_t cut = 0; cut <= s.size(); ++cut) {
    const std::uint32_t partial =
        crc32(s.substr(cut), crc32(s.substr(0, cut)));
    EXPECT_EQ(partial, crc32(s)) << "cut at " << cut;
  }
}

TEST(Crc32Test, SingleBitFlipAlwaysChangesChecksum) {
  const std::string s = "GLF body bytes under test";
  const std::uint32_t base = crc32(s);
  for (std::size_t i = 0; i < s.size(); ++i)
    for (int b = 0; b < 8; ++b) {
      std::string m = s;
      m[i] = static_cast<char>(m[i] ^ (1 << b));
      EXPECT_NE(crc32(m), base) << "flip byte " << i << " bit " << b;
    }
}

TEST(ByteWriterTest, LittleEndianGoldenBytes) {
  ByteWriter w;
  w.u16(0x0102);
  w.u32(0x03040506u);
  w.u64(0x0708090A0B0C0D0EULL);
  w.f32(1.0f);  // IEEE-754: 0x3F800000
  const std::string& b = w.buffer();
  const unsigned char expect[] = {0x02, 0x01, 0x06, 0x05, 0x04, 0x03,
                                  0x0E, 0x0D, 0x0C, 0x0B, 0x0A, 0x09,
                                  0x08, 0x07, 0x00, 0x00, 0x80, 0x3F};
  ASSERT_EQ(b.size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i)
    EXPECT_EQ(static_cast<unsigned char>(b[i]), expect[i]) << "byte " << i;
}

TEST(ByteReaderTest, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f32(-2.5f);
  const float fs[3] = {0.0f, 1.5f, -3.25f};
  w.f32_array(fs, 3);
  w.str("hello");
  ByteReader r(w.buffer(), "test");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_FLOAT_EQ(r.f32(), -2.5f);
  float back[3];
  r.f32_array(back, 3);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(back[i], fs[i]);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.at_end());
  r.expect_end();
}

TEST(ByteReaderTest, F64RoundTripPreservesBits) {
  // f64 carries checkpointed learning rates, scores and RNG caches:
  // every value class must survive bit-exactly, including non-finites.
  const double values[] = {0.0,
                           -0.0,
                           1.5,
                           -3.141592653589793,
                           1e300,
                           5e-324,  // smallest subnormal
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  ByteWriter w;
  for (double v : values) w.f64(v);
  ByteReader r(w.buffer(), "test");
  for (double v : values)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(v));
  r.expect_end();
}

TEST(ByteWriterTest, F64IsLittleEndian) {
  ByteWriter w;
  w.f64(1.0);  // IEEE-754: 0x3FF0000000000000
  const std::string& b = w.buffer();
  ASSERT_EQ(b.size(), 8u);
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(static_cast<unsigned char>(b[i]), 0x00) << "byte " << i;
  EXPECT_EQ(static_cast<unsigned char>(b[6]), 0xF0);
  EXPECT_EQ(static_cast<unsigned char>(b[7]), 0x3F);
}

TEST(ByteReaderTest, BigEndianAccessors) {
  const unsigned char raw[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                               0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C,
                               0x0D, 0x0E};
  ByteReader r(std::string_view(reinterpret_cast<const char*>(raw),
                                sizeof(raw)),
               "be");
  EXPECT_EQ(r.u16_be(), 0x0102);
  EXPECT_EQ(r.u32_be(), 0x03040506u);
  EXPECT_EQ(r.u64_be(), 0x0708090A0B0C0D0EULL);
}

TEST(ByteReaderTest, TruncationThrowsPositionedIoError) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.buffer(), "ckpt");
  r.u8();
  try {
    r.u32();
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.offset(), 1u);
    EXPECT_EQ(e.context(), "ckpt");
    EXPECT_NE(std::string(e.what()).find("byte 1"), std::string::npos);
  }
}

TEST(ByteReaderTest, TrailingDataRejected) {
  ByteWriter w;
  w.u32(1);
  w.u8(0);
  ByteReader r(w.buffer(), "test");
  r.u32();
  EXPECT_THROW(r.expect_end(), IoError);
}

TEST(ByteReaderTest, ImplausibleStringLengthRejected) {
  ByteWriter w;
  w.u32(0xFFFFFFFFu);  // length prefix far beyond the buffer
  EXPECT_THROW(ByteReader(w.buffer(), "test").str(), IoError);
}

TEST(ByteReaderTest, IoErrorIsACheckError) {
  ByteReader r("", "test");
  EXPECT_THROW(r.u8(), CheckError);
}

TEST(FormatHeaderTest, RoundTrip) {
  ByteWriter w;
  write_format_header(w, "HSDLXYZ1", 3, 0x11);
  EXPECT_EQ(w.size(), kFormatHeaderSize);
  ByteReader r(w.buffer(), "test");
  const FormatHeader h = read_format_header(r, "HSDLXYZ1", 1, 5);
  EXPECT_EQ(h.version, 3u);
  EXPECT_EQ(h.flags, 0x11u);
}

TEST(FormatHeaderTest, BadMagicRejected) {
  ByteWriter w;
  write_format_header(w, "HSDLXYZ1", 1, 0);
  ByteReader r(w.buffer(), "test");
  EXPECT_THROW(read_format_header(r, "HSDLABC1", 1, 5), IoError);
}

TEST(FormatHeaderTest, VersionOutOfRangeRejected) {
  ByteWriter w;
  write_format_header(w, "HSDLXYZ1", 9, 0);
  ByteReader r(w.buffer(), "test");
  EXPECT_THROW(read_format_header(r, "HSDLXYZ1", 1, 5), IoError);
}

TEST(AtomicWriteTest, CreatesAndReplaces) {
  const std::string path = ::testing::TempDir() + "/atomic_io_test.bin";
  atomic_write_file(path, "first");
  EXPECT_EQ(read_file(path), "first");
  atomic_write_file(path, "second payload");
  EXPECT_EQ(read_file(path), "second payload");
  // No temp file is left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, SimulatedCrashBeforeRenameLeavesTargetIntact) {
  const std::string path = ::testing::TempDir() + "/atomic_crash_test.bin";
  atomic_write_file(path, "good payload");
  // A crash mid-save leaves a partial temp file but never touches the
  // target; the next save simply overwrites the stale temp.
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary);
    tmp << "partial gar";
  }
  EXPECT_EQ(read_file(path), "good payload");
  atomic_write_file(path, "newer payload");
  EXPECT_EQ(read_file(path), "newer payload");
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(atomic_write_file("/nonexistent-dir/x.bin", "data"), IoError);
}

TEST(ReadFileTest, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/file.bin"), IoError);
}

}  // namespace
}  // namespace hsdl::io

#include "common/cpuinfo.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hsdl::cpu {
namespace {

/// Restores the force-scalar flag on scope exit so tests cannot leak the
/// override into the rest of the binary.
class ForceScalarRestore {
 public:
  ForceScalarRestore() : prev_(force_scalar()) {}
  ~ForceScalarRestore() { set_force_scalar(prev_); }

 private:
  bool prev_;
};

TEST(CpuInfoTest, ActiveIsaNamesTheDispatchPath) {
  const std::string isa = active_isa();
  if (has_avx2_fma()) {
    EXPECT_EQ(isa, "avx2");
  } else {
    EXPECT_EQ(isa, "scalar");
  }
}

TEST(CpuInfoTest, ForceScalarDisablesAvx2) {
  ForceScalarRestore restore;
  set_force_scalar(true);
  EXPECT_TRUE(force_scalar());
  EXPECT_FALSE(has_avx2_fma());
  EXPECT_EQ(std::string(active_isa()), "scalar");
}

TEST(CpuInfoTest, UnforcingRestoresHostDetection) {
  ForceScalarRestore restore;
  set_force_scalar(true);
  ASSERT_FALSE(has_avx2_fma());
  set_force_scalar(false);
  EXPECT_FALSE(force_scalar());
  // With the override off the answer is purely host capability; it must
  // be stable from call to call.
  const bool first = has_avx2_fma();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(has_avx2_fma(), first);
}

TEST(CpuInfoTest, ToggleIsIdempotent) {
  ForceScalarRestore restore;
  for (int i = 0; i < 3; ++i) {
    set_force_scalar(true);
    EXPECT_TRUE(force_scalar());
    set_force_scalar(false);
    EXPECT_FALSE(force_scalar());
  }
}

}  // namespace
}  // namespace hsdl::cpu

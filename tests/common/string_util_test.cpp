#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace hsdl {
namespace {

TEST(SplitTest, BasicDelimiter) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterIsSingleField) {
  auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitTest, EmptyStringIsOneEmptyField) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWsTest, CollapsesRuns) {
  auto parts = split_ws("  foo \t bar\n baz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWsTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n ").empty());
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(starts_with("CLIP 1 2", "CLIP"));
  EXPECT_FALSE(starts_with("CLI", "CLIP"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(StrfmtTest, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("%s", "plain"), "plain");
}

TEST(StrfmtTest, EmptyFormat) { EXPECT_EQ(strfmt("%s", ""), ""); }

TEST(StrfmtTest, LongOutput) {
  std::string big(500, 'x');
  EXPECT_EQ(strfmt("%s", big.c_str()).size(), 500u);
}

}  // namespace
}  // namespace hsdl

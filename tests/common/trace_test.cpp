#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/json.hpp"

namespace hsdl {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::clear();
    trace::set_enabled(true);
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
  }
};

// Schema check shared by the tests below: the export must load as Chrome
// trace-event JSON — a top-level object with a "traceEvents" array of
// complete events ("ph":"X") carrying name/ts/dur/pid/tid.
void check_chrome_trace_schema(const json::Value& doc,
                               std::size_t expected_events) {
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->size(), expected_events);
  for (const json::Value& e : events->items()) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("name"), nullptr);
    EXPECT_TRUE(e.find("name")->is_string());
    ASSERT_NE(e.find("ph"), nullptr);
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    ASSERT_NE(e.find("cat"), nullptr);
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      ASSERT_NE(e.find(key), nullptr) << "missing " << key;
      EXPECT_TRUE(e.find(key)->is_number()) << key << " not a number";
      EXPECT_GE(e.find(key)->as_number(), 0.0);
    }
  }
}

TEST_F(TraceTest, SpanRecordsOneEvent) {
  { HSDL_TRACE_SPAN("test.span"); }
  EXPECT_EQ(trace::event_count(), 1u);
  const json::Value doc = json::parse(trace::chrome_trace_json());
  check_chrome_trace_schema(doc, 1);
  EXPECT_EQ(doc.find("traceEvents")->items()[0].find("name")->as_string(),
            "test.span");
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  trace::set_enabled(false);
  { HSDL_TRACE_SPAN("test.invisible"); }
  EXPECT_EQ(trace::event_count(), 0u);
  check_chrome_trace_schema(json::parse(trace::chrome_trace_json()), 0);
}

TEST_F(TraceTest, NestedSpansAllRecorded) {
  {
    HSDL_TRACE_SPAN("outer");
    HSDL_TRACE_SPAN("inner");
  }
  EXPECT_EQ(trace::event_count(), 2u);
}

TEST_F(TraceTest, SpanEndIsAfterBegin) {
  { HSDL_TRACE_SPAN("test.duration"); }
  const json::Value doc = json::parse(trace::chrome_trace_json());
  const json::Value& e = doc.find("traceEvents")->items()[0];
  EXPECT_GE(e.find("dur")->as_number(), 0.0);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([] { HSDL_TRACE_SPAN("test.worker"); });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(trace::event_count(), kThreads);

  const json::Value doc = json::parse(trace::chrome_trace_json());
  check_chrome_trace_schema(doc, kThreads);
  std::set<double> tids;
  for (const json::Value& e : doc.find("traceEvents")->items())
    tids.insert(e.find("tid")->as_number());
  EXPECT_EQ(tids.size(), kThreads);
}

TEST_F(TraceTest, ClearDropsBufferedEvents) {
  { HSDL_TRACE_SPAN("test.cleared"); }
  ASSERT_GT(trace::event_count(), 0u);
  trace::clear();
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_EQ(trace::dropped_count(), 0u);
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  { HSDL_TRACE_SPAN("test.file"); }
  const std::string path =
      (std::filesystem::temp_directory_path() / "hsdl_trace_test.json")
          .string();
  trace::write_chrome_trace(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  check_chrome_trace_schema(json::parse(buf.str()), 1);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace hsdl

#include "common/rng.hpp"

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace hsdl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(RngTest, UniformIntRejectsBadRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), CheckError);
}

TEST(RngTest, IndexCoversRangeUniformly) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(RngTest, IndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), CheckError);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(41);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

TEST(RngTest, ForkDecorrelatesStreams) {
  Rng parent(43);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkAdvancesParent) {
  Rng a(47), b(47);
  (void)a.fork();
  // Parent stream moved past the state draws consumed by fork().
  EXPECT_NE(a(), b());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  (void)rng();
}

// -- engine state capture/restore (checkpoint substrate) ---------------------

TEST(RngStateTest, RoundTripReproducesRawStream) {
  Rng rng(123);
  for (int i = 0; i < 10; ++i) (void)rng();
  const Rng::State snap = rng.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(rng());
  rng.set_state(snap);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng(), expected[i]);
}

TEST(RngStateTest, RestoreIntoDifferentEngineMatchesSource) {
  Rng a(1);
  for (int i = 0; i < 5; ++i) (void)a.uniform();
  Rng b(987654321);  // unrelated seed: state must fully overwrite it
  b.set_state(a.state());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
  // Exact double equality: same bits in, same bits out.
  EXPECT_EQ(a.normal(), b.normal());
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngStateTest, BoxMullerCacheSurvivesRoundTrip) {
  Rng rng(5);
  (void)rng.normal();  // first of the Box-Muller pair; second is cached
  const Rng::State snap = rng.state();
  EXPECT_TRUE(snap.has_cached_normal);
  const double next = rng.normal();  // consumes the cache
  Rng other(999);
  other.set_state(snap);
  EXPECT_EQ(other.normal(), next);
  // Both engines continue in lockstep past the cache boundary.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.normal(), other.normal());
}

TEST(RngStateTest, ShuffleDeterministicAfterRestore) {
  Rng rng(9);
  const Rng::State snap = rng.state();
  std::vector<int> a(50), b(50);
  for (int i = 0; i < 50; ++i) a[i] = b[i] = i;
  rng.shuffle(a);
  Rng other(1);
  other.set_state(snap);
  other.shuffle(b);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(std::is_sorted(a.begin(), a.end()));  // it did shuffle
}

TEST(RngStateTest, EqualityTracksDraws) {
  Rng a(11), b(11);
  EXPECT_EQ(a.state(), b.state());
  (void)a();
  EXPECT_FALSE(a.state() == b.state());
  (void)b();
  EXPECT_EQ(a.state(), b.state());
  (void)a.normal();
  (void)b.normal();
  EXPECT_EQ(a.state(), b.state());
  (void)a.normal();  // consumes a's cache only: flag alone breaks equality
  EXPECT_FALSE(a.state() == b.state());
}

}  // namespace
}  // namespace hsdl

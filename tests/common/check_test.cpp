#include "common/check.hpp"

#include <gtest/gtest.h>

namespace hsdl {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(HSDL_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsCheckError) {
  EXPECT_THROW(HSDL_CHECK(false), CheckError);
}

TEST(CheckTest, MessageIncludesExpressionAndLocation) {
  try {
    HSDL_CHECK(2 < 1);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, CheckMsgCarriesStreamedDetails) {
  try {
    int got = 7;
    HSDL_CHECK_MSG(got == 3, "got " << got << " instead of 3");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("got 7 instead of 3"),
              std::string::npos);
  }
}

TEST(CheckTest, MessageSideEffectsOnlyOnFailure) {
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 1;
  };
  HSDL_CHECK_MSG(true, "never built " << count());
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckTest, DcheckActiveMatchesBuildMode) {
#ifdef NDEBUG
  EXPECT_NO_THROW(HSDL_DCHECK(false));
#else
  EXPECT_THROW(HSDL_DCHECK(false), CheckError);
#endif
}

TEST(CheckTest, CheckErrorIsARuntimeError) {
  static_assert(std::is_base_of_v<std::runtime_error, CheckError>);
}

}  // namespace
}  // namespace hsdl

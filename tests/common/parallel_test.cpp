#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace hsdl {
namespace {

/// Restores the default thread count when a test exits, so an override
/// cannot leak into other tests in the binary.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_num_threads(0); }
};

TEST(ParallelTest, ThreadCountsAreAtLeastOne) {
  ThreadCountGuard guard;
  EXPECT_GE(hardware_threads(), 1u);
  EXPECT_GE(num_threads(), 1u);
}

TEST(ParallelTest, SetNumThreadsOverridesAndZeroRestores) {
  ThreadCountGuard guard;
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(0);
  EXPECT_EQ(num_threads(), hardware_threads());
}

TEST(ParallelTest, EmptyRangeNeverInvokesBody) {
  ThreadCountGuard guard;
  set_num_threads(4);
  bool called = false;
  parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, GrainLargerThanRangeRunsOneChunk) {
  ThreadCountGuard guard;
  set_num_threads(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(2, 10, 100, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2u);
  EXPECT_EQ(chunks[0].second, 10u);
}

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    std::vector<int> hits(1000, 0);
    parallel_for(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[i];  // chunks are disjoint
    });
    for (int h : hits) ASSERT_EQ(h, 1) << "threads=" << threads;
  }
}

TEST(ParallelTest, PooledChunksAreGrainAligned) {
  // On the pooled path every chunk must be [b, min(b + grain, end)) with b
  // on a grain boundary — the mapping the determinism contract fixes.
  ThreadCountGuard guard;
  for (std::size_t threads : {2u, 5u, 8u}) {
    set_num_threads(threads);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    parallel_for(10, 110, 16, [&](std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(b, e);
    });
    std::size_t covered = 0;
    for (const auto& [b, e] : chunks) {
      EXPECT_EQ((b - 10) % 16, 0u);
      EXPECT_LE(e - b, 16u);
      EXPECT_TRUE(e - b == 16u || e == 110u);
      covered += e - b;
    }
    EXPECT_EQ(covered, 100u);
    EXPECT_EQ(chunks.size(), 7u);  // ceil(100 / 16)
  }
}

TEST(ParallelTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadCountGuard guard;
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 64, 1,
                            [&](std::size_t b, std::size_t) {
                              if (b == 13)
                                throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The region after a throwing one must still run to completion.
  std::vector<int> hits(64, 0);
  parallel_for(0, hits.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelTest, NestedParallelForRunsInlineSerially) {
  ThreadCountGuard guard;
  set_num_threads(4);
  EXPECT_FALSE(in_parallel_region());
  std::vector<int> hits(16 * 16, 0);
  std::atomic<bool> saw_region{false};
  std::atomic<bool> inner_pooled{false};
  parallel_for(0, 16, 1, [&](std::size_t ob, std::size_t oe) {
    if (in_parallel_region()) saw_region = true;
    for (std::size_t o = ob; o < oe; ++o) {
      // Nested call: must execute inline on this thread, covering the
      // inner range exactly once with no pool involvement.
      const auto outer_id = std::this_thread::get_id();
      parallel_for(0, 16, 1, [&](std::size_t ib, std::size_t ie) {
        if (std::this_thread::get_id() != outer_id) inner_pooled = true;
        for (std::size_t i = ib; i < ie; ++i) ++hits[o * 16 + i];
      });
    }
  });
  EXPECT_FALSE(in_parallel_region());
  EXPECT_TRUE(saw_region);
  EXPECT_FALSE(inner_pooled);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelTest, ConcurrentTopLevelCallersComplete) {
  // Independent threads issuing parallel_for at the same time must all
  // finish (the pool serves one; the rest fall back to inline execution).
  ThreadCountGuard guard;
  set_num_threads(4);
  constexpr std::size_t kCallers = 4;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(512, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      parallel_for(0, hits[t].size(), 8, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[t][i];
      });
    });
  }
  for (std::thread& c : callers) c.join();
  for (const auto& h : hits)
    for (int v : h) ASSERT_EQ(v, 1);
}

TEST(ParallelFor2dTest, EmptyDimensionNeverInvokesBody) {
  ThreadCountGuard guard;
  set_num_threads(4);
  bool called = false;
  const auto body = [&](std::size_t, std::size_t, std::size_t,
                        std::size_t) { called = true; };
  parallel_for_2d(0, 10, 2, 2, body);
  parallel_for_2d(10, 0, 2, 2, body);
  EXPECT_FALSE(called);
}

TEST(ParallelFor2dTest, CoversEveryCellExactlyOnce) {
  ThreadCountGuard guard;
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    const std::size_t rows = 23, cols = 17;
    std::vector<int> hits(rows * cols, 0);
    parallel_for_2d(rows, cols, 4, 5,
                    [&](std::size_t r0, std::size_t r1, std::size_t c0,
                        std::size_t c1) {
                      for (std::size_t r = r0; r < r1; ++r)
                        for (std::size_t c = c0; c < c1; ++c)
                          ++hits[r * cols + c];
                    });
    for (int h : hits) ASSERT_EQ(h, 1) << "threads=" << threads;
  }
}

TEST(ParallelFor2dTest, TilesRespectGrains) {
  ThreadCountGuard guard;
  set_num_threads(4);
  std::mutex mu;
  bool ok = true;
  parallel_for_2d(30, 20, 8, 6,
                  [&](std::size_t r0, std::size_t r1, std::size_t c0,
                      std::size_t c1) {
                    std::lock_guard<std::mutex> lock(mu);
                    ok = ok && r0 % 8 == 0 && c0 % 6 == 0 &&
                         r1 - r0 <= 8 && c1 - c0 <= 6 && r1 <= 30 &&
                         c1 <= 20;
                  });
  EXPECT_TRUE(ok);
}

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    TaskPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 0; i < 50; ++i)
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.shutdown(true);
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(TaskPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that must be in flight at once to finish: each waits for
  // the other, so a pool that serialized them would deadlock.
  TaskPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lk(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lk, [&] { return arrived == 2; });
  };
  pool.submit(rendezvous);
  pool.submit(rendezvous);
  pool.shutdown(true);
  EXPECT_EQ(arrived, 2);
}

TEST(TaskPoolTest, DrainingShutdownFinishesQueuedTasks) {
  std::atomic<int> ran{0};
  TaskPool pool(1);
  // One long task holds the single worker while more tasks queue up
  // behind it; a draining shutdown must still run all of them.
  for (int i = 0; i < 8; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  pool.shutdown(true);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(TaskPoolTest, SubmitAfterShutdownThrows) {
  TaskPool pool(1);
  pool.shutdown(true);
  EXPECT_THROW(pool.submit([] {}), CheckError);
}

}  // namespace
}  // namespace hsdl

// Fault-injection registry tests: disarmed fast path, deterministic
// per-seed firing schedules, start_after/max_fires scheduling, the
// typed probe helpers, and the HSDL_FAULT_SPEC grammar.
#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace hsdl::fault {
namespace {

TEST(FaultTest, DisarmedProbesNeverFire) {
  ASSERT_FALSE(armed());
  EXPECT_FALSE(probe("anything").has_value());
  EXPECT_FALSE(fail_point("anything"));
  EXPECT_FALSE(short_io("anything", 100).has_value());
  EXPECT_EQ(corrupt_score("anything", 0.25), 0.25);
  EXPECT_NO_THROW(alloc_guard("anything"));
  EXPECT_EQ(total_fires(), 0u);
}

TEST(FaultTest, CertainFailFiresEveryProbeAndOnlyAtItsSite) {
  ScopedPlan plan(Plan{{Spec{"a.site", Kind::kFail, 1.0}}, 7});
  EXPECT_TRUE(armed());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fail_point("a.site"));
  EXPECT_FALSE(fail_point("b.site"));
  EXPECT_EQ(fires("a.site"), 5u);
  EXPECT_EQ(fires("b.site"), 0u);
  EXPECT_EQ(total_fires(), 5u);
}

TEST(FaultTest, DisarmRestoresFastPath) {
  arm(Plan{{Spec{"x", Kind::kFail, 1.0}}, 1});
  EXPECT_TRUE(fail_point("x"));
  disarm();
  EXPECT_FALSE(armed());
  EXPECT_FALSE(fail_point("x"));
}

TEST(FaultTest, PrefixPatternMatchesEverySiteUnderIt) {
  ScopedPlan plan(Plan{{Spec{"serve.net.*", Kind::kFail, 1.0}}, 1});
  EXPECT_TRUE(fail_point("serve.net.recv"));
  EXPECT_TRUE(fail_point("serve.net.send"));
  EXPECT_FALSE(fail_point("client.net.recv"));
}

TEST(FaultTest, ProbabilisticScheduleIsDeterministicPerSeed) {
  const auto schedule = [](std::uint64_t seed) {
    ScopedPlan plan(Plan{{Spec{"p.site", Kind::kFail, 0.3}}, seed});
    std::vector<bool> fired;
    for (int i = 0; i < 256; ++i) fired.push_back(fail_point("p.site"));
    return fired;
  };
  const std::vector<bool> a1 = schedule(42);
  const std::vector<bool> a2 = schedule(42);
  const std::vector<bool> b = schedule(43);
  EXPECT_EQ(a1, a2);  // same seed: identical firing pattern
  EXPECT_NE(a1, b);   // different seed: different pattern
  // ~30% of probes fire; the deterministic draws stay near that.
  const std::size_t hits =
      static_cast<std::size_t>(std::count(a1.begin(), a1.end(), true));
  EXPECT_GT(hits, 256 * 0.15);
  EXPECT_LT(hits, 256 * 0.45);
}

TEST(FaultTest, StartAfterAndMaxFiresScheduleTheNthFailure) {
  ScopedPlan plan(Plan{{Spec{"s", Kind::kFail, 1.0, 0.0, 3, 1}}, 1});
  EXPECT_FALSE(fail_point("s"));  // probe 0
  EXPECT_FALSE(fail_point("s"));  // probe 1
  EXPECT_FALSE(fail_point("s"));  // probe 2
  EXPECT_TRUE(fail_point("s"));   // probe 3 fires
  EXPECT_FALSE(fail_point("s"));  // max_fires=1 exhausted
  EXPECT_EQ(fires("s"), 1u);
}

TEST(FaultTest, ShortIoTruncatesAndFailTruncatesToZero) {
  {
    ScopedPlan plan(Plan{{Spec{"io", Kind::kShortIo, 1.0, 0.5}}, 1});
    EXPECT_EQ(short_io("io", 100).value(), 50u);
    // A fired short I/O always strips at least one byte.
    EXPECT_EQ(short_io("io", 1).value(), 0u);
  }
  {
    ScopedPlan plan(Plan{{Spec{"io", Kind::kFail, 1.0}}, 1});
    EXPECT_EQ(short_io("io", 100).value(), 0u);
  }
}

TEST(FaultTest, NanAndAllocHelpers) {
  {
    ScopedPlan plan(Plan{{Spec{"score", Kind::kNan, 1.0}}, 1});
    EXPECT_TRUE(std::isnan(corrupt_score("score", 0.75)));
    EXPECT_EQ(corrupt_score("other", 0.75), 0.75);
  }
  {
    ScopedPlan plan(Plan{{Spec{"alloc", Kind::kAllocFail, 1.0}}, 1});
    EXPECT_THROW(alloc_guard("alloc"), std::bad_alloc);
    EXPECT_NO_THROW(alloc_guard("other"));
  }
}

TEST(FaultTest, DelayIsHandledInsideProbe) {
  ScopedPlan plan(Plan{{Spec{"slow", Kind::kDelay, 1.0, 20.0}}, 1});
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(probe("slow").has_value());  // slept, nothing to handle
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_GE(ms, 15.0);
  EXPECT_EQ(fires("slow"), 1u);
}

TEST(FaultTest, ParseSpecGrammar) {
  const Plan plan = parse_spec(
      "serve.handler=delay:0.01:2;net.*=fail:0.005;eng=alloc:1:0:3:1", 9);
  EXPECT_EQ(plan.seed, 9u);
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].site, "serve.handler");
  EXPECT_EQ(plan.specs[0].kind, Kind::kDelay);
  EXPECT_DOUBLE_EQ(plan.specs[0].probability, 0.01);
  EXPECT_DOUBLE_EQ(plan.specs[0].param, 2.0);
  EXPECT_EQ(plan.specs[1].site, "net.*");
  EXPECT_EQ(plan.specs[1].kind, Kind::kFail);
  EXPECT_EQ(plan.specs[2].start_after, 3u);
  EXPECT_EQ(plan.specs[2].max_fires, 1u);
}

TEST(FaultTest, ParseSpecRejectsMalformedClauses) {
  EXPECT_THROW(parse_spec("no-equals"), CheckError);
  EXPECT_THROW(parse_spec("site=unknownkind"), CheckError);
  EXPECT_THROW(parse_spec("site=fail:not-a-number"), CheckError);
  EXPECT_THROW(parse_spec("site=fail:1:0:0:1:extra"), CheckError);
  EXPECT_THROW(arm(parse_spec("site=fail:1.5")), CheckError);  // p > 1
  disarm();
}

TEST(FaultTest, ConcurrentProbesRespectMaxFires) {
  ScopedPlan plan(Plan{{Spec{"mt", Kind::kFail, 1.0, 0.0, 0, 8}}, 1});
  std::atomic<std::uint64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i)
        if (fail_point("mt")) fired.fetch_add(1);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), 8u);
  EXPECT_EQ(fires("mt"), 8u);
}

}  // namespace
}  // namespace hsdl::fault

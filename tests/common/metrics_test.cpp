#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/json.hpp"

namespace hsdl {
namespace {

// Every test runs against the one process-wide registry, so each uses
// uniquely named instruments and restores the disabled default on exit.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { metrics::set_enabled(true); }
  void TearDown() override {
    metrics::set_enabled(false);
    metrics::reset();
  }
};

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  metrics::Counter& c = metrics::counter("test.counter.basic");
  c.add(5);
  c.increment();
  EXPECT_EQ(c.value(), 6u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, CounterLookupReturnsSameInstrument) {
  metrics::Counter& a = metrics::counter("test.counter.same");
  metrics::Counter& b = metrics::counter("test.counter.same");
  EXPECT_EQ(&a, &b);
}

TEST_F(MetricsTest, ShardedCounterSumsAcrossThreads) {
  metrics::Counter& c = metrics::counter("test.counter.threads");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.increment();
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  metrics::Counter& c = metrics::counter("test.counter.disabled");
  metrics::Gauge& g = metrics::gauge("test.gauge.disabled");
  metrics::set_enabled(false);
  c.add(100);
  g.set(3.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  metrics::Gauge& g = metrics::gauge("test.gauge.basic");
  g.set(1.0);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST_F(MetricsTest, HistogramBucketsByUpperBound) {
  metrics::Histogram& h =
      metrics::histogram("test.hist.basic", {1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0 (<= 1)
  h.record(1.0);    // bucket 0 (boundary counts low)
  h.record(7.0);    // bucket 1
  h.record(50.0);   // bucket 2
  h.record(999.0);  // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 50.0 + 999.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST_F(MetricsTest, HistogramConcurrentRecords) {
  metrics::Histogram& h = metrics::histogram("test.hist.threads", {0.5});
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&h] {
      for (std::size_t i = 0; i < kPerThread; ++i) h.record(1.0);
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(h.bucket_count(1), kThreads * kPerThread);
}

TEST_F(MetricsTest, SnapshotIsSortedAndJsonSerializable) {
  metrics::counter("test.snap.b").add(2);
  metrics::counter("test.snap.a").add(1);
  metrics::gauge("test.snap.g").set(4.0);
  metrics::histogram("test.snap.h", {1.0}).record(0.5);

  const metrics::Snapshot snap = metrics::snapshot();
  // Sorted by name (the registry may hold instruments from other tests,
  // so check ordering over the whole list, membership for ours).
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  std::uint64_t a = 0, b = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name == "test.snap.a") a = v;
    if (name == "test.snap.b") b = v;
  }
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);

  // to_json() must produce parseable JSON with the three sections.
  const json::Value parsed = json::parse(metrics::to_json(snap).dump());
  ASSERT_TRUE(parsed.is_object());
  ASSERT_NE(parsed.find("counters"), nullptr);
  ASSERT_NE(parsed.find("gauges"), nullptr);
  ASSERT_NE(parsed.find("histograms"), nullptr);
  EXPECT_DOUBLE_EQ(parsed.find("counters")->find("test.snap.a")->as_number(),
                   1.0);
  EXPECT_DOUBLE_EQ(parsed.find("gauges")->find("test.snap.g")->as_number(),
                   4.0);
  const json::Value* hist =
      parsed.find("histograms")->find("test.snap.h");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 1.0);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinBucket) {
  // 100 samples of 0.15 s into bounds {0.1, 1.0}: all land in the
  // (0.1, 1.0] bucket. The old snapshot code returned the bucket's
  // upper bound — 1.0 s for every quantile, ~6.7x the truth. The
  // interpolated estimate walks linearly across the owning bucket.
  metrics::Histogram& h =
      metrics::histogram("test.hist.quantile", {0.1, 1.0});
  for (int i = 0; i < 100; ++i) h.record(0.15);
  metrics::HistogramSnapshot snap;
  for (const metrics::HistogramSnapshot& s :
       metrics::snapshot().histograms)
    if (s.name == "test.hist.quantile") snap = s;
  ASSERT_EQ(snap.count, 100u);
  // Rank targets: p50 -> 50/100 of the way through a bucket holding
  // all 100 samples, i.e. 0.1 + 0.5 * 0.9 = 0.55; p99 -> 0.991. Both
  // must sit strictly inside the bucket, not at its upper bound.
  EXPECT_NEAR(metrics::quantile(snap, 0.5), 0.55, 1e-9);
  EXPECT_NEAR(metrics::quantile(snap, 0.99), 0.1 + 0.99 * 0.9, 1e-9);
  EXPECT_LT(metrics::quantile(snap, 0.99), 1.0);
}

TEST_F(MetricsTest, QuantileEdgeCases) {
  metrics::Histogram& h =
      metrics::histogram("test.hist.quantile_edges", {1.0, 10.0});
  metrics::HistogramSnapshot empty;
  empty.upper_bounds = {1.0, 10.0};
  empty.counts = {0, 0, 0};
  EXPECT_DOUBLE_EQ(metrics::quantile(empty, 0.5), 0.0);

  // First bucket interpolates from 0 (non-negative histograms); the
  // overflow bucket clamps to the last bound.
  for (int i = 0; i < 10; ++i) h.record(0.5);
  h.record(99.0);  // overflow
  metrics::HistogramSnapshot snap;
  for (const metrics::HistogramSnapshot& s :
       metrics::snapshot().histograms)
    if (s.name == "test.hist.quantile_edges") snap = s;
  ASSERT_EQ(snap.count, 11u);
  const double p50 = metrics::quantile(snap, 0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(snap, 1.0), 10.0);  // overflow clamp
}

TEST_F(MetricsTest, SummaryJsonCarriesInterpolatedQuantiles) {
  metrics::Histogram& h =
      metrics::histogram("test.hist.summary", {0.1, 1.0});
  for (int i = 0; i < 100; ++i) h.record(0.15);
  const json::Value summary = metrics::summary_json(metrics::snapshot());
  const json::Value* hist =
      summary.find("histograms")->find("test.hist.summary");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 100.0);
  EXPECT_NEAR(hist->find("mean")->as_number(), 0.15, 1e-9);
  EXPECT_NEAR(hist->find("p50")->as_number(), 0.55, 1e-9);
  EXPECT_LT(hist->find("p99")->as_number(), 1.0);
}

TEST_F(MetricsTest, SnapshotUnderLoadStaysConsistent) {
  // 8 writers hammer a counter + histogram while the main thread takes
  // repeated snapshots. Pins two properties: snapshots are safe against
  // concurrent recording (TSan runs this in CI), and the counter's
  // snapshot value is monotone non-decreasing across snapshots — a
  // torn or double-counted shard read would break monotonicity.
  metrics::Counter& c = metrics::counter("test.load.counter");
  metrics::Histogram& h =
      metrics::histogram("test.load.hist", {0.5, 5.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::size_t i = 0; i < kPerThread; ++i) {
        c.increment();
        h.record(static_cast<double>(i % 10));
      }
    });
  go.store(true, std::memory_order_release);
  std::uint64_t last_counter = 0;
  std::uint64_t last_hist = 0;
  for (int pass = 0; pass < 50; ++pass) {
    const metrics::Snapshot snap = metrics::snapshot();
    for (const auto& [name, v] : snap.counters)
      if (name == "test.load.counter") {
        EXPECT_GE(v, last_counter);
        last_counter = v;
      }
    for (const metrics::HistogramSnapshot& s : snap.histograms)
      if (s.name == "test.load.hist") {
        EXPECT_GE(s.count, last_hist);
        last_hist = s.count;
        std::uint64_t bucket_total = 0;
        for (const std::uint64_t b : s.counts) bucket_total += b;
        // Bucket counts are read shard by shard while writers run, so
        // the total may trail `count` (recorded first) — but it must
        // never exceed what was ever recorded.
        EXPECT_LE(bucket_total, kThreads * kPerThread);
      }
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  metrics::counter("test.reset.c").add(9);
  metrics::gauge("test.reset.g").set(9.0);
  metrics::histogram("test.reset.h", {1.0}).record(2.0);
  metrics::reset();
  EXPECT_EQ(metrics::counter("test.reset.c").value(), 0u);
  EXPECT_DOUBLE_EQ(metrics::gauge("test.reset.g").value(), 0.0);
  EXPECT_EQ(metrics::histogram("test.reset.h", {1.0}).count(), 0u);
}

}  // namespace
}  // namespace hsdl

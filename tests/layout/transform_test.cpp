#include "layout/transform.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "layout/generator.hpp"
#include "layout/raster.hpp"

namespace hsdl::layout {
namespace {

using geom::Rect;

Clip asym_clip() {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 100, 100);
  c.shapes = {Rect::from_xywh(10, 20, 30, 10),
              Rect::from_xywh(60, 70, 10, 20)};
  return c;
}

TEST(TransformTest, IdentityIsNoOp) {
  Clip c = asym_clip();
  Clip t = transformed(c, Dihedral::kIdentity);
  EXPECT_EQ(t.shapes, c.shapes);
  EXPECT_EQ(t.window, c.window);
}

TEST(TransformTest, AreaInvariantUnderAllOps) {
  Clip c = asym_clip();
  for (Dihedral op : kAllDihedral) {
    Clip t = transformed(c, op);
    EXPECT_DOUBLE_EQ(t.density(), c.density());
    EXPECT_EQ(t.shapes.size(), c.shapes.size());
    for (const Rect& r : t.shapes)
      EXPECT_TRUE(t.window.contains(r)) << "op " << static_cast<int>(op);
  }
}

TEST(TransformTest, Rot90FourTimesIsIdentity) {
  Clip c = asym_clip();
  Clip t = c;
  for (int i = 0; i < 4; ++i) t = transformed(t, Dihedral::kRot90);
  auto sorted = [](std::vector<Rect> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(t.shapes), sorted(c.shapes));
}

TEST(TransformTest, FlipsAreInvolutions) {
  Clip c = asym_clip();
  for (Dihedral op : {Dihedral::kFlipX, Dihedral::kFlipY,
                      Dihedral::kTranspose, Dihedral::kAntiTranspose,
                      Dihedral::kRot180}) {
    Clip t = transformed(transformed(c, op), op);
    auto sorted = [](std::vector<Rect> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(sorted(t.shapes), sorted(c.shapes))
        << "op " << static_cast<int>(op);
  }
}

TEST(TransformTest, Rot90MatchesRasterRotation) {
  Clip c = asym_clip();
  MaskImage orig = rasterize(c, 1.0);
  MaskImage rot = rasterize(transformed(c, Dihedral::kRot90), 1.0);
  // kRot90 maps (x, y) -> (s - y, x): pixel (x, y) of the original should
  // appear at (s-1-y, x) in the rotated raster.
  const std::size_t s = orig.width();
  for (std::size_t y = 0; y < s; y += 7) {
    for (std::size_t x = 0; x < s; x += 7) {
      EXPECT_FLOAT_EQ(rot.at(s - 1 - y, x), orig.at(x, y))
          << "pixel " << x << "," << y;
    }
  }
}

TEST(TransformTest, FlipXMatchesRasterMirror) {
  Clip c = asym_clip();
  MaskImage orig = rasterize(c, 1.0);
  MaskImage flip = rasterize(transformed(c, Dihedral::kFlipX), 1.0);
  const std::size_t s = orig.width();
  for (std::size_t y = 0; y < s; y += 5)
    for (std::size_t x = 0; x < s; x += 5)
      EXPECT_FLOAT_EQ(flip.at(s - 1 - x, y), orig.at(x, y));
}

TEST(TransformTest, TransposeMatchesRasterTranspose) {
  Clip c = asym_clip();
  MaskImage orig = rasterize(c, 1.0);
  MaskImage tr = rasterize(transformed(c, Dihedral::kTranspose), 1.0);
  const std::size_t s = orig.width();
  for (std::size_t y = 0; y < s; y += 5)
    for (std::size_t x = 0; x < s; x += 5)
      EXPECT_FLOAT_EQ(tr.at(y, x), orig.at(x, y));
}

TEST(TransformTest, NonSquareWindowThrows) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 100, 200);
  EXPECT_THROW(transformed(c, Dihedral::kRot90), hsdl::CheckError);
}

TEST(TransformTest, OffsetWindowNormalized) {
  Clip c;
  c.window = Rect::from_xywh(500, 500, 100, 100);
  c.shapes = {Rect::from_xywh(510, 520, 30, 10)};
  Clip t = transformed(c, Dihedral::kFlipX);
  EXPECT_EQ(t.window, Rect::from_xywh(0, 0, 100, 100));
  // flip_x of [10, 40) is [60, 90).
  EXPECT_EQ(t.shapes[0], Rect::from_xywh(60, 20, 30, 10));
}

TEST(TransformTest, GeneratedClipsSurviveAllOps) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 123);
  for (int i = 0; i < 8; ++i) {
    Clip c = gen.generate();
    for (Dihedral op : kAllDihedral) {
      Clip t = transformed(c, op);
      EXPECT_NEAR(t.density(), c.density(), 1e-12);
    }
  }
}

}  // namespace
}  // namespace hsdl::layout

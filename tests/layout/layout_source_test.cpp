// LayoutSource adapters (DESIGN.md §16): the FlatSource preserves the
// old flat scan semantics verbatim, and HierSource::window_key honours
// the WindowKey contract — equal keys imply bitwise-identical
// normalized clips — across repeated and nested placements.
#include "layout/layout_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "geom/polygon.hpp"
#include "layout/gds_stream.hpp"
#include "layout/gdsii.hpp"
#include "layout/layout.hpp"

namespace hsdl::layout {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Rect;

/// TOP = 2x2 array of MACRO (bbox 100x100, pitch 200) with a gap
/// between instances, plus MACRO nesting a 2x1 array of UNIT.
GdsLibrary nested_array_lib() {
  GdsLibrary lib;
  GdsCell unit;
  unit.name = "UNIT";
  unit.boundaries.push_back(Polygon::from_rect(Rect::from_xywh(0, 0, 20, 20)));
  unit.layers.push_back(1);

  GdsCell macro;
  macro.name = "MACRO";
  macro.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(60, 60, 40, 40)));
  macro.layers.push_back(1);
  macro.refs.push_back({"UNIT", {0, 0}, 2, 1, 30, 0});

  GdsCell top;
  top.name = "TOP";
  top.refs.push_back({"MACRO", {0, 0}, 2, 2, 200, 200});
  lib.cells = {unit, macro, top};
  return lib;
}

Layout grid_chip(geom::Coord jitter) {
  std::vector<Rect> shapes;
  for (geom::Coord y = 0; y < 2400; y += 400)
    for (geom::Coord x = 0; x < 2400; x += 600)
      shapes.push_back(Rect::from_xywh(x + jitter, y, 180, 90));
  return Layout(Rect::from_xywh(0, 0, 2400, 2400), std::move(shapes));
}

TEST(FlatSourceTest, DelegatesAndNeverOffersKeys) {
  const Layout chip = grid_chip(0);
  const FlatSource source(chip);
  EXPECT_EQ(source.extent(), chip.extent());
  const Rect w = Rect::from_xywh(100, 100, 1200, 1200);
  const Clip direct = chip.extract_clip(w);
  const Clip via = source.extract_clip(w);
  EXPECT_EQ(via.window, direct.window);
  EXPECT_EQ(via.shapes, direct.shapes);
  EXPECT_EQ(source.window_key(w), std::nullopt);
}

TEST(FlatSourceTest, FingerprintTracksGeometry) {
  const Layout a = grid_chip(0);
  const Layout b = grid_chip(13);
  const Layout a2 = grid_chip(0);
  EXPECT_EQ(FlatSource(a).fingerprint(), FlatSource(a2).fingerprint());
  EXPECT_NE(FlatSource(a).fingerprint(), FlatSource(b).fingerprint());
}

TEST(HierSourceTest, FingerprintDependsOnLayer) {
  const HierLayout hier = hier_from_library(nested_array_lib());
  const HierSource l1(hier, 1);
  const HierSource l2(hier, 2);
  EXPECT_NE(l1.fingerprint(), l2.fingerprint());
  EXPECT_EQ(l1.fingerprint(), HierSource(hier, 1).fingerprint());
}

TEST(HierSourceTest, RepeatedInstancesShareAKey) {
  const HierLayout hier = hier_from_library(nested_array_lib());
  const HierSource source(hier, 1);
  // The same window offset inside each of the four MACRO instances.
  const Rect in_00 = Rect::from_xywh(10, 10, 80, 80);
  const Rect in_10 = Rect::from_xywh(210, 10, 80, 80);
  const Rect in_01 = Rect::from_xywh(10, 210, 80, 80);
  const auto k00 = source.window_key(in_00);
  const auto k10 = source.window_key(in_10);
  const auto k01 = source.window_key(in_01);
  ASSERT_TRUE(k00.has_value());
  EXPECT_FALSE(k00->empty_window);
  EXPECT_EQ(*k00, *k10);
  EXPECT_EQ(*k00, *k01);
  // The contract the cache leans on: equal keys, bitwise-equal
  // normalized clips.
  const Clip c00 = source.extract_clip(in_00).normalized();
  const Clip c10 = source.extract_clip(in_10).normalized();
  EXPECT_EQ(c00.shapes, c10.shapes);
  EXPECT_FALSE(c00.shapes.empty());
}

TEST(HierSourceTest, DifferentOffsetsGetDifferentKeys) {
  const HierLayout hier = hier_from_library(nested_array_lib());
  const HierSource source(hier, 1);
  const auto a = source.window_key(Rect::from_xywh(10, 10, 80, 80));
  const auto b = source.window_key(Rect::from_xywh(15, 10, 80, 80));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
}

TEST(HierSourceTest, StraddlingWindowGetsNoKey) {
  const HierLayout hier = hier_from_library(nested_array_lib());
  const HierSource source(hier, 1);
  // Overlaps the (0,0) and (1,0) MACRO instances: two contributing
  // subtrees at the top, so there is nothing cacheable to name.
  EXPECT_EQ(source.window_key(Rect::from_xywh(50, 10, 200, 80)),
            std::nullopt);
}

TEST(HierSourceTest, EmptyWindowsShareTheSentinel) {
  const HierLayout hier = hier_from_library(nested_array_lib());
  const HierSource source(hier, 1);
  // The gaps between array instances carry no geometry at all.
  const auto a = source.window_key(Rect::from_xywh(110, 110, 80, 80));
  const auto b = source.window_key(Rect::from_xywh(310, 110, 80, 80));
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->empty_window);
  EXPECT_EQ(*a, *b);
  EXPECT_TRUE(source.extract_clip(Rect::from_xywh(110, 110, 80, 80))
                  .shapes.empty());
}

TEST(HierSourceTest, TopLevelLocalShapesBlockKeys) {
  GdsLibrary lib = nested_array_lib();
  lib.cells[2].boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(120, 120, 30, 30)));
  lib.cells[2].layers.push_back(1);
  const HierLayout hier = hier_from_library(lib);
  const HierSource source(hier, 1);
  // Window over the top-level shape: stuck at TOP without descending.
  EXPECT_EQ(source.window_key(Rect::from_xywh(110, 110, 80, 80)),
            std::nullopt);
  // Windows fully inside an instance still descend and key normally.
  EXPECT_TRUE(source.window_key(Rect::from_xywh(210, 10, 80, 80))
                  .has_value());
}

TEST(HierSourceTest, DescendsThroughNestedArrays) {
  const HierLayout hier = hier_from_library(nested_array_lib());
  const HierSource source(hier, 1);
  // Fully inside one UNIT instance of one MACRO instance: the key names
  // UNIT, so it is shared across all eight UNIT placements chip-wide.
  const auto a = source.window_key(Rect::from_xywh(2, 2, 15, 15));
  const auto b = source.window_key(Rect::from_xywh(32, 2, 15, 15));    // UNIT #2
  const auto c = source.window_key(Rect::from_xywh(202, 2, 15, 15));   // MACRO #2
  const auto d = source.window_key(Rect::from_xywh(232, 202, 15, 15)); // both
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, *c);
  EXPECT_EQ(*a, *d);
  const Clip ca = source.extract_clip(Rect::from_xywh(2, 2, 15, 15));
  const Clip cd = source.extract_clip(Rect::from_xywh(232, 202, 15, 15));
  EXPECT_EQ(ca.normalized().shapes, cd.normalized().shapes);
}

TEST(HierSourceTest, ExtractClipMatchesFlattenOracle) {
  const HierLayout hier = hier_from_library(nested_array_lib());
  const HierSource source(hier, 1);
  const std::vector<Rect> flat = hier.flatten(1);
  const Rect w = Rect::from_xywh(30, 30, 250, 250);
  const Clip clip = source.extract_clip(w);
  EXPECT_EQ(clip.window, w);
  std::vector<Rect> want;
  for (const Rect& r : flat) {
    const Rect cut = r.intersect(w);
    if (!cut.empty()) want.push_back(cut);
  }
  std::vector<Rect> got = clip.shapes;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace hsdl::layout

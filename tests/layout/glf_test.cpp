#include "layout/glf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace hsdl::layout {
namespace {

using geom::Rect;

std::vector<LabeledClip> sample_clips() {
  std::vector<LabeledClip> clips(2);
  clips[0].clip.window = Rect::from_xywh(0, 0, 1200, 1200);
  clips[0].clip.shapes = {Rect::from_xywh(0, 0, 100, 40),
                          Rect::from_xywh(200, 300, 40, 400)};
  clips[0].label = HotspotLabel::kHotspot;
  clips[1].clip.window = Rect::from_xywh(100, 100, 1200, 1200);
  clips[1].clip.shapes = {Rect::from_xywh(150, 150, 60, 60)};
  clips[1].label = HotspotLabel::kNonHotspot;
  return clips;
}

TEST(GlfTest, RoundTripPreservesEverything) {
  auto clips = sample_clips();
  std::stringstream ss;
  write_glf(ss, clips);
  auto loaded = read_glf(ss);
  ASSERT_EQ(loaded.size(), clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    EXPECT_EQ(loaded[i].clip.window, clips[i].clip.window);
    EXPECT_EQ(loaded[i].clip.shapes, clips[i].clip.shapes);
    EXPECT_EQ(loaded[i].label, clips[i].label);
  }
}

TEST(GlfTest, UnknownLabelRoundTrips) {
  std::vector<LabeledClip> clips(1);
  clips[0].clip.window = Rect::from_xywh(0, 0, 10, 10);
  clips[0].label = HotspotLabel::kUnknown;
  std::stringstream ss;
  write_glf(ss, clips);
  EXPECT_NE(ss.str().find(" none"), std::string::npos);
  auto loaded = read_glf(ss);
  EXPECT_EQ(loaded[0].label, HotspotLabel::kUnknown);
}

TEST(GlfTest, EmptyClipListRoundTrips) {
  std::stringstream ss;
  write_glf(ss, {});
  EXPECT_TRUE(read_glf(ss).empty());
}

TEST(GlfTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "GLF 1\n"
      "# a comment\n"
      "\n"
      "CLIP 0 0 100 100 hotspot\n"
      "  # indented comment\n"
      "RECT 1 2 3 4\n"
      "ENDCLIP\n");
  auto clips = read_glf(ss);
  ASSERT_EQ(clips.size(), 1u);
  EXPECT_EQ(clips[0].clip.shapes[0], Rect::from_xywh(1, 2, 3, 4));
}

TEST(GlfTest, MissingHeaderThrows) {
  std::stringstream ss("CLIP 0 0 10 10 none\nENDCLIP\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, EmptyStreamThrows) {
  std::stringstream ss("");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, UnterminatedClipThrows) {
  std::stringstream ss("GLF 1\nCLIP 0 0 10 10 none\nRECT 0 0 1 1\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, NestedClipThrows) {
  std::stringstream ss(
      "GLF 1\nCLIP 0 0 10 10 none\nCLIP 0 0 10 10 none\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, RectOutsideClipThrows) {
  std::stringstream ss("GLF 1\nRECT 0 0 1 1\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, BadLabelThrows) {
  std::stringstream ss("GLF 1\nCLIP 0 0 10 10 maybe\nENDCLIP\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, NonPositiveExtentThrows) {
  std::stringstream ss(
      "GLF 1\nCLIP 0 0 10 10 none\nRECT 0 0 0 5\nENDCLIP\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, UnknownTokenThrows) {
  std::stringstream ss("GLF 1\nBOGUS 1 2 3\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, ErrorMessageIncludesLineNumber) {
  std::stringstream ss("GLF 1\nCLIP 0 0 10 10 bogus\n");
  try {
    read_glf(ss);
    FAIL();
  } catch (const hsdl::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GlfTest, FileRoundTrip) {
  auto clips = sample_clips();
  const std::string path = ::testing::TempDir() + "/glf_test.glf";
  write_glf_file(path, clips);
  auto loaded = read_glf_file(path);
  EXPECT_EQ(loaded.size(), clips.size());
}

TEST(GlfTest, MissingFileThrows) {
  EXPECT_THROW(read_glf_file("/nonexistent/nope.glf"), hsdl::CheckError);
}

TEST(GlfTest, NegativeCoordinatesSupported) {
  std::stringstream ss(
      "GLF 1\nCLIP -100 -100 200 200 none\nRECT -50 -50 30 30\nENDCLIP\n");
  auto clips = read_glf(ss);
  EXPECT_EQ(clips[0].clip.window.lo.x, -100);
  EXPECT_EQ(clips[0].clip.shapes[0].lo, (geom::Point{-50, -50}));
}

}  // namespace
}  // namespace hsdl::layout

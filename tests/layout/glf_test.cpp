#include "layout/glf.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace hsdl::layout {
namespace {

using geom::Rect;

std::vector<LabeledClip> sample_clips() {
  std::vector<LabeledClip> clips(2);
  clips[0].clip.window = Rect::from_xywh(0, 0, 1200, 1200);
  clips[0].clip.shapes = {Rect::from_xywh(0, 0, 100, 40),
                          Rect::from_xywh(200, 300, 40, 400)};
  clips[0].label = HotspotLabel::kHotspot;
  clips[1].clip.window = Rect::from_xywh(100, 100, 1200, 1200);
  clips[1].clip.shapes = {Rect::from_xywh(150, 150, 60, 60)};
  clips[1].label = HotspotLabel::kNonHotspot;
  return clips;
}

TEST(GlfTest, RoundTripPreservesEverything) {
  auto clips = sample_clips();
  std::stringstream ss;
  write_glf(ss, clips);
  auto loaded = read_glf(ss);
  ASSERT_EQ(loaded.size(), clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    EXPECT_EQ(loaded[i].clip.window, clips[i].clip.window);
    EXPECT_EQ(loaded[i].clip.shapes, clips[i].clip.shapes);
    EXPECT_EQ(loaded[i].label, clips[i].label);
  }
}

TEST(GlfTest, UnknownLabelRoundTrips) {
  std::vector<LabeledClip> clips(1);
  clips[0].clip.window = Rect::from_xywh(0, 0, 10, 10);
  clips[0].label = HotspotLabel::kUnknown;
  std::stringstream ss;
  write_glf(ss, clips);
  EXPECT_NE(ss.str().find(" none"), std::string::npos);
  auto loaded = read_glf(ss);
  EXPECT_EQ(loaded[0].label, HotspotLabel::kUnknown);
}

TEST(GlfTest, EmptyClipListRoundTrips) {
  std::stringstream ss;
  write_glf(ss, {});
  EXPECT_TRUE(read_glf(ss).empty());
}

TEST(GlfTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "GLF 1\n"
      "# a comment\n"
      "\n"
      "CLIP 0 0 100 100 hotspot\n"
      "  # indented comment\n"
      "RECT 1 2 3 4\n"
      "ENDCLIP\n");
  auto clips = read_glf(ss);
  ASSERT_EQ(clips.size(), 1u);
  EXPECT_EQ(clips[0].clip.shapes[0], Rect::from_xywh(1, 2, 3, 4));
}

TEST(GlfTest, MissingHeaderThrows) {
  std::stringstream ss("CLIP 0 0 10 10 none\nENDCLIP\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, EmptyStreamThrows) {
  std::stringstream ss("");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, UnterminatedClipThrows) {
  std::stringstream ss("GLF 1\nCLIP 0 0 10 10 none\nRECT 0 0 1 1\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, NestedClipThrows) {
  std::stringstream ss(
      "GLF 1\nCLIP 0 0 10 10 none\nCLIP 0 0 10 10 none\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, RectOutsideClipThrows) {
  std::stringstream ss("GLF 1\nRECT 0 0 1 1\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, BadLabelThrows) {
  std::stringstream ss("GLF 1\nCLIP 0 0 10 10 maybe\nENDCLIP\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, NonPositiveExtentThrows) {
  std::stringstream ss(
      "GLF 1\nCLIP 0 0 10 10 none\nRECT 0 0 0 5\nENDCLIP\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, UnknownTokenThrows) {
  std::stringstream ss("GLF 1\nBOGUS 1 2 3\n");
  EXPECT_THROW(read_glf(ss), hsdl::CheckError);
}

TEST(GlfTest, ErrorMessageIncludesLineNumber) {
  std::stringstream ss("GLF 1\nCLIP 0 0 10 10 bogus\n");
  try {
    read_glf(ss);
    FAIL();
  } catch (const hsdl::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GlfTest, FileRoundTrip) {
  auto clips = sample_clips();
  const std::string path = ::testing::TempDir() + "/glf_test.glf";
  write_glf_file(path, clips);
  auto loaded = read_glf_file(path);
  EXPECT_EQ(loaded.size(), clips.size());
}

TEST(GlfTest, MissingFileThrows) {
  EXPECT_THROW(read_glf_file("/nonexistent/nope.glf"), hsdl::CheckError);
}

TEST(GlfTest, NegativeCoordinatesSupported) {
  std::stringstream ss(
      "GLF 1\nCLIP -100 -100 200 200 none\nRECT -50 -50 30 30\nENDCLIP\n");
  auto clips = read_glf(ss);
  EXPECT_EQ(clips[0].clip.window.lo.x, -100);
  EXPECT_EQ(clips[0].clip.shapes[0].lo, (geom::Point{-50, -50}));
}

TEST(GlfTest, WriterEmitsChecksummedHeader) {
  std::stringstream ss;
  write_glf(ss, sample_clips());
  EXPECT_EQ(ss.str().rfind("GLF 2 crc32=", 0), 0u);
  EXPECT_NE(ss.str().find(" bytes="), std::string::npos);
  EXPECT_NE(ss.str().find(" clips=2"), std::string::npos);
}

TEST(GlfTest, BodyCorruptionRejectedWithChecksumDiagnostic) {
  std::stringstream ss;
  write_glf(ss, sample_clips());
  std::string data = ss.str();
  // Corrupt one digit inside the body (a coordinate), keeping it a
  // well-formed GLF line: only the checksum can catch this.
  const std::size_t pos = data.find("CLIP 0 0 1200");
  ASSERT_NE(pos, std::string::npos);
  data[pos + 10] = '3';  // 1200 -> 1300
  std::stringstream bad(data);
  try {
    read_glf(bad);
    FAIL() << "corrupt GLF body accepted";
  } catch (const hsdl::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(GlfTest, ByteCountMismatchRejected) {
  std::stringstream ss;
  write_glf(ss, sample_clips());
  std::string data = ss.str();
  const std::size_t pos = data.find("bytes=") + 6;
  data[pos] = data[pos] == '9' ? '8' : static_cast<char>(data[pos] + 1);
  std::stringstream bad(data);
  EXPECT_THROW(read_glf(bad), hsdl::CheckError);
}

TEST(GlfTest, ClipCountMismatchRejected) {
  std::stringstream ss;
  write_glf(ss, sample_clips());
  std::string data = ss.str();
  const std::size_t pos = data.find("clips=") + 6;
  data[pos] = '7';
  std::stringstream bad(data);
  EXPECT_THROW(read_glf(bad), hsdl::CheckError);
}

TEST(GlfTest, BadIntegerRejectedWithLineNumber) {
  // std::stoll would have parsed "1x0" as 1; the full-match parser
  // rejects it inside the positioned CheckError taxonomy.
  std::stringstream ss("GLF 1\nCLIP 0 0 1x0 10 none\nENDCLIP\n");
  try {
    read_glf(ss);
    FAIL() << "malformed integer accepted";
  } catch (const hsdl::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos);
    EXPECT_NE(what.find("bad integer"), std::string::npos);
  }
}

TEST(GlfTest, LegacyGlf1StillLoads) {
  std::stringstream ss(
      "GLF 1\n"
      "CLIP 0 0 100 100 hotspot\n"
      "RECT 10 20 30 40\n"
      "ENDCLIP\n");
  auto clips = read_glf(ss);
  ASSERT_EQ(clips.size(), 1u);
  EXPECT_EQ(clips[0].clip.shapes[0], Rect::from_xywh(10, 20, 30, 40));
  EXPECT_EQ(clips[0].label, HotspotLabel::kHotspot);
}

TEST(GlfTest, FileWriteLeavesNoTempBehind) {
  const std::string path = ::testing::TempDir() + "/glf_atomic_test.glf";
  write_glf_file(path, sample_clips());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hsdl::layout

#include "layout/gdsii.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "layout/generator.hpp"

namespace hsdl::layout {
namespace {

using geom::Polygon;
using geom::Rect;

TEST(GdsRealTest, ZeroRoundTrips) {
  EXPECT_EQ(to_gds_real(0.0), 0u);
  EXPECT_DOUBLE_EQ(from_gds_real(0), 0.0);
}

TEST(GdsRealTest, KnownEncodingOfOne) {
  // 1.0 = 1/16 * 16^1: exponent 65, mantissa 2^52.
  const std::uint64_t bits = to_gds_real(1.0);
  EXPECT_EQ(bits >> 56, 65u);
  EXPECT_DOUBLE_EQ(from_gds_real(bits), 1.0);
}

TEST(GdsRealTest, RoundTripsTypicalValues) {
  for (double v : {1e-9, 1e-3, 0.5, 2.0, 1e6, 3.14159265358979,
                   6.25e-10}) {
    EXPECT_NEAR(from_gds_real(to_gds_real(v)), v, v * 1e-12) << v;
    EXPECT_NEAR(from_gds_real(to_gds_real(-v)), -v, v * 1e-12) << -v;
  }
}

TEST(GdsRealTest, SignBit) {
  EXPECT_EQ(to_gds_real(-1.0) >> 63, 1u);
  EXPECT_EQ(to_gds_real(1.0) >> 63, 0u);
}

Clip demo_clip() {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = {Rect::from_xywh(100, 100, 300, 40),
              Rect::from_xywh(600, 200, 40, 500),
              Rect::from_xywh(0, 900, 1200, 60)};
  return c;
}

TEST(GdsiiTest, ClipRoundTrip) {
  const Clip original = demo_clip();
  std::stringstream ss;
  write_gds(ss, clip_to_gds(original, 7, "TESTCLIP"));
  GdsLibrary lib = read_gds(ss);
  ASSERT_EQ(lib.cells.size(), 1u);
  EXPECT_EQ(lib.cells[0].name, "TESTCLIP");
  Clip loaded = gds_to_clip(lib, 7);
  // Same rectangles (decomposition of a rect boundary is itself).
  ASSERT_EQ(loaded.shapes.size(), original.shapes.size());
  auto sorted = [](std::vector<Rect> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(loaded.shapes), sorted(original.shapes));
}

TEST(GdsiiTest, UnitsRoundTrip) {
  GdsLibrary lib = clip_to_gds(demo_clip());
  lib.db_unit_meters = 1e-9;
  lib.user_unit = 1e-3;
  std::stringstream ss;
  write_gds(ss, lib);
  GdsLibrary loaded = read_gds(ss);
  EXPECT_NEAR(loaded.db_unit_meters, 1e-9, 1e-21);
  EXPECT_NEAR(loaded.user_unit, 1e-3, 1e-15);
}

TEST(GdsiiTest, LibraryNamePreserved) {
  GdsLibrary lib = clip_to_gds(demo_clip());
  lib.name = "MYLIB";
  std::stringstream ss;
  write_gds(ss, lib);
  EXPECT_EQ(read_gds(ss).name, "MYLIB");
}

TEST(GdsiiTest, LayerFiltering) {
  Clip c = demo_clip();
  GdsLibrary lib = clip_to_gds(c, 1);
  // Add one extra boundary on layer 2.
  lib.cells[0].boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 10, 10)));
  lib.cells[0].layers.push_back(2);
  std::stringstream ss;
  write_gds(ss, lib);
  GdsLibrary loaded = read_gds(ss);
  EXPECT_EQ(loaded.cells[0].rects_on_layer(1).size(), c.shapes.size());
  EXPECT_EQ(loaded.cells[0].rects_on_layer(2).size(), 1u);
  EXPECT_TRUE(loaded.cells[0].rects_on_layer(3).empty());
}

TEST(GdsiiTest, LShapedBoundaryDecomposes) {
  GdsLibrary lib;
  GdsCell cell;
  cell.name = "L";
  cell.boundaries.push_back(Polygon(
      {{0, 0}, {100, 0}, {100, 50}, {50, 50}, {50, 100}, {0, 100}}));
  cell.layers.push_back(1);
  lib.cells.push_back(cell);
  std::stringstream ss;
  write_gds(ss, lib);
  GdsLibrary loaded = read_gds(ss);
  auto rects = loaded.cells[0].rects_on_layer(1);
  geom::Area area = 0;
  for (const Rect& r : rects) area += r.area();
  EXPECT_EQ(area, 100 * 100 - 50 * 50);
}

TEST(GdsiiTest, MultipleCells) {
  GdsLibrary lib = clip_to_gds(demo_clip(), 1, "A");
  GdsCell second;
  second.name = "B";
  second.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(5, 5, 20, 20)));
  second.layers.push_back(1);
  lib.cells.push_back(second);
  std::stringstream ss;
  write_gds(ss, lib);
  GdsLibrary loaded = read_gds(ss);
  ASSERT_EQ(loaded.cells.size(), 2u);
  EXPECT_EQ(loaded.cells[1].name, "B");
}

TEST(GdsiiTest, NegativeCoordinates) {
  GdsLibrary lib;
  GdsCell cell;
  cell.name = "NEG";
  cell.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(-500, -300, 100, 100)));
  cell.layers.push_back(1);
  lib.cells.push_back(cell);
  std::stringstream ss;
  write_gds(ss, lib);
  auto rects = read_gds(ss).cells[0].rects_on_layer(1);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0].lo, (geom::Point{-500, -300}));
}

TEST(GdsiiTest, GeneratedClipsRoundTrip) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 99);
  for (int i = 0; i < 5; ++i) {
    Clip c = gen.generate();
    std::stringstream ss;
    write_gds(ss, clip_to_gds(c));
    Clip loaded = gds_to_clip(read_gds(ss));
    geom::Area orig_area = 0, loaded_area = 0;
    for (const Rect& r : c.shapes) orig_area += r.area();
    for (const Rect& r : loaded.shapes) loaded_area += r.area();
    EXPECT_EQ(orig_area, loaded_area) << "clip " << i;
  }
}

GdsLibrary hierarchical_lib() {
  GdsLibrary lib;
  GdsCell leaf;
  leaf.name = "VIA";
  leaf.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 40, 40)));
  leaf.layers.push_back(1);

  GdsCell mid;
  mid.name = "PAIR";
  mid.refs.push_back({"VIA", {0, 0}});
  mid.refs.push_back({"VIA", {100, 0}});

  GdsCell top;
  top.name = "TOP";
  top.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(500, 500, 60, 60)));
  top.layers.push_back(1);
  top.refs.push_back({"PAIR", {0, 0}});
  top.refs.push_back({"PAIR", {0, 200}});

  lib.cells = {leaf, mid, top};
  return lib;
}

TEST(GdsiiSrefTest, RefsRoundTrip) {
  std::stringstream ss;
  write_gds(ss, hierarchical_lib());
  GdsLibrary loaded = read_gds(ss);
  ASSERT_EQ(loaded.cells.size(), 3u);
  const GdsCell& top = loaded.cells[2];
  ASSERT_EQ(top.refs.size(), 2u);
  EXPECT_EQ(top.refs[0].cell, "PAIR");
  EXPECT_EQ(top.refs[1].at, (geom::Point{0, 200}));
}

TEST(GdsiiSrefTest, FlattenResolvesHierarchy) {
  GdsLibrary lib = hierarchical_lib();
  auto rects = flatten_cell(lib, "TOP", 1);
  // 1 own boundary + 2 PAIR x 2 VIA = 5 rects.
  ASSERT_EQ(rects.size(), 5u);
  // The deepest instance: VIA at PAIR(0,200) + VIA(100,0).
  bool found = false;
  for (const Rect& r : rects)
    found |= r == Rect::from_xywh(100, 200, 40, 40);
  EXPECT_TRUE(found);
}

TEST(GdsiiSrefTest, FlattenAfterRoundTrip) {
  std::stringstream ss;
  write_gds(ss, hierarchical_lib());
  GdsLibrary loaded = read_gds(ss);
  auto a = flatten_cell(hierarchical_lib(), "TOP", 1);
  auto b = flatten_cell(loaded, "TOP", 1);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(GdsiiSrefTest, FlattenLeafIsItsOwnGeometry) {
  auto rects = flatten_cell(hierarchical_lib(), "VIA", 1);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect::from_xywh(0, 0, 40, 40));
}

TEST(GdsiiSrefTest, UnknownCellThrows) {
  EXPECT_THROW(flatten_cell(hierarchical_lib(), "NOPE", 1),
               hsdl::CheckError);
}

TEST(GdsiiSrefTest, ReferenceCycleDetected) {
  GdsLibrary lib;
  GdsCell a;
  a.name = "A";
  a.refs.push_back({"B", {0, 0}});
  GdsCell b;
  b.name = "B";
  b.refs.push_back({"A", {10, 10}});
  lib.cells = {a, b};
  EXPECT_THROW(flatten_cell(lib, "A", 1), hsdl::CheckError);
}

TEST(GdsiiTest, TruncatedStreamThrows) {
  std::stringstream ss;
  write_gds(ss, clip_to_gds(demo_clip()));
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_gds(cut), hsdl::CheckError);
}

TEST(GdsiiTest, EmptyStreamThrows) {
  std::stringstream ss("");
  EXPECT_THROW(read_gds(ss), hsdl::CheckError);
}

TEST(GdsiiTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/clip.gds";
  write_gds_file(path, clip_to_gds(demo_clip()));
  Clip loaded = gds_to_clip(read_gds_file(path));
  EXPECT_EQ(loaded.shapes.size(), demo_clip().shapes.size());
}

TEST(GdsiiTest, UnknownRecordsSkipped) {
  // Inject a TEXT-ish record (type 0x0C) between elements; reader must
  // skip it.
  std::stringstream ss;
  write_gds(ss, clip_to_gds(demo_clip()));
  std::string data = ss.str();
  // Append before ENDLIB (last 4 bytes): a 4-byte unknown record.
  std::string unknown = {0x00, 0x04, 0x0C, 0x00};
  data.insert(data.size() - 4, unknown);
  std::stringstream patched(data);
  EXPECT_NO_THROW(read_gds(patched));
}

TEST(GdsReadOptionsTest, ValidateRejectsNonsense) {
  GdsReadOptions options;
  EXPECT_NO_THROW(options.validate());
  options.max_record_bytes = 3;  // smaller than a record header
  EXPECT_THROW(options.validate(), hsdl::CheckError);
  options = {};
  options.max_record_bytes = 70000;  // beyond the 16-bit length field
  EXPECT_THROW(options.validate(), hsdl::CheckError);
  options = {};
  options.layer_filter = 70000;  // beyond the 16-bit layer range
  EXPECT_THROW(options.validate(), hsdl::CheckError);
  options.layer_filter = -1;  // negative = keep all: valid
  EXPECT_NO_THROW(options.validate());
}

TEST(GdsReadOptionsTest, InvalidOptionsRejectedOnRead) {
  std::stringstream ss;
  write_gds(ss, clip_to_gds(demo_clip()));
  GdsReadOptions options;
  options.max_record_bytes = 2;
  EXPECT_THROW(read_gds(ss, options), hsdl::CheckError);
}

TEST(GdsReadOptionsTest, LayerFilterKeepsOnlyThatLayer) {
  GdsLibrary lib = clip_to_gds(demo_clip(), 1);
  lib.cells[0].boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 10, 10)));
  lib.cells[0].layers.push_back(2);
  std::stringstream ss;
  write_gds(ss, lib);
  GdsReadOptions options;
  options.layer_filter = 2;
  GdsLibrary loaded = read_gds(ss, options);
  EXPECT_EQ(loaded.cells[0].rects_on_layer(2).size(), 1u);
  EXPECT_TRUE(loaded.cells[0].rects_on_layer(1).empty());
}

TEST(GdsReadOptionsTest, MaxRecordBytesBoundsRecords) {
  std::stringstream ss;
  write_gds(ss, clip_to_gds(demo_clip()));
  GdsReadOptions options;
  options.max_record_bytes = 16;  // BGNLIB timestamps are 28 bytes
  EXPECT_THROW(read_gds(ss, options), hsdl::CheckError);
}

TEST(GdsReadOptionsTest, StrictModeAcceptsOwnOutput) {
  std::stringstream ss;
  write_gds(ss, hierarchical_lib());
  GdsReadOptions options;
  options.skip_unknown = false;
  EXPECT_NO_THROW(read_gds(ss, options));
}

TEST(GdsReadOptionsTest, StrictModeRejectsUnknownRecords) {
  std::stringstream ss;
  write_gds(ss, clip_to_gds(demo_clip()));
  std::string data = ss.str();
  const std::string unknown = {0x00, 0x04, 0x0C, 0x00};
  data.insert(data.size() - 4, unknown);
  std::stringstream patched(data);
  GdsReadOptions options;
  options.skip_unknown = false;
  EXPECT_THROW(read_gds(patched, options), hsdl::CheckError);
}

TEST(GdsReadOptionsTest, KeepHierarchyFalseReturnsFlatTop) {
  std::stringstream ss;
  write_gds(ss, hierarchical_lib());
  GdsReadOptions options;
  options.keep_hierarchy = false;
  GdsLibrary loaded = read_gds(ss, options);
  ASSERT_EQ(loaded.cells.size(), 1u);
  EXPECT_TRUE(loaded.cells[0].refs.empty());
  auto flat = loaded.cells[0].rects_on_layer(1);
  auto want = flatten_cell(hierarchical_lib(), "TOP", 1);
  std::sort(flat.begin(), flat.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(flat, want);
}

TEST(GdsiiSrefTest, ArefRoundTripsThroughWriteRead) {
  GdsLibrary lib = hierarchical_lib();
  lib.cells[2].refs.push_back({"VIA", {1000, 0}, 4, 3, 80, 60});
  std::stringstream ss;
  write_gds(ss, lib);
  GdsLibrary loaded = read_gds(ss);
  const GdsRef& ref = loaded.cells[2].refs[2];
  EXPECT_TRUE(ref.is_array());
  EXPECT_EQ(ref.cols, 4);
  EXPECT_EQ(ref.rows, 3);
  EXPECT_EQ(ref.col_pitch, 80);
  EXPECT_EQ(ref.row_pitch, 60);
  EXPECT_EQ(ref.instances(), 12);
  // Flatten expands the repetition: 5 original + 12 array VIAs.
  auto rects = flatten_cell(loaded, "TOP", 1);
  EXPECT_EQ(rects.size(), 17u);
  bool found = false;
  for (const Rect& r : rects)
    found |= r == Rect::from_xywh(1000 + 3 * 80, 2 * 60, 40, 40);
  EXPECT_TRUE(found);
}

TEST(GdsiiSrefTest, FlattenDepthGuarded) {
  // A 70-deep reference chain exceeds the hierarchy-depth ceiling.
  GdsLibrary lib;
  constexpr int kDepth = 70;
  for (int i = 0; i < kDepth; ++i) {
    GdsCell cell;
    cell.name = "C" + std::to_string(i);
    if (i + 1 < kDepth) cell.refs.push_back({"C" + std::to_string(i + 1),
                                             {0, 0}});
    lib.cells.push_back(cell);
  }
  lib.cells.back().boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 10, 10)));
  lib.cells.back().layers.push_back(1);
  EXPECT_THROW(flatten_cell(lib, "C0", 1), hsdl::CheckError);
}

TEST(GdsiiSrefTest, FlattenInstanceBlowupGuarded) {
  GdsLibrary lib;
  GdsCell unit;
  unit.name = "UNIT";
  unit.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 1, 1)));
  unit.layers.push_back(1);
  GdsCell top;
  top.name = "TOP";
  top.refs.push_back({"UNIT", {0, 0}, 4096, 4097, 10, 10});
  lib.cells = {unit, top};
  EXPECT_THROW(flatten_cell(lib, "TOP", 1), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::layout

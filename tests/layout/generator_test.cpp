#include "layout/generator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "geom/region.hpp"

namespace hsdl::layout {
namespace {

using geom::Rect;

TEST(ClipGeneratorTest, DeterministicBySeed) {
  GeneratorConfig cfg;
  ClipGenerator a(cfg, 42), b(cfg, 42);
  for (int i = 0; i < 10; ++i) {
    Clip ca = a.generate();
    Clip cb = b.generate();
    EXPECT_EQ(ca.shapes, cb.shapes);
  }
}

TEST(ClipGeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  ClipGenerator a(cfg, 1), b(cfg, 2);
  int identical = 0;
  for (int i = 0; i < 10; ++i)
    identical += (a.generate().shapes == b.generate().shapes);
  EXPECT_LT(identical, 3);
}

TEST(ClipGeneratorTest, WindowMatchesConfig) {
  GeneratorConfig cfg;
  cfg.clip_size = 800;
  ClipGenerator gen(cfg, 3);
  Clip c = gen.generate();
  EXPECT_EQ(c.window, Rect::from_xywh(0, 0, 800, 800));
}

TEST(ClipGeneratorTest, ShapesStayInsideWindow) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 5);
  for (int i = 0; i < 40; ++i) {
    Clip c = gen.generate();
    for (const Rect& r : c.shapes) {
      EXPECT_TRUE(c.window.contains(r))
          << "shape " << r.lo.x << "," << r.lo.y << " escapes window";
    }
  }
}

TEST(ClipGeneratorTest, ShapesMeetMinimumGridSize) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 7);
  for (int i = 0; i < 40; ++i) {
    for (const Rect& r : gen.generate().shapes) {
      EXPECT_GE(r.width(), cfg.rules.grid);
      EXPECT_GE(r.height(), cfg.rules.grid);
    }
  }
}

TEST(ClipGeneratorTest, EveryArchetypeProducesShapes) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 11);
  for (int a = 0; a < kNumArchetypes; ++a) {
    Clip c = gen.generate(static_cast<Archetype>(a));
    EXPECT_FALSE(c.shapes.empty())
        << "archetype " << to_string(static_cast<Archetype>(a));
  }
}

TEST(ClipGeneratorTest, IsolatedArchetypeHasOneShape) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 13);
  Clip c = gen.generate(Archetype::kIsolated);
  EXPECT_EQ(c.shapes.size(), 1u);
}

TEST(ClipGeneratorTest, LineSpaceShapesAreParallel) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 17);
  for (int i = 0; i < 10; ++i) {
    Clip c = gen.generate(Archetype::kLineSpace);
    ASSERT_GT(c.shapes.size(), 1u);
    // All lines share orientation: either all full-width or all full-height.
    bool horizontal = c.shapes[0].width() >= c.shapes[0].height();
    for (const Rect& r : c.shapes)
      EXPECT_EQ(r.width() >= r.height(), horizontal);
  }
}

TEST(ClipGeneratorTest, RoutingRespectsSomeSpacing) {
  GeneratorConfig cfg;
  cfg.stress = 0.0;  // no sub-rule placements allowed
  ClipGenerator gen(cfg, 19);
  for (int i = 0; i < 5; ++i) {
    Clip c = gen.generate(Archetype::kRandomRouting);
    for (std::size_t a = 0; a < c.shapes.size(); ++a)
      for (std::size_t b = a + 1; b < c.shapes.size(); ++b)
        EXPECT_GE(geom::rect_spacing(c.shapes[a], c.shapes[b]),
                  cfg.rules.min_space);
  }
}

TEST(ClipGeneratorTest, StressShrinksPitch) {
  // With high stress, line/space pitches concentrate at the rule floor, so
  // arrays pack more lines into the same window.
  auto mean_lines = [](double stress, std::uint64_t seed) {
    GeneratorConfig cfg;
    cfg.stress = stress;
    ClipGenerator gen(cfg, seed);
    double sum = 0;
    for (int i = 0; i < 30; ++i)
      sum += static_cast<double>(
          gen.generate(Archetype::kLineSpace).shapes.size());
    return sum / 30;
  };
  EXPECT_GT(mean_lines(1.0, 23), mean_lines(0.0, 23) * 1.3);
}

TEST(ClipGeneratorTest, MixedCombinesTwoHalves) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 29);
  Clip c = gen.generate(Archetype::kMixed);
  EXPECT_FALSE(c.shapes.empty());
  for (const Rect& r : c.shapes) EXPECT_TRUE(c.window.contains(r));
}

TEST(ClipGeneratorTest, ConfigValidation) {
  GeneratorConfig bad;
  bad.clip_size = 0;
  EXPECT_THROW(ClipGenerator(bad, 1), hsdl::CheckError);

  bad = GeneratorConfig{};
  bad.stress = 1.5;
  EXPECT_THROW(ClipGenerator(bad, 1), hsdl::CheckError);

  bad = GeneratorConfig{};
  bad.clip_size = 1205;  // off-grid
  EXPECT_THROW(ClipGenerator(bad, 1), hsdl::CheckError);

  bad = GeneratorConfig{};
  bad.rules.min_width = 5;  // below grid
  EXPECT_THROW(ClipGenerator(bad, 1), hsdl::CheckError);
}

TEST(ClipGeneratorTest, ArchetypeNames) {
  EXPECT_STREQ(to_string(Archetype::kLineSpace), "line-space");
  EXPECT_STREQ(to_string(Archetype::kMixed), "mixed");
  EXPECT_STREQ(to_string(Archetype::kTipToTip), "tip-to-tip");
}

TEST(ClipGeneratorTest, DensityInPlausibleBand) {
  GeneratorConfig cfg;
  ClipGenerator gen(cfg, 31);
  for (int i = 0; i < 30; ++i) {
    double d = gen.generate().density();
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 0.9);  // mask layers never approach full coverage
  }
}

}  // namespace
}  // namespace hsdl::layout

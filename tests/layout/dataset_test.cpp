#include "layout/dataset.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::layout {
namespace {

std::vector<LabeledClip> make_clips(std::size_t hotspots,
                                    std::size_t non_hotspots) {
  std::vector<LabeledClip> out;
  for (std::size_t i = 0; i < hotspots; ++i) {
    LabeledClip lc;
    lc.clip.window = geom::Rect::from_xywh(0, 0, 100, 100);
    lc.label = HotspotLabel::kHotspot;
    out.push_back(lc);
  }
  for (std::size_t i = 0; i < non_hotspots; ++i) {
    LabeledClip lc;
    lc.clip.window = geom::Rect::from_xywh(0, 0, 100, 100);
    lc.label = HotspotLabel::kNonHotspot;
    out.push_back(lc);
  }
  return out;
}

TEST(DatasetTest, LabelNames) {
  EXPECT_STREQ(to_string(HotspotLabel::kHotspot), "hotspot");
  EXPECT_STREQ(to_string(HotspotLabel::kNonHotspot), "non-hotspot");
  EXPECT_STREQ(to_string(HotspotLabel::kUnknown), "none");
}

TEST(DatasetTest, CountHotspots) {
  EXPECT_EQ(count_hotspots(make_clips(3, 7)), 3u);
  EXPECT_EQ(count_hotspots({}), 0u);
}

TEST(DatasetTest, BenchmarkDataCounts) {
  BenchmarkData data;
  data.train = make_clips(5, 10);
  data.test = make_clips(2, 8);
  EXPECT_EQ(data.train_hotspots(), 5u);
  EXPECT_EQ(data.train_non_hotspots(), 10u);
  EXPECT_EQ(data.test_hotspots(), 2u);
  EXPECT_EQ(data.test_non_hotspots(), 8u);
}

TEST(SplitValidationTest, SizesMatchFraction) {
  auto all = make_clips(20, 80);
  Rng rng(1);
  std::vector<LabeledClip> train, val;
  split_validation(all, 0.25, rng, train, val);
  EXPECT_EQ(val.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
}

TEST(SplitValidationTest, ZeroFraction) {
  auto all = make_clips(5, 5);
  Rng rng(1);
  std::vector<LabeledClip> train, val;
  split_validation(all, 0.0, rng, train, val);
  EXPECT_TRUE(val.empty());
  EXPECT_EQ(train.size(), all.size());
}

TEST(SplitValidationTest, PartitionIsComplete) {
  auto all = make_clips(10, 30);
  Rng rng(2);
  std::vector<LabeledClip> train, val;
  split_validation(all, 0.3, rng, train, val);
  EXPECT_EQ(train.size() + val.size(), all.size());
  EXPECT_EQ(count_hotspots(train) + count_hotspots(val), 10u);
}

TEST(SplitValidationTest, DeterministicByRngSeed) {
  auto all = make_clips(10, 30);
  std::vector<LabeledClip> t1, v1, t2, v2;
  Rng r1(7), r2(7);
  split_validation(all, 0.25, r1, t1, v1);
  split_validation(all, 0.25, r2, t2, v2);
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); ++i)
    EXPECT_EQ(v1[i].label, v2[i].label);
}

TEST(SplitValidationTest, ActuallyShuffles) {
  // Labels grouped in input; the split should mix them.
  auto all = make_clips(50, 50);
  Rng rng(3);
  std::vector<LabeledClip> train, val;
  split_validation(all, 0.5, rng, train, val);
  // If no shuffling, val would take the first 50 == all hotspots.
  EXPECT_NE(count_hotspots(val), 50u);
  EXPECT_GT(count_hotspots(val), 10u);
}

TEST(SplitValidationTest, InvalidFractionThrows) {
  auto all = make_clips(2, 2);
  Rng rng(1);
  std::vector<LabeledClip> train, val;
  EXPECT_THROW(split_validation(all, 1.0, rng, train, val), CheckError);
  EXPECT_THROW(split_validation(all, -0.1, rng, train, val), CheckError);
}

}  // namespace
}  // namespace hsdl::layout

#include "layout/drc.hpp"

#include <gtest/gtest.h>

namespace hsdl::layout {
namespace {

using geom::Rect;

Clip make_clip(std::vector<Rect> shapes) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = std::move(shapes);
  return c;
}

DesignRules default_rules() { return DesignRules{}; }  // 40/40/10

TEST(DrcTest, CleanClipPasses) {
  DrcReport r = check_rules(
      make_clip({Rect::from_xywh(100, 100, 200, 40),
                 Rect::from_xywh(100, 200, 200, 40)}),
      default_rules());
  EXPECT_TRUE(r.clean());
}

TEST(DrcTest, EmptyClipPasses) {
  EXPECT_TRUE(check_rules(make_clip({}), default_rules()).clean());
}

TEST(DrcTest, NarrowShapeFlagged) {
  DrcReport r = check_rules(make_clip({Rect::from_xywh(0, 0, 200, 30)}),
                            default_rules());
  ASSERT_EQ(r.count(DrcViolationType::kMinWidth), 1u);
  EXPECT_EQ(r.violations[0].measured, 30);
  EXPECT_EQ(r.violations[0].required, 40);
}

TEST(DrcTest, WidthAtRuleIsLegal) {
  EXPECT_TRUE(
      check_rules(make_clip({Rect::from_xywh(0, 0, 40, 40)}), default_rules())
          .clean());
}

TEST(DrcTest, TightSpacingFlagged) {
  DrcReport r = check_rules(make_clip({Rect::from_xywh(0, 0, 100, 40),
                                       Rect::from_xywh(0, 70, 100, 40)}),
                            default_rules());
  ASSERT_EQ(r.count(DrcViolationType::kMinSpacing), 1u);
  EXPECT_EQ(r.violations[0].measured, 30);
}

TEST(DrcTest, SpacingAtRuleIsLegal) {
  EXPECT_TRUE(check_rules(make_clip({Rect::from_xywh(0, 0, 100, 40),
                                     Rect::from_xywh(0, 80, 100, 40)}),
                          default_rules())
                  .clean());
}

TEST(DrcTest, OverlappingShapesAreConnectedNotSpacing) {
  EXPECT_TRUE(check_rules(make_clip({Rect::from_xywh(0, 0, 100, 40),
                                     Rect::from_xywh(50, 20, 100, 40)}),
                          default_rules())
                  .clean());
}

TEST(DrcTest, TouchingShapesAreConnected) {
  EXPECT_TRUE(check_rules(make_clip({Rect::from_xywh(0, 0, 100, 40),
                                     Rect::from_xywh(100, 0, 100, 40)}),
                          default_rules())
                  .clean());
}

TEST(DrcTest, OffGridFlagged) {
  DrcReport r = check_rules(make_clip({Rect::from_xywh(5, 0, 100, 40)}),
                            default_rules());
  EXPECT_EQ(r.count(DrcViolationType::kOffGrid), 1u);
}

TEST(DrcTest, MultipleViolationTypes) {
  // Narrow AND off-grid AND too close to a neighbour.
  DrcReport r = check_rules(make_clip({Rect::from_xywh(3, 0, 100, 30),
                                       Rect::from_xywh(0, 50, 100, 40)}),
                            default_rules());
  EXPECT_EQ(r.count(DrcViolationType::kMinWidth), 1u);
  EXPECT_EQ(r.count(DrcViolationType::kOffGrid), 1u);
  EXPECT_EQ(r.count(DrcViolationType::kMinSpacing), 1u);
  EXPECT_EQ(r.violations.size(), 3u);
}

TEST(DrcTest, GeneratorAtZeroStressIsMostlyClean) {
  GeneratorConfig cfg;
  cfg.stress = 0.0;
  ClipGenerator gen(cfg, 77);
  int spacing_violations = 0;
  for (int i = 0; i < 20; ++i) {
    DrcReport r = check_rules(gen.generate(), cfg.rules);
    spacing_violations +=
        static_cast<int>(r.count(DrcViolationType::kMinSpacing));
  }
  EXPECT_EQ(spacing_violations, 0);
}

TEST(DrcTest, StressedGeneratorViolatesSpacing) {
  GeneratorConfig cfg;
  cfg.stress = 1.0;
  ClipGenerator gen(cfg, 78);
  int spacing_violations = 0;
  for (int i = 0; i < 20; ++i)
    spacing_violations += static_cast<int>(
        check_rules(gen.generate(), cfg.rules)
            .count(DrcViolationType::kMinSpacing));
  EXPECT_GT(spacing_violations, 0);
}

TEST(DrcTest, ViolationTypeNames) {
  EXPECT_STREQ(to_string(DrcViolationType::kMinWidth), "min-width");
  EXPECT_STREQ(to_string(DrcViolationType::kMinSpacing), "min-spacing");
  EXPECT_STREQ(to_string(DrcViolationType::kOffGrid), "off-grid");
}

}  // namespace
}  // namespace hsdl::layout

#include "layout/clip.hpp"

#include <gtest/gtest.h>

namespace hsdl::layout {
namespace {

using geom::Rect;

TEST(ClipTest, DensityEmptyClip) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 100, 100);
  EXPECT_DOUBLE_EQ(c.density(), 0.0);
}

TEST(ClipTest, DensityFullCoverage) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 100, 100);
  c.shapes = {Rect::from_xywh(0, 0, 100, 100)};
  EXPECT_DOUBLE_EQ(c.density(), 1.0);
}

TEST(ClipTest, DensityPartial) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 100, 100);
  c.shapes = {Rect::from_xywh(0, 0, 50, 100)};
  EXPECT_DOUBLE_EQ(c.density(), 0.5);
}

TEST(ClipTest, DensityClipsShapesToWindow) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 100, 100);
  // Half of this shape hangs outside the window.
  c.shapes = {Rect::from_xywh(50, 0, 100, 100)};
  EXPECT_DOUBLE_EQ(c.density(), 0.5);
}

TEST(ClipTest, DensityEmptyWindow) {
  Clip c;
  EXPECT_DOUBLE_EQ(c.density(), 0.0);
}

TEST(ClipTest, NormalizedMovesToOrigin) {
  Clip c;
  c.window = Rect::from_xywh(500, 300, 100, 100);
  c.shapes = {Rect::from_xywh(510, 310, 20, 20)};
  Clip n = c.normalized();
  EXPECT_EQ(n.window, Rect::from_xywh(0, 0, 100, 100));
  EXPECT_EQ(n.shapes[0], Rect::from_xywh(10, 10, 20, 20));
  // Density invariant under normalization.
  EXPECT_DOUBLE_EQ(n.density(), c.density());
}

TEST(ClipTest, NormalizedIdempotent) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 50, 50);
  c.shapes = {Rect::from_xywh(5, 5, 10, 10)};
  Clip n = c.normalized().normalized();
  EXPECT_EQ(n.window, c.window);
  EXPECT_EQ(n.shapes, c.shapes);
}

}  // namespace
}  // namespace hsdl::layout

// Streaming hierarchical GDSII reader (DESIGN.md §16): structural
// round-trips against the DOM reader and flatten_cell oracle, lazy
// window queries vs the flatten oracle, AREF repetition round-trips,
// and the corruption sweep (bit flips, truncations, oversized record
// lengths, reference cycles) — a damaged stream is rejected with a
// CheckError-family diagnostic or parses to something valid, never a
// crash or foreign exception.
#include "layout/gds_stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/io.hpp"
#include "layout/gdsii.hpp"

namespace hsdl::layout {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Rect;

/// Two-level hierarchy with an AREF, an overlapping SREF and local top
/// shapes — every placement form the streaming reader supports.
GdsLibrary hier_lib() {
  GdsLibrary lib;
  GdsCell via;
  via.name = "VIA";
  via.boundaries.push_back(Polygon::from_rect(Rect::from_xywh(0, 0, 40, 40)));
  via.layers.push_back(1);

  GdsCell pair;
  pair.name = "PAIR";
  pair.refs.push_back({"VIA", {0, 0}});
  pair.refs.push_back({"VIA", {100, 0}});

  GdsCell top;
  top.name = "TOP";
  top.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(500, 500, 60, 60)));
  top.layers.push_back(1);
  top.refs.push_back({"PAIR", {0, 0}, 3, 2, 300, 250});  // 3x2 array
  top.refs.push_back({"PAIR", {50, 100}});  // overlaps the array
  lib.cells = {via, pair, top};
  return lib;
}

std::string serialized(const GdsLibrary& lib) {
  std::ostringstream os;
  write_gds(os, lib);
  return os.str();
}

HierLayout read_hier(const std::string& bytes,
                     const GdsReadOptions& options = {}) {
  std::istringstream is(bytes);
  return read_hier_gds(is, options);
}

std::vector<Rect> sorted(std::vector<Rect> v) {
  std::sort(v.begin(), v.end());
  return v;
}

enum class Outcome { kAccepted, kRejected, kForeignException };

Outcome try_read_hier(const std::string& bytes) {
  try {
    (void)read_hier(bytes);
    return Outcome::kAccepted;
  } catch (const CheckError&) {
    return Outcome::kRejected;
  } catch (...) {
    return Outcome::kForeignException;
  }
}

TEST(GdsStreamTest, MatchesDomReaderAndFlattenOracle) {
  const GdsLibrary lib = hier_lib();
  const HierLayout hier = read_hier(serialized(lib));
  ASSERT_EQ(hier.cells().size(), 3u);
  EXPECT_EQ(hier.cells()[hier.top()].name, "TOP");
  EXPECT_EQ(sorted(hier.flatten(1)), sorted(flatten_cell(lib, "TOP", 1)));
  // 1 top shape + (6 array + 1 single) PAIR x 2 VIA = 15 rects.
  EXPECT_EQ(hier.flatten(1).size(), 15u);
}

TEST(GdsStreamTest, ExtentIsFlattenedBbox) {
  const HierLayout hier = read_hier(serialized(hier_lib()));
  Rect bbox;
  for (const Rect& r : hier.flatten(1)) bbox = bbox.bbox_union(r);
  EXPECT_EQ(hier.extent(), bbox);
}

TEST(GdsStreamTest, QueryMatchesFlattenOracle) {
  const HierLayout hier = read_hier(serialized(hier_lib()));
  const std::vector<Rect> flat = hier.flatten(1);
  // Windows chosen to land inside one array instance, straddle two,
  // cover nothing, and cover everything.
  const Rect windows[] = {
      Rect::from_xywh(0, 0, 120, 120),
      Rect::from_xywh(250, 200, 400, 300),  // straddles array columns
      Rect::from_xywh(5000, 5000, 100, 100),
      hier.extent(),
      Rect::from_xywh(90, -10, 40, 500),
  };
  for (const Rect& w : windows) {
    std::vector<Rect> got;
    hier.query(w, 1, got);
    std::vector<Rect> want;
    for (const Rect& r : flat) {
      const Rect cut = r.intersect(w);
      if (!cut.empty()) want.push_back(cut);
    }
    EXPECT_EQ(sorted(got), sorted(want)) << "window " << w.lo.x << ","
                                         << w.lo.y;
  }
}

TEST(GdsStreamTest, ArefRepetitionRoundTrips) {
  const HierLayout hier = read_hier(serialized(hier_lib()));
  const HierCell& top = hier.cells()[hier.top()];
  ASSERT_EQ(top.placements.size(), 2u);
  const HierPlacement& array = top.placements[0];
  EXPECT_EQ(array.cols, 3);
  EXPECT_EQ(array.rows, 2);
  EXPECT_EQ(array.col_pitch, 300);
  EXPECT_EQ(array.row_pitch, 250);
  EXPECT_EQ(array.instances(), 6);
  EXPECT_EQ(array.origin(2, 1), (Point{600, 250}));
  // And through the DOM reader: the same GdsRef comes back.
  std::istringstream is(serialized(hier_lib()));
  const GdsLibrary loaded = read_gds(is);
  const GdsRef& ref = loaded.cells[2].refs[0];
  EXPECT_TRUE(ref.is_array());
  EXPECT_EQ(ref.cols, 3);
  EXPECT_EQ(ref.rows, 2);
  EXPECT_EQ(ref.col_pitch, 300);
  EXPECT_EQ(ref.row_pitch, 250);
}

// -- raw-record builders (for streams the writer cannot produce) ------------

void put_u16(std::string& s, std::uint16_t v) {
  s.push_back(static_cast<char>(v >> 8));
  s.push_back(static_cast<char>(v & 0xFF));
}

void put_i32(std::string& s, std::int32_t v) {
  put_u16(s, static_cast<std::uint16_t>(static_cast<std::uint32_t>(v) >> 16));
  put_u16(s, static_cast<std::uint16_t>(static_cast<std::uint32_t>(v)));
}

void rec(std::string& s, std::uint8_t type, std::uint8_t dtype,
         const std::string& payload = {}) {
  put_u16(s, static_cast<std::uint16_t>(payload.size() + 4));
  s.push_back(static_cast<char>(type));
  s.push_back(static_cast<char>(dtype));
  s += payload;
}

/// Minimal library: UNIT with one 40x40 rect, TOP with one AREF of UNIT
/// whose 3-point XY walks in the negative x direction (col_ref left of
/// the origin) — the writer always emits positive pitches, so this
/// exercises the reader's negative-pitch normalization.
std::string negative_pitch_stream() {
  std::string s;
  rec(s, 0x00, 0x02, std::string("\x02\x58", 2));  // HEADER v600
  rec(s, 0x01, 0x02, std::string(24, '\0'));       // BGNLIB
  rec(s, 0x02, 0x06, "NEG");                       // LIBNAME
  rec(s, 0x03, 0x05, std::string(16, '\0'));       // UNITS (zeros: ok)
  rec(s, 0x05, 0x02, std::string(24, '\0'));       // BGNSTR
  rec(s, 0x06, 0x06, "UNIT");                      // STRNAME
  {
    rec(s, 0x08, 0x00);                            // BOUNDARY
    std::string layer;
    put_u16(layer, 1);
    rec(s, 0x0D, 0x02, layer);                     // LAYER 1
    std::string xy;
    for (const Point p : {Point{0, 0}, Point{40, 0}, Point{40, 40},
                          Point{0, 40}, Point{0, 0}}) {
      put_i32(xy, static_cast<std::int32_t>(p.x));
      put_i32(xy, static_cast<std::int32_t>(p.y));
    }
    rec(s, 0x10, 0x03, xy);                        // XY
    rec(s, 0x11, 0x00);                            // ENDEL
  }
  rec(s, 0x07, 0x00);                              // ENDSTR
  rec(s, 0x05, 0x02, std::string(24, '\0'));       // BGNSTR
  rec(s, 0x06, 0x06, "TOP");                       // STRNAME
  {
    rec(s, 0x0B, 0x00);                            // AREF
    rec(s, 0x12, 0x06, "UNIT");                    // SNAME
    std::string colrow;
    put_u16(colrow, 3);                            // 3 cols
    put_u16(colrow, 1);                            // 1 row
    rec(s, 0x13, 0x02, colrow);                    // COLROW
    std::string xy;                                // origin (600, 0),
    put_i32(xy, 600);                              // col_ref 300 nm LEFT
    put_i32(xy, 0);                                // of it per column
    put_i32(xy, 600 - 3 * 100);
    put_i32(xy, 0);
    put_i32(xy, 600);
    put_i32(xy, 0);                                // row span 0 (1 row)
    rec(s, 0x10, 0x03, xy);                        // XY
    rec(s, 0x11, 0x00);                            // ENDEL
  }
  rec(s, 0x07, 0x00);                              // ENDSTR
  rec(s, 0x04, 0x00);                              // ENDLIB
  return s;
}

TEST(GdsStreamTest, NegativePitchArefNormalized) {
  const HierLayout hier = read_hier(negative_pitch_stream());
  const HierCell& top = hier.cells()[hier.top()];
  ASSERT_EQ(top.placements.size(), 1u);
  const HierPlacement& p = top.placements[0];
  EXPECT_EQ(p.cols, 3);
  EXPECT_GT(p.col_pitch, 0);  // normalized to a positive step
  EXPECT_EQ(p.col_pitch, 100);
  EXPECT_EQ(p.at, (Point{400, 0}));  // origin moved to the low corner
  const std::vector<Rect> flat = sorted(hier.flatten(1));
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat[0].lo, (Point{400, 0}));
  EXPECT_EQ(flat[1].lo, (Point{500, 0}));
  EXPECT_EQ(flat[2].lo, (Point{600, 0}));
}

TEST(GdsStreamTest, CyclicSrefRejected) {
  GdsLibrary lib;
  GdsCell t;
  t.name = "T";
  t.boundaries.push_back(Polygon::from_rect(Rect::from_xywh(0, 0, 10, 10)));
  t.layers.push_back(1);
  t.refs.push_back({"A", {0, 0}});
  GdsCell a;
  a.name = "A";
  a.refs.push_back({"B", {0, 0}});
  GdsCell b;
  b.name = "B";
  b.refs.push_back({"A", {10, 10}});
  lib.cells = {t, a, b};
  try {
    read_hier(serialized(lib));
    FAIL() << "cyclic hierarchy accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos)
        << e.what();
  }
}

TEST(GdsStreamTest, FullyCyclicLibraryRejected) {
  // A <-> B with no unreferenced cell at all: no top exists.
  GdsLibrary lib;
  GdsCell a;
  a.name = "A";
  a.refs.push_back({"B", {0, 0}});
  GdsCell b;
  b.name = "B";
  b.refs.push_back({"A", {0, 0}});
  lib.cells = {a, b};
  EXPECT_THROW(read_hier(serialized(lib)), CheckError);
}

TEST(GdsStreamTest, DuplicateCellNamesRejected) {
  GdsLibrary lib = hier_lib();
  lib.cells[1].name = "VIA";  // two cells named VIA
  EXPECT_THROW(read_hier(serialized(lib)), CheckError);
}

TEST(GdsStreamTest, UnknownReferenceRejected) {
  GdsLibrary lib = hier_lib();
  lib.cells[2].refs[0].cell = "GHOST";
  EXPECT_THROW(read_hier(serialized(lib)), CheckError);
}

TEST(GdsStreamTest, TwoUnreferencedTopsRejected) {
  GdsLibrary lib = hier_lib();
  GdsCell other;
  other.name = "OTHER";
  other.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 5, 5)));
  other.layers.push_back(1);
  lib.cells.push_back(other);
  EXPECT_THROW(read_hier(serialized(lib)), CheckError);
}

TEST(GdsStreamTest, EveryTruncationRejected) {
  const std::string good = serialized(hier_lib());
  ASSERT_EQ(try_read_hier(good), Outcome::kAccepted);
  for (std::size_t len = 0; len < good.size(); ++len)
    EXPECT_EQ(try_read_hier(good.substr(0, len)), Outcome::kRejected)
        << "truncated to " << len << " of " << good.size() << " bytes";
}

TEST(GdsStreamTest, BitFlipsNeverEscapeTheErrorTaxonomy) {
  // GDSII has no checksum, so a flipped bit may still parse (e.g. a
  // coordinate changed) — but it must either parse or be rejected with
  // a CheckError; anything else is a harness escape.
  const std::string good = serialized(hier_lib());
  for (std::size_t i = 0; i < good.size(); ++i)
    for (int b = 0; b < 8; ++b) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << b));
      EXPECT_NE(try_read_hier(bad), Outcome::kForeignException)
          << "bit flip at byte " << i << " bit " << b;
    }
}

TEST(GdsStreamTest, OversizedRecordLengthRejectedWithPosition) {
  std::string bad = serialized(hier_lib());
  // First record (HEADER) claims the 16-bit maximum — far past both
  // the stream end and any sane record.
  bad[0] = '\xFF';
  bad[1] = '\xFF';
  try {
    read_hier(bad);
    FAIL() << "oversized record length accepted";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.offset(), 0u);  // positioned at the damaged record
  }
}

TEST(GdsStreamTest, RecordBoundOptionEnforced) {
  GdsReadOptions options;
  options.max_record_bytes = 16;  // timestamps records are 28 bytes
  try {
    read_hier(serialized(hier_lib()), options);
    FAIL() << "record above the configured bound accepted";
  } catch (const io::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("record bound"), std::string::npos)
        << e.what();
  }
}

TEST(GdsStreamTest, KeepHierarchyFalseCollapsesToFlatTop) {
  GdsReadOptions options;
  options.keep_hierarchy = false;
  const HierLayout flat = read_hier(serialized(hier_lib()), options);
  const HierLayout hier = read_hier(serialized(hier_lib()));
  ASSERT_EQ(flat.cells().size(), 1u);
  EXPECT_TRUE(flat.cells()[0].placements.empty());
  EXPECT_EQ(sorted(flat.flatten(1)), sorted(hier.flatten(1)));
  EXPECT_EQ(flat.extent(), hier.extent());
}

TEST(GdsStreamTest, LayerFilterDropsOtherLayers) {
  GdsLibrary lib = hier_lib();
  lib.cells[2].boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 10, 10)));
  lib.cells[2].layers.push_back(2);
  GdsReadOptions options;
  options.layer_filter = 2;
  const HierLayout hier = read_hier(serialized(lib), options);
  EXPECT_EQ(hier.flatten(2).size(), 1u);
  EXPECT_TRUE(hier.flatten(1).empty());
}

TEST(GdsStreamTest, HierFromLibraryMatchesStreamRead) {
  const GdsLibrary lib = hier_lib();
  const HierLayout from_stream = read_hier(serialized(lib));
  const HierLayout from_lib = hier_from_library(lib);
  EXPECT_EQ(from_stream.fingerprint(), from_lib.fingerprint());
  EXPECT_EQ(from_stream.extent(), from_lib.extent());
  EXPECT_EQ(sorted(from_stream.flatten(1)), sorted(from_lib.flatten(1)));
}

TEST(GdsStreamTest, ContentHashSharedByCongruentCells) {
  GdsLibrary lib;
  GdsCell a;
  a.name = "A";
  a.boundaries.push_back(Polygon::from_rect(Rect::from_xywh(0, 0, 30, 30)));
  a.layers.push_back(1);
  GdsCell b = a;
  b.name = "B";  // identical content, different name
  GdsCell top;
  top.name = "TOP";
  top.refs.push_back({"A", {0, 0}});
  top.refs.push_back({"B", {500, 0}});
  lib.cells = {a, b, top};
  const HierLayout hier = hier_from_library(lib);
  EXPECT_EQ(hier.cells()[0].content_hash, hier.cells()[1].content_hash);
  EXPECT_NE(hier.cells()[0].content_hash,
            hier.cells()[hier.top()].content_hash);
}

TEST(GdsStreamTest, FlatInstanceCountMultipliesNestedArrays) {
  GdsLibrary lib;
  GdsCell unit;
  unit.name = "UNIT";
  unit.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 10, 10)));
  unit.layers.push_back(1);
  GdsCell row;
  row.name = "ROW";
  row.refs.push_back({"UNIT", {0, 0}, 10, 1, 20, 0});
  GdsCell top;
  top.name = "TOP";
  top.refs.push_back({"ROW", {0, 0}, 1, 5, 0, 20});
  lib.cells = {unit, row, top};
  const HierLayout hier = hier_from_library(lib);
  // 5 ROW placements, each placing 10 UNITs: 5 + 5*10 = 55.
  EXPECT_EQ(hier.flat_instance_count(), 55);
  EXPECT_EQ(hier.flatten(1).size(), 50u);
}

TEST(GdsStreamTest, AdversarialRepetitionGuarded) {
  GdsLibrary lib;
  GdsCell unit;
  unit.name = "UNIT";
  unit.boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 1, 1)));
  unit.layers.push_back(1);
  GdsCell top;
  top.name = "TOP";
  // 4096 x 4097 > the 2^24 flatten ceiling — finalize is fine (lazy),
  // flatten must refuse instead of allocating gigabytes.
  top.refs.push_back({"UNIT", {0, 0}, 4096, 4097, 10, 10});
  lib.cells = {unit, top};
  const HierLayout hier = hier_from_library(lib);
  EXPECT_GT(hier.flat_instance_count(), std::int64_t{1} << 24);
  EXPECT_THROW(hier.flatten(1), CheckError);
  // Lazy queries stay O(window): this does not expand the array.
  std::vector<Rect> out;
  hier.query(Rect::from_xywh(0, 0, 15, 15), 1, out);
  EXPECT_EQ(out.size(), 4u);  // origins (0,0),(10,0),(0,10),(10,10)
}

TEST(GdsStreamTest, PresentLayersAscending) {
  GdsLibrary lib = hier_lib();
  lib.cells[2].boundaries.push_back(
      Polygon::from_rect(Rect::from_xywh(0, 0, 10, 10)));
  lib.cells[2].layers.push_back(7);
  const HierLayout hier = hier_from_library(lib);
  EXPECT_EQ(hier.present_layers(), (std::vector<std::int16_t>{1, 7}));
}

TEST(GdsStreamTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hier.gds";
  write_gds_file(path, hier_lib());
  const HierLayout hier = read_hier_gds_file(path);
  EXPECT_EQ(hier.cells().size(), 3u);
}

}  // namespace
}  // namespace hsdl::layout

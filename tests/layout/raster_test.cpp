#include "layout/raster.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::layout {
namespace {

using geom::Rect;

Clip make_clip(geom::Coord size, std::vector<Rect> shapes) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, size, size);
  c.shapes = std::move(shapes);
  return c;
}

TEST(MaskImageTest, ConstructionAndFill) {
  MaskImage img(4, 3, 2.0, 0.5f);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_DOUBLE_EQ(img.nm_per_px(), 2.0);
  EXPECT_FLOAT_EQ(img.at(3, 2), 0.5f);
  EXPECT_DOUBLE_EQ(img.mean(), 0.5);
}

TEST(MaskImageTest, RowMajorLayout) {
  MaskImage img(3, 2, 1.0);
  img.at(2, 1) = 7.0f;
  EXPECT_FLOAT_EQ(img.data()[1 * 3 + 2], 7.0f);
  EXPECT_FLOAT_EQ(img.row(1)[2], 7.0f);
}

TEST(MaskImageTest, MaxAbsDiff) {
  MaskImage a(2, 2, 1.0), b(2, 2, 1.0);
  b.at(1, 1) = 0.25f;
  EXPECT_DOUBLE_EQ(MaskImage::max_abs_diff(a, b), 0.25);
  EXPECT_DOUBLE_EQ(MaskImage::max_abs_diff(a, a), 0.0);
}

TEST(MaskImageTest, MaxAbsDiffShapeMismatchThrows) {
  MaskImage a(2, 2, 1.0), b(3, 2, 1.0);
  EXPECT_THROW(MaskImage::max_abs_diff(a, b), hsdl::CheckError);
}

TEST(RasterizeTest, EmptyClipIsAllZero) {
  MaskImage img = rasterize(make_clip(100, {}), 1.0);
  EXPECT_EQ(img.width(), 100u);
  EXPECT_DOUBLE_EQ(img.mean(), 0.0);
}

TEST(RasterizeTest, FullCoverage) {
  MaskImage img =
      rasterize(make_clip(100, {Rect::from_xywh(0, 0, 100, 100)}), 1.0);
  EXPECT_DOUBLE_EQ(img.mean(), 1.0);
}

TEST(RasterizeTest, ExactPixelCountAt1nm) {
  MaskImage img =
      rasterize(make_clip(100, {Rect::from_xywh(10, 20, 30, 40)}), 1.0);
  double set = img.mean() * 100 * 100;
  EXPECT_NEAR(set, 30 * 40, 0.5);
}

TEST(RasterizeTest, ExactPixelCountAt2nm) {
  MaskImage img =
      rasterize(make_clip(100, {Rect::from_xywh(10, 20, 30, 40)}), 2.0);
  EXPECT_EQ(img.width(), 50u);
  double set = img.mean() * 50 * 50;
  EXPECT_NEAR(set, 15 * 20, 0.5);
}

TEST(RasterizeTest, AbuttingShapesDoNotDoubleCover) {
  // Two abutting rects tile the window exactly.
  MaskImage img = rasterize(make_clip(100, {Rect::from_xywh(0, 0, 50, 100),
                                            Rect::from_xywh(50, 0, 50, 100)}),
                            1.0);
  EXPECT_DOUBLE_EQ(img.mean(), 1.0);
}

TEST(RasterizeTest, AbuttingShapesLeaveNoSeam) {
  MaskImage img = rasterize(make_clip(100, {Rect::from_xywh(0, 0, 50, 100),
                                            Rect::from_xywh(50, 0, 50, 100)}),
                            2.0);
  for (std::size_t x = 0; x < img.width(); ++x)
    EXPECT_FLOAT_EQ(img.at(x, 25), 1.0f) << "column " << x;
}

TEST(RasterizeTest, ShapeOutsideWindowIgnored) {
  MaskImage img =
      rasterize(make_clip(100, {Rect::from_xywh(200, 200, 50, 50)}), 1.0);
  EXPECT_DOUBLE_EQ(img.mean(), 0.0);
}

TEST(RasterizeTest, ShapePartiallyOutsideClipped) {
  MaskImage img =
      rasterize(make_clip(100, {Rect::from_xywh(80, 0, 50, 100)}), 1.0);
  EXPECT_NEAR(img.mean() * 100 * 100, 20 * 100, 0.5);
}

TEST(RasterizeTest, NonIntegerPixelCountThrows) {
  EXPECT_THROW(rasterize(make_clip(100, {}), 3.0), hsdl::CheckError);
}

TEST(RasterizeTest, EmptyWindowThrows) {
  Clip c;
  EXPECT_THROW(rasterize(c, 1.0), hsdl::CheckError);
}

TEST(RasterizeTest, PixelCenterConvention) {
  // A 1 nm sliver at x=[0,1) covers the centre of pixel 0 at 1 nm/px...
  MaskImage img1 =
      rasterize(make_clip(10, {Rect::from_xywh(0, 0, 1, 10)}), 1.0);
  EXPECT_FLOAT_EQ(img1.at(0, 5), 1.0f);
  // ...but not the centre of pixel 0 at 2 nm/px (centre at 1.0 nm).
  MaskImage img2 =
      rasterize(make_clip(10, {Rect::from_xywh(0, 0, 1, 10)}), 2.0);
  EXPECT_FLOAT_EQ(img2.at(0, 2), 0.0f);
}

TEST(RasterizeTest, WindowOffsetIrrelevant) {
  Clip a = make_clip(100, {Rect::from_xywh(10, 10, 30, 30)});
  Clip b;
  b.window = Rect::from_xywh(1000, 2000, 100, 100);
  b.shapes = {Rect::from_xywh(1010, 2010, 30, 30)};
  MaskImage ia = rasterize(a, 2.0);
  MaskImage ib = rasterize(b, 2.0);
  EXPECT_DOUBLE_EQ(MaskImage::max_abs_diff(ia, ib), 0.0);
}

}  // namespace
}  // namespace hsdl::layout

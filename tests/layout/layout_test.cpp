#include "layout/layout.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::layout {
namespace {

using geom::Rect;

TEST(LayoutTest, ConstructionValidation) {
  EXPECT_THROW(Layout(Rect{}, {}), hsdl::CheckError);
  // Shape outside the extent rejected.
  EXPECT_THROW(Layout(Rect::from_xywh(0, 0, 100, 100),
                      {Rect::from_xywh(200, 0, 10, 10)}),
               hsdl::CheckError);
}

TEST(LayoutTest, ExtractClipCutsShapes) {
  Layout chip(Rect::from_xywh(0, 0, 1000, 1000),
              {Rect::from_xywh(0, 480, 1000, 40),     // crossing wire
               Rect::from_xywh(100, 100, 50, 50),     // inside window
               Rect::from_xywh(800, 800, 50, 50)});   // outside window
  Clip clip = chip.extract_clip(Rect::from_xywh(0, 0, 500, 500));
  ASSERT_EQ(clip.shapes.size(), 2u);
  // The crossing wire (y 480..520) is clipped to the window: 500x20 left.
  bool found_wire = false;
  for (const Rect& r : clip.shapes)
    if (r.width() == 500) {
      EXPECT_EQ(r.height(), 20);
      found_wire = true;
    }
  EXPECT_TRUE(found_wire);
}

TEST(LayoutTest, ExtractClipEmptyRegion) {
  Layout chip(Rect::from_xywh(0, 0, 1000, 1000),
              {Rect::from_xywh(0, 0, 100, 100)});
  Clip clip = chip.extract_clip(Rect::from_xywh(500, 500, 200, 200));
  EXPECT_TRUE(clip.shapes.empty());
  EXPECT_EQ(clip.window, Rect::from_xywh(500, 500, 200, 200));
}

TEST(LayoutTest, DensityMatchesUnionArea) {
  Layout chip(Rect::from_xywh(0, 0, 100, 100),
              {Rect::from_xywh(0, 0, 50, 100),
               Rect::from_xywh(25, 0, 50, 100)});  // overlapping
  EXPECT_DOUBLE_EQ(chip.density(), 0.75);
}

TEST(GenerateChipTest, DimensionsValidated) {
  GeneratorConfig cfg;  // clip_size 1200
  EXPECT_THROW(generate_chip(1000, 2400, cfg, 1), hsdl::CheckError);
  EXPECT_THROW(generate_chip(0, 1200, cfg, 1), hsdl::CheckError);
}

TEST(GenerateChipTest, CoversRequestedArea) {
  GeneratorConfig cfg;
  Layout chip = generate_chip(2400, 2400, cfg, 7);
  EXPECT_EQ(chip.extent(), Rect::from_xywh(0, 0, 2400, 2400));
  EXPECT_GT(chip.shape_count(), 10u);
  // Shapes in every quadrant (each tile emits geometry).
  bool quadrant[2][2] = {{false, false}, {false, false}};
  for (const Rect& r : chip.shapes())
    quadrant[r.lo.y / 1200 == 0 ? 0 : 1][r.lo.x / 1200 == 0 ? 0 : 1] = true;
  EXPECT_TRUE(quadrant[0][0] && quadrant[0][1] && quadrant[1][0] &&
              quadrant[1][1]);
}

TEST(GenerateChipTest, DeterministicBySeed) {
  GeneratorConfig cfg;
  Layout a = generate_chip(2400, 1200, cfg, 11);
  Layout b = generate_chip(2400, 1200, cfg, 11);
  EXPECT_EQ(a.shapes(), b.shapes());
  Layout c = generate_chip(2400, 1200, cfg, 12);
  EXPECT_NE(a.shapes(), c.shapes());
}

TEST(GenerateChipTest, TileClipsMatchDirectExtraction) {
  GeneratorConfig cfg;
  Layout chip = generate_chip(2400, 2400, cfg, 13);
  // Extracting a tile-aligned window returns exactly that tile's shapes.
  Clip tile = chip.extract_clip(Rect::from_xywh(1200, 0, 1200, 1200));
  for (const Rect& r : tile.shapes)
    EXPECT_TRUE(tile.window.contains(r));
}

}  // namespace
}  // namespace hsdl::layout

// Corruption harness: deterministic bit-flip, truncation and
// length-field mutation sweeps over real serialized artifacts (v2
// checkpoints, GLF 2 clip sets, GDSII streams). Every mutation must be
// rejected with a CheckError-family diagnostic — never accepted, never
// a crash or a foreign exception type.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/io.hpp"
#include "layout/gdsii.hpp"
#include "layout/glf.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"

namespace hsdl {
namespace {

nn::Sequential make_net(std::uint64_t seed) {
  Rng rng(seed);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(4, 3, rng);
  seq.emplace<nn::Linear>(3, 2, rng);
  return seq;
}

std::vector<layout::LabeledClip> sample_clips() {
  std::vector<layout::LabeledClip> clips(2);
  clips[0].clip.window = geom::Rect::from_xywh(0, 0, 1200, 1200);
  clips[0].clip.shapes = {geom::Rect::from_xywh(0, 0, 100, 40),
                          geom::Rect::from_xywh(200, 300, 40, 400)};
  clips[0].label = layout::HotspotLabel::kHotspot;
  clips[1].clip.window = geom::Rect::from_xywh(100, 100, 1200, 1200);
  clips[1].clip.shapes = {geom::Rect::from_xywh(150, 150, 60, 60)};
  clips[1].label = layout::HotspotLabel::kNonHotspot;
  return clips;
}

/// Attempts a checkpoint load; returns true when the loader rejected it
/// via the CheckError taxonomy. Any other exception type (or an
/// accepting load) fails the calling test.
enum class Outcome { kAccepted, kRejected, kForeignException };

Outcome try_load_checkpoint(const std::string& bytes) {
  nn::Sequential net = make_net(99);
  try {
    nn::deserialize_params(bytes, net.params());
    return Outcome::kAccepted;
  } catch (const CheckError&) {
    return Outcome::kRejected;
  } catch (...) {
    return Outcome::kForeignException;
  }
}

Outcome try_load_glf(const std::string& text) {
  try {
    std::istringstream is(text);
    (void)layout::read_glf(is);
    return Outcome::kAccepted;
  } catch (const CheckError&) {
    return Outcome::kRejected;
  } catch (...) {
    return Outcome::kForeignException;
  }
}

Outcome try_load_gds(const std::string& bytes) {
  try {
    std::istringstream is(bytes);
    (void)layout::read_gds(is);
    return Outcome::kAccepted;
  } catch (const CheckError&) {
    return Outcome::kRejected;
  } catch (...) {
    return Outcome::kForeignException;
  }
}

// -- v2 checkpoint -----------------------------------------------------------

TEST(CheckpointCorruptionTest, PristineBufferLoads) {
  nn::Sequential net = make_net(1);
  ASSERT_EQ(try_load_checkpoint(nn::serialize_params(net.params())),
            Outcome::kAccepted);
}

TEST(CheckpointCorruptionTest, EveryBitFlipRejected) {
  nn::Sequential net = make_net(1);
  const std::string good = nn::serialize_params(net.params());
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < good.size(); ++i)
    for (int b = 0; b < 8; ++b) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << b));
      const Outcome out = try_load_checkpoint(bad);
      EXPECT_EQ(out, Outcome::kRejected)
          << "bit flip at byte " << i << " bit " << b
          << (out == Outcome::kAccepted ? " was accepted"
                                        : " threw a non-CheckError");
      rejected += out == Outcome::kRejected;
    }
  EXPECT_EQ(rejected, good.size() * 8);
}

TEST(CheckpointCorruptionTest, EveryTruncationRejected) {
  nn::Sequential net = make_net(2);
  const std::string good = nn::serialize_params(net.params());
  for (std::size_t len = 0; len < good.size(); ++len)
    EXPECT_EQ(try_load_checkpoint(good.substr(0, len)), Outcome::kRejected)
        << "truncated to " << len << " of " << good.size() << " bytes";
}

TEST(CheckpointCorruptionTest, LengthFieldMutationsRejected) {
  nn::Sequential net = make_net(3);
  const std::string good = nn::serialize_params(net.params());
  // Offset 16: u64 param count (after the 16-byte format header).
  // Offset 24: u32 name length of the first param record.
  const std::uint64_t counts[] = {0, 1, 3, 0xFFFFFFFFFFFFFFFFull};
  for (std::uint64_t v : counts) {
    std::string bad = good;
    for (int i = 0; i < 8; ++i)
      bad[16 + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    EXPECT_EQ(try_load_checkpoint(bad), Outcome::kRejected)
        << "param count mutated to " << v;
  }
  const std::uint32_t name_lens[] = {0, 1, 1000, 0xFFFFFFFFu};
  for (std::uint32_t v : name_lens) {
    std::string bad = good;
    for (int i = 0; i < 4; ++i)
      bad[24 + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    EXPECT_EQ(try_load_checkpoint(bad), Outcome::kRejected)
        << "name length mutated to " << v;
  }
}

TEST(CheckpointCorruptionTest, TrailingBytesRejected) {
  nn::Sequential net = make_net(4);
  const std::string good = nn::serialize_params(net.params());
  EXPECT_EQ(try_load_checkpoint(good + std::string(1, '\0')),
            Outcome::kRejected);
  EXPECT_EQ(try_load_checkpoint(good + good), Outcome::kRejected);
}

TEST(CheckpointCorruptionTest, RejectionsCarryAPosition) {
  nn::Sequential net = make_net(5);
  std::string bad = nn::serialize_params(net.params());
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x10);
  nn::Sequential target = make_net(6);
  try {
    nn::deserialize_params(bad, target.params());
    FAIL() << "corrupt checkpoint accepted";
  } catch (const io::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  } catch (const CheckError&) {
    // Structural mismatches (name/shape vs the model) are CheckErrors
    // without an offset; also a valid rejection.
  }
}

// -- GLF 2 -------------------------------------------------------------------

TEST(GlfCorruptionTest, PristineFileLoads) {
  std::ostringstream os;
  layout::write_glf(os, sample_clips());
  ASSERT_EQ(try_load_glf(os.str()), Outcome::kAccepted);
}

TEST(GlfCorruptionTest, EveryBitFlipRejected) {
  std::ostringstream os;
  layout::write_glf(os, sample_clips());
  const std::string good = os.str();
  for (std::size_t i = 0; i < good.size(); ++i)
    for (int b = 0; b < 8; ++b) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1 << b));
      const Outcome out = try_load_glf(bad);
      EXPECT_EQ(out, Outcome::kRejected)
          << "bit flip at byte " << i << " bit " << b
          << (out == Outcome::kAccepted ? " was accepted"
                                        : " threw a non-CheckError");
    }
}

TEST(GlfCorruptionTest, EveryTruncationRejected) {
  std::ostringstream os;
  layout::write_glf(os, sample_clips());
  const std::string good = os.str();
  for (std::size_t len = 0; len < good.size(); ++len)
    EXPECT_EQ(try_load_glf(good.substr(0, len)), Outcome::kRejected)
        << "truncated to " << len << " of " << good.size() << " bytes";
}

TEST(GlfCorruptionTest, HeaderFieldMutationsRejected) {
  std::ostringstream os;
  layout::write_glf(os, sample_clips());
  const std::string good = os.str();
  // Mutate the bytes= and clips= header fields to other plausible
  // numbers (a pure digit edit, not caught by text parsing alone).
  const std::size_t bytes_pos = good.find("bytes=") + 6;
  const std::size_t clips_pos = good.find("clips=") + 6;
  for (const std::size_t pos : {bytes_pos, clips_pos}) {
    std::string bad = good;
    bad[pos] = bad[pos] == '9' ? '8' : static_cast<char>(bad[pos] + 1);
    EXPECT_EQ(try_load_glf(bad), Outcome::kRejected)
        << "header digit at byte " << pos;
  }
}

TEST(GlfCorruptionTest, TrailingBytesRejected) {
  std::ostringstream os;
  layout::write_glf(os, sample_clips());
  // Appending to the body breaks the declared byte count.
  EXPECT_EQ(try_load_glf(os.str() + "RECT 0 0 1 1\n"), Outcome::kRejected);
}

// -- GDSII -------------------------------------------------------------------

TEST(GdsCorruptionTest, EveryTruncationRejected) {
  std::ostringstream os;
  layout::write_gds(os, layout::clip_to_gds(sample_clips()[0].clip));
  const std::string good = os.str();
  ASSERT_EQ(try_load_gds(good), Outcome::kAccepted);
  for (std::size_t len = 0; len < good.size(); ++len)
    EXPECT_EQ(try_load_gds(good.substr(0, len)), Outcome::kRejected)
        << "truncated to " << len << " of " << good.size() << " bytes";
}

TEST(GdsCorruptionTest, RecordLengthBelowHeaderRejected) {
  std::ostringstream os;
  layout::write_gds(os, layout::clip_to_gds(sample_clips()[0].clip));
  std::string bad = os.str();
  bad[0] = 0;
  bad[1] = 2;  // first record claims 2 bytes, below the 4-byte header
  EXPECT_EQ(try_load_gds(bad), Outcome::kRejected);
}

TEST(GdsCorruptionTest, NonPaddingTrailingDataRejected) {
  std::ostringstream os;
  layout::write_gds(os, layout::clip_to_gds(sample_clips()[0].clip));
  // NUL tape padding after ENDLIB is legal; anything else is not.
  EXPECT_EQ(try_load_gds(os.str() + std::string(4, '\0')),
            Outcome::kAccepted);
  EXPECT_EQ(try_load_gds(os.str() + "junk"), Outcome::kRejected);
}

}  // namespace
}  // namespace hsdl

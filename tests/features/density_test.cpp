#include "features/density.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::features {
namespace {

using geom::Rect;
using layout::Clip;
using layout::MaskImage;

TEST(DensityTest, EmptyRasterAllZero) {
  MaskImage img(40, 40, 1.0);
  auto f = density_feature(img, 4);
  EXPECT_EQ(f.size(), 16u);
  for (float v : f) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(DensityTest, FullRasterAllOne) {
  MaskImage img(40, 40, 1.0, 1.0f);
  for (float v : density_feature(img, 4)) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(DensityTest, TileLocalization) {
  MaskImage img(40, 40, 1.0);
  // Fill only the top-left 10x10 tile (row-major index 0).
  for (std::size_t y = 0; y < 10; ++y)
    for (std::size_t x = 0; x < 10; ++x) img.at(x, y) = 1.0f;
  auto f = density_feature(img, 4);
  EXPECT_FLOAT_EQ(f[0], 1.0f);
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_FLOAT_EQ(f[i], 0.0f);
}

TEST(DensityTest, PartialTile) {
  MaskImage img(40, 40, 1.0);
  for (std::size_t y = 0; y < 5; ++y)
    for (std::size_t x = 0; x < 10; ++x) img.at(x, y) = 1.0f;
  auto f = density_feature(img, 4);
  EXPECT_FLOAT_EQ(f[0], 0.5f);
}

TEST(DensityTest, MeanOfFeatureEqualsImageMean) {
  MaskImage img(60, 60, 1.0);
  for (std::size_t y = 7; y < 31; ++y)
    for (std::size_t x = 3; x < 47; ++x) img.at(x, y) = 1.0f;
  auto f = density_feature(img, 6);
  double mean = 0;
  for (float v : f) mean += v;
  mean /= static_cast<double>(f.size());
  EXPECT_NEAR(mean, img.mean(), 1e-6);
}

TEST(DensityTest, ClipOverloadMatchesManualRaster) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = {Rect::from_xywh(100, 100, 300, 200)};
  DensityConfig cfg;
  auto via_clip = density_feature(c, cfg);
  auto via_raster =
      density_feature(layout::rasterize(c, cfg.nm_per_px), cfg.grid_n);
  EXPECT_EQ(via_clip, via_raster);
}

TEST(DensityTest, DefaultConfigDimension) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  DensityConfig cfg;
  EXPECT_EQ(density_feature(c, cfg).size(), cfg.grid_n * cfg.grid_n);
}

TEST(DensityTest, IndivisibleGridThrows) {
  MaskImage img(40, 40, 1.0);
  EXPECT_THROW(density_feature(img, 7), hsdl::CheckError);
  EXPECT_THROW(density_feature(img, 0), hsdl::CheckError);
}

}  // namespace
}  // namespace hsdl::features

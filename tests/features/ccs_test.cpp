#include "features/ccs.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace hsdl::features {
namespace {

using geom::Rect;
using layout::Clip;
using layout::MaskImage;

TEST(CcsTest, DimensionMatchesConfig) {
  MaskImage img(100, 100, 1.0);
  CcsConfig cfg;
  cfg.circles = 5;
  cfg.samples_per_circle = 8;
  EXPECT_EQ(ccs_feature(img, cfg).size(), 40u);
}

TEST(CcsTest, EmptyMaskAllZero) {
  MaskImage img(100, 100, 1.0);
  for (float v : ccs_feature(img)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(CcsTest, FullMaskNearOne) {
  MaskImage img(100, 100, 1.0, 1.0f);
  CcsConfig cfg;
  cfg.circles = 6;  // keep circles away from the image border
  for (float v : ccs_feature(img, cfg)) EXPECT_GT(v, 0.5f);
}

TEST(CcsTest, ValuesInUnitInterval) {
  MaskImage img(100, 100, 1.0);
  for (std::size_t y = 30; y < 70; ++y)
    for (std::size_t x = 30; x < 70; ++x) img.at(x, y) = 1.0f;
  for (float v : ccs_feature(img)) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(CcsTest, CentralFeatureLightsInnerCirclesOnly) {
  MaskImage img(200, 200, 1.0);
  // Disc-ish block around the centre, radius ~ 30 px.
  for (std::size_t y = 70; y < 130; ++y)
    for (std::size_t x = 70; x < 130; ++x) img.at(x, y) = 1.0f;
  CcsConfig cfg;
  cfg.circles = 10;
  cfg.samples_per_circle = 16;
  auto f = ccs_feature(img, cfg);
  // Innermost circle (radius ~10): fully inside the block.
  double inner = 0, outer = 0;
  for (std::size_t s = 0; s < 16; ++s) inner += f[s];
  for (std::size_t s = 0; s < 16; ++s) outer += f[9 * 16 + s];
  EXPECT_GT(inner / 16, 0.9);
  EXPECT_LT(outer / 16, 0.1);
}

TEST(CcsTest, RotationShiftsAngularSamples) {
  // A feature on the +x axis lights sample 0 of some circle; after moving
  // it to +y it lights the quarter-turn sample instead.
  auto make = [](bool on_y) {
    MaskImage img(200, 200, 1.0);
    for (int dy = -8; dy <= 8; ++dy)
      for (int dx = -8; dx <= 8; ++dx) {
        std::size_t x = (on_y ? 100 : 160) + dx;
        std::size_t y = (on_y ? 160 : 100) + dy;
        img.at(x, y) = 1.0f;
      }
    return img;
  };
  CcsConfig cfg;
  cfg.circles = 10;
  cfg.samples_per_circle = 4;  // samples at 0, 90, 180, 270 degrees
  auto fx = ccs_feature(make(false), cfg);
  auto fy = ccs_feature(make(true), cfg);
  // Circle index for radius 60 of max 99: ~ circle 5 (radii 9.9 * (i+1)).
  bool found = false;
  for (std::size_t ci = 0; ci < cfg.circles; ++ci) {
    const float vx = fx[ci * 4 + 0];
    const float vy = fy[ci * 4 + 1];
    if (vx > 0.5f) {
      EXPECT_NEAR(vy, vx, 0.3f) << "circle " << ci;
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CcsTest, ClipOverloadMatchesRaster) {
  Clip c;
  c.window = Rect::from_xywh(0, 0, 1200, 1200);
  c.shapes = {Rect::from_xywh(500, 500, 200, 200)};
  CcsConfig cfg;
  auto via_clip = ccs_feature(c, cfg);
  auto via_raster = ccs_feature(layout::rasterize(c, cfg.nm_per_px), cfg);
  EXPECT_EQ(via_clip, via_raster);
}

TEST(CcsTest, InvalidConfigThrows) {
  MaskImage img(100, 100, 1.0);
  CcsConfig cfg;
  cfg.circles = 0;
  EXPECT_THROW(ccs_feature(img, cfg), hsdl::CheckError);
}

TEST(CcsTest, FlattenedFeatureLosesPosition) {
  // The weakness the paper highlights: translating a pattern changes the
  // CCS vector wholesale — there is no spatial axis along which the
  // feature moves. We just document the behaviour: the two vectors differ.
  auto make = [](std::size_t cx) {
    MaskImage img(200, 200, 1.0);
    for (std::size_t y = 90; y < 110; ++y)
      for (std::size_t x = cx - 10; x < cx + 10; ++x) img.at(x, y) = 1.0f;
    return img;
  };
  auto a = ccs_feature(make(60));
  auto b = ccs_feature(make(140));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace hsdl::features

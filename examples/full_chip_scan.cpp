// Full-chip hotspot scan: the production flow the paper motivates.
//
// Generates a small chip, trains the CNN detector on independently
// generated clips, scans every window position, and compares the
// screening flow's ODST against brute-force lithography simulation of
// every window. Scanner hits are cross-checked against the litho labeler.
//
// Set HSDL_RUN_REPORT=<path> to capture the run as a JSON RunReport
// (metrics snapshot + scan summary) with a Chrome trace of the whole
// flow next to it at <path>.trace.json — load that in chrome://tracing
// or https://ui.perfetto.dev.
#include <cstdio>

#include "common/metrics.hpp"
#include "common/run_report.hpp"
#include "common/trace.hpp"
#include "hotspot/engine/engine.hpp"
#include "hotspot/scan_cache.hpp"
#include "hotspot/scanner.hpp"
#include "layout/gds_stream.hpp"
#include "layout/gdsii.hpp"
#include "layout/layout_source.hpp"
#include "litho/labeler.hpp"

using namespace hsdl;

int main() {
  std::printf("== full-chip hotspot scan ==\n\n");

  const std::string report_path = telemetry::run_report_path_from_env();
  if (!report_path.empty()) {
    metrics::set_enabled(true);
    trace::set_enabled(true);
  }

  // Training data: clips from the same design rules as the chip.
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.5;
  layout::ClipGenerator gen(gen_cfg, 101);
  litho::HotspotLabeler labeler;
  std::vector<layout::LabeledClip> train;
  while (train.size() < 260) {
    layout::LabeledClip lc;
    lc.clip = gen.generate();
    lc.label = labeler.label(lc.clip);
    if (lc.label != layout::HotspotLabel::kUnknown)
      train.push_back(std::move(lc));
  }

  hotspot::CnnDetectorConfig cfg;
  cfg.biased.rounds = 2;
  cfg.biased.initial.max_iters = 600;
  cfg.biased.initial.decay_step = 300;
  cfg.biased.finetune.max_iters = 150;
  hotspot::CnnDetector detector(cfg);
  std::printf("training on %zu clips (%zu hotspots) ...\n", train.size(),
              layout::count_hotspots(train));
  detector.train(train);

  // A 6x6-tile chip (7.2 x 7.2 um).
  layout::Layout chip = layout::generate_chip(7200, 7200, gen_cfg, 2024);
  std::printf("chip: %.1f x %.1f um, %zu shapes, density %.2f\n",
              chip.extent().width() / 1000.0,
              chip.extent().height() / 1000.0, chip.shape_count(),
              chip.density());

  hotspot::ChipScanner scanner(hotspot::ScanConfig{1200, 1200});
  hotspot::ScanReport report = scanner.scan(chip, detector);
  std::printf("\nscanned %zu windows in %.2f s -> %zu flagged (%.0f%%)\n",
              report.windows_scanned, report.scan_seconds,
              report.hits.size(), 100.0 * report.flagged_fraction());
  std::printf("screening-flow ODST : %.0f s\n", report.odst_seconds());
  std::printf("brute-force sim ODST: %.0f s (%.1fx slower)\n",
              report.full_simulation_seconds(),
              report.full_simulation_seconds() /
                  std::max(report.odst_seconds(), 1e-9));

  // Ground truth on the flagged windows + miss check on the rest.
  std::size_t true_hits = 0;
  for (const hotspot::ScanHit& hit : report.hits) {
    const layout::Clip clip = chip.extract_clip(hit.window).normalized();
    if (labeler.label(clip) == layout::HotspotLabel::kHotspot) ++true_hits;
  }
  std::printf("\nlitho verification of flagged windows: %zu/%zu are real "
              "hotspots\n", true_hits, report.hits.size());
  std::size_t missed = 0, windows_hotspot = 0;
  for (geom::Coord y = 0; y + 1200 <= 7200; y += 1200)
    for (geom::Coord x = 0; x + 1200 <= 7200; x += 1200) {
      const geom::Rect w = geom::Rect::from_xywh(x, y, 1200, 1200);
      if (labeler.label(chip.extract_clip(w).normalized()) !=
          layout::HotspotLabel::kHotspot)
        continue;
      ++windows_hotspot;
      bool flagged = false;
      for (const hotspot::ScanHit& hit : report.hits)
        flagged |= hit.window == w;
      missed += !flagged;
    }
  std::printf("real hotspot windows on chip: %zu, missed by scan: %zu\n",
              windows_hotspot, missed);

  // Hierarchical path (DESIGN.md §16): an array-heavy block scanned
  // through a HierSource with a CellScanCache — repeated macro
  // placements replay their scores instead of re-extracting and
  // re-running the CNN.
  layout::GdsLibrary hier_lib;
  {
    layout::GdsCell macro;
    macro.name = "MACRO";
    const layout::Clip tile = gen.generate();
    for (const geom::Rect& r : tile.shapes) {
      macro.boundaries.push_back(geom::Polygon::from_rect(r));
      macro.layers.push_back(1);
    }
    layout::GdsCell top;
    top.name = "TOP";
    top.refs.push_back({"MACRO", {0, 0}, 4, 4, 1200, 1200});
    hier_lib.cells = {macro, top};
  }
  const layout::HierLayout hier = layout::hier_from_library(hier_lib);
  const layout::HierSource hier_source(hier, 1);
  hotspot::CellScanCache cache;
  hotspot::InferenceEngine engine(detector);
  const hotspot::ScanReport hier_report =
      scanner.scan(hier_source, engine, &cache);
  const double reuse = hier_report.windows_scanned == 0
                           ? 0.0
                           : static_cast<double>(
                                 hier_report.windows_from_cache) /
                                 static_cast<double>(
                                     hier_report.windows_scanned);
  std::printf("\nhierarchical scan of a 4x4 macro array: %zu windows, "
              "%zu served by the cell cache (%.0f%% reuse)\n",
              hier_report.windows_scanned, hier_report.windows_from_cache,
              100.0 * reuse);

  if (!report_path.empty()) {
    telemetry::RunReport run("scan");
    json::Value scan = json::Value::object();
    scan.set("windows_scanned", json::Value(report.windows_scanned));
    scan.set("hits", json::Value(report.hits.size()));
    scan.set("scan_seconds", json::Value(report.scan_seconds));
    scan.set("windows_per_second", json::Value(report.windows_per_second()));
    scan.set("odst_seconds", json::Value(report.odst_seconds()));
    scan.set("true_hits", json::Value(true_hits));
    scan.set("missed", json::Value(missed));
    run.add("scan", std::move(scan));
    json::Value hier_scan = json::Value::object();
    hier_scan.set("windows_scanned",
                  json::Value(hier_report.windows_scanned));
    hier_scan.set("windows_from_cache",
                  json::Value(hier_report.windows_from_cache));
    hier_scan.set("cache_hit_rate", json::Value(reuse));
    hier_scan.set("windows_per_second",
                  json::Value(hier_report.windows_per_second()));
    run.add("hier_scan", std::move(hier_scan));
    run.write(report_path);
    trace::write_chrome_trace(report_path + ".trace.json");
    std::printf("\nwrote run report to %s and Chrome trace to %s.trace.json\n",
                report_path.c_str(), report_path.c_str());
  }
  return 0;
}

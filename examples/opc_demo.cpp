// OPC-lite demo: rule-based mask correction vs the litho labeler.
//
// Applies line-end extension and small-feature upsizing to stressed
// generated clips and measures the hotspot-rate reduction through the
// same lithography simulator that labels the datasets.
#include <cstdio>

#include "layout/drc.hpp"
#include "litho/labeler.hpp"
#include "opc/rule_opc.hpp"

using namespace hsdl;

int main() {
  std::printf("== rule-based OPC vs litho labeler ==\n\n");
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.6;
  layout::ClipGenerator gen(gen_cfg, 77);
  litho::HotspotLabeler labeler;
  opc::OpcConfig cfg;

  int before = 0, after = 0, n = 80;
  std::size_t extended = 0, upsized = 0, skipped = 0;
  int fixed = 0, broken = 0;
  for (int i = 0; i < n; ++i) {
    layout::Clip clip = gen.generate();
    opc::OpcResult r = opc::correct(clip, cfg);
    extended += r.ends_extended;
    upsized += r.features_upsized;
    skipped += r.corrections_skipped;
    const bool hs_before =
        labeler.label(clip) == layout::HotspotLabel::kHotspot;
    const bool hs_after =
        labeler.label(r.corrected) == layout::HotspotLabel::kHotspot;
    before += hs_before;
    after += hs_after;
    fixed += hs_before && !hs_after;
    broken += !hs_before && hs_after;
  }

  std::printf("clips analyzed        : %d (stress %.1f)\n", n,
              gen_cfg.stress);
  std::printf("corrections applied   : %zu line-end extensions, %zu "
              "feature upsizes (%zu blocked by spacing guard)\n",
              extended, upsized, skipped);
  std::printf("hotspot rate before   : %.1f%% (%d clips)\n",
              100.0 * before / n, before);
  std::printf("hotspot rate after    : %.1f%% (%d clips)\n",
              100.0 * after / n, after);
  std::printf("fixed / newly broken  : %d / %d\n", fixed, broken);
  std::printf("\nthe guard keeps corrections DRC-clean; bridging-type "
              "hotspots (sub-rule gaps) are out of reach of rule-based "
              "OPC and remain — exactly why hotspot *detection* stays "
              "necessary downstream.\n");
  return 0;
}

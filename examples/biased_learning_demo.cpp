// Biased learning demo: Algorithm 2 round by round.
//
// Trains the CNN with eps = 0, then fine-tunes with an increasing
// non-hotspot bias, printing accuracy and false alarms after every round —
// the mechanism behind Figure 4, observable in isolation.
#include <cstdio>

#include "hotspot/benchmark_factory.hpp"
#include "hotspot/detector.hpp"

using namespace hsdl;

int main() {
  std::printf("== biased learning (Algorithm 2) demo ==\n\n");
  hotspot::BenchmarkSpec spec = hotspot::industry3_spec(0.012);
  layout::BenchmarkData data = hotspot::build_benchmark(spec);
  std::printf("%s: %zu train (%zu hotspots), %zu test (%zu hotspots)\n\n",
              data.name.c_str(), data.train.size(), data.train_hotspots(),
              data.test.size(), data.test_hotspots());

  hotspot::CnnDetectorConfig cfg;
  cfg.biased.rounds = 1;  // round 0 by hand; fine-tunes below
  cfg.biased.initial.max_iters = 900;
  cfg.biased.initial.decay_step = 450;
  hotspot::CnnDetector det(cfg);
  det.train(data.train);

  auto report = [&](double eps) {
    hotspot::DetectorEval eval = det.evaluate(data.test);
    std::printf("eps=%.1f : accuracy %5.1f%%  false alarms %4zu  "
                "detected %4zu\n",
                eps, 100.0 * eval.confusion.accuracy(),
                eval.confusion.false_alarms(), eval.confusion.detected());
  };
  report(0.0);

  // Fine-tune rounds: relax the non-hotspot ground truth to [1-eps, eps].
  std::vector<layout::LabeledClip> train_part, val_part;
  Rng split_rng(3);
  layout::split_validation(data.train, 0.25, split_rng, train_part,
                           val_part);
  auto train_set = det.extract_dataset(train_part);
  auto val_set = det.extract_dataset(val_part);
  Rng rng(5);
  for (double eps : {0.1, 0.2, 0.3}) {
    hotspot::MgdConfig ft = cfg.biased.finetune;
    ft.epsilon = eps;
    hotspot::MgdTrainer trainer(ft);
    trainer.train(det.model(), train_set, val_set, rng);
    report(eps);
  }

  std::printf("\nTheorem 1 in action: accuracy is non-decreasing down the "
              "column while false alarms grow only modestly (contrast with "
              "bench_fig4_bias_vs_shift's boundary-shift arm).\n");
  return 0;
}

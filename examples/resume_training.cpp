// Crash-safe training demo: interrupt and resume.
//
// Runs the full biased-learning chain (Algorithm 2) with TrainState
// checkpointing enabled. Kill the process at any point — Ctrl-C,
// `kill -9`, power loss — and rerun the same command: training resumes
// from the last checkpoint and finishes with weights bit-for-bit
// identical to an uninterrupted run. One call site (`resume`) serves
// both the first launch and every relaunch.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hotspot/biased.hpp"
#include "nn/dataset.hpp"

using namespace hsdl;

namespace {

/// Synthetic "feature tensors": class decides the mean of every element.
nn::ClassificationDataset synthetic_set(std::size_t n_per_class,
                                        std::uint64_t seed) {
  Rng rng(seed);
  nn::ClassificationDataset d({2, 4, 4});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (std::size_t label = 0; label < 2; ++label) {
      std::vector<float> x(32);
      for (float& v : x)
        v = static_cast<float>(rng.normal(label == 1 ? 0.5 : 0.0, 0.25));
      d.add(std::move(x), label);
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string ckpt = argc > 1 ? argv[1] : "resume_demo.ts";
  std::printf("== crash-safe training demo ==\n\n");
  std::printf("checkpoint file: %s\n", ckpt.c_str());
  std::printf("interrupt this run at any time (Ctrl-C) and relaunch the "
              "same command to\ncontinue where it left off; delete the "
              "checkpoint file to start over.\n\n");

  auto train = synthetic_set(60, 1);
  auto val = synthetic_set(20, 2);

  hotspot::HotspotCnnConfig cnn;
  cnn.input_channels = 2;
  cnn.input_side = 4;
  cnn.stage1_maps = 4;
  cnn.stage2_maps = 8;
  cnn.fc_nodes = 16;
  cnn.dropout = 0.0;

  hotspot::BiasedLearningConfig cfg;
  cfg.rounds = 3;
  cfg.delta = 0.1;
  cfg.initial.learning_rate = 5e-3;
  cfg.initial.max_iters = 1200;
  cfg.initial.decay_step = 600;
  cfg.initial.validate_every = 100;
  cfg.initial.patience = 8;
  cfg.initial.batch = 16;
  cfg.finetune = cfg.initial;
  cfg.finetune.learning_rate = 2e-3;
  cfg.finetune.max_iters = 400;
  cfg.checkpoint_path = ckpt;
  cfg.checkpoint_every = 25;
  // Per-iteration JSONL telemetry for the whole chain (loss, lr, grad
  // norm, watchdog recoveries, one bias_round record per round) — tail
  // it from another terminal to watch training live.
  cfg.telemetry_path = ckpt + ".telemetry.jsonl";

  hotspot::HotspotCnn model(cnn);
  hotspot::BiasedLearner learner(cfg);
  Rng rng(7);
  // First launch: trains from scratch. Relaunch: restores the completed
  // rounds and the interrupted round's exact state (weights, optimizer,
  // RNG streams, LR, best snapshot) from the checkpoint and continues.
  hotspot::BiasedLearningResult result =
      learner.resume(model, train, val, rng);

  std::printf("\n");
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const hotspot::BiasedRound& r = result.rounds[i];
    std::printf("round %zu (eps=%.1f): %4zu iters, val hotspot accuracy "
                "%5.1f%%, false alarms %zu\n",
                i, r.epsilon, r.train.iters_run,
                100.0 * r.val_confusion.accuracy(),
                r.val_confusion.false_alarms());
  }
  std::printf("\ndone — final val hotspot accuracy %.1f%%. Rerunning now "
              "returns instantly\nfrom the finished checkpoint; delete %s "
              "to retrain.\n",
              100.0 * result.final_val_accuracy(), ckpt.c_str());
  std::printf("per-iteration telemetry: %s.telemetry.jsonl\n", ckpt.c_str());
  return 0;
}

// Quickstart: the whole public API in one small program.
//
//   1. Generate synthetic layout clips.
//   2. Label them with the lithography simulator.
//   3. Train the paper's feature-tensor CNN detector (miniature budget).
//   4. Classify fresh clips and report the paper's metrics.
//
// Runs in well under a minute on one core.
#include <cstdio>

#include "hotspot/detector.hpp"
#include "layout/generator.hpp"
#include "litho/labeler.hpp"

using namespace hsdl;

int main() {
  std::printf("== hsdl quickstart ==\n\n");

  // 1. Generate clips: 1200x1200 nm windows of randomized pattern
  //    archetypes; `stress` pushes dimensions toward the rule floor.
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.5;
  layout::ClipGenerator generator(gen_cfg, /*seed=*/2017);

  // 2. Ground truth from the litho simulator (Gaussian aerial image +
  //    threshold resist + necking/bridging/pullback checks).
  litho::HotspotLabeler labeler;
  std::vector<layout::LabeledClip> train_clips;
  while (train_clips.size() < 220) {
    layout::LabeledClip lc;
    lc.clip = generator.generate();
    lc.label = labeler.label(lc.clip);
    if (lc.label != layout::HotspotLabel::kUnknown)
      train_clips.push_back(std::move(lc));
  }
  std::printf("labeled %zu training clips (%zu hotspots)\n",
              train_clips.size(), layout::count_hotspots(train_clips));

  // 3. The paper's detector: 12x12x32 feature tensor -> CNN -> biased
  //    learning. Short schedule for the demo.
  hotspot::CnnDetectorConfig cfg;
  cfg.biased.rounds = 2;
  cfg.biased.initial.max_iters = 400;
  cfg.biased.initial.decay_step = 200;
  cfg.biased.finetune.max_iters = 120;
  hotspot::CnnDetector detector(cfg);
  std::printf("training %s ...\n", detector.name().c_str());
  detector.train(train_clips);

  // 4. Fresh clips, fresh labels, paper metrics.
  std::vector<layout::LabeledClip> test_clips;
  while (test_clips.size() < 80) {
    layout::LabeledClip lc;
    lc.clip = generator.generate();
    lc.label = labeler.label(lc.clip);
    if (lc.label != layout::HotspotLabel::kUnknown)
      test_clips.push_back(std::move(lc));
  }
  hotspot::DetectorEval eval = detector.evaluate(test_clips);
  std::printf("\ntest clips      : %zu (%zu hotspots)\n", test_clips.size(),
              layout::count_hotspots(test_clips));
  std::printf("accuracy (Def.1): %.1f%%\n",
              100.0 * eval.confusion.accuracy());
  std::printf("false alarms    : %zu\n", eval.confusion.false_alarms());
  std::printf("ODST (Def.3)    : %.0f s\n", eval.odst());
  return 0;
}

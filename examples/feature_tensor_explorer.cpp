// Feature tensor explorer: visualizes the paper's Section 3 transform.
//
// Renders a generated clip as ASCII art, extracts its feature tensor,
// reconstructs the clip from the tensor alone, and renders the
// reconstruction next to it — demonstrating the "compressed but
// approximately invertible, spatial structure preserved" property.
#include <cstdio>

#include "fte/feature_tensor.hpp"
#include "layout/generator.hpp"
#include "layout/raster.hpp"

using namespace hsdl;

namespace {

/// Downsamples a raster to rows x cols ASCII (density ramp).
void render(const layout::MaskImage& img, std::size_t rows,
            std::size_t cols) {
  const char* ramp = " .:-=+*#%@";
  for (std::size_t r = 0; r < rows; ++r) {
    std::fputc('|', stdout);
    for (std::size_t c = 0; c < cols; ++c) {
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t y = r * img.height() / rows;
           y < (r + 1) * img.height() / rows; ++y)
        for (std::size_t x = c * img.width() / cols;
             x < (c + 1) * img.width() / cols; ++x) {
          sum += std::clamp(img.at(x, y), 0.0f, 1.0f);
          ++count;
        }
      const double v = count ? sum / static_cast<double>(count) : 0.0;
      std::fputc(ramp[static_cast<std::size_t>(v * 9.999)], stdout);
    }
    std::fputs("|\n", stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 11;
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.5;
  layout::ClipGenerator gen(gen_cfg, seed);
  layout::Clip clip = gen.generate(layout::Archetype::kMixed);

  fte::FeatureTensorConfig cfg;  // n=12, k=32, 2 nm/px
  fte::FeatureTensorExtractor extractor(cfg);
  layout::MaskImage raster = layout::rasterize(clip, cfg.nm_per_px);
  fte::FeatureTensor tensor = extractor.extract(raster);
  layout::MaskImage recon =
      extractor.reconstruct(tensor, raster.width() / tensor.n);

  std::printf("clip: %zu shapes, density %.2f\n", clip.shapes.size(),
              clip.density());
  std::printf("raster %zux%zu px -> feature tensor %zux%zux%zu "
              "(%.0fx compression)\n\n",
              raster.width(), raster.height(), tensor.k, tensor.n, tensor.n,
              static_cast<double>(raster.size()) /
                  static_cast<double>(tensor.data.size()));

  std::printf("original mask:\n");
  render(raster, 24, 48);
  std::printf("\nreconstruction from the %zu x %zu x %zu tensor:\n",
              tensor.k, tensor.n, tensor.n);
  render(recon, 24, 48);

  double mae = 0.0;
  for (std::size_t i = 0; i < raster.size(); ++i)
    mae += std::abs(raster.data()[i] - recon.data()[i]);
  std::printf("\nmean abs reconstruction error: %.4f\n",
              mae / static_cast<double>(raster.size()));

  // The DC channel is a 12x12 density thumbnail — print it.
  std::printf("\nDC channel (block densities, x10):\n");
  for (std::size_t by = tensor.n; by-- > 0;) {
    for (std::size_t bx = 0; bx < tensor.n; ++bx)
      std::printf("%2d ",
                  static_cast<int>(std::clamp(
                      tensor.at(0, by, bx) * 10.0f, 0.0f, 9.0f)));
    std::printf("\n");
  }
  return 0;
}

// Hotspot pattern clustering in feature-tensor space.
//
// Collects litho-verified hotspot clips, clusters their feature tensors,
// and prints one representative (medoid) per cluster with its archetype
// population — the triage workflow of the paper's clustering references
// [10, 11], running on the paper's own feature.
#include <cstdio>

#include "analysis/pattern_cluster.hpp"
#include "layout/generator.hpp"
#include "litho/labeler.hpp"

using namespace hsdl;

int main() {
  std::printf("== hotspot pattern clustering ==\n\n");

  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.65;
  layout::ClipGenerator gen(gen_cfg, 555);
  litho::HotspotLabeler labeler;

  // Collect hotspots, remembering which archetype produced each.
  std::vector<layout::Clip> hotspots;
  std::vector<layout::Archetype> archetypes;
  int draws = 0;
  while (hotspots.size() < 60 && draws < 4000) {
    const auto arch = static_cast<layout::Archetype>(
        draws % layout::kNumArchetypes);
    ++draws;
    layout::Clip clip = gen.generate(arch);
    if (labeler.label(clip) == layout::HotspotLabel::kHotspot) {
      hotspots.push_back(std::move(clip));
      archetypes.push_back(arch);
    }
  }
  std::printf("collected %zu hotspot clips from %d generator draws\n\n",
              hotspots.size(), draws);

  analysis::PatternClusterConfig cfg;
  cfg.kmeans.clusters = 5;
  cfg.kmeans.seed = 9;
  analysis::PatternClusterResult result =
      analysis::cluster_patterns(hotspots, cfg);

  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    const analysis::PatternCluster& cluster = result.clusters[c];
    if (cluster.size == 0) {
      std::printf("cluster %zu: empty\n", c);
      continue;
    }
    // Archetype histogram of the cluster.
    std::size_t histogram[layout::kNumArchetypes] = {};
    for (std::size_t i = 0; i < hotspots.size(); ++i)
      if (result.assignment[i] == c)
        ++histogram[static_cast<std::size_t>(archetypes[i])];
    std::printf("cluster %zu: %2zu clips, medoid #%zu (%s), members:", c,
                cluster.size, cluster.medoid,
                layout::to_string(archetypes[cluster.medoid]));
    for (int a = 0; a < layout::kNumArchetypes; ++a)
      if (histogram[a] > 0)
        std::printf(" %s x%zu",
                    layout::to_string(static_cast<layout::Archetype>(a)),
                    histogram[a]);
    std::printf("\n");
  }
  std::printf("\nclusters align with failing pattern families; review one "
              "medoid per cluster instead of all %zu hits.\n",
              hotspots.size());
  return 0;
}

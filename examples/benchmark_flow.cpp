// Benchmark flow: the workload of the paper's evaluation on one testcase.
//
// Builds a scaled ICCAD-shaped benchmark (or loads a GLF file you pass),
// trains all three detectors, and prints one Table-2-style row for each,
// plus a GLF export so the dataset can be inspected or reused.
//
// Usage:
//   benchmark_flow [scale]            # synthetic, default scale 0.02
//   benchmark_flow train.glf test.glf # your own labeled clip sets
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/timer.hpp"
#include "hotspot/benchmark_factory.hpp"
#include "hotspot/detector.hpp"
#include "layout/glf.hpp"

using namespace hsdl;

int main(int argc, char** argv) {
  layout::BenchmarkData data;
  if (argc == 3) {
    data.name = "user";
    data.train = layout::read_glf_file(argv[1]);
    data.test = layout::read_glf_file(argv[2]);
    std::printf("loaded %zu train / %zu test clips from GLF\n",
                data.train.size(), data.test.size());
  } else {
    const double scale = argc == 2 ? std::atof(argv[1]) : 0.02;
    hotspot::BenchmarkSpec spec = hotspot::iccad_spec(scale);
    std::printf("building %s at scale %.3f ...\n", spec.name.c_str(), scale);
    WallTimer timer;
    data = hotspot::build_benchmark(spec);
    std::printf("generated in %.1fs; exporting to ./%s_{train,test}.glf\n",
                timer.seconds(), spec.name.c_str());
    layout::write_glf_file(spec.name + "_train.glf", data.train);
    layout::write_glf_file(spec.name + "_test.glf", data.test);
  }
  std::printf("train: %zu clips (%zu hotspots), test: %zu clips "
              "(%zu hotspots)\n\n",
              data.train.size(), data.train_hotspots(), data.test.size(),
              data.test_hotspots());

  hotspot::CnnDetectorConfig cnn_cfg;
  cnn_cfg.biased.rounds = 2;
  cnn_cfg.biased.initial.max_iters = 800;
  cnn_cfg.biased.initial.decay_step = 400;
  cnn_cfg.biased.finetune.max_iters = 200;

  std::vector<std::unique_ptr<hotspot::Detector>> detectors;
  detectors.push_back(std::make_unique<hotspot::AdaBoostDensityDetector>());
  detectors.push_back(std::make_unique<hotspot::SmoothBoostCcsDetector>());
  detectors.push_back(std::make_unique<hotspot::CnnDetector>(cnn_cfg));

  std::printf("%-22s %8s %8s %8s %8s %10s\n", "detector", "accu", "FA#",
              "CPU(s)", "ODST(s)", "train(s)");
  for (auto& det : detectors) {
    WallTimer timer;
    det->train(data.train);
    const double train_s = timer.seconds();
    hotspot::DetectorEval eval = det->evaluate(data.test);
    std::printf("%-22s %7.1f%% %8zu %8.2f %8.0f %10.1f\n",
                det->name().c_str(), 100.0 * eval.confusion.accuracy(),
                eval.confusion.false_alarms(), eval.eval_seconds,
                eval.odst(), train_s);
    std::fflush(stdout);
  }
  return 0;
}

// Serving round-trips, two modes.
//
// No arguments: stand up an in-process HotspotServer, connect a
// ServeClient over loopback, score a handful of generated clips and
// print the ranked hits — the "Serving" section of the README as a
// runnable program.
//
// With --port (and optionally --host): drive an external server
// instead, e.g. a standalone `hsdl_serve --demo` process. This is the
// CI traffic generator for the observability job:
//
//   serving_client --port 7433 --requests 40 --clips 4 --sample
//
// --sample turns on client-side tracing, so every request carries a
// sampled trace id (v3 wire) and the server records its span tree;
// --stats fetches the live hsdl-serve-stats-v1 snapshot afterwards,
// strict-parses it with common/json and prints the headline counters.
// Exits nonzero on any failed request or a malformed stats document.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "hotspot/detector.hpp"
#include "layout/generator.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace {

std::vector<hsdl::layout::Clip> make_clips(std::size_t n,
                                           std::uint64_t seed) {
  hsdl::layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.5;
  hsdl::layout::ClipGenerator gen(gen_cfg, seed);
  std::vector<hsdl::layout::Clip> clips;
  for (std::size_t i = 0; i < n; ++i)
    clips.push_back(gen.generate().normalized());
  return clips;
}

/// External-server mode: a burst of scored requests, optionally
/// sampled for tracing, optionally ending with a stats fetch.
int run_burst(const std::string& host, std::uint16_t port,
              std::size_t requests, std::size_t clips_per_request,
              bool sample, bool stats, const std::string& tenant) {
  using namespace hsdl;
  serve::ServeClient client(host, port, tenant);
  client.set_tracing(sample);
  const std::vector<layout::Clip> clips = make_clips(clips_per_request, 7);
  serve::RetryStats retry;
  std::uint64_t retries = 0, reconnects = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    const serve::ScoreResponse resp =
        client.score_with_retry(clips, serve::RetryPolicy{}, 0, &retry);
    if (resp.hits.size() != clips.size()) {
      std::fprintf(stderr, "request %zu: %zu hits for %zu clips\n", r,
                   resp.hits.size(), clips.size());
      return 1;
    }
    retries += retry.retries;
    reconnects += retry.reconnects;
  }
  std::printf("burst: %zu requests x %zu clips ok (%llu retries, %llu "
              "reconnects, v%u%s)\n",
              requests, clips_per_request,
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(reconnects),
              client.negotiated_version(), sample ? ", sampled" : "");
  if (stats) {
    // Strict parse: a malformed stats document is a bug, not a warning.
    const json::Value doc = json::parse(client.stats_json());
    const json::Value* schema = doc.find("schema");
    if (schema == nullptr || schema->as_string() != "hsdl-serve-stats-v1") {
      std::fprintf(stderr, "stats: missing/unexpected schema\n");
      return 1;
    }
    const json::Value* server = doc.find("server");
    std::printf("stats: schema %s, %.0f requests served, %.0f clips\n",
                schema->as_string().c_str(),
                server->find("requests_served")->as_number(),
                server->find("clips_scored")->as_number());
  }
  client.bye();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsdl;

  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t requests = 1;
  std::size_t clips_per_request = 6;
  bool sample = false;
  bool stats = false;
  std::string tenant = "example-tenant";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--host <h>] [--port <n>] [--requests <n>]\n"
                     "          [--clips <n>] [--tenant <t>] [--sample] "
                     "[--stats]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") host = next();
    else if (arg == "--port")
      port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--requests")
      requests = static_cast<std::size_t>(std::atol(next()));
    else if (arg == "--clips")
      clips_per_request = static_cast<std::size_t>(std::atol(next()));
    else if (arg == "--tenant") tenant = next();
    else if (arg == "--sample") sample = true;
    else if (arg == "--stats") stats = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (port != 0) {
    try {
      return run_burst(host, port, requests, clips_per_request, sample,
                       stats, tenant);
    } catch (const CheckError& e) {
      std::fprintf(stderr, "burst failed: %s\n", e.what());
      return 1;
    }
  }

  // 1. A model to serve. Real deployments load a trained checkpoint via
  //    ModelRegistry::swap_from_checkpoint; fresh weights keep the
  //    example self-contained.
  hotspot::CnnDetectorConfig det_cfg;
  det_cfg.feature.blocks_per_side = 12;
  det_cfg.feature.coeffs = 16;
  det_cfg.feature.nm_per_px = 4.0;
  det_cfg.cnn.stage1_maps = 8;
  det_cfg.cnn.stage2_maps = 8;
  det_cfg.cnn.fc_nodes = 32;
  serve::ModelRegistry registry(det_cfg, hotspot::EngineConfig{});
  registry.install(std::make_unique<hotspot::CnnDetector>(det_cfg),
                   "example");

  // 2. The server: ephemeral loopback port, graceful drain on scope exit.
  serve::HotspotServer server(registry, serve::ServeConfig{});
  std::printf("server on 127.0.0.1:%u, model generation %llu\n",
              static_cast<unsigned>(server.port()),
              static_cast<unsigned long long>(registry.generation()));

  // 3. A client: connect, handshake, score a batch, read ranked hits.
  const std::vector<layout::Clip> clips = make_clips(6, 7);

  serve::ServeClient client("127.0.0.1", server.port(), tenant);
  const serve::ScoreResponse response = client.score(clips);
  std::printf("scored %zu clips (request %llu, generation %llu):\n",
              response.hits.size(),
              static_cast<unsigned long long>(response.request_id),
              static_cast<unsigned long long>(response.model_generation));
  for (const serve::RankedHit& hit : response.hits)
    std::printf("  clip %2u  p(hotspot) = %.4f%s\n", hit.index,
                hit.probability, hit.flagged ? "  << flagged" : "");
  client.bye();

  server.shutdown();
  const serve::ServerStats stats_out = server.stats();
  std::printf("server drained: %llu request(s), %llu clip(s)\n",
              static_cast<unsigned long long>(stats_out.requests_served),
              static_cast<unsigned long long>(stats_out.clips_scored));
  return 0;
}

// Minimal serving round-trip: stand up an in-process HotspotServer,
// connect a ServeClient over loopback, score a handful of generated
// clips and print the ranked hits. This is the "Serving" section of the
// README as a runnable program; point the client at a standalone
// `hsdl_serve --demo` process instead by replacing the in-process
// server with its host/port.
#include <cstdio>
#include <memory>
#include <vector>

#include "hotspot/detector.hpp"
#include "layout/generator.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

int main() {
  using namespace hsdl;

  // 1. A model to serve. Real deployments load a trained checkpoint via
  //    ModelRegistry::swap_from_checkpoint; fresh weights keep the
  //    example self-contained.
  hotspot::CnnDetectorConfig det_cfg;
  det_cfg.feature.blocks_per_side = 12;
  det_cfg.feature.coeffs = 16;
  det_cfg.feature.nm_per_px = 4.0;
  det_cfg.cnn.stage1_maps = 8;
  det_cfg.cnn.stage2_maps = 8;
  det_cfg.cnn.fc_nodes = 32;
  serve::ModelRegistry registry(det_cfg, hotspot::EngineConfig{});
  registry.install(std::make_unique<hotspot::CnnDetector>(det_cfg),
                   "example");

  // 2. The server: ephemeral loopback port, graceful drain on scope exit.
  serve::HotspotServer server(registry, serve::ServeConfig{});
  std::printf("server on 127.0.0.1:%u, model generation %llu\n",
              static_cast<unsigned>(server.port()),
              static_cast<unsigned long long>(registry.generation()));

  // 3. A client: connect, handshake, score a batch, read ranked hits.
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.5;
  layout::ClipGenerator gen(gen_cfg, 7);
  std::vector<layout::Clip> clips;
  for (int i = 0; i < 6; ++i) clips.push_back(gen.generate().normalized());

  serve::ServeClient client("127.0.0.1", server.port(), "example-tenant");
  const serve::ScoreResponse response = client.score(clips);
  std::printf("scored %zu clips (request %llu, generation %llu):\n",
              response.hits.size(),
              static_cast<unsigned long long>(response.request_id),
              static_cast<unsigned long long>(response.model_generation));
  for (const serve::RankedHit& hit : response.hits)
    std::printf("  clip %2u  p(hotspot) = %.4f%s\n", hit.index,
                hit.probability, hit.flagged ? "  << flagged" : "");
  client.bye();

  server.shutdown();
  const serve::ServerStats stats = server.stats();
  std::printf("server drained: %llu request(s), %llu clip(s)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.clips_scored));
  return 0;
}

// Reproduces Table 1: the CNN configuration (layer, kernel size, stride,
// output shape), plus measured per-layer forward cost — the realized
// architecture is checked against the paper's numbers at startup.
#include <cstdio>

#include "common.hpp"
#include "common/timer.hpp"
#include "common/string_util.hpp"
#include "hotspot/cnn.hpp"

namespace {

using namespace hsdl;

const char* kPaperRows[][2] = {
    {"conv1-1", "12x12x16"}, {"conv1-2", "12x12x16"},
    {"maxpooling1", "6x6x16"}, {"conv2-1", "6x6x32"},
    {"conv2-2", "6x6x32"}, {"maxpooling2", "3x3x32"},
    {"fc1", "250"}, {"fc2", "2"}};

std::string shape_str(const std::vector<std::size_t>& s) {
  // Table 1 writes feature maps as H x W x C and FC layers as node counts.
  if (s.size() == 4)
    return strfmt("%zux%zux%zu", s[2], s[3], s[1]);
  return strfmt("%zu", s[1]);
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1 — Neural Network Configuration (DAC'17 reproduction)");

  hotspot::HotspotCnn model;  // paper defaults: k=32, n=12
  const std::vector<std::size_t> input = {1, 32, 12, 12};
  auto summary = model.net().summary(input);

  std::printf("%-14s %-12s %-7s %-14s %-10s\n", "Layer", "Kernel Size",
              "Stride", "Output Node #", "fwd (us)");

  // Time each layer's forward on a batch of 1.
  nn::Tensor x(input, 0.5f);
  std::vector<double> layer_us(summary.size(), 0.0);
  constexpr int kReps = 50;
  for (int rep = 0; rep < kReps; ++rep) {
    nn::Tensor t = x;
    for (std::size_t i = 0; i < model.net().size(); ++i) {
      WallTimer timer;
      t = model.net().layer(i).forward(t, false);
      layer_us[i] += timer.seconds() * 1e6 / kReps;
    }
  }

  // Table 1 lists only the named layers; activations/dropout/flatten are
  // folded into their host rows the way the paper presents them.
  struct Row {
    const char* name;
    const char* kernel;
    const char* stride;
    std::size_t layer_index;  // index into summary for the shape
  };
  const Row rows[] = {
      {"conv1-1", "3", "1", 0},  {"conv1-2", "3", "1", 2},
      {"maxpooling1", "2", "2", 4}, {"conv2-1", "3", "1", 5},
      {"conv2-2", "3", "1", 7}, {"maxpooling2", "2", "2", 9},
      {"fc1", "-", "-", 11},     {"fc2", "-", "-", 14}};

  bool all_match = true;
  for (std::size_t r = 0; r < std::size(rows); ++r) {
    const std::string shape = shape_str(summary[rows[r].layer_index].second);
    const bool match = shape == kPaperRows[r][1];
    all_match &= match;
    std::printf("%-14s %-12s %-7s %-14s %-10.1f %s\n", rows[r].name,
                rows[r].kernel, rows[r].stride, shape.c_str(),
                layer_us[rows[r].layer_index],
                match ? "" : "<- MISMATCH vs paper");
  }

  std::printf("\ntotal learnable parameters : %zu\n",
              model.net().param_count());
  WallTimer timer;
  for (int i = 0; i < 20; ++i) (void)model.probabilities(x);
  std::printf("full forward (batch 1)     : %.2f ms\n",
              timer.millis() / 20);
  nn::Tensor batch({32, 32, 12, 12}, 0.5f);
  timer.reset();
  for (int i = 0; i < 5; ++i) (void)model.probabilities(batch);
  std::printf("full forward (batch 32)    : %.2f ms\n", timer.millis() / 5);
  std::printf("\nTable 1 shape check        : %s\n",
              all_match ? "ALL ROWS MATCH the paper" : "MISMATCH");
  return all_match ? 0 : 1;
}

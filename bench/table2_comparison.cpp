// Reproduces Table 2: performance comparison of the SPIE'15-style
// AdaBoost+density detector, the ICCAD'16-style smooth-boost+CCS detector,
// and the paper's feature-tensor CNN with biased learning, over the four
// testcases (ICCAD merged suite + Industry1-3, regenerated synthetically
// at HSDL_BENCH_SCALE of the paper's instance counts).
//
// Columns per detector: FA# (false alarms), CPU(s) (test-time classifier
// evaluation), ODST(s) (Definition 3, 10 s litho sim per detected
// hotspot), Accu (hotspot detection accuracy, Definition 1).
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "common/timer.hpp"

using namespace hsdl;

namespace {

struct Result {
  std::size_t fa = 0;
  double cpu = 0.0;
  double odst = 0.0;
  double accu = 0.0;
  double train_seconds = 0.0;
};

Result run_detector(hotspot::Detector& det,
                    const layout::BenchmarkData& bench) {
  WallTimer timer;
  det.train(bench.train);
  Result r;
  r.train_seconds = timer.seconds();
  hotspot::DetectorEval eval = det.evaluate(bench.test);
  r.fa = eval.confusion.false_alarms();
  r.cpu = eval.eval_seconds;
  r.odst = eval.odst();
  r.accu = eval.confusion.accuracy();
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2 — Performance comparison with two reference detectors");

  const double scale = bench::bench_scale();
  std::printf("%-10s | %5s %5s %5s %5s | %-28s | %-28s | %-28s\n", "Bench",
              "TrHS", "TrNHS", "TeHS", "TeNHS",
              "SPIE'15-style (AdaBoost+dens)",
              "ICCAD'16-style (SmBoost+CCS)", "Ours (FT + CNN + bias)");
  std::printf("%-10s | %23s | %6s %7s %8s %6s | %6s %7s %8s %6s | %6s %7s %8s %6s\n",
              "", "", "FA#", "CPU(s)", "ODST(s)", "Accu", "FA#", "CPU(s)",
              "ODST(s)", "Accu", "FA#", "CPU(s)", "ODST(s)", "Accu");

  double sum_accu[3] = {0, 0, 0};
  double sum_fa[3] = {0, 0, 0};
  double sum_odst[3] = {0, 0, 0};
  int n_bench = 0;

  for (const hotspot::BenchmarkSpec& spec : hotspot::all_specs(scale)) {
    const layout::BenchmarkData data = bench::load_or_build(spec);

    hotspot::AdaBoostDensityDetector spie(features::DensityConfig{},
                                          bench::adaboost_config());
    const Result r_spie = run_detector(spie, data);

    hotspot::SmoothBoostCcsDetector iccad16(features::CcsConfig{},
                                            bench::smoothboost_config());
    const Result r_iccad = run_detector(iccad16, data);

    hotspot::CnnDetector ours(bench::cnn_config());
    const Result r_ours = run_detector(ours, data);

    std::printf(
        "%-10s | %5zu %5zu %5zu %5zu | %6zu %7.1f %8.0f %6s | %6zu %7.1f "
        "%8.0f %6s | %6zu %7.1f %8.0f %6s\n",
        data.name.c_str(), data.train_hotspots(), data.train_non_hotspots(),
        data.test_hotspots(), data.test_non_hotspots(), r_spie.fa,
        r_spie.cpu, r_spie.odst, bench::pct(r_spie.accu).c_str(), r_iccad.fa,
        r_iccad.cpu, r_iccad.odst, bench::pct(r_iccad.accu).c_str(),
        r_ours.fa, r_ours.cpu, r_ours.odst, bench::pct(r_ours.accu).c_str());
    std::fflush(stdout);

    const Result* rs[3] = {&r_spie, &r_iccad, &r_ours};
    for (int i = 0; i < 3; ++i) {
      sum_accu[i] += rs[i]->accu;
      sum_fa[i] += static_cast<double>(rs[i]->fa);
      sum_odst[i] += rs[i]->odst;
    }
    ++n_bench;
  }

  std::printf(
      "%-10s | %23s | %6.0f %7s %8.0f %6s | %6.0f %7s %8.0f %6s | %6.0f %7s "
      "%8.0f %6s\n",
      "Average", "", sum_fa[0] / n_bench, "-", sum_odst[0] / n_bench,
      bench::pct(sum_accu[0] / n_bench).c_str(), sum_fa[1] / n_bench, "-",
      sum_odst[1] / n_bench, bench::pct(sum_accu[1] / n_bench).c_str(),
      sum_fa[2] / n_bench, "-", sum_odst[2] / n_bench,
      bench::pct(sum_accu[2] / n_bench).c_str());

  std::printf("\nPaper's shape to check: ours wins accuracy on every row "
              "(paper avg: 66.6%% / 89.6%% / 95.5%%),\nbaselines degrade on "
              "the larger Industry testcases, boosting baselines trade "
              "false alarms for recall.\n");
  return 0;
}

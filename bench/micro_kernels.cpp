// Micro-benchmarks (google-benchmark) for the computational kernels under
// the paper's pipeline: GEMM, DCT (full vs partial), zig-zag, clip
// rasterization, feature tensor extraction, aerial-image simulation,
// hotspot labeling, and CNN forward/backward.
#include <benchmark/benchmark.h>

#include "common/parallel.hpp"
#include "fte/feature_tensor.hpp"
#include "hotspot/cnn.hpp"
#include "layout/generator.hpp"
#include "layout/raster.hpp"
#include "litho/labeler.hpp"
#include "nn/gemm.hpp"
#include "nn/loss.hpp"

namespace {

using namespace hsdl;

layout::Clip demo_clip(std::uint64_t seed = 9) {
  layout::GeneratorConfig cfg;
  cfg.stress = 0.45;
  layout::ClipGenerator gen(cfg, seed);
  return gen.generate();
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n, 1.0f), b(n * n, 0.5f), c(n * n);
  for (auto _ : state) {
    nn::matmul(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n, 1.0f), b(n * n, 0.5f), c(n * n);
  for (auto _ : state) {
    nn::gemm_naive(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                   0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

// Arg pair (size, threads); threads = 0 uses the hardware default.
void BM_GemmThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  set_num_threads(static_cast<std::size_t>(state.range(1)));
  std::vector<float> a(n * n, 1.0f), b(n * n, 0.5f), c(n * n);
  for (auto _ : state) {
    nn::matmul(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  set_num_threads(0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmThreaded)->Args({256, 1})->Args({256, 0});

void BM_DctFull(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  fte::DctPlan plan(b);
  std::vector<float> in(b * b, 0.5f), out(b * b);
  for (auto _ : state) {
    plan.forward(in.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DctFull)->Arg(50)->Arg(100);

void BM_DctPartial(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  fte::DctPlan plan(b);
  std::vector<float> in(b * b, 0.5f), out(8 * 8);
  for (auto _ : state) {
    plan.partial(in.data(), 8, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DctPartial)->Arg(50)->Arg(100);

void BM_Rasterize(benchmark::State& state) {
  const layout::Clip clip = demo_clip();
  for (auto _ : state) {
    auto img = layout::rasterize(clip, 2.0);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_Rasterize);

void BM_FeatureTensorExtract(benchmark::State& state) {
  const layout::Clip clip = demo_clip();
  fte::FeatureTensorConfig cfg;
  cfg.coeffs = static_cast<std::size_t>(state.range(0));
  fte::FeatureTensorExtractor ex(cfg);
  for (auto _ : state) {
    auto ft = ex.extract(clip);
    benchmark::DoNotOptimize(ft.data.data());
  }
}
BENCHMARK(BM_FeatureTensorExtract)->Arg(16)->Arg(32)->Arg(64);

// Arg pair (clips, threads); threads = 0 uses the hardware default.
void BM_FeatureTensorBatch(benchmark::State& state) {
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i)
    clips.push_back(demo_clip(100 + i));
  set_num_threads(static_cast<std::size_t>(state.range(1)));
  fte::FeatureTensorExtractor ex;
  for (auto _ : state) {
    auto fts = ex.extract_batch(clips);
    benchmark::DoNotOptimize(fts.data());
  }
  set_num_threads(0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FeatureTensorBatch)->Args({16, 1})->Args({16, 0});

void BM_AerialImage(benchmark::State& state) {
  const layout::Clip clip = demo_clip();
  litho::LithoSimulator sim;
  const layout::MaskImage mask = sim.rasterize(clip);
  for (auto _ : state) {
    auto img = sim.aerial(mask, sim.config().nominal);
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_AerialImage);

void BM_HotspotLabel(benchmark::State& state) {
  litho::HotspotLabeler labeler;
  const layout::Clip clip = demo_clip();
  for (auto _ : state) {
    auto label = labeler.label(clip);
    benchmark::DoNotOptimize(label);
  }
}
BENCHMARK(BM_HotspotLabel);

void BM_CnnForward(benchmark::State& state) {
  hotspot::HotspotCnn model;
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::Tensor x({batch, 32, 12, 12}, 0.5f);
  for (auto _ : state) {
    auto p = model.probabilities(x);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CnnForward)->Arg(1)->Arg(32);

void BM_CnnTrainStep(benchmark::State& state) {
  hotspot::HotspotCnn model;
  nn::Tensor x({32, 32, 12, 12}, 0.5f);
  nn::Tensor t({32, 2});
  for (std::size_t i = 0; i < 32; ++i) t.at(i, i % 2) = 1.0f;
  nn::SoftmaxCrossEntropy loss;
  for (auto _ : state) {
    model.net().zero_grad();
    auto logits = model.net().forward(x, true);
    benchmark::DoNotOptimize(loss.forward(logits, t));
    model.net().backward(loss.backward());
  }
}
BENCHMARK(BM_CnnTrainStep);

void BM_ClipGenerate(benchmark::State& state) {
  layout::GeneratorConfig cfg;
  layout::ClipGenerator gen(cfg, 4);
  for (auto _ : state) {
    auto clip = gen.generate();
    benchmark::DoNotOptimize(clip.shapes.data());
  }
}
BENCHMARK(BM_ClipGenerate);

}  // namespace

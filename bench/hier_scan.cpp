// Hierarchical scan benchmark (DESIGN.md §16).
//
// Builds an array-heavy chip (a 12x12 AREF of a 2.4 um macro that
// itself nests a UNIT array), scans it flat-expanded and hierarchical
// with a shared CellScanCache at 1/2/8 shards, and reports windows/sec,
// cache hit rate and peak RSS per phase. The hierarchical phases run
// first so their VmHWM readings are not masked by the flat expansion
// (VmHWM is a process-wide high-water mark and only ever rises).
// Results go to stdout and BENCH_hier.json.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/timer.hpp"
#include "hotspot/detector.hpp"
#include "hotspot/engine/engine.hpp"
#include "hotspot/scan_cache.hpp"
#include "hotspot/scanner.hpp"
#include "layout/gds_stream.hpp"
#include "layout/gdsii.hpp"
#include "layout/layout.hpp"
#include "layout/layout_source.hpp"

namespace {

using namespace hsdl;
using geom::Rect;

/// VmHWM (peak resident set) in kB from /proc/self/status; 0 when the
/// proc interface is unavailable.
long vm_hwm_kb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  long value = 0;
  while (status >> key) {
    if (key == "VmHWM:") {
      status >> value;
      return value;
    }
    status.ignore(256, '\n');
  }
  return 0;
}

/// MACRO: 2.4 x 2.4 um (2x2 scan windows), local wires plus a nested
/// 6x6 UNIT array — the repeated tile of the chip.
layout::GdsLibrary array_library() {
  layout::GdsLibrary lib;
  layout::GdsCell unit;
  unit.name = "UNIT";
  unit.boundaries.push_back(
      geom::Polygon::from_rect(Rect::from_xywh(0, 0, 180, 90)));
  unit.layers.push_back(1);

  layout::GdsCell macro;
  macro.name = "MACRO";
  const Rect local[] = {
      Rect::from_xywh(0, 0, 180, 90),
      Rect::from_xywh(2200, 2200, 200, 200),
      Rect::from_xywh(1300, 300, 400, 90),
      Rect::from_xywh(300, 1500, 90, 400),
      Rect::from_xywh(1500, 1700, 300, 90),
      Rect::from_xywh(700, 200, 90, 300),
      Rect::from_xywh(1900, 800, 90, 500),
      Rect::from_xywh(500, 2000, 500, 90),
  };
  for (const Rect& r : local) {
    macro.boundaries.push_back(geom::Polygon::from_rect(r));
    macro.layers.push_back(1);
  }
  macro.refs.push_back({"UNIT", {100, 700}, 6, 6, 300, 220});

  layout::GdsCell top;
  top.name = "TOP";
  top.refs.push_back({"MACRO", {0, 0}, 12, 12, 2400, 2400});
  lib.cells = {unit, macro, top};
  return lib;
}

hotspot::CnnDetectorConfig scan_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 8;
  config.feature.nm_per_px = 4.0;  // 1200 nm window -> 300 px raster
  config.cnn.stage1_maps = 4;
  config.cnn.stage2_maps = 4;
  config.cnn.fc_nodes = 8;
  return config;
}

struct PhaseResult {
  std::string name;
  std::size_t shards = 0;
  double seconds = 0.0;
  double windows_per_second = 0.0;
  std::size_t windows = 0;
  std::size_t from_cache = 0;
  double hit_rate = 0.0;
  long vm_hwm_after_kb = 0;
};

}  // namespace

int main() {
  bench::print_header(
      "hierarchical full-chip scan: flat expansion vs CellScanCache");

  const layout::HierLayout hier =
      layout::hier_from_library(array_library());
  const layout::HierSource source(hier, 1);
  const hotspot::CnnDetector detector(scan_config());
  const hotspot::ChipScanner scanner(hotspot::ScanConfig{1200, 1200});

  std::size_t hier_shapes = 0;
  for (const layout::HierCell& cell : hier.cells())
    hier_shapes += cell.shapes.size();
  std::printf("chip %.1f x %.1f um, %lld flat instances, "
              "%zu hierarchical shapes\n",
              hier.extent().width() / 1000.0,
              hier.extent().height() / 1000.0,
              static_cast<long long>(hier.flat_instance_count()),
              hier_shapes);

  std::vector<PhaseResult> phases;

  // Hierarchical scans first (see header comment on VmHWM ordering).
  for (const std::size_t shards : {1u, 2u, 8u}) {
    hotspot::CellScanCache cache;
    WallTimer timer;
    const hotspot::ScanReport report =
        scanner.scan_sharded(source, detector, shards, &cache);
    PhaseResult p;
    p.name = "hier_cached";
    p.shards = shards;
    p.seconds = timer.seconds();
    p.windows = report.windows_scanned;
    p.windows_per_second =
        static_cast<double>(report.windows_scanned) / p.seconds;
    p.from_cache = report.windows_from_cache;
    p.hit_rate = cache.stats().hit_rate();
    p.vm_hwm_after_kb = vm_hwm_kb();
    phases.push_back(p);
    std::printf("hier  %zu shard%s : %9.2f windows/s  (%zu/%zu reused, "
                "probe hit rate %.0f%%, peak RSS %ld kB)\n",
                shards, shards == 1 ? " " : "s", p.windows_per_second,
                p.from_cache, p.windows, 100.0 * p.hit_rate,
                p.vm_hwm_after_kb);
  }

  // Flat expansion last: materializes every instance in RAM.
  const std::vector<Rect> flat_rects = hier.flatten(1);
  const layout::Layout flat(hier.extent(), flat_rects);
  hotspot::InferenceEngine engine(detector);
  WallTimer timer;
  const hotspot::ScanReport flat_report = scanner.scan(flat, engine);
  PhaseResult flat_phase;
  flat_phase.name = "flat";
  flat_phase.seconds = timer.seconds();
  flat_phase.windows = flat_report.windows_scanned;
  flat_phase.windows_per_second =
      static_cast<double>(flat_report.windows_scanned) / flat_phase.seconds;
  flat_phase.vm_hwm_after_kb = vm_hwm_kb();
  std::printf("flat  serial   : %7.2f windows/s  (%zu shapes expanded, "
              "peak RSS %ld kB)\n",
              flat_phase.windows_per_second, flat_rects.size(),
              flat_phase.vm_hwm_after_kb);

  const double speedup =
      phases[0].windows_per_second / flat_phase.windows_per_second;
  std::printf("\ncell cache speedup over flat scan (1 shard): %.1fx\n",
              speedup);

  std::ofstream os("BENCH_hier.json");
  os << "{\n"
     << "  \"windows\": " << flat_phase.windows << ",\n"
     << "  \"hier_shapes\": " << hier_shapes << ",\n"
     << "  \"flat_shapes\": " << flat_rects.size() << ",\n"
     << "  \"speedup_1shard\": " << speedup << ",\n"
     << "  \"flat\": {\"seconds\": " << flat_phase.seconds
     << ", \"windows_per_second\": " << flat_phase.windows_per_second
     << ", \"vm_hwm_after_kb\": " << flat_phase.vm_hwm_after_kb << "},\n"
     << "  \"hier_cached\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    os << "    {\"shards\": " << p.shards << ", \"seconds\": " << p.seconds
       << ", \"windows_per_second\": " << p.windows_per_second
       << ", \"windows_from_cache\": " << p.from_cache
       << ", \"cache_hit_rate\": " << p.hit_rate
       << ", \"vm_hwm_after_kb\": " << p.vm_hwm_after_kb << "}"
       << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote BENCH_hier.json\n");
  return 0;
}

// Parallel-substrate speedup benchmark.
//
// Measures (a) the single-thread speedup of the cache-blocked GEMM over
// the naive reference kernel and (b) the 1-vs-N-thread speedup of the
// parallelized hot paths: GEMM, batched feature-tensor extraction, and
// full-chip scanning. Results go to stdout and to BENCH_parallel.json in
// the working directory so runs can be compared across machines (on a
// single-core host the thread speedups are expected to be ~1.0).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "hotspot/detector.hpp"
#include "hotspot/scanner.hpp"
#include "layout/generator.hpp"
#include "nn/gemm.hpp"

namespace {

using namespace hsdl;

/// Best-of-`reps` wall time of fn().
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

struct GemmResult {
  std::size_t size;
  double naive_s, blocked_1t_s, blocked_nt_s;
};

hotspot::CnnDetectorConfig scan_detector_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 16;
  config.feature.nm_per_px = 4.0;
  config.cnn.stage1_maps = 8;
  config.cnn.stage2_maps = 8;
  config.cnn.fc_nodes = 32;
  return config;
}

}  // namespace

int main() {
  const std::size_t host_threads = hardware_threads();
  set_num_threads(0);
  // The size the pool actually runs at for the N-thread measurements —
  // earlier revisions recorded hardware_threads() even when the pool had
  // been clamped, which made cross-machine comparisons drift.
  const std::size_t pool_threads = num_threads();
  std::printf("parallel substrate speedups (host threads: %zu, pool: %zu)\n",
              host_threads, pool_threads);

  // -- GEMM: naive vs blocked (1 thread) vs blocked (N threads) --------------
  std::vector<GemmResult> gemm_results;
  for (std::size_t n : {128u, 192u, 256u, 384u}) {
    Rng rng(n);
    std::vector<float> a(n * n), b(n * n), c(n * n);
    for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (float& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const int reps = n <= 192 ? 20 : 10;
    GemmResult r{n, 0.0, 0.0, 0.0};
    r.naive_s = time_best(reps, [&] {
      nn::gemm_naive(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                     0.0f, c.data(), n);
    });
    set_num_threads(1);
    r.blocked_1t_s = time_best(reps, [&] {
      nn::gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
               c.data(), n);
    });
    set_num_threads(0);
    r.blocked_nt_s = time_best(reps, [&] {
      nn::gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
               c.data(), n);
    });
    gemm_results.push_back(r);
    std::printf(
        "  gemm %4zu: naive %8.3f ms  blocked(1t) %8.3f ms (%.2fx)  "
        "blocked(%zut) %8.3f ms (%.2fx)\n",
        n, r.naive_s * 1e3, r.blocked_1t_s * 1e3,
        r.naive_s / r.blocked_1t_s, host_threads, r.blocked_nt_s * 1e3,
        r.blocked_1t_s / r.blocked_nt_s);
  }

  // -- Batched feature-tensor extraction --------------------------------------
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.45;
  layout::ClipGenerator gen(gen_cfg, 9);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < 32; ++i) clips.push_back(gen.generate());
  const fte::FeatureTensorExtractor extractor;
  set_num_threads(1);
  const double extract_1t = time_best(7, [&] {
    auto fts = extractor.extract_batch(clips);
  });
  set_num_threads(0);
  const double extract_nt = time_best(7, [&] {
    auto fts = extractor.extract_batch(clips);
  });
  const double extract_speedup = extract_1t / extract_nt;
  std::printf("  extract %zu clips: 1t %.3f s  %zut %.3f s (%.2fx)\n",
              clips.size(), extract_1t, pool_threads, extract_nt,
              extract_speedup);
  // Regression gate: for real batch sizes, batched extraction must never
  // run slower than the serial loop (the lock-per-extract DctPlan cache
  // once made 32-clip batches 0.91x of serial). With a real pool, 0.97
  // leaves noise room; when the pool clamps to one thread "parallel" IS
  // the serial loop plus noise, so only a gross regression (dispatch
  // overhead, re-introduced locking) should trip it.
  const double extract_floor = pool_threads > 1 ? 0.97 : 0.90;
  if (clips.size() >= 16 && extract_speedup < extract_floor) {
    std::fprintf(stderr,
                 "FATAL: parallel extraction regressed to %.3fx of serial\n",
                 extract_speedup);
    return 1;
  }

  // -- Full-chip scan ---------------------------------------------------------
  Rng rng(31);
  std::vector<geom::Rect> shapes;
  for (std::size_t i = 0; i < 400; ++i) {
    const auto w = 40 + static_cast<geom::Coord>(rng.index(400));
    const auto h = 40 + static_cast<geom::Coord>(rng.index(400));
    shapes.push_back(
        geom::Rect::from_xywh(static_cast<geom::Coord>(rng.index(4400)),
                              static_cast<geom::Coord>(rng.index(4400)), w,
                              h));
  }
  const layout::Layout chip(geom::Rect::from_xywh(0, 0, 4800, 4800),
                            std::move(shapes));
  hotspot::CnnDetector detector(scan_detector_config());
  const hotspot::ChipScanner scanner(hotspot::ScanConfig{1200, 600});
  set_num_threads(1);
  const hotspot::ScanReport serial_report = scanner.scan(chip, detector);
  const double scan_1t = serial_report.scan_seconds;
  set_num_threads(0);
  const hotspot::ScanReport parallel_report = scanner.scan(chip, detector);
  const double scan_nt = parallel_report.scan_seconds;
  std::printf("  scan %zu windows: 1t %.3f s  %zut %.3f s (%.2fx)\n",
              serial_report.windows_scanned, scan_1t, host_threads, scan_nt,
              scan_1t / scan_nt);

  // -- JSON -------------------------------------------------------------------
  std::ofstream os("BENCH_parallel.json");
  os << "{\n  \"host_threads\": " << host_threads
     << ",\n  \"pool_threads\": " << pool_threads << ",\n  \"gemm\": [\n";
  for (std::size_t i = 0; i < gemm_results.size(); ++i) {
    const GemmResult& r = gemm_results[i];
    os << "    {\"size\": " << r.size << ", \"naive_s\": " << r.naive_s
       << ", \"blocked_1t_s\": " << r.blocked_1t_s
       << ", \"blocked_nt_s\": " << r.blocked_nt_s
       << ", \"blocked_speedup\": " << r.naive_s / r.blocked_1t_s
       << ", \"thread_speedup\": " << r.blocked_1t_s / r.blocked_nt_s << "}"
       << (i + 1 < gemm_results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"feature_extraction\": {\"clips\": " << clips.size()
     << ", \"serial_s\": " << extract_1t
     << ", \"parallel_s\": " << extract_nt
     << ", \"speedup\": " << extract_speedup << "},\n"
     << "  \"scan\": {\"windows\": " << serial_report.windows_scanned
     << ", \"serial_s\": " << scan_1t << ", \"parallel_s\": " << scan_nt
     << ", \"speedup\": " << scan_1t / scan_nt << "}\n}\n";
  std::printf("wrote BENCH_parallel.json\n");
  return 0;
}

// Serving throughput: batched InferenceEngine vs the per-clip path,
// plus the single-thread raw-speed ladder (im2col fp32 baseline vs the
// direct-kernel fp32 path vs int8) that BENCH_serving.json's
// "single_thread" section records.
//
// Scores the same clip stream three ways — (a) serial per-clip
// predict_probability, (b) the engine at its default batch size, and
// (c) an engine-routed full-chip scan vs a per-clip scan — and reports
// clips/sec plus the engine's batching and arena counters. Results go to
// stdout and BENCH_serving.json. The pool gets min(8, host_cores)
// threads — oversubscribing a small CI host used to time-slice the
// batcher/forward/caller threads against each other and report the
// engine *slower* than per-clip — and the JSON records the pool size the
// run actually used (pool_threads), not a configured constant. On a
// one-core host the engine collapses to its inline synchronous path, so
// the gate at the bottom (engine >= 0.95x per-clip, clip stream and
// scan) holds everywhere: overlap wins on real cores, and inline mode
// keeps single-core within queue-free reach of serial.
// HSDL_BENCH_SMOKE=1 shrinks the workload for CI.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "common/refmode.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "hotspot/detector.hpp"
#include "hotspot/engine/engine.hpp"
#include "hotspot/scanner.hpp"
#include "layout/generator.hpp"

namespace {

using namespace hsdl;

hotspot::CnnDetectorConfig serving_detector_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 16;
  config.feature.nm_per_px = 4.0;
  config.cnn.stage1_maps = 8;
  config.cnn.stage2_maps = 8;
  config.cnn.fc_nodes = 32;
  return config;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("HSDL_BENCH_SMOKE") != nullptr;
  const std::size_t host_cores = hardware_threads();
  // Match the pool to the host: forcing 8 threads onto fewer cores only
  // measures scheduler thrash (see the 0.82x regression this replaced).
  const std::size_t threads = std::min<std::size_t>(8, host_cores);
  set_num_threads(threads);
  // What the pool actually runs with — this is what the JSON reports.
  const std::size_t pool_threads = num_threads();
  const std::size_t n_clips = smoke ? 48 : 256;
  std::printf("serving throughput (host cores: %zu, pool threads: %zu%s)\n",
              host_cores, pool_threads, smoke ? ", SMOKE" : "");

  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.45;
  layout::ClipGenerator gen(gen_cfg, 9);
  std::vector<layout::Clip> clips;
  for (std::size_t i = 0; i < n_clips; ++i)
    clips.push_back(gen.generate().normalized());

  hotspot::CnnDetector detector(serving_detector_config());

  // -- single-thread end-to-end latency: the raw-speed comparison.
  // One thread, per-clip serving (rasterize + DCT + forward), three
  // models over the same window stream:
  //   baseline_im2col_fp32 — reference mode: the exact pre-optimization
  //                          pipeline (per-block DCT, im2col+GEMM conv,
  //                          unfused layers, allocating rasterizer);
  //   direct_fp32          — banded DCT + direct/fused conv kernels;
  //   int8                 — the quantized serving path on top of that.
  set_num_threads(1);
  const std::size_t n_st = smoke ? 24 : 96;
  const std::span<const layout::Clip> st_clips(clips.data(), n_st);
  // Best-of-N: single ~tens-of-ms passes swing 2x on a noisy shared
  // host, and the ladder's whole point is comparing three variants of
  // the same work. The minimum over repetitions is the least-disturbed
  // measurement of each.
  const std::size_t st_reps = smoke ? 3 : 7;
  const auto time_per_clip = [&] {
    for (std::size_t i = 0; i < 4; ++i)  // warmup: plans, scratch, pages
      (void)detector.predict_probability(st_clips[i]);
    double best = 0.0;
    for (std::size_t r = 0; r < st_reps; ++r) {
      WallTimer timer;
      for (const layout::Clip& c : st_clips)
        (void)detector.predict_probability(c);
      const double s = timer.seconds();
      if (r == 0 || s < best) best = s;
    }
    return best;
  };
  double baseline_s = 0.0;
  {
    runtime::ReferenceModeGuard reference(true);
    baseline_s = time_per_clip();
  }
  const double direct_s = time_per_clip();
  {
    std::vector<layout::LabeledClip> calibration(16);
    for (std::size_t i = 0; i < calibration.size(); ++i) {
      calibration[i].clip = clips[i];
      calibration[i].label = layout::HotspotLabel::kNonHotspot;
    }
    detector.quantize(calibration);
  }
  const double int8_s = time_per_clip();
  detector.set_use_quantized(false);  // fp32 for the engine sections below
  const double baseline_wps = static_cast<double>(n_st) / baseline_s;
  const double direct_wps = static_cast<double>(n_st) / direct_s;
  const double int8_wps = static_cast<double>(n_st) / int8_s;
  std::printf(
      "  single-thread, %zu windows:\n"
      "    im2col fp32 (baseline) %7.1f win/s\n"
      "    direct fp32            %7.1f win/s (%.2fx)\n"
      "    int8                   %7.1f win/s (%.2fx)\n",
      n_st, baseline_wps, direct_wps, direct_wps / baseline_wps, int8_wps,
      int8_wps / baseline_wps);
  set_num_threads(threads);

  // Both sides of the headline ratio run best-of-N for the same reason
  // as the single-thread ladder: one pass on a noisy shared host can
  // swing either number enough to fake (or mask) a regression.
  const std::size_t reps = smoke ? 3 : 5;

  // -- (a) per-clip serial baseline: extract + forward one clip at a time.
  std::vector<double> serial_probs(clips.size());
  double serial_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    WallTimer serial_timer;
    for (std::size_t i = 0; i < clips.size(); ++i)
      serial_probs[i] = detector.predict_probability(clips[i]);
    const double s = serial_timer.seconds();
    if (r == 0 || s < serial_s) serial_s = s;
  }
  const double serial_cps = static_cast<double>(n_clips) / serial_s;
  std::printf("  per-clip:  %6.1f clips/s (%.3f s)\n", serial_cps, serial_s);

  // -- (b) engine at batch 64: parallel extraction overlapped with the
  //        batched forward pass, arena-pooled activations (inline
  //        synchronous path when the pool is down to one worker).
  hotspot::EngineConfig engine_cfg;
  engine_cfg.max_batch = 64;
  hotspot::InferenceEngine engine(detector, engine_cfg);
  engine.score(clips);  // warmup: grow slabs and the workspace arena
  std::vector<double> engine_probs;
  double engine_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    WallTimer engine_timer;
    engine_probs = engine.score(clips);
    const double s = engine_timer.seconds();
    if (r == 0 || s < engine_s) engine_s = s;
  }
  const double engine_cps = static_cast<double>(n_clips) / engine_s;
  const hotspot::EngineStats stats = engine.stats();
  std::printf("  engine:    %6.1f clips/s (%.3f s)  speedup %.2fx\n",
              engine_cps, engine_s, engine_cps / serial_cps);
  std::printf(
      "    batches %llu (full %llu, timeout %llu, drain %llu, inline %llu)"
      "  arena: %llu allocs, %llu reuses, %zu bytes\n",
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.flush_full),
      static_cast<unsigned long long>(stats.flush_timeout),
      static_cast<unsigned long long>(stats.flush_drain),
      static_cast<unsigned long long>(stats.inline_batches),
      static_cast<unsigned long long>(stats.arena_allocations),
      static_cast<unsigned long long>(stats.arena_reuses),
      stats.arena_bytes_reserved);

  // Results must agree bitwise — a throughput number for a different
  // answer is worthless.
  for (std::size_t i = 0; i < n_clips; ++i) {
    if (engine_probs[i] != serial_probs[i]) {
      std::fprintf(stderr, "FATAL: engine diverges from serial at clip %zu\n",
                   i);
      return 1;
    }
  }

  // -- (c) full-chip scan, per-clip detector loop vs engine routing.
  const geom::Coord chip_side = smoke ? 4200 : 7800;
  Rng rng(31);
  std::vector<geom::Rect> shapes;
  const std::size_t n_shapes = smoke ? 300 : 900;
  for (std::size_t i = 0; i < n_shapes; ++i) {
    const auto w = 40 + static_cast<geom::Coord>(rng.index(400));
    const auto h = 40 + static_cast<geom::Coord>(rng.index(400));
    shapes.push_back(geom::Rect::from_xywh(
        static_cast<geom::Coord>(rng.index(
            static_cast<std::size_t>(chip_side - 440))),
        static_cast<geom::Coord>(rng.index(
            static_cast<std::size_t>(chip_side - 440))),
        w, h));
  }
  const layout::Layout chip(
      geom::Rect::from_xywh(0, 0, chip_side, chip_side), std::move(shapes));
  const hotspot::ChipScanner scanner(hotspot::ScanConfig{1200, 600});

  // Per-clip scan: a non-engine detector loop (the pre-engine scan path).
  // Route through the base-class predict_probabilities default, which
  // loops predict_probability serially.
  struct PerClipProxy final : hotspot::Detector {
    explicit PerClipProxy(const hotspot::CnnDetector& d) : inner(&d) {}
    std::string name() const override { return "per-clip-proxy"; }
    void train(std::span<const layout::LabeledClip>) override {}
    bool predict(const layout::Clip& clip) const override {
      return inner->predict(clip);
    }
    double predict_probability(const layout::Clip& clip) const override {
      return inner->predict_probability(clip);
    }
    double decision_threshold() const override {
      return inner->decision_threshold();
    }
    const hotspot::CnnDetector* inner;
  };
  PerClipProxy proxy(detector);
  // Best-of-N like the sections above: one cold scan pass on a small
  // smoke chip can swing 2x and trip the gate on pure noise.
  const auto best_scan = [&](auto&& runner) {
    hotspot::ScanReport best = runner();
    for (std::size_t r = 1; r < reps; ++r) {
      hotspot::ScanReport report = runner();
      if (report.windows_per_second() > best.windows_per_second())
        best = std::move(report);
    }
    return best;
  };
  const hotspot::ScanReport per_clip_report =
      best_scan([&] { return scanner.scan(chip, proxy); });
  const hotspot::ScanReport engine_report =
      best_scan([&] { return scanner.scan(chip, engine); });

  // -- (d) engine on the int8 model: same stream, quantized serving.
  // score_batch routes per call, so the already-running engine switches
  // models with the flag. Integer accumulation is exact, so the batched
  // result must equal the per-clip result bit for bit.
  detector.set_use_quantized(true);
  std::vector<double> int8_serial(clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i)
    int8_serial[i] = detector.predict_probability(clips[i]);
  engine.score(clips);  // warmup with the int8 model active
  WallTimer int8_engine_timer;
  const std::vector<double> int8_engine_probs = engine.score(clips);
  const double int8_engine_s = int8_engine_timer.seconds();
  const double int8_engine_cps = static_cast<double>(n_clips) / int8_engine_s;
  detector.set_use_quantized(false);
  for (std::size_t i = 0; i < n_clips; ++i) {
    if (int8_engine_probs[i] != int8_serial[i]) {
      std::fprintf(stderr,
                   "FATAL: int8 engine diverges from serial at clip %zu\n",
                   i);
      return 1;
    }
  }
  std::printf("  engine int8: %6.1f clips/s (%.3f s, %.2fx vs fp32 engine)\n",
              int8_engine_cps, int8_engine_s, int8_engine_cps / engine_cps);
  std::printf(
      "  scan %zu windows: per-clip %6.1f win/s  engine %6.1f win/s "
      "(%.2fx)\n",
      engine_report.windows_scanned, per_clip_report.windows_per_second(),
      engine_report.windows_per_second(),
      engine_report.windows_per_second() /
          per_clip_report.windows_per_second());

  std::ofstream os("BENCH_serving.json");
  os << "{\n  \"host_cores\": " << host_cores
     << ",\n  \"pool_threads\": " << pool_threads
     << ",\n  \"smoke\": " << (smoke ? "true" : "false")
     << ",\n  \"clips\": " << n_clips
     << ",\n  \"single_thread\": {\"windows\": " << n_st
     << ",\n    \"baseline_im2col_fp32\": {\"seconds\": " << baseline_s
     << ", \"windows_per_sec\": " << baseline_wps << "},\n"
     << "    \"direct_fp32\": {\"seconds\": " << direct_s
     << ", \"windows_per_sec\": " << direct_wps
     << ", \"speedup_vs_baseline\": " << direct_wps / baseline_wps << "},\n"
     << "    \"int8\": {\"seconds\": " << int8_s
     << ", \"windows_per_sec\": " << int8_wps
     << ", \"speedup_vs_baseline\": " << int8_wps / baseline_wps << "}}"
     << ",\n  \"per_clip\": {\"seconds\": " << serial_s
     << ", \"clips_per_sec\": " << serial_cps << "},\n"
     << "  \"engine\": {\"seconds\": " << engine_s
     << ", \"clips_per_sec\": " << engine_cps
     << ", \"max_batch\": " << engine_cfg.max_batch
     << ", \"batches\": " << stats.batches
     << ", \"flush_full\": " << stats.flush_full
     << ", \"flush_timeout\": " << stats.flush_timeout
     << ", \"flush_drain\": " << stats.flush_drain
     << ", \"inline_batches\": " << stats.inline_batches
     << ", \"arena_allocations\": " << stats.arena_allocations
     << ", \"arena_reuses\": " << stats.arena_reuses
     << ", \"arena_bytes_reserved\": " << stats.arena_bytes_reserved
     << "},\n  \"engine_int8\": {\"seconds\": " << int8_engine_s
     << ", \"clips_per_sec\": " << int8_engine_cps
     << ", \"speedup_vs_engine_fp32\": " << int8_engine_cps / engine_cps
     << "},\n  \"speedup\": " << engine_cps / serial_cps
     << ",\n  \"scan\": {\"windows\": " << engine_report.windows_scanned
     << ", \"per_clip_windows_per_sec\": "
     << per_clip_report.windows_per_second()
     << ", \"engine_windows_per_sec\": "
     << engine_report.windows_per_second()
     << ", \"speedup\": "
     << engine_report.windows_per_second() /
            per_clip_report.windows_per_second()
     << "}\n}\n";
  std::printf("wrote BENCH_serving.json\n");

  // Regression gate: the batched engine may never lose meaningfully to
  // the per-clip path it exists to replace, on any host shape. 0.95x
  // leaves room for timer noise; anything below means the queue is
  // costing more than batching recovers (exactly the bug the inline
  // collapse fixed on one-core hosts).
  const double clip_speedup = engine_cps / serial_cps;
  const double scan_speedup = engine_report.windows_per_second() /
                              per_clip_report.windows_per_second();
  bool ok = true;
  if (clip_speedup < 0.95) {
    std::fprintf(stderr,
                 "FATAL: engine clip throughput is %.3fx of per-clip "
                 "(gate: >= 0.95x)\n",
                 clip_speedup);
    ok = false;
  }
  if (scan_speedup < 0.95) {
    std::fprintf(stderr,
                 "FATAL: engine scan throughput is %.3fx of per-clip "
                 "(gate: >= 0.95x)\n",
                 scan_speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}

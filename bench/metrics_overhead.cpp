// Observability overhead benchmark.
//
// Times the same fixed training schedule with instrumentation fully off,
// with the metrics registry on, and with metrics + trace spans on, and
// reports the relative cost — the acceptance bar is < 2% wall-clock
// overhead for a metrics-enabled training run. Results go to stdout and
// to BENCH_observability.json (this file dogfoods the telemetry layer:
// the artifact is a RunReport, so it also carries the final metrics
// snapshot of the instrumented run).
//
// HSDL_BENCH_SMOKE=1 shrinks the schedule to a few seconds for CI; the
// overhead percentages are then noise-dominated and only the artifact
// shape is meaningful.
//
// HSDL_BENCH_GATE=<pct> turns the acceptance bar into a hard exit
// code: the process fails (exit 1) when the metrics-enabled overhead
// exceeds <pct> percent of the uninstrumented baseline. The gate is
// ignored in smoke mode, where the shrunken schedule makes the
// percentages meaningless.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/run_report.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "hotspot/trainer.hpp"
#include "nn/dataset.hpp"

namespace {

using namespace hsdl;

bool smoke_mode() {
  const char* env = std::getenv("HSDL_BENCH_SMOKE");
  return env != nullptr && std::string(env) != "0";
}

nn::ClassificationDataset synthetic_set(std::size_t n_per_class,
                                        std::uint64_t seed) {
  Rng rng(seed);
  nn::ClassificationDataset d({2, 8, 8});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (std::size_t label = 0; label < 2; ++label) {
      std::vector<float> x(2 * 8 * 8);
      for (float& v : x)
        v = static_cast<float>(rng.normal(label == 1 ? 0.8 : 0.0, 0.15));
      d.add(std::move(x), label);
    }
  }
  return d;
}

/// Fixed-length schedule: high patience and a single validation point so
/// every run executes exactly `iters` iterations.
hotspot::MgdConfig schedule(std::size_t iters) {
  hotspot::MgdConfig cfg;
  cfg.learning_rate = 5e-3;
  cfg.max_iters = iters;
  cfg.decay_step = iters / 2;
  cfg.validate_every = iters;
  cfg.patience = 100;
  cfg.batch = 16;
  return cfg;
}

double run_once(const hotspot::MgdConfig& cfg,
                const nn::ClassificationDataset& train,
                const nn::ClassificationDataset& val) {
  hotspot::HotspotCnnConfig cnn;
  cnn.input_channels = 2;
  cnn.input_side = 8;
  cnn.stage1_maps = 4;
  cnn.stage2_maps = 8;
  cnn.fc_nodes = 16;
  cnn.dropout = 0.0;
  hotspot::HotspotCnn model(cnn);
  hotspot::MgdTrainer trainer(cfg);
  Rng rng(3);
  WallTimer timer;
  trainer.train(model, train, val, rng);
  return timer.seconds();
}

/// Best-of-`reps` wall time under the given instrumentation switches.
double time_best(int reps, bool metrics_on, bool trace_on,
                 const hotspot::MgdConfig& cfg,
                 const nn::ClassificationDataset& train,
                 const nn::ClassificationDataset& val) {
  metrics::set_enabled(metrics_on);
  trace::set_enabled(trace_on);
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    trace::clear();  // start each rep with an empty span buffer
    const double s = run_once(cfg, train, val);
    if (s < best) best = s;
  }
  metrics::set_enabled(false);
  trace::set_enabled(false);
  return best;
}

double overhead_pct(double instrumented, double baseline) {
  return baseline <= 0.0 ? 0.0
                         : (instrumented - baseline) / baseline * 100.0;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  const std::size_t iters = smoke ? 60 : 600;
  const int reps = smoke ? 1 : 3;

  auto train = synthetic_set(smoke ? 20 : 60, 1);
  auto val = synthetic_set(smoke ? 8 : 20, 2);
  const hotspot::MgdConfig cfg = schedule(iters);

  // Warm up allocators / page cache so the first timed config is not
  // penalized for being first.
  time_best(1, false, false, schedule(smoke ? 10 : 50), train, val);

  const double baseline_s = time_best(reps, false, false, cfg, train, val);
  const double metrics_s = time_best(reps, true, false, cfg, train, val);

  metrics::reset();
  trace::clear();
  const double full_s = time_best(reps, true, true, cfg, train, val);
  const std::size_t trace_events = trace::event_count();
  const std::uint64_t trace_dropped = trace::dropped_count();

  const double metrics_pct = overhead_pct(metrics_s, baseline_s);
  const double full_pct = overhead_pct(full_s, baseline_s);

  std::printf("observability overhead (%zu iters, best of %d%s)\n", iters,
              reps, smoke ? ", SMOKE" : "");
  std::printf("  uninstrumented    : %8.3f s\n", baseline_s);
  std::printf("  metrics on        : %8.3f s  (%+.2f%%)\n", metrics_s,
              metrics_pct);
  std::printf("  metrics + trace   : %8.3f s  (%+.2f%%, %zu events)\n",
              full_s, full_pct, trace_events);

  // The report is written while metrics are disabled but the registry
  // still holds the instrumented run's totals, so the snapshot shows
  // what a real run records (train.iterations, gemm.flops, ...).
  telemetry::RunReport report("bench");
  report.add("bench", json::Value("observability"));
  report.add("smoke", json::Value(smoke));
  report.add("iters", json::Value(iters));
  report.add("reps", json::Value(reps));
  report.add("baseline_s", json::Value(baseline_s));
  report.add("metrics_s", json::Value(metrics_s));
  report.add("metrics_trace_s", json::Value(full_s));
  report.add("metrics_overhead_pct", json::Value(metrics_pct));
  report.add("metrics_trace_overhead_pct", json::Value(full_pct));
  report.add("trace_events", json::Value(trace_events));
  report.add("trace_dropped", json::Value(trace_dropped));
  report.write("BENCH_observability.json");
  trace::clear();
  std::printf("wrote BENCH_observability.json\n");

  if (const char* gate_env = std::getenv("HSDL_BENCH_GATE")) {
    const double gate_pct = std::atof(gate_env);
    if (smoke) {
      std::printf("gate: skipped (smoke mode; percentages are noise)\n");
    } else if (metrics_pct > gate_pct) {
      std::fprintf(stderr,
                   "FATAL: metrics overhead %.2f%% exceeds gate %.2f%%\n",
                   metrics_pct, gate_pct);
      return 1;
    } else {
      std::printf("gate: metrics overhead %.2f%% within %.2f%%\n",
                  metrics_pct, gate_pct);
    }
  }
  return 0;
}

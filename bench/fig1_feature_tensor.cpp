// Reproduces Figure 1: feature tensor generation — division into n x n
// blocks, per-block DCT, zig-zag encoding to the first k coefficients —
// quantified as compression ratio, spectral energy capture, and
// reconstruction error versus k, plus extraction throughput (the paper's
// "dramatically speed up feed-forward" motivation).
#include <cstdio>

#include "common.hpp"
#include "common/string_util.hpp"
#include "common/timer.hpp"
#include "fte/feature_tensor.hpp"
#include "layout/generator.hpp"
#include "layout/raster.hpp"

using namespace hsdl;

int main() {
  bench::print_header(
      "Figure 1 — Feature tensor generation (n=12, 1200x1200 nm clips)");

  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.45;
  layout::ClipGenerator gen(gen_cfg, 0xF16);
  std::vector<layout::Clip> clips;
  for (int i = 0; i < 24; ++i) clips.push_back(gen.generate());

  fte::FeatureTensorConfig base;
  const auto raster_px =
      static_cast<std::size_t>(1200.0 / base.nm_per_px);
  std::printf("raster: %zux%zu px (%.0f nm/px), blocks: %zux%zu of %zu px\n\n",
              raster_px, raster_px, base.nm_per_px, base.blocks_per_side,
              base.blocks_per_side, raster_px / base.blocks_per_side);

  std::printf("%-6s %-12s %-12s %-14s %-12s\n", "k", "compression",
              "energy kept", "recon MAE", "extract ms");
  for (std::size_t k : {4u, 8u, 16u, 32u, 64u, 128u}) {
    fte::FeatureTensorConfig cfg = base;
    cfg.coeffs = k;
    cfg.normalize = false;
    fte::FeatureTensorExtractor ex(cfg);

    double mae = 0.0, energy_ratio = 0.0, ms = 0.0;
    for (const layout::Clip& clip : clips) {
      layout::MaskImage raster = layout::rasterize(clip, cfg.nm_per_px);
      WallTimer timer;
      fte::FeatureTensor ft = ex.extract(raster);
      ms += timer.millis();
      layout::MaskImage recon =
          ex.reconstruct(ft, raster.width() / ft.n);
      double err = 0.0, kept = 0.0, total = 0.0;
      for (std::size_t i = 0; i < raster.size(); ++i) {
        err += std::abs(raster.data()[i] - recon.data()[i]);
        // Parseval: energy kept = |recon|^2 / |raster|^2.
        kept += static_cast<double>(recon.data()[i]) * recon.data()[i];
        total += static_cast<double>(raster.data()[i]) * raster.data()[i];
      }
      mae += err / static_cast<double>(raster.size());
      energy_ratio += total > 0 ? kept / total : 1.0;
    }
    const auto n = static_cast<double>(clips.size());
    const double compression =
        static_cast<double>(raster_px * raster_px) /
        static_cast<double>(base.blocks_per_side * base.blocks_per_side * k);
    std::printf("%-6zu %-12s %-12s %-14.4f %-12.2f\n", k,
                strfmt("%.0fx", compression).c_str(),
                bench::pct(energy_ratio / n).c_str(), mae / n, ms / n);
  }

  // The spatial-information property: the tensor is a downscaled image
  // stack, so block (by, bx) responds only to geometry at that location.
  std::printf("\nspatial check: shape confined to one block lights exactly "
              "that block's channels: ");
  {
    layout::Clip c;
    c.window = geom::Rect::from_xywh(0, 0, 1200, 1200);
    c.shapes = {geom::Rect::from_xywh(500, 300, 100, 100)};  // block (3,5)
    fte::FeatureTensorExtractor ex(base);
    fte::FeatureTensor ft = ex.extract(c);
    double inside = 0.0, outside = 0.0;
    for (std::size_t ch = 0; ch < ft.k; ++ch)
      for (std::size_t by = 0; by < ft.n; ++by)
        for (std::size_t bx = 0; bx < ft.n; ++bx)
          (by == 3 && bx == 5 ? inside : outside) +=
              std::abs(ft.at(ch, by, bx));
    std::printf("%s (in-block mass %.2f, out-of-block %.2f)\n",
                outside == 0.0 ? "PASS" : "FAIL", inside, outside);
  }

  // Partial vs full DCT (the implementation optimization; identical
  // coefficients, asymptotically cheaper).
  {
    fte::FeatureTensorConfig cfg = base;
    fte::FeatureTensorExtractor ex(cfg);
    layout::MaskImage raster = layout::rasterize(clips[0], cfg.nm_per_px);
    const std::size_t B = raster.width() / cfg.blocks_per_side;
    fte::DctPlan plan(B);
    std::vector<float> block(B * B), full(B * B), corner(8 * 8);
    for (std::size_t y = 0; y < B; ++y)
      for (std::size_t x = 0; x < B; ++x)
        block[y * B + x] = raster.at(x, y);
    WallTimer t_full;
    for (int i = 0; i < 200; ++i) plan.forward(block.data(), full.data());
    const double full_ms = t_full.millis() / 200;
    WallTimer t_part;
    for (int i = 0; i < 200; ++i) plan.partial(block.data(), 8, corner.data());
    const double part_ms = t_part.millis() / 200;
    std::printf("partial-DCT speedup over full DCT per block: %.1fx "
                "(%.3f ms vs %.3f ms)\n",
                full_ms / part_ms, part_ms, full_ms);
  }
  return 0;
}

// Shared infrastructure for the paper-reproduction benchmark harnesses.
//
// Every harness prints a header stating what it reproduces, uses the same
// dataset scale (env HSDL_BENCH_SCALE, default 0.08 — the paper's counts
// shrunk ~12x so the whole suite runs on one CPU core), and caches
// generated benchmarks as GLF files under ./bench_cache so the suite
// builds each testcase once.
#pragma once

#include <string>
#include <vector>

#include "hotspot/benchmark_factory.hpp"
#include "hotspot/detector.hpp"

namespace hsdl::bench {

/// Dataset scale from HSDL_BENCH_SCALE (default 0.08).
double bench_scale();

/// Builds (or loads from ./bench_cache) the benchmark for `spec`.
layout::BenchmarkData load_or_build(const hotspot::BenchmarkSpec& spec);

/// Detector configurations used across harnesses (tuned for bench_scale
/// datasets; see EXPERIMENTS.md for the mapping to the paper's values).
hotspot::CnnDetectorConfig cnn_config(std::size_t bias_rounds = 3);
hotspot::BoostDetectorConfig adaboost_config();
hotspot::BoostDetectorConfig smoothboost_config();

/// Prints the standard harness header.
void print_header(const std::string& what);

/// "95.5%"-style formatting.
std::string pct(double fraction);

}  // namespace hsdl::bench

// Reproduces Figure 4: biased learning versus decision-boundary shifting.
//
// An initial model is trained with eps = 0 on Industry3 (the paper's
// choice), then (a) fine-tuned with eps = 0.1 / 0.2 / 0.3 (Algorithm 2)
// and (b) boundary-shifted (Equation 11) with lambda swept until the same
// test accuracy as each fine-tuned model is reached. At matched accuracy,
// biased learning must exhibit fewer false alarms.
#include <cstdio>

#include "common.hpp"
#include "hotspot/trainer.hpp"
#include "nn/serialize.hpp"

using namespace hsdl;

namespace {

struct Point {
  double accuracy;
  std::size_t false_alarms;
};

Point measure(hotspot::CnnDetector& det,
              const std::vector<layout::LabeledClip>& test) {
  hotspot::DetectorEval eval = det.evaluate(test);
  return {eval.confusion.accuracy(), eval.confusion.false_alarms()};
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 4 — Biased learning vs boundary shifting (Industry3)");

  const layout::BenchmarkData data =
      bench::load_or_build(hotspot::industry3_spec(bench::bench_scale()));

  // Train the initial (eps = 0) model once; keep its weights for both arms.
  hotspot::CnnDetectorConfig cfg = bench::cnn_config(1);
  hotspot::CnnDetector det(cfg);
  det.train(data.train);
  std::vector<nn::Tensor> initial =
      nn::snapshot_params(det.model().net().params());
  const Point base = measure(det, data.test);
  std::printf("initial model (eps=0): accuracy %s, false alarms %zu\n\n",
              bench::pct(base.accuracy).c_str(), base.false_alarms);

  // Arm (a): biased fine-tuning, cumulative across eps rounds as in
  // Algorithm 2.
  std::vector<layout::LabeledClip> train_part, val_part;
  Rng split_rng(7);
  layout::split_validation(data.train, 0.25, split_rng, train_part,
                           val_part);
  auto train_set = det.extract_dataset(train_part);
  auto val_set = det.extract_dataset(val_part);

  std::printf("%-10s | %-24s | %-30s\n", "", "biased learning",
              "boundary shift at equal accu");
  std::printf("%-10s | %-10s %-12s | %-10s %-8s %-10s\n", "eps",
              "accuracy", "false alarms", "accuracy", "lambda",
              "false alarms");

  Rng rng(13);
  for (double eps : {0.1, 0.2, 0.3}) {
    hotspot::MgdConfig ft = cfg.biased.finetune;
    ft.epsilon = eps;
    hotspot::MgdTrainer trainer(ft);
    trainer.train(det.model(), train_set, val_set, rng);
    det.set_shift(0.0);
    const Point biased = measure(det, data.test);

    // Arm (b): from the *initial* weights, sweep the boundary shift lambda
    // until the biased model's accuracy is matched.
    std::vector<nn::Tensor> tuned =
        nn::snapshot_params(det.model().net().params());
    nn::restore_params(initial, det.model().net().params());
    double lambda = 0.0;
    Point shifted = base;
    while (shifted.accuracy < biased.accuracy && lambda < 0.5) {
      lambda += 0.01;
      det.set_shift(lambda);
      shifted = measure(det, data.test);
    }
    det.set_shift(0.0);
    nn::restore_params(tuned, det.model().net().params());

    std::printf("%-10.1f | %-10s %-12zu | %-10s %-8.2f %-10zu %s\n", eps,
                bench::pct(biased.accuracy).c_str(), biased.false_alarms,
                bench::pct(shifted.accuracy).c_str(), lambda,
                shifted.false_alarms,
                biased.false_alarms <= shifted.false_alarms
                    ? "(bias wins)"
                    : "(shift wins)");
    std::fflush(stdout);
  }

  std::printf("\nPaper's shape to check: at every matched accuracy the "
              "bias column shows fewer false alarms (the paper reports "
              "~600 fewer, i.e. ~6000 s ODST saved, at its scale).\n");
  return 0;
}

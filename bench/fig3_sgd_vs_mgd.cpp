// Reproduces Figure 3: stochastic gradient descent (batch = 1, the
// paper's lr 1e-4 scaled to this dataset) versus mini-batch gradient
// descent (batch = 32, 10x higher lr, as in the paper's footnote 1),
// reporting validation accuracy against elapsed wall-clock seconds on the
// ICCAD testcase.
#include <cstdio>

#include "common.hpp"
#include "common/string_util.hpp"
#include "hotspot/trainer.hpp"
#include "layout/transform.hpp"

using namespace hsdl;

namespace {

struct Curve {
  std::vector<hotspot::TrainPoint> points;
  double seconds = 0.0;
};

Curve run(const layout::BenchmarkData& bench, std::size_t batch, double lr,
          std::size_t max_iters) {
  hotspot::CnnDetectorConfig dcfg = bench::cnn_config(1);
  hotspot::CnnDetector det(dcfg);

  std::vector<layout::LabeledClip> train_part, val_part;
  Rng split_rng(41);
  layout::split_validation(bench.train, 0.25, split_rng, train_part,
                           val_part);
  auto train_set = det.extract_dataset(train_part);
  auto val_set = det.extract_dataset(val_part);

  hotspot::MgdConfig cfg = dcfg.biased.initial;
  cfg.batch = batch;
  cfg.learning_rate = lr;
  cfg.max_iters = max_iters;
  cfg.validate_every = std::max<std::size_t>(1, max_iters / 25);
  cfg.patience = 1000;  // run the full budget; the figure wants the curve
  hotspot::MgdTrainer trainer(cfg);
  Rng rng(42);
  Curve curve;
  hotspot::TrainResult result =
      trainer.train(det.model(), train_set, val_set, rng);
  curve.points = result.history;
  curve.seconds = result.seconds;
  return curve;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3 — SGD vs MGD: validation accuracy over elapsed time "
      "(ICCAD testcase)");

  const layout::BenchmarkData data =
      bench::load_or_build(hotspot::iccad_spec(bench::bench_scale()));

  // Equal wall-clock budgets: batch-32 steps cost ~8x a batch-1 step here,
  // so SGD gets proportionally more iterations.
  const Curve mgd = run(data, 32, 1e-2, 1600);
  const Curve sgd = run(data, 1, 1e-3, 12000);

  std::printf("%-12s %-14s %-20s\n", "elapsed(s)", "SGD accuracy",
              "MGD accuracy");
  const std::size_t rows = std::max(sgd.points.size(), mgd.points.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::string s_sgd = i < sgd.points.size()
                            ? strfmt("%6.1fs %s", sgd.points[i].seconds,
                                     bench::pct(sgd.points[i].val_accuracy)
                                         .c_str())
                            : "";
    std::string s_mgd = i < mgd.points.size()
                            ? strfmt("%6.1fs %s", mgd.points[i].seconds,
                                     bench::pct(mgd.points[i].val_accuracy)
                                         .c_str())
                            : "";
    std::printf("row %-8zu %-20s %-20s\n", i, s_sgd.c_str(), s_mgd.c_str());
  }

  auto best = [](const Curve& c) {
    double b = 0;
    for (const auto& p : c.points) b = std::max(b, p.val_accuracy);
    return b;
  };
  auto time_to = [](const Curve& c, double target) {
    for (const auto& p : c.points)
      if (p.val_accuracy >= target) return p.seconds;
    return -1.0;
  };
  const double target = 0.95 * best(mgd);
  std::printf("\nbest validation accuracy : SGD %s, MGD %s\n",
              bench::pct(best(sgd)).c_str(), bench::pct(best(mgd)).c_str());
  std::printf("time to reach %s         : SGD %.1fs, MGD %.1fs "
              "(-1 = never within budget)\n",
              bench::pct(target).c_str(), time_to(sgd, target),
              time_to(mgd, target));
  std::printf("\nPaper's shape to check: the MGD curve dominates — it "
              "reaches high accuracy while SGD is still far below at the "
              "same elapsed time.\n");
  return 0;
}

// Checkpoint-write overhead benchmark.
//
// Times the same fixed training schedule with checkpointing disabled,
// every 10 iterations, and every iteration, and reports the cost a
// TrainState write adds — per write and normalized per 100 training
// iterations at the default cadence. Results go to stdout and to
// BENCH_resume.json so the overhead can be tracked across machines.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "hotspot/trainer.hpp"
#include "nn/dataset.hpp"

namespace {

using namespace hsdl;

nn::ClassificationDataset synthetic_set(std::size_t n_per_class,
                                        std::uint64_t seed) {
  Rng rng(seed);
  nn::ClassificationDataset d({2, 4, 4});
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (std::size_t label = 0; label < 2; ++label) {
      std::vector<float> x(32);
      for (float& v : x)
        v = static_cast<float>(rng.normal(label == 1 ? 0.8 : 0.0, 0.15));
      d.add(std::move(x), label);
    }
  }
  return d;
}

/// Fixed-length schedule: high patience and a single validation point so
/// every run executes exactly `iters` iterations.
hotspot::MgdConfig schedule(std::size_t iters) {
  hotspot::MgdConfig cfg;
  cfg.learning_rate = 5e-3;
  cfg.max_iters = iters;
  cfg.decay_step = iters / 2;
  cfg.validate_every = iters;
  cfg.patience = 100;
  cfg.batch = 16;
  return cfg;
}

double run_once(const hotspot::MgdConfig& cfg,
                const nn::ClassificationDataset& train,
                const nn::ClassificationDataset& val) {
  hotspot::HotspotCnnConfig cnn;
  cnn.input_channels = 2;
  cnn.input_side = 4;
  cnn.stage1_maps = 4;
  cnn.stage2_maps = 8;
  cnn.fc_nodes = 16;
  cnn.dropout = 0.0;
  hotspot::HotspotCnn model(cnn);
  hotspot::MgdTrainer trainer(cfg);
  Rng rng(3);
  WallTimer timer;
  trainer.train(model, train, val, rng);
  return timer.seconds();
}

/// Best-of-`reps` wall time.
double time_best(int reps, const hotspot::MgdConfig& cfg,
                 const nn::ClassificationDataset& train,
                 const nn::ClassificationDataset& val) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const double s = run_once(cfg, train, val);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  constexpr std::size_t kIters = 300;
  constexpr int kReps = 3;
  const std::string path = "BENCH_resume_ckpt.ts";

  auto train = synthetic_set(40, 1);
  auto val = synthetic_set(15, 2);

  const hotspot::MgdConfig base = schedule(kIters);
  const double baseline_s = time_best(kReps, base, train, val);

  hotspot::MgdConfig every10 = base;
  every10.checkpoint_path = path;
  every10.checkpoint_every = 10;
  const double every10_s = time_best(kReps, every10, train, val);

  hotspot::MgdConfig every1 = base;
  every1.checkpoint_path = path;
  every1.checkpoint_every = 1;
  const double every1_s = time_best(kReps, every1, train, val);

  const std::size_t ckpt_bytes = io::read_file(path).size();
  std::remove(path.c_str());

  // Per-write cost from the every-iteration run (kIters + 1 writes: each
  // iteration plus the finished-flag write at the end).
  const double per_write_ms = (every1_s - baseline_s) / (kIters + 1) * 1e3;
  // Normalized overhead at the default cadence (checkpoint_every = 10):
  // what 100 training iterations pay for their 10 checkpoint writes.
  const double per_100_iters_ms =
      (every10_s - baseline_s) / (static_cast<double>(kIters) / 100.0) * 1e3;

  std::printf("checkpoint overhead (%zu iters, best of %d)\n", kIters,
              kReps);
  std::printf("  no checkpointing : %8.3f s\n", baseline_s);
  std::printf("  every 10 iters   : %8.3f s  (+%.3f ms / 100 iters)\n",
              every10_s, per_100_iters_ms);
  std::printf("  every iteration  : %8.3f s  (+%.3f ms / write)\n",
              every1_s, per_write_ms);
  std::printf("  TrainState size  : %zu bytes\n", ckpt_bytes);

  std::ofstream os("BENCH_resume.json");
  os << "{\n"
     << "  \"iters\": " << kIters << ",\n"
     << "  \"baseline_s\": " << baseline_s << ",\n"
     << "  \"checkpoint_every_10_s\": " << every10_s << ",\n"
     << "  \"checkpoint_every_1_s\": " << every1_s << ",\n"
     << "  \"checkpoint_bytes\": " << ckpt_bytes << ",\n"
     << "  \"overhead_per_write_ms\": " << per_write_ms << ",\n"
     << "  \"overhead_per_100_iters_ms\": " << per_100_iters_ms << "\n"
     << "}\n";
  std::printf("wrote BENCH_resume.json\n");
  return 0;
}

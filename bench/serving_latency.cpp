// Serving latency under synthetic many-client load, clean and faulted.
//
// Stands up an in-process HotspotServer on an ephemeral loopback port,
// then drives it with N concurrent client threads, each issuing M
// ScoreRequests of a few clips over its own connection. Every request's
// wall time is sampled client-side (connect + handshake excluded, so
// the numbers are request latency, not session setup), pooled across
// clients, and reported as exact quantiles from the sorted sample
// vector — p50/p90/p99/max — plus aggregate request and clip
// throughput.
//
// Two passes share the model:
//   clean   — fault registry disarmed (the production fast path; this
//             is the pass the sanity gate checks)
//   faulted — ~1% injected faults (slow handlers, dropped connections,
//             truncated sends; DESIGN.md §14), clients recovering via
//             score_with_retry. Latency here includes the retries, i.e.
//             what a caller actually experiences during a chaos run.
//
// Results go to stdout and BENCH_latency.json. HSDL_BENCH_SMOKE=1
// shrinks clients and requests for CI; HSDL_FAULT_SEED reseeds the
// faulted pass's schedule.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "hotspot/detector.hpp"
#include "layout/generator.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace {

using namespace hsdl;

hotspot::CnnDetectorConfig serving_detector_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 16;
  config.feature.nm_per_px = 4.0;
  config.cnn.stage1_maps = 8;
  config.cnn.stage2_maps = 8;
  config.cnn.fc_nodes = 32;
  return config;
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct PassResult {
  std::vector<double> sorted;  // request latencies, seconds
  double total_seconds = 0.0;
  std::uint64_t faults_fired = 0;
  serve::ServerStats stats;
  /// Client-side retry accounting summed over the measured requests
  /// (faulted pass only; the clean pass never retries). The latency
  /// quantiles above already include this backoff time — these
  /// counters say how much of it was retry work, which server-side
  /// histograms cannot see (each attempt looks like a fresh request
  /// there).
  serve::RetryStats retry;
};

/// One load pass against a fresh server. When `faulted`, each request
/// goes through score_with_retry so injected drops and sheds are
/// absorbed the way a production caller would absorb them.
PassResult run_pass(serve::ModelRegistry& registry, std::size_t n_clients,
                    std::size_t n_requests,
                    const std::vector<std::vector<layout::Clip>>& streams,
                    bool faulted) {
  serve::ServeConfig serve_cfg;
  serve_cfg.session_workers = n_clients;
  serve::HotspotServer server(registry, serve_cfg);

  std::vector<std::vector<double>> samples(n_clients);
  std::vector<serve::RetryStats> retries(n_clients);
  WallTimer total_timer;
  {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < n_clients; ++c) {
      clients.emplace_back([&, c] {
        serve::RetryPolicy policy;
        policy.jitter_seed = 1 + c;
        const std::string tenant = "bench-tenant-" + std::to_string(c % 2);
        // Under faults the handshake itself can hit an injected drop;
        // re-dial like a real caller would.
        std::unique_ptr<serve::ServeClient> client;
        for (int attempt = 0; client == nullptr; ++attempt) {
          try {
            client = std::make_unique<serve::ServeClient>(
                "127.0.0.1", server.port(), tenant);
          } catch (const CheckError&) {
            if (!faulted || attempt >= 20) throw;
          }
        }
        // Warmup request: first contact grows the engine's slabs/arena.
        if (faulted)
          (void)client->score_with_retry(streams[c], policy);
        else
          (void)client->score(streams[c]);
        samples[c].reserve(n_requests);
        for (std::size_t r = 0; r < n_requests; ++r) {
          WallTimer timer;
          if (faulted) {
            serve::RetryStats rs;
            (void)client->score_with_retry(streams[c], policy, 0, &rs);
            retries[c].retries += rs.retries;
            retries[c].reconnects += rs.reconnects;
            retries[c].total_backoff_ms += rs.total_backoff_ms;
          } else {
            (void)client->score(streams[c]);
          }
          samples[c].push_back(timer.seconds());
        }
        try {
          client->bye();
        } catch (const CheckError&) {
          // A goodbye lost to an injected drop is fine.
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  PassResult result;
  result.total_seconds = total_timer.seconds();
  result.faults_fired = fault::total_fires();
  server.shutdown();
  result.stats = server.stats();
  for (const serve::RetryStats& rs : retries) {
    result.retry.retries += rs.retries;
    result.retry.reconnects += rs.reconnects;
    result.retry.total_backoff_ms += rs.total_backoff_ms;
  }
  for (const std::vector<double>& s : samples)
    result.sorted.insert(result.sorted.end(), s.begin(), s.end());
  std::sort(result.sorted.begin(), result.sorted.end());
  return result;
}

void print_pass(const char* name, const PassResult& r,
                std::size_t clips_per_request) {
  const double rps =
      static_cast<double>(r.sorted.size()) / r.total_seconds;
  const double cps = rps * static_cast<double>(clips_per_request);
  std::printf(
      "  %-7s %zu requests in %.3f s (%.1f req/s, %.1f clips/s)\n"
      "          p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms\n",
      name, r.sorted.size(), r.total_seconds, rps, cps,
      quantile(r.sorted, 0.50) * 1e3, quantile(r.sorted, 0.90) * 1e3,
      quantile(r.sorted, 0.99) * 1e3,
      (r.sorted.empty() ? 0.0 : r.sorted.back()) * 1e3);
}

void emit_pass(std::ofstream& os, const char* name, const PassResult& r,
               std::size_t clips_per_request) {
  const double rps =
      static_cast<double>(r.sorted.size()) / r.total_seconds;
  os << "  \"" << name << "\": {\n    \"total_seconds\": "
     << r.total_seconds << ",\n    \"requests_per_sec\": " << rps
     << ",\n    \"clips_per_sec\": "
     << rps * static_cast<double>(clips_per_request)
     << ",\n    \"latency_seconds\": {\"p50\": " << quantile(r.sorted, 0.50)
     << ", \"p90\": " << quantile(r.sorted, 0.90)
     << ", \"p99\": " << quantile(r.sorted, 0.99)
     << ", \"max\": " << (r.sorted.empty() ? 0.0 : r.sorted.back()) << "}"
     << ",\n    \"faults_fired\": " << r.faults_fired
     << ",\n    \"client_retries\": {\"retries\": " << r.retry.retries
     << ", \"reconnects\": " << r.retry.reconnects
     << ", \"total_backoff_ms\": " << r.retry.total_backoff_ms << "}"
     << ",\n    \"server\": {\"sessions\": " << r.stats.sessions_accepted
     << ", \"requests\": " << r.stats.requests_served
     << ", \"clips\": " << r.stats.clips_scored
     << ", \"errors\": " << r.stats.errors_sent
     << ", \"busy\": " << r.stats.busy_rejections
     << ", \"reaped\": " << r.stats.sessions_reaped << "}\n  }";
}

}  // namespace

int main() {
  const bool smoke = std::getenv("HSDL_BENCH_SMOKE") != nullptr;
  const std::size_t n_clients = smoke ? 4 : 8;
  const std::size_t n_requests = smoke ? 8 : 32;
  const std::size_t clips_per_request = smoke ? 4 : 8;
  std::printf("serving latency (%zu clients x %zu requests x %zu clips%s)\n",
              n_clients, n_requests, clips_per_request,
              smoke ? ", SMOKE" : "");

  // One model shared by every request (fresh weights score fine; the
  // bench measures the serving path, not detection quality).
  serve::ModelRegistry registry(serving_detector_config(),
                                hotspot::EngineConfig{});
  {
    auto served = std::make_unique<hotspot::CnnDetector>(
        serving_detector_config());
    registry.install(std::move(served), "bench");
  }

  // Per-client clip streams, generated up front so the measured loop is
  // pure request/response.
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.45;
  std::vector<std::vector<layout::Clip>> streams(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    layout::ClipGenerator gen(gen_cfg, 101 + c);
    for (std::size_t i = 0; i < clips_per_request; ++i)
      streams[c].push_back(gen.generate().normalized());
  }

  // Pass 1: clean — fault hooks present but disarmed, i.e. the
  // production fast path.
  fault::disarm();
  const PassResult clean =
      run_pass(registry, n_clients, n_requests, streams, false);
  print_pass("clean", clean, clips_per_request);

  // Pass 2: ~1% faults — slow handlers (2 ms stalls) and connection
  // drops on the server's socket I/O. Deterministic per seed; sweep
  // with HSDL_FAULT_SEED.
  fault::Plan chaos = fault::parse_spec(
      "serve.handler=delay:0.01:2;serve.net.*=fail:0.005",
      fault::seed_from_env(1));
  fault::arm(std::move(chaos));
  const PassResult faulted =
      run_pass(registry, n_clients, n_requests, streams, true);
  fault::disarm();
  print_pass("faulted", faulted, clips_per_request);
  std::printf("  faulted pass: %llu faults fired, %llu busy, %llu reaped\n",
              static_cast<unsigned long long>(faulted.faults_fired),
              static_cast<unsigned long long>(faulted.stats.busy_rejections),
              static_cast<unsigned long long>(faulted.stats.sessions_reaped));
  std::printf(
      "  client side: %llu retries (%llu reconnects), %.1f ms in backoff\n",
      static_cast<unsigned long long>(faulted.retry.retries),
      static_cast<unsigned long long>(faulted.retry.reconnects),
      faulted.retry.total_backoff_ms);

  std::ofstream os("BENCH_latency.json");
  os << "{\n  \"host_cores\": " << hardware_threads()
     << ",\n  \"smoke\": " << (smoke ? "true" : "false")
     << ",\n  \"clients\": " << n_clients
     << ",\n  \"requests_per_client\": " << n_requests
     << ",\n  \"clips_per_request\": " << clips_per_request << ",\n";
  emit_pass(os, "clean", clean, clips_per_request);
  os << ",\n";
  emit_pass(os, "faulted", faulted, clips_per_request);
  os << "\n}\n";
  std::printf("wrote BENCH_latency.json\n");

  // Sanity gate on the clean pass only: every request served, none
  // rejected. The faulted pass rejects and drops by design; its gate is
  // weaker — every client request eventually succeeded (run_pass would
  // have thrown otherwise).
  if (clean.stats.errors_sent != 0 ||
      clean.stats.requests_served < clean.sorted.size()) {
    std::fprintf(stderr, "FATAL: server stats inconsistent with client view\n");
    return 1;
  }
  return 0;
}

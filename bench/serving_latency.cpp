// Serving latency under synthetic many-client load.
//
// Stands up an in-process HotspotServer on an ephemeral loopback port,
// then drives it with N concurrent client threads, each issuing M
// ScoreRequests of a few clips over its own connection. Every request's
// wall time is sampled client-side (connect + handshake excluded, so
// the numbers are request latency, not session setup), pooled across
// clients, and reported as exact quantiles from the sorted sample
// vector — p50/p90/p99/max — plus aggregate request and clip
// throughput. Results go to stdout and BENCH_latency.json.
// HSDL_BENCH_SMOKE=1 shrinks clients and requests for CI.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "hotspot/detector.hpp"
#include "layout/generator.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace {

using namespace hsdl;

hotspot::CnnDetectorConfig serving_detector_config() {
  hotspot::CnnDetectorConfig config;
  config.feature.blocks_per_side = 12;
  config.feature.coeffs = 16;
  config.feature.nm_per_px = 4.0;
  config.cnn.stage1_maps = 8;
  config.cnn.stage2_maps = 8;
  config.cnn.fc_nodes = 32;
  return config;
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("HSDL_BENCH_SMOKE") != nullptr;
  const std::size_t n_clients = smoke ? 4 : 8;
  const std::size_t n_requests = smoke ? 8 : 32;
  const std::size_t clips_per_request = smoke ? 4 : 8;
  std::printf("serving latency (%zu clients x %zu requests x %zu clips%s)\n",
              n_clients, n_requests, clips_per_request,
              smoke ? ", SMOKE" : "");

  // One model shared by every request (fresh weights score fine; the
  // bench measures the serving path, not detection quality).
  serve::ModelRegistry registry(serving_detector_config(),
                                hotspot::EngineConfig{});
  {
    auto served = std::make_unique<hotspot::CnnDetector>(
        serving_detector_config());
    registry.install(std::move(served), "bench");
  }

  serve::ServeConfig serve_cfg;
  serve_cfg.session_workers = n_clients;
  serve::HotspotServer server(registry, serve_cfg);

  // Per-client clip streams, generated up front so the measured loop is
  // pure request/response.
  layout::GeneratorConfig gen_cfg;
  gen_cfg.stress = 0.45;
  std::vector<std::vector<layout::Clip>> streams(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    layout::ClipGenerator gen(gen_cfg, 101 + c);
    for (std::size_t i = 0; i < clips_per_request; ++i)
      streams[c].push_back(gen.generate().normalized());
  }

  std::vector<std::vector<double>> samples(n_clients);
  WallTimer total_timer;
  {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < n_clients; ++c) {
      clients.emplace_back([&, c] {
        serve::ServeClient client("127.0.0.1", server.port(),
                                  "bench-tenant-" + std::to_string(c % 2));
        // Warmup request: first contact grows the engine's slabs/arena.
        (void)client.score(streams[c]);
        samples[c].reserve(n_requests);
        for (std::size_t r = 0; r < n_requests; ++r) {
          WallTimer timer;
          (void)client.score(streams[c]);
          samples[c].push_back(timer.seconds());
        }
        client.bye();
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const double total_s = total_timer.seconds();
  server.shutdown();

  std::vector<double> all;
  for (const std::vector<double>& s : samples)
    all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  const double p50 = quantile(all, 0.50);
  const double p90 = quantile(all, 0.90);
  const double p99 = quantile(all, 0.99);
  const double worst = all.empty() ? 0.0 : all.back();
  const std::size_t total_requests = all.size();
  const std::size_t total_clips = total_requests * clips_per_request;
  const double rps = static_cast<double>(total_requests) / total_s;
  const double cps = static_cast<double>(total_clips) / total_s;

  std::printf(
      "  %zu requests in %.3f s (%.1f req/s, %.1f clips/s)\n"
      "  latency p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms\n",
      total_requests, total_s, rps, cps, p50 * 1e3, p90 * 1e3, p99 * 1e3,
      worst * 1e3);

  const serve::ServerStats stats = server.stats();
  std::ofstream os("BENCH_latency.json");
  os << "{\n  \"host_cores\": " << hardware_threads()
     << ",\n  \"smoke\": " << (smoke ? "true" : "false")
     << ",\n  \"clients\": " << n_clients
     << ",\n  \"requests_per_client\": " << n_requests
     << ",\n  \"clips_per_request\": " << clips_per_request
     << ",\n  \"session_workers\": " << serve_cfg.session_workers
     << ",\n  \"total_seconds\": " << total_s
     << ",\n  \"requests_per_sec\": " << rps
     << ",\n  \"clips_per_sec\": " << cps
     << ",\n  \"latency_seconds\": {\"p50\": " << p50
     << ", \"p90\": " << p90 << ", \"p99\": " << p99
     << ", \"max\": " << worst << "}"
     << ",\n  \"server\": {\"sessions\": " << stats.sessions_accepted
     << ", \"requests\": " << stats.requests_served
     << ", \"clips\": " << stats.clips_scored
     << ", \"errors\": " << stats.errors_sent << "}\n}\n";
  std::printf("wrote BENCH_latency.json\n");

  // Sanity gate: every request must have been served and none rejected.
  if (stats.errors_sent != 0 ||
      stats.requests_served < total_requests) {
    std::fprintf(stderr, "FATAL: server stats inconsistent with client view\n");
    return 1;
  }
  return 0;
}

#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/logging.hpp"
#include "common/string_util.hpp"
#include "common/timer.hpp"
#include "layout/glf.hpp"

namespace hsdl::bench {

double bench_scale() {
  if (const char* env = std::getenv("HSDL_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
    std::fprintf(stderr, "ignoring bad HSDL_BENCH_SCALE='%s'\n", env);
  }
  return 0.08;
}

layout::BenchmarkData load_or_build(const hotspot::BenchmarkSpec& spec) {
  namespace fs = std::filesystem;
  const fs::path dir = "bench_cache";
  const std::string stem =
      strfmt("%s_hs%zu_nhs%zu", spec.name.c_str(), spec.train_hotspots,
             spec.train_non_hotspots);
  const fs::path train_path = dir / (stem + "_train.glf");
  const fs::path test_path = dir / (stem + "_test.glf");

  if (fs::exists(train_path) && fs::exists(test_path)) {
    layout::BenchmarkData data;
    data.name = spec.name;
    data.train = layout::read_glf_file(train_path.string());
    data.test = layout::read_glf_file(test_path.string());
    if (data.train_hotspots() == spec.train_hotspots &&
        data.test_hotspots() == spec.test_hotspots) {
      std::fprintf(stderr, "[bench] %s loaded from cache\n",
                   spec.name.c_str());
      return data;
    }
  }

  WallTimer timer;
  layout::BenchmarkData data = hotspot::build_benchmark(spec);
  std::fprintf(stderr, "[bench] %s generated in %.1fs\n", spec.name.c_str(),
               timer.seconds());
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (!ec) {
    layout::write_glf_file(train_path.string(), data.train);
    layout::write_glf_file(test_path.string(), data.test);
  }
  return data;
}

hotspot::CnnDetectorConfig cnn_config(std::size_t bias_rounds) {
  hotspot::CnnDetectorConfig cfg;
  cfg.biased.rounds = bias_rounds;
  cfg.biased.delta = 0.1;
  cfg.biased.initial.learning_rate = 1e-2;
  cfg.biased.initial.decay_step = 1200;
  cfg.biased.initial.max_iters = 2200;
  cfg.biased.initial.validate_every = 100;
  cfg.biased.initial.patience = 8;
  cfg.biased.finetune.learning_rate = 2e-3;
  cfg.biased.finetune.decay_step = 250;
  cfg.biased.finetune.max_iters = 500;
  cfg.biased.finetune.validate_every = 50;
  cfg.biased.finetune.patience = 6;
  return cfg;
}

hotspot::BoostDetectorConfig adaboost_config() {
  hotspot::BoostDetectorConfig cfg;
  cfg.boost.scheme = baselines::WeightScheme::kExponential;
  cfg.boost.rounds = 150;
  return cfg;
}

hotspot::BoostDetectorConfig smoothboost_config() {
  hotspot::BoostDetectorConfig cfg;
  cfg.boost.scheme = baselines::WeightScheme::kSmoothCapped;
  cfg.boost.rounds = 150;
  cfg.online_passes = 1;
  return cfg;
}

void print_header(const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("dataset scale: %.3f of the paper's instance counts "
              "(HSDL_BENCH_SCALE)\n", bench_scale());
  std::printf("==============================================================\n");
}

std::string pct(double fraction) { return strfmt("%.1f%%", 100.0 * fraction); }

}  // namespace hsdl::bench

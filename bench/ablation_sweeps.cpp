// Ablations over the design choices DESIGN.md calls out:
//   (1) k — coefficients kept per block (information vs cost),
//   (2) mini-batch size m,
//   (3) bias step delta-eps schedule,
//   (4) feature tensor vs flattened density features as CNN input scale
//       proxy (forward cost of raw-image-sized input vs tensor input).
// Runs on the ICCAD testcase at the bench scale.
#include <cstdio>

#include "common.hpp"
#include "common/timer.hpp"
#include "hotspot/trainer.hpp"

using namespace hsdl;

namespace {

struct EvalRow {
  double accuracy;
  std::size_t fa;
  double train_s;
};

EvalRow train_eval(const layout::BenchmarkData& data,
                   hotspot::CnnDetectorConfig cfg) {
  hotspot::CnnDetector det(cfg);
  WallTimer timer;
  det.train(data.train);
  const double train_s = timer.seconds();
  hotspot::DetectorEval eval = det.evaluate(data.test);
  return {eval.confusion.accuracy(), eval.confusion.false_alarms(), train_s};
}

}  // namespace

int main() {
  bench::print_header("Ablation sweeps (ICCAD testcase)");
  const layout::BenchmarkData data =
      bench::load_or_build(hotspot::iccad_spec(bench::bench_scale()));

  // Shorter schedule than the headline Table 2 runs: ablations compare
  // configurations against each other, not against the paper.
  auto short_cfg = [](std::size_t rounds) {
    hotspot::CnnDetectorConfig cfg = bench::cnn_config(rounds);
    cfg.biased.initial.max_iters = 1200;
    cfg.biased.initial.decay_step = 700;
    cfg.biased.finetune.max_iters = 300;
    return cfg;
  };

  // ---- (1) k sweep ----
  std::printf("[1] coefficients kept per block (k)\n");
  std::printf("%-6s %-10s %-6s %-10s\n", "k", "accuracy", "FA#", "train(s)");
  for (std::size_t k : {8u, 16u, 32u, 64u}) {
    hotspot::CnnDetectorConfig cfg = short_cfg(1);
    cfg.feature.coeffs = k;
    EvalRow r = train_eval(data, cfg);
    std::printf("%-6zu %-10s %-6zu %-10.0f\n", k,
                bench::pct(r.accuracy).c_str(), r.fa, r.train_s);
    std::fflush(stdout);
  }

  // ---- (2) batch size sweep ----
  std::printf("\n[2] mini-batch size m (fixed iteration budget)\n");
  std::printf("%-6s %-10s %-6s %-10s\n", "m", "accuracy", "FA#", "train(s)");
  for (std::size_t m : {8u, 32u, 128u}) {
    hotspot::CnnDetectorConfig cfg = short_cfg(1);
    cfg.biased.initial.batch = m;
    cfg.biased.initial.max_iters = 1200 * 32 / m;  // equal samples seen
    cfg.biased.initial.decay_step = cfg.biased.initial.max_iters / 2;
    EvalRow r = train_eval(data, cfg);
    std::printf("%-6zu %-10s %-6zu %-10.0f\n", m,
                bench::pct(r.accuracy).c_str(), r.fa, r.train_s);
    std::fflush(stdout);
  }

  // ---- (3) bias schedule ----
  std::printf("\n[3] bias schedule (rounds t x step delta-eps)\n");
  std::printf("%-14s %-10s %-6s\n", "schedule", "accuracy", "FA#");
  struct Sched {
    std::size_t rounds;
    double delta;
  };
  for (Sched s : {Sched{1, 0.0}, Sched{3, 0.1}, Sched{4, 0.1}, Sched{3, 0.15}}) {
    hotspot::CnnDetectorConfig cfg = short_cfg(s.rounds);
    cfg.biased.delta = s.delta;
    EvalRow r = train_eval(data, cfg);
    std::printf("t=%zu de=%-6.2f %-10s %-6zu\n", s.rounds, s.delta,
                bench::pct(r.accuracy).c_str(), r.fa);
    std::fflush(stdout);
  }

  // ---- (4) input-size cost: feature tensor vs raw-image-sized input ----
  std::printf("\n[4] forward cost: 12x12x32 feature tensor vs raw-image "
              "input scale\n");
  {
    hotspot::HotspotCnnConfig small;  // 12x12x32 (feature tensor)
    hotspot::HotspotCnn ft_model(small);
    nn::Tensor ft_in({8, 32, 12, 12}, 0.5f);
    WallTimer t1;
    for (int i = 0; i < 10; ++i) (void)ft_model.probabilities(ft_in);
    const double ft_ms = t1.millis() / 10;

    // Raw input at the same nm coverage: 1 channel of 600x600 px does not
    // even fit this architecture's pooling budget; the paper's point is
    // the input volume ratio. Use a 1x96x96 input (6.75x the tensor's
    // volume) as a conservative stand-in.
    hotspot::HotspotCnnConfig big;
    big.input_channels = 1;
    big.input_side = 96;
    hotspot::HotspotCnn raw_model(big);
    nn::Tensor raw_in({8, 1, 96, 96}, 0.5f);
    WallTimer t2;
    for (int i = 0; i < 10; ++i) (void)raw_model.probabilities(raw_in);
    const double raw_ms = t2.millis() / 10;
    std::printf("feature tensor input : %.2f ms / batch of 8\n", ft_ms);
    std::printf("96x96 raw-ish input  : %.2f ms / batch of 8 (%.1fx)\n",
                raw_ms, raw_ms / ft_ms);
  }
  return 0;
}

// Boosted stump ensembles — the two machine-learning baselines of Table 2.
//
// * WeightScheme::kExponential reproduces classic AdaBoost, the learner of
//   the SPIE'15 [4] detector (there paired with simplified density
//   features).
// * WeightScheme::kSmoothCapped caps sample weights (MadaBoost-style
//   smooth boosting), the robust-to-imbalance scheme behind the ICCAD'16
//   [5] online detector (there paired with optimized CCS features).
//
// Both produce a real-valued margin score F(x) = sum_t alpha_t h_t(x); the
// decision threshold `bias` trades accuracy against false alarms, and
// update_online() refines the ensemble weights on newly arriving labeled
// instances (logistic-loss gradient on alpha), mirroring the online
// capability claimed by [5].
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/stump.hpp"
#include "nn/dataset.hpp"

namespace hsdl::baselines {

enum class WeightScheme { kExponential, kSmoothCapped };

struct BoostConfig {
  std::size_t rounds = 100;
  WeightScheme scheme = WeightScheme::kExponential;
  /// Weight cap for kSmoothCapped, as a multiple of the uniform weight.
  double smooth_cap = 8.0;
  /// Class-rebalancing: initial weights give both classes equal total mass
  /// (important for the paper's 1:14 imbalanced sets).
  bool balance_classes = true;
};

class BoostedStumps {
 public:
  explicit BoostedStumps(const BoostConfig& config = {});

  /// Trains on a dataset with labels {0, 1} (1 = positive / hotspot).
  void train(const nn::ClassificationDataset& data);

  /// Margin score; positive favours the positive class.
  double score(const float* x) const;

  /// Hard decision: score(x) > bias.
  bool predict(const float* x, double bias = 0.0) const;

  /// One online gradient step of the ensemble weights alpha on a new
  /// labeled instance (label in {0, 1}). `weight` rescales the step (use
  /// inverse class frequency on imbalanced streams).
  void update_online(const float* x, std::size_t label,
                     double learning_rate = 0.05, double weight = 1.0);

  /// Decision threshold maximizing balanced accuracy (mean per-class
  /// recall) on a labeled set — the high-recall operating point at which
  /// the reference detectors are run.
  double tune_bias_balanced(const nn::ClassificationDataset& data) const;

  std::size_t rounds_trained() const { return stumps_.size(); }
  const BoostConfig& config() const { return config_; }

 private:
  BoostConfig config_;
  std::vector<Stump> stumps_;
  std::vector<double> alpha_;
};

}  // namespace hsdl::baselines

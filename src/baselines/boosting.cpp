#include "baselines/boosting.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hsdl::baselines {

BoostedStumps::BoostedStumps(const BoostConfig& config) : config_(config) {
  HSDL_CHECK(config.rounds > 0);
  HSDL_CHECK(config.smooth_cap > 1.0);
}

void BoostedStumps::train(const nn::ClassificationDataset& data) {
  const std::size_t n = data.size();
  HSDL_CHECK_MSG(n > 1, "boosting needs at least two samples");
  HSDL_CHECK(data.num_classes() == 2);

  stumps_.clear();
  alpha_.clear();

  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = data.label(i) == 1 ? 1 : -1;

  // Initial weights; optionally give each class equal total mass.
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  if (config_.balance_classes) {
    const std::size_t pos = data.count_label(1);
    const std::size_t neg = n - pos;
    HSDL_CHECK_MSG(pos > 0 && neg > 0, "boosting needs both classes");
    for (std::size_t i = 0; i < n; ++i)
      w[i] = 0.5 / static_cast<double>(y[i] == 1 ? pos : neg);
  }

  // Cumulative margins for the smooth-capped scheme.
  std::vector<double> margin(n, 0.0);
  const double uniform = 1.0 / static_cast<double>(n);

  for (std::size_t t = 0; t < config_.rounds; ++t) {
    double err = 0.0;
    const Stump h = train_stump(data, y, w, &err);
    // Clamp to avoid infinite alpha on a perfect (or useless) stump.
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    if (err >= 0.5) break;  // no weak learner left with an edge
    const double a = 0.5 * std::log((1.0 - err) / err);
    stumps_.push_back(h);
    alpha_.push_back(a);

    for (std::size_t i = 0; i < n; ++i)
      margin[i] += a * y[i] * h.predict(data.features(i));

    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double wi = std::exp(-margin[i]);
      if (config_.scheme == WeightScheme::kSmoothCapped)
        wi = std::min(wi, config_.smooth_cap);  // relative to uniform below
      w[i] = wi;
      sum += wi;
    }
    // Perfect separation drives every margin high enough that the weights
    // underflow; the ensemble has converged.
    if (sum < 1e-12) break;
    // Normalize; for the capped scheme the cap is smooth_cap * uniform
    // after normalization, enforced by a second clamping pass.
    for (std::size_t i = 0; i < n; ++i) w[i] /= sum;
    if (config_.scheme == WeightScheme::kSmoothCapped) {
      const double cap = config_.smooth_cap * uniform;
      double clipped = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (w[i] > cap) w[i] = cap;
        clipped += w[i];
      }
      for (std::size_t i = 0; i < n; ++i) w[i] /= clipped;
    }
  }
  HSDL_CHECK_MSG(!stumps_.empty(),
                 "boosting failed to find any weak learner with an edge");
}

double BoostedStumps::score(const float* x) const {
  HSDL_CHECK_MSG(!stumps_.empty(), "score() before train()");
  double s = 0.0;
  for (std::size_t t = 0; t < stumps_.size(); ++t)
    s += alpha_[t] * stumps_[t].predict(x);
  return s;
}

bool BoostedStumps::predict(const float* x, double bias) const {
  return score(x) > bias;
}

void BoostedStumps::update_online(const float* x, std::size_t label,
                                  double learning_rate, double weight) {
  HSDL_CHECK_MSG(!stumps_.empty(), "update_online() before train()");
  HSDL_CHECK(label < 2);
  const double y = label == 1 ? 1.0 : -1.0;
  const double f = score(x);
  // Logistic loss l = log(1 + exp(-y f)); dl/dalpha_t = -y h_t(x) sigma(-yf)
  const double sig = 1.0 / (1.0 + std::exp(y * f));
  for (std::size_t t = 0; t < stumps_.size(); ++t) {
    const double h = stumps_[t].predict(x);
    alpha_[t] += learning_rate * weight * y * h * sig;
  }
}

double BoostedStumps::tune_bias_balanced(
    const nn::ClassificationDataset& data) const {
  HSDL_CHECK(!data.empty());
  const std::size_t n = data.size();
  std::vector<std::pair<double, std::size_t>> scored(n);
  for (std::size_t i = 0; i < n; ++i)
    scored[i] = {score(data.features(i)), data.label(i)};
  std::sort(scored.begin(), scored.end());

  const auto pos_total = static_cast<double>(data.count_label(1));
  const auto neg_total = static_cast<double>(n) - pos_total;
  HSDL_CHECK_MSG(pos_total > 0 && neg_total > 0,
                 "bias tuning needs both classes");

  // Sweep thresholds between consecutive scores; predict positive when
  // score > threshold. Start below all scores: every sample positive.
  double tp = pos_total, fp = neg_total;
  double best_bias = scored.front().first - 1.0;
  double best_bal = 0.5 * (tp / pos_total + (neg_total - fp) / neg_total);
  for (std::size_t i = 0; i < n; ++i) {
    // Raise the threshold past sample i: it flips to a negative prediction.
    if (scored[i].second == 1)
      tp -= 1.0;
    else
      fp -= 1.0;
    if (i + 1 < n && scored[i + 1].first == scored[i].first) continue;
    const double bal =
        0.5 * (tp / pos_total + (neg_total - fp) / neg_total);
    if (bal > best_bal) {
      best_bal = bal;
      best_bias = i + 1 < n
                      ? 0.5 * (scored[i].first + scored[i + 1].first)
                      : scored[i].first + 1.0;
    }
  }
  return best_bias;
}

}  // namespace hsdl::baselines

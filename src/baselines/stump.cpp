#include "baselines/stump.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.hpp"

namespace hsdl::baselines {

Stump train_stump(const nn::ClassificationDataset& data,
                  const std::vector<int>& y, const std::vector<double>& w,
                  double* error_out) {
  const std::size_t n = data.size();
  const std::size_t d = data.feature_numel();
  HSDL_CHECK(n > 0 && y.size() == n && w.size() == n);

  const double total_w = std::accumulate(w.begin(), w.end(), 0.0);
  HSDL_CHECK_MSG(total_w > 0.0, "all-zero boosting weights");

  Stump best;
  double best_err = std::numeric_limits<double>::infinity();

  std::vector<std::pair<float, std::size_t>> order(n);
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t i = 0; i < n; ++i)
      order[i] = {data.features(i)[f], i};
    std::sort(order.begin(), order.end());

    // err(+1 polarity, threshold below all samples) = weight of negatives
    // classified +1 => sum of w where y == -1. Sweeping the threshold past
    // sample i flips that sample's prediction from +1 to -1.
    double err_pos = 0.0;  // polarity +1
    for (std::size_t i = 0; i < n; ++i)
      if (y[i] == -1) err_pos += w[i];

    double err = err_pos;
    auto consider = [&](double e, float threshold, int polarity) {
      if (e < best_err) {
        best_err = e;
        best = Stump{f, threshold, polarity};
      }
    };
    // Threshold below the smallest value.
    const float eps = 1e-6f;
    consider(err, order[0].first - eps, 1);
    consider(total_w - err, order[0].first - eps, -1);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [value, idx] = order[i];
      // Moving the threshold above `value`: samples at `value` now
      // predicted -1 by polarity +1.
      err += (y[idx] == 1) ? w[idx] : -w[idx];
      // Place the threshold between distinct values only.
      if (i + 1 < n && order[i + 1].first == value) continue;
      const float threshold =
          i + 1 < n ? (value + order[i + 1].first) / 2.0f : value + eps;
      consider(err, threshold, 1);
      consider(total_w - err, threshold, -1);
    }
  }
  if (error_out != nullptr) *error_out = best_err / total_w;
  return best;
}

}  // namespace hsdl::baselines

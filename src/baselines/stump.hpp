// Decision stump weak learner for boosting.
//
// A stump thresholds a single feature: h(x) = polarity * sign(x[f] - t),
// mapping to {-1, +1}. Training scans every (feature, threshold) pair and
// minimizes weighted classification error — the classic weak learner of
// the AdaBoost hotspot detectors this library reproduces as baselines.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/dataset.hpp"

namespace hsdl::baselines {

struct Stump {
  std::size_t feature = 0;
  float threshold = 0.0f;
  int polarity = 1;  ///< +1: predict +1 when x[f] > threshold; -1 inverted

  /// Prediction in {-1, +1}.
  int predict(const float* x) const {
    const bool above = x[feature] > threshold;
    return (above ? 1 : -1) * polarity;
  }
};

/// Trains the weighted-error-optimal stump.
///
/// `data` supplies features; `y` holds labels in {-1, +1}; `w` holds
/// non-negative sample weights (need not be normalized). Returns the stump
/// and writes its weighted error rate (relative to sum(w)) to `error_out`.
Stump train_stump(const nn::ClassificationDataset& data,
                  const std::vector<int>& y, const std::vector<double>& w,
                  double* error_out);

}  // namespace hsdl::baselines

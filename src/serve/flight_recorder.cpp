#include "serve/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/check.hpp"

namespace hsdl::serve {
namespace {

class SlotLock {
 public:
  explicit SlotLock(std::atomic<bool>& flag) : flag_(flag) {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // Contention is a wrap-collision on one slot; yielding beats
      // burning the core for the rare case two writers meet here.
      std::this_thread::yield();
    }
  }
  ~SlotLock() { flag_.store(false, std::memory_order_release); }
  SlotLock(const SlotLock&) = delete;
  SlotLock& operator=(const SlotLock&) = delete;

 private:
  std::atomic<bool>& flag_;
};

}  // namespace

void FlightRecord::set_tenant(const std::string& t) {
  const std::size_t n = std::min(t.size(), sizeof(tenant) - 1);
  std::memcpy(tenant, t.data(), n);
  tenant[n] = '\0';
}

json::Value to_json(const FlightRecord& r) {
  json::Value v = json::Value::object();
  v.set("seq", r.seq);
  v.set("wall_ms", r.wall_ms);
  v.set("request_id", r.request_id);
  v.set("tenant", std::string(r.tenant));
  v.set("clips", static_cast<std::uint64_t>(r.clips));
  v.set("deadline_ms", static_cast<std::uint64_t>(r.deadline_ms));
  v.set("error", r.error == 0
                     ? std::string("ok")
                     : std::string(error_code_name(
                           static_cast<ErrorCode>(r.error))));
  v.set("mode", serve_mode_name(static_cast<ServeMode>(r.mode)));
  v.set("decode_ms", static_cast<double>(r.decode_ms));
  v.set("quota_ms", static_cast<double>(r.quota_ms));
  v.set("score_ms", static_cast<double>(r.score_ms));
  v.set("rank_ms", static_cast<double>(r.rank_ms));
  v.set("send_ms", static_cast<double>(r.send_ms));
  v.set("total_ms", static_cast<double>(r.total_ms));
  return v;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::record(FlightRecord r) {
  r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  r.wall_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  Slot& slot = slots_[static_cast<std::size_t>(r.seq) % slots_.size()];
  SlotLock lk(slot.locked);
  slot.rec = r;
  slot.valid = true;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    SlotLock lk(slot.locked);
    if (slot.valid) out.push_back(slot.rec);
  }
  // Slot order is ring order, not age order, once the ring wraps; the
  // seq stamp restores oldest-first.
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::size_t FlightRecorder::dump_jsonl(const std::string& path,
                                       const std::string& reason) const {
  if (path.empty()) return 0;
  // Append: one file collects every dump of a server's lifetime (a
  // SIGQUIT dump followed by the drain dump must not erase the first —
  // the post-mortem usually wants exactly that earlier snapshot).
  std::ofstream out(path, std::ios::app);
  if (!out.is_open()) return 0;
  const std::vector<FlightRecord> records = snapshot();
  json::Value header = json::Value::object();
  header.set("event", "flight.dump");
  header.set("reason", reason);
  header.set("records", static_cast<std::uint64_t>(records.size()));
  header.set("total_recorded", total_recorded());
  out << header.dump() << '\n';
  for (const FlightRecord& r : records) out << to_json(r).dump() << '\n';
  out.flush();
  return records.size();
}

}  // namespace hsdl::serve

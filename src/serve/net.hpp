// Minimal blocking TCP plumbing for the serving front-end: RAII socket
// and listener wrappers plus whole-frame send/receive. POSIX only (the
// rest of the repo already assumes a POSIX toolchain); everything
// surfaces failures as CheckError/IoError so callers reuse the existing
// error taxonomy.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace hsdl::serve {

/// A socket send/recv exceeded its SO_RCVTIMEO/SO_SNDTIMEO budget
/// (set_timeouts). The server's session loop catches this subtype to
/// reap stuck sessions — freeing the worker and the tenant quota —
/// distinctly from protocol errors.
class NetTimeout : public CheckError {
 public:
  using CheckError::CheckError;
};

/// Owns one connected socket fd; move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Connects to host:port (blocking); throws CheckError on failure.
  static Socket connect(const std::string& host, std::uint16_t port);

  /// Arms kernel-level send/recv timeouts (milliseconds; 0 leaves that
  /// direction unbounded). A blocked send/recv past its budget throws
  /// NetTimeout instead of hanging the session worker forever.
  void set_timeouts(std::uint32_t recv_ms, std::uint32_t send_ms);

  /// Names this socket's fault-injection sites (common/fault.hpp):
  /// probes fire at `<site>.send` and `<site>.recv`. Defaults to "net";
  /// the server uses "serve.net", the client "client.net", so a chaos
  /// plan can break exactly one side of the wire.
  void set_fault_site(std::string site) { fault_site_ = std::move(site); }

  /// Writes all of `data`; throws CheckError when the peer is gone and
  /// NetTimeout when a send timeout (set_timeouts) expires.
  void send_all(const void* data, std::size_t n);
  /// Reads exactly n bytes. Returns false on clean EOF before the first
  /// byte; throws CheckError on EOF mid-buffer or a socket error, and
  /// NetTimeout when a recv timeout (set_timeouts) expires.
  bool recv_exact(void* out, std::size_t n);

  /// shutdown(2) the read side: a peer blocked in recv wakes with EOF.
  /// Used by graceful drain; the write side stays open so an in-flight
  /// response still reaches the client.
  void shutdown_read();
  void close();

 private:
  int fd_ = -1;
  std::string fault_site_ = "net";
};

/// Listening socket bound to 127.0.0.1; move-only.
class Listener {
 public:
  /// Binds and listens on loopback. port 0 picks an ephemeral port —
  /// read the actual one back with port().
  explicit Listener(std::uint16_t port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for one connection. Returns an invalid Socket when the
  /// listener was closed (shutdown path).
  Socket accept();

  /// Unblocks any accept() and stops accepting connections (new
  /// connects are refused). Safe to call while another thread is
  /// blocked in accept(); the fd itself is released by the destructor,
  /// so a racing accept() can never touch a recycled descriptor.
  void close();

 private:
  int fd_ = -1;
  std::atomic<bool> closed_{false};
  std::uint16_t port_ = 0;
};

/// Sends one already-encoded frame (see protocol.hpp encode_frame).
void send_frame(Socket& s, std::string_view frame);

/// Receives one complete frame into `buf` (length prefix + payload +
/// CRC, ready for decode_frame). Returns false on clean EOF at a frame
/// boundary. Throws IoError when the length prefix exceeds the frame
/// limit and CheckError on mid-frame EOF.
///
/// `arrival_ns` (optional) receives the trace-clock timestamp taken
/// right after the length prefix landed — the closest observable point
/// to "the frame started arriving", before anyone knows what message it
/// carries. The server session uses it to emit the serve.recv span for
/// sampled requests; pass nullptr (the default) to skip the clock read.
bool recv_frame(Socket& s, std::string& buf, const std::string& context,
                std::uint64_t* arrival_ns = nullptr);

}  // namespace hsdl::serve

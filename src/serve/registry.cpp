#include "serve/registry.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace hsdl::serve {

ServingModel::ServingModel(std::uint64_t generation, std::string source,
                           std::unique_ptr<hotspot::CnnDetector> detector,
                           const hotspot::EngineConfig& engine_config)
    : generation_(generation),
      source_(std::move(source)),
      detector_(std::move(detector)) {
  HSDL_CHECK_MSG(detector_ != nullptr, "ServingModel needs a detector");
  engine_ = std::make_unique<hotspot::InferenceEngine>(*detector_,
                                                       engine_config);
  // Degraded-path engine: same detector, pinned to the int8 net. Only
  // models that were quantized before install get one — checkpoint
  // loads drop the quantized net, so those serve fp32 even under
  // overload.
  if (detector_->quantized_net() != nullptr) {
    hotspot::EngineConfig degraded = engine_config;
    degraded.quantized = true;
    degraded.telemetry_path.clear();  // one telemetry stream per model
    degraded_engine_ =
        std::make_unique<hotspot::InferenceEngine>(*detector_, degraded);
  }
}

ModelRegistry::ModelRegistry(const hotspot::CnnDetectorConfig& config,
                             const hotspot::EngineConfig& engine_config)
    : config_(config), engine_config_(engine_config) {
  config_.validate();
  engine_config_.validate();
}

std::uint64_t ModelRegistry::install(
    std::unique_ptr<hotspot::CnnDetector> detector, std::string source) {
  // Build the new generation outside the lock (engine construction
  // spawns threads); only the pointer swap is serialized.
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t generation = next_generation_++;
  lk.unlock();
  auto model = std::make_shared<ServingModel>(
      generation, std::move(source), std::move(detector), engine_config_);
  lk.lock();
  // Concurrent installs race to this point; generations only move
  // forward, so a slower build of an older generation never replaces a
  // newer active model.
  if (current_ == nullptr || generation > current_->generation())
    current_ = std::move(model);
  lk.unlock();
  HSDL_LOG(kInfo) << "registry: generation " << generation << " installed";
  return generation;
}

std::uint64_t ModelRegistry::swap_from_checkpoint(
    const std::string& checkpoint_path) {
  auto detector = std::make_unique<hotspot::CnnDetector>(config_);
  detector->load(checkpoint_path);  // throws on damage/mismatch
  return install(std::move(detector), checkpoint_path);
}

std::shared_ptr<ServingModel> ModelRegistry::acquire() const {
  std::lock_guard<std::mutex> lk(mu_);
  HSDL_CHECK_MSG(current_ != nullptr, "registry has no installed model");
  return current_;
}

std::uint64_t ModelRegistry::generation() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_ ? current_->generation() : 0;
}

}  // namespace hsdl::serve

// Serving model registry: generation-tagged (detector, engine) pairs
// with swap-without-drain semantics (DESIGN.md §13).
//
// The registry owns the active serving model — a trained CnnDetector
// plus the InferenceEngine batching requests into it — behind a
// shared_ptr. Sessions acquire() a handle per request; a hot-swap
// replaces the registry's pointer atomically, so new requests land on
// the new model while every in-flight request keeps its handle and
// completes against the model that scored its first clip. The old
// engine drains and is destroyed when the last in-flight handle drops —
// no global pause, no request ever sees two models.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "hotspot/detector.hpp"
#include "hotspot/engine/engine.hpp"

namespace hsdl::serve {

/// One generation of the served model. Member order is load-bearing:
/// the engine must be destroyed before the detector it scores through.
class ServingModel {
 public:
  ServingModel(std::uint64_t generation, std::string source,
               std::unique_ptr<hotspot::CnnDetector> detector,
               const hotspot::EngineConfig& engine_config);

  std::uint64_t generation() const { return generation_; }
  const std::string& source() const { return source_; }
  const hotspot::CnnDetector& detector() const { return *detector_; }
  hotspot::InferenceEngine& engine() { return *engine_; }

  /// Degraded int8 engine, built iff the detector carries a quantized
  /// net (CnnDetector::quantize() ran before install). nullptr
  /// otherwise — the server then keeps serving fp32 under overload.
  hotspot::InferenceEngine* degraded_engine() { return degraded_engine_.get(); }

 private:
  std::uint64_t generation_;
  std::string source_;  // checkpoint path, or a caller-provided label
  std::unique_ptr<hotspot::CnnDetector> detector_;
  std::unique_ptr<hotspot::InferenceEngine> engine_;
  std::unique_ptr<hotspot::InferenceEngine> degraded_engine_;
};

class ModelRegistry {
 public:
  /// `config` is the detector architecture every loaded checkpoint must
  /// match (CnnDetector::load verifies the fingerprint); `engine_config`
  /// parameterizes the engine built around each installed model.
  ModelRegistry(const hotspot::CnnDetectorConfig& config,
                const hotspot::EngineConfig& engine_config);

  /// Installs a detector as the new active generation and returns that
  /// generation. The previous model stays alive until its last
  /// in-flight handle drops.
  std::uint64_t install(std::unique_ptr<hotspot::CnnDetector> detector,
                        std::string source);

  /// Constructs a detector from the registry's architecture config,
  /// loads `checkpoint_path` into it (fingerprint-verified, checksummed
  /// v2 container) and installs it. Throws CheckError/IoError on a bad
  /// checkpoint — the active model is untouched in that case.
  std::uint64_t swap_from_checkpoint(const std::string& checkpoint_path);

  /// Current model; hold the handle for the duration of one request.
  std::shared_ptr<ServingModel> acquire() const;

  std::uint64_t generation() const;

  const hotspot::CnnDetectorConfig& detector_config() const {
    return config_;
  }

 private:
  hotspot::CnnDetectorConfig config_;
  hotspot::EngineConfig engine_config_;
  mutable std::mutex mu_;
  std::shared_ptr<ServingModel> current_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace hsdl::serve

// hsdl_serve — the hotspot-detection serving front-end binary.
//
// Serves a trained CnnDetector over the framed loopback protocol
// (DESIGN.md §13). Two ways to get a model:
//
//   hsdl_serve --checkpoint model.hsdl [--port 7433] [architecture flags]
//   hsdl_serve --demo [--port 7433]
//
// --demo trains a small detector on synthetic generator clips so the
// server can be exercised without a checkpoint. The architecture flags
// (--blocks, --coeffs, --nm-per-px, --stage1, --stage2, --fc) must
// match the checkpoint being loaded — CnnDetector::load verifies the
// fingerprint and rejects a mismatch. SIGINT/SIGTERM trigger a graceful
// drain; SIGQUIT dumps the flight recorder (last N requests) without
// stopping the server.
//
// Observability (DESIGN.md §15): --stats-interval-ms enables metrics
// and appends one hsdl-serve-stats-v1 JSON line per interval to the
// --stats-jsonl path (default serve_stats.jsonl); --trace enables span
// recording and writes one Chrome trace JSON on exit; --flight-size /
// --flight-dump size the always-on flight recorder and name its dump
// file.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/run_report.hpp"
#include "common/trace.hpp"
#include "hotspot/detector.hpp"
#include "layout/dataset.hpp"
#include "layout/generator.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;
void handle_signal(int) { g_stop = 1; }
void handle_dump_signal(int) { g_dump = 1; }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--checkpoint <path> | --demo) [options]\n"
      "  --port <n>        listen port (default 7433, 0 = ephemeral)\n"
      "  --workers <n>     session workers (default 4)\n"
      "  --telemetry <p>   per-request JSONL stream path\n"
      "  --blocks <n>      feature blocks per side (default 12)\n"
      "  --coeffs <n>      DCT coefficients per block (default 32)\n"
      "  --nm-per-px <f>   raster pitch in nm (default 4)\n"
      "  --stage1 <n> --stage2 <n> --fc <n>   CNN widths\n"
      "reliability (DESIGN.md §14):\n"
      "  --session-timeout-ms <n>  reap sessions idle past n ms (0 = never)\n"
      "  --max-clips <n>           per-request clip cap (default 65536)\n"
      "  --busy-max-clips <n>      in-flight clip ceiling before kBusy\n"
      "                            (must admit a maximal request)\n"
      "  --retry-after-ms <n>      back-off hint on kBusy (default 25)\n"
      "  --degrade-after-ms <n>    sustained-shed window before int8\n"
      "  --recover-after-ms <n>    shed-free window restoring fp32\n"
      "  --no-degrade              never switch to the int8 path\n"
      "observability (DESIGN.md §15):\n"
      "  --stats-interval-ms <n>   enable metrics; append one stats JSON\n"
      "                            line per interval (0 = off)\n"
      "  --stats-jsonl <p>         stats line destination (default\n"
      "                            serve_stats.jsonl)\n"
      "  --trace <p>               enable span recording; write a Chrome\n"
      "                            trace to <p> on exit\n"
      "  --flight-size <n>         flight recorder depth (default 256)\n"
      "  --flight-dump <p>         flight recorder dump path (SIGQUIT,\n"
      "                            drain, session-fatal errors)\n"
      "chaos runs: set HSDL_FAULT_SPEC / HSDL_FAULT_SEED in the env\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsdl;

  std::string checkpoint;
  bool demo = false;
  std::uint16_t port = 7433;
  std::uint32_t stats_interval_ms = 0;
  std::string stats_jsonl = "serve_stats.jsonl";
  std::string trace_path;
  serve::ServeConfig serve_cfg;
  hotspot::CnnDetectorConfig det_cfg;
  det_cfg.feature.blocks_per_side = 12;
  det_cfg.feature.coeffs = 32;
  det_cfg.feature.nm_per_px = 4.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--checkpoint") {
      checkpoint = next();
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      serve_cfg.session_workers =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--telemetry") {
      serve_cfg.telemetry_path = next();
    } else if (arg == "--blocks") {
      det_cfg.feature.blocks_per_side =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--coeffs") {
      det_cfg.feature.coeffs = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--nm-per-px") {
      det_cfg.feature.nm_per_px = std::atof(next());
    } else if (arg == "--stage1") {
      det_cfg.cnn.stage1_maps = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--stage2") {
      det_cfg.cnn.stage2_maps = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--fc") {
      det_cfg.cnn.fc_nodes = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--max-clips") {
      serve_cfg.max_clips_per_request =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--session-timeout-ms") {
      serve_cfg.session_timeout_ms =
          static_cast<std::uint32_t>(std::atol(next()));
    } else if (arg == "--busy-max-clips") {
      serve_cfg.busy_max_inflight_clips =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--retry-after-ms") {
      serve_cfg.retry_after_ms = static_cast<std::uint32_t>(std::atol(next()));
    } else if (arg == "--degrade-after-ms") {
      serve_cfg.degrade_after_ms =
          static_cast<std::uint32_t>(std::atol(next()));
    } else if (arg == "--recover-after-ms") {
      serve_cfg.recover_after_ms =
          static_cast<std::uint32_t>(std::atol(next()));
    } else if (arg == "--no-degrade") {
      serve_cfg.degrade_to_int8 = false;
    } else if (arg == "--stats-interval-ms") {
      stats_interval_ms = static_cast<std::uint32_t>(std::atol(next()));
    } else if (arg == "--stats-jsonl") {
      stats_jsonl = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--flight-size") {
      serve_cfg.flight_recorder_size =
          static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--flight-dump") {
      serve_cfg.flight_dump_path = next();
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (checkpoint.empty() && !demo) {
    usage(argv[0]);
    return 2;
  }

  try {
    if (hsdl::fault::arm_from_env())
      HSDL_LOG(kWarn) << "fault injection armed from HSDL_FAULT_SPEC "
                         "(chaos run)";
    serve_cfg.port = port;
    serve::ModelRegistry registry(det_cfg, hotspot::EngineConfig{});
    if (!checkpoint.empty()) {
      registry.swap_from_checkpoint(checkpoint);
    } else {
      // Demo model: a short biased-learning train on synthetic clips so
      // the binary is self-contained. Deliberately tiny — the demo
      // exists to exercise the serving path, not to produce a good
      // detector (use --checkpoint for that).
      HSDL_LOG(kInfo) << "training demo model on synthetic clips";
      hotspot::CnnDetectorConfig demo_cfg = det_cfg;
      demo_cfg.biased.rounds = 1;
      demo_cfg.biased.initial.max_iters = 150;
      demo_cfg.biased.initial.validate_every = 50;
      demo_cfg.biased.initial.patience = 2;
      layout::GeneratorConfig gen_cfg;
      gen_cfg.stress = 0.45;
      layout::ClipGenerator gen(gen_cfg, 17);
      std::vector<layout::LabeledClip> train;
      for (std::size_t i = 0; i < 48; ++i) {
        layout::LabeledClip lc;
        lc.clip = gen.generate().normalized();
        lc.label = i % 3 == 0 ? layout::HotspotLabel::kHotspot
                              : layout::HotspotLabel::kNonHotspot;
        train.push_back(std::move(lc));
      }
      auto detector = std::make_unique<hotspot::CnnDetector>(demo_cfg);
      detector->train(train);
      registry.install(std::move(detector), "demo");
    }

    // Observability switches: metrics feed the stats surface (and the
    // periodic JSONL line); tracing records spans for the Chrome trace
    // written on exit. Both default off — the hot path then pays one
    // relaxed load per instrument.
    if (stats_interval_ms > 0) metrics::set_enabled(true);
    if (!trace_path.empty()) trace::set_enabled(true);

    serve::HotspotServer server(registry, serve_cfg);
    std::printf("hsdl_serve: listening on 127.0.0.1:%u (generation %llu)\n",
                static_cast<unsigned>(server.port()),
                static_cast<unsigned long long>(registry.generation()));
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGQUIT, handle_dump_signal);
    telemetry::JsonlStream stats_stream(
        stats_interval_ms > 0 ? stats_jsonl : std::string());
    std::uint64_t slept_ms = 0;
    while (!g_stop) {
      struct timespec ts {0, 100 * 1000 * 1000};
      nanosleep(&ts, nullptr);
      slept_ms += 100;
      if (g_dump) {
        // SIGQUIT: dump the flight recorder without stopping; the
        // handler only sets a flag (dumping is not async-signal-safe).
        g_dump = 0;
        server.dump_flight_recorder("signal");
      }
      if (stats_interval_ms > 0 && slept_ms >= stats_interval_ms) {
        slept_ms = 0;
        // stats_json() is strict-parseable by design; re-parsing here
        // keeps JsonlStream's one-object-per-line contract.
        stats_stream.emit(json::parse(server.stats_json()));
      }
    }
    std::printf("hsdl_serve: draining...\n");
    server.shutdown();
    if (stats_interval_ms > 0)
      stats_stream.emit(json::parse(server.stats_json()));
    if (!trace_path.empty()) {
      trace::write_chrome_trace(trace_path);
      std::printf("hsdl_serve: wrote trace (%zu spans) to %s\n",
                  trace::event_count(), trace_path.c_str());
    }
    const serve::ServerStats stats = server.stats();
    std::printf(
        "hsdl_serve: served %llu requests / %llu clips across %llu "
        "sessions (%llu swaps, %llu errors)\n",
        static_cast<unsigned long long>(stats.requests_served),
        static_cast<unsigned long long>(stats.clips_scored),
        static_cast<unsigned long long>(stats.sessions_accepted),
        static_cast<unsigned long long>(stats.swaps),
        static_cast<unsigned long long>(stats.errors_sent));
    std::printf(
        "hsdl_serve: reliability: %llu shed (%llu deadline), %llu "
        "internal, %llu reaped, %llu degrades / %llu recoveries\n",
        static_cast<unsigned long long>(stats.busy_rejections),
        static_cast<unsigned long long>(stats.deadline_rejections),
        static_cast<unsigned long long>(stats.internal_errors),
        static_cast<unsigned long long>(stats.sessions_reaped),
        static_cast<unsigned long long>(stats.degrade_events),
        static_cast<unsigned long long>(stats.recover_events));
    if (hsdl::fault::armed())
      std::printf("hsdl_serve: chaos: %llu faults fired\n",
                  static_cast<unsigned long long>(hsdl::fault::total_fires()));
    return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "hsdl_serve: %s\n", e.what());
    return 1;
  }
}

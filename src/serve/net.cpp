#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/io.hpp"
#include "common/trace.hpp"
#include "serve/protocol.hpp"

namespace hsdl::serve {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), fault_site_(std::move(other.fault_site_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    fault_site_ = std::move(other.fault_site_);
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HSDL_CHECK_MSG(fd >= 0, "socket(): " << std::strerror(errno));
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  HSDL_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "bad address: " << host);
  HSDL_CHECK_MSG(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0,
                 "connect " << host << ":" << port << ": "
                            << std::strerror(errno));
  // Frames are small request/response units; coalescing delays hurt the
  // latency histograms far more than the per-segment overhead.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

void Socket::set_timeouts(std::uint32_t recv_ms, std::uint32_t send_ms) {
  const auto to_tv = [](std::uint32_t ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    return tv;
  };
  if (recv_ms > 0) {
    const timeval tv = to_tv(recv_ms);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (send_ms > 0) {
    const timeval tv = to_tv(send_ms);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

void Socket::send_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  if (fault::armed()) {
    // A fired probe lets `keep` bytes reach the wire, then drops the
    // connection: the peer sees a truncated frame followed by EOF.
    if (const std::optional<std::size_t> keep =
            fault::short_io(fault_site_ + ".send", n)) {
      std::size_t left = *keep;
      while (left > 0) {
        const ssize_t w = ::send(fd_, p, left, MSG_NOSIGNAL);
        if (w <= 0) break;
        p += w;
        left -= static_cast<std::size_t>(w);
      }
      close();
      throw CheckError("send: injected connection drop (" + fault_site_ +
                       ".send)");
    }
  }
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      throw NetTimeout("send: timed out (SO_SNDTIMEO)");
    HSDL_CHECK_MSG(w > 0, "send: " << (w < 0 ? std::strerror(errno)
                                             : "connection closed"));
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool Socket::recv_exact(void* out, std::size_t n) {
  if (fault::armed() &&
      fault::short_io(fault_site_ + ".recv", n).has_value()) {
    // Unlike the send side there is no honest way to half-read a live
    // stream, so any fired recv probe drops the connection outright.
    close();
    throw CheckError("recv: injected connection drop (" + fault_site_ +
                     ".recv)");
  }
  char* p = static_cast<char*>(out);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      throw NetTimeout("recv: timed out after " + std::to_string(got) +
                       " of " + std::to_string(n) + " bytes (SO_RCVTIMEO)");
    HSDL_CHECK_MSG(r >= 0, "recv: " << std::strerror(errno));
    if (r == 0) {
      HSDL_CHECK_MSG(got == 0, "connection closed mid-frame after "
                                   << got << " of " << n << " bytes");
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  HSDL_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  HSDL_CHECK_MSG(::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind 127.0.0.1:" << port << ": " << std::strerror(errno));
  HSDL_CHECK_MSG(::listen(fd_, 64) == 0, "listen: " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  HSDL_CHECK_MSG(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                               &len) == 0,
                 "getsockname: " << std::strerror(errno));
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() {
  close();
  // The fd is only released here, once no accept() can be in flight
  // (the owning server joins its acceptor thread before destroying the
  // listener). Closing it from close() instead would let the kernel
  // recycle the descriptor while a racing accept() still holds it.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Listener::accept() {
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) return Socket();
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      if (closed_.load(std::memory_order_acquire)) {
        ::close(fd);  // connection raced the shutdown; drop it
        return Socket();
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket();  // closed / shutdown: signal "stop accepting"
  }
}

void Listener::close() {
  // shutdown(2) wakes a thread blocked in accept() and makes the kernel
  // refuse new connections; the fd stays allocated until the destructor.
  if (!closed_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0)
    ::shutdown(fd_, SHUT_RDWR);
}

void send_frame(Socket& s, std::string_view frame) {
  s.send_all(frame.data(), frame.size());
}

bool recv_frame(Socket& s, std::string& buf, const std::string& context,
                std::uint64_t* arrival_ns) {
  std::uint8_t prefix[4];
  if (!s.recv_exact(prefix, sizeof(prefix))) return false;
  if (arrival_ns != nullptr) *arrival_ns = trace::timestamp_ns();
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            static_cast<std::uint32_t>(prefix[1]) << 8 |
                            static_cast<std::uint32_t>(prefix[2]) << 16 |
                            static_cast<std::uint32_t>(prefix[3]) << 24;
  if (len > kMaxFrameBytes || len == 0)
    throw io::IoError("frame length exceeds limit", 0, context);
  buf.resize(kFrameOverhead + len);
  std::memcpy(buf.data(), prefix, sizeof(prefix));
  HSDL_CHECK_MSG(
      s.recv_exact(buf.data() + sizeof(prefix), len + 4),
      "connection closed mid-frame (" << context << ")");
  return true;
}

}  // namespace hsdl::serve

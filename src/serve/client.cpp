#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace hsdl::serve {

ServeClient::ServeClient(const std::string& host, std::uint16_t port,
                         const std::string& tenant)
    : host_(host), port_(port), tenant_(tenant) {
  connect_and_handshake();
}

void ServeClient::connect_and_handshake() {
  sock_ = Socket::connect(host_, port_);
  sock_.set_fault_site("client.net");
  Hello hello;
  hello.tenant = tenant_;
  const Frame ack = roundtrip(MsgType::kHello, encode_hello(hello),
                              MsgType::kHelloAck);
  const HelloAck decoded = decode_hello_ack(ack.body, "hello ack");
  HSDL_CHECK_MSG(decoded.version == kProtocolVersion,
                 "server speaks protocol version "
                     << decoded.version << ", client speaks "
                     << kProtocolVersion);
  model_generation_ = decoded.model_generation;
}

Frame ServeClient::roundtrip(MsgType type, std::string_view body,
                             MsgType expect) {
  send_frame(sock_, encode_frame(type, body));
  HSDL_CHECK_MSG(recv_frame(sock_, buf_, "serve client"),
                 "server closed the connection");
  const Frame frame = decode_frame(buf_, "serve client");
  if (frame.type == MsgType::kError) {
    const ErrorMsg err = decode_error(frame.body, "serve client");
    throw ServerError(err.code, err.message, err.retry_after_ms);
  }
  HSDL_CHECK_MSG(frame.type == expect,
                 "unexpected response type "
                     << static_cast<int>(frame.type) << " (wanted "
                     << static_cast<int>(expect) << ")");
  return frame;
}

ScoreResponse ServeClient::score(std::span<const layout::Clip> clips,
                                 std::uint32_t deadline_ms) {
  ScoreRequest request;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.clips.assign(clips.begin(), clips.end());
  const Frame frame =
      roundtrip(MsgType::kScoreRequest, encode_score_request(request),
                MsgType::kScoreResponse);
  ScoreResponse response = decode_score_response(frame.body, "serve client");
  HSDL_CHECK_MSG(response.request_id == request.request_id,
                 "response id " << response.request_id
                                << " does not match request "
                                << request.request_id);
  HSDL_CHECK_MSG(response.hits.size() == clips.size(),
                 "response covers " << response.hits.size() << " of "
                                    << clips.size() << " clips");
  model_generation_ = response.model_generation;
  last_mode_ = response.mode;
  return response;
}

ScoreResponse ServeClient::score_with_retry(
    std::span<const layout::Clip> clips, const RetryPolicy& policy,
    std::uint32_t deadline_ms) {
  HSDL_CHECK_MSG(policy.max_attempts > 0,
                 "retry policy: max_attempts must be positive");
  Rng jitter(policy.jitter_seed);
  std::uint32_t backoff = policy.base_backoff_ms;
  for (std::size_t attempt = 1;; ++attempt) {
    bool dead_connection = false;
    std::uint32_t hint = 0;
    try {
      return score(clips, deadline_ms);
    } catch (const ServerError& e) {
      // Only kBusy is a "try again later"; every other rejection is
      // deterministic and would just fail again.
      if (e.code() != ErrorCode::kBusy || attempt >= policy.max_attempts)
        throw;
      hint = e.retry_after_ms();
    } catch (const CheckError&) {
      // Connection-level failure (EOF, reset, timeout). Score requests
      // are idempotent, so re-dialing and resending is safe.
      if (!policy.reconnect || attempt >= policy.max_attempts) throw;
      dead_connection = true;
    }
    double wait_ms = hint > 0 ? hint : backoff;
    wait_ms *= jitter.uniform(0.5, 1.5);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(wait_ms));
    backoff = std::min(policy.max_backoff_ms, backoff * 2);
    if (dead_connection) connect_and_handshake();
  }
}

std::vector<double> ServeClient::score_probabilities(
    std::span<const layout::Clip> clips) {
  const ScoreResponse response = score(clips);
  std::vector<double> probs(clips.size(), 0.0);
  for (const RankedHit& h : response.hits) {
    HSDL_CHECK_MSG(h.index < probs.size(),
                   "hit index " << h.index << " out of range");
    probs[h.index] = h.probability;
  }
  return probs;
}

std::uint64_t ServeClient::swap_model(const std::string& checkpoint_path) {
  const Frame frame =
      roundtrip(MsgType::kSwapModel, encode_swap_model({checkpoint_path}),
                MsgType::kSwapAck);
  const SwapAck ack = decode_swap_ack(frame.body, "serve client");
  model_generation_ = ack.model_generation;
  return ack.model_generation;
}

void ServeClient::bye() {
  send_frame(sock_, encode_frame(MsgType::kBye, ""));
  sock_.close();
}

}  // namespace hsdl::serve

#include "serve/client.hpp"

#include "common/check.hpp"

namespace hsdl::serve {

ServeClient::ServeClient(const std::string& host, std::uint16_t port,
                         const std::string& tenant)
    : sock_(Socket::connect(host, port)) {
  Hello hello;
  hello.tenant = tenant;
  const Frame ack = roundtrip(MsgType::kHello, encode_hello(hello),
                              MsgType::kHelloAck);
  const HelloAck decoded = decode_hello_ack(ack.body, "hello ack");
  HSDL_CHECK_MSG(decoded.version == kProtocolVersion,
                 "server speaks protocol version "
                     << decoded.version << ", client speaks "
                     << kProtocolVersion);
  model_generation_ = decoded.model_generation;
}

Frame ServeClient::roundtrip(MsgType type, std::string_view body,
                             MsgType expect) {
  send_frame(sock_, encode_frame(type, body));
  HSDL_CHECK_MSG(recv_frame(sock_, buf_, "serve client"),
                 "server closed the connection");
  const Frame frame = decode_frame(buf_, "serve client");
  if (frame.type == MsgType::kError) {
    const ErrorMsg err = decode_error(frame.body, "serve client");
    throw ServerError(err.code, err.message);
  }
  HSDL_CHECK_MSG(frame.type == expect,
                 "unexpected response type "
                     << static_cast<int>(frame.type) << " (wanted "
                     << static_cast<int>(expect) << ")");
  return frame;
}

ScoreResponse ServeClient::score(std::span<const layout::Clip> clips) {
  ScoreRequest request;
  request.request_id = next_request_id_++;
  request.clips.assign(clips.begin(), clips.end());
  const Frame frame =
      roundtrip(MsgType::kScoreRequest, encode_score_request(request),
                MsgType::kScoreResponse);
  ScoreResponse response = decode_score_response(frame.body, "serve client");
  HSDL_CHECK_MSG(response.request_id == request.request_id,
                 "response id " << response.request_id
                                << " does not match request "
                                << request.request_id);
  HSDL_CHECK_MSG(response.hits.size() == clips.size(),
                 "response covers " << response.hits.size() << " of "
                                    << clips.size() << " clips");
  model_generation_ = response.model_generation;
  return response;
}

std::vector<double> ServeClient::score_probabilities(
    std::span<const layout::Clip> clips) {
  const ScoreResponse response = score(clips);
  std::vector<double> probs(clips.size(), 0.0);
  for (const RankedHit& h : response.hits) {
    HSDL_CHECK_MSG(h.index < probs.size(),
                   "hit index " << h.index << " out of range");
    probs[h.index] = h.probability;
  }
  return probs;
}

std::uint64_t ServeClient::swap_model(const std::string& checkpoint_path) {
  const Frame frame =
      roundtrip(MsgType::kSwapModel, encode_swap_model({checkpoint_path}),
                MsgType::kSwapAck);
  const SwapAck ack = decode_swap_ack(frame.body, "serve client");
  model_generation_ = ack.model_generation;
  return ack.model_generation;
}

void ServeClient::bye() {
  send_frame(sock_, encode_frame(MsgType::kBye, ""));
  sock_.close();
}

}  // namespace hsdl::serve

#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace hsdl::serve {
namespace {

/// FNV-1a over the tenant name: a stable per-tenant prefix XORed with
/// the monotone request id gives each request a distinct, nonzero,
/// reproducible trace id without any shared randomness.
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ServeClient::ServeClient(const std::string& host, std::uint16_t port,
                         const std::string& tenant)
    : host_(host), port_(port), tenant_(tenant) {
  connect_and_handshake();
}

void ServeClient::connect_and_handshake() {
  sock_ = Socket::connect(host_, port_);
  sock_.set_fault_site("client.net");
  Hello hello;
  hello.tenant = tenant_;
  const Frame ack = roundtrip(MsgType::kHello, encode_hello(hello),
                              MsgType::kHelloAck);
  const HelloAck decoded = decode_hello_ack(ack.body, "hello ack");
  // The ack carries the version the session will speak: the client's
  // own, or an older one a lagging server negotiated down to.
  HSDL_CHECK_MSG(decoded.version >= kMinProtocolVersion &&
                     decoded.version <= kProtocolVersion,
                 "server negotiated protocol version "
                     << decoded.version << ", client speaks "
                     << kMinProtocolVersion << ".." << kProtocolVersion);
  version_ = decoded.version;
  model_generation_ = decoded.model_generation;
}

std::uint64_t ServeClient::next_trace_id() const {
  if (!tracing_ || version_ < 3) return 0;
  const std::uint64_t id = fnv1a64(tenant_) ^ next_request_id_;
  return id == 0 ? 1 : id;
}

Frame ServeClient::roundtrip(MsgType type, std::string_view body,
                             MsgType expect) {
  send_frame(sock_, encode_frame(type, body));
  HSDL_CHECK_MSG(recv_frame(sock_, buf_, "serve client"),
                 "server closed the connection");
  const Frame frame = decode_frame(buf_, "serve client");
  if (frame.type == MsgType::kError) {
    const ErrorMsg err = decode_error(frame.body, "serve client");
    throw ServerError(err.code, err.message, err.retry_after_ms);
  }
  HSDL_CHECK_MSG(frame.type == expect,
                 "unexpected response type "
                     << static_cast<int>(frame.type) << " (wanted "
                     << static_cast<int>(expect) << ")");
  return frame;
}

ScoreResponse ServeClient::score(std::span<const layout::Clip> clips,
                                 std::uint32_t deadline_ms) {
  ScoreRequest request;
  request.trace_id = next_trace_id();
  request.sampled = request.trace_id != 0;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.clips.assign(clips.begin(), clips.end());
  // Client-side root span: the whole round trip, under the same id the
  // server's spans carry — merging both trace buffers yields one tree.
  const std::uint64_t begin_ns =
      request.sampled && trace::enabled() ? trace::timestamp_ns() : 0;
  const Frame frame =
      roundtrip(MsgType::kScoreRequest,
                encode_score_request(request, version_),
                MsgType::kScoreResponse);
  if (begin_ns != 0)
    trace::emit("client.request", begin_ns, trace::timestamp_ns(),
                request.trace_id);
  ScoreResponse response = decode_score_response(frame.body, "serve client");
  HSDL_CHECK_MSG(response.request_id == request.request_id,
                 "response id " << response.request_id
                                << " does not match request "
                                << request.request_id);
  HSDL_CHECK_MSG(response.hits.size() == clips.size(),
                 "response covers " << response.hits.size() << " of "
                                    << clips.size() << " clips");
  model_generation_ = response.model_generation;
  last_mode_ = response.mode;
  return response;
}

ScoreResponse ServeClient::score_with_retry(
    std::span<const layout::Clip> clips, const RetryPolicy& policy,
    std::uint32_t deadline_ms, RetryStats* stats) {
  HSDL_CHECK_MSG(policy.max_attempts > 0,
                 "retry policy: max_attempts must be positive");
  if (stats != nullptr) *stats = RetryStats{};
  Rng jitter(policy.jitter_seed);
  std::uint32_t backoff = policy.base_backoff_ms;
  for (std::size_t attempt = 1;; ++attempt) {
    bool dead_connection = false;
    std::uint32_t hint = 0;
    try {
      return score(clips, deadline_ms);
    } catch (const ServerError& e) {
      // Only kBusy is a "try again later"; every other rejection is
      // deterministic and would just fail again.
      if (e.code() != ErrorCode::kBusy || attempt >= policy.max_attempts)
        throw;
      hint = e.retry_after_ms();
    } catch (const CheckError&) {
      // Connection-level failure (EOF, reset, timeout). Score requests
      // are idempotent, so re-dialing and resending is safe.
      if (!policy.reconnect || attempt >= policy.max_attempts) throw;
      dead_connection = true;
    }
    double wait_ms = hint > 0 ? hint : backoff;
    wait_ms *= jitter.uniform(0.5, 1.5);
    if (stats != nullptr) {
      ++stats->retries;
      if (dead_connection) ++stats->reconnects;
      stats->total_backoff_ms += wait_ms;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(wait_ms));
    backoff = std::min(policy.max_backoff_ms, backoff * 2);
    if (dead_connection) connect_and_handshake();
  }
}

std::string ServeClient::stats_json() {
  HSDL_CHECK_MSG(version_ >= 3,
                 "stats request needs protocol v3; session negotiated v"
                     << version_);
  const Frame frame =
      roundtrip(MsgType::kStatsRequest, "", MsgType::kStatsResponse);
  return decode_stats_response(frame.body, "serve client").stats_json;
}

std::vector<double> ServeClient::score_probabilities(
    std::span<const layout::Clip> clips) {
  const ScoreResponse response = score(clips);
  std::vector<double> probs(clips.size(), 0.0);
  for (const RankedHit& h : response.hits) {
    HSDL_CHECK_MSG(h.index < probs.size(),
                   "hit index " << h.index << " out of range");
    probs[h.index] = h.probability;
  }
  return probs;
}

std::uint64_t ServeClient::swap_model(const std::string& checkpoint_path) {
  const Frame frame =
      roundtrip(MsgType::kSwapModel, encode_swap_model({checkpoint_path}),
                MsgType::kSwapAck);
  const SwapAck ack = decode_swap_ack(frame.body, "serve client");
  model_generation_ = ack.model_generation;
  return ack.model_generation;
}

void ServeClient::bye() {
  send_frame(sock_, encode_frame(MsgType::kBye, ""));
  sock_.close();
}

}  // namespace hsdl::serve

// Minimal blocking client for the hsdl serving protocol: one
// connection, synchronous request/response. This is the reference
// implementation of the client side of DESIGN.md §13 — the loopback
// tests, the latency bench and the serving example all drive the server
// through it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "layout/clip.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace hsdl::serve {

/// Thrown when the server answers a request with an Error frame; the
/// session stays usable for rejections that are per-request
/// (kTooManyClips, kQuotaExceeded, kSwapFailed).
class ServerError : public CheckError {
 public:
  ServerError(ErrorCode code, const std::string& message)
      : CheckError("server error [" + std::string(error_code_name(code)) +
                   "]: " + message),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

class ServeClient {
 public:
  /// Connects and performs the Hello handshake. `tenant` names the
  /// quota bucket this client draws from.
  ServeClient(const std::string& host, std::uint16_t port,
              const std::string& tenant);

  /// Model generation from the handshake / the latest response.
  std::uint64_t model_generation() const { return model_generation_; }

  /// Scores a batch of clips; returns the ranked response. Throws
  /// ServerError on a per-request rejection and CheckError when the
  /// connection is gone.
  ScoreResponse score(std::span<const layout::Clip> clips);

  /// Convenience view of score(): probabilities re-ordered back to
  /// request clip order (index-aligned with `clips`).
  std::vector<double> score_probabilities(
      std::span<const layout::Clip> clips);

  /// Asks the server to hot-swap to `checkpoint_path`; returns the new
  /// model generation.
  std::uint64_t swap_model(const std::string& checkpoint_path);

  /// Clean close (Bye frame). The destructor just drops the socket.
  void bye();

 private:
  Frame roundtrip(MsgType type, std::string_view body, MsgType expect);

  Socket sock_;
  std::string buf_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t model_generation_ = 0;
};

}  // namespace hsdl::serve

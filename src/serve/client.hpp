// Minimal blocking client for the hsdl serving protocol: one
// connection, synchronous request/response. This is the reference
// implementation of the client side of DESIGN.md §13 — the loopback
// tests, the latency bench and the serving example all drive the server
// through it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "layout/clip.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace hsdl::serve {

/// Thrown when the server answers a request with an Error frame; the
/// session stays usable for rejections that are per-request
/// (kTooManyClips, kQuotaExceeded, kSwapFailed, kBusy, kInternal).
class ServerError : public CheckError {
 public:
  ServerError(ErrorCode code, const std::string& message,
              std::uint32_t retry_after_ms = 0)
      : CheckError("server error [" + std::string(error_code_name(code)) +
                   "]: " + message),
        code_(code),
        retry_after_ms_(retry_after_ms) {}
  ErrorCode code() const { return code_; }
  /// Back-off hint from a kBusy rejection (0 = none given).
  std::uint32_t retry_after_ms() const { return retry_after_ms_; }

 private:
  ErrorCode code_;
  std::uint32_t retry_after_ms_;
};

/// What score_with_retry actually did to get its answer: how many
/// extra attempts ran, how many re-dials, and how long the client sat
/// in backoff. Feeds the bench's faulted-traffic column and the
/// client-side span — retries are invisible in server-side histograms
/// (each attempt looks like a fresh request there), so the client must
/// account for them.
struct RetryStats {
  std::uint64_t retries = 0;     ///< attempts beyond the first
  std::uint64_t reconnects = 0;  ///< re-dial + re-handshake cycles
  double total_backoff_ms = 0.0; ///< summed sleep between attempts
};

/// Retry schedule for score_with_retry: exponential backoff with
/// deterministic jitter, honoring the server's retry-after hint when
/// one came with the kBusy rejection.
struct RetryPolicy {
  std::size_t max_attempts = 5;
  /// First backoff (milliseconds); doubles per attempt...
  std::uint32_t base_backoff_ms = 10;
  /// ...capped here.
  std::uint32_t max_backoff_ms = 2000;
  /// Jitter draws (uniform in [0.5, 1.5) of the backoff) come from a
  /// seeded Rng so a chaos run replays the same schedule.
  std::uint64_t jitter_seed = 1;
  /// Also retry when the connection died (re-dial + handshake) — score
  /// requests are idempotent, so resending is safe.
  bool reconnect = true;
};

class ServeClient {
 public:
  /// Connects and performs the Hello handshake. `tenant` names the
  /// quota bucket this client draws from.
  ServeClient(const std::string& host, std::uint16_t port,
              const std::string& tenant);

  /// Model generation from the handshake / the latest response.
  std::uint64_t model_generation() const { return model_generation_; }

  /// Protocol version negotiated at Hello (the server may ack an older
  /// version than the client offered; both then speak it).
  std::uint32_t negotiated_version() const { return version_; }

  /// When on (and the session negotiated v3), every score request
  /// carries a sampled trace id — fnv1a(tenant) ^ request_id — and the
  /// client records a client.request span under the same id, so client
  /// and server spans stitch into one tree when their trace buffers are
  /// merged. No-op wire-wise on a v2 session.
  void set_tracing(bool on) { tracing_ = on; }
  bool tracing() const { return tracing_; }

  /// Trace id the next score() will carry (0 when tracing is off or
  /// the session is v2). Lets tests assert span identity.
  std::uint64_t next_trace_id() const;

  /// Serving path (fp32/int8) that scored the latest response.
  ServeMode last_mode() const { return last_mode_; }

  /// Socket send/recv timeouts for this client (see Socket::set_timeouts).
  void set_timeouts(std::uint32_t recv_ms, std::uint32_t send_ms) {
    sock_.set_timeouts(recv_ms, send_ms);
  }

  /// Scores a batch of clips; returns the ranked response. Throws
  /// ServerError on a per-request rejection and CheckError when the
  /// connection is gone. `deadline_ms` is the relative deadline budget
  /// carried on the wire (0 = none): the server rejects the request
  /// kBusy once the budget expires rather than scoring it late.
  ScoreResponse score(std::span<const layout::Clip> clips,
                      std::uint32_t deadline_ms = 0);

  /// score() with retries: on kBusy, backs off (the server's
  /// retry-after hint when given, else exponential with jitter) and
  /// resends; on a dead connection, re-dials and re-handshakes when the
  /// policy allows. Any other rejection propagates immediately. Throws
  /// the last error once attempts are exhausted. When `stats` is
  /// non-null it receives the cumulative retry/reconnect/backoff
  /// accounting for this call (zeroed first, filled even when the call
  /// ultimately throws).
  ScoreResponse score_with_retry(std::span<const layout::Clip> clips,
                                 const RetryPolicy& policy = {},
                                 std::uint32_t deadline_ms = 0,
                                 RetryStats* stats = nullptr);

  /// v3 live stats: asks the server for its JSON snapshot (see
  /// HotspotServer::stats_json). Throws CheckError on a v2 session —
  /// the message does not exist on that wire.
  std::string stats_json();

  /// Convenience view of score(): probabilities re-ordered back to
  /// request clip order (index-aligned with `clips`).
  std::vector<double> score_probabilities(
      std::span<const layout::Clip> clips);

  /// Asks the server to hot-swap to `checkpoint_path`; returns the new
  /// model generation.
  std::uint64_t swap_model(const std::string& checkpoint_path);

  /// Clean close (Bye frame). The destructor just drops the socket.
  void bye();

 private:
  void connect_and_handshake();
  Frame roundtrip(MsgType type, std::string_view body, MsgType expect);

  std::string host_;
  std::uint16_t port_;
  std::string tenant_;
  Socket sock_;
  std::string buf_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t model_generation_ = 0;
  ServeMode last_mode_ = ServeMode::kFp32;
  std::uint32_t version_ = kProtocolVersion;
  bool tracing_ = false;
};

}  // namespace hsdl::serve

// Multi-tenant serving front-end over the InferenceEngine
// (DESIGN.md §13).
//
// A HotspotServer listens on loopback, accepts client connections on a
// dedicated accept thread and runs each connection as a session on a
// fixed TaskPool of session workers (connections beyond the worker
// count queue until a worker frees up). A session speaks the framed
// protocol in serve/protocol.hpp: Hello/HelloAck handshake, then
// ScoreRequest -> ScoreResponse until Bye or EOF.
//
// Per request the session acquires the registry's current model, blocks
// on the tenant's in-flight clip quota (backpressure: a session that
// cannot get quota stops reading its socket, which pushes back on the
// client through TCP), scores through the model's engine and answers
// with ranked hits tagged with the scoring model's generation. Hot
// swaps install a new generation in the registry; in-flight requests
// hold their handle and complete against the old model.
//
// Shutdown drains gracefully: the listener closes (no new sessions),
// idle sessions are woken with a read-side shutdown and close cleanly,
// sessions mid-request finish scoring and flush their response (the
// write side is untouched), quota waiters abort with kShuttingDown.
//
// Reliability (DESIGN.md §14): requests carry an optional deadline —
// one that expires before scoring is rejected kBusy without occupying
// an engine slot, one that expires in the micro-batcher is dropped
// there. A global in-flight clip ceiling sheds excess load with kBusy +
// a retry-after hint; under sustained shedding the server degrades
// eligible (quantized) models to the int8 engine and recovers once the
// overload clears, reporting the serving mode in every response.
// Session socket timeouts reap stuck peers, freeing the worker and any
// tenant quota they held. Engine-side failures (allocation failure,
// non-finite score) answer kInternal and leave the session usable.
//
// Observability (DESIGN.md §15): sessions negotiate the protocol
// version at Hello (v2 clients keep their wire layout); a sampled v3
// request's trace id follows it through recv/decode/quota/score/rank/
// send and into the engine's micro-batcher, producing one span tree in
// the common/trace buffer. Every stage records a latency histogram
// when metrics are enabled, every completed or rejected score request
// lands in the always-on flight recorder, and stats_json() assembles a
// JSON snapshot of all of it — per tenant and global — without ever
// touching the engine hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/run_report.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace hsdl::serve {

struct ServeConfig {
  /// 0 binds an ephemeral loopback port; read it back with port().
  std::uint16_t port = 0;
  /// Session workers == max concurrent client sessions.
  std::size_t session_workers = 4;
  /// Hard cap per ScoreRequest; larger requests are rejected with
  /// kTooManyClips (the frame limit bounds this anyway).
  std::size_t max_clips_per_request = 65536;
  /// Per-tenant in-flight clip budget across all of the tenant's
  /// sessions. Requests wait for budget (backpressure) rather than
  /// fail; a single request larger than the whole budget is rejected
  /// with kQuotaExceeded.
  std::size_t tenant_quota_clips = 1u << 20;
  /// Optional JSONL stream: one record per served request (tenant,
  /// clips, model generation, latency). Empty disables.
  std::string telemetry_path;
  /// Session socket recv/send timeout (milliseconds; 0 = unbounded,
  /// sessions may idle forever). With a timeout, a stuck peer — half a
  /// frame then silence, or refusing to drain its response — is reaped:
  /// the session worker frees up and any quota the request held is
  /// released.
  std::uint32_t session_timeout_ms = 0;
  /// Load shedding: clips concurrently inside engines, across all
  /// tenants, before further requests are answered kBusy (0 = no
  /// ceiling). Distinct from the per-tenant quota, which *blocks*; the
  /// ceiling *rejects*, so the server stays responsive under overload.
  std::size_t busy_max_inflight_clips = 0;
  /// Back-off hint carried on kBusy responses (milliseconds).
  std::uint32_t retry_after_ms = 25;
  /// Graceful degradation: under sustained shedding, switch models
  /// that have an int8 quantized net to the degraded engine.
  bool degrade_to_int8 = true;
  /// Shedding must persist this long before degrading (0 = the first
  /// shed degrades immediately) ...
  std::uint32_t degrade_after_ms = 250;
  /// ... and this much shed-free time ends the overload (and restores
  /// fp32 when degraded).
  std::uint32_t recover_after_ms = 1000;
  /// Flight recorder depth: the last N score requests (per server, all
  /// tenants) retained for post-mortem dumps. Always on; ~64 bytes per
  /// slot.
  std::size_t flight_recorder_size = 256;
  /// Where dump_flight_recorder() writes (also triggered on graceful
  /// drain and on session-fatal errors when non-empty). Empty disables
  /// automatic dumps; the in-memory ring still records.
  std::string flight_dump_path;

  void validate() const;
};

struct ServerStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t clips_scored = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t swaps = 0;
  /// kBusy answers: load sheds plus expired deadlines.
  std::uint64_t busy_rejections = 0;
  /// Subset of busy_rejections caused by an expired deadline (already
  /// past on receipt, or dropped in the micro-batcher queue).
  std::uint64_t deadline_rejections = 0;
  /// kInternal answers (allocation failure, non-finite score); the
  /// session survived.
  std::uint64_t internal_errors = 0;
  /// Stuck sessions reaped by the socket timeout watchdog.
  std::uint64_t sessions_reaped = 0;
  std::uint64_t degrade_events = 0;  ///< fp32 -> int8 transitions
  std::uint64_t recover_events = 0;  ///< int8 -> fp32 transitions
  bool degraded = false;             ///< currently serving int8
};

class HotspotServer {
 public:
  /// The registry must outlive the server and have a model installed
  /// before the first score request arrives.
  HotspotServer(ModelRegistry& registry, const ServeConfig& config);
  ~HotspotServer();
  HotspotServer(const HotspotServer&) = delete;
  HotspotServer& operator=(const HotspotServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  const ServeConfig& config() const { return config_; }

  /// Graceful drain; idempotent, called by the destructor.
  void shutdown();

  ServerStats stats() const;

  /// One JSON document (schema hsdl-serve-stats-v1): uptime, the
  /// ServerStats counters, per-tenant request/clip/in-flight totals,
  /// the active engine's counters, flight-recorder occupancy and — when
  /// metrics are enabled — the full registry digest with interpolated
  /// p50/p90/p99 per histogram. Assembled from atomics and brief
  /// bookkeeping locks; never blocks scoring.
  std::string stats_json() const;

  /// The always-on last-N-requests ring (see flight_recorder.hpp).
  const FlightRecorder& flight_recorder() const { return flight_; }

  /// Dumps the flight recorder to config().flight_dump_path (JSONL).
  /// No-op without a configured path; never throws. `reason` labels the
  /// dump's header line ("signal", "drain", "session-fatal", ...).
  void dump_flight_recorder(const std::string& reason) const;

  /// In-flight clips currently charged to `tenant` (0 for an unknown
  /// tenant). The chaos suite asserts this returns to zero after a
  /// session dies abnormally mid-request.
  std::size_t tenant_inflight(const std::string& tenant) const;

 private:
  struct TenantBudget {
    std::size_t in_flight = 0;
    std::uint64_t requests = 0;  ///< score requests answered OK
    std::uint64_t clips = 0;     ///< clips in those requests
  };
  /// Per-session state threaded through the frame dispatch loop: the
  /// tenant named at Hello, the negotiated protocol version, and the
  /// tenant's metric instruments resolved once (the registry lookup
  /// takes a lock; the per-request path must not).
  struct SessionCtx {
    std::string tenant = "anonymous";
    std::uint32_t version = kProtocolVersion;
    metrics::Counter* tenant_requests = nullptr;
    metrics::Counter* tenant_clips = nullptr;
  };
  /// Overload tracker feeding graceful degradation (guarded by
  /// pressure_mu_). `overloaded` spans from the first shed of a streak
  /// until recover_after_ms passes without one.
  struct Pressure {
    std::chrono::steady_clock::time_point overload_since{};
    std::chrono::steady_clock::time_point last_shed{};
    bool overloaded = false;
    bool degraded = false;
  };
  /// Releases tenant quota exactly once on every exit path of
  /// handle_score.
  class QuotaGuard {
   public:
    QuotaGuard(HotspotServer& server, const std::string& tenant,
               std::size_t clips)
        : server_(server), tenant_(tenant), clips_(clips) {}
    ~QuotaGuard() { release(); }
    void release() {
      if (!active_) return;
      active_ = false;
      server_.quota_release(tenant_, clips_);
    }
    QuotaGuard(const QuotaGuard&) = delete;
    QuotaGuard& operator=(const QuotaGuard&) = delete;

   private:
    HotspotServer& server_;
    const std::string& tenant_;
    std::size_t clips_;
    bool active_ = true;
  };

  void accept_loop();
  void session(std::shared_ptr<Socket> sock);
  /// `arrival_ns` is the trace-clock instant the request frame started
  /// arriving (0 when tracing was off at receipt) — the begin timestamp
  /// of the serve.recv span.
  void handle_score(Socket& sock, SessionCtx& ctx, std::string_view body,
                    std::uint64_t arrival_ns);
  void handle_swap(Socket& sock, std::string_view body);
  void send_error(Socket& sock, ErrorCode code, const std::string& message,
                  std::uint32_t retry_after_ms = 0);
  /// kBusy + retry-after hint; `deadline` marks an expired-deadline
  /// rejection (vs a load shed) in the stats.
  void send_busy(Socket& sock, const std::string& message, bool deadline);

  /// Reserves global scoring capacity for `clips` against
  /// busy_max_inflight_clips. Returns false (and records the shed)
  /// when the ceiling would be exceeded; always true when no ceiling.
  bool begin_scoring(std::size_t clips);
  void end_scoring(std::size_t clips);
  void record_shed();
  /// Ends the overload streak (recovering fp32 if degraded) once
  /// recover_after_ms has passed without a shed.
  void update_pressure_after_success();
  bool degraded_mode() const;

  /// Blocks until the tenant has `clips` of budget or the server is
  /// stopping (returns false). Rejecting oversized requests is the
  /// caller's job (a request > tenant_quota_clips would deadlock here).
  bool quota_acquire(const std::string& tenant, std::size_t clips);
  void quota_release(const std::string& tenant, std::size_t clips);

  ModelRegistry& registry_;
  ServeConfig config_;
  Listener listener_;
  TaskPool workers_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  // Live sessions, so drain can wake sockets blocked in recv.
  std::mutex sessions_mu_;
  std::vector<std::weak_ptr<Socket>> sessions_;

  mutable std::mutex quota_mu_;
  std::condition_variable quota_cv_;
  std::map<std::string, TenantBudget> tenants_;

  // Load shedding + degradation state.
  std::atomic<std::size_t> scoring_inflight_{0};
  mutable std::mutex pressure_mu_;
  Pressure pressure_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  FlightRecorder flight_;
  std::chrono::steady_clock::time_point started_;

  telemetry::JsonlStream telemetry_;
};

}  // namespace hsdl::serve

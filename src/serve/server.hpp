// Multi-tenant serving front-end over the InferenceEngine
// (DESIGN.md §13).
//
// A HotspotServer listens on loopback, accepts client connections on a
// dedicated accept thread and runs each connection as a session on a
// fixed TaskPool of session workers (connections beyond the worker
// count queue until a worker frees up). A session speaks the framed
// protocol in serve/protocol.hpp: Hello/HelloAck handshake, then
// ScoreRequest -> ScoreResponse until Bye or EOF.
//
// Per request the session acquires the registry's current model, blocks
// on the tenant's in-flight clip quota (backpressure: a session that
// cannot get quota stops reading its socket, which pushes back on the
// client through TCP), scores through the model's engine and answers
// with ranked hits tagged with the scoring model's generation. Hot
// swaps install a new generation in the registry; in-flight requests
// hold their handle and complete against the old model.
//
// Shutdown drains gracefully: the listener closes (no new sessions),
// idle sessions are woken with a read-side shutdown and close cleanly,
// sessions mid-request finish scoring and flush their response (the
// write side is untouched), quota waiters abort with kShuttingDown.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/run_report.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace hsdl::serve {

struct ServeConfig {
  /// 0 binds an ephemeral loopback port; read it back with port().
  std::uint16_t port = 0;
  /// Session workers == max concurrent client sessions.
  std::size_t session_workers = 4;
  /// Hard cap per ScoreRequest; larger requests are rejected with
  /// kTooManyClips (the frame limit bounds this anyway).
  std::size_t max_clips_per_request = 65536;
  /// Per-tenant in-flight clip budget across all of the tenant's
  /// sessions. Requests wait for budget (backpressure) rather than
  /// fail; a single request larger than the whole budget is rejected
  /// with kQuotaExceeded.
  std::size_t tenant_quota_clips = 1u << 20;
  /// Optional JSONL stream: one record per served request (tenant,
  /// clips, model generation, latency). Empty disables.
  std::string telemetry_path;

  void validate() const;
};

struct ServerStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t clips_scored = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t swaps = 0;
};

class HotspotServer {
 public:
  /// The registry must outlive the server and have a model installed
  /// before the first score request arrives.
  HotspotServer(ModelRegistry& registry, const ServeConfig& config);
  ~HotspotServer();
  HotspotServer(const HotspotServer&) = delete;
  HotspotServer& operator=(const HotspotServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  const ServeConfig& config() const { return config_; }

  /// Graceful drain; idempotent, called by the destructor.
  void shutdown();

  ServerStats stats() const;

 private:
  struct TenantBudget {
    std::size_t in_flight = 0;
  };

  void accept_loop();
  void session(std::shared_ptr<Socket> sock);
  void handle_score(Socket& sock, const std::string& tenant,
                    std::string_view body);
  void handle_swap(Socket& sock, std::string_view body);
  void send_error(Socket& sock, ErrorCode code, const std::string& message);

  /// Blocks until the tenant has `clips` of budget or the server is
  /// stopping (returns false). Rejecting oversized requests is the
  /// caller's job (a request > tenant_quota_clips would deadlock here).
  bool quota_acquire(const std::string& tenant, std::size_t clips);
  void quota_release(const std::string& tenant, std::size_t clips);

  ModelRegistry& registry_;
  ServeConfig config_;
  Listener listener_;
  TaskPool workers_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  // Live sessions, so drain can wake sockets blocked in recv.
  std::mutex sessions_mu_;
  std::vector<std::weak_ptr<Socket>> sessions_;

  std::mutex quota_mu_;
  std::condition_variable quota_cv_;
  std::map<std::string, TenantBudget> tenants_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  telemetry::JsonlStream telemetry_;
};

}  // namespace hsdl::serve

#include "serve/protocol.hpp"

#include <algorithm>

#include "hotspot/metrics.hpp"

namespace hsdl::serve {
namespace {

/// Clip shape-count sanity cap: a 16 MiB frame cannot hold more rects
/// than this anyway, so anything larger is a damaged length field.
constexpr std::size_t kMaxShapes = kMaxFrameBytes / 32;
constexpr std::size_t kMaxTenantLen = 256;
constexpr std::size_t kMaxPathLen = 4096;
constexpr std::size_t kMaxMessageLen = 4096;

void write_rect(io::ByteWriter& w, const geom::Rect& r) {
  w.i64(r.lo.x);
  w.i64(r.lo.y);
  w.i64(r.hi.x);
  w.i64(r.hi.y);
}

geom::Rect read_rect(io::ByteReader& r) {
  geom::Rect out;
  out.lo.x = r.i64();
  out.lo.y = r.i64();
  out.hi.x = r.i64();
  out.hi.y = r.i64();
  return out;
}

void write_clip(io::ByteWriter& w, const layout::Clip& clip) {
  write_rect(w, clip.window);
  w.u32(static_cast<std::uint32_t>(clip.shapes.size()));
  for (const geom::Rect& s : clip.shapes) write_rect(w, s);
}

layout::Clip read_clip(io::ByteReader& r) {
  layout::Clip clip;
  clip.window = read_rect(r);
  const std::uint32_t n = r.u32();
  if (n > kMaxShapes) r.fail("clip shape count exceeds frame capacity");
  clip.shapes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) clip.shapes.push_back(read_rect(r));
  return clip;
}

io::ByteReader body_reader(std::string_view body, const std::string& context) {
  return io::ByteReader(body, context);
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame:
      return "bad-frame";
    case ErrorCode::kBadVersion:
      return "bad-version";
    case ErrorCode::kTooManyClips:
      return "too-many-clips";
    case ErrorCode::kQuotaExceeded:
      return "quota-exceeded";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
    case ErrorCode::kSwapFailed:
      return "swap-failed";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

const char* serve_mode_name(ServeMode mode) {
  switch (mode) {
    case ServeMode::kFp32:
      return "fp32";
    case ServeMode::kInt8:
      return "int8";
  }
  return "unknown";
}

std::string encode_frame(MsgType type, std::string_view body) {
  io::ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(type));
  payload.bytes(body.data(), body.size());
  const std::string& p = payload.buffer();
  HSDL_CHECK_MSG(p.size() <= kMaxFrameBytes,
                 "frame payload " << p.size() << " exceeds limit "
                                  << kMaxFrameBytes);
  io::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(p.size()));
  frame.bytes(p.data(), p.size());
  frame.u32(io::crc32(p));
  return frame.take();
}

Frame decode_frame(std::string_view buf, const std::string& context) {
  io::ByteReader r(buf, context);
  const std::uint32_t len = r.u32();
  if (len > kMaxFrameBytes) r.fail("frame length exceeds limit");
  if (len == 0) r.fail("empty frame payload");
  const std::string_view payload = r.bytes(len);
  const std::uint32_t declared = r.u32();
  r.expect_end();
  if (declared != io::crc32(payload))
    throw io::IoError("frame checksum mismatch", 4, context);
  io::ByteReader p(payload, context);
  const std::uint8_t type = p.u8();
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kStatsResponse))
    p.fail("unknown message type");
  return Frame{static_cast<MsgType>(type), payload.substr(1)};
}

std::string encode_hello(const Hello& m) {
  io::ByteWriter w;
  w.u32(m.version);
  w.str(m.tenant);
  return w.take();
}

Hello decode_hello(std::string_view body, const std::string& context) {
  io::ByteReader r = body_reader(body, context);
  Hello m;
  m.version = r.u32();
  m.tenant = r.str(kMaxTenantLen);
  r.expect_end();
  return m;
}

std::string encode_hello_ack(const HelloAck& m) {
  io::ByteWriter w;
  w.u32(m.version);
  w.u64(m.model_generation);
  return w.take();
}

HelloAck decode_hello_ack(std::string_view body, const std::string& context) {
  io::ByteReader r = body_reader(body, context);
  HelloAck m;
  m.version = r.u32();
  m.model_generation = r.u64();
  r.expect_end();
  return m;
}

std::string encode_score_request(const ScoreRequest& m,
                                 std::uint32_t version) {
  io::ByteWriter w;
  w.u64(m.request_id);
  w.u32(m.deadline_ms);
  if (version >= 3) {
    w.u64(m.trace_id);
    w.u8(m.sampled ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(m.clips.size()));
  for (const layout::Clip& c : m.clips) write_clip(w, c);
  return w.take();
}

ScoreRequest decode_score_request(std::string_view body,
                                  const std::string& context,
                                  std::uint32_t version) {
  io::ByteReader r = body_reader(body, context);
  ScoreRequest m;
  m.request_id = r.u64();
  m.deadline_ms = r.u32();
  if (version >= 3) {
    m.trace_id = r.u64();
    const std::uint8_t sampled = r.u8();
    if (sampled > 1) r.fail("trace sampled flag must be 0 or 1");
    m.sampled = sampled == 1;
  }
  const std::uint32_t n = r.u32();
  if (static_cast<std::size_t>(n) * 40 > kMaxFrameBytes)
    r.fail("clip count exceeds frame capacity");
  m.clips.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.clips.push_back(read_clip(r));
  r.expect_end();
  return m;
}

std::string encode_score_response(const ScoreResponse& m) {
  io::ByteWriter w;
  w.u64(m.request_id);
  w.u64(m.model_generation);
  w.u8(static_cast<std::uint8_t>(m.mode));
  w.u32(static_cast<std::uint32_t>(m.hits.size()));
  for (const RankedHit& h : m.hits) {
    w.u32(h.index);
    w.f64(h.probability);
    w.u8(h.flagged ? 1 : 0);
  }
  return w.take();
}

ScoreResponse decode_score_response(std::string_view body,
                                    const std::string& context) {
  io::ByteReader r = body_reader(body, context);
  ScoreResponse m;
  m.request_id = r.u64();
  m.model_generation = r.u64();
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(ServeMode::kInt8))
    r.fail("unknown serve mode");
  m.mode = static_cast<ServeMode>(mode);
  const std::uint32_t n = r.u32();
  if (static_cast<std::size_t>(n) * 13 > kMaxFrameBytes)
    r.fail("hit count exceeds frame capacity");
  m.hits.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RankedHit h;
    h.index = r.u32();
    h.probability = r.f64();
    const std::uint8_t flagged = r.u8();
    if (flagged > 1) r.fail("hit flag must be 0 or 1");
    h.flagged = flagged == 1;
    m.hits.push_back(h);
  }
  r.expect_end();
  return m;
}

std::string encode_swap_model(const SwapModel& m) {
  io::ByteWriter w;
  w.str(m.checkpoint_path);
  return w.take();
}

SwapModel decode_swap_model(std::string_view body,
                            const std::string& context) {
  io::ByteReader r = body_reader(body, context);
  SwapModel m;
  m.checkpoint_path = r.str(kMaxPathLen);
  r.expect_end();
  return m;
}

std::string encode_swap_ack(const SwapAck& m) {
  io::ByteWriter w;
  w.u64(m.model_generation);
  return w.take();
}

SwapAck decode_swap_ack(std::string_view body, const std::string& context) {
  io::ByteReader r = body_reader(body, context);
  SwapAck m;
  m.model_generation = r.u64();
  r.expect_end();
  return m;
}

std::string encode_error(const ErrorMsg& m) {
  io::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(m.code));
  w.u32(m.retry_after_ms);
  w.str(m.message);
  return w.take();
}

ErrorMsg decode_error(std::string_view body, const std::string& context) {
  io::ByteReader r = body_reader(body, context);
  ErrorMsg m;
  const std::uint8_t code = r.u8();
  if (code < static_cast<std::uint8_t>(ErrorCode::kBadFrame) ||
      code > static_cast<std::uint8_t>(ErrorCode::kInternal))
    r.fail("unknown error code");
  m.code = static_cast<ErrorCode>(code);
  m.retry_after_ms = r.u32();
  m.message = r.str(kMaxMessageLen);
  r.expect_end();
  return m;
}

std::string encode_stats_response(const StatsResponse& m) {
  io::ByteWriter w;
  w.str(m.stats_json);
  return w.take();
}

StatsResponse decode_stats_response(std::string_view body,
                                    const std::string& context) {
  io::ByteReader r = body_reader(body, context);
  StatsResponse m;
  // A stats document is bounded by the frame limit, not the short
  // string caps above: it carries every histogram of a long-lived
  // server.
  m.stats_json = r.str(kMaxFrameBytes);
  r.expect_end();
  return m;
}

std::vector<RankedHit> rank_hits(const std::vector<double>& probabilities,
                                 double threshold) {
  std::vector<RankedHit> hits;
  hits.reserve(probabilities.size());
  for (std::size_t i = 0; i < probabilities.size(); ++i)
    hits.push_back(RankedHit{static_cast<std::uint32_t>(i), probabilities[i],
                             hotspot::is_flagged(probabilities[i], threshold)});
  std::sort(hits.begin(), hits.end(),
            [](const RankedHit& a, const RankedHit& b) {
              if (a.probability != b.probability)
                return a.probability > b.probability;
              return a.index < b.index;
            });
  return hits;
}

}  // namespace hsdl::serve

// hsdl serving wire protocol (DESIGN.md §13).
//
// Length-prefixed binary frames over a byte stream, built on the
// common/io checksummed little-endian codecs:
//
//   u32 payload_len | payload bytes | u32 crc32(payload)
//
// The payload begins with a u8 message type; the rest is the message
// body. Every frame is independently verifiable: a corrupted length
// field fails the bounds/limit checks, any payload bit-flip fails the
// CRC, and a truncated frame fails the reader's bounds checks — all with
// a positioned IoError, never an accepted frame (the corruption suite
// sweeps every single-bit flip and every truncation length).
//
// Session flow: the client opens with Hello (protocol version, tenant
// id) and gets HelloAck (server version, active model generation). It
// then streams ScoreRequest frames — each carries a request id, an
// optional deadline budget, and a batch of clips — and receives one
// ScoreResponse per request: every clip's (index, probability,
// threshold-flagged) entry, ranked by probability descending (ties by
// index), tagged with the generation of the model that scored it and
// the serving mode (fp32 or the int8 degraded path) it was scored in.
// SwapModel hot-swaps the served checkpoint; Error reports a rejected
// request without closing the session (machine-readable code, optional
// retry-after hint for kBusy load shedding); Bye closes it cleanly.
//
// Version 2 (reliability, DESIGN.md §14) added ScoreRequest.deadline_ms,
// ScoreResponse.mode, ErrorMsg.retry_after_ms and the kBusy/kInternal
// error codes.
//
// Version 3 (observability, DESIGN.md §15) adds per-request trace
// context — ScoreRequest carries a 64-bit trace id plus a sampling flag
// between deadline_ms and the clip array — and the Stats message pair:
// StatsRequest (empty body) answered by StatsResponse carrying a JSON
// snapshot of the server's counters, stage histograms and per-tenant
// totals. v3 is negotiated per session: the server acks a v2 Hello with
// version 2 and the session then speaks the v2 ScoreRequest layout, so
// old clients keep working unchanged. Message encoders/decoders whose
// layout changed take the negotiated version explicitly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "layout/clip.hpp"

namespace hsdl::serve {

inline constexpr std::uint32_t kProtocolVersion = 3;
/// Oldest protocol version the server still speaks; a v2 Hello
/// negotiates a v2 session (no trace context on the wire).
inline constexpr std::uint32_t kMinProtocolVersion = 2;
/// Upper bound on a frame payload; a length field damaged upward is
/// rejected before any allocation.
inline constexpr std::size_t kMaxFrameBytes = 1u << 24;  // 16 MiB
/// u32 length prefix + u32 CRC trailer.
inline constexpr std::size_t kFrameOverhead = 8;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kScoreRequest = 3,
  kScoreResponse = 4,
  kSwapModel = 5,
  kSwapAck = 6,
  kError = 7,
  kBye = 8,
  kStatsRequest = 9,   ///< v3: live stats snapshot (empty body)
  kStatsResponse = 10,  ///< v3: JSON snapshot (see HotspotServer::stats_json)
};

enum class ErrorCode : std::uint8_t {
  kBadFrame = 1,       ///< malformed/corrupt frame (session closes)
  kBadVersion = 2,     ///< protocol version mismatch
  kTooManyClips = 3,   ///< request exceeds max_clips_per_request
  kQuotaExceeded = 4,  ///< request alone exceeds the tenant quota
  kShuttingDown = 5,   ///< server draining; no new requests
  kSwapFailed = 6,     ///< checkpoint load/verify failed
  kBusy = 7,           ///< load shed / deadline expired; retry after the
                       ///< hint in ErrorMsg::retry_after_ms
  kInternal = 8,       ///< scoring failed server-side (allocation failure,
                       ///< non-finite score); the session stays usable
};
const char* error_code_name(ErrorCode code);

/// Which serving path scored a request: fp32 is the default; int8 is
/// the quantized degraded path the server switches eligible tenants to
/// under sustained overload (DESIGN.md §14).
enum class ServeMode : std::uint8_t { kFp32 = 0, kInt8 = 1 };
const char* serve_mode_name(ServeMode mode);

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string tenant;
};

struct HelloAck {
  std::uint32_t version = kProtocolVersion;
  std::uint64_t model_generation = 0;
};

struct ScoreRequest {
  std::uint64_t request_id = 0;
  /// Deadline budget in milliseconds, measured from server receipt
  /// (clocks are not shared, so the wire carries a relative budget).
  /// 0 = no deadline. An expired request is rejected with kBusy before
  /// it occupies an engine slot; a request whose deadline passes while
  /// queued in the micro-batcher is dropped there.
  std::uint32_t deadline_ms = 0;
  /// v3 trace context: a nonzero id + sampled=true asks the server to
  /// record this request's stage spans under the id (common/trace),
  /// stitching one span tree across the session and engine threads.
  /// Absent on the v2 wire (both fields decode to their defaults).
  std::uint64_t trace_id = 0;
  bool sampled = false;
  std::vector<layout::Clip> clips;
};

struct RankedHit {
  std::uint32_t index = 0;  ///< position in the request's clip array
  double probability = 0.0;
  bool flagged = false;  ///< probability vs the model's decision threshold
};

struct ScoreResponse {
  std::uint64_t request_id = 0;
  /// Generation of the model that scored this request; constant across
  /// one request even if a hot-swap landed mid-flight.
  std::uint64_t model_generation = 0;
  /// One entry per request clip, ranked by probability descending
  /// (ties broken by ascending index).
  std::vector<RankedHit> hits;
  /// Serving path that scored this request (fp32, or int8 when the
  /// server degraded the tenant under overload).
  ServeMode mode = ServeMode::kFp32;
};

struct SwapModel {
  std::string checkpoint_path;
};

struct SwapAck {
  std::uint64_t model_generation = 0;
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kBadFrame;
  std::string message;
  /// For kBusy: how long the client should back off before retrying,
  /// in milliseconds. 0 = no hint.
  std::uint32_t retry_after_ms = 0;
};

/// v3 live stats snapshot: the body is one compact JSON document
/// (schema hsdl-serve-stats-v1, strict-parseable by common/json).
/// Assembled off the hot path — building it reads counters/atomics and
/// never blocks a score request.
struct StatsResponse {
  std::string stats_json;
};

/// A decoded frame: the message type plus its body bytes (view into the
/// buffer handed to decode_frame).
struct Frame {
  MsgType type;
  std::string_view body;
};

/// Encodes `payload_type` + `body` into a complete frame.
std::string encode_frame(MsgType type, std::string_view body);

/// Validates and decodes one complete frame held in `buf` (exactly one
/// frame, no trailing bytes). Throws io::IoError with the failing byte
/// offset on any damage.
Frame decode_frame(std::string_view buf, const std::string& context);

// Message encoders: body bytes only (pass to encode_frame). Messages
// whose layout differs across protocol versions take the negotiated
// session version.
std::string encode_hello(const Hello& m);
std::string encode_hello_ack(const HelloAck& m);
std::string encode_score_request(const ScoreRequest& m,
                                 std::uint32_t version = kProtocolVersion);
std::string encode_score_response(const ScoreResponse& m);
std::string encode_swap_model(const SwapModel& m);
std::string encode_swap_ack(const SwapAck& m);
std::string encode_error(const ErrorMsg& m);
std::string encode_stats_response(const StatsResponse& m);

// Message decoders over a frame body. Throw io::IoError on damage.
Hello decode_hello(std::string_view body, const std::string& context);
HelloAck decode_hello_ack(std::string_view body, const std::string& context);
ScoreRequest decode_score_request(std::string_view body,
                                  const std::string& context,
                                  std::uint32_t version = kProtocolVersion);
ScoreResponse decode_score_response(std::string_view body,
                                    const std::string& context);
SwapModel decode_swap_model(std::string_view body, const std::string& context);
SwapAck decode_swap_ack(std::string_view body, const std::string& context);
ErrorMsg decode_error(std::string_view body, const std::string& context);
StatsResponse decode_stats_response(std::string_view body,
                                    const std::string& context);

/// Ranks (index, probability, flagged) entries for a scored request:
/// probability descending, ties by ascending index. `threshold` is the
/// serving model's decision threshold.
std::vector<RankedHit> rank_hits(const std::vector<double>& probabilities,
                                 double threshold);

}  // namespace hsdl::serve

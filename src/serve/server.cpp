#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"

namespace hsdl::serve {

void ServeConfig::validate() const {
  HSDL_CHECK_MSG(session_workers > 0,
                 "serve config: session_workers must be positive");
  HSDL_CHECK_MSG(max_clips_per_request > 0,
                 "serve config: max_clips_per_request must be positive");
  HSDL_CHECK_MSG(tenant_quota_clips >= max_clips_per_request,
                 "serve config: tenant_quota_clips ("
                     << tenant_quota_clips
                     << ") must admit a maximal request ("
                     << max_clips_per_request << ")");
}

HotspotServer::HotspotServer(ModelRegistry& registry,
                             const ServeConfig& config)
    : registry_(registry),
      config_(config),
      listener_((config.validate(), config.port)),
      workers_(config.session_workers),
      telemetry_(config.telemetry_path) {
  acceptor_ = std::thread([this] { accept_loop(); });
  HSDL_LOG(kInfo) << "hsdl_serve listening on 127.0.0.1:" << port() << " ("
                  << config_.session_workers << " session workers)";
}

HotspotServer::~HotspotServer() { shutdown(); }

void HotspotServer::shutdown() {
  if (stopping_.exchange(true)) return;
  // 1. No new sessions: closing the listener unblocks accept().
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  // 2. Abort quota waiters; their sessions answer kShuttingDown.
  quota_cv_.notify_all();
  // 3. Wake idle sessions blocked in recv with a read-side shutdown.
  //    Sessions mid-request keep their write side and flush the
  //    response before noticing the drain.
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (const std::weak_ptr<Socket>& weak : sessions_)
      if (std::shared_ptr<Socket> s = weak.lock()) s->shutdown_read();
  }
  // 4. Run every queued/active session to completion.
  workers_.shutdown(true);
  HSDL_LOG(kInfo) << "hsdl_serve drained and stopped";
}

ServerStats HotspotServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void HotspotServer::accept_loop() {
  for (;;) {
    Socket sock = listener_.accept();
    if (!sock.valid()) return;  // listener closed: shutting down
    if (stopping_.load(std::memory_order_relaxed)) return;
    auto shared = std::make_shared<Socket>(std::move(sock));
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      // Compact dead entries so a long-lived server does not grow the
      // session list without bound.
      std::erase_if(sessions_,
                    [](const std::weak_ptr<Socket>& w) { return w.expired(); });
      sessions_.push_back(shared);
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.sessions_accepted;
    }
    workers_.submit([this, shared] { session(shared); });
  }
}

void HotspotServer::send_error(Socket& sock, ErrorCode code,
                               const std::string& message) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.errors_sent;
  }
  try {
    send_frame(sock,
               encode_frame(MsgType::kError,
                            encode_error(ErrorMsg{code, message})));
  } catch (const CheckError&) {
    // Peer already gone; the session loop will notice on its next read.
  }
}

void HotspotServer::session(std::shared_ptr<Socket> sock) {
  std::string tenant = "anonymous";
  std::string buf;
  const std::string context = "serve session";
  try {
    while (recv_frame(*sock, buf, context)) {
      Frame frame;
      try {
        frame = decode_frame(buf, context);
      } catch (const io::IoError& e) {
        // Corrupt frame: report the position, then close — after a
        // framing error the byte stream can no longer be trusted.
        send_error(*sock, ErrorCode::kBadFrame,
                   std::string("bad frame at byte ") +
                       std::to_string(e.offset()) + ": " + e.what());
        return;
      }
      switch (frame.type) {
        case MsgType::kHello: {
          const Hello hello = decode_hello(frame.body, context);
          if (hello.version != kProtocolVersion) {
            send_error(*sock, ErrorCode::kBadVersion,
                       "unsupported protocol version " +
                           std::to_string(hello.version));
            return;
          }
          if (!hello.tenant.empty()) tenant = hello.tenant;
          send_frame(*sock,
                     encode_frame(MsgType::kHelloAck,
                                  encode_hello_ack(HelloAck{
                                      kProtocolVersion,
                                      registry_.generation()})));
          break;
        }
        case MsgType::kScoreRequest:
          handle_score(*sock, tenant, frame.body);
          break;
        case MsgType::kSwapModel:
          handle_swap(*sock, frame.body);
          break;
        case MsgType::kBye:
          return;
        default:
          send_error(*sock, ErrorCode::kBadFrame,
                     "unexpected message type");
          return;
      }
    }
  } catch (const CheckError& e) {
    // Mid-frame EOF, send failure, or malformed message body: the
    // session dies, the server lives.
    HSDL_LOG(kWarn) << "session (" << tenant << ") closed: " << e.what();
  }
}

void HotspotServer::handle_score(Socket& sock, const std::string& tenant,
                                 std::string_view body) {
  WallTimer timer;
  const ScoreRequest request = decode_score_request(body, "score request");
  const std::size_t n = request.clips.size();
  if (n > config_.max_clips_per_request) {
    send_error(sock, ErrorCode::kTooManyClips,
               "request of " + std::to_string(n) + " clips exceeds limit " +
                   std::to_string(config_.max_clips_per_request));
    return;
  }
  if (n > config_.tenant_quota_clips) {
    send_error(sock, ErrorCode::kQuotaExceeded,
               "request of " + std::to_string(n) +
                   " clips exceeds the tenant budget of " +
                   std::to_string(config_.tenant_quota_clips));
    return;
  }
  if (!quota_acquire(tenant, n)) {
    send_error(sock, ErrorCode::kShuttingDown, "server is draining");
    return;
  }
  ScoreResponse response;
  try {
    // Acquire the model once per request: a hot-swap mid-request does
    // not retarget us, and the handle keeps the old engine alive until
    // scoring finishes.
    const std::shared_ptr<ServingModel> model = registry_.acquire();
    response.request_id = request.request_id;
    response.model_generation = model->generation();
    const std::vector<double> probs = model->engine().score(request.clips);
    response.hits =
        rank_hits(probs, model->detector().decision_threshold());
    quota_release(tenant, n);
  } catch (...) {
    quota_release(tenant, n);
    throw;
  }
  send_frame(sock, encode_frame(MsgType::kScoreResponse,
                                encode_score_response(response)));
  const double seconds = timer.seconds();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.requests_served;
    stats_.clips_scored += n;
  }
  if (metrics::enabled()) {
    static metrics::Counter& requests = metrics::counter("serve.requests");
    static metrics::Counter& clips = metrics::counter("serve.clips");
    static metrics::Histogram& latency = metrics::histogram(
        "serve.request_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
    requests.increment();
    clips.add(n);
    latency.record(seconds);
  }
  if (telemetry_.enabled()) {
    json::Value rec = json::Value::object();
    rec.set("event", "serve.request");
    rec.set("tenant", tenant);
    rec.set("clips", n);
    rec.set("generation", response.model_generation);
    rec.set("seconds", seconds);
    telemetry_.emit(rec);
  }
}

void HotspotServer::handle_swap(Socket& sock, std::string_view body) {
  const SwapModel swap = decode_swap_model(body, "swap request");
  try {
    const std::uint64_t generation =
        registry_.swap_from_checkpoint(swap.checkpoint_path);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.swaps;
    }
    send_frame(sock, encode_frame(MsgType::kSwapAck,
                                  encode_swap_ack(SwapAck{generation})));
  } catch (const CheckError& e) {
    send_error(sock, ErrorCode::kSwapFailed,
               std::string("swap rejected: ") + e.what());
  }
}

bool HotspotServer::quota_acquire(const std::string& tenant,
                                  std::size_t clips) {
  std::unique_lock<std::mutex> lk(quota_mu_);
  TenantBudget& budget = tenants_[tenant];
  quota_cv_.wait(lk, [&] {
    return stopping_.load(std::memory_order_relaxed) ||
           budget.in_flight + clips <= config_.tenant_quota_clips;
  });
  if (stopping_.load(std::memory_order_relaxed)) return false;
  budget.in_flight += clips;
  if (metrics::enabled()) {
    static metrics::Gauge& inflight = metrics::gauge("serve.inflight_clips");
    inflight.set(static_cast<double>(budget.in_flight));
  }
  return true;
}

void HotspotServer::quota_release(const std::string& tenant,
                                  std::size_t clips) {
  {
    std::lock_guard<std::mutex> lk(quota_mu_);
    TenantBudget& budget = tenants_[tenant];
    budget.in_flight -= std::min(budget.in_flight, clips);
  }
  quota_cv_.notify_all();
}

}  // namespace hsdl::serve

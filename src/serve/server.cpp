#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"

namespace hsdl::serve {

void ServeConfig::validate() const {
  HSDL_CHECK_MSG(session_workers > 0,
                 "serve config: session_workers must be positive");
  HSDL_CHECK_MSG(max_clips_per_request > 0,
                 "serve config: max_clips_per_request must be positive");
  HSDL_CHECK_MSG(tenant_quota_clips >= max_clips_per_request,
                 "serve config: tenant_quota_clips ("
                     << tenant_quota_clips
                     << ") must admit a maximal request ("
                     << max_clips_per_request << ")");
  HSDL_CHECK_MSG(busy_max_inflight_clips == 0 ||
                     busy_max_inflight_clips >= max_clips_per_request,
                 "serve config: busy_max_inflight_clips ("
                     << busy_max_inflight_clips
                     << ") must admit a maximal request ("
                     << max_clips_per_request
                     << ") or every such request sheds forever");
}

HotspotServer::HotspotServer(ModelRegistry& registry,
                             const ServeConfig& config)
    : registry_(registry),
      config_(config),
      listener_((config.validate(), config.port)),
      workers_(config.session_workers),
      telemetry_(config.telemetry_path) {
  acceptor_ = std::thread([this] { accept_loop(); });
  HSDL_LOG(kInfo) << "hsdl_serve listening on 127.0.0.1:" << port() << " ("
                  << config_.session_workers << " session workers)";
}

HotspotServer::~HotspotServer() { shutdown(); }

void HotspotServer::shutdown() {
  if (stopping_.exchange(true)) return;
  // 1. No new sessions: closing the listener unblocks accept().
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  // 2. Abort quota waiters; their sessions answer kShuttingDown.
  quota_cv_.notify_all();
  // 3. Wake idle sessions blocked in recv with a read-side shutdown.
  //    Sessions mid-request keep their write side and flush the
  //    response before noticing the drain.
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (const std::weak_ptr<Socket>& weak : sessions_)
      if (std::shared_ptr<Socket> s = weak.lock()) s->shutdown_read();
  }
  // 4. Run every queued/active session to completion.
  workers_.shutdown(true);
  HSDL_LOG(kInfo) << "hsdl_serve drained and stopped";
}

ServerStats HotspotServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void HotspotServer::accept_loop() {
  for (;;) {
    Socket sock = listener_.accept();
    if (!sock.valid()) return;  // listener closed: shutting down
    if (stopping_.load(std::memory_order_relaxed)) return;
    auto shared = std::make_shared<Socket>(std::move(sock));
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      // Compact dead entries so a long-lived server does not grow the
      // session list without bound.
      std::erase_if(sessions_,
                    [](const std::weak_ptr<Socket>& w) { return w.expired(); });
      sessions_.push_back(shared);
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.sessions_accepted;
    }
    workers_.submit([this, shared] { session(shared); });
  }
}

void HotspotServer::send_error(Socket& sock, ErrorCode code,
                               const std::string& message,
                               std::uint32_t retry_after_ms) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.errors_sent;
  }
  try {
    send_frame(sock, encode_frame(MsgType::kError,
                                  encode_error(ErrorMsg{code, message,
                                                        retry_after_ms})));
  } catch (const CheckError&) {
    // Peer already gone; the session loop will notice on its next read.
  }
}

void HotspotServer::send_busy(Socket& sock, const std::string& message,
                              bool deadline) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.busy_rejections;
    if (deadline) ++stats_.deadline_rejections;
  }
  send_error(sock, ErrorCode::kBusy, message, config_.retry_after_ms);
}

bool HotspotServer::begin_scoring(std::size_t clips) {
  if (config_.busy_max_inflight_clips == 0) return true;
  // Atomic reservation: racing requests cannot jointly exceed the
  // ceiling by both passing a check-then-add.
  const std::size_t prior =
      scoring_inflight_.fetch_add(clips, std::memory_order_acq_rel);
  if (prior + clips <= config_.busy_max_inflight_clips) return true;
  scoring_inflight_.fetch_sub(clips, std::memory_order_acq_rel);
  record_shed();
  return false;
}

void HotspotServer::end_scoring(std::size_t clips) {
  if (config_.busy_max_inflight_clips == 0) return;
  scoring_inflight_.fetch_sub(clips, std::memory_order_acq_rel);
}

void HotspotServer::record_shed() {
  const auto now = std::chrono::steady_clock::now();
  bool degraded_now = false;
  {
    std::lock_guard<std::mutex> lk(pressure_mu_);
    if (!pressure_.overloaded) {
      pressure_.overloaded = true;
      pressure_.overload_since = now;
    }
    pressure_.last_shed = now;
    if (config_.degrade_to_int8 && !pressure_.degraded &&
        now - pressure_.overload_since >=
            std::chrono::milliseconds(config_.degrade_after_ms)) {
      pressure_.degraded = true;
      degraded_now = true;
    }
  }
  if (degraded_now) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.degrade_events;
      stats_.degraded = true;
    }
    HSDL_LOG(kWarn) << "serve: sustained overload, degrading eligible "
                       "tenants to the int8 path";
  }
}

void HotspotServer::update_pressure_after_success() {
  bool recovered = false;
  {
    std::lock_guard<std::mutex> lk(pressure_mu_);
    if (!pressure_.overloaded) return;
    const auto now = std::chrono::steady_clock::now();
    if (now - pressure_.last_shed <
        std::chrono::milliseconds(config_.recover_after_ms))
      return;
    pressure_.overloaded = false;
    if (pressure_.degraded) {
      pressure_.degraded = false;
      recovered = true;
    }
  }
  if (recovered) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.recover_events;
      stats_.degraded = false;
    }
    HSDL_LOG(kInfo) << "serve: overload cleared, restoring fp32 serving";
  }
}

bool HotspotServer::degraded_mode() const {
  std::lock_guard<std::mutex> lk(pressure_mu_);
  return pressure_.degraded;
}

std::size_t HotspotServer::tenant_inflight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(quota_mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.in_flight;
}

void HotspotServer::session(std::shared_ptr<Socket> sock) {
  std::string tenant = "anonymous";
  std::string buf;
  const std::string context = "serve session";
  sock->set_fault_site("serve.net");
  if (config_.session_timeout_ms > 0)
    sock->set_timeouts(config_.session_timeout_ms, config_.session_timeout_ms);
  try {
    while (recv_frame(*sock, buf, context)) {
      Frame frame;
      try {
        frame = decode_frame(buf, context);
      } catch (const io::IoError& e) {
        // Corrupt frame: report the position, then close — after a
        // framing error the byte stream can no longer be trusted.
        send_error(*sock, ErrorCode::kBadFrame,
                   std::string("bad frame at byte ") +
                       std::to_string(e.offset()) + ": " + e.what());
        return;
      }
      switch (frame.type) {
        case MsgType::kHello: {
          const Hello hello = decode_hello(frame.body, context);
          if (hello.version != kProtocolVersion) {
            send_error(*sock, ErrorCode::kBadVersion,
                       "unsupported protocol version " +
                           std::to_string(hello.version));
            return;
          }
          if (!hello.tenant.empty()) tenant = hello.tenant;
          send_frame(*sock,
                     encode_frame(MsgType::kHelloAck,
                                  encode_hello_ack(HelloAck{
                                      kProtocolVersion,
                                      registry_.generation()})));
          break;
        }
        case MsgType::kScoreRequest:
          handle_score(*sock, tenant, frame.body);
          break;
        case MsgType::kSwapModel:
          handle_swap(*sock, frame.body);
          break;
        case MsgType::kBye:
          return;
        default:
          send_error(*sock, ErrorCode::kBadFrame,
                     "unexpected message type");
          return;
      }
    }
  } catch (const NetTimeout& e) {
    // Watchdog: the peer went silent mid-frame or refused to drain its
    // response past session_timeout_ms. Reap the session — the worker
    // frees up; any quota was already released by handle_score's guard.
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.sessions_reaped;
    }
    HSDL_LOG(kWarn) << "session (" << tenant << ") reaped: " << e.what();
  } catch (const CheckError& e) {
    // Mid-frame EOF, send failure, or malformed message body: the
    // session dies, the server lives.
    HSDL_LOG(kWarn) << "session (" << tenant << ") closed: " << e.what();
  } catch (const std::exception& e) {
    // TaskPool tasks must not throw — anything escaping here would take
    // the process down. Contain it: the session dies, the server lives.
    HSDL_LOG(kError) << "session (" << tenant << ") failed: " << e.what();
  }
}

void HotspotServer::handle_score(Socket& sock, const std::string& tenant,
                                 std::string_view body) {
  WallTimer timer;
  const ScoreRequest request = decode_score_request(body, "score request");
  const std::size_t n = request.clips.size();
  if (n > config_.max_clips_per_request) {
    send_error(sock, ErrorCode::kTooManyClips,
               "request of " + std::to_string(n) + " clips exceeds limit " +
                   std::to_string(config_.max_clips_per_request));
    return;
  }
  if (n > config_.tenant_quota_clips) {
    send_error(sock, ErrorCode::kQuotaExceeded,
               "request of " + std::to_string(n) +
                   " clips exceeds the tenant budget of " +
                   std::to_string(config_.tenant_quota_clips));
    return;
  }
  // Absolute deadline from the relative wire budget, anchored to
  // receipt (client and server clocks are not shared).
  const auto received = std::chrono::steady_clock::now();
  auto deadline = hotspot::InferenceEngine::kNoDeadline;
  if (request.deadline_ms > 0)
    deadline = received + std::chrono::milliseconds(request.deadline_ms);
  // Chaos site: a slow handler (kDelay sleeps here — after the deadline
  // was anchored, so tests can force an expiry deterministically).
  if (fault::armed()) fault::probe("serve.handler");
  if (deadline != hotspot::InferenceEngine::kNoDeadline &&
      std::chrono::steady_clock::now() >= deadline) {
    send_busy(sock, "deadline expired before scoring", true);
    return;
  }
  if (!quota_acquire(tenant, n)) {
    send_error(sock, ErrorCode::kShuttingDown, "server is draining");
    return;
  }
  QuotaGuard quota(*this, tenant, n);
  if (!begin_scoring(n)) {
    send_busy(sock, "server at capacity (" +
                        std::to_string(config_.busy_max_inflight_clips) +
                        " in-flight clips)",
              false);
    return;
  }
  // Acquire the model once per request: a hot-swap mid-request does
  // not retarget us, and the handle keeps the old engine alive until
  // scoring finishes.
  const std::shared_ptr<ServingModel> model = registry_.acquire();
  ScoreResponse response;
  response.request_id = request.request_id;
  response.model_generation = model->generation();
  const bool degraded =
      degraded_mode() && model->degraded_engine() != nullptr;
  response.mode = degraded ? ServeMode::kInt8 : ServeMode::kFp32;
  std::vector<double> probs;
  try {
    hotspot::InferenceEngine& engine =
        degraded ? *model->degraded_engine() : model->engine();
    probs = engine.score(request.clips, deadline);
  } catch (const hotspot::DeadlineExceeded& e) {
    end_scoring(n);
    send_busy(sock, e.what(), true);
    return;
  } catch (const std::bad_alloc&) {
    end_scoring(n);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.internal_errors;
    }
    send_error(sock, ErrorCode::kInternal, "allocation failure while scoring");
    return;
  }
  end_scoring(n);
  // A corrupted (non-finite) score must never reach a client as a
  // ranked probability: answer kInternal, keep the session usable.
  for (const double p : probs) {
    if (std::isfinite(p)) continue;
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.internal_errors;
    }
    send_error(sock, ErrorCode::kInternal, "non-finite score");
    return;
  }
  response.hits = rank_hits(probs, model->detector().decision_threshold());
  update_pressure_after_success();
  quota.release();
  send_frame(sock, encode_frame(MsgType::kScoreResponse,
                                encode_score_response(response)));
  const double seconds = timer.seconds();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.requests_served;
    stats_.clips_scored += n;
  }
  if (metrics::enabled()) {
    static metrics::Counter& requests = metrics::counter("serve.requests");
    static metrics::Counter& clips = metrics::counter("serve.clips");
    static metrics::Histogram& latency = metrics::histogram(
        "serve.request_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
    requests.increment();
    clips.add(n);
    latency.record(seconds);
  }
  if (telemetry_.enabled()) {
    json::Value rec = json::Value::object();
    rec.set("event", "serve.request");
    rec.set("tenant", tenant);
    rec.set("clips", n);
    rec.set("generation", response.model_generation);
    rec.set("mode", serve_mode_name(response.mode));
    rec.set("seconds", seconds);
    telemetry_.emit(rec);
  }
}

void HotspotServer::handle_swap(Socket& sock, std::string_view body) {
  const SwapModel swap = decode_swap_model(body, "swap request");
  try {
    const std::uint64_t generation =
        registry_.swap_from_checkpoint(swap.checkpoint_path);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.swaps;
    }
    send_frame(sock, encode_frame(MsgType::kSwapAck,
                                  encode_swap_ack(SwapAck{generation})));
  } catch (const CheckError& e) {
    send_error(sock, ErrorCode::kSwapFailed,
               std::string("swap rejected: ") + e.what());
  }
}

bool HotspotServer::quota_acquire(const std::string& tenant,
                                  std::size_t clips) {
  std::unique_lock<std::mutex> lk(quota_mu_);
  TenantBudget& budget = tenants_[tenant];
  quota_cv_.wait(lk, [&] {
    return stopping_.load(std::memory_order_relaxed) ||
           budget.in_flight + clips <= config_.tenant_quota_clips;
  });
  if (stopping_.load(std::memory_order_relaxed)) return false;
  budget.in_flight += clips;
  if (metrics::enabled()) {
    static metrics::Gauge& inflight = metrics::gauge("serve.inflight_clips");
    inflight.set(static_cast<double>(budget.in_flight));
  }
  return true;
}

void HotspotServer::quota_release(const std::string& tenant,
                                  std::size_t clips) {
  {
    std::lock_guard<std::mutex> lk(quota_mu_);
    TenantBudget& budget = tenants_[tenant];
    budget.in_flight -= std::min(budget.in_flight, clips);
  }
  quota_cv_.notify_all();
}

}  // namespace hsdl::serve

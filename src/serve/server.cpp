#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace hsdl::serve {

void ServeConfig::validate() const {
  HSDL_CHECK_MSG(session_workers > 0,
                 "serve config: session_workers must be positive");
  HSDL_CHECK_MSG(max_clips_per_request > 0,
                 "serve config: max_clips_per_request must be positive");
  HSDL_CHECK_MSG(tenant_quota_clips >= max_clips_per_request,
                 "serve config: tenant_quota_clips ("
                     << tenant_quota_clips
                     << ") must admit a maximal request ("
                     << max_clips_per_request << ")");
  HSDL_CHECK_MSG(busy_max_inflight_clips == 0 ||
                     busy_max_inflight_clips >= max_clips_per_request,
                 "serve config: busy_max_inflight_clips ("
                     << busy_max_inflight_clips
                     << ") must admit a maximal request ("
                     << max_clips_per_request
                     << ") or every such request sheds forever");
}

HotspotServer::HotspotServer(ModelRegistry& registry,
                             const ServeConfig& config)
    : registry_(registry),
      config_(config),
      listener_((config.validate(), config.port)),
      workers_(config.session_workers),
      flight_(config.flight_recorder_size),
      started_(std::chrono::steady_clock::now()),
      telemetry_(config.telemetry_path) {
  acceptor_ = std::thread([this] { accept_loop(); });
  HSDL_LOG(kInfo) << "hsdl_serve listening on 127.0.0.1:" << port() << " ("
                  << config_.session_workers << " session workers)";
}

HotspotServer::~HotspotServer() { shutdown(); }

void HotspotServer::shutdown() {
  if (stopping_.exchange(true)) return;
  // 1. No new sessions: closing the listener unblocks accept().
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  // 2. Abort quota waiters; their sessions answer kShuttingDown.
  quota_cv_.notify_all();
  // 3. Wake idle sessions blocked in recv with a read-side shutdown.
  //    Sessions mid-request keep their write side and flush the
  //    response before noticing the drain.
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (const std::weak_ptr<Socket>& weak : sessions_)
      if (std::shared_ptr<Socket> s = weak.lock()) s->shutdown_read();
  }
  // 4. Run every queued/active session to completion.
  workers_.shutdown(true);
  dump_flight_recorder("drain");
  HSDL_LOG(kInfo) << "hsdl_serve drained and stopped";
}

ServerStats HotspotServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void HotspotServer::accept_loop() {
  for (;;) {
    Socket sock = listener_.accept();
    if (!sock.valid()) return;  // listener closed: shutting down
    if (stopping_.load(std::memory_order_relaxed)) return;
    auto shared = std::make_shared<Socket>(std::move(sock));
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      // Compact dead entries so a long-lived server does not grow the
      // session list without bound.
      std::erase_if(sessions_,
                    [](const std::weak_ptr<Socket>& w) { return w.expired(); });
      sessions_.push_back(shared);
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.sessions_accepted;
    }
    workers_.submit([this, shared] { session(shared); });
  }
}

void HotspotServer::send_error(Socket& sock, ErrorCode code,
                               const std::string& message,
                               std::uint32_t retry_after_ms) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.errors_sent;
  }
  if (metrics::enabled()) {
    static metrics::Counter& errors = metrics::counter("serve.errors_sent");
    errors.increment();
  }
  try {
    send_frame(sock, encode_frame(MsgType::kError,
                                  encode_error(ErrorMsg{code, message,
                                                        retry_after_ms})));
  } catch (const CheckError&) {
    // Peer already gone; the session loop will notice on its next read.
  }
}

void HotspotServer::send_busy(Socket& sock, const std::string& message,
                              bool deadline) {
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.busy_rejections;
    if (deadline) ++stats_.deadline_rejections;
  }
  // PR 8's reliability counters, folded into the metrics registry so
  // the stats surface and run reports see them next to the histograms.
  if (metrics::enabled()) {
    static metrics::Counter& busy = metrics::counter("serve.busy_rejections");
    static metrics::Counter& ddl =
        metrics::counter("serve.deadline_rejections");
    busy.increment();
    if (deadline) ddl.increment();
  }
  send_error(sock, ErrorCode::kBusy, message, config_.retry_after_ms);
}

bool HotspotServer::begin_scoring(std::size_t clips) {
  if (config_.busy_max_inflight_clips == 0) return true;
  // Atomic reservation: racing requests cannot jointly exceed the
  // ceiling by both passing a check-then-add.
  const std::size_t prior =
      scoring_inflight_.fetch_add(clips, std::memory_order_acq_rel);
  if (prior + clips <= config_.busy_max_inflight_clips) return true;
  scoring_inflight_.fetch_sub(clips, std::memory_order_acq_rel);
  record_shed();
  return false;
}

void HotspotServer::end_scoring(std::size_t clips) {
  if (config_.busy_max_inflight_clips == 0) return;
  scoring_inflight_.fetch_sub(clips, std::memory_order_acq_rel);
}

void HotspotServer::record_shed() {
  const auto now = std::chrono::steady_clock::now();
  bool degraded_now = false;
  {
    std::lock_guard<std::mutex> lk(pressure_mu_);
    if (!pressure_.overloaded) {
      pressure_.overloaded = true;
      pressure_.overload_since = now;
    }
    pressure_.last_shed = now;
    if (config_.degrade_to_int8 && !pressure_.degraded &&
        now - pressure_.overload_since >=
            std::chrono::milliseconds(config_.degrade_after_ms)) {
      pressure_.degraded = true;
      degraded_now = true;
    }
  }
  if (metrics::enabled()) {
    static metrics::Counter& sheds = metrics::counter("serve.load_sheds");
    sheds.increment();
  }
  if (degraded_now) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.degrade_events;
      stats_.degraded = true;
    }
    if (metrics::enabled()) {
      static metrics::Counter& degrades =
          metrics::counter("serve.degrade_events");
      static metrics::Gauge& degraded_g = metrics::gauge("serve.degraded");
      degrades.increment();
      degraded_g.set(1.0);
    }
    HSDL_LOG(kWarn) << "serve: sustained overload, degrading eligible "
                       "tenants to the int8 path";
  }
}

void HotspotServer::update_pressure_after_success() {
  bool recovered = false;
  {
    std::lock_guard<std::mutex> lk(pressure_mu_);
    if (!pressure_.overloaded) return;
    const auto now = std::chrono::steady_clock::now();
    if (now - pressure_.last_shed <
        std::chrono::milliseconds(config_.recover_after_ms))
      return;
    pressure_.overloaded = false;
    if (pressure_.degraded) {
      pressure_.degraded = false;
      recovered = true;
    }
  }
  if (recovered) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.recover_events;
      stats_.degraded = false;
    }
    if (metrics::enabled()) {
      static metrics::Counter& recovers =
          metrics::counter("serve.recover_events");
      static metrics::Gauge& degraded_g = metrics::gauge("serve.degraded");
      recovers.increment();
      degraded_g.set(0.0);
    }
    HSDL_LOG(kInfo) << "serve: overload cleared, restoring fp32 serving";
  }
}

bool HotspotServer::degraded_mode() const {
  std::lock_guard<std::mutex> lk(pressure_mu_);
  return pressure_.degraded;
}

std::size_t HotspotServer::tenant_inflight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(quota_mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.in_flight;
}

void HotspotServer::session(std::shared_ptr<Socket> sock) {
  SessionCtx ctx;
  std::string buf;
  const std::string context = "serve session";
  sock->set_fault_site("serve.net");
  if (config_.session_timeout_ms > 0)
    sock->set_timeouts(config_.session_timeout_ms, config_.session_timeout_ms);
  try {
    std::uint64_t arrival_ns = 0;
    while (recv_frame(*sock, buf, context,
                      trace::enabled() ? &arrival_ns : nullptr)) {
      Frame frame;
      try {
        frame = decode_frame(buf, context);
      } catch (const io::IoError& e) {
        // Corrupt frame: report the position, then close — after a
        // framing error the byte stream can no longer be trusted.
        send_error(*sock, ErrorCode::kBadFrame,
                   std::string("bad frame at byte ") +
                       std::to_string(e.offset()) + ": " + e.what());
        return;
      }
      switch (frame.type) {
        case MsgType::kHello: {
          const Hello hello = decode_hello(frame.body, context);
          // Per-session negotiation: a v2 client is acked with v2 and
          // the session speaks the v2 ScoreRequest layout (no trace
          // context on the wire); v3 clients get the full surface.
          if (hello.version < kMinProtocolVersion ||
              hello.version > kProtocolVersion) {
            send_error(*sock, ErrorCode::kBadVersion,
                       "unsupported protocol version " +
                           std::to_string(hello.version));
            return;
          }
          ctx.version = hello.version;
          if (!hello.tenant.empty()) ctx.tenant = hello.tenant;
          // Resolve the tenant's instruments once; the per-request path
          // then records through cached pointers instead of taking the
          // registry lock per request.
          ctx.tenant_requests = &metrics::counter(
              "serve.tenant." + ctx.tenant + ".requests");
          ctx.tenant_clips =
              &metrics::counter("serve.tenant." + ctx.tenant + ".clips");
          send_frame(*sock,
                     encode_frame(MsgType::kHelloAck,
                                  encode_hello_ack(HelloAck{
                                      ctx.version,
                                      registry_.generation()})));
          break;
        }
        case MsgType::kScoreRequest:
          handle_score(*sock, ctx, frame.body, arrival_ns);
          break;
        case MsgType::kSwapModel:
          handle_swap(*sock, frame.body);
          break;
        case MsgType::kStatsRequest:
          send_frame(*sock, encode_frame(
                                MsgType::kStatsResponse,
                                encode_stats_response(
                                    StatsResponse{stats_json()})));
          break;
        case MsgType::kBye:
          return;
        default:
          send_error(*sock, ErrorCode::kBadFrame,
                     "unexpected message type");
          return;
      }
    }
  } catch (const NetTimeout& e) {
    // Watchdog: the peer went silent mid-frame or refused to drain its
    // response past session_timeout_ms. Reap the session — the worker
    // frees up; any quota was already released by handle_score's guard.
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.sessions_reaped;
    }
    if (metrics::enabled()) {
      static metrics::Counter& reaped =
          metrics::counter("serve.sessions_reaped");
      reaped.increment();
    }
    dump_flight_recorder("session-fatal");
    HSDL_LOG(kWarn) << "session (" << ctx.tenant << ") reaped: " << e.what();
  } catch (const CheckError& e) {
    // Mid-frame EOF, send failure, or malformed message body: the
    // session dies, the server lives.
    dump_flight_recorder("session-fatal");
    HSDL_LOG(kWarn) << "session (" << ctx.tenant << ") closed: " << e.what();
  } catch (const std::exception& e) {
    // TaskPool tasks must not throw — anything escaping here would take
    // the process down. Contain it: the session dies, the server lives.
    dump_flight_recorder("session-fatal");
    HSDL_LOG(kError) << "session (" << ctx.tenant << ") failed: " << e.what();
  }
}

void HotspotServer::handle_score(Socket& sock, SessionCtx& ctx,
                                 std::string_view body,
                                 std::uint64_t arrival_ns) {
  WallTimer timer;
  FlightRecord flight;
  flight.set_tenant(ctx.tenant);
  // Commits the record on every exit path — success, rejection, or an
  // exception unwinding into the session loop — and closes the
  // request's root span. trace_begin/trace_id are filled in once the
  // request is decoded (the id travels inside the frame).
  struct FlightCommit {
    FlightRecorder& ring;
    FlightRecord& rec;
    WallTimer& timer;
    std::uint64_t trace_id = 0;
    std::uint64_t trace_begin = 0;
    ~FlightCommit() {
      rec.total_ms = static_cast<float>(timer.millis());
      ring.record(rec);
      if (trace_id != 0 && trace_begin != 0)
        trace::emit("serve.request", trace_begin, trace::timestamp_ns(),
                    trace_id);
    }
  } commit{flight_, flight, timer};

  // Stage 1: decode. The trace clock is read only while tracing is
  // globally on (the id that tags these spans is inside the body being
  // decoded, so timestamps are captured first, attributed after).
  const bool tracing = trace::enabled();
  const std::uint64_t decode_begin = tracing ? trace::timestamp_ns() : 0;
  WallTimer stage;
  const ScoreRequest request =
      decode_score_request(body, "score request", ctx.version);
  flight.decode_ms = static_cast<float>(stage.millis());
  flight.request_id = request.request_id;
  flight.clips = static_cast<std::uint32_t>(request.clips.size());
  flight.deadline_ms = request.deadline_ms;
  const std::uint64_t tid =
      tracing && request.sampled ? request.trace_id : 0;
  commit.trace_id = tid;
  commit.trace_begin = arrival_ns != 0 ? arrival_ns : decode_begin;
  if (tid != 0) {
    const std::uint64_t decode_end = trace::timestamp_ns();
    if (arrival_ns != 0)
      trace::emit("serve.recv", arrival_ns, decode_begin, tid);
    trace::emit("serve.decode", decode_begin, decode_end, tid);
  }
  const std::size_t n = request.clips.size();
  if (n > config_.max_clips_per_request) {
    flight.error = static_cast<std::uint8_t>(ErrorCode::kTooManyClips);
    send_error(sock, ErrorCode::kTooManyClips,
               "request of " + std::to_string(n) + " clips exceeds limit " +
                   std::to_string(config_.max_clips_per_request));
    return;
  }
  if (n > config_.tenant_quota_clips) {
    flight.error = static_cast<std::uint8_t>(ErrorCode::kQuotaExceeded);
    send_error(sock, ErrorCode::kQuotaExceeded,
               "request of " + std::to_string(n) +
                   " clips exceeds the tenant budget of " +
                   std::to_string(config_.tenant_quota_clips));
    return;
  }
  // Absolute deadline from the relative wire budget, anchored to
  // receipt (client and server clocks are not shared).
  const auto received = std::chrono::steady_clock::now();
  auto deadline = hotspot::InferenceEngine::kNoDeadline;
  if (request.deadline_ms > 0)
    deadline = received + std::chrono::milliseconds(request.deadline_ms);
  // Chaos site: a slow handler (kDelay sleeps here — after the deadline
  // was anchored, so tests can force an expiry deterministically).
  if (fault::armed()) fault::probe("serve.handler");
  if (deadline != hotspot::InferenceEngine::kNoDeadline &&
      std::chrono::steady_clock::now() >= deadline) {
    flight.error = static_cast<std::uint8_t>(ErrorCode::kBusy);
    send_busy(sock, "deadline expired before scoring", true);
    return;
  }
  // Stage 2: quota + admission. One span covers the wait for tenant
  // budget — the time a greedy neighbor cost this request.
  const std::uint64_t quota_begin = tid != 0 ? trace::timestamp_ns() : 0;
  stage.reset();
  const bool admitted = quota_acquire(ctx.tenant, n);
  flight.quota_ms = static_cast<float>(stage.millis());
  if (tid != 0)
    trace::emit("serve.quota", quota_begin, trace::timestamp_ns(), tid);
  if (!admitted) {
    flight.error = static_cast<std::uint8_t>(ErrorCode::kShuttingDown);
    send_error(sock, ErrorCode::kShuttingDown, "server is draining");
    return;
  }
  QuotaGuard quota(*this, ctx.tenant, n);
  if (!begin_scoring(n)) {
    flight.error = static_cast<std::uint8_t>(ErrorCode::kBusy);
    send_busy(sock, "server at capacity (" +
                        std::to_string(config_.busy_max_inflight_clips) +
                        " in-flight clips)",
              false);
    return;
  }
  // Acquire the model once per request: a hot-swap mid-request does
  // not retarget us, and the handle keeps the old engine alive until
  // scoring finishes.
  const std::shared_ptr<ServingModel> model = registry_.acquire();
  ScoreResponse response;
  response.request_id = request.request_id;
  response.model_generation = model->generation();
  const bool degraded =
      degraded_mode() && model->degraded_engine() != nullptr;
  response.mode = degraded ? ServeMode::kInt8 : ServeMode::kFp32;
  flight.mode = static_cast<std::uint8_t>(response.mode);
  // Stage 3: score through the engine; a sampled request's id rides
  // into the micro-batcher and tags the queue-wait/extract/forward
  // spans there.
  std::vector<double> probs;
  stage.reset();
  try {
    hotspot::InferenceEngine& engine =
        degraded ? *model->degraded_engine() : model->engine();
    probs = engine.score(request.clips, deadline, tid);
  } catch (const hotspot::DeadlineExceeded& e) {
    end_scoring(n);
    flight.score_ms = static_cast<float>(stage.millis());
    flight.error = static_cast<std::uint8_t>(ErrorCode::kBusy);
    send_busy(sock, e.what(), true);
    return;
  } catch (const std::bad_alloc&) {
    end_scoring(n);
    flight.score_ms = static_cast<float>(stage.millis());
    flight.error = static_cast<std::uint8_t>(ErrorCode::kInternal);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.internal_errors;
    }
    send_error(sock, ErrorCode::kInternal, "allocation failure while scoring");
    return;
  }
  end_scoring(n);
  flight.score_ms = static_cast<float>(stage.millis());
  // A corrupted (non-finite) score must never reach a client as a
  // ranked probability: answer kInternal, keep the session usable.
  for (const double p : probs) {
    if (std::isfinite(p)) continue;
    flight.error = static_cast<std::uint8_t>(ErrorCode::kInternal);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.internal_errors;
    }
    send_error(sock, ErrorCode::kInternal, "non-finite score");
    return;
  }
  // Stage 4: rank.
  const std::uint64_t rank_begin = tid != 0 ? trace::timestamp_ns() : 0;
  stage.reset();
  response.hits = rank_hits(probs, model->detector().decision_threshold());
  flight.rank_ms = static_cast<float>(stage.millis());
  if (tid != 0)
    trace::emit("serve.rank", rank_begin, trace::timestamp_ns(), tid);
  update_pressure_after_success();
  quota.release();
  // Stage 5: send.
  const std::uint64_t send_begin = tid != 0 ? trace::timestamp_ns() : 0;
  stage.reset();
  send_frame(sock, encode_frame(MsgType::kScoreResponse,
                                encode_score_response(response)));
  flight.send_ms = static_cast<float>(stage.millis());
  if (tid != 0)
    trace::emit("serve.send", send_begin, trace::timestamp_ns(), tid);
  const double seconds = timer.seconds();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.requests_served;
    stats_.clips_scored += n;
  }
  {
    // Per-tenant served totals for the stats surface; same lock the
    // quota path already takes twice per request.
    std::lock_guard<std::mutex> lk(quota_mu_);
    TenantBudget& budget = tenants_[ctx.tenant];
    ++budget.requests;
    budget.clips += n;
  }
  if (metrics::enabled()) {
    static metrics::Counter& requests = metrics::counter("serve.requests");
    static metrics::Counter& clips = metrics::counter("serve.clips");
    static metrics::Histogram& latency = metrics::histogram(
        "serve.request_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});
    // Stage latency histograms: the decomposition of request_seconds a
    // p99 regression is diagnosed with. One bucket family for all
    // stages keeps them comparable.
    static const std::vector<double> kStageBounds = {1e-5, 1e-4, 1e-3,
                                                     1e-2, 1e-1, 1.0};
    static metrics::Histogram& decode_h =
        metrics::histogram("serve.stage.decode_seconds", kStageBounds);
    static metrics::Histogram& quota_h =
        metrics::histogram("serve.stage.quota_seconds", kStageBounds);
    static metrics::Histogram& score_h =
        metrics::histogram("serve.stage.score_seconds", kStageBounds);
    static metrics::Histogram& rank_h =
        metrics::histogram("serve.stage.rank_seconds", kStageBounds);
    static metrics::Histogram& send_h =
        metrics::histogram("serve.stage.send_seconds", kStageBounds);
    requests.increment();
    clips.add(n);
    latency.record(seconds);
    decode_h.record(flight.decode_ms * 1e-3);
    quota_h.record(flight.quota_ms * 1e-3);
    score_h.record(flight.score_ms * 1e-3);
    rank_h.record(flight.rank_ms * 1e-3);
    send_h.record(flight.send_ms * 1e-3);
    if (ctx.tenant_requests != nullptr) ctx.tenant_requests->increment();
    if (ctx.tenant_clips != nullptr) ctx.tenant_clips->add(n);
  }
  if (telemetry_.enabled()) {
    json::Value rec = json::Value::object();
    rec.set("event", "serve.request");
    rec.set("tenant", ctx.tenant);
    rec.set("clips", n);
    rec.set("generation", response.model_generation);
    rec.set("mode", serve_mode_name(response.mode));
    rec.set("seconds", seconds);
    telemetry_.emit(rec);
  }
}

void HotspotServer::handle_swap(Socket& sock, std::string_view body) {
  const SwapModel swap = decode_swap_model(body, "swap request");
  try {
    const std::uint64_t generation =
        registry_.swap_from_checkpoint(swap.checkpoint_path);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.swaps;
    }
    send_frame(sock, encode_frame(MsgType::kSwapAck,
                                  encode_swap_ack(SwapAck{generation})));
  } catch (const CheckError& e) {
    send_error(sock, ErrorCode::kSwapFailed,
               std::string("swap rejected: ") + e.what());
  }
}

std::string HotspotServer::stats_json() const {
  json::Value v = json::Value::object();
  v.set("schema", "hsdl-serve-stats-v1");
  v.set("uptime_seconds",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count());
  const ServerStats s = stats();
  json::Value server = json::Value::object();
  server.set("sessions_accepted", s.sessions_accepted);
  server.set("requests_served", s.requests_served);
  server.set("clips_scored", s.clips_scored);
  server.set("errors_sent", s.errors_sent);
  server.set("swaps", s.swaps);
  server.set("busy_rejections", s.busy_rejections);
  server.set("deadline_rejections", s.deadline_rejections);
  server.set("internal_errors", s.internal_errors);
  server.set("sessions_reaped", s.sessions_reaped);
  server.set("degrade_events", s.degrade_events);
  server.set("recover_events", s.recover_events);
  server.set("degraded", s.degraded);
  v.set("server", std::move(server));
  {
    json::Value tenants = json::Value::object();
    std::lock_guard<std::mutex> lk(quota_mu_);
    for (const auto& [name, budget] : tenants_) {
      json::Value t = json::Value::object();
      t.set("inflight_clips", budget.in_flight);
      t.set("requests", budget.requests);
      t.set("clips", budget.clips);
      tenants.set(name, std::move(t));
    }
    v.set("tenants", std::move(tenants));
  }
  // The active engine's counters. acquire() throws before the first
  // install; a stats probe that early just omits the section.
  try {
    const std::shared_ptr<ServingModel> model = registry_.acquire();
    const hotspot::EngineStats es = model->engine().stats();
    json::Value engine = json::Value::object();
    engine.set("generation", model->generation());
    engine.set("requests", es.requests);
    engine.set("batches", es.batches);
    engine.set("flush_full", es.flush_full);
    engine.set("flush_timeout", es.flush_timeout);
    engine.set("flush_drain", es.flush_drain);
    engine.set("inline_batches", es.inline_batches);
    engine.set("deadline_expired", es.deadline_expired);
    engine.set("max_queue_depth", es.max_queue_depth);
    engine.set("arena_allocations", es.arena_allocations);
    engine.set("arena_reuses", es.arena_reuses);
    engine.set("arena_bytes_reserved", es.arena_bytes_reserved);
    v.set("engine", std::move(engine));
  } catch (const CheckError&) {
  }
  json::Value flight = json::Value::object();
  flight.set("capacity", flight_.capacity());
  flight.set("recorded", flight_.total_recorded());
  v.set("flight", std::move(flight));
  if (metrics::enabled())
    v.set("metrics", metrics::summary_json(metrics::snapshot()));
  return v.dump();
}

void HotspotServer::dump_flight_recorder(const std::string& reason) const {
  if (config_.flight_dump_path.empty()) return;
  const std::size_t n = flight_.dump_jsonl(config_.flight_dump_path, reason);
  HSDL_LOG(kInfo) << "flight recorder: dumped " << n << " records to "
                  << config_.flight_dump_path << " (" << reason << ")";
}

bool HotspotServer::quota_acquire(const std::string& tenant,
                                  std::size_t clips) {
  std::unique_lock<std::mutex> lk(quota_mu_);
  TenantBudget& budget = tenants_[tenant];
  quota_cv_.wait(lk, [&] {
    return stopping_.load(std::memory_order_relaxed) ||
           budget.in_flight + clips <= config_.tenant_quota_clips;
  });
  if (stopping_.load(std::memory_order_relaxed)) return false;
  budget.in_flight += clips;
  if (metrics::enabled()) {
    static metrics::Gauge& inflight = metrics::gauge("serve.inflight_clips");
    inflight.set(static_cast<double>(budget.in_flight));
  }
  return true;
}

void HotspotServer::quota_release(const std::string& tenant,
                                  std::size_t clips) {
  {
    std::lock_guard<std::mutex> lk(quota_mu_);
    TenantBudget& budget = tenants_[tenant];
    budget.in_flight -= std::min(budget.in_flight, clips);
  }
  quota_cv_.notify_all();
}

}  // namespace hsdl::serve

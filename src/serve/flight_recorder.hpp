// Always-on flight recorder for the serving front-end (DESIGN.md §15).
//
// A FlightRecorder keeps the last N completed requests — tenant,
// request id, clip count, deadline budget, outcome, serving mode and
// per-stage wall times — in a fixed-size ring that is written on every
// request and read only when someone asks for a dump (SIGQUIT, a
// session-fatal error, graceful drain). It answers the question the
// live stats surface cannot: not "what is the p99" but "what were the
// exact last 256 requests doing when things went wrong".
//
// Concurrency: one cheap spinlock per slot (an atomic exchange pair).
// Writers from different session workers land on different slots except
// when the ring wraps mid-collision, so the lock is effectively
// uncontended; a reader taking a snapshot locks one slot at a time and
// never blocks writers on the other N-1 slots. Records are small and
// fixed-size (the tenant is a truncated char array, no heap), so the
// critical section is a plain struct copy. A per-slot lock was chosen
// over a seqlock on purpose: the serve tests run under TSan, and a
// seqlock's racing reads — benign by construction — would still be
// flagged.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "serve/protocol.hpp"

namespace hsdl::serve {

/// One completed (or rejected) score request. `error == 0` means the
/// request was answered with a ScoreResponse; otherwise it holds the
/// ErrorCode the client was sent. Stage times are milliseconds; a stage
/// the request never reached stays 0.
struct FlightRecord {
  std::uint64_t seq = 0;       ///< monotone completion index
  std::uint64_t wall_ms = 0;   ///< unix epoch ms at completion
  std::uint64_t request_id = 0;
  char tenant[24] = {};        ///< truncated, NUL-terminated
  std::uint32_t clips = 0;
  std::uint32_t deadline_ms = 0;  ///< wire budget (0 = none)
  std::uint8_t error = 0;         ///< 0 = ok, else ErrorCode
  std::uint8_t mode = 0;          ///< ServeMode of the answer
  float decode_ms = 0.0f;
  float quota_ms = 0.0f;
  float score_ms = 0.0f;
  float rank_ms = 0.0f;
  float send_ms = 0.0f;
  float total_ms = 0.0f;

  void set_tenant(const std::string& t);
};

json::Value to_json(const FlightRecord& r);

class FlightRecorder {
 public:
  /// `capacity` slots (>= 1; the server default is 256 ~ 16 KiB).
  explicit FlightRecorder(std::size_t capacity);

  std::size_t capacity() const { return slots_.size(); }
  /// Requests recorded over the recorder's lifetime (>= capacity once
  /// the ring has wrapped).
  std::uint64_t total_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Stamps `r.seq` and stores the record, overwriting the oldest slot
  /// once the ring is full. Wait-free against readers except for the
  /// one-slot copy under its spinlock.
  void record(FlightRecord r);

  /// The retained records, oldest first.
  std::vector<FlightRecord> snapshot() const;

  /// Appends every retained record to `path` as JSONL (one object per
  /// line), preceded by a header line identifying the dump. Returns the
  /// number of records written; swallows I/O failures (the dump runs on
  /// failure paths and must never add a second failure).
  std::size_t dump_jsonl(const std::string& path,
                         const std::string& reason) const;

 private:
  struct alignas(64) Slot {
    mutable std::atomic<bool> locked{false};
    bool valid = false;
    FlightRecord rec;
  };

  std::atomic<std::uint64_t> seq_{0};
  std::vector<Slot> slots_;
};

}  // namespace hsdl::serve

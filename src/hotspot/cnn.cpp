#include "hotspot/cnn.hpp"

#include "common/check.hpp"
#include "common/refmode.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/workspace.hpp"

namespace hsdl::hotspot {

HotspotCnn::HotspotCnn(const HotspotCnnConfig& config)
    : config_(config), rng_(std::make_unique<Rng>(config.seed)) {
  HSDL_CHECK(config.input_channels > 0);
  HSDL_CHECK_MSG(config.input_side % 4 == 0,
                 "two 2x2 poolings need the input side divisible by 4");
  Rng& rng = *rng_;

  auto conv = [&](std::size_t in, std::size_t out) {
    nn::Conv2dConfig c;
    c.in_channels = in;
    c.out_channels = out;
    c.kernel = 3;
    c.stride = 1;
    c.padding = 1;  // same padding: Table 1 keeps 12x12 / 6x6 through convs
    return c;
  };

  // Stage 1
  net_.emplace<nn::Conv2d>(conv(config.input_channels, config.stage1_maps),
                           rng);
  net_.emplace<nn::Relu>();
  net_.emplace<nn::Conv2d>(conv(config.stage1_maps, config.stage1_maps), rng);
  net_.emplace<nn::Relu>();
  net_.emplace<nn::MaxPool2d>(2);
  // Stage 2
  net_.emplace<nn::Conv2d>(conv(config.stage1_maps, config.stage2_maps), rng);
  net_.emplace<nn::Relu>();
  net_.emplace<nn::Conv2d>(conv(config.stage2_maps, config.stage2_maps), rng);
  net_.emplace<nn::Relu>();
  net_.emplace<nn::MaxPool2d>(2);
  // Classifier
  net_.emplace<nn::Flatten>();
  const std::size_t side_after = config.input_side / 4;
  const std::size_t flat = config.stage2_maps * side_after * side_after;
  net_.emplace<nn::Linear>(flat, config.fc_nodes, rng);
  net_.emplace<nn::Relu>();
  net_.emplace<nn::Dropout>(config.dropout, rng);
  net_.emplace<nn::Linear>(config.fc_nodes, std::size_t{2}, rng);
}

std::vector<std::size_t> HotspotCnn::input_shape() const {
  return {config_.input_channels, config_.input_side, config_.input_side};
}

nn::Tensor HotspotCnn::logits(const nn::Tensor& input, bool train) {
  return net_.forward(input, train);
}

nn::Tensor HotspotCnn::probabilities(const nn::Tensor& input) const {
  return nn::softmax(net_.infer(input));
}

nn::Tensor HotspotCnn::probabilities(const nn::Tensor& input,
                                     nn::WorkspaceArena& ws) const {
  // Fast path: run the fused walk up to (but not including) the final
  // Linear, then apply FC + softmax in one pass so the logits never
  // round-trip through the arena. Bitwise identical to the unfused
  // pipeline (shared softmax_row kernel).
  if (!runtime::reference_mode() && net_.size() >= 2) {
    if (const auto* last =
            dynamic_cast<const nn::Linear*>(&net_.layer(net_.size() - 1))) {
      nn::Tensor feat = net_.infer_prefix(input, net_.size() - 1, ws);
      nn::Tensor probs = last->infer_softmax(feat, ws);
      ws.recycle(std::move(feat));
      return probs;
    }
  }
  nn::Tensor logits = net_.infer(input, ws);
  nn::Tensor probs = nn::softmax(logits, ws);
  ws.recycle(std::move(logits));
  return probs;
}

}  // namespace hsdl::hotspot

// Biased learning (paper Algorithm 2 and Theorem 1).
//
// After normal MGD training converges (eps = 0), the non-hotspot ground
// truth is relaxed to [1 - eps, eps] and the network fine-tuned; repeating
// with eps <- eps + delta for t rounds raises hotspot detection accuracy
// at a much smaller false-alarm cost than shifting the decision boundary
// (Figure 4 contrasts the two).
//
// With `checkpoint_path` set, every round trains under TrainState
// checkpointing with the learner's round progress (completed rounds,
// current round index and its exact epsilon) embedded in each file, so
// one checkpoint captures the whole Algorithm 2 chain and resume()
// continues an interrupted run — mid-round, bit-for-bit — instead of
// retraining from scratch.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hotspot/trainer.hpp"

namespace hsdl::hotspot {

struct BiasedLearningConfig {
  double epsilon0 = 0.0;   ///< initial bias (Algorithm 2 line 1)
  double delta = 0.1;      ///< bias step (delta-eps)
  std::size_t rounds = 4;  ///< t, maximum bias adjusting rounds

  /// Round 0 (full training, eps = epsilon0). Defaults are tuned for this
  /// library's scaled-down benchmarks; the paper's full-scale values
  /// (lr 1e-4..1e-3, decay step 10000) are recovered by overriding.
  MgdConfig initial = [] {
    MgdConfig c;
    c.learning_rate = 1e-2;
    c.decay = 0.5;
    c.decay_step = 1500;
    c.batch = 32;
    c.max_iters = 2500;
    c.validate_every = 100;
    c.patience = 10;
    return c;
  }();
  /// Later rounds: short fine-tunes from the previous round's weights.
  MgdConfig finetune = [] {
    MgdConfig c;
    c.learning_rate = 2e-3;
    c.decay = 0.5;
    c.decay_step = 300;
    c.batch = 32;
    c.max_iters = 600;
    c.validate_every = 50;
    c.patience = 6;
    return c;
  }();

  /// TrainState checkpoint file shared by all rounds; empty disables
  /// checkpointing (overrides any per-round checkpoint settings in
  /// `initial` / `finetune`).
  std::string checkpoint_path;
  /// Iterations between checkpoint writes within each round.
  std::size_t checkpoint_every = 100;

  /// JSONL telemetry stream shared by all rounds: every round's
  /// per-iteration records plus one bias_round record per round (ε,
  /// hotspot accuracy, false-alarm count; schema in DESIGN.md §10).
  /// Empty disables the stream (overrides any per-round telemetry_path
  /// in `initial` / `finetune`, mirroring checkpoint_path).
  std::string telemetry_path;
};

/// Outcome of one bias round, measured on the validation set.
struct BiasedRound {
  double epsilon = 0.0;
  TrainResult train;
  Confusion val_confusion;
};

struct BiasedLearningResult {
  std::vector<BiasedRound> rounds;

  /// Validation hotspot-accuracy of the last round.
  double final_val_accuracy() const {
    return rounds.empty() ? 0.0 : rounds.back().val_confusion.accuracy();
  }
};

class BiasedLearner {
 public:
  explicit BiasedLearner(const BiasedLearningConfig& config = {});

  const BiasedLearningConfig& config() const { return config_; }

  /// Forwarded to every round's MgdTrainer (see MgdTrainer for
  /// semantics); the iteration hook doubles as the fault-injection
  /// kill point across the whole chain.
  void set_iteration_hook(MgdTrainer::IterationHook hook) {
    iteration_hook_ = std::move(hook);
  }
  void set_fault_hook(MgdTrainer::FaultHook hook) {
    fault_hook_ = std::move(hook);
  }

  /// Algorithm 2: trains `model` in place through all bias rounds.
  BiasedLearningResult train(HotspotCnn& model,
                             const nn::ClassificationDataset& train_set,
                             const nn::ClassificationDataset& val_set,
                             Rng& rng);

  /// Crash-safe entry point: when config().checkpoint_path holds a
  /// checkpoint, restores the completed rounds from it, resumes the
  /// interrupted round bit-for-bit and runs the remaining rounds; when
  /// the file does not exist yet, starts fresh (so one call site serves
  /// both the first launch and every relaunch).
  BiasedLearningResult resume(HotspotCnn& model,
                              const nn::ClassificationDataset& train_set,
                              const nn::ClassificationDataset& val_set,
                              Rng& rng);

 private:
  BiasedLearningResult run(HotspotCnn& model,
                           const nn::ClassificationDataset& train_set,
                           const nn::ClassificationDataset& val_set,
                           Rng& rng, std::size_t first_round,
                           double first_epsilon,
                           std::vector<BiasedRound> completed,
                           bool resume_first_round);

  MgdConfig round_config(std::size_t round, double epsilon) const;

  BiasedLearningConfig config_;
  MgdTrainer::IterationHook iteration_hook_;
  MgdTrainer::FaultHook fault_hook_;
};

}  // namespace hsdl::hotspot

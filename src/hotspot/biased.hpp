// Biased learning (paper Algorithm 2 and Theorem 1).
//
// After normal MGD training converges (eps = 0), the non-hotspot ground
// truth is relaxed to [1 - eps, eps] and the network fine-tuned; repeating
// with eps <- eps + delta for t rounds raises hotspot detection accuracy
// at a much smaller false-alarm cost than shifting the decision boundary
// (Figure 4 contrasts the two).
#pragma once

#include <vector>

#include "hotspot/trainer.hpp"

namespace hsdl::hotspot {

struct BiasedLearningConfig {
  double epsilon0 = 0.0;   ///< initial bias (Algorithm 2 line 1)
  double delta = 0.1;      ///< bias step (delta-eps)
  std::size_t rounds = 4;  ///< t, maximum bias adjusting rounds

  /// Round 0 (full training, eps = epsilon0). Defaults are tuned for this
  /// library's scaled-down benchmarks; the paper's full-scale values
  /// (lr 1e-4..1e-3, decay step 10000) are recovered by overriding.
  MgdConfig initial{.learning_rate = 1e-2,
                    .decay = 0.5,
                    .decay_step = 1500,
                    .batch = 32,
                    .max_iters = 2500,
                    .validate_every = 100,
                    .patience = 10};
  /// Later rounds: short fine-tunes from the previous round's weights.
  MgdConfig finetune{.learning_rate = 2e-3,
                     .decay = 0.5,
                     .decay_step = 300,
                     .batch = 32,
                     .max_iters = 600,
                     .validate_every = 50,
                     .patience = 6};
};

/// Outcome of one bias round, measured on the validation set.
struct BiasedRound {
  double epsilon = 0.0;
  TrainResult train;
  Confusion val_confusion;
};

struct BiasedLearningResult {
  std::vector<BiasedRound> rounds;

  /// Validation hotspot-accuracy of the last round.
  double final_val_accuracy() const {
    return rounds.empty() ? 0.0 : rounds.back().val_confusion.accuracy();
  }
};

class BiasedLearner {
 public:
  explicit BiasedLearner(const BiasedLearningConfig& config = {});

  const BiasedLearningConfig& config() const { return config_; }

  /// Algorithm 2: trains `model` in place through all bias rounds.
  BiasedLearningResult train(HotspotCnn& model,
                             const nn::ClassificationDataset& train_set,
                             const nn::ClassificationDataset& val_set,
                             Rng& rng);

 private:
  BiasedLearningConfig config_;
};

}  // namespace hsdl::hotspot

#include "hotspot/detector.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/io.hpp"
#include "common/parallel.hpp"
#include "common/refmode.hpp"
#include "common/timer.hpp"
#include "nn/workspace.hpp"
#include "hotspot/engine/engine.hpp"
#include "layout/transform.hpp"
#include "nn/serialize.hpp"

namespace hsdl::hotspot {
namespace {

std::size_t label_index(layout::HotspotLabel label) {
  HSDL_CHECK_MSG(label != layout::HotspotLabel::kUnknown,
                 "training/evaluation clip without a resolved label");
  return label == layout::HotspotLabel::kHotspot ? kHotspotIndex
                                                 : kNonHotspotIndex;
}

/// Online passes with inverse-class-frequency step weighting so the rare
/// hotspot class is not drowned out by the non-hotspot stream.
void run_online_refinement(baselines::BoostedStumps& boost,
                           const nn::ClassificationDataset& data,
                           const BoostDetectorConfig& config) {
  if (config.online_passes == 0) return;
  const auto n = static_cast<double>(data.size());
  const auto pos = static_cast<double>(data.count_label(1));
  const double w_pos = pos > 0 ? n / (2.0 * pos) : 0.0;
  const double w_neg = n - pos > 0 ? n / (2.0 * (n - pos)) : 0.0;
  for (std::size_t pass = 0; pass < config.online_passes; ++pass)
    for (std::size_t i = 0; i < data.size(); ++i)
      boost.update_online(data.features(i), data.label(i),
                          config.online_learning_rate,
                          data.label(i) == 1 ? w_pos : w_neg);
}

}  // namespace

double Detector::predict_probability(const layout::Clip& clip) const {
  return predict(clip) ? 1.0 : 0.0;
}

std::vector<double> Detector::predict_probabilities(
    std::span<const layout::Clip> clips) const {
  std::vector<double> probs(clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i)
    probs[i] = predict_probability(clips[i]);
  return probs;
}

DetectorEval Detector::evaluate(
    std::span<const layout::LabeledClip> test_clips) const {
  DetectorEval eval;
  WallTimer timer;
  for (const layout::LabeledClip& lc : test_clips) {
    const bool predicted = predict(lc.clip);
    eval.confusion.add(label_index(lc.label) == kHotspotIndex, predicted);
  }
  eval.eval_seconds = timer.seconds();
  return eval;
}

// -- CnnDetector -------------------------------------------------------------

void CnnDetectorConfig::validate() const {
  HSDL_CHECK_MSG(feature.coeffs > 0,
                 "cnn detector config: feature.coeffs must be positive");
  HSDL_CHECK_MSG(feature.blocks_per_side > 0,
                 "cnn detector config: feature.blocks_per_side must be "
                 "positive");
  HSDL_CHECK_MSG(feature.blocks_per_side % 4 == 0,
                 "cnn detector config: blocks_per_side ("
                     << feature.blocks_per_side
                     << ") must be divisible by 4 (two 2x2 poolings)");
  HSDL_CHECK_MSG(feature.nm_per_px > 0.0,
                 "cnn detector config: feature.nm_per_px must be positive, "
                 "got " << feature.nm_per_px);
  HSDL_CHECK_MSG(
      validation_fraction >= 0.0 && validation_fraction < 1.0,
      "cnn detector config: validation_fraction must be in [0, 1), got "
          << validation_fraction);
  HSDL_CHECK_MSG(shift >= -0.5 && shift <= 0.5,
                 "cnn detector config: shift must be in [-0.5, 0.5], got "
                     << shift << " (threshold 0.5 - shift would leave "
                                 "[0, 1])");
}

CnnDetector::CnnDetector(const CnnDetectorConfig& config)
    : config_(config),
      extractor_(config.feature),
      model_([&] {
        HotspotCnnConfig c = config.cnn;
        // The CNN input is the feature tensor; keep the shapes coupled so a
        // mismatched config cannot be constructed.
        c.input_channels = config.feature.coeffs;
        c.input_side = config.feature.blocks_per_side;
        return c;
      }()),
      rng_(config.seed) {
  config_.validate();
}

nn::ClassificationDataset CnnDetector::extract_dataset(
    std::span<const layout::LabeledClip> clips) const {
  nn::ClassificationDataset data(
      {config_.feature.coeffs, config_.feature.blocks_per_side,
       config_.feature.blocks_per_side});
  // Extraction is parallel over clips (independent outputs); the dataset is
  // assembled serially in clip order, so the result matches a serial build.
  std::vector<fte::FeatureTensor> fts(clips.size());
  parallel_for(0, clips.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      fts[i] = extractor_.extract(clips[i].clip);
  });
  for (std::size_t i = 0; i < clips.size(); ++i)
    data.add(std::move(fts[i].data), label_index(clips[i].label));
  return data;
}

BiasedLearningResult CnnDetector::train_on(
    const nn::ClassificationDataset& train_set,
    const nn::ClassificationDataset& val_set) {
  quantized_.reset();  // stale against the new weights
  use_quantized_ = false;
  BiasedLearner learner(config_.biased);
  return learner.train(model_, train_set, val_set, rng_);
}

void CnnDetector::quantize(
    std::span<const layout::LabeledClip> calibration) {
  HSDL_CHECK_MSG(!calibration.empty(),
                 "quantize() needs a calibration split");
  const std::vector<std::size_t> shape = model_.input_shape();
  const std::size_t feat = shape[0] * shape[1] * shape[2];
  nn::Tensor x({calibration.size(), shape[0], shape[1], shape[2]});
  parallel_for(0, calibration.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      extractor_.extract_into(calibration[i].clip,
                              std::span<float>(x.data() + i * feat, feat));
  });
  quantized_ = std::make_unique<nn::QuantizedNet>(model_.net(), x);
  use_quantized_ = true;
}

nn::Tensor CnnDetector::score_batch(const nn::Tensor& x,
                                    nn::WorkspaceArena& ws) const {
  return score_batch(x, ws, use_quantized());
}

nn::Tensor CnnDetector::score_batch(const nn::Tensor& x, nn::WorkspaceArena& ws,
                                    bool quantized) const {
  if (quantized && quantized_ != nullptr)
    return quantized_->probabilities(x, ws);
  return model_.probabilities(x, ws);
}

nn::Tensor CnnDetector::score(const nn::Tensor& x) const {
  if (use_quantized()) return quantized_->probabilities(x);
  return model_.probabilities(x);
}

void CnnDetector::train(std::span<const layout::LabeledClip> train_clips) {
  HSDL_CHECK(!train_clips.empty());
  // 25 % validation split (paper Section 4.2), then feature extraction.
  std::vector<layout::LabeledClip> train_part, val_part;
  Rng split_rng(config_.seed ^ 0x5eedULL);
  layout::split_validation(train_clips, config_.validation_fraction,
                           split_rng, train_part, val_part);
  if (val_part.empty()) {  // tiny sets: validate on the training data
    val_part = train_part;
  }
  if (config_.augment_hotspots) {
    const std::size_t original = train_part.size();
    for (std::size_t i = 0; i < original; ++i) {
      if (train_part[i].label != layout::HotspotLabel::kHotspot) continue;
      for (layout::Dihedral op : layout::kAllDihedral) {
        if (op == layout::Dihedral::kIdentity) continue;
        train_part.push_back(
            {layout::transformed(train_part[i].clip, op),
             layout::HotspotLabel::kHotspot});
      }
    }
  }
  const nn::ClassificationDataset train_set = extract_dataset(train_part);
  const nn::ClassificationDataset val_set = extract_dataset(val_part);
  train_on(train_set, val_set);
}

std::string CnnDetector::fingerprint() const {
  std::ostringstream os;
  os << "HSDLDET1 k=" << config_.feature.coeffs
     << " n=" << config_.feature.blocks_per_side
     << " nmpp=" << config_.feature.nm_per_px
     << " s1=" << model_.config().stage1_maps
     << " s2=" << model_.config().stage2_maps
     << " fc=" << model_.config().fc_nodes;
  return os.str();
}

void CnnDetector::save(const std::string& path) {
  // Fingerprint line, then the v2 parameter container; the whole bundle
  // is written atomically so a crash mid-save cannot clobber the
  // previous checkpoint.
  io::atomic_write_file(
      path, fingerprint() + "\n" + nn::serialize_params(model_.net().params()));
}

void CnnDetector::load(const std::string& path) {
  const std::string data = io::read_file(path);
  const std::size_t nl = data.find('\n');
  if (nl == std::string::npos)
    throw io::IoError("missing fingerprint line", data.size(), path);
  const std::string expected = fingerprint();
  const std::string_view got = std::string_view(data).substr(0, nl);
  HSDL_CHECK_MSG(got == expected, "checkpoint fingerprint mismatch: '"
                                      << got << "' vs expected '" << expected
                                      << "'");
  nn::deserialize_params(std::string_view(data).substr(nl + 1),
                         model_.net().params(), path);
  quantized_.reset();  // calibrated against the previous weights
  use_quantized_ = false;
}

void CnnDetector::update_online(
    std::span<const layout::LabeledClip> new_clips,
    std::size_t iters_per_clip) {
  HSDL_CHECK(!new_clips.empty());
  const nn::ClassificationDataset fresh = extract_dataset(new_clips);
  MgdConfig cfg = config_.biased.finetune;
  cfg.epsilon = 0.0;
  cfg.max_iters = std::max<std::size_t>(1, iters_per_clip *
                                               new_clips.size());
  cfg.batch = std::min<std::size_t>(cfg.batch, fresh.size());
  cfg.validate_every = cfg.max_iters;  // single terminal validation
  cfg.patience = 1;
  // Single-class update streams can't use balanced sampling.
  cfg.balanced_batches = fresh.count_label(kHotspotIndex) > 0 &&
                         fresh.count_label(kNonHotspotIndex) > 0;
  MgdTrainer trainer(cfg);
  trainer.train(model_, fresh, fresh, rng_);
  quantized_.reset();  // calibrated against the pre-update weights
  use_quantized_ = false;
}

bool CnnDetector::predict(const layout::Clip& clip) const {
  return is_flagged(predict_probability(clip), decision_threshold());
}

double CnnDetector::predict_probability(const layout::Clip& clip) const {
  std::vector<std::size_t> shape = model_.input_shape();
  shape.insert(shape.begin(), 1);
  if (runtime::reference_mode()) {
    // Oracle path: the original allocating pipeline, end to end.
    fte::FeatureTensor ft = extractor_.extract(clip);
    const nn::Tensor x = nn::Tensor::from_data(shape, std::move(ft.data));
    const nn::Tensor probs = score(x);
    return static_cast<double>(probs.at(0, kHotspotIndex));
  }
  // Serving fast path: per-thread input tensor and workspace arena, so a
  // window prediction allocates nothing once warm. The arena-backed
  // forward runs the same kernels as score(); only buffer reuse differs.
  thread_local nn::Tensor x;
  thread_local nn::WorkspaceArena arena;
  if (x.shape() != shape) x = nn::Tensor(shape);
  extractor_.extract_into(clip, std::span<float>(x.data(), x.numel()));
  nn::Tensor probs = score_batch(x, arena);
  const double p = static_cast<double>(probs.at(0, kHotspotIndex));
  arena.recycle(std::move(probs));
  return p;
}

std::vector<double> CnnDetector::predict_probabilities(
    std::span<const layout::Clip> clips) const {
  std::vector<double> out(clips.size());
  constexpr std::size_t kChunk = 64;
  const std::size_t feat = config_.feature.coeffs *
                           config_.feature.blocks_per_side *
                           config_.feature.blocks_per_side;
  const std::vector<std::size_t> shape = model_.input_shape();
  for (std::size_t start = 0; start < clips.size(); start += kChunk) {
    const std::size_t end = std::min(start + kChunk, clips.size());
    const std::size_t n = end - start;
    const std::vector<fte::FeatureTensor> fts =
        extractor_.extract_batch(clips.subspan(start, n));
    nn::Tensor x({n, shape[0], shape[1], shape[2]});
    for (std::size_t i = 0; i < n; ++i)
      std::copy(fts[i].data.begin(), fts[i].data.end(),
                x.data() + i * feat);
    const nn::Tensor probs = score(x);
    for (std::size_t i = 0; i < n; ++i)
      out[start + i] = static_cast<double>(probs.at(i, kHotspotIndex));
  }
  return out;
}

DetectorEval CnnDetector::evaluate(
    std::span<const layout::LabeledClip> test_clips) const {
  // Batched evaluation routed through a local inference engine: the same
  // extract-overlapped-with-forward pipeline production scanning uses,
  // with bitwise identical probabilities (DESIGN.md §11).
  DetectorEval eval;
  WallTimer timer;
  InferenceEngine engine(*this);
  const std::vector<double> probs = engine.score_labeled(test_clips);
  engine.shutdown();
  for (std::size_t i = 0; i < test_clips.size(); ++i) {
    const bool predicted = is_flagged(probs[i], decision_threshold());
    eval.confusion.add(label_index(test_clips[i].label) == kHotspotIndex,
                       predicted);
  }
  eval.eval_seconds = timer.seconds();
  return eval;
}

// -- boosting baselines -------------------------------------------------------

AdaBoostDensityDetector::AdaBoostDensityDetector(
    const features::DensityConfig& feature, const BoostDetectorConfig& config)
    : feature_(feature), config_(config), boost_(config.boost) {}

AdaBoostDensityDetector::AdaBoostDensityDetector()
    : AdaBoostDensityDetector(features::DensityConfig{}, [] {
        BoostDetectorConfig c;
        c.boost.scheme = baselines::WeightScheme::kExponential;
        c.boost.rounds = 100;
        return c;
      }()) {}

void AdaBoostDensityDetector::train(
    std::span<const layout::LabeledClip> train_clips) {
  HSDL_CHECK(!train_clips.empty());
  const std::size_t dim = feature_.grid_n * feature_.grid_n;
  nn::ClassificationDataset data({dim});
  for (const layout::LabeledClip& lc : train_clips)
    data.add(features::density_feature(lc.clip, feature_),
             label_index(lc.label));
  boost_ = baselines::BoostedStumps(config_.boost);
  boost_.train(data);
  run_online_refinement(boost_, data, config_);
  if (config_.tune_bias) config_.bias = boost_.tune_bias_balanced(data);
}

bool AdaBoostDensityDetector::predict(const layout::Clip& clip) const {
  const std::vector<float> x = features::density_feature(clip, feature_);
  return boost_.predict(x.data(), config_.bias);
}

double AdaBoostDensityDetector::predict_probability(
    const layout::Clip& clip) const {
  const std::vector<float> x = features::density_feature(clip, feature_);
  // Logistic squash of the bias-shifted margin: > 0.5 iff predict() fires.
  return 1.0 / (1.0 + std::exp(-(boost_.score(x.data()) - config_.bias)));
}

SmoothBoostCcsDetector::SmoothBoostCcsDetector(
    const features::CcsConfig& feature, const BoostDetectorConfig& config)
    : feature_(feature), config_(config), boost_(config.boost) {}

SmoothBoostCcsDetector::SmoothBoostCcsDetector()
    : SmoothBoostCcsDetector(features::CcsConfig{}, [] {
        BoostDetectorConfig c;
        c.boost.scheme = baselines::WeightScheme::kSmoothCapped;
        c.boost.rounds = 120;
        c.online_passes = 1;  // the online learning scheme of [5]
        return c;
      }()) {}

void SmoothBoostCcsDetector::train(
    std::span<const layout::LabeledClip> train_clips) {
  HSDL_CHECK(!train_clips.empty());
  const std::size_t dim = feature_.circles * feature_.samples_per_circle;
  nn::ClassificationDataset data({dim});
  for (const layout::LabeledClip& lc : train_clips)
    data.add(features::ccs_feature(lc.clip, feature_), label_index(lc.label));
  boost_ = baselines::BoostedStumps(config_.boost);
  boost_.train(data);
  run_online_refinement(boost_, data, config_);
  if (config_.tune_bias) config_.bias = boost_.tune_bias_balanced(data);
}

bool SmoothBoostCcsDetector::predict(const layout::Clip& clip) const {
  const std::vector<float> x = features::ccs_feature(clip, feature_);
  return boost_.predict(x.data(), config_.bias);
}

double SmoothBoostCcsDetector::predict_probability(const layout::Clip& clip) const {
  const std::vector<float> x = features::ccs_feature(clip, feature_);
  return 1.0 / (1.0 + std::exp(-(boost_.score(x.data()) - config_.bias)));
}

}  // namespace hsdl::hotspot

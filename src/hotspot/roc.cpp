#include "hotspot/roc.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hsdl::hotspot {
namespace {

/// p(hotspot) for every sample, computed in chunks.
std::vector<double> hotspot_probabilities(
    HotspotCnn& model, const nn::ClassificationDataset& data) {
  std::vector<double> probs;
  probs.reserve(data.size());
  constexpr std::size_t kChunk = 128;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < data.size(); start += kChunk) {
    const std::size_t end = std::min(start + kChunk, data.size());
    idx.clear();
    for (std::size_t i = start; i < end; ++i) idx.push_back(i);
    const nn::Tensor p = model.probabilities(data.gather(idx));
    for (std::size_t i = 0; i < idx.size(); ++i)
      probs.push_back(static_cast<double>(p.at(i, kHotspotIndex)));
  }
  return probs;
}

Confusion confusion_at(const std::vector<double>& probs,
                       const nn::ClassificationDataset& data,
                       double threshold) {
  Confusion c;
  for (std::size_t i = 0; i < data.size(); ++i)
    c.add(data.label(i) == kHotspotIndex, probs[i] > threshold);
  return c;
}

}  // namespace

std::vector<RocPoint> roc_curve(HotspotCnn& model,
                                const nn::ClassificationDataset& data,
                                const std::vector<double>& shifts) {
  HSDL_CHECK(!data.empty());
  const std::vector<double> probs = hotspot_probabilities(model, data);
  std::vector<RocPoint> out;
  out.reserve(shifts.size());
  for (double shift : shifts) {
    const Confusion c = confusion_at(probs, data, 0.5 - shift);
    RocPoint p;
    p.shift = shift;
    p.accuracy = c.accuracy();
    p.false_alarms = c.false_alarms();
    const auto nhs = static_cast<double>(c.fp + c.tn);
    p.fa_rate = nhs > 0 ? static_cast<double>(c.fp) / nhs : 0.0;
    out.push_back(p);
  }
  return out;
}

double roc_auc(HotspotCnn& model, const nn::ClassificationDataset& data,
               std::size_t sweep_points) {
  HSDL_CHECK(sweep_points >= 2);
  std::vector<double> shifts(sweep_points);
  // Shift from -0.5 (threshold 1: nothing flagged) to +0.5 (threshold 0:
  // everything flagged) covers the full curve.
  for (std::size_t i = 0; i < sweep_points; ++i)
    shifts[i] = -0.5 + static_cast<double>(i) /
                           static_cast<double>(sweep_points - 1);
  auto curve = roc_curve(model, data, shifts);
  std::sort(curve.begin(), curve.end(),
            [](const RocPoint& a, const RocPoint& b) {
              return a.fa_rate < b.fa_rate;
            });
  double auc = 0.0;
  double prev_x = 0.0, prev_y = 0.0;
  for (const RocPoint& p : curve) {
    auc += (p.fa_rate - prev_x) * 0.5 * (p.accuracy + prev_y);
    prev_x = p.fa_rate;
    prev_y = p.accuracy;
  }
  auc += (1.0 - prev_x) * 0.5 * (1.0 + prev_y);
  return auc;
}

}  // namespace hsdl::hotspot

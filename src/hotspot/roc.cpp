#include "hotspot/roc.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hsdl::hotspot {
namespace {

/// p(hotspot) for every sample, computed in contiguous chunks (one
/// gather + one batched forward per chunk).
std::vector<double> hotspot_probabilities(
    HotspotCnn& model, const nn::ClassificationDataset& data) {
  std::vector<double> probs;
  probs.reserve(data.size());
  constexpr std::size_t kChunk = 128;
  for (std::size_t start = 0; start < data.size(); start += kChunk) {
    const std::size_t end = std::min(start + kChunk, data.size());
    const nn::Tensor p = model.probabilities(data.gather(start, end));
    for (std::size_t i = start; i < end; ++i)
      probs.push_back(static_cast<double>(p.at(i - start, kHotspotIndex)));
  }
  return probs;
}

Confusion confusion_at(const std::vector<double>& probs,
                       const std::vector<bool>& is_hotspot,
                       double threshold) {
  Confusion c;
  for (std::size_t i = 0; i < probs.size(); ++i)
    c.add(is_hotspot[i], is_flagged(probs[i], threshold));
  return c;
}

std::vector<RocPoint> sweep(const std::vector<double>& probs,
                            const std::vector<bool>& is_hotspot,
                            const std::vector<double>& shifts) {
  std::vector<RocPoint> out;
  out.reserve(shifts.size());
  for (double shift : shifts) {
    const Confusion c = confusion_at(probs, is_hotspot, 0.5 - shift);
    RocPoint p;
    p.shift = shift;
    p.accuracy = c.accuracy();
    p.false_alarms = c.false_alarms();
    const auto nhs = static_cast<double>(c.fp + c.tn);
    p.fa_rate = nhs > 0 ? static_cast<double>(c.fp) / nhs : 0.0;
    out.push_back(p);
  }
  return out;
}

}  // namespace

std::vector<RocPoint> roc_curve(HotspotCnn& model,
                                const nn::ClassificationDataset& data,
                                const std::vector<double>& shifts) {
  HSDL_CHECK(!data.empty());
  const std::vector<double> probs = hotspot_probabilities(model, data);
  std::vector<bool> is_hotspot(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    is_hotspot[i] = data.label(i) == kHotspotIndex;
  return sweep(probs, is_hotspot, shifts);
}

std::vector<RocPoint> roc_curve(const Detector& detector,
                                std::span<const layout::LabeledClip> clips,
                                const std::vector<double>& shifts) {
  HSDL_CHECK(!clips.empty());
  std::vector<layout::Clip> plain;
  plain.reserve(clips.size());
  std::vector<bool> is_hotspot;
  is_hotspot.reserve(clips.size());
  for (const layout::LabeledClip& lc : clips) {
    plain.push_back(lc.clip);
    is_hotspot.push_back(lc.label == layout::HotspotLabel::kHotspot);
  }
  const std::vector<double> probs = detector.predict_probabilities(plain);
  return sweep(probs, is_hotspot, shifts);
}

double roc_auc(HotspotCnn& model, const nn::ClassificationDataset& data,
               std::size_t sweep_points) {
  HSDL_CHECK(sweep_points >= 2);
  std::vector<double> shifts(sweep_points);
  // Shift from -0.5 (threshold 1: nothing flagged) to +0.5 (threshold 0:
  // everything flagged) covers the full curve.
  for (std::size_t i = 0; i < sweep_points; ++i)
    shifts[i] = -0.5 + static_cast<double>(i) /
                           static_cast<double>(sweep_points - 1);
  auto curve = roc_curve(model, data, shifts);
  std::sort(curve.begin(), curve.end(),
            [](const RocPoint& a, const RocPoint& b) {
              return a.fa_rate < b.fa_rate;
            });
  double auc = 0.0;
  double prev_x = 0.0, prev_y = 0.0;
  for (const RocPoint& p : curve) {
    auc += (p.fa_rate - prev_x) * 0.5 * (p.accuracy + prev_y);
    prev_x = p.fa_rate;
    prev_y = p.accuracy;
  }
  auc += (1.0 - prev_x) * 0.5 * (1.0 + prev_y);
  return auc;
}

}  // namespace hsdl::hotspot

// Full training-state checkpoint container ("HSDLTS1\0").
//
// A TrainState freezes everything MgdTrainer needs to continue an
// interrupted run bit-for-bit: model params, the best-on-validation
// snapshot with its score and staleness counter, optimizer state (SGD
// velocity or Adam m/v/t), both RNG engines (batch sampler and the
// model's dropout stream, including the Box-Muller cache), the current
// learning rate, iteration counter, accumulated wall time, watchdog
// recovery count, the training curve so far, and an opaque `extra`
// payload orchestrators layer on top (BiasedLearner stores its round
// progress there, so one file checkpoints the whole Algorithm 2 chain).
//
// The wire format rides the common/io substrate: little-endian fields,
// a {magic, version, flags} header, bounds-guarded tensor records, and
// a whole-file CRC-32, so any bit flip or truncation is rejected with a
// positioned IoError instead of a silently wrong resume. File saves are
// atomic (temp + rename): a crash mid-checkpoint keeps the previous one.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "hotspot/biased.hpp"
#include "hotspot/trainer.hpp"
#include "nn/tensor.hpp"

namespace hsdl::hotspot {

/// TrainState container version written by serialize_train_state.
inline constexpr std::uint32_t kTrainStateVersion = 1;

struct TrainState {
  /// Config of the run that wrote the checkpoint. Resume validates it
  /// against the resuming trainer's config (checkpoint_path/every are
  /// excluded — they do not affect the math) and fails fast on any
  /// mismatch instead of continuing a subtly different run.
  MgdConfig config;

  std::uint64_t iter = 0;       ///< completed iterations
  bool finished = false;        ///< run reached its stop criterion
  double learning_rate = 0.0;   ///< current LR (decay + backoffs applied)
  double elapsed_seconds = 0.0; ///< wall time accumulated so far
  std::uint64_t recoveries = 0; ///< watchdog rollbacks taken

  double best_score = -1.0;     ///< best validation balanced accuracy
  std::uint64_t stale = 0;      ///< validations since the best improved

  std::vector<TrainPoint> history;

  std::vector<nn::Tensor> params;       ///< live model params
  std::vector<nn::Tensor> best_params;  ///< best-on-validation snapshot

  /// Optimizer buffers in param order: SGD velocity (empty when
  /// momentum-free) or Adam [m, v] interleaved; opt_step_count is
  /// Adam's bias-correction t.
  std::vector<nn::Tensor> opt_slots;
  std::uint64_t opt_step_count = 0;

  Rng::State sampler_rng{};  ///< batch-sampling stream
  Rng::State model_rng{};    ///< model (dropout) stream

  /// Opaque orchestrator payload (see serialize_biased_progress).
  std::string extra;
};

std::string serialize_train_state(const TrainState& state);
/// Throws io::IoError (carrying the byte offset and `context`) on any
/// structural damage, checksum mismatch or trailing data.
TrainState deserialize_train_state(std::string_view data,
                                   const std::string& context = "train-state");

/// Atomic: writes "<path>.tmp" then renames over `path`.
void save_train_state_file(const std::string& path, const TrainState& state);
TrainState load_train_state_file(const std::string& path);

/// BiasedLearner progress embedded as TrainState::extra: the rounds
/// completed so far (with their results), the index of the round the
/// checkpoint was taken in, and that round's exact epsilon (stored, not
/// recomputed, so the accumulated floating-point value round-trips).
struct BiasedProgress {
  std::uint64_t round = 0;
  double epsilon = 0.0;
  std::vector<BiasedRound> completed;
};

std::string serialize_biased_progress(const BiasedProgress& progress);
BiasedProgress deserialize_biased_progress(std::string_view data);

}  // namespace hsdl::hotspot

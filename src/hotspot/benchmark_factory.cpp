#include "hotspot/benchmark_factory.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "litho/labeler.hpp"

namespace hsdl::hotspot {
namespace {

std::size_t scaled(std::size_t paper_count, double scale) {
  const auto v = static_cast<std::size_t>(
      static_cast<double>(paper_count) * scale);
  return std::max<std::size_t>(v, 8);
}

BenchmarkSpec make_spec(const std::string& name, std::size_t train_hs,
                        std::size_t train_nhs, std::size_t test_hs,
                        std::size_t test_nhs, double stress, double scale,
                        std::uint64_t seed) {
  BenchmarkSpec spec;
  spec.name = name;
  spec.train_hotspots = scaled(train_hs, scale);
  spec.train_non_hotspots = scaled(train_nhs, scale);
  spec.test_hotspots = scaled(test_hs, scale);
  spec.test_non_hotspots = scaled(test_nhs, scale);
  spec.generator.stress = stress;
  spec.seed = seed;
  return spec;
}

}  // namespace

// Counts are Table 2's columns; stress reproduces each testcase's hotspot
// prevalence (ICCAD is hotspot-poor, Industry1 hotspot-rich).
BenchmarkSpec iccad_spec(double scale) {
  return make_spec("ICCAD", 1204, 17096, 2524, 13503, 0.30, scale, 0xD0C1);
}
BenchmarkSpec industry1_spec(double scale) {
  return make_spec("Industry1", 34281, 15635, 17157, 7801, 0.72, scale,
                   0xD0C2);
}
BenchmarkSpec industry2_spec(double scale) {
  return make_spec("Industry2", 15197, 48758, 7520, 24457, 0.45, scale,
                   0xD0C3);
}
BenchmarkSpec industry3_spec(double scale) {
  return make_spec("Industry3", 24776, 49315, 12228, 24817, 0.55, scale,
                   0xD0C4);
}

std::vector<BenchmarkSpec> all_specs(double scale) {
  return {iccad_spec(scale), industry1_spec(scale), industry2_spec(scale),
          industry3_spec(scale)};
}

layout::BenchmarkData build_benchmark(const BenchmarkSpec& spec) {
  HSDL_CHECK(!spec.name.empty());
  layout::ClipGenerator generator(spec.generator, spec.seed);
  const litho::HotspotLabeler labeler(spec.litho);

  layout::BenchmarkData data;
  data.name = spec.name;

  // Quotas per (split, class) cell; clips stream from the generator into
  // the first unfilled matching cell so train and test never share a clip.
  struct Cell {
    std::vector<layout::LabeledClip>* sink;
    layout::HotspotLabel label;
    std::size_t quota;
    std::size_t filled = 0;
  };
  Cell cells[] = {
      {&data.train, layout::HotspotLabel::kHotspot, spec.train_hotspots},
      {&data.train, layout::HotspotLabel::kNonHotspot,
       spec.train_non_hotspots},
      {&data.test, layout::HotspotLabel::kHotspot, spec.test_hotspots},
      {&data.test, layout::HotspotLabel::kNonHotspot,
       spec.test_non_hotspots},
  };

  const std::size_t total = spec.train_hotspots + spec.train_non_hotspots +
                            spec.test_hotspots + spec.test_non_hotspots;
  const std::size_t attempt_budget = 60 * total;
  std::size_t attempts = 0;
  std::size_t remaining = total;
  while (remaining > 0) {
    HSDL_CHECK_MSG(attempts++ < attempt_budget,
                   "benchmark '" << spec.name
                                 << "': generator cannot meet class quotas "
                                    "(hotspot rate too skewed for stress="
                                 << spec.generator.stress << ")");
    layout::LabeledClip lc;
    lc.clip = generator.generate();
    lc.label = labeler.label(lc.clip);
    for (Cell& cell : cells) {
      if (cell.label == lc.label && cell.filled < cell.quota) {
        cell.sink->push_back(std::move(lc));
        ++cell.filled;
        --remaining;
        break;
      }
    }
  }
  HSDL_LOG(kInfo) << "benchmark " << spec.name << ": " << data.train.size()
                  << " train / " << data.test.size() << " test clips in "
                  << attempts << " generator draws";
  return data;
}

}  // namespace hsdl::hotspot

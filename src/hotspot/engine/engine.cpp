#include "hotspot/engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace hsdl::hotspot {
namespace {

/// Emits `name` once per distinct trace id among the batch's requests —
/// a sampled request sees exactly one extract/forward span per batch it
/// rode in, tagged with its own id — and once untagged when no request
/// was sampled (preserving the PR 4 stage spans for whole-run traces).
/// Batches are small (<= max_batch), so the quadratic dedup is free
/// next to the forward pass it annotates.
template <typename RequestVec>
void emit_batch_spans(const char* name, std::uint64_t begin_ns,
                      std::uint64_t end_ns, const RequestVec& reqs) {
  if (!trace::enabled()) return;
  bool any = false;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const std::uint64_t id = reqs[i].trace_id;
    if (id == 0) continue;
    bool dup = false;
    for (std::size_t j = 0; j < i && !dup; ++j) dup = reqs[j].trace_id == id;
    if (dup) continue;
    trace::emit(name, begin_ns, end_ns, id);
    any = true;
  }
  if (!any) trace::emit(name, begin_ns, end_ns, 0);
}

const char* reason_name(FlushReason r) {
  switch (r) {
    case FlushReason::kFull:
      return "full";
    case FlushReason::kTimeout:
      return "timeout";
    case FlushReason::kDrain:
      return "drain";
    case FlushReason::kInline:
      return "inline";
  }
  return "unknown";
}

}  // namespace

void EngineConfig::validate() const {
  HSDL_CHECK_MSG(max_batch > 0, "engine config: max_batch must be positive");
  HSDL_CHECK_MSG(max_wait_ms >= 0.0,
                 "engine config: max_wait_ms must be non-negative, got "
                     << max_wait_ms);
  HSDL_CHECK_MSG(queue_capacity >= max_batch,
                 "engine config: queue_capacity ("
                     << queue_capacity
                     << ") must hold at least one full batch (max_batch "
                     << max_batch << ")");
}

InferenceEngine::InferenceEngine(const CnnDetector& detector,
                                 const EngineConfig& config)
    : config_(config),
      detector_(&detector),
      telemetry_(config.telemetry_path) {
  config_.validate();
  HSDL_CHECK_MSG(!config_.quantized || detector.quantized_net() != nullptr,
                 "engine config: quantized serving requires a quantized "
                 "detector (call CnnDetector::quantize() first)");
  const fte::FeatureTensorConfig& f = detector.extractor().config();
  feat_ = f.coeffs * f.blocks_per_side * f.blocks_per_side;
  in_shape_ = detector.model().input_shape();
  for (Slab& s : slabs_) {
    s.storage.reserve(config_.max_batch * feat_);
    s.requests.reserve(config_.max_batch);
  }
  // Single-worker collapse: with one pool worker the batcher/forward
  // threads would only time-slice the caller's core, so don't spawn
  // them; score() runs the same slab/arena code synchronously instead.
  inline_mode_ = config_.inline_when_serial && num_threads() <= 1;
  if (!inline_mode_) {
    batcher_ = std::thread([this] { batcher_loop(); });
    forward_ = std::thread([this] { forward_loop(); });
  }
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::vector<double> InferenceEngine::score(
    std::span<const layout::Clip> clips,
    std::chrono::steady_clock::time_point deadline, std::uint64_t trace_id) {
  std::vector<double> out(clips.size());
  score_into(clips, out, deadline, trace_id);
  return out;
}

bool InferenceEngine::enqueue(const layout::Clip* clip, double* out,
                              Completion* done,
                              std::chrono::steady_clock::time_point deadline,
                              std::uint64_t trace_id) {
  // The trace-clock read happens only for sampled requests while
  // tracing is on, so the disarmed submission path stays clock-free.
  const std::uint64_t enqueue_ns =
      trace_id != 0 && trace::enabled() ? trace::timestamp_ns() : 0;
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    space_cv_.wait(lk, [&] {
      return stopping_ || queue_.size() < config_.queue_capacity;
    });
    if (stopping_) return false;
    queue_.push_back(Request{clip, out, done,
                             std::chrono::steady_clock::now(), deadline,
                             trace_id, enqueue_ns});
    ++requests_;
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
    if (metrics::enabled()) {
      static metrics::Gauge& depth = metrics::gauge("engine.queue_depth");
      depth.set(static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_one();
  return true;
}

void InferenceEngine::wait_and_check(Completion& done, std::size_t submitted,
                                     std::size_t total) {
  // Requests that never made it into the queue (engine shut down
  // mid-submission) will not be completed by the drain; account for
  // them up front, then wait for the submitted ones — the drain
  // guarantees those complete — so `done` is never unwound while the
  // forward path still points at it.
  std::size_t expired = 0;
  {
    std::unique_lock<std::mutex> lk(done.m);
    done.remaining -= total - submitted;
    done.cv.wait(lk, [&] { return done.remaining == 0; });
    expired = done.expired;
  }
  HSDL_CHECK_MSG(submitted == total, "score on a shut-down engine");
  if (expired > 0)
    throw DeadlineExceeded("deadline expired for " + std::to_string(expired) +
                           " of " + std::to_string(total) +
                           " queued clips (dropped without a forward pass)");
}

void InferenceEngine::score_into(
    std::span<const layout::Clip> clips, std::span<double> out,
    std::chrono::steady_clock::time_point deadline, std::uint64_t trace_id) {
  HSDL_CHECK_MSG(out.size() == clips.size(),
                 "score_into: " << clips.size() << " clips vs " << out.size()
                                << " result slots");
  HSDL_CHECK_MSG(!shut_down_.load(std::memory_order_relaxed),
                 "score on a shut-down engine");
  if (clips.empty()) return;
  // Chaos site: a simulated allocation failure on the submission path
  // (caller thread, so the bad_alloc unwinds to the caller — never into
  // the pipeline threads, which must not throw).
  if (fault::armed()) fault::alloc_guard("engine.score.alloc");
  if (deadline != kNoDeadline && std::chrono::steady_clock::now() >= deadline)
    throw DeadlineExceeded("deadline already expired at submission");
  if (inline_mode_) {
    score_inline(clips.data(), sizeof(layout::Clip), clips.size(),
                 out.data(), trace_id);
    return;
  }
  Completion done;
  done.remaining = clips.size();
  std::size_t submitted = 0;
  while (submitted < clips.size() &&
         enqueue(&clips[submitted], &out[submitted], &done, deadline,
                 trace_id))
    ++submitted;
  wait_and_check(done, submitted, clips.size());
}

std::vector<double> InferenceEngine::score_labeled(
    std::span<const layout::LabeledClip> clips) {
  HSDL_CHECK_MSG(!shut_down_.load(std::memory_order_relaxed),
                 "score on a shut-down engine");
  std::vector<double> out(clips.size());
  if (clips.empty()) return out;
  if (inline_mode_) {
    score_inline(&clips[0].clip, sizeof(layout::LabeledClip), clips.size(),
                 out.data(), 0);
    return out;
  }
  Completion done;
  done.remaining = clips.size();
  std::size_t submitted = 0;
  while (submitted < clips.size() &&
         enqueue(&clips[submitted].clip, &out[submitted], &done, kNoDeadline,
                 0))
    ++submitted;
  wait_and_check(done, submitted, clips.size());
  return out;
}

void InferenceEngine::expire_request(const Request& r) {
  deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  if (r.done == nullptr) return;
  // Same notify-under-the-lock discipline as run_batch: the waiter owns
  // the Completion on its stack and frees it the moment wait() returns.
  std::lock_guard<std::mutex> lk(r.done->m);
  ++r.done->expired;
  if (--r.done->remaining == 0) r.done->cv.notify_all();
}

void InferenceEngine::score_inline(const layout::Clip* first,
                                   std::size_t clip_stride, std::size_t n,
                                   double* out, std::uint64_t trace_id) {
  const auto* base = reinterpret_cast<const unsigned char*>(first);
  std::lock_guard<std::mutex> lk(inline_mu_);
  Slab* slab = &slabs_[0];
  for (std::size_t done = 0; done < n;) {
    const std::size_t count = std::min(config_.max_batch, n - done);
    slab->reason = FlushReason::kInline;
    slab->requests.clear();
    for (std::size_t i = 0; i < count; ++i) {
      const auto* clip = reinterpret_cast<const layout::Clip*>(
          base + (done + i) * clip_stride);
      slab->requests.push_back(
          Request{clip, out + done + i, nullptr, {}, {}, trace_id, 0});
    }
    slab->storage.resize(count * feat_);
    {
      const std::uint64_t begin_ns =
          trace::enabled() ? trace::timestamp_ns() : 0;
      WallTimer timer;
      const fte::FeatureTensorExtractor& ex = detector_->extractor();
      for (std::size_t i = 0; i < count; ++i)
        ex.extract_into(*slab->requests[i].clip,
                        std::span<float>(slab->storage.data() + i * feat_,
                                         feat_));
      slab->extract_seconds = timer.seconds();
      emit_batch_spans("engine.extract", begin_ns, trace::timestamp_ns(),
                       slab->requests);
    }
    run_batch(slab);
    done += count;
  }
  std::lock_guard<std::mutex> qlk(queue_mu_);
  requests_ += n;
}

void InferenceEngine::shutdown() {
  if (shut_down_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  if (forward_.joinable()) forward_.join();
}

InferenceEngine::Slab* InferenceEngine::acquire_free_slab() {
  std::unique_lock<std::mutex> lk(pipe_mu_);
  slab_cv_.wait(lk, [&] { return slabs_[0].free || slabs_[1].free; });
  Slab* s = slabs_[0].free ? &slabs_[0] : &slabs_[1];
  s->free = false;
  return s;
}

void InferenceEngine::release_slab(Slab* slab) {
  {
    std::lock_guard<std::mutex> lk(pipe_mu_);
    slab->free = true;
  }
  slab_cv_.notify_one();
}

void InferenceEngine::dispatch(Slab* slab) {
  {
    std::lock_guard<std::mutex> lk(pipe_mu_);
    mailbox_.push_back(slab);
  }
  mail_cv_.notify_one();
}

void InferenceEngine::batcher_loop() {
  std::vector<Request> pending;
  pending.reserve(config_.max_batch);
  const auto wait =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(config_.max_wait_ms));
  for (;;) {
    FlushReason reason = FlushReason::kFull;
    double batch_form_seconds = 0.0;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping and fully drained
      // Batch formation clock: from "work is available" to "batch
      // dispatched" — the time the flush policy spent collecting.
      WallTimer form_timer;
      // Adaptive micro-batching: keep collecting until the batch is
      // full or the oldest request in it has waited max_wait_ms. The
      // deadline is anchored to that request's *enqueue* time, not to
      // when the batcher got around to it — if the batcher was busy
      // extracting the previous batch when the request arrived, the
      // remaining wait shrinks accordingly (and a request that already
      // waited max_wait_ms flushes immediately).
      const auto deadline = queue_.front().enqueued + wait;
      for (;;) {
        // Pop into the batch, dropping any request whose caller
        // deadline has already passed — it never occupies a forward
        // pass; its waiter gets DeadlineExceeded instead.
        const auto now = std::chrono::steady_clock::now();
        while (!queue_.empty() && pending.size() < config_.max_batch) {
          const Request r = queue_.front();
          queue_.pop_front();
          if (metrics::enabled()) {
            static metrics::Histogram& qwait = metrics::histogram(
                "engine.queue_wait_seconds",
                {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
            qwait.record(
                std::chrono::duration<double>(now - r.enqueued).count());
          }
          // The queue-wait span closes here — the request leaves the
          // queue — whether it proceeds into a batch or expires.
          if (r.enqueue_ns != 0)
            trace::emit("engine.queue_wait", r.enqueue_ns,
                        trace::timestamp_ns(), r.trace_id);
          if (r.deadline <= now) {
            expire_request(r);
            continue;
          }
          pending.push_back(r);
        }
        space_cv_.notify_all();
        if (pending.size() >= config_.max_batch) {
          reason = FlushReason::kFull;
          break;
        }
        if (stopping_) {
          reason = FlushReason::kDrain;
          break;
        }
        if (!queue_cv_.wait_until(lk, deadline, [&] {
              return stopping_ || !queue_.empty();
            })) {
          reason = FlushReason::kTimeout;
          break;
        }
      }
      batch_form_seconds = form_timer.seconds();
    }
    if (metrics::enabled()) {
      static metrics::Histogram& form = metrics::histogram(
          "engine.batch_form_seconds", {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
      form.record(batch_form_seconds);
    }
    // Stage 1: extract feature tensors straight into the slab, parallel
    // over clips (disjoint slices; the arena is never touched here).
    Slab* slab = acquire_free_slab();
    slab->reason = reason;
    slab->requests.assign(pending.begin(), pending.end());
    pending.clear();
    const std::size_t n = slab->requests.size();
    slab->storage.resize(n * feat_);  // within reserved capacity: no alloc
    {
      const std::uint64_t begin_ns =
          trace::enabled() ? trace::timestamp_ns() : 0;
      WallTimer timer;
      const fte::FeatureTensorExtractor& ex = detector_->extractor();
      std::vector<float>& storage = slab->storage;
      const std::vector<Request>& reqs = slab->requests;
      parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          ex.extract_into(
              *reqs[i].clip,
              std::span<float>(storage.data() + i * feat_, feat_));
      });
      slab->extract_seconds = timer.seconds();
      emit_batch_spans("engine.extract", begin_ns, trace::timestamp_ns(),
                       slab->requests);
    }
    dispatch(slab);
  }
  {
    std::lock_guard<std::mutex> lk(pipe_mu_);
    forward_stop_ = true;
  }
  mail_cv_.notify_all();
}

void InferenceEngine::run_batch(Slab* slab) {
  const std::vector<std::size_t>& in = in_shape_;
  const std::size_t n = slab->requests.size();
  WallTimer timer;
  nn::Tensor probs;
  const std::uint64_t fwd_begin_ns =
      trace::enabled() ? trace::timestamp_ns() : 0;
  {
    // Stage 2: move the slab storage into a batch tensor (no copy),
    // run the arena-backed forward pass, move the storage back so the
    // slab keeps its capacity for the next batch.
    nn::Tensor x = nn::Tensor::from_data({n, in[0], in[1], in[2]},
                                         std::move(slab->storage));
    // score_batch routes to the active serving model: int8 when this
    // engine is pinned quantized (the server's degraded engine) or the
    // detector has its quantized net enabled, fp32 otherwise.
    probs = detector_->score_batch(
        x, arena_, config_.quantized || detector_->use_quantized());
    slab->storage = std::move(x.vec());
  }
  emit_batch_spans("engine.forward", fwd_begin_ns, trace::timestamp_ns(),
                   slab->requests);
  const double forward_seconds = timer.seconds();
  for (std::size_t i = 0; i < n; ++i) {
    double p = static_cast<double>(probs.at(i, kHotspotIndex));
    // Chaos site: corrupt a score to NaN. Value corruption, not a
    // throw — this runs on the forward thread, which must not unwind;
    // the serving layer detects the non-finite score and answers
    // kInternal without killing the session.
    if (fault::armed()) p = fault::corrupt_score("engine.nan", p);
    *slab->requests[i].out = p;
  }
  arena_.recycle(std::move(probs));

  batches_.fetch_add(1, std::memory_order_relaxed);
  switch (slab->reason) {
    case FlushReason::kFull:
      flush_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kTimeout:
      flush_timeout_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDrain:
      flush_drain_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kInline:
      inline_batches_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    arena_stats_ = arena_.stats();
  }
  if (metrics::enabled()) {
    static metrics::Counter& batches = metrics::counter("engine.batches");
    static metrics::Histogram& bsize = metrics::histogram(
        "engine.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
    static metrics::Histogram& ext = metrics::histogram(
        "engine.extract_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0});
    static metrics::Histogram& fwd = metrics::histogram(
        "engine.forward_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0});
    // Occupancy: what fraction of max_batch each forward pass carried.
    // A distribution centered low says the flush timeout, not batch
    // capacity, is shaping latency.
    static metrics::Histogram& fill = metrics::histogram(
        "engine.batch_fill", {0.125, 0.25, 0.5, 0.75, 1.0});
    batches.increment();
    bsize.record(static_cast<double>(n));
    fill.record(static_cast<double>(n) /
                static_cast<double>(config_.max_batch));
    ext.record(slab->extract_seconds);
    fwd.record(forward_seconds);
  }
  if (telemetry_.enabled()) {
    json::Value rec = json::Value::object();
    rec.set("event", "engine.batch");
    rec.set("batch", n);
    rec.set("reason", reason_name(slab->reason));
    rec.set("extract_seconds", slab->extract_seconds);
    rec.set("forward_seconds", forward_seconds);
    telemetry_.emit(rec);
  }
  // Results are in place; wake the waiters (inline batches have none —
  // the caller is this thread). Notify while still holding the
  // completion's mutex: the waiter owns the Completion on its stack and
  // destroys it the moment wait() returns, so an unlocked notify could
  // touch a condition variable that no longer exists.
  for (const Request& r : slab->requests) {
    if (r.done == nullptr) continue;
    std::lock_guard<std::mutex> lk(r.done->m);
    if (--r.done->remaining == 0) r.done->cv.notify_all();
  }
}

void InferenceEngine::forward_loop() {
  for (;;) {
    Slab* slab = nullptr;
    {
      std::unique_lock<std::mutex> lk(pipe_mu_);
      mail_cv_.wait(lk, [&] { return !mailbox_.empty() || forward_stop_; });
      if (mailbox_.empty()) break;
      slab = mailbox_.front();
      mailbox_.pop_front();
    }
    run_batch(slab);
    release_slab(slab);
  }
}

EngineStats InferenceEngine::stats() const {
  EngineStats s;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    s.requests = requests_;
    s.max_queue_depth = max_queue_depth_;
  }
  s.batches = batches_.load(std::memory_order_relaxed);
  s.flush_full = flush_full_.load(std::memory_order_relaxed);
  s.flush_timeout = flush_timeout_.load(std::memory_order_relaxed);
  s.flush_drain = flush_drain_.load(std::memory_order_relaxed);
  s.inline_batches = inline_batches_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s.arena_allocations = arena_stats_.allocations;
    s.arena_reuses = arena_stats_.reuses;
    s.arena_bytes_reserved = arena_stats_.bytes_reserved;
  }
  return s;
}

}  // namespace hsdl::hotspot

#include "hotspot/engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace hsdl::hotspot {
namespace {

const char* reason_name(FlushReason r) {
  switch (r) {
    case FlushReason::kFull:
      return "full";
    case FlushReason::kTimeout:
      return "timeout";
    case FlushReason::kDrain:
      return "drain";
  }
  return "unknown";
}

}  // namespace

void EngineConfig::validate() const {
  HSDL_CHECK_MSG(max_batch > 0, "engine config: max_batch must be positive");
  HSDL_CHECK_MSG(max_wait_ms >= 0.0,
                 "engine config: max_wait_ms must be non-negative, got "
                     << max_wait_ms);
  HSDL_CHECK_MSG(queue_capacity >= max_batch,
                 "engine config: queue_capacity ("
                     << queue_capacity
                     << ") must hold at least one full batch (max_batch "
                     << max_batch << ")");
}

InferenceEngine::InferenceEngine(const CnnDetector& detector,
                                 const EngineConfig& config)
    : config_(config),
      detector_(&detector),
      telemetry_(config.telemetry_path) {
  config_.validate();
  const fte::FeatureTensorConfig& f = detector.extractor().config();
  feat_ = f.coeffs * f.blocks_per_side * f.blocks_per_side;
  for (Slab& s : slabs_) {
    s.storage.reserve(config_.max_batch * feat_);
    s.requests.reserve(config_.max_batch);
  }
  batcher_ = std::thread([this] { batcher_loop(); });
  forward_ = std::thread([this] { forward_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::vector<double> InferenceEngine::score(
    std::span<const layout::Clip> clips) {
  std::vector<double> out(clips.size());
  score_into(clips, out);
  return out;
}

void InferenceEngine::enqueue(const layout::Clip* clip, double* out,
                              Completion* done) {
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    space_cv_.wait(lk, [&] {
      return stopping_ || queue_.size() < config_.queue_capacity;
    });
    HSDL_CHECK_MSG(!stopping_, "score on a shut-down engine");
    queue_.push_back(Request{clip, out, done});
    ++requests_;
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
    if (metrics::enabled()) {
      static metrics::Gauge& depth = metrics::gauge("engine.queue_depth");
      depth.set(static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_one();
}

void InferenceEngine::score_into(std::span<const layout::Clip> clips,
                                 std::span<double> out) {
  HSDL_CHECK_MSG(out.size() == clips.size(),
                 "score_into: " << clips.size() << " clips vs " << out.size()
                                << " result slots");
  HSDL_CHECK_MSG(!shut_down_.load(std::memory_order_relaxed),
                 "score on a shut-down engine");
  if (clips.empty()) return;
  Completion done;
  done.remaining = clips.size();
  for (std::size_t i = 0; i < clips.size(); ++i)
    enqueue(&clips[i], &out[i], &done);
  std::unique_lock<std::mutex> lk(done.m);
  done.cv.wait(lk, [&] { return done.remaining == 0; });
}

std::vector<double> InferenceEngine::score_labeled(
    std::span<const layout::LabeledClip> clips) {
  HSDL_CHECK_MSG(!shut_down_.load(std::memory_order_relaxed),
                 "score on a shut-down engine");
  std::vector<double> out(clips.size());
  if (clips.empty()) return out;
  Completion done;
  done.remaining = clips.size();
  for (std::size_t i = 0; i < clips.size(); ++i)
    enqueue(&clips[i].clip, &out[i], &done);
  std::unique_lock<std::mutex> lk(done.m);
  done.cv.wait(lk, [&] { return done.remaining == 0; });
  return out;
}

void InferenceEngine::shutdown() {
  if (shut_down_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  if (forward_.joinable()) forward_.join();
}

InferenceEngine::Slab* InferenceEngine::acquire_free_slab() {
  std::unique_lock<std::mutex> lk(pipe_mu_);
  slab_cv_.wait(lk, [&] { return slabs_[0].free || slabs_[1].free; });
  Slab* s = slabs_[0].free ? &slabs_[0] : &slabs_[1];
  s->free = false;
  return s;
}

void InferenceEngine::release_slab(Slab* slab) {
  {
    std::lock_guard<std::mutex> lk(pipe_mu_);
    slab->free = true;
  }
  slab_cv_.notify_one();
}

void InferenceEngine::dispatch(Slab* slab) {
  {
    std::lock_guard<std::mutex> lk(pipe_mu_);
    mailbox_.push_back(slab);
  }
  mail_cv_.notify_one();
}

void InferenceEngine::batcher_loop() {
  std::vector<Request> pending;
  pending.reserve(config_.max_batch);
  const auto wait =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(config_.max_wait_ms));
  for (;;) {
    FlushReason reason = FlushReason::kFull;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping and fully drained
      // Adaptive micro-batching: keep collecting until the batch is
      // full or the oldest request in it has waited max_wait_ms.
      const auto deadline = std::chrono::steady_clock::now() + wait;
      for (;;) {
        while (!queue_.empty() && pending.size() < config_.max_batch) {
          pending.push_back(queue_.front());
          queue_.pop_front();
        }
        space_cv_.notify_all();
        if (pending.size() >= config_.max_batch) {
          reason = FlushReason::kFull;
          break;
        }
        if (stopping_) {
          reason = FlushReason::kDrain;
          break;
        }
        if (!queue_cv_.wait_until(lk, deadline, [&] {
              return stopping_ || !queue_.empty();
            })) {
          reason = FlushReason::kTimeout;
          break;
        }
      }
    }
    // Stage 1: extract feature tensors straight into the slab, parallel
    // over clips (disjoint slices; the arena is never touched here).
    Slab* slab = acquire_free_slab();
    slab->reason = reason;
    slab->requests.assign(pending.begin(), pending.end());
    pending.clear();
    const std::size_t n = slab->requests.size();
    slab->storage.resize(n * feat_);  // within reserved capacity: no alloc
    {
      HSDL_TRACE_SPAN("engine.extract");
      WallTimer timer;
      const fte::FeatureTensorExtractor& ex = detector_->extractor();
      std::vector<float>& storage = slab->storage;
      const std::vector<Request>& reqs = slab->requests;
      parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          ex.extract_into(
              *reqs[i].clip,
              std::span<float>(storage.data() + i * feat_, feat_));
      });
      slab->extract_seconds = timer.seconds();
    }
    dispatch(slab);
  }
  {
    std::lock_guard<std::mutex> lk(pipe_mu_);
    forward_stop_ = true;
  }
  mail_cv_.notify_all();
}

void InferenceEngine::forward_loop() {
  const std::vector<std::size_t> in = detector_->model().input_shape();
  for (;;) {
    Slab* slab = nullptr;
    {
      std::unique_lock<std::mutex> lk(pipe_mu_);
      mail_cv_.wait(lk, [&] { return !mailbox_.empty() || forward_stop_; });
      if (mailbox_.empty()) break;
      slab = mailbox_.front();
      mailbox_.pop_front();
    }
    const std::size_t n = slab->requests.size();
    WallTimer timer;
    nn::Tensor probs;
    {
      HSDL_TRACE_SPAN("engine.forward");
      // Stage 2: move the slab storage into a batch tensor (no copy),
      // run the arena-backed forward pass, move the storage back so the
      // slab keeps its capacity for the next batch.
      nn::Tensor x = nn::Tensor::from_data({n, in[0], in[1], in[2]},
                                           std::move(slab->storage));
      // score_batch routes to the active serving model (int8 when the
      // detector has a quantized net enabled, fp32 otherwise).
      probs = detector_->score_batch(x, arena_);
      slab->storage = std::move(x.vec());
    }
    const double forward_seconds = timer.seconds();
    for (std::size_t i = 0; i < n; ++i)
      *slab->requests[i].out =
          static_cast<double>(probs.at(i, kHotspotIndex));
    arena_.recycle(std::move(probs));

    batches_.fetch_add(1, std::memory_order_relaxed);
    switch (slab->reason) {
      case FlushReason::kFull:
        flush_full_.fetch_add(1, std::memory_order_relaxed);
        break;
      case FlushReason::kTimeout:
        flush_timeout_.fetch_add(1, std::memory_order_relaxed);
        break;
      case FlushReason::kDrain:
        flush_drain_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      arena_stats_ = arena_.stats();
    }
    if (metrics::enabled()) {
      static metrics::Counter& batches = metrics::counter("engine.batches");
      static metrics::Histogram& bsize = metrics::histogram(
          "engine.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
      static metrics::Histogram& ext = metrics::histogram(
          "engine.extract_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0});
      static metrics::Histogram& fwd = metrics::histogram(
          "engine.forward_seconds", {1e-4, 1e-3, 1e-2, 1e-1, 1.0});
      batches.increment();
      bsize.record(static_cast<double>(n));
      ext.record(slab->extract_seconds);
      fwd.record(forward_seconds);
    }
    if (telemetry_.enabled()) {
      json::Value rec = json::Value::object();
      rec.set("event", "engine.batch");
      rec.set("batch", n);
      rec.set("reason", reason_name(slab->reason));
      rec.set("extract_seconds", slab->extract_seconds);
      rec.set("forward_seconds", forward_seconds);
      telemetry_.emit(rec);
    }
    // Results are in place; wake the waiters, then recycle the slab.
    for (const Request& r : slab->requests) {
      std::unique_lock<std::mutex> lk(r.done->m);
      if (--r.done->remaining == 0) {
        lk.unlock();
        r.done->cv.notify_all();
      }
    }
    release_slab(slab);
  }
}

EngineStats InferenceEngine::stats() const {
  EngineStats s;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    s.requests = requests_;
    s.max_queue_depth = max_queue_depth_;
  }
  s.batches = batches_.load(std::memory_order_relaxed);
  s.flush_full = flush_full_.load(std::memory_order_relaxed);
  s.flush_timeout = flush_timeout_.load(std::memory_order_relaxed);
  s.flush_drain = flush_drain_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s.arena_allocations = arena_stats_.allocations;
    s.arena_reuses = arena_stats_.reuses;
    s.arena_bytes_reserved = arena_stats_.bytes_reserved;
  }
  return s;
}

}  // namespace hsdl::hotspot

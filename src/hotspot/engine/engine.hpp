// Batched streaming inference engine (DESIGN.md §11).
//
// An InferenceEngine owns a trained CnnDetector and serves high-volume
// scoring: callers submit clips from any thread into a bounded MPSC
// queue; a batcher thread forms adaptive micro-batches (flushing when a
// batch reaches max_batch or when the oldest queued request has waited
// max_wait_ms), extracts feature tensors in parallel directly into a
// pinned input slab, and hands the slab to a forward thread that runs
// one batched CNN pass. Two slabs double-buffer the pipeline so batch
// N+1 extracts while batch N is in the network. All activations and the
// softmax output are drawn from a per-engine WorkspaceArena, so the
// steady state performs no heap allocations.
//
// Determinism contract: every per-sample computation in the CNN forward
// path is arithmetically independent of the other samples in the batch
// (per-sample im2col+GEMM, row-independent dense layers, per-row
// softmax), so the probability the engine returns for a clip is bitwise
// identical to the serial predict_probability() path regardless of how
// requests landed in batches. The determinism suite asserts this at 1,
// 2 and 8 threads.
//
// Single-worker collapse: on a host where the pool has one worker
// (num_threads() <= 1 at construction), the queue/batcher/forward
// handoff is pure overhead — three threads time-slicing one core made
// the engine ~0.82x the per-clip path. With inline_when_serial (the
// default) the engine then spawns no threads at all: score() extracts
// and forwards max_batch-sized chunks synchronously on the calling
// thread, through the same slab + arena code, so results stay bitwise
// identical while the engine is never slower than per-clip. The mode is
// fixed at construction; later set_num_threads() calls do not change it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/run_report.hpp"
#include "hotspot/detector.hpp"
#include "nn/workspace.hpp"

namespace hsdl::hotspot {

/// Thrown by score()/score_into() when the caller's deadline expired:
/// either already past at submission, or it passed while requests sat
/// in the micro-batcher's queue (those are dropped without ever
/// occupying a forward pass — the load-shedding property the serving
/// front-end relies on under overload, DESIGN.md §14).
class DeadlineExceeded : public CheckError {
 public:
  using CheckError::CheckError;
};

struct EngineConfig {
  /// Flush threshold: a batch never exceeds this many clips.
  std::size_t max_batch = 64;
  /// Flush timeout: a partial batch is dispatched once its oldest
  /// request has waited this long (milliseconds).
  double max_wait_ms = 2.0;
  /// Bounded request queue capacity; producers block when it is full
  /// (backpressure instead of unbounded memory growth).
  std::size_t queue_capacity = 1024;
  /// Optional JSONL stream path: one record per dispatched batch
  /// (size, flush reason, stage latencies). Empty disables.
  std::string telemetry_path;
  /// When the pool has a single worker at construction time, skip the
  /// queue/batcher/forward threads entirely and score synchronously on
  /// the calling thread (bitwise-identical results, none of the handoff
  /// overhead). Tests that pin queued-pipeline behavior disable this.
  bool inline_when_serial = true;
  /// Force every batch through the detector's int8 quantized net — the
  /// server's degraded engine under sustained overload (DESIGN.md §14).
  /// Requires CnnDetector::quantize() to have been called; the default
  /// engine follows the detector's own use_quantized() toggle instead.
  bool quantized = false;

  /// Rejects nonsense configurations (max_batch == 0, negative wait,
  /// queue smaller than a batch) with a positioned error. The engine
  /// constructor calls this.
  void validate() const;
};

/// Why a batch was dispatched. kInline marks batches run synchronously
/// by the single-worker collapse (no queue, no flush policy involved).
enum class FlushReason : std::uint8_t { kFull, kTimeout, kDrain, kInline };

/// Point-in-time counters; readable while the engine is live.
struct EngineStats {
  std::uint64_t requests = 0;       ///< clips enqueued
  std::uint64_t batches = 0;        ///< forward passes run
  std::uint64_t flush_full = 0;     ///< batches dispatched at max_batch
  std::uint64_t flush_timeout = 0;  ///< batches dispatched on timeout
  std::uint64_t flush_drain = 0;    ///< batches dispatched by shutdown
  /// Batches run synchronously by the single-worker collapse (also
  /// counted in `batches`; zero when the engine runs the threaded
  /// pipeline).
  std::uint64_t inline_batches = 0;
  /// Queued requests dropped because their deadline passed before the
  /// batcher reached them (each raised DeadlineExceeded at its caller).
  std::uint64_t deadline_expired = 0;
  std::size_t max_queue_depth = 0;  ///< high-water queue occupancy
  /// Arena counters: after warmup, `arena_allocations` stays flat while
  /// `arena_reuses` grows — the zero-steady-state-allocation property.
  std::uint64_t arena_allocations = 0;
  std::uint64_t arena_reuses = 0;
  std::size_t arena_bytes_reserved = 0;
};

/// Streaming scorer around a trained CnnDetector. Thread-safe for
/// concurrent score() callers; single engine, many producers.
class InferenceEngine {
 public:
  /// The detector must outlive the engine and must not be retrained
  /// while the engine is live (the engine only touches const inference
  /// surfaces).
  explicit InferenceEngine(const CnnDetector& detector,
                           const EngineConfig& config = {});
  ~InferenceEngine();
  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  const EngineConfig& config() const { return config_; }
  const CnnDetector& detector() const { return *detector_; }

  /// "No deadline" sentinel for the deadline parameters below.
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  /// Hotspot probabilities index-aligned with `clips`; blocks until all
  /// are scored. Bitwise identical to calling
  /// detector().predict_probability() per clip. With a deadline, throws
  /// DeadlineExceeded when it is already past at submission or passes
  /// while requests wait in the batcher queue (expired requests are
  /// dropped without a forward pass; an inline-mode batch that already
  /// started extraction runs to completion). A nonzero `trace_id` tags
  /// this submission's engine-stage spans (queue-wait, extract,
  /// forward) with the caller's trace context (common/trace) so a
  /// sampled serving request stitches into one tree across threads;
  /// it has no effect while tracing is disabled.
  std::vector<double> score(
      std::span<const layout::Clip> clips,
      std::chrono::steady_clock::time_point deadline = kNoDeadline,
      std::uint64_t trace_id = 0);

  /// As score(), writing into caller-owned storage (out.size() must
  /// equal clips.size()). Lets batch pipelines avoid the result vector.
  void score_into(std::span<const layout::Clip> clips, std::span<double> out,
                  std::chrono::steady_clock::time_point deadline = kNoDeadline,
                  std::uint64_t trace_id = 0);

  /// score() over the clips of a labeled set (labels are ignored) —
  /// avoids materializing a separate Clip vector for evaluation.
  std::vector<double> score_labeled(
      std::span<const layout::LabeledClip> clips);

  /// Stops accepting work, drains every queued request through the
  /// pipeline, joins the worker threads. Idempotent; the destructor
  /// calls it. Outstanding score() calls complete with real results.
  void shutdown();

  EngineStats stats() const;

 private:
  struct Completion {
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining = 0;
    /// Requests of this submission the batcher dropped past-deadline;
    /// the waiter raises DeadlineExceeded when nonzero.
    std::size_t expired = 0;
  };
  struct Request {
    const layout::Clip* clip = nullptr;
    double* out = nullptr;
    Completion* done = nullptr;
    /// Enqueue instant; the batcher's flush deadline is the *oldest*
    /// request's enqueue time plus max_wait_ms, so the latency promise
    /// holds even when the batcher was busy extracting when the request
    /// arrived.
    std::chrono::steady_clock::time_point enqueued;
    /// Caller deadline (kNoDeadline = none); checked by the batcher
    /// when it pops the request.
    std::chrono::steady_clock::time_point deadline;
    /// Caller trace context (0 = unsampled); stamps the engine-stage
    /// spans this request passes through.
    std::uint64_t trace_id = 0;
    /// Enqueue instant on the trace clock, captured only for sampled
    /// requests while tracing is on (0 otherwise) — the begin timestamp
    /// of the engine.queue_wait span.
    std::uint64_t enqueue_ns = 0;
  };
  /// One pipeline buffer: feature slab + the requests it carries.
  struct Slab {
    std::vector<float> storage;      // n * feat floats, capacity max_batch
    std::vector<Request> requests;   // capacity max_batch
    FlushReason reason = FlushReason::kFull;
    double extract_seconds = 0.0;
    bool free = true;
  };

  /// Returns false (without queuing) when the engine is stopping; the
  /// caller must then wait for its already-queued requests to drain
  /// before unwinding the Completion they point at.
  bool enqueue(const layout::Clip* clip, double* out, Completion* done,
               std::chrono::steady_clock::time_point deadline,
               std::uint64_t trace_id);
  /// Completes a queued request as past-deadline (no forward pass).
  void expire_request(const Request& r);
  void wait_and_check(Completion& done, std::size_t submitted,
                      std::size_t total);
  /// Single-worker collapse: extract + forward `n` clips synchronously
  /// in max_batch chunks on the calling thread. `clip_stride` is the
  /// byte distance between consecutive Clips (lets LabeledClip arrays
  /// score without materializing a pointer table).
  void score_inline(const layout::Clip* first, std::size_t clip_stride,
                    std::size_t n, double* out, std::uint64_t trace_id);
  void run_batch(Slab* slab);
  void batcher_loop();
  void forward_loop();
  Slab* acquire_free_slab();
  void release_slab(Slab* slab);
  void dispatch(Slab* slab);

  EngineConfig config_;
  const CnnDetector* detector_;
  std::size_t feat_ = 0;  // floats per clip feature tensor
  std::vector<std::size_t> in_shape_;  // model input CHW, fixed per detector

  // Request queue (producers -> batcher).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // batcher waits: work available
  std::condition_variable space_cv_;  // producers wait: capacity free
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::size_t max_queue_depth_ = 0;
  std::uint64_t requests_ = 0;

  // Double-buffered slabs + mailbox (batcher -> forward).
  std::mutex pipe_mu_;
  std::condition_variable slab_cv_;  // batcher waits: a slab is free
  std::condition_variable mail_cv_;  // forward waits: a batch is ready
  Slab slabs_[2];
  std::deque<Slab*> mailbox_;
  bool forward_stop_ = false;

  // Forward-thread-only state (single consumer, no locking needed).
  nn::WorkspaceArena arena_;

  // Arena counters snapshotted by the forward thread after each batch so
  // stats() never races the arena itself.
  mutable std::mutex stats_mu_;
  nn::WorkspaceArena::Stats arena_stats_;

  // Stats (written by their owning thread, read via stats()).
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> flush_full_{0};
  std::atomic<std::uint64_t> flush_timeout_{0};
  std::atomic<std::uint64_t> flush_drain_{0};
  std::atomic<std::uint64_t> inline_batches_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};

  // Single-worker collapse (fixed at construction). inline_mu_
  // serializes concurrent score() callers over slabs_[0] and the arena.
  bool inline_mode_ = false;
  std::mutex inline_mu_;

  telemetry::JsonlStream telemetry_;
  std::thread batcher_;
  std::thread forward_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace hsdl::hotspot

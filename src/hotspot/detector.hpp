// Hotspot detector public API.
//
// A Detector consumes labeled clips, trains, and classifies unseen clips.
// Three implementations mirror the paper's Table 2 columns:
//   * CnnDetector           — feature tensor + CNN + biased learning (ours)
//   * AdaBoostDensityDetector — AdaBoost on density features (SPIE'15 [4])
//   * SmoothBoostCcsDetector  — smooth boosting on CCS features, with an
//                               online refinement pass (ICCAD'16 [5])
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/boosting.hpp"
#include "features/ccs.hpp"
#include "features/density.hpp"
#include "fte/feature_tensor.hpp"
#include "hotspot/biased.hpp"
#include "hotspot/cnn.hpp"
#include "hotspot/metrics.hpp"
#include "layout/dataset.hpp"
#include "nn/quant.hpp"

namespace hsdl::hotspot {

/// Test-set evaluation outcome: confusion counts plus the wall time of
/// classifier evaluation (feature extraction + inference), from which the
/// ODST follows (Definition 3).
struct DetectorEval {
  Confusion confusion;
  double eval_seconds = 0.0;

  double odst() const { return confusion.odst_seconds(eval_seconds); }
};

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string name() const = 0;

  /// Trains on labeled clips (labels must be resolved, not kUnknown).
  virtual void train(std::span<const layout::LabeledClip> train_clips) = 0;

  /// Classifies one clip; true = hotspot. Const: inference never mutates
  /// detector state, so a trained detector can serve concurrent callers
  /// (scanner bands, the inference engine, evaluation threads).
  virtual bool predict(const layout::Clip& clip) const = 0;

  /// Hotspot confidence in [0, 1] for one clip. Consistent with
  /// predict(): predict(clip) == is_flagged(predict_probability(clip),
  /// decision_threshold()). The default derives a degenerate 0/1
  /// probability from predict(); detectors with a real confidence
  /// override it.
  virtual double predict_probability(const layout::Clip& clip) const;

  /// Batched probabilities, index-aligned with `clips`. The default
  /// loops predict_probability(); batch-capable detectors override it
  /// (the CNN detector extracts features in parallel and runs one
  /// batched forward pass).
  virtual std::vector<double> predict_probabilities(
      std::span<const layout::Clip> clips) const;

  /// Probability above which a clip counts as a hotspot (see
  /// is_flagged in metrics.hpp for the exact predicate; a threshold
  /// <= 0 flags everything).
  virtual double decision_threshold() const { return 0.5; }

  /// Classifies a labeled test set and measures evaluation time.
  virtual DetectorEval evaluate(
      std::span<const layout::LabeledClip> test_clips) const;
};

// ---------------------------------------------------------------------------

struct CnnDetectorConfig {
  fte::FeatureTensorConfig feature;
  HotspotCnnConfig cnn;
  BiasedLearningConfig biased;
  double validation_fraction = 0.25;  ///< paper: 25 % held out
  double shift = 0.0;  ///< decision-boundary shift (Equation (11))
  /// Augment hotspot training clips with the 8 dihedral symmetries of the
  /// square window (label-invariant under the isotropic litho model).
  /// Compensates for the scaled-down benchmark sizes; see EXPERIMENTS.md.
  bool augment_hotspots = true;
  std::uint64_t seed = 1;

  /// Rejects nonsense configurations (empty feature tensor, out-of-range
  /// validation fraction, degenerate shift) with a positioned error.
  /// CnnDetector's constructor calls this, so an invalid config can never
  /// reach training or serving.
  void validate() const;
};

/// The paper's detector. Also exposes dataset-level entry points so
/// benchmarks can reuse pre-extracted feature tensors.
class CnnDetector final : public Detector {
 public:
  explicit CnnDetector(const CnnDetectorConfig& config = {});

  std::string name() const override { return "cnn-feature-tensor"; }
  void train(std::span<const layout::LabeledClip> train_clips) override;
  bool predict(const layout::Clip& clip) const override;
  double predict_probability(const layout::Clip& clip) const override;
  std::vector<double> predict_probabilities(
      std::span<const layout::Clip> clips) const override;
  double decision_threshold() const override { return 0.5 - config_.shift; }
  /// Batched evaluation routed through a local InferenceEngine, so the
  /// evaluation path exercises the same pipeline as production scanning.
  DetectorEval evaluate(
      std::span<const layout::LabeledClip> test_clips) const override;

  /// Feature-tensor dataset for a clip list (label kUnknown asserts).
  nn::ClassificationDataset extract_dataset(
      std::span<const layout::LabeledClip> clips) const;

  /// Trains directly on datasets (validation split already made).
  BiasedLearningResult train_on(const nn::ClassificationDataset& train_set,
                                const nn::ClassificationDataset& val_set);

  /// Online model update on newly arriving labeled clips (the paper's
  /// "trained model can be effectively updated with newly incoming
  /// instances" — a short MGD fine-tune from the current weights, O(m) in
  /// the number of new instances).
  void update_online(std::span<const layout::LabeledClip> new_clips,
                     std::size_t iters_per_clip = 4);

  /// Decision-boundary shift lambda: hotspot if p(hotspot) > 0.5 - shift.
  void set_shift(double shift) { config_.shift = shift; }
  double shift() const { return config_.shift; }

  HotspotCnn& model() { return model_; }
  const HotspotCnn& model() const { return model_; }
  const fte::FeatureTensorExtractor& extractor() const { return extractor_; }

  /// Builds an int8 copy of the trained model, calibrating activation
  /// scales on `calibration` (use the validation split — see DESIGN.md
  /// §12), and enables it for serving. Training, online updates and
  /// load() drop the quantized model (weights changed).
  void quantize(std::span<const layout::LabeledClip> calibration);
  /// Toggle between the int8 model (if built) and fp32 at serving time.
  void set_use_quantized(bool on) { use_quantized_ = on; }
  bool use_quantized() const { return use_quantized_ && quantized_ != nullptr; }
  const nn::QuantizedNet* quantized_net() const { return quantized_.get(); }

  /// Batched probabilities [N, 2] through the active serving model (int8
  /// when enabled, fp32 otherwise). The inference engine and evaluate()
  /// route through this, so quantization plugs into every serving path
  /// without touching them.
  nn::Tensor score_batch(const nn::Tensor& x, nn::WorkspaceArena& ws) const;
  /// As above with the serving path chosen by the caller instead of the
  /// detector's toggle — the server's degraded engine pins int8 per
  /// engine while the fp32 engine keeps serving other tenants. Falls
  /// back to fp32 when no quantized net has been built.
  nn::Tensor score_batch(const nn::Tensor& x, nn::WorkspaceArena& ws,
                         bool quantized) const;

  /// Saves the trained weights plus the feature/architecture fingerprint;
  /// load() verifies the fingerprint so a checkpoint cannot be restored
  /// into a detector with a different feature tensor or CNN shape. The
  /// save is atomic (write temp + rename) and the parameter payload is
  /// the checksummed v2 container, so a corrupted or truncated bundle is
  /// rejected with a positioned error (see nn/serialize.hpp).
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  std::string fingerprint() const;
  nn::Tensor score(const nn::Tensor& x) const;

  CnnDetectorConfig config_;
  fte::FeatureTensorExtractor extractor_;
  HotspotCnn model_;
  Rng rng_;
  std::unique_ptr<nn::QuantizedNet> quantized_;
  bool use_quantized_ = false;
};

// ---------------------------------------------------------------------------

struct BoostDetectorConfig {
  baselines::BoostConfig boost;
  double bias = 0.0;  ///< decision threshold on the margin score
  /// Replace `bias` with the balanced-accuracy-optimal threshold measured
  /// on the training set (the high-recall operating point the reference
  /// detectors publish).
  bool tune_bias = true;
  /// Online refinement passes over the training stream after batch
  /// boosting (0 disables). Updates are inverse-class-frequency weighted.
  std::size_t online_passes = 0;
  double online_learning_rate = 0.05;
};

/// SPIE'15-style baseline: AdaBoost over local-density features.
class AdaBoostDensityDetector final : public Detector {
 public:
  AdaBoostDensityDetector(const features::DensityConfig& feature,
                          const BoostDetectorConfig& config);
  AdaBoostDensityDetector();

  std::string name() const override { return "adaboost-density"; }
  void train(std::span<const layout::LabeledClip> train_clips) override;
  bool predict(const layout::Clip& clip) const override;
  double predict_probability(const layout::Clip& clip) const override;

  const baselines::BoostedStumps& ensemble() const { return boost_; }

 private:
  features::DensityConfig feature_;
  BoostDetectorConfig config_;
  baselines::BoostedStumps boost_;
};

/// ICCAD'16-style baseline: smooth boosting over CCS features with an
/// online refinement pass.
class SmoothBoostCcsDetector final : public Detector {
 public:
  SmoothBoostCcsDetector(const features::CcsConfig& feature,
                         const BoostDetectorConfig& config);
  SmoothBoostCcsDetector();

  std::string name() const override { return "smoothboost-ccs"; }
  void train(std::span<const layout::LabeledClip> train_clips) override;
  bool predict(const layout::Clip& clip) const override;
  double predict_probability(const layout::Clip& clip) const override;

  const baselines::BoostedStumps& ensemble() const { return boost_; }

 private:
  features::CcsConfig feature_;
  BoostDetectorConfig config_;
  baselines::BoostedStumps boost_;
};

}  // namespace hsdl::hotspot

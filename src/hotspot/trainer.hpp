// Mini-batch gradient descent trainer (paper Algorithm 1).
//
// Implements the paper's training loop: uniformly random mini-batches,
// step learning-rate decay (lambda <- alpha * lambda every k iterations),
// and a validation-set convergence criterion — training stops when the
// validation score has not improved for `patience` consecutive
// validations, and the best-on-validation weights are restored.
//
// The `epsilon` field realizes the biased ground truth of Section 4.3:
// non-hotspot targets are [1 - eps, eps] while hotspot targets stay [0, 1].
// Plain (unbiased) training is eps = 0. Setting batch = 1 degrades MGD to
// the SGD comparison of Figure 3.
#pragma once

#include <functional>
#include <vector>

#include "hotspot/cnn.hpp"
#include "hotspot/metrics.hpp"
#include "nn/dataset.hpp"

namespace hsdl::hotspot {

enum class OptimizerKind {
  kSgd,   ///< the paper's choice (plain gradient descent + LR decay)
  kAdam,  ///< modern alternative, contrasted in the ablation bench
};

struct MgdConfig {
  double learning_rate = 1e-3;   ///< lambda (paper uses 1e-3 for MGD)
  double decay = 0.5;            ///< alpha
  std::size_t decay_step = 500;  ///< k (paper: 10000 at full dataset scale)
  std::size_t batch = 32;        ///< m; 1 reproduces SGD
  std::size_t max_iters = 2000;
  std::size_t validate_every = 50;
  std::size_t patience = 8;  ///< validations without improvement to stop
  OptimizerKind optimizer = OptimizerKind::kSgd;
  double epsilon = 0.0;      ///< non-hotspot bias (Section 4.3)
  /// Draw class-balanced mini-batches. The paper trains on the raw
  /// imbalanced stream, viable at its full dataset scale (1.2k+ hotspots);
  /// at this library's scaled-down benchmark sizes the hotspot class is
  /// too small for that to converge, so benches enable rebalancing
  /// (documented substitution, EXPERIMENTS.md).
  bool balanced_batches = true;
};

/// One point of the training curve (drives Figure 3).
struct TrainPoint {
  std::size_t iter = 0;
  double seconds = 0.0;  ///< wall time since training start
  double train_loss = 0.0;
  /// Balanced accuracy (mean per-class recall) on the validation set — the
  /// convergence signal of Algorithm 1 (robust to class imbalance).
  double val_accuracy = 0.0;
};

struct TrainResult {
  std::vector<TrainPoint> history;
  double best_val_accuracy = 0.0;
  std::size_t iters_run = 0;
  double seconds = 0.0;
};

/// Builds [N, 2] training targets: hotspot -> [0, 1];
/// non-hotspot -> [1 - eps, eps] (labels are class indices, 1 = hotspot).
nn::Tensor biased_targets(const std::vector<std::size_t>& labels,
                          double epsilon);

/// Classifies a dataset, returning the confusion matrix. `shift` moves the
/// decision boundary (paper Equation (11)): predict hotspot when
/// p(hotspot) > 0.5 - shift. `batch` bounds per-chunk memory.
Confusion evaluate(HotspotCnn& model, const nn::ClassificationDataset& data,
                   double shift = 0.0, std::size_t batch = 128);

class MgdTrainer {
 public:
  explicit MgdTrainer(const MgdConfig& config = {});

  const MgdConfig& config() const { return config_; }

  /// Optional observer called after every validation.
  using Callback = std::function<void(const TrainPoint&)>;
  void set_callback(Callback cb) { callback_ = std::move(cb); }

  /// Trains in place; `rng` drives batch sampling (dropout uses the
  /// model's own stream). Returns the training curve.
  TrainResult train(HotspotCnn& model,
                    const nn::ClassificationDataset& train_set,
                    const nn::ClassificationDataset& val_set, Rng& rng);

 private:
  MgdConfig config_;
  Callback callback_;
};

}  // namespace hsdl::hotspot

// Mini-batch gradient descent trainer (paper Algorithm 1).
//
// Implements the paper's training loop: uniformly random mini-batches,
// step learning-rate decay (lambda <- alpha * lambda every k iterations),
// and a validation-set convergence criterion — training stops when the
// validation score has not improved for `patience` consecutive
// validations, and the best-on-validation weights are restored.
//
// The `epsilon` field realizes the biased ground truth of Section 4.3:
// non-hotspot targets are [1 - eps, eps] while hotspot targets stay [0, 1].
// Plain (unbiased) training is eps = 0. Setting batch = 1 degrades MGD to
// the SGD comparison of Figure 3.
//
// Fault tolerance: with `checkpoint_path` set, the full training state
// (params, optimizer moments, RNG engines, LR, best snapshot, history)
// is written atomically every `checkpoint_every` iterations as a
// checksummed TrainState file (hotspot/train_state.hpp), and resume()
// continues an interrupted run bit-for-bit. A divergence watchdog scans
// loss, gradients and params for non-finite values each step and rolls
// back to the last good state with a learning-rate backoff instead of
// letting NaN/Inf reach the stored weights.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hotspot/cnn.hpp"
#include "hotspot/metrics.hpp"
#include "nn/dataset.hpp"

namespace hsdl::telemetry {
class JsonlStream;
}

namespace hsdl::hotspot {

enum class OptimizerKind {
  kSgd,   ///< the paper's choice (plain gradient descent + LR decay)
  kAdam,  ///< modern alternative, contrasted in the ablation bench
};

struct MgdConfig {
  double learning_rate = 1e-3;   ///< lambda (paper uses 1e-3 for MGD)
  double decay = 0.5;            ///< alpha
  std::size_t decay_step = 500;  ///< k (paper: 10000 at full dataset scale)
  std::size_t batch = 32;        ///< m; 1 reproduces SGD
  std::size_t max_iters = 2000;
  std::size_t validate_every = 50;
  std::size_t patience = 8;  ///< validations without improvement to stop
  OptimizerKind optimizer = OptimizerKind::kSgd;
  double epsilon = 0.0;      ///< non-hotspot bias (Section 4.3)
  /// Draw class-balanced mini-batches. The paper trains on the raw
  /// imbalanced stream, viable at its full dataset scale (1.2k+ hotspots);
  /// at this library's scaled-down benchmark sizes the hotspot class is
  /// too small for that to converge, so benches enable rebalancing
  /// (documented substitution, EXPERIMENTS.md).
  bool balanced_batches = true;

  // -- fault tolerance -------------------------------------------------------
  /// TrainState checkpoint file; empty disables checkpointing. Writes
  /// are atomic (temp + rename), so a crash mid-write keeps the
  /// previous checkpoint intact.
  std::string checkpoint_path;
  /// Iterations between checkpoint writes.
  std::size_t checkpoint_every = 100;
  /// Global gradient-norm clip applied before each step; 0 disables.
  double max_grad_norm = 0.0;
  /// Divergence-watchdog rollbacks tolerated before training fails with
  /// a diagnostic.
  std::size_t max_recoveries = 3;
  /// Learning-rate multiplier applied on every watchdog rollback.
  double recovery_lr_decay = 0.5;

  // -- observability ---------------------------------------------------------
  /// JSONL telemetry stream (one record per iteration/validation/watchdog
  /// event plus a train_result summary; schema in DESIGN.md §10). Empty
  /// disables the stream. Ignored when an external stream is installed
  /// via MgdTrainer::set_telemetry. Never affects the math: resume
  /// accepts a checkpoint written with a different telemetry_path.
  std::string telemetry_path;
};

/// One point of the training curve (drives Figure 3).
struct TrainPoint {
  std::size_t iter = 0;
  double seconds = 0.0;  ///< wall time since training start
  double train_loss = 0.0;
  /// Balanced accuracy (mean per-class recall) on the validation set — the
  /// convergence signal of Algorithm 1 (robust to class imbalance).
  double val_accuracy = 0.0;
};

struct TrainResult {
  std::vector<TrainPoint> history;
  double best_val_accuracy = 0.0;
  std::size_t iters_run = 0;
  double seconds = 0.0;
  /// Divergence-watchdog rollbacks taken during the run.
  std::size_t recoveries = 0;
  /// Learning rate when training stopped (decay schedule + any watchdog
  /// backoffs applied).
  double final_learning_rate = 0.0;
};

struct TrainState;  // full checkpoint container (hotspot/train_state.hpp)

/// Validates every MgdConfig invariant (shared by MgdTrainer and the
/// nested configs of BiasedLearningConfig so misconfiguration fails at
/// construction, not rounds into a long run).
void validate_mgd_config(const MgdConfig& config);

/// Builds [N, 2] training targets: hotspot -> [0, 1];
/// non-hotspot -> [1 - eps, eps] (labels are class indices, 1 = hotspot).
nn::Tensor biased_targets(const std::vector<std::size_t>& labels,
                          double epsilon);

/// Classifies a dataset, returning the confusion matrix. `shift` moves the
/// decision boundary (paper Equation (11)): predict hotspot when
/// p(hotspot) > 0.5 - shift. `batch` bounds per-chunk memory.
Confusion evaluate(HotspotCnn& model, const nn::ClassificationDataset& data,
                   double shift = 0.0, std::size_t batch = 128);

class MgdTrainer {
 public:
  explicit MgdTrainer(const MgdConfig& config = {});

  const MgdConfig& config() const { return config_; }

  /// Optional observer called after every validation.
  using Callback = std::function<void(const TrainPoint&)>;
  void set_callback(Callback cb) { callback_ = std::move(cb); }

  /// Kill-point hook called at the end of every iteration, after any
  /// checkpoint write. Throwing from it simulates a crash at that
  /// boundary — the fault-injection tests use this to interrupt
  /// training at exact iterations.
  using IterationHook = std::function<void(std::size_t iter)>;
  void set_iteration_hook(IterationHook hook) {
    iteration_hook_ = std::move(hook);
  }

  /// Fault-injection hook called after backward and before the
  /// divergence scan; may corrupt `loss` or the accumulated gradients
  /// to exercise the watchdog.
  using FaultHook = std::function<void(
      std::size_t iter, double& loss, const std::vector<nn::Param*>& params)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Opaque payload embedded verbatim in every checkpoint this trainer
  /// writes (covered by the file checksum). BiasedLearner stores its
  /// round progress here so one TrainState file captures the whole
  /// Algorithm 2 chain.
  void set_checkpoint_extra(std::string extra) {
    checkpoint_extra_ = std::move(extra);
  }

  /// Routes telemetry records into an externally owned JSONL stream
  /// (BiasedLearner shares one stream across all rounds this way);
  /// overrides config().telemetry_path. Pass nullptr to restore the
  /// config-path behaviour. The stream must outlive train()/resume().
  void set_telemetry(telemetry::JsonlStream* stream) { telemetry_ = stream; }

  /// Trains in place; `rng` drives batch sampling (dropout uses the
  /// model's own stream). Returns the training curve.
  TrainResult train(HotspotCnn& model,
                    const nn::ClassificationDataset& train_set,
                    const nn::ClassificationDataset& val_set, Rng& rng);

  /// Resumes from the TrainState at config().checkpoint_path (which
  /// must exist and match this config), restoring params, optimizer
  /// moments, RNG engines, LR, best snapshot and history, then
  /// continues exactly as the uninterrupted run would have — final
  /// weights and history are bit-for-bit identical for runs that take
  /// no watchdog rollbacks after the checkpoint.
  TrainResult resume(HotspotCnn& model,
                     const nn::ClassificationDataset& train_set,
                     const nn::ClassificationDataset& val_set, Rng& rng);

 private:
  TrainResult run(HotspotCnn& model,
                  const nn::ClassificationDataset& train_set,
                  const nn::ClassificationDataset& val_set, Rng& rng,
                  const TrainState* restored);

  MgdConfig config_;
  Callback callback_;
  IterationHook iteration_hook_;
  FaultHook fault_hook_;
  std::string checkpoint_extra_;
  telemetry::JsonlStream* telemetry_ = nullptr;  ///< not owned
};

}  // namespace hsdl::hotspot

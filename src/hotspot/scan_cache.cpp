#include "hotspot/scan_cache.hpp"

#include "common/check.hpp"

namespace hsdl::hotspot {

CellScanCache::CellScanCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  HSDL_CHECK_MSG(max_entries > 0,
                 "scan cache: max_entries must be positive");
}

std::optional<double> CellScanCache::lookup(
    const layout::WindowKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void CellScanCache::insert(const layout::WindowKey& key,
                           double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.find(key) != map_.end()) return;
  if (map_.size() >= max_entries_) {
    ++stats_.rejected;
    return;
  }
  map_.emplace(key, probability);
  ++stats_.insertions;
}

CellScanCache::Stats CellScanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CellScanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void CellScanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  stats_ = Stats{};
}

}  // namespace hsdl::hotspot

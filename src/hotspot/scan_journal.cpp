#include "hotspot/scan_journal.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/check.hpp"
#include "common/io.hpp"
#include "common/logging.hpp"

namespace hsdl::hotspot {
namespace {

constexpr std::string_view kMagic = "HSDLSCNJ";
constexpr std::uint32_t kVersion = 1;
/// magic + version + flags + fingerprint, before the header CRC.
constexpr std::size_t kHeaderBody = io::kFormatHeaderSize + 8;

std::string encode_header(std::uint64_t fingerprint) {
  io::ByteWriter w;
  io::write_format_header(w, kMagic, kVersion, /*flags=*/0);
  w.u64(fingerprint);
  const std::uint32_t crc = io::crc32(w.buffer());
  w.u32(crc);
  return w.take();
}

std::string encode_record(const BandResult& band) {
  io::ByteWriter payload;
  payload.u64(band.band_index);
  payload.u64(band.windows);
  payload.u32(static_cast<std::uint32_t>(band.hits.size()));
  for (const ScanHit& hit : band.hits) {
    payload.i64(hit.window.lo.x);
    payload.i64(hit.window.lo.y);
    payload.i64(hit.window.hi.x);
    payload.i64(hit.window.hi.y);
    payload.f64(hit.probability);
  }
  io::ByteWriter rec;
  rec.u32(static_cast<std::uint32_t>(payload.size()));
  rec.bytes(payload.buffer().data(), payload.size());
  rec.u32(io::crc32(payload.buffer()));
  return rec.take();
}

BandResult decode_payload(std::string_view payload) {
  io::ByteReader r(payload, "scan journal record");
  BandResult band;
  band.band_index = r.u64();
  band.windows = r.u64();
  const std::uint32_t n = r.u32();
  band.hits.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ScanHit hit;
    hit.window.lo.x = r.i64();
    hit.window.lo.y = r.i64();
    hit.window.hi.x = r.i64();
    hit.window.hi.y = r.i64();
    hit.probability = r.f64();
    band.hits.push_back(hit);
  }
  r.expect_end();
  return band;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

}  // namespace

ScanJournal::ScanJournal(std::string path, std::uint64_t fingerprint)
    : path_(std::move(path)), fingerprint_(fingerprint) {
  std::error_code ec;
  if (std::filesystem::exists(path_, ec) && load_existing()) {
    resumed_ = true;
    out_.open(path_, std::ios::binary | std::ios::app);
  } else {
    start_fresh();
  }
  HSDL_CHECK_MSG(out_.good(),
                 "scan journal: cannot open " << path_ << " for append");
}

std::uint64_t ScanJournal::fingerprint(const ScanConfig& config,
                                       const geom::Rect& extent,
                                       std::uint64_t source_fingerprint) {
  io::ByteWriter w;
  w.i64(config.window_size);
  w.i64(config.stride);
  w.u64(config.band_rows);
  w.i64(extent.lo.x);
  w.i64(extent.lo.y);
  w.i64(extent.hi.x);
  w.i64(extent.hi.y);
  w.u64(source_fingerprint);
  return io::crc32(w.buffer());
}

const BandResult* ScanJournal::result(std::uint64_t band_index) const {
  const auto it = bands_.find(band_index);
  return it == bands_.end() ? nullptr : &it->second;
}

void ScanJournal::append(const BandResult& band) {
  const std::string rec = encode_record(band);
  out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  out_.flush();
  HSDL_CHECK_MSG(out_.good(),
                 "scan journal: append to " << path_ << " failed");
  bands_[band.band_index] = band;
}

void ScanJournal::remove() {
  out_.close();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  bands_.clear();
  resumed_ = false;
}

bool ScanJournal::load_existing() {
  const std::string data = read_file(path_);
  if (data.size() < kHeaderBody + 4) return false;
  try {
    io::ByteReader r(std::string_view(data).substr(0, kHeaderBody + 4),
                     "scan journal header");
    const io::FormatHeader header =
        io::read_format_header(r, kMagic, kVersion, kVersion);
    (void)header;
    const std::uint64_t stored = r.u64();
    const std::uint32_t crc = r.u32();
    if (crc != io::crc32(data.data(), kHeaderBody)) return false;
    if (stored != fingerprint_) {
      HSDL_LOG(kWarn) << "scan journal " << path_
                      << ": fingerprint mismatch (journal " << stored
                      << ", scan " << fingerprint_ << "); starting fresh";
      return false;
    }
  } catch (const io::IoError&) {
    return false;
  }

  // Parse the record stream; stop at the first torn or corrupt record
  // and truncate the file back to the good prefix. A record that fails
  // its CRC or its payload decode is treated the same as a torn one:
  // everything from its start is discarded.
  std::size_t good = kHeaderBody + 4;
  std::size_t torn_tail = 0;
  const std::string_view view(data);
  while (good < data.size()) {
    if (data.size() - good < 4) break;
    io::ByteReader len_r(view.substr(good, 4), "scan journal record length");
    const std::uint32_t len = len_r.u32();
    if (data.size() - good < 4u + len + 4u) break;
    const std::string_view payload = view.substr(good + 4, len);
    io::ByteReader crc_r(view.substr(good + 4 + len, 4),
                         "scan journal record crc");
    if (crc_r.u32() != io::crc32(payload)) break;
    try {
      BandResult band = decode_payload(payload);
      bands_[band.band_index] = std::move(band);
    } catch (const io::IoError&) {
      break;
    }
    good += 4u + len + 4u;
  }
  torn_tail = data.size() - good;
  if (torn_tail > 0) {
    HSDL_LOG(kWarn) << "scan journal " << path_ << ": discarding "
                    << torn_tail << " torn trailing bytes ("
                    << bands_.size() << " complete bands kept)";
    std::error_code ec;
    std::filesystem::resize_file(path_, good, ec);
    if (ec) return false;
  }
  return true;
}

void ScanJournal::start_fresh() {
  bands_.clear();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_.good()) return;  // ctor reports the failure with the path
  const std::string header = encode_header(fingerprint_);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.flush();
}

}  // namespace hsdl::hotspot

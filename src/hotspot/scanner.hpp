// Full-chip hotspot scanning.
//
// Slides a clip-sized window over a LayoutSource (flat Layout adapter
// or hierarchical HierLayout adapter — layout/layout_source.hpp) at a
// configurable stride and classifies each window with any Detector,
// producing a hotspot map —
// the production flow the paper targets: replace full-chip lithography
// simulation (10 s/clip) with millisecond ML screening and simulate only
// the flagged windows. CNN detectors are routed through the batched
// InferenceEngine (DESIGN.md §11) so feature extraction overlaps the
// network forward pass.
#pragma once

#include <string>
#include <vector>

#include "hotspot/detector.hpp"
#include "layout/layout.hpp"
#include "layout/layout_source.hpp"

namespace hsdl::hotspot {

class InferenceEngine;
class CellScanCache;

struct ScanConfig {
  geom::Coord window_size = 1200;  ///< nm, must match the detector's input
  geom::Coord stride = 1200;       ///< nm; < window_size scans with overlap
  /// Window rows scored per band. Bands are the unit of parallel
  /// extraction, of deterministic merge order and of resumable-scan
  /// journaling; smaller bands checkpoint more often at a little more
  /// batching overhead.
  std::size_t band_rows = 16;

  /// Rejects nonsense configurations (non-positive window or stride)
  /// with a positioned error. The scanner constructor calls this.
  void validate() const;

  /// validate() plus the window/detector compatibility checks: the
  /// window must rasterize to an integer pixel count at the detector's
  /// raster pitch, divisible into its feature-tensor blocks. Called on
  /// every engine-routed scan so a mismatch fails with a positioned
  /// message instead of an assertion deep inside extraction.
  void validate_for(const CnnDetector& detector) const;
};

struct ScanHit {
  geom::Rect window;
  /// The detector's hotspot probability for this window (degenerates to
  /// 1.0 for detectors that only expose a binary predict()).
  double probability = 1.0;
};

struct ScanReport {
  std::size_t windows_scanned = 0;
  /// Of windows_scanned, how many were served by reuse identity instead
  /// of being extracted and scored: CellScanCache replays plus in-band
  /// duplicates aliased to a congruent window scored in the same band
  /// (0 without a cache).
  std::size_t windows_from_cache = 0;
  std::vector<ScanHit> hits;
  double scan_seconds = 0.0;

  double flagged_fraction() const {
    return windows_scanned == 0
               ? 0.0
               : static_cast<double>(hits.size()) /
                     static_cast<double>(windows_scanned);
  }
  /// Screening throughput — the paper's headline contrast with the
  /// 10 s/clip lithography simulation this flow replaces.
  double windows_per_second() const {
    return scan_seconds <= 0.0
               ? 0.0
               : static_cast<double>(windows_scanned) / scan_seconds;
  }
  /// ODST of the screening flow: sim time on flagged windows + scan time.
  double odst_seconds() const {
    return kLithoSimSecondsPerClip * static_cast<double>(hits.size()) +
           scan_seconds;
  }
  /// ODST of brute-force simulation of every window (the paper's
  /// "conventional method" strawman).
  double full_simulation_seconds() const {
    return kLithoSimSecondsPerClip * static_cast<double>(windows_scanned);
  }
};

class ChipScanner {
 public:
  explicit ChipScanner(const ScanConfig& config = {});

  const ScanConfig& config() const { return config_; }

  /// Classifies every window position over the source's extent. When
  /// the stride does not tile the extent exactly, the final row/column
  /// of windows is clamped to the far edge so the trailing band is
  /// still scanned (those windows overlap their predecessors); a
  /// clamped position that coincides with an interior grid position is
  /// deduplicated, so no window rect is ever scanned or reported twice.
  /// CNN detectors are scored through a scan-local InferenceEngine;
  /// other detectors use their batched predict_probabilities path.
  ScanReport scan(const layout::LayoutSource& source,
                  const Detector& detector) const;

  /// Scans through a caller-owned engine (reuse one engine — and its
  /// warm workspace arena — across many chips). With a cache, windows
  /// whose WindowKey was already scored are replayed instead of
  /// extracted + scored; the report is bitwise identical either way
  /// (the WindowKey contract plus the engine's per-sample determinism).
  ScanReport scan(const layout::LayoutSource& source, InferenceEngine& engine,
                  CellScanCache* cache = nullptr) const;

  /// Crash-safe scan: completed bands are journaled (checksummed,
  /// band-granular) to `journal_path` as the scan progresses. If a
  /// previous run died mid-scan, the journaled bands are replayed from
  /// disk and only the remainder is scored — the merged report is
  /// bitwise identical to an uninterrupted scan. The journal file is
  /// deleted once the scan completes. The journal fingerprints the scan
  /// geometry and the source's content fingerprint but cannot see the
  /// model: resuming with different detector weights is the caller's
  /// responsibility to avoid.
  ScanReport scan_resumable(const layout::LayoutSource& source,
                            InferenceEngine& engine,
                            const std::string& journal_path,
                            CellScanCache* cache = nullptr) const;

  /// Scans with `shards` independent engine instances, bands assigned
  /// round-robin (band % shards), each shard extracting serially on its
  /// own thread. Band results are merged in row-major band order, so
  /// the report is bitwise identical to the 1-shard scan no matter how
  /// shards interleave. A shared cache (one mutex-guarded CellScanCache
  /// across all shards) is sound for the same reason single-shard
  /// caching is: every value a key can cache is bitwise identical.
  ScanReport scan_sharded(const layout::LayoutSource& source,
                          const CnnDetector& detector, std::size_t shards,
                          CellScanCache* cache = nullptr) const;

  /// Thin adapters over the flat Layout model (wraps the chip in a
  /// FlatSource; same semantics as the LayoutSource overloads).
  ScanReport scan(const layout::Layout& chip, const Detector& detector) const;
  ScanReport scan(const layout::Layout& chip, InferenceEngine& engine) const;
  ScanReport scan_resumable(const layout::Layout& chip,
                            InferenceEngine& engine,
                            const std::string& journal_path) const;

 private:
  ScanConfig config_;
};

}  // namespace hsdl::hotspot

// Scan-grid geometry and per-band window iteration (DESIGN.md §16).
//
// A full-chip scan is a row-major walk over a window grid, chunked into
// bands of `band_rows` window rows. Bands are the unit of parallel
// extraction, of deterministic merge order, of resumable-scan
// journaling and of shard assignment — so the grid math lives here,
// shared by the serial scanner loop and the sharded scanner, instead of
// being re-derived in each.
//
// A BandWindowIterator yields one band's window rects in row-major
// order without materializing anything: combined with a streaming
// LayoutSource, peak scan memory is O(windows in one band) regardless
// of chip size.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "geom/rect.hpp"
#include "hotspot/scanner.hpp"

namespace hsdl::hotspot {

/// The window grid of one scan: the x/y window origins over an extent
/// under a ScanConfig, plus the banding arithmetic.
class ScanGrid {
 public:
  ScanGrid(const geom::Rect& extent, const ScanConfig& config)
      : window_size_(config.window_size), band_rows_(config.band_rows) {
    HSDL_CHECK_MSG(extent.width() >= config.window_size &&
                       extent.height() >= config.window_size,
                   "layout smaller than the scan window");
    xs_ = grid_positions(extent.lo.x, extent.hi.x, config.window_size,
                         config.stride);
    ys_ = grid_positions(extent.lo.y, extent.hi.y, config.window_size,
                         config.stride);
  }

  /// Window origins along one axis. When the stride does not tile the
  /// extent exactly, a final origin clamped to the far edge covers the
  /// trailing band that the bare grid would silently skip. Origins are
  /// strictly increasing and deduplicated: a clamped position landing
  /// exactly on an interior grid position would otherwise scan (and
  /// possibly flag) the identical window rect twice.
  static std::vector<geom::Coord> grid_positions(geom::Coord lo,
                                                 geom::Coord hi,
                                                 geom::Coord window,
                                                 geom::Coord stride) {
    std::vector<geom::Coord> v;
    for (geom::Coord p = lo; p + window <= hi; p += stride) v.push_back(p);
    if (v.back() + window < hi) v.push_back(hi - window);
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  }

  std::size_t cols() const { return xs_.size(); }
  std::size_t rows() const { return ys_.size(); }
  std::size_t bands() const {
    return (ys_.size() + band_rows_ - 1) / band_rows_;
  }
  /// First / one-past-last window row of `band`.
  std::size_t band_row_begin(std::size_t band) const {
    return band * band_rows_;
  }
  std::size_t band_row_end(std::size_t band) const {
    return std::min(band_row_begin(band) + band_rows_, ys_.size());
  }
  std::size_t windows_in_band(std::size_t band) const {
    return (band_row_end(band) - band_row_begin(band)) * cols();
  }

  geom::Rect window(std::size_t row, std::size_t col) const {
    return geom::Rect::from_xywh(xs_[col], ys_[row], window_size_,
                                 window_size_);
  }

  const std::vector<geom::Coord>& xs() const { return xs_; }
  const std::vector<geom::Coord>& ys() const { return ys_; }

 private:
  geom::Coord window_size_;
  std::size_t band_rows_;
  std::vector<geom::Coord> xs_;
  std::vector<geom::Coord> ys_;
};

/// Forward-only cursor over one band's windows in row-major scan order
/// (the order hits are reported and probabilities are merged in).
class BandWindowIterator {
 public:
  BandWindowIterator(const ScanGrid& grid, std::size_t band)
      : grid_(&grid),
        row_(grid.band_row_begin(band)),
        row_end_(grid.band_row_end(band)) {}

  /// Yields the next window; false when the band is exhausted.
  bool next(geom::Rect& window) {
    if (row_ >= row_end_) return false;
    window = grid_->window(row_, col_);
    ++index_;
    if (++col_ == grid_->cols()) {
      col_ = 0;
      ++row_;
    }
    return true;
  }

  /// Number of windows yielded so far; after the final next(), the
  /// band's window count.
  std::size_t index() const { return index_; }

 private:
  const ScanGrid* grid_;
  std::size_t row_;
  std::size_t row_end_;
  std::size_t col_ = 0;
  std::size_t index_ = 0;
};

}  // namespace hsdl::hotspot

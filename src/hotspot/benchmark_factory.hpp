// Synthetic benchmark suites shaped like the paper's four testcases.
//
// The ICCAD-2012 merged suite and the three ASML industry testcases are
// not redistributable; this factory regenerates their *statistical shape*
// (train/test sizes and hotspot : non-hotspot imbalance of Table 2) from
// the archetype generator + litho labeler, deterministically by seed.
// A global `scale` shrinks every count proportionally so the whole Table 2
// experiment runs on one CPU core (DESIGN.md §4, substitution 1).
#pragma once

#include <cstdint>
#include <string>

#include "layout/dataset.hpp"
#include "layout/generator.hpp"
#include "litho/config.hpp"

namespace hsdl::hotspot {

struct BenchmarkSpec {
  std::string name;
  std::size_t train_hotspots = 0;
  std::size_t train_non_hotspots = 0;
  std::size_t test_hotspots = 0;
  std::size_t test_non_hotspots = 0;
  layout::GeneratorConfig generator;  ///< stress tuned per testcase
  litho::LithoConfig litho;
  std::uint64_t seed = 2017;
};

/// The paper's four testcases at a given scale (1.0 = the paper's counts;
/// benches default to a few percent). Counts never fall below 8 per cell.
BenchmarkSpec iccad_spec(double scale);
BenchmarkSpec industry1_spec(double scale);
BenchmarkSpec industry2_spec(double scale);
BenchmarkSpec industry3_spec(double scale);

/// All four specs in Table 2 order.
std::vector<BenchmarkSpec> all_specs(double scale);

/// Generates, labels, and fills the quota of each (split, class) cell.
/// Throws CheckError if the generator cannot reach the quotas within a
/// generous attempt budget (indicates mis-tuned stress/litho settings).
layout::BenchmarkData build_benchmark(const BenchmarkSpec& spec);

}  // namespace hsdl::hotspot

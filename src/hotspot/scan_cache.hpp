// Scored-window cache for hierarchical scans (DESIGN.md §16).
//
// A chip dominated by array placements scores the same window geometry
// millions of times: every instance of a cell sees the same clips at
// the same offsets modulo the scan pitch. A CellScanCache memoizes the
// detector probability per WindowKey (layout/layout_source.hpp) so a
// repeated placement replays the score instead of re-extracting and
// re-rasterizing and re-running the CNN.
//
// Correctness leans entirely on the WindowKey contract: equal keys mean
// bitwise-identical normalized clips, and the engine's determinism
// contract (engine/engine.hpp) means identical clips always score to
// bitwise-identical probabilities — so replaying a cached probability
// changes nothing about the scan output, only its cost. Consequently a
// cache instance is valid for exactly one (source, detector weights,
// window size) combination; reusing it across scans of the same source
// with the same model is the intended pattern, anything else is on the
// caller.
//
// Thread-safe: shards of a sharded scan share one cache under a mutex.
// The entry count is bounded; once full, new keys are counted as
// rejected and simply not cached (the scan stays correct, just slower).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "layout/layout_source.hpp"

namespace hsdl::hotspot {

class CellScanCache {
 public:
  /// `max_entries` bounds memory at ~48 bytes/entry; the default admits
  /// ~1M distinct (cell, offset) pairs.
  explicit CellScanCache(std::size_t max_entries = 1 << 20);

  /// The cached probability for `key`, if any window with this key was
  /// already scored.
  std::optional<double> lookup(const layout::WindowKey& key) const;

  /// Records a scored window. Idempotent for equal keys (the contract
  /// makes every value for a key bitwise identical); a full cache drops
  /// the insert and counts it as rejected.
  void insert(const layout::WindowKey& key, double probability);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    /// Inserts dropped because the cache was at max_entries.
    std::uint64_t rejected = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  Stats stats() const;

  std::size_t size() const;
  std::size_t max_entries() const { return max_entries_; }

  /// Drops every entry and zeroes the counters (e.g. after a model
  /// update invalidates cached probabilities).
  void clear();

 private:
  std::size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<layout::WindowKey, double, layout::WindowKeyHash> map_;
  mutable Stats stats_;
};

}  // namespace hsdl::hotspot

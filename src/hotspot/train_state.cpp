#include "hotspot/train_state.hpp"

#include <cstdint>

#include "common/check.hpp"
#include "common/io.hpp"

namespace hsdl::hotspot {
namespace {

// v1 container (all integers little-endian):
//   "HSDLTS1\0" | u32 version=1 | u32 flags=0
//   config record (fixed width, see write_config)
//   u64 iter | u8 finished | f64 learning_rate | f64 elapsed_seconds
//   u64 recoveries | f64 best_score | u64 stale
//   u64 history_count | per point: u64 iter, f64 seconds, f64 loss, f64 acc
//   rng record x2 (sampler, model): u64 s[4] | u8 has_cached | f64 cached
//   tensor list x3 (params, best_params, opt_slots), each:
//     u64 count | per tensor: u32 ndim | u64 dim[ndim] | f32 payload
//   u64 opt_step_count
//   u32 extra_len | extra bytes
//   u32 file_crc — crc32 of bytes [0, here)
// and nothing after: the loader rejects trailing data.
constexpr char kMagic[] = "HSDLTS1\0";
constexpr std::size_t kMaxDims = 16;

void write_tensor(io::ByteWriter& w, const nn::Tensor& t) {
  w.u32(static_cast<std::uint32_t>(t.dim()));
  for (std::size_t e : t.shape()) w.u64(e);
  w.f32_array(t.data(), t.numel());
}

nn::Tensor read_tensor(io::ByteReader& r) {
  const std::uint32_t ndim = r.u32();
  if (ndim > kMaxDims) r.fail("implausible tensor rank");
  std::vector<std::size_t> shape(ndim);
  std::size_t numel = 1;
  for (auto& e : shape) {
    e = static_cast<std::size_t>(r.u64());
    if (e == 0 || (numel != 0 && e > r.remaining() / numel))
      r.fail("implausible tensor extent");
    numel *= e;
  }
  // Bound the payload by the remaining bytes before allocating, so a
  // corrupt length field cannot trigger a huge allocation.
  if (numel * sizeof(float) > r.remaining())
    r.fail("tensor payload larger than the remaining stream");
  nn::Tensor t(std::move(shape));
  r.f32_array(t.data(), t.numel());
  return t;
}

void write_tensor_list(io::ByteWriter& w, const std::vector<nn::Tensor>& ts) {
  w.u64(ts.size());
  for (const nn::Tensor& t : ts) write_tensor(w, t);
}

std::vector<nn::Tensor> read_tensor_list(io::ByteReader& r) {
  const std::uint64_t n = r.u64();
  // Each tensor record is at least 4 bytes (its u32 rank).
  if (n > r.remaining() / 4) r.fail("implausible tensor count");
  std::vector<nn::Tensor> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(read_tensor(r));
  return out;
}

void write_rng_state(io::ByteWriter& w, const Rng::State& s) {
  for (std::uint64_t word : s.s) w.u64(word);
  w.u8(s.has_cached_normal ? 1 : 0);
  w.f64(s.cached_normal);
}

Rng::State read_rng_state(io::ByteReader& r) {
  Rng::State s;
  for (auto& word : s.s) word = r.u64();
  const std::uint8_t cached = r.u8();
  if (cached > 1) r.fail("invalid rng cached-normal flag");
  s.has_cached_normal = cached == 1;
  s.cached_normal = r.f64();
  return s;
}

void write_config(io::ByteWriter& w, const MgdConfig& c) {
  w.f64(c.learning_rate);
  w.f64(c.decay);
  w.u64(c.decay_step);
  w.u64(c.batch);
  w.u64(c.max_iters);
  w.u64(c.validate_every);
  w.u64(c.patience);
  w.u32(static_cast<std::uint32_t>(c.optimizer));
  w.f64(c.epsilon);
  w.u8(c.balanced_batches ? 1 : 0);
  w.f64(c.max_grad_norm);
  w.u64(c.max_recoveries);
  w.f64(c.recovery_lr_decay);
}

MgdConfig read_config(io::ByteReader& r) {
  MgdConfig c;
  c.learning_rate = r.f64();
  c.decay = r.f64();
  c.decay_step = static_cast<std::size_t>(r.u64());
  c.batch = static_cast<std::size_t>(r.u64());
  c.max_iters = static_cast<std::size_t>(r.u64());
  c.validate_every = static_cast<std::size_t>(r.u64());
  c.patience = static_cast<std::size_t>(r.u64());
  const std::uint32_t opt = r.u32();
  if (opt > static_cast<std::uint32_t>(OptimizerKind::kAdam))
    r.fail("unknown optimizer kind in checkpoint config");
  c.optimizer = static_cast<OptimizerKind>(opt);
  c.epsilon = r.f64();
  const std::uint8_t balanced = r.u8();
  if (balanced > 1) r.fail("invalid balanced-batches flag");
  c.balanced_batches = balanced == 1;
  c.max_grad_norm = r.f64();
  c.max_recoveries = static_cast<std::size_t>(r.u64());
  c.recovery_lr_decay = r.f64();
  return c;
}

void write_train_point(io::ByteWriter& w, const TrainPoint& p) {
  w.u64(p.iter);
  w.f64(p.seconds);
  w.f64(p.train_loss);
  w.f64(p.val_accuracy);
}

TrainPoint read_train_point(io::ByteReader& r) {
  TrainPoint p;
  p.iter = static_cast<std::size_t>(r.u64());
  p.seconds = r.f64();
  p.train_loss = r.f64();
  p.val_accuracy = r.f64();
  return p;
}

constexpr std::size_t kTrainPointBytes = 8 + 8 + 8 + 8;

std::vector<TrainPoint> read_history(io::ByteReader& r) {
  const std::uint64_t n = r.u64();
  if (n > r.remaining() / kTrainPointBytes)
    r.fail("implausible history length");
  std::vector<TrainPoint> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(read_train_point(r));
  return out;
}

void write_train_result(io::ByteWriter& w, const TrainResult& t) {
  w.u64(t.history.size());
  for (const TrainPoint& p : t.history) write_train_point(w, p);
  w.f64(t.best_val_accuracy);
  w.u64(t.iters_run);
  w.f64(t.seconds);
  w.u64(t.recoveries);
  w.f64(t.final_learning_rate);
}

TrainResult read_train_result(io::ByteReader& r) {
  TrainResult t;
  t.history = read_history(r);
  t.best_val_accuracy = r.f64();
  t.iters_run = static_cast<std::size_t>(r.u64());
  t.seconds = r.f64();
  t.recoveries = static_cast<std::size_t>(r.u64());
  t.final_learning_rate = r.f64();
  return t;
}

}  // namespace

std::string serialize_train_state(const TrainState& state) {
  io::ByteWriter w;
  io::write_format_header(w, std::string_view(kMagic, io::kMagicSize),
                          kTrainStateVersion, /*flags=*/0);
  write_config(w, state.config);
  w.u64(state.iter);
  w.u8(state.finished ? 1 : 0);
  w.f64(state.learning_rate);
  w.f64(state.elapsed_seconds);
  w.u64(state.recoveries);
  w.f64(state.best_score);
  w.u64(state.stale);
  w.u64(state.history.size());
  for (const TrainPoint& p : state.history) write_train_point(w, p);
  write_rng_state(w, state.sampler_rng);
  write_rng_state(w, state.model_rng);
  write_tensor_list(w, state.params);
  write_tensor_list(w, state.best_params);
  write_tensor_list(w, state.opt_slots);
  w.u64(state.opt_step_count);
  w.str(state.extra);
  w.u32(io::crc32(w.buffer()));
  return w.take();
}

TrainState deserialize_train_state(std::string_view data,
                                   const std::string& context) {
  io::ByteReader r(data, context);
  io::read_format_header(r, std::string_view(kMagic, io::kMagicSize),
                         kTrainStateVersion, kTrainStateVersion);
  TrainState st;
  st.config = read_config(r);
  st.iter = r.u64();
  const std::uint8_t finished = r.u8();
  if (finished > 1) r.fail("invalid finished flag");
  st.finished = finished == 1;
  st.learning_rate = r.f64();
  st.elapsed_seconds = r.f64();
  st.recoveries = r.u64();
  st.best_score = r.f64();
  st.stale = r.u64();
  st.history = read_history(r);
  st.sampler_rng = read_rng_state(r);
  st.model_rng = read_rng_state(r);
  st.params = read_tensor_list(r);
  st.best_params = read_tensor_list(r);
  st.opt_slots = read_tensor_list(r);
  st.opt_step_count = r.u64();
  st.extra = r.str(/*max_len=*/1u << 26);
  const std::uint32_t stored_crc = r.u32();
  const std::uint32_t actual_crc =
      io::crc32(data.substr(0, r.pos() - sizeof(std::uint32_t)));
  if (stored_crc != actual_crc)
    r.fail("whole-file checksum mismatch (corrupt train state)");
  r.expect_end();
  return st;
}

void save_train_state_file(const std::string& path, const TrainState& state) {
  io::atomic_write_file(path, serialize_train_state(state));
}

TrainState load_train_state_file(const std::string& path) {
  return deserialize_train_state(io::read_file(path), path);
}

std::string serialize_biased_progress(const BiasedProgress& progress) {
  io::ByteWriter w;
  w.u32(kTrainStateVersion);
  w.u64(progress.round);
  w.f64(progress.epsilon);
  w.u64(progress.completed.size());
  for (const BiasedRound& round : progress.completed) {
    w.f64(round.epsilon);
    write_train_result(w, round.train);
    w.u64(round.val_confusion.tp);
    w.u64(round.val_confusion.fn);
    w.u64(round.val_confusion.fp);
    w.u64(round.val_confusion.tn);
  }
  return w.take();
}

BiasedProgress deserialize_biased_progress(std::string_view data) {
  io::ByteReader r(data, "biased-progress");
  const std::uint32_t version = r.u32();
  if (version != kTrainStateVersion)
    r.fail("unsupported biased-progress version");
  BiasedProgress p;
  p.round = r.u64();
  p.epsilon = r.f64();
  const std::uint64_t n = r.u64();
  // Each completed round is at least 8 bytes (its epsilon field).
  if (n > r.remaining() / 8) r.fail("implausible completed-round count");
  p.completed.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    BiasedRound round;
    round.epsilon = r.f64();
    round.train = read_train_result(r);
    round.val_confusion.tp = static_cast<std::size_t>(r.u64());
    round.val_confusion.fn = static_cast<std::size_t>(r.u64());
    round.val_confusion.fp = static_cast<std::size_t>(r.u64());
    round.val_confusion.tn = static_cast<std::size_t>(r.u64());
    p.completed.push_back(std::move(round));
  }
  r.expect_end();
  return p;
}

}  // namespace hsdl::hotspot

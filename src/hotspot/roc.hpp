// Operating-curve utilities: sweep the decision boundary of a trained
// model to map the accuracy / false-alarm trade-off (the axes of the
// paper's Figure 4).
#pragma once

#include <vector>

#include "hotspot/cnn.hpp"
#include "hotspot/detector.hpp"
#include "hotspot/metrics.hpp"
#include "nn/dataset.hpp"

namespace hsdl::hotspot {

struct RocPoint {
  double shift = 0.0;        ///< Equation (11) lambda
  double accuracy = 0.0;     ///< hotspot recall (Definition 1)
  double fa_rate = 0.0;      ///< false alarms / non-hotspots
  std::size_t false_alarms = 0;
};

/// Evaluates the model at each boundary shift. Probabilities are computed
/// once; thresholds are swept over them, so large sweeps stay cheap.
/// Flagging uses the shared is_flagged predicate, so the sweep endpoints
/// (shift ±0.5) pin to the (0,0)/(1,1) ROC corners.
std::vector<RocPoint> roc_curve(HotspotCnn& model,
                                const nn::ClassificationDataset& data,
                                const std::vector<double>& shifts);

/// Detector-level overload over labeled clips: probabilities come from
/// one Detector::predict_probabilities batch call (any detector, not
/// just the CNN), then thresholds are swept over them.
std::vector<RocPoint> roc_curve(const Detector& detector,
                                std::span<const layout::LabeledClip> clips,
                                const std::vector<double>& shifts);

/// Area under the (fa_rate, accuracy) curve via trapezoids over a dense
/// shift sweep; 1.0 = perfect ranking, 0.5 = chance.
double roc_auc(HotspotCnn& model, const nn::ClassificationDataset& data,
               std::size_t sweep_points = 101);

}  // namespace hsdl::hotspot

// The paper's convolutional neural network (Table 1 / Figure 2).
//
// Two convolution stages on a k x n x n feature tensor:
//   conv1-1 3x3 (k->16), ReLU, conv1-2 3x3 (16->16), ReLU, maxpool 2x2
//   conv2-1 3x3 (16->32), ReLU, conv2-2 3x3 (32->32), ReLU, maxpool 2x2
// followed by FC-250 (ReLU, 50% dropout) and FC-2. With n = 12 the
// realized shapes match Table 1 exactly: 12x12x16 -> 6x6x16 -> 6x6x32 ->
// 3x3x32 -> 250 -> 2.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/dropout.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace hsdl::hotspot {

struct HotspotCnnConfig {
  std::size_t input_channels = 32;  ///< k, feature tensor coefficients
  std::size_t input_side = 12;      ///< n, blocks per side
  std::size_t stage1_maps = 16;
  std::size_t stage2_maps = 32;
  std::size_t fc_nodes = 250;
  double dropout = 0.5;
  std::uint64_t seed = 42;  ///< weight init + dropout stream
};

/// Output class indices, following the paper's label convention
/// y = [p(non-hotspot), p(hotspot)].
inline constexpr std::size_t kNonHotspotIndex = 0;
inline constexpr std::size_t kHotspotIndex = 1;

class HotspotCnn {
 public:
  explicit HotspotCnn(const HotspotCnnConfig& config = {});

  const HotspotCnnConfig& config() const { return config_; }

  /// Underlying layer stack (for the trainer / serialization).
  nn::Sequential& net() { return net_; }
  const nn::Sequential& net() const { return net_; }

  /// Input shape excluding batch: {k, n, n}.
  std::vector<std::size_t> input_shape() const;

  /// Forward pass returning logits [N, 2].
  nn::Tensor logits(const nn::Tensor& input, bool train);

  /// Inference pass returning softmax probabilities [N, 2]. Const and
  /// thread-safe: uses the stateless Layer::infer path, so one trained
  /// model can serve concurrent evaluation/scanning threads.
  nn::Tensor probabilities(const nn::Tensor& input) const;

  /// Arena-backed inference: bitwise identical probabilities, but every
  /// intermediate activation and the result are drawn from `ws`, so a
  /// warm arena serves repeated batches with zero heap allocations. The
  /// returned tensor should be recycle()d back into `ws` once consumed.
  nn::Tensor probabilities(const nn::Tensor& input,
                           nn::WorkspaceArena& ws) const;

  /// RNG used by dropout (exposed so training is reproducible end-to-end).
  Rng& rng() { return *rng_; }

 private:
  HotspotCnnConfig config_;
  std::unique_ptr<Rng> rng_;  // stable address for the dropout layer
  nn::Sequential net_;
};

}  // namespace hsdl::hotspot

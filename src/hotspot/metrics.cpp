#include "hotspot/metrics.hpp"

namespace hsdl::hotspot {

void Confusion::add(bool actual_hotspot, bool predicted_hotspot) {
  if (actual_hotspot)
    predicted_hotspot ? ++tp : ++fn;
  else
    predicted_hotspot ? ++fp : ++tn;
}

double Confusion::accuracy() const {
  const std::size_t hs = hotspots();
  if (hs == 0) return 1.0;
  return static_cast<double>(tp) / static_cast<double>(hs);
}

double Confusion::odst_seconds(double eval_seconds) const {
  return kLithoSimSecondsPerClip * static_cast<double>(detected()) +
         eval_seconds;
}

}  // namespace hsdl::hotspot

// Crash-safe scan journal (DESIGN.md §14): band-granular resume state
// for full-chip scans.
//
// A resumable scan appends one checksummed record per completed band to
// an on-disk journal. If the process dies mid-scan (crash, OOM kill,
// chaos fault), rerunning the scan against the same journal replays the
// completed bands from disk and only scores the remainder — the merged
// report is bitwise identical to an uninterrupted scan, because bands
// are merged in the same row-major order either way.
//
// Format: an 8-byte magic ("HSDLSCNJ") + u32 version + u32 flags header
// followed by a u64 scan fingerprint and a u32 CRC of the header bytes,
// then self-delimiting records of the form
//
//   u32 payload_len | payload | u32 crc32(payload)
//
// where payload = u64 band_index, u64 windows, u32 hit_count, then per
// hit the window rect (4 x i64) and its probability (f64). On open the
// journal parses the longest valid prefix and truncates any torn or
// corrupt tail — a record half-written at the moment of death is
// discarded and that band is simply rescanned.
//
// The fingerprint covers the scan geometry (window, stride, band rows,
// chip extent) so a journal is never replayed against a different grid.
// It deliberately does NOT cover the detector weights: resuming with a
// different model would merge bands scored by two models, which is on
// the caller — the journal cannot see the detector.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "hotspot/scanner.hpp"

namespace hsdl::hotspot {

/// One completed band: its ordinal in the scan, how many windows it
/// covered, and the hits it produced (in row-major scan order).
struct BandResult {
  std::uint64_t band_index = 0;
  std::uint64_t windows = 0;
  std::vector<ScanHit> hits;
};

class ScanJournal {
 public:
  /// Opens (or creates) the journal at `path`. An existing file with a
  /// matching fingerprint is resumed: its valid record prefix is loaded
  /// and any torn tail truncated in place. A missing file, a damaged
  /// header or a fingerprint mismatch starts a fresh journal (the old
  /// contents are discarded — they describe a different scan).
  ScanJournal(std::string path, std::uint64_t fingerprint);

  /// Scan-geometry fingerprint for `config` over `extent`, mixed with
  /// the layout source's content fingerprint; two scans share a journal
  /// iff all three match (so a journal recorded against one chip can
  /// never be replayed into a scan of different geometry, hierarchical
  /// or flat).
  static std::uint64_t fingerprint(const ScanConfig& config,
                                   const geom::Rect& extent,
                                   std::uint64_t source_fingerprint = 0);

  /// True when `band_index` was already completed by a previous run.
  bool has(std::uint64_t band_index) const {
    return bands_.find(band_index) != bands_.end();
  }

  /// The journaled result for `band_index`, or nullptr.
  const BandResult* result(std::uint64_t band_index) const;

  /// Appends a completed band and flushes it to disk before returning,
  /// so a crash after append never loses the band.
  void append(const BandResult& band);

  /// Number of completed bands on record.
  std::size_t bands() const { return bands_.size(); }

  /// Whether the open resumed prior state (vs started fresh).
  bool resumed() const { return resumed_; }

  const std::string& path() const { return path_; }

  /// Closes and deletes the journal file — called once the scan it
  /// backs has completed and the resume state is no longer needed.
  void remove();

 private:
  /// Loads the valid prefix of an existing file; returns false when the
  /// header is missing/damaged or the fingerprint differs.
  bool load_existing();
  void start_fresh();

  std::string path_;
  std::uint64_t fingerprint_;
  bool resumed_ = false;
  std::unordered_map<std::uint64_t, BandResult> bands_;
  std::ofstream out_;
};

}  // namespace hsdl::hotspot

#include "hotspot/scanner.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "hotspot/band_iter.hpp"
#include "hotspot/engine/engine.hpp"
#include "hotspot/scan_cache.hpp"
#include "hotspot/scan_journal.hpp"

namespace hsdl::hotspot {
namespace {

/// Extracts and scores one band. With a cache the band runs in phases:
/// reuse keys + cache probes per window, then an in-band dedup pass
/// (the first window of each distinct key is the representative, later
/// ones alias it — crucial on array-heavy chips where one band holds
/// many congruent windows that the cache cannot serve yet because
/// inserts land only after the band is scored), then extraction and one
/// score_band call over the unique misses only, then scatter + cache
/// fill. `parallel_extract` routes extraction through the global pool;
/// shard workers pass false and extract serially on their own thread
/// (the fork-join pool serializes top-level regions, so pool-routing
/// shard extraction would just add contention).
///
/// Determinism: equal keys guarantee bitwise-identical normalized clips
/// (the WindowKey contract) and the engine scores every sample
/// independently of its batch, so replaying cache hits and aliasing
/// in-band duplicates — in row-major order — yields bitwise the same
/// probabilities as extracting and scoring the full band.
template <typename ScoreBand>
void score_one_band(const ScanGrid& grid, std::size_t band_index,
                    const layout::LayoutSource& source,
                    ScoreBand&& score_band, CellScanCache* cache,
                    bool parallel_extract, std::vector<layout::Clip>& band,
                    std::vector<double>& probs, std::size_t& from_cache) {
  const std::size_t row_lo = grid.band_row_begin(band_index);
  const std::size_t rows = grid.band_row_end(band_index) - row_lo;
  const std::size_t nx = grid.cols();
  const std::size_t total = rows * nx;
  probs.assign(total, 0.0);
  from_cache = 0;

  if (cache == nullptr) {
    band.assign(total, layout::Clip{});
    {
      HSDL_TRACE_SPAN("scan.extract_band");
      const auto extract_rows = [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r)
          for (std::size_t i = 0; i < nx; ++i)
            band[r * nx + i] =
                source.extract_clip(grid.window(row_lo + r, i)).normalized();
      };
      if (parallel_extract)
        parallel_for(0, rows, 1, extract_rows);
      else
        extract_rows(0, rows);
    }
    HSDL_TRACE_SPAN("scan.classify_band");
    score_band(std::span<const layout::Clip>(band.data(), total),
               std::span<double>(probs.data(), total));
    return;
  }

  // Phase 1: reuse keys and cache probes (cheap — no extraction yet).
  std::vector<std::optional<layout::WindowKey>> keys(total);
  std::vector<char> hit(total, 0);
  {
    HSDL_TRACE_SPAN("scan.probe_band");
    const auto probe_rows = [&](std::size_t rb, std::size_t re) {
      for (std::size_t r = rb; r < re; ++r) {
        for (std::size_t i = 0; i < nx; ++i) {
          const std::size_t idx = r * nx + i;
          keys[idx] = source.window_key(grid.window(row_lo + r, i));
          if (keys[idx]) {
            if (const std::optional<double> p = cache->lookup(*keys[idx])) {
              probs[idx] = *p;
              hit[idx] = 1;
            }
          }
        }
      }
    };
    if (parallel_extract)
      parallel_for(0, rows, 1, probe_rows);
    else
      probe_rows(0, rows);
  }

  // Phase 2: in-band dedup. miss_idx holds the windows that will be
  // extracted and scored; aliases map a duplicate window to the miss
  // slot of its representative.
  std::unordered_map<layout::WindowKey, std::size_t, layout::WindowKeyHash>
      rep;
  std::vector<std::size_t> miss_idx;
  std::vector<std::pair<std::size_t, std::size_t>> aliases;
  miss_idx.reserve(total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    if (hit[idx]) {
      ++from_cache;
      continue;
    }
    if (keys[idx]) {
      const auto [it, inserted] = rep.try_emplace(*keys[idx], miss_idx.size());
      if (!inserted) {
        aliases.emplace_back(idx, it->second);
        ++from_cache;
        continue;
      }
    }
    miss_idx.push_back(idx);
  }

  // Phase 3: extract only the unique misses.
  band.assign(miss_idx.size(), layout::Clip{});
  {
    HSDL_TRACE_SPAN("scan.extract_band");
    const auto extract_misses = [&](std::size_t kb, std::size_t ke) {
      for (std::size_t k = kb; k < ke; ++k) {
        const std::size_t idx = miss_idx[k];
        band[k] = source.extract_clip(grid.window(row_lo + idx / nx, idx % nx))
                      .normalized();
      }
    };
    if (parallel_extract)
      parallel_for(0, miss_idx.size(), 1, extract_misses);
    else
      extract_misses(0, miss_idx.size());
  }

  HSDL_TRACE_SPAN("scan.classify_band");
  std::vector<double> miss_probs(miss_idx.size(), 0.0);
  if (!miss_idx.empty())
    score_band(std::span<const layout::Clip>(band.data(), band.size()),
               std::span<double>(miss_probs.data(), miss_probs.size()));
  for (std::size_t k = 0; k < miss_idx.size(); ++k) {
    const std::size_t idx = miss_idx[k];
    probs[idx] = miss_probs[k];
    if (keys[idx]) cache->insert(*keys[idx], miss_probs[k]);
  }
  for (const auto& [idx, slot] : aliases) probs[idx] = miss_probs[slot];
}

void record_cache_metrics(const ScanReport& report) {
  if (!metrics::enabled() || report.windows_from_cache == 0) return;
  static metrics::Counter& cached = metrics::counter("scan.cache_hits");
  static metrics::Counter& scored = metrics::counter("scan.cache_misses");
  static metrics::Gauge& rate = metrics::gauge("scan.cache_hit_rate");
  cached.add(report.windows_from_cache);
  scored.add(report.windows_scanned - report.windows_from_cache);
  rate.set(report.windows_scanned == 0
               ? 0.0
               : static_cast<double>(report.windows_from_cache) /
                     static_cast<double>(report.windows_scanned));
}

/// Shared grid walk. Bands keep the hit list deterministic: clip
/// extraction is parallel over window rows, then the band is scored and
/// the results merged serially in row-major scan order, so hits come
/// out exactly as a serial scan would produce them.
template <typename ScoreBand>
ScanReport scan_grid(const ScanConfig& config,
                     const layout::LayoutSource& source, double threshold,
                     ScoreBand&& score_band, ScanJournal* journal = nullptr,
                     CellScanCache* cache = nullptr) {
  HSDL_TRACE_SPAN("scan");
  ScanReport report;
  WallTimer timer;
  const ScanGrid grid(source.extent(), config);
  const std::size_t nx = grid.cols();

  std::vector<layout::Clip> band;
  std::vector<double> probs;
  for (std::size_t b = 0; b < grid.bands(); ++b) {
    if (journal != nullptr) {
      // Replay bands a previous run already completed: same windows,
      // same hits, no scoring. Bands are visited in the same order
      // either way, so the merged hit list is bitwise identical.
      if (const BandResult* done = journal->result(b)) {
        report.windows_scanned += done->windows;
        report.hits.insert(report.hits.end(), done->hits.begin(),
                           done->hits.end());
        continue;
      }
    }
    // Chaos hook: a fired "scan.band" fault simulates the process dying
    // at the start of this band — already-journaled bands stay durable.
    if (fault::armed() && fault::fail_point("scan.band"))
      throw CheckError("scan: injected failure at band " + std::to_string(b));
    std::size_t from_cache = 0;
    score_one_band(grid, b, source, score_band, cache,
                   /*parallel_extract=*/true, band, probs, from_cache);
    const std::size_t row_lo = grid.band_row_begin(b);
    const std::size_t rows = grid.band_row_end(b) - row_lo;
    report.windows_scanned += rows * nx;
    report.windows_from_cache += from_cache;
    const std::size_t first_hit = report.hits.size();
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t i = 0; i < nx; ++i) {
        const double p = probs[r * nx + i];
        if (is_flagged(p, threshold))
          report.hits.push_back({grid.window(row_lo + r, i), p});
      }
    }
    if (journal != nullptr) {
      BandResult done;
      done.band_index = b;
      done.windows = rows * nx;
      done.hits.assign(report.hits.begin() +
                           static_cast<std::ptrdiff_t>(first_hit),
                       report.hits.end());
      journal->append(done);
    }
  }
  report.scan_seconds = timer.seconds();
  if (metrics::enabled()) {
    static metrics::Counter& windows = metrics::counter("scan.windows");
    static metrics::Counter& hits = metrics::counter("scan.hits");
    static metrics::Gauge& wps = metrics::gauge("scan.windows_per_sec");
    static metrics::Gauge& depth = metrics::gauge("scan.band_rows");
    windows.add(report.windows_scanned);
    hits.add(report.hits.size());
    wps.set(report.windows_per_second());
    depth.set(static_cast<double>(std::min(config.band_rows, grid.rows())));
  }
  record_cache_metrics(report);
  return report;
}

}  // namespace

void ScanConfig::validate() const {
  HSDL_CHECK_MSG(window_size > 0,
                 "scan config: window_size must be positive, got "
                     << window_size);
  HSDL_CHECK_MSG(stride > 0,
                 "scan config: stride must be positive, got " << stride);
  HSDL_CHECK_MSG(band_rows > 0, "scan config: band_rows must be positive");
}

void ScanConfig::validate_for(const CnnDetector& detector) const {
  validate();
  const fte::FeatureTensorConfig& f = detector.extractor().config();
  const double px = static_cast<double>(window_size) / f.nm_per_px;
  HSDL_CHECK_MSG(std::abs(px - std::round(px)) < 1e-9,
                 "scan config: window_size "
                     << window_size
                     << " nm is not an integer number of pixels at "
                     << f.nm_per_px << " nm/px");
  const auto side = static_cast<std::size_t>(std::llround(px));
  HSDL_CHECK_MSG(side % f.blocks_per_side == 0,
                 "scan config: window_size "
                     << window_size << " nm rasterizes to " << side
                     << " px, which does not divide into the detector's "
                     << f.blocks_per_side << "x" << f.blocks_per_side
                     << " feature-tensor blocks");
}

ChipScanner::ChipScanner(const ScanConfig& config) : config_(config) {
  config_.validate();
}

ScanReport ChipScanner::scan(const layout::LayoutSource& source,
                             const Detector& detector) const {
  if (const auto* cnn = dynamic_cast<const CnnDetector*>(&detector)) {
    // Production path: a scan-local engine overlaps feature extraction
    // with the batched CNN forward pass. Results are bitwise identical
    // to the per-clip path (DESIGN.md §11).
    InferenceEngine engine(*cnn);
    return scan(source, engine);
  }
  return scan_grid(
      config_, source, detector.decision_threshold(),
      [&](std::span<const layout::Clip> clips, std::span<double> out) {
        const std::vector<double> p = detector.predict_probabilities(clips);
        std::copy(p.begin(), p.end(), out.begin());
      });
}

ScanReport ChipScanner::scan(const layout::LayoutSource& source,
                             InferenceEngine& engine,
                             CellScanCache* cache) const {
  config_.validate_for(engine.detector());
  return scan_grid(
      config_, source, engine.detector().decision_threshold(),
      [&](std::span<const layout::Clip> clips, std::span<double> out) {
        engine.score_into(clips, out);
      },
      nullptr, cache);
}

ScanReport ChipScanner::scan_resumable(const layout::LayoutSource& source,
                                       InferenceEngine& engine,
                                       const std::string& journal_path,
                                       CellScanCache* cache) const {
  config_.validate_for(engine.detector());
  ScanJournal journal(journal_path,
                      ScanJournal::fingerprint(config_, source.extent(),
                                               source.fingerprint()));
  ScanReport report = scan_grid(
      config_, source, engine.detector().decision_threshold(),
      [&](std::span<const layout::Clip> clips, std::span<double> out) {
        engine.score_into(clips, out);
      },
      &journal, cache);
  // The scan is complete; stale resume state must not leak into a
  // future scan of a (possibly different) chip at the same path.
  journal.remove();
  return report;
}

ScanReport ChipScanner::scan_sharded(const layout::LayoutSource& source,
                                     const CnnDetector& detector,
                                     std::size_t shards,
                                     CellScanCache* cache) const {
  HSDL_CHECK_MSG(shards >= 1, "scan: shards must be >= 1, got " << shards);
  config_.validate_for(detector);
  if (shards == 1) {
    InferenceEngine engine(detector);
    return scan(source, engine, cache);
  }
  HSDL_TRACE_SPAN("scan.sharded");
  WallTimer timer;
  const ScanGrid grid(source.extent(), config_);
  const double threshold = detector.decision_threshold();
  const std::size_t nbands = grid.bands();
  const std::size_t nx = grid.cols();

  struct ShardBand {
    std::size_t windows = 0;
    std::size_t from_cache = 0;
    std::vector<ScanHit> hits;
  };
  std::vector<ShardBand> bands(nbands);
  std::vector<std::exception_ptr> errors(shards);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    workers.emplace_back([&, s] {
      try {
        // Each shard owns an engine (and its arena); the cache is the
        // only shared mutable state, and every value two shards could
        // race to insert under one key is bitwise identical.
        InferenceEngine engine(detector);
        std::vector<layout::Clip> scratch;
        std::vector<double> probs;
        for (std::size_t b = s; b < nbands; b += shards) {
          if (fault::armed() && fault::fail_point("scan.band"))
            throw CheckError("scan: injected failure at band " +
                             std::to_string(b));
          ShardBand& out = bands[b];
          score_one_band(
              grid, b, source,
              [&](std::span<const layout::Clip> clips,
                  std::span<double> o) { engine.score_into(clips, o); },
              cache, /*parallel_extract=*/false, scratch, probs,
              out.from_cache);
          const std::size_t row_lo = grid.band_row_begin(b);
          const std::size_t rows = grid.band_row_end(b) - row_lo;
          out.windows = rows * nx;
          for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t i = 0; i < nx; ++i) {
              const double p = probs[r * nx + i];
              if (is_flagged(p, threshold))
                out.hits.push_back({grid.window(row_lo + r, i), p});
            }
        }
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  // Merge in band order: the report is independent of shard count and
  // interleaving, bitwise identical to the 1-shard scan.
  ScanReport report;
  for (const ShardBand& b : bands) {
    report.windows_scanned += b.windows;
    report.windows_from_cache += b.from_cache;
    report.hits.insert(report.hits.end(), b.hits.begin(), b.hits.end());
  }
  report.scan_seconds = timer.seconds();
  if (metrics::enabled()) {
    static metrics::Counter& windows = metrics::counter("scan.windows");
    static metrics::Counter& hits = metrics::counter("scan.hits");
    static metrics::Gauge& wps = metrics::gauge("scan.windows_per_sec");
    windows.add(report.windows_scanned);
    hits.add(report.hits.size());
    wps.set(report.windows_per_second());
  }
  record_cache_metrics(report);
  return report;
}

ScanReport ChipScanner::scan(const layout::Layout& chip,
                             const Detector& detector) const {
  return scan(layout::FlatSource(chip), detector);
}

ScanReport ChipScanner::scan(const layout::Layout& chip,
                             InferenceEngine& engine) const {
  return scan(layout::FlatSource(chip), engine);
}

ScanReport ChipScanner::scan_resumable(const layout::Layout& chip,
                                       InferenceEngine& engine,
                                       const std::string& journal_path) const {
  return scan_resumable(layout::FlatSource(chip), engine, journal_path);
}

}  // namespace hsdl::hotspot

#include "hotspot/scanner.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "hotspot/engine/engine.hpp"
#include "hotspot/scan_journal.hpp"

namespace hsdl::hotspot {
namespace {

/// Window origins along one axis. When the stride does not tile the
/// extent exactly, a final origin clamped to the far edge covers the
/// trailing band that the bare grid would silently skip. Origins are
/// strictly increasing and deduplicated: a clamped position landing
/// exactly on an interior grid position would otherwise scan (and
/// possibly flag) the identical window rect twice.
std::vector<geom::Coord> grid_positions(geom::Coord lo, geom::Coord hi,
                                        geom::Coord window,
                                        geom::Coord stride) {
  std::vector<geom::Coord> v;
  for (geom::Coord p = lo; p + window <= hi; p += stride) v.push_back(p);
  if (v.back() + window < hi) v.push_back(hi - window);
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Shared grid walk. Bands keep the hit list deterministic: clip
/// extraction is parallel over window rows (each row fills a disjoint
/// slice of the band buffer), then `score_band` scores the whole band
/// and the results are merged serially in row-major scan order, so hits
/// come out exactly as a serial scan would produce them.
template <typename ScoreBand>
ScanReport scan_grid(const ScanConfig& config, const layout::Layout& chip,
                     double threshold, ScoreBand&& score_band,
                     ScanJournal* journal = nullptr) {
  const geom::Rect& extent = chip.extent();
  HSDL_CHECK_MSG(extent.width() >= config.window_size &&
                     extent.height() >= config.window_size,
                 "layout smaller than the scan window");
  HSDL_TRACE_SPAN("scan");
  ScanReport report;
  WallTimer timer;

  const std::vector<geom::Coord> xs = grid_positions(
      extent.lo.x, extent.hi.x, config.window_size, config.stride);
  const std::vector<geom::Coord> ys = grid_positions(
      extent.lo.y, extent.hi.y, config.window_size, config.stride);
  const std::size_t nx = xs.size();

  std::vector<layout::Clip> band;
  std::vector<double> probs;
  for (std::size_t band_lo = 0; band_lo < ys.size();
       band_lo += config.band_rows) {
    const std::uint64_t band_index = band_lo / config.band_rows;
    if (journal != nullptr) {
      // Replay bands a previous run already completed: same windows,
      // same hits, no scoring. Bands are visited in the same order
      // either way, so the merged hit list is bitwise identical.
      if (const BandResult* done = journal->result(band_index)) {
        report.windows_scanned += done->windows;
        report.hits.insert(report.hits.end(), done->hits.begin(),
                           done->hits.end());
        continue;
      }
    }
    // Chaos hook: a fired "scan.band" fault simulates the process dying
    // at the start of this band — already-journaled bands stay durable.
    if (fault::armed() && fault::fail_point("scan.band"))
      throw CheckError("scan: injected failure at band " +
                       std::to_string(band_index));
    const std::size_t band_hi =
        std::min(band_lo + config.band_rows, ys.size());
    const std::size_t rows = band_hi - band_lo;
    band.assign(rows * nx, layout::Clip{});
    {
      HSDL_TRACE_SPAN("scan.extract_band");
      parallel_for(0, rows, 1, [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          for (std::size_t i = 0; i < nx; ++i) {
            const geom::Rect window = geom::Rect::from_xywh(
                xs[i], ys[band_lo + r], config.window_size,
                config.window_size);
            band[r * nx + i] = chip.extract_clip(window).normalized();
          }
        }
      });
    }
    probs.assign(rows * nx, 0.0);
    {
      HSDL_TRACE_SPAN("scan.classify_band");
      score_band(std::span<const layout::Clip>(band.data(), rows * nx),
                 std::span<double>(probs.data(), rows * nx));
    }
    report.windows_scanned += rows * nx;
    const std::size_t first_hit = report.hits.size();
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t i = 0; i < nx; ++i) {
        const double p = probs[r * nx + i];
        if (is_flagged(p, threshold)) {
          report.hits.push_back(
              {geom::Rect::from_xywh(xs[i], ys[band_lo + r],
                                     config.window_size,
                                     config.window_size),
               p});
        }
      }
    }
    if (journal != nullptr) {
      BandResult done;
      done.band_index = band_index;
      done.windows = rows * nx;
      done.hits.assign(report.hits.begin() +
                           static_cast<std::ptrdiff_t>(first_hit),
                       report.hits.end());
      journal->append(done);
    }
  }
  report.scan_seconds = timer.seconds();
  if (metrics::enabled()) {
    static metrics::Counter& windows = metrics::counter("scan.windows");
    static metrics::Counter& hits = metrics::counter("scan.hits");
    static metrics::Gauge& wps = metrics::gauge("scan.windows_per_sec");
    static metrics::Gauge& depth = metrics::gauge("scan.band_rows");
    windows.add(report.windows_scanned);
    hits.add(report.hits.size());
    wps.set(report.windows_per_second());
    depth.set(static_cast<double>(std::min(config.band_rows, ys.size())));
  }
  return report;
}

}  // namespace

void ScanConfig::validate() const {
  HSDL_CHECK_MSG(window_size > 0,
                 "scan config: window_size must be positive, got "
                     << window_size);
  HSDL_CHECK_MSG(stride > 0,
                 "scan config: stride must be positive, got " << stride);
  HSDL_CHECK_MSG(band_rows > 0, "scan config: band_rows must be positive");
}

void ScanConfig::validate_for(const CnnDetector& detector) const {
  validate();
  const fte::FeatureTensorConfig& f = detector.extractor().config();
  const double px = static_cast<double>(window_size) / f.nm_per_px;
  HSDL_CHECK_MSG(std::abs(px - std::round(px)) < 1e-9,
                 "scan config: window_size "
                     << window_size
                     << " nm is not an integer number of pixels at "
                     << f.nm_per_px << " nm/px");
  const auto side = static_cast<std::size_t>(std::llround(px));
  HSDL_CHECK_MSG(side % f.blocks_per_side == 0,
                 "scan config: window_size "
                     << window_size << " nm rasterizes to " << side
                     << " px, which does not divide into the detector's "
                     << f.blocks_per_side << "x" << f.blocks_per_side
                     << " feature-tensor blocks");
}

ChipScanner::ChipScanner(const ScanConfig& config) : config_(config) {
  config_.validate();
}

ScanReport ChipScanner::scan(const layout::Layout& chip,
                             const Detector& detector) const {
  if (const auto* cnn = dynamic_cast<const CnnDetector*>(&detector)) {
    // Production path: a scan-local engine overlaps feature extraction
    // with the batched CNN forward pass. Results are bitwise identical
    // to the per-clip path (DESIGN.md §11).
    InferenceEngine engine(*cnn);
    return scan(chip, engine);
  }
  return scan_grid(
      config_, chip, detector.decision_threshold(),
      [&](std::span<const layout::Clip> clips, std::span<double> out) {
        const std::vector<double> p = detector.predict_probabilities(clips);
        std::copy(p.begin(), p.end(), out.begin());
      });
}

ScanReport ChipScanner::scan(const layout::Layout& chip,
                             InferenceEngine& engine) const {
  config_.validate_for(engine.detector());
  return scan_grid(
      config_, chip, engine.detector().decision_threshold(),
      [&](std::span<const layout::Clip> clips, std::span<double> out) {
        engine.score_into(clips, out);
      });
}

ScanReport ChipScanner::scan_resumable(const layout::Layout& chip,
                                       InferenceEngine& engine,
                                       const std::string& journal_path) const {
  config_.validate_for(engine.detector());
  ScanJournal journal(journal_path,
                      ScanJournal::fingerprint(config_, chip.extent()));
  ScanReport report = scan_grid(
      config_, chip, engine.detector().decision_threshold(),
      [&](std::span<const layout::Clip> clips, std::span<double> out) {
        engine.score_into(clips, out);
      },
      &journal);
  // The scan is complete; stale resume state must not leak into a
  // future scan of a (possibly different) chip at the same path.
  journal.remove();
  return report;
}

}  // namespace hsdl::hotspot

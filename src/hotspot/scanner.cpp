#include "hotspot/scanner.hpp"

#include "common/check.hpp"
#include "common/timer.hpp"

namespace hsdl::hotspot {

ChipScanner::ChipScanner(const ScanConfig& config) : config_(config) {
  HSDL_CHECK(config.window_size > 0);
  HSDL_CHECK(config.stride > 0);
}

ScanReport ChipScanner::scan(const layout::Layout& chip,
                             Detector& detector) const {
  const geom::Rect& extent = chip.extent();
  HSDL_CHECK_MSG(extent.width() >= config_.window_size &&
                     extent.height() >= config_.window_size,
                 "layout smaller than the scan window");
  ScanReport report;
  WallTimer timer;
  for (geom::Coord y = extent.lo.y;
       y + config_.window_size <= extent.hi.y; y += config_.stride) {
    for (geom::Coord x = extent.lo.x;
         x + config_.window_size <= extent.hi.x; x += config_.stride) {
      const geom::Rect window = geom::Rect::from_xywh(
          x, y, config_.window_size, config_.window_size);
      const layout::Clip clip = chip.extract_clip(window).normalized();
      ++report.windows_scanned;
      if (detector.predict(clip)) report.hits.push_back({window, 1.0});
    }
  }
  report.scan_seconds = timer.seconds();
  return report;
}

}  // namespace hsdl::hotspot

#include "hotspot/scanner.hpp"

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace hsdl::hotspot {

ChipScanner::ChipScanner(const ScanConfig& config) : config_(config) {
  HSDL_CHECK(config.window_size > 0);
  HSDL_CHECK(config.stride > 0);
}

ScanReport ChipScanner::scan(const layout::Layout& chip,
                             Detector& detector) const {
  const geom::Rect& extent = chip.extent();
  HSDL_CHECK_MSG(extent.width() >= config_.window_size &&
                     extent.height() >= config_.window_size,
                 "layout smaller than the scan window");
  HSDL_TRACE_SPAN("scan");
  ScanReport report;
  WallTimer timer;

  // Window origins of the scan grid. When the stride does not tile the
  // extent exactly, a final window clamped to the far edge covers the
  // trailing band that the bare grid would silently skip (it overlaps
  // the previous window; positions stay strictly increasing, so the
  // deterministic row-major merge order is unchanged).
  std::vector<geom::Coord> xs, ys;
  for (geom::Coord x = extent.lo.x;
       x + config_.window_size <= extent.hi.x; x += config_.stride)
    xs.push_back(x);
  if (xs.back() + config_.window_size < extent.hi.x)
    xs.push_back(extent.hi.x - config_.window_size);
  for (geom::Coord y = extent.lo.y;
       y + config_.window_size <= extent.hi.y; y += config_.stride)
    ys.push_back(y);
  if (ys.back() + config_.window_size < extent.hi.y)
    ys.push_back(extent.hi.y - config_.window_size);
  const std::size_t nx = xs.size();

  // Two-phase bands keep the hit list deterministic: clip extraction is
  // parallel over window rows (each row fills a disjoint slice of the band
  // buffer), then classification walks the rows serially in scan order, so
  // hits come out row-major exactly as the serial scan produced them.
  // Batch-capable detectors parallelize internally over the row's windows.
  constexpr std::size_t kBandRows = 16;
  std::vector<layout::Clip> band;
  for (std::size_t band_lo = 0; band_lo < ys.size(); band_lo += kBandRows) {
    const std::size_t band_hi =
        std::min(band_lo + kBandRows, ys.size());
    const std::size_t rows = band_hi - band_lo;
    band.assign(rows * nx, layout::Clip{});
    {
      HSDL_TRACE_SPAN("scan.extract_band");
      parallel_for(0, rows, 1, [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          for (std::size_t i = 0; i < nx; ++i) {
            const geom::Rect window = geom::Rect::from_xywh(
                xs[i], ys[band_lo + r], config_.window_size,
                config_.window_size);
            band[r * nx + i] = chip.extract_clip(window).normalized();
          }
        }
      });
    }
    HSDL_TRACE_SPAN("scan.classify_band");
    for (std::size_t r = 0; r < rows; ++r) {
      const std::span<const layout::Clip> row(band.data() + r * nx, nx);
      const std::vector<double> probs = detector.predict_probabilities(row);
      report.windows_scanned += nx;
      for (std::size_t i = 0; i < nx; ++i) {
        if (is_flagged(probs[i], detector.decision_threshold())) {
          report.hits.push_back(
              {geom::Rect::from_xywh(xs[i], ys[band_lo + r],
                                     config_.window_size,
                                     config_.window_size),
               probs[i]});
        }
      }
    }
  }
  report.scan_seconds = timer.seconds();
  if (metrics::enabled()) {
    static metrics::Counter& windows = metrics::counter("scan.windows");
    static metrics::Counter& hits = metrics::counter("scan.hits");
    static metrics::Gauge& wps = metrics::gauge("scan.windows_per_sec");
    static metrics::Gauge& depth = metrics::gauge("scan.band_rows");
    windows.add(report.windows_scanned);
    hits.add(report.hits.size());
    wps.set(report.windows_per_second());
    depth.set(static_cast<double>(std::min(kBandRows, ys.size())));
  }
  return report;
}

}  // namespace hsdl::hotspot

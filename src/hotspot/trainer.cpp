#include "hotspot/trainer.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace hsdl::hotspot {

nn::Tensor biased_targets(const std::vector<std::size_t>& labels,
                          double epsilon) {
  HSDL_CHECK(epsilon >= 0.0 && epsilon < 0.5);
  nn::Tensor t({labels.size(), std::size_t{2}});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == kHotspotIndex) {
      t.at(i, 0) = 0.0f;
      t.at(i, 1) = 1.0f;
    } else {
      t.at(i, 0) = static_cast<float>(1.0 - epsilon);
      t.at(i, 1) = static_cast<float>(epsilon);
    }
  }
  return t;
}

Confusion evaluate(HotspotCnn& model, const nn::ClassificationDataset& data,
                   double shift, std::size_t batch) {
  HSDL_CHECK(batch > 0);
  Confusion c;
  if (data.empty()) return c;
  const double threshold = 0.5 - shift;
  const std::size_t batches = (data.size() + batch - 1) / batch;
  // Batches run in parallel, each writing a disjoint probability slice
  // (probabilities() is const and thread-safe); the confusion counts are
  // then accumulated serially in sample order, so the result matches the
  // serial walk for any thread count. The contiguous gather avoids the
  // per-batch index-vector rebuild the old loop paid for.
  std::vector<float> prob_hotspot(data.size());
  parallel_for(0, batches, 1, [&](std::size_t bb, std::size_t be) {
    for (std::size_t bi = bb; bi < be; ++bi) {
      const std::size_t start = bi * batch;
      const std::size_t end = std::min(start + batch, data.size());
      const nn::Tensor probs = model.probabilities(data.gather(start, end));
      for (std::size_t i = start; i < end; ++i)
        prob_hotspot[i] = probs.at(i - start, kHotspotIndex);
    }
  });
  for (std::size_t i = 0; i < data.size(); ++i)
    c.add(data.label(i) == kHotspotIndex,
          is_flagged(static_cast<double>(prob_hotspot[i]), threshold));
  return c;
}

MgdTrainer::MgdTrainer(const MgdConfig& config) : config_(config) {
  HSDL_CHECK(config.learning_rate > 0.0);
  HSDL_CHECK(config.decay > 0.0 && config.decay <= 1.0);
  HSDL_CHECK(config.decay_step > 0 && config.batch > 0);
  HSDL_CHECK(config.max_iters > 0 && config.validate_every > 0);
  HSDL_CHECK(config.epsilon >= 0.0 && config.epsilon < 0.5);
}

TrainResult MgdTrainer::train(HotspotCnn& model,
                              const nn::ClassificationDataset& train_set,
                              const nn::ClassificationDataset& val_set,
                              Rng& rng) {
  HSDL_CHECK(!train_set.empty() && !val_set.empty());
  TrainResult result;
  WallTimer timer;

  nn::Sequential& net = model.net();
  const std::vector<nn::Param*> params = net.params();
  nn::SgdOptimizer sgd(config_.learning_rate);
  nn::AdamOptimizer adam(config_.learning_rate);
  const bool use_adam = config_.optimizer == OptimizerKind::kAdam;
  auto opt_step = [&] {
    use_adam ? adam.step(params) : sgd.step(params);
  };
  auto opt_decay = [&] {
    if (use_adam)
      adam.set_learning_rate(adam.learning_rate() * config_.decay);
    else
      sgd.set_learning_rate(sgd.learning_rate() * config_.decay);
  };
  nn::SoftmaxCrossEntropy loss;

  // Balanced accuracy: with the paper's heavily imbalanced sets, overall
  // accuracy would score the trivial all-non-hotspot model at ~93 % and the
  // stop criterion would freeze there; the mean of per-class recalls keeps
  // hotspot recall in the convergence signal.
  auto val_score = [&]() {
    const Confusion c = evaluate(model, val_set);
    const double hs_recall = c.accuracy();
    const double nhs_total = static_cast<double>(c.fp + c.tn);
    const double nhs_recall =
        nhs_total > 0.0 ? static_cast<double>(c.tn) / nhs_total : 1.0;
    return 0.5 * (hs_recall + nhs_recall);
  };

  std::vector<nn::Tensor> best = nn::snapshot_params(params);
  double best_score = -1.0;
  std::size_t stale = 0;

  std::vector<std::size_t> batch_labels(config_.batch);
  for (std::size_t iter = 1; iter <= config_.max_iters; ++iter) {
    // Algorithm 1 line 5: sample m training instances.
    const auto idx = config_.balanced_batches
                         ? train_set.sample_batch_balanced(config_.batch, rng)
                         : train_set.sample_batch(config_.batch, rng);
    const nn::Tensor x = train_set.gather(idx);
    for (std::size_t i = 0; i < idx.size(); ++i)
      batch_labels[i] = train_set.label(idx[i]);
    const nn::Tensor targets = biased_targets(batch_labels, config_.epsilon);

    // Lines 6-9: average gradient via one batched backprop.
    net.zero_grad();
    const nn::Tensor logits = net.forward(x, /*train=*/true);
    const double batch_loss = loss.forward(logits, targets);
    net.backward(loss.backward());
    // Lines 10-14: weight update with step decay.
    opt_step();
    if (iter % config_.decay_step == 0) opt_decay();

    if (iter % config_.validate_every == 0 || iter == config_.max_iters) {
      const double score = val_score();
      TrainPoint point{iter, timer.seconds(), batch_loss, score};
      result.history.push_back(point);
      if (callback_) callback_(point);

      if (score > best_score) {
        best_score = score;
        best = nn::snapshot_params(params);
        stale = 0;
      } else if (++stale >= config_.patience) {
        result.iters_run = iter;
        break;
      }
    }
    result.iters_run = iter;
  }

  nn::restore_params(best, params);
  result.best_val_accuracy = best_score;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace hsdl::hotspot
